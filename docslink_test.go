package ibpower_test

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// mdRef matches a markdown-file reference (repo-root relative) inside a
// comment, such as the design and experiments documents.
var mdRef = regexp.MustCompile(`[A-Za-z0-9_][A-Za-z0-9_./-]*\.md\b`)

// TestDocCommentMarkdownRefsExist walks every Go file in the repository and
// asserts that each *.md file referenced from a comment exists. The seed
// shipped doc comments pointing at DESIGN.md and EXPERIMENTS.md that were
// never written; this test keeps such references from dangling again.
func TestDocCommentMarkdownRefsExist(t *testing.T) {
	refs := map[string][]string{} // md path -> referring file:line sites
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "//")
			if idx < 0 {
				continue
			}
			for _, m := range mdRef.FindAllString(text[idx:], -1) {
				refs[m] = append(refs[m], path+":"+strconv.Itoa(line))
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no markdown references found; the scanner is broken")
	}
	for ref, sites := range refs {
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("%s referenced from Go comments does not exist (referenced at %s)",
				ref, strings.Join(sites, ", "))
		}
	}
}
