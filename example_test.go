package ibpower_test

import (
	"fmt"
	"sync"
	"time"

	"ibpower"
)

// Example demonstrates the core mechanism on a hand-rolled event stream:
// the Figure 2 ALYA pattern (three MPI_Sendrecv calls, two MPI_Allreduce
// calls) repeated until the PPA detects it and lane shutdowns begin.
func Example() {
	pred, err := ibpower.NewPredictor(ibpower.PredictorConfig{
		GT:           20 * time.Microsecond, // 2·Treact, the minimum
		Displacement: 0.01,
	})
	if err != nil {
		panic(err)
	}
	ctrl := ibpower.NewLinkController(0) // paper Treact = 10 µs

	type ev struct {
		id  ibpower.EventID
		gap time.Duration
	}
	iteration := []ev{
		{41, 400 * time.Microsecond}, // MPI_Sendrecv after computation
		{41, 4 * time.Microsecond},
		{41, 4 * time.Microsecond},
		{10, 300 * time.Microsecond}, // MPI_Allreduce
		{10, 250 * time.Microsecond},
	}
	var now time.Duration
	for it := 0; it < 10; it++ {
		for _, e := range iteration {
			now += e.gap
			start := ctrl.Acquire(now) // wake lanes if asleep
			act := pred.OnCall(e.id, start, start)
			if act.Shutdown {
				ctrl.Shutdown(start, act.PredictedIdle)
			}
			now = start
		}
	}
	ctrl.Finish(now)

	acct := ctrl.Accounting()
	fmt.Printf("shutdowns issued: %v (all woken by timer: %v)\n",
		ctrl.Shutdowns > 15, ctrl.DemandWakes == 0)
	fmt.Printf("saving below ceiling: %v\n", acct.SavingPct() < ibpower.MaxSavingPct)
	fmt.Printf("hit rate above 60%%: %v\n", pred.Stats().HitRatePct() > 60)
	// Output:
	// shutdowns issued: true (all woken by timer: true)
	// saving below ceiling: true
	// hit rate above 60%: true
}

// ExamplePredictors shows the predictor registry: the paper's n-gram PPA is
// registered next to the clairvoyant oracle, the trace-trained offline
// profile and the classic idle-time baselines.
func ExamplePredictors() {
	registered := func(name string) bool {
		for _, n := range ibpower.Predictors() {
			if n == name {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"ngram", "oracle", "offline", "lastvalue", "ewma", "static-gt"} {
		fmt.Printf("%s: %v\n", name, registered(name))
	}
	// Output:
	// ngram: true
	// oracle: true
	// offline: true
	// lastvalue: true
	// ewma: true
	// static-gt: true
}

// ExampleFabrics shows the interconnect registry and replays one workload
// over a non-paper fabric: the same trace, predictor and parameters on a
// dragonfly instead of the default XGFT fat tree.
func ExampleFabrics() {
	registered := func(name string) bool {
		for _, n := range ibpower.Fabrics() {
			if n == name {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"xgft", "xgft3", "dragonfly", "torus2d", "torus3d"} {
		fmt.Printf("%s: %v\n", name, registered(name))
	}
	fabric, err := ibpower.NamedFabric("dragonfly")
	if err != nil {
		panic(err)
	}
	tr, err := ibpower.GenerateWorkload("nasbt", 9, ibpower.WorkloadOptions{IterScale: 0.1})
	if err != nil {
		panic(err)
	}
	cfg := ibpower.DefaultReplayConfig().WithFabric("dragonfly").WithPower(ibpower.GTMin, 0.01)
	res, err := ibpower.Replay(tr, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s replayed: %v (some savings: %v)\n",
		fabric.Name(), res.ExecTime > 0, res.AvgSavingPct() > 0)
	// Output:
	// xgft: true
	// xgft3: true
	// dragonfly: true
	// torus2d: true
	// torus3d: true
	// dragonfly(p=4,a=4,h=2,g=9) replayed: true (some savings: true)
}

// ExampleNewNamedPredictor selects a predictor from the registry by name and
// drives it over a periodic call stream: the last-value baseline locks onto
// a constant gap after a single observation.
func ExampleNewNamedPredictor() {
	pred, err := ibpower.NewNamedPredictor("lastvalue", ibpower.PredictorConfig{
		GT:           20 * time.Microsecond,
		Displacement: 0.01,
	})
	if err != nil {
		panic(err)
	}
	var now time.Duration
	for i := 0; i < 10; i++ {
		now += 500 * time.Microsecond
		pred.OnCall(41, now, now)
	}
	pred.Flush()
	st := pred.Stats()
	fmt.Printf("shutdowns: %d of %d calls, hit rate %.0f%%\n",
		st.Shutdowns, st.Calls, st.HitRatePct())
	// Output:
	// shutdowns: 9 of 10 calls, hit rate 100%
}

// ExampleRegisterPredictor plugs a custom predictor into the registry and
// runs it through the replay co-simulator like any built-in: here a
// trivial policy that always predicts a fixed 2 ms idle.
func ExampleRegisterPredictor() {
	// Register is once-per-process (duplicates panic by design); the Once
	// keeps this example re-runnable under go test -count=N.
	registerFixedOnce.Do(func() {
		ibpower.RegisterPredictor("example-fixed", func(cfg ibpower.PredictorConfig) (ibpower.Predictor, error) {
			return &fixedPredictor{idle: 2 * time.Millisecond, cfg: cfg}, nil
		})
	})
	tr, err := ibpower.GenerateWorkload("nasbt", 9, ibpower.WorkloadOptions{IterScale: 0.1})
	if err != nil {
		panic(err)
	}
	cfg := ibpower.DefaultReplayConfig().WithPredictor("example-fixed").WithPower(ibpower.GTMin, 0.01)
	res, err := ibpower.Replay(tr, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("custom predictor replayed: %v (some savings: %v)\n",
		res.ExecTime > 0, res.AvgSavingPct() > 0)
	// Output:
	// custom predictor replayed: true (some savings: true)
}

var registerFixedOnce sync.Once

// fixedPredictor implements ibpower.Predictor with a constant idle guess.
type fixedPredictor struct {
	idle time.Duration
	cfg  ibpower.PredictorConfig
	st   ibpower.PredictorStats
}

func (p *fixedPredictor) OnCall(id ibpower.EventID, start, end time.Duration) ibpower.Action {
	p.st.Calls++
	p.st.Shutdowns++
	return ibpower.Action{Shutdown: true, PredictedIdle: p.idle, RawIdle: p.idle}
}

func (p *fixedPredictor) Flush() {}

func (p *fixedPredictor) Stats() ibpower.PredictorStats { return p.st }

// ExampleRunMultijob co-schedules two workloads on one shared fat tree: each
// job keeps its own trace and predictor, the placement registry decides
// which terminals it occupies, and the links time the union of both jobs'
// traffic.
func ExampleRunMultijob() {
	fmt.Printf("placements: %v\n", ibpower.Placements())
	jobs, err := ibpower.ParseJobs("gromacs:8,alya:8")
	if err != nil {
		panic(err)
	}
	res, err := ibpower.RunMultijob(ibpower.MultijobConfig{
		Jobs:      jobs,
		Placement: "roundrobin",
		Opt:       ibpower.WorkloadOptions{IterScale: 0.05},
		Replay:    ibpower.DefaultReplayConfig(),
	})
	if err != nil {
		panic(err)
	}
	for _, j := range res.Jobs {
		fmt.Printf("%s: ran (%v), saved energy (%v), spread over >1 switch (%v)\n",
			j.App, j.Exec > 0, j.SavedLinkSeconds > 0, j.Switches > 1)
	}
	fmt.Printf("fabric makespan covers both jobs: %v\n",
		res.Fabric.MakeSpan >= res.Jobs[0].Exec && res.Fabric.MakeSpan >= res.Jobs[1].Exec)
	// Output:
	// placements: [linear random roundrobin]
	// gromacs: ran (true), saved energy (true), spread over >1 switch (true)
	// alya: ran (true), saved energy (true), spread over >1 switch (true)
	// fabric makespan covers both jobs: true
}

// ExampleReplay runs the paper's full evaluation pipeline on one workload.
func ExampleReplay() {
	tr, err := ibpower.GenerateWorkload("nasbt", 9, ibpower.WorkloadOptions{IterScale: 0.2})
	if err != nil {
		panic(err)
	}
	gt, _, err := ibpower.ChooseGT(tr)
	if err != nil {
		panic(err)
	}
	base, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig())
	if err != nil {
		panic(err)
	}
	res, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig().WithPower(gt, 0.01))
	if err != nil {
		panic(err)
	}
	fmt.Printf("saving in (25%%, 57%%): %v\n", res.AvgSavingPct() > 25 && res.AvgSavingPct() < 57)
	fmt.Printf("slowdown under 1%%: %v\n", res.TimeIncreasePct(base) < 1)
	// Output:
	// saving in (25%, 57%): true
	// slowdown under 1%: true
}
