package ibpower_test

import (
	"fmt"
	"time"

	"ibpower"
)

// Example demonstrates the core mechanism on a hand-rolled event stream:
// the Figure 2 ALYA pattern (three MPI_Sendrecv calls, two MPI_Allreduce
// calls) repeated until the PPA detects it and lane shutdowns begin.
func Example() {
	pred, err := ibpower.NewPredictor(ibpower.PredictorConfig{
		GT:           20 * time.Microsecond, // 2·Treact, the minimum
		Displacement: 0.01,
	})
	if err != nil {
		panic(err)
	}
	ctrl := ibpower.NewLinkController(0) // paper Treact = 10 µs

	type ev struct {
		id  ibpower.EventID
		gap time.Duration
	}
	iteration := []ev{
		{41, 400 * time.Microsecond}, // MPI_Sendrecv after computation
		{41, 4 * time.Microsecond},
		{41, 4 * time.Microsecond},
		{10, 300 * time.Microsecond}, // MPI_Allreduce
		{10, 250 * time.Microsecond},
	}
	var now time.Duration
	for it := 0; it < 10; it++ {
		for _, e := range iteration {
			now += e.gap
			start := ctrl.Acquire(now) // wake lanes if asleep
			act := pred.OnCall(e.id, start, start)
			if act.Shutdown {
				ctrl.Shutdown(start, act.PredictedIdle)
			}
			now = start
		}
	}
	ctrl.Finish(now)

	acct := ctrl.Accounting()
	fmt.Printf("shutdowns issued: %v (all woken by timer: %v)\n",
		ctrl.Shutdowns > 15, ctrl.DemandWakes == 0)
	fmt.Printf("saving below ceiling: %v\n", acct.SavingPct() < ibpower.MaxSavingPct)
	fmt.Printf("hit rate above 60%%: %v\n", pred.Stats().HitRatePct() > 60)
	// Output:
	// shutdowns issued: true (all woken by timer: true)
	// saving below ceiling: true
	// hit rate above 60%: true
}

// ExampleReplay runs the paper's full evaluation pipeline on one workload.
func ExampleReplay() {
	tr, err := ibpower.GenerateWorkload("nasbt", 9, ibpower.WorkloadOptions{IterScale: 0.2})
	if err != nil {
		panic(err)
	}
	gt, _, err := ibpower.ChooseGT(tr)
	if err != nil {
		panic(err)
	}
	base, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig())
	if err != nil {
		panic(err)
	}
	res, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig().WithPower(gt, 0.01))
	if err != nil {
		panic(err)
	}
	fmt.Printf("saving in (25%%, 57%%): %v\n", res.AvgSavingPct() > 25 && res.AvgSavingPct() < 57)
	fmt.Printf("slowdown under 1%%: %v\n", res.TimeIncreasePct(base) < 1)
	// Output:
	// saving in (25%, 57%): true
	// slowdown under 1%: true
}
