package ibpower_test

import (
	"os"
	"os/exec"
	"testing"
)

// exampleArgs holds the tiny-scale invocation for every examples/ program.
// A directory appearing here but not on disk — or on disk but not here —
// fails the test, so new examples must register a smoke invocation and
// removed ones must clean up.
var exampleArgs = map[string][]string{
	"quickstart":  {},
	"stencil":     {"-np", "4", "-steps", "30", "-cells", "2048"},
	"gtsweep":     {"-app", "gromacs", "-np", "8", "-scale", "0.05"},
	"tracedriven": {"-app", "alya", "-np", "8", "-scale", "0.05"},
	"multijob":    {"-jobs", "gromacs:8,alya:8", "-scale", "0.05"},
	"timeseries":  {"-app", "gromacs", "-np", "8", "-scale", "0.05"},
}

// TestExamplesSmoke executes every examples/ program with tiny iteration
// scales. go build compiles them, but only running them catches rotted
// output paths, panics behind flags, and API drift in code users copy first.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke runs subprocesses; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			onDisk[e.Name()] = true
		}
	}
	for name := range exampleArgs {
		if !onDisk[name] {
			t.Errorf("examples/%s has a smoke invocation but no directory", name)
		}
	}
	for name := range onDisk {
		args, ok := exampleArgs[name]
		if !ok {
			t.Errorf("examples/%s has no smoke invocation in exampleArgs", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", append([]string{"run", "./examples/" + name}, args...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s %v failed: %v\n%s", name, args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
}
