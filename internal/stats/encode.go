package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TimeSeriesDocVersion is the schema version WriteJSON emits; consumers
// must reject documents with a version they do not know.
const TimeSeriesDocVersion = 1

// SeriesSnapshot is the encoded form of one series: the run-wide sketch
// summary plus the per-bucket counts and compensated sums. For a sample
// series sums[i]/counts[i] is the per-interval mean; for a span series
// sums[i] is the weight (e.g. busy seconds) that fell into interval i.
type SeriesSnapshot struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit"`
	Kind   string    `json:"kind"` // "sample" or "span"
	Count  int64     `json:"count"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Counts []int64   `json:"counts"`
	Sums   []float64 `json:"sums"`
}

// TimeSeriesDoc is the versioned JSON document a telemetry run emits.
type TimeSeriesDoc struct {
	Version int              `json:"version"`
	TickNS  int64            `json:"tick_ns"`
	Buckets int              `json:"buckets"`
	Series  []SeriesSnapshot `json:"series"`
}

// Snapshot captures the recorder's current state as an encodable document.
// Every field is a deterministic function of the recorded stream, so equal
// recordings snapshot to equal documents.
func (ts *TimeSeries) Snapshot() *TimeSeriesDoc {
	doc := &TimeSeriesDoc{
		Version: TimeSeriesDocVersion,
		TickNS:  ts.tick.Nanoseconds(),
		Buckets: ts.used,
		Series:  make([]SeriesSnapshot, len(ts.s)),
	}
	for i := range ts.s {
		se := &ts.s[i]
		kind := "sample"
		if se.span {
			kind = "span"
		}
		snap := SeriesSnapshot{
			Name: se.name, Unit: se.unit, Kind: kind,
			Count: se.sk.Count(),
			Mean:  se.sk.Mean(), Min: se.sk.Min(), Max: se.sk.Max(),
			P50: se.sk.P50(), P95: se.sk.P95(), P99: se.sk.P99(),
			Counts: make([]int64, ts.used),
			Sums:   make([]float64, ts.used),
		}
		copy(snap.Counts, se.count[:ts.used])
		for b := 0; b < ts.used; b++ {
			snap.Sums[b] = se.sum[b] + se.comp[b]
		}
		doc.Series[i] = snap
	}
	return doc
}

// WriteJSON writes the versioned telemetry document as indented JSON with a
// trailing newline. Output bytes are a deterministic function of the
// recorded stream (encoding/json renders float64 via the shortest
// round-trippable form), so goldens can pin it.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(ts.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteProm writes the recorder in Prometheus text exposition format: one
// summary family per series (quantile samples plus _sum and _count), ready
// for a scrape endpoint. prefix namespaces the metric names; empty selects
// "ibpower".
func (ts *TimeSeries) WriteProm(w io.Writer, prefix string) error {
	if prefix == "" {
		prefix = "ibpower"
	}
	for i := range ts.s {
		se := &ts.s[i]
		name := promName(prefix, se.name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s (%s)\n# TYPE %s summary\n",
			name, se.name, se.unit, name); err != nil {
			return err
		}
		for _, q := range [3]struct {
			phi string
			v   float64
		}{{"0.5", se.sk.P50()}, {"0.95", se.sk.P95()}, {"0.99", se.sk.P99()}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n",
				name, q.phi, promFloat(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, promFloat(se.sk.Sum()), name, se.sk.Count()); err != nil {
			return err
		}
	}
	return nil
}

// promName joins prefix and series name into a valid Prometheus metric
// name: dots and any other illegal runes become underscores.
func promName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(name))
	b.WriteString(prefix)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
