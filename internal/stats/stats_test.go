package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("MeanDuration(nil) != 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("MeanDuration = %v", got)
	}
}

// TestMeanDurationEdgeCases pins nearest behaviors the harness relies on:
// empty and singleton inputs, truncation, and — the regression this table
// exists for — sums of large durations that overflow a naive int64
// accumulator on long sweeps.
func TestMeanDurationEdgeCases(t *testing.T) {
	const maxD = time.Duration(math.MaxInt64)
	const minD = time.Duration(math.MinInt64)
	big := make([]time.Duration, 1000)
	for i := range big {
		big[i] = maxD - time.Duration(i)
	}
	cases := []struct {
		name string
		in   []time.Duration
		want time.Duration
	}{
		{"empty", nil, 0},
		{"single", []time.Duration{42 * time.Hour}, 42 * time.Hour},
		{"single max", []time.Duration{maxD}, maxD},
		{"truncates toward zero", []time.Duration{1, 2}, 1},
		{"negative truncates toward zero", []time.Duration{-1, -2}, -1},
		{"mixed signs", []time.Duration{-3 * time.Second, time.Second}, -time.Second},
		// A naive sum wraps to -2 here and reports -1.
		{"two max durations", []time.Duration{maxD, maxD}, maxD},
		{"thousand near-max durations", big, maxD - 500},
		{"two min durations", []time.Duration{minD, minD}, minD},
		{"cancelling extremes", []time.Duration{maxD, -maxD, 6}, 2},
	}
	for _, c := range cases {
		if got := MeanDuration(c.in); got != c.want {
			t.Errorf("%s: MeanDuration = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMeanDurationMatchesNaive cross-checks the 128-bit accumulator against
// the straightforward sum on inputs that cannot overflow.
func TestMeanDurationMatchesNaive(t *testing.T) {
	f := func(ns []int32) bool {
		ds := make([]time.Duration, len(ns))
		var sum time.Duration
		for i, n := range ns {
			ds[i] = time.Duration(n)
			sum += time.Duration(n)
		}
		if len(ds) == 0 {
			return MeanDuration(ds) == 0
		}
		return MeanDuration(ds) == sum/time.Duration(len(ds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("stddev of singleton != 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := map[float64]float64{0: 1, 50: 5, 100: 10, 90: 9}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty != 0")
	}
	// Input must not be mutated (sorted copy).
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

// TestPercentileEdgeCases pins the nearest-rank indexing on the boundaries
// the harness hits: singletons, out-of-range and sub-1% percentiles, ranks
// that fall exactly on an element, and NaN (whose int conversion is
// platform-defined and must never reach the index computation).
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"below range clamps to min", []float64{1, 2, 3}, -10, 1},
		{"above range clamps to max", []float64{1, 2, 3}, 110, 3},
		{"tiny p selects min", []float64{1, 2, 3, 4}, 1e-9, 1},
		// Nearest-rank on 4 elements: P25 is the 1st, P26 the 2nd.
		{"exact rank boundary", []float64{1, 2, 3, 4}, 25, 1},
		{"just past rank boundary", []float64{1, 2, 3, 4}, 26, 2},
		{"p50 even count takes lower", []float64{1, 2, 3, 4}, 50, 2},
		{"unsorted input", []float64{9, 1, 5}, 50, 5},
	}
	for _, c := range cases {
		if got := Percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: P%v(%v) = %v, want %v", c.name, c.p, c.xs, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(NaN) = %v, want NaN", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(20*time.Microsecond, 200*time.Microsecond)
	h.Add(5 * time.Microsecond)
	h.Add(50 * time.Microsecond)
	h.Add(500 * time.Microsecond)
	h.Add(20 * time.Microsecond) // boundary goes to the second bin
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram(2*time.Second, time.Second)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 3.14159)
	tb.Row("b", 42)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

// Property: Mean is bounded by min and max.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m := Mean(xs)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
