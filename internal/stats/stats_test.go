package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("MeanDuration(nil) != 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("MeanDuration = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("stddev of singleton != 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := map[float64]float64{0: 1, 50: 5, 100: 10, 90: 9}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty != 0")
	}
	// Input must not be mutated (sorted copy).
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(20*time.Microsecond, 200*time.Microsecond)
	h.Add(5 * time.Microsecond)
	h.Add(50 * time.Microsecond)
	h.Add(500 * time.Microsecond)
	h.Add(20 * time.Microsecond) // boundary goes to the second bin
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram(2*time.Second, time.Second)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 3.14159)
	tb.Row("b", 42)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

// Property: Mean is bounded by min and max.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m := Mean(xs)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
