package stats

import (
	"math"
	"sort"
)

// This file is the streaming half of the package: constant-memory estimators
// that absorb one sample at a time. They back the TimeSeries recorder
// (timeseries.go), where millions of replay events flow through per-interval
// buckets and nothing may allocate on the record path.

// P2Quantile estimates an arbitrary quantile φ of a stream in O(1) memory
// with the P² algorithm of Jain & Chlamtac (CACM 1985): five markers track
// the running minimum, maximum, the φ-quantile and the two midpoints, and
// each observation nudges the middle markers toward their desired rank
// positions with a piecewise-parabolic height adjustment.
//
// The zero value is not ready for use; construct with NewP2Quantile. Add is
// allocation-free. Non-finite samples (NaN, ±Inf) are ignored, so the
// estimate is always finite and always within the observed [min, max].
type P2Quantile struct {
	phi float64
	n   int64      // finite observations absorbed by Add
	q   [5]float64 // marker heights (q[0] = min, q[4] = max once n >= 5)
	pos [5]float64 // actual marker positions (1-based ranks)
	des [5]float64 // desired marker positions
	inc [5]float64 // per-observation desired-position increments

	// Merge folds other estimators in as count-weighted frozen estimates
	// (see Merge); they never perturb the live marker state.
	mavg float64 // count-weighted mean of merged shard estimates
	mn   int64   // Σ count_i over merged shards
}

// NewP2Quantile returns an estimator for the φ-quantile (0 <= phi <= 1;
// out-of-range values clamp, NaN selects the median).
func NewP2Quantile(phi float64) P2Quantile {
	if math.IsNaN(phi) {
		phi = 0.5
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	return P2Quantile{
		phi: phi,
		inc: [5]float64{0, phi / 2, phi, (1 + phi) / 2, 1},
	}
}

// Phi returns the quantile the estimator tracks.
func (p *P2Quantile) Phi() float64 { return p.phi }

// Count returns the number of samples absorbed, including merged shards.
func (p *P2Quantile) Count() int64 { return p.n + p.mn }

// Add absorbs one sample. Non-finite values are ignored.
func (p *P2Quantile) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if p.n < 5 {
		// Insertion-sort the first five observations into the marker array.
		i := int(p.n)
		for i > 0 && p.q[i-1] > x {
			p.q[i] = p.q[i-1]
			i--
		}
		p.q[i] = x
		p.n++
		if p.n == 5 {
			for j := 0; j < 5; j++ {
				p.pos[j] = float64(j + 1)
				p.des[j] = 1 + 4*p.inc[j]
			}
		}
		return
	}

	// Locate the cell containing x, updating the extreme markers.
	var k int
	switch {
	case x < p.q[0]:
		p.q[0] = x
		k = 0
	case x >= p.q[4]:
		p.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.des[i] += p.inc[i]
	}
	p.n++

	// Nudge the three middle markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.des[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if !(p.q[i-1] < h && h < p.q[i+1]) {
				h = p.linear(i, s)
			}
			p.q[i] = h
			p.pos[i] += s
		}
	}
}

// parabolic returns the piecewise-parabolic height candidate for marker i
// moved by d ∈ {-1, +1}.
func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.q[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.q[i+1]-p.q[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.q[i]-p.q[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear returns the linear fallback height for marker i moved by d.
func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.q[i] + d*(p.q[j]-p.q[i])/(p.pos[j]-p.pos[i])
}

// own returns the estimate over this estimator's directly observed samples.
func (p *P2Quantile) own() float64 {
	if p.n >= 5 {
		return p.q[2]
	}
	if p.n == 0 {
		return 0
	}
	// Fewer than five samples: exact nearest-rank over the sorted prefix.
	var buf [5]float64
	cp := buf[:p.n]
	copy(cp, p.q[:p.n])
	sort.Float64s(cp)
	rank := int(math.Ceil(p.phi*float64(p.n))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Quantile returns the current estimate: the P² marker height for the
// directly observed stream, combined count-weighted with any merged shards.
// It returns 0 before the first sample.
func (p *P2Quantile) Quantile() float64 {
	switch {
	case p.mn == 0:
		return p.own()
	case p.n == 0:
		return p.mavg
	}
	return weighted(p.own(), p.n, p.mavg, p.mn)
}

// weighted returns the count-weighted combination of two estimates in
// convex-combination form: each term is bounded by max(|a|, |b|), so the
// result cannot overflow even for estimates near ±MaxFloat64 (a naive
// Σ estimateᵢ·countᵢ does) and always lies between a and b.
func weighted(a float64, an int64, b float64, bn int64) float64 {
	f := float64(bn) / float64(an+bn)
	return a*(1-f) + b*f
}

// Merge folds other into p as a frozen count-weighted estimate: the merged
// quantile is the count-weighted mean of every shard's estimate plus p's own
// stream. The operation is commutative and associative up to float64
// rounding (any merge tree over the same shards yields the same estimate to
// within a few ulps), which is what makes per-shard sketches recombinable.
// other is read, not consumed.
func (p *P2Quantile) Merge(other *P2Quantile) {
	p.absorb(other.own(), other.n)
	p.absorb(other.mavg, other.mn)
}

// absorb adds one frozen estimate with weight cnt to the merged-shard mean.
func (p *P2Quantile) absorb(est float64, cnt int64) {
	if cnt == 0 {
		return
	}
	p.mavg = weighted(p.mavg, p.mn, est, cnt)
	p.mn += cnt
}

// KahanMean is a compensated streaming mean: samples accumulate through
// Neumaier's variant of Kahan summation, so the running sum keeps the low-
// order bits a naive float64 accumulation loses when a large offset dwarfs
// the increments or alternating signs cancel. The zero value is ready.
type KahanMean struct {
	sum float64 // running sum, high-order part
	c   float64 // running compensation, low-order part
	n   int64
}

// Add absorbs one sample.
func (k *KahanMean) Add(x float64) {
	k.sum, k.c = neumaierAdd(k.sum, k.c, x)
	k.n++
}

// neumaierAdd adds x to the compensated pair (sum, c).
func neumaierAdd(sum, c, x float64) (float64, float64) {
	t := sum + x
	if math.Abs(sum) >= math.Abs(x) {
		c += (sum - t) + x
	} else {
		c += (x - t) + sum
	}
	return t, c
}

// Count returns the number of samples.
func (k *KahanMean) Count() int64 { return k.n }

// Sum returns the compensated sum.
func (k *KahanMean) Sum() float64 { return k.sum + k.c }

// Mean returns the compensated mean, or 0 before the first sample.
func (k *KahanMean) Mean() float64 {
	if k.n == 0 {
		return 0
	}
	return k.Sum() / float64(k.n)
}

// Merge folds other into k, compensating the cross-shard addition too.
func (k *KahanMean) Merge(other *KahanMean) {
	k.sum, k.c = neumaierAdd(k.sum, k.c, other.sum)
	k.sum, k.c = neumaierAdd(k.sum, k.c, other.c)
	k.n += other.n
}

// Welford is the online mean/variance accumulator of Welford (1962): one
// pass, O(1) memory, no catastrophic cancellation on large offsets (the
// failure mode of the naive Σx²−(Σx)² formula). The zero value is ready.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // Σ (x - mean)², updated incrementally
}

// Add absorbs one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean, or 0 before the first sample.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds other into w with the parallel-variance combination of Chan,
// Golub & LeVeque; like the other streaming merges it is order-independent.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.mean += d * float64(other.n) / float64(n)
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.n = n
}

// Sketch bundles the streaming estimators one telemetry series needs:
// count, compensated mean, exact min/max, and P² estimates of the median,
// 95th and 99th percentiles — seven numbers, O(1) memory, 0 allocs/op.
//
// Construct with NewSketch (or Init on an embedded value). Sketches built
// over disjoint shards of a stream recombine with Merge.
type Sketch struct {
	mean     KahanMean
	min, max float64
	q50      P2Quantile
	q95      P2Quantile
	q99      P2Quantile
}

// NewSketch returns an initialized sketch.
func NewSketch() *Sketch {
	s := &Sketch{}
	s.Init()
	return s
}

// Init prepares a zero-value Sketch (embedded values use this).
func (s *Sketch) Init() {
	s.mean = KahanMean{}
	s.min, s.max = math.Inf(1), math.Inf(-1)
	s.q50 = NewP2Quantile(0.50)
	s.q95 = NewP2Quantile(0.95)
	s.q99 = NewP2Quantile(0.99)
}

// Add absorbs one sample. Non-finite values are ignored.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	s.mean.Add(x)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.q50.Add(x)
	s.q95.Add(x)
	s.q99.Add(x)
}

// Count returns the number of samples, including merged shards.
func (s *Sketch) Count() int64 { return s.mean.n }

// Mean returns the compensated mean, or 0 before the first sample.
func (s *Sketch) Mean() float64 { return s.mean.Mean() }

// Sum returns the compensated sum.
func (s *Sketch) Sum() float64 { return s.mean.Sum() }

// Min returns the smallest sample, or 0 before the first sample.
func (s *Sketch) Min() float64 {
	if s.mean.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 before the first sample.
func (s *Sketch) Max() float64 {
	if s.mean.n == 0 {
		return 0
	}
	return s.max
}

// P50 returns the median estimate, clamped into the observed [min, max].
func (s *Sketch) P50() float64 { return s.clamp(s.q50.Quantile()) }

// P95 returns the 95th-percentile estimate. Estimates are clamped so that
// P50 <= P95 <= P99 always holds, even where the independent P² marker
// states would momentarily disagree.
func (s *Sketch) P95() float64 { return math.Max(s.P50(), s.clamp(s.q95.Quantile())) }

// P99 returns the 99th-percentile estimate (>= P95, see P95).
func (s *Sketch) P99() float64 { return math.Max(s.P95(), s.clamp(s.q99.Quantile())) }

func (s *Sketch) clamp(q float64) float64 {
	if s.mean.n == 0 {
		return 0
	}
	if q < s.min {
		return s.min
	}
	if q > s.max {
		return s.max
	}
	return q
}

// Merge folds other into s: counts, compensated sums and extremes combine
// exactly; quantile estimates combine count-weighted (see P2Quantile.Merge).
// Merging shards in any order or tree shape yields identical results.
func (s *Sketch) Merge(other *Sketch) {
	if other.mean.n > 0 {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.mean.Merge(&other.mean)
	s.q50.Merge(&other.q50)
	s.q95.Merge(&other.q95)
	s.q99.Merge(&other.q99)
}
