package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesRegistration(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 16)
	a := ts.AddSeries("queue.depth", "jobs")
	b := ts.AddSpanSeries("util.up", "busy-seconds")
	if ts.NumSeries() != 2 {
		t.Fatalf("NumSeries = %d", ts.NumSeries())
	}
	if ts.Name(a) != "queue.depth" || ts.Unit(a) != "jobs" || ts.IsSpan(a) {
		t.Errorf("series a metadata wrong: %q %q span=%v", ts.Name(a), ts.Unit(a), ts.IsSpan(a))
	}
	if !ts.IsSpan(b) {
		t.Error("span series not marked as span")
	}
	if id, ok := ts.Lookup("util.up"); !ok || id != b {
		t.Errorf("Lookup(util.up) = %v, %v", id, ok)
	}
	if _, ok := ts.Lookup("nope"); ok {
		t.Error("Lookup of unknown series succeeded")
	}
}

func TestTimeSeriesRecordBuckets(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 16)
	id := ts.AddSeries("v", "x")
	ts.Record(id, 0, 1)
	ts.Record(id, 500*time.Microsecond, 3)
	ts.Record(id, 2500*time.Microsecond, 10)
	ts.Record(id, -time.Second, 7) // clamps to bucket 0
	if ts.Buckets() != 3 {
		t.Fatalf("buckets = %d, want 3", ts.Buckets())
	}
	if c := ts.BucketCount(id, 0); c != 3 {
		t.Errorf("bucket 0 count = %d, want 3", c)
	}
	if s := ts.BucketSum(id, 0); s != 11 {
		t.Errorf("bucket 0 sum = %v, want 11", s)
	}
	if c, s := ts.BucketCount(id, 1), ts.BucketSum(id, 1); c != 0 || s != 0 {
		t.Errorf("empty bucket 1: count=%d sum=%v", c, s)
	}
	if c, s := ts.BucketCount(id, 2), ts.BucketSum(id, 2); c != 1 || s != 10 {
		t.Errorf("bucket 2: count=%d sum=%v", c, s)
	}
	if n := ts.Sketch(id).Count(); n != 4 {
		t.Errorf("sketch count = %d, want 4", n)
	}
	ts.Record(id, time.Millisecond, math.NaN())
	if ts.Sketch(id).Count() != 4 || ts.BucketCount(id, 1) != 0 {
		t.Error("non-finite sample reached a bucket")
	}
}

// TestTimeSeriesRecordSpan pins proportional weight spreading: a span
// covering 2.5 buckets deposits weight by bucket overlap, a span ending
// exactly on a boundary does not open the next bucket, and a zero-length
// span lands entirely in its start bucket.
func TestTimeSeriesRecordSpan(t *testing.T) {
	tick := time.Millisecond
	ts := NewTimeSeries(tick, 16)
	id := ts.AddSpanSeries("busy", "s")

	// [0.5ms, 3ms): covers half of bucket 0, all of 1 and 2.
	ts.RecordSpan(id, tick/2, 3*tick, 2.5)
	if ts.Buckets() != 3 {
		t.Fatalf("buckets = %d, want 3 (boundary-ending span opened bucket 3)", ts.Buckets())
	}
	for b, want := range []float64{0.5, 1.0, 1.0} {
		if got := ts.BucketSum(id, b); math.Abs(got-want) > 1e-12 {
			t.Errorf("bucket %d weight = %v, want %v", b, got, want)
		}
		if c := ts.BucketCount(id, b); c != 1 {
			t.Errorf("bucket %d span count = %d, want 1", b, c)
		}
	}
	if n := ts.Sketch(id).Count(); n != 1 {
		t.Errorf("sketch absorbed the span %d times", n)
	}

	// Zero-length span: all weight in the start bucket.
	ts.RecordSpan(id, 5*tick, 5*tick, 7)
	if got := ts.BucketSum(id, 5); got != 7 {
		t.Errorf("zero-length span weight = %v, want 7", got)
	}
	// Reversed endpoints swap.
	ts.RecordSpan(id, 8*tick, 7*tick, 4)
	if got := ts.BucketSum(id, 7); got != 4 {
		t.Errorf("reversed span weight = %v, want 4", got)
	}
	// Negative times clamp to zero.
	before := ts.BucketSum(id, 0)
	ts.RecordSpan(id, -2*tick, -tick, 9)
	if got := ts.BucketSum(id, 0) - before; math.Abs(got-9) > 1e-12 {
		t.Errorf("negative span deposited %v in bucket 0, want 9", got)
	}
}

// TestTimeSeriesFold drives the recorder past its ring and checks the tick
// doubles while per-series totals are conserved exactly (the folds use
// compensated addition).
func TestTimeSeriesFold(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 8)
	id := ts.AddSeries("v", "x")
	r := rand.New(rand.NewSource(3))
	var total float64
	var n int64
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		total += v
		n++
		ts.Record(id, time.Duration(i)*300*time.Microsecond, v)
	}
	// 1000 * 0.3ms = 300ms of run in 8 buckets: tick must have doubled to
	// at least 300ms/8, staying a power-of-two multiple of 1ms.
	if ts.Tick() < 300*time.Millisecond/8 || ts.Tick()%time.Millisecond != 0 {
		t.Errorf("tick after folding = %v", ts.Tick())
	}
	if ts.Buckets() > 8 {
		t.Errorf("buckets = %d, exceeds ring of 8", ts.Buckets())
	}
	var sum float64
	var cnt int64
	for b := 0; b < ts.Buckets(); b++ {
		sum += ts.BucketSum(id, b)
		cnt += ts.BucketCount(id, b)
	}
	if cnt != n {
		t.Errorf("folded counts total %d, want %d", cnt, n)
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("folded sums total %v, want %v", sum, total)
	}
}

// TestTimeSeriesDeterminism is the rule replay goldens rely on: identical
// record streams produce byte-identical JSON documents.
func TestTimeSeriesDeterminism(t *testing.T) {
	build := func() *TimeSeries {
		ts := NewTimeSeries(time.Millisecond, 8)
		a := ts.AddSeries("a", "x")
		b := ts.AddSpanSeries("b", "s")
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * 777 * time.Microsecond
			ts.Record(a, at, r.NormFloat64())
			ts.RecordSpan(b, at, at+3*time.Millisecond, r.Float64())
		}
		return ts
	}
	var j1, j2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("identical record streams produced different JSON documents")
	}
	if !bytes.HasSuffix(j1.Bytes(), []byte("\n")) {
		t.Error("JSON document missing trailing newline")
	}
	doc := build().Snapshot()
	if doc.Version != TimeSeriesDocVersion {
		t.Errorf("snapshot version = %d, want %d", doc.Version, TimeSeriesDocVersion)
	}
	if doc.Buckets != len(doc.Series[0].Counts) || doc.Buckets != len(doc.Series[0].Sums) {
		t.Errorf("snapshot bucket arrays disagree with Buckets=%d", doc.Buckets)
	}
}

func TestTimeSeriesWriteProm(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 8)
	id := ts.AddSeries("pred.hit", "hit")
	for i := 0; i < 100; i++ {
		ts.Record(id, time.Duration(i)*time.Millisecond, float64(i%2))
	}
	var buf bytes.Buffer
	if err := ts.WriteProm(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ibpower_pred_hit summary",
		`ibpower_pred_hit{quantile="0.5"}`,
		`ibpower_pred_hit{quantile="0.99"}`,
		"ibpower_pred_hit_sum 50",
		"ibpower_pred_hit_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("prom output contains NaN")
	}
}

func TestNewTimeSeriesPanicsOnBadTick(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive tick")
		}
	}()
	NewTimeSeries(0, 8)
}

// Allocation pins: Record and RecordSpan run inside the replay event loop
// for every transfer and mode change, so they are hard 0 allocs/op
// contracts (satellite of the telemetry PR; the replay-loop pin lives in
// internal/replay).
func TestTimeSeriesRecordAllocs(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 64)
	id := ts.AddSeries("v", "x")
	at := time.Duration(0)
	if avg := testing.AllocsPerRun(1000, func() {
		ts.Record(id, at, 1.5)
		at += 17 * time.Microsecond
	}); avg != 0 {
		t.Errorf("TimeSeries.Record allocates %.1f/op, want 0", avg)
	}
}

func TestTimeSeriesRecordSpanAllocs(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond, 64)
	id := ts.AddSpanSeries("v", "s")
	at := time.Duration(0)
	if avg := testing.AllocsPerRun(1000, func() {
		ts.RecordSpan(id, at, at+5*time.Millisecond, 0.25)
		at += 23 * time.Microsecond
	}); avg != 0 {
		t.Errorf("TimeSeries.RecordSpan allocates %.1f/op, want 0", avg)
	}
}
