// Package stats provides small statistics and table-formatting helpers used
// by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanDuration returns the mean of the durations, or 0 for an empty slice.
// The sum is accumulated in 128 bits, so long sweeps of large durations
// (e.g. hours-scale link busy times over millions of samples) cannot
// overflow the int64 a naive sum would wrap; the mean itself always fits.
// Like integer division, the result truncates toward zero.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var hi int64  // high 64 bits of the signed 128-bit sum
	var lo uint64 // low 64 bits
	for _, d := range ds {
		var carry uint64
		lo, carry = bits.Add64(lo, uint64(d), 0)
		hi += int64(d)>>63 + int64(carry) // sign-extend d's high word
	}
	neg := hi < 0
	if neg {
		// Two's-complement negate the 128-bit sum to divide magnitudes.
		lo = -lo
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	q, _ := bits.Div64(uint64(hi), lo, uint64(len(ds)))
	if neg {
		return -time.Duration(q)
	}
	return time.Duration(q)
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// copy of xs: the smallest element such that at least p% of the samples are
// <= it. p outside [0, 100] clamps to the minimum/maximum; a NaN p returns
// NaN (conversion of NaN to int is platform-defined, so it must not reach
// the rank computation).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Histogram is a fixed-bin histogram over durations.
type Histogram struct {
	Bounds []time.Duration // ascending upper bounds; final bin is open-ended
	Counts []int
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add classifies d.
func (h *Histogram) Add(d time.Duration) {
	for i, b := range h.Bounds {
		if d < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total returns the number of samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Table renders aligned text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	dash := make([]string, len(t.header))
	for i := range dash {
		dash[i] = strings.Repeat("-", width[i])
	}
	if _, err := fmt.Fprintln(w, line(dash)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}
