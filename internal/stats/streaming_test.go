package stats

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// P² accuracy tables (experiment E19): estimator vs exact nearest-rank
// percentiles over the four reference distributions at two stream lengths.
// Tolerances are range-normalized (|est − exact| / (max − min)) and pinned
// at roughly 2× the measured error, so a regression in the marker update
// trips the test while seed-to-seed noise does not. Measured errors are
// recorded in EXPERIMENTS.md §E19.
// ---------------------------------------------------------------------------

// accuracyDists are the E19 reference distributions. Zipf exercises the
// heavy-tailed case where upper quantiles sit far from the mass; bimodal
// exercises a density gap the median markers must straddle.
var accuracyDists = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
	{"normal", func(r *rand.Rand) float64 { return r.NormFloat64() }},
	{"zipf", nil}, // built per-rand below: NewZipf captures the source
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Intn(2) == 0 {
			return r.NormFloat64() * 0.5
		}
		return 8 + r.NormFloat64()
	}},
}

func distGen(name string, r *rand.Rand) func() float64 {
	if name == "zipf" {
		z := rand.NewZipf(r, 1.5, 1, 1<<20)
		return func() float64 { return float64(z.Uint64()) }
	}
	for _, d := range accuracyDists {
		if d.name == name {
			gen := d.gen
			return func() float64 { return gen(r) }
		}
	}
	panic("unknown distribution " + name)
}

// p2Tolerance is the pinned range-normalized error budget per distribution.
// The heavy-tailed zipf needs headroom at φ=0.99 on short streams. See
// EXPERIMENTS.md §E19 for the measured values these bound.
var p2Tolerance = map[string]float64{
	"uniform": 0.01,
	"normal":  0.02,
	"zipf":    0.06,
	"bimodal": 0.04,
}

// p2ToleranceOverride widens individual (dist, φ) cells. The bimodal median
// is the algorithm's documented worst case: the true median sits at the edge
// of the density gap between the modes, where the parabolic marker update
// interpolates through a region with no samples, so the estimate lands
// inside the gap (§E19 caveat). The run-wide shape (p90+) is unaffected.
var p2ToleranceOverride = map[string]map[float64]float64{
	"bimodal": {0.50: 0.30},
}

func TestP2QuantileAccuracyTable(t *testing.T) {
	phis := []float64{0.50, 0.90, 0.95, 0.99}
	for _, d := range accuracyDists {
		for _, n := range []int{1_000, 100_000} {
			r := rand.New(rand.NewSource(19))
			gen := distGen(d.name, r)
			ests := make([]P2Quantile, len(phis))
			for i, phi := range phis {
				ests[i] = NewP2Quantile(phi)
			}
			xs := make([]float64, n)
			for i := 0; i < n; i++ {
				x := gen()
				xs[i] = x
				for j := range ests {
					ests[j].Add(x)
				}
			}
			span := Percentile(xs, 100) - Percentile(xs, 0)
			if span == 0 {
				t.Fatalf("%s n=%d: degenerate sample range", d.name, n)
			}
			for i, phi := range phis {
				exact := Percentile(xs, phi*100)
				got := ests[i].Quantile()
				relErr := math.Abs(got-exact) / span
				t.Logf("%s n=%d φ=%.2f: P²=%.6g exact=%.6g range-err=%.2e",
					d.name, n, phi, got, exact, relErr)
				tol := p2Tolerance[d.name]
				if o, ok := p2ToleranceOverride[d.name][phi]; ok {
					tol = o
				}
				if relErr > tol {
					t.Errorf("%s n=%d φ=%.2f: range-normalized error %.3g exceeds %.3g (P²=%v exact=%v)",
						d.name, n, phi, relErr, tol, got, exact)
				}
			}
		}
	}
}

// TestP2QuantileSmallStreams pins the exact-prefix regime: below five
// samples the estimator must agree exactly with nearest-rank.
func TestP2QuantileSmallStreams(t *testing.T) {
	xs := []float64{7, 3, 9, 1}
	for n := 0; n <= len(xs); n++ {
		for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
			p := NewP2Quantile(phi)
			for _, x := range xs[:n] {
				p.Add(x)
			}
			var want float64
			if n > 0 {
				want = Percentile(xs[:n], phi*100)
			}
			if got := p.Quantile(); got != want {
				t.Errorf("n=%d φ=%v: got %v, want exact nearest-rank %v", n, phi, got, want)
			}
		}
	}
}

func TestP2QuantileIgnoresNonFinite(t *testing.T) {
	p := NewP2Quantile(0.5)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		p.Add(x)
	}
	if p.Count() != 0 {
		t.Fatalf("non-finite samples counted: %d", p.Count())
	}
	p.Add(1)
	p.Add(math.NaN())
	p.Add(2)
	if p.Count() != 2 {
		t.Fatalf("count = %d, want 2", p.Count())
	}
	if q := p.Quantile(); math.IsNaN(q) || q < 1 || q > 2 {
		t.Fatalf("quantile %v out of observed range", q)
	}
}

// TestPercentileP2CrossValidation closes the stats test gap: Percentile and
// P2Quantile estimate the same functional, so on seeded uniform streams long
// enough for the markers to settle they must agree within a few percent of
// the sample range — whichever of the two regressed, this trips.
func TestPercentileP2CrossValidation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(2000)
		phi := 0.1 + 0.8*r.Float64()
		p := NewP2Quantile(phi)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			p.Add(xs[i])
		}
		exact := Percentile(xs, phi*100)
		span := Percentile(xs, 100) - Percentile(xs, 0)
		if diff := math.Abs(p.Quantile()-exact) / span; diff > 0.05 {
			t.Errorf("seed=%d n=%d φ=%.3f: P²=%v vs Percentile=%v (range-err %.3g)",
				seed, n, phi, p.Quantile(), exact, diff)
		}
	}
}

// ---------------------------------------------------------------------------
// Compensated accumulators vs exact 128-bit-plus accumulation.
// ---------------------------------------------------------------------------

// exactSum accumulates in 200-bit floats — effectively exact for these
// inputs — to give the compensated accumulators a ground truth.
func exactSum(xs []float64) float64 {
	sum := new(big.Float).SetPrec(200)
	for _, x := range xs {
		sum.Add(sum, new(big.Float).SetPrec(200).SetFloat64(x))
	}
	f, _ := sum.Float64()
	return f
}

// TestKahanMeanLargeOffset feeds a sum whose increments vanish below the
// offset's ulp: naive float64 accumulation drops every increment, the
// compensated sum keeps them all.
func TestKahanMeanLargeOffset(t *testing.T) {
	xs := make([]float64, 1+10_000)
	xs[0] = 1e16 // ulp(1e16) = 2, so naive += 0.125 is a no-op
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.125
	}
	var k KahanMean
	naive := 0.0
	for _, x := range xs {
		k.Add(x)
		naive += x
	}
	exact := exactSum(xs)
	if k.Sum() != exact {
		t.Errorf("compensated sum %v != exact %v", k.Sum(), exact)
	}
	if naive == exact {
		t.Error("naive sum unexpectedly exact; pathological input no longer pathological")
	}
	wantMean := exact / float64(len(xs))
	if got := k.Mean(); math.Abs(got-wantMean) > math.Abs(wantMean)*1e-15 {
		t.Errorf("mean %v, want %v", got, wantMean)
	}
}

// TestKahanMeanAlternatingSign cancels huge alternating terms; the true sum
// is the tiny residuals, far below the big terms' ulp.
func TestKahanMeanAlternatingSign(t *testing.T) {
	const pairs = 5_000
	xs := make([]float64, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		xs = append(xs, 1e12+1e-6, -1e12)
	}
	var k KahanMean
	naive := 0.0
	for _, x := range xs {
		k.Add(x)
		naive += x
	}
	exact := exactSum(xs)
	if relErr := math.Abs(k.Sum()-exact) / exact; relErr > 1e-9 {
		t.Errorf("compensated sum %v vs exact %v (rel err %.3g)", k.Sum(), exact, relErr)
	}
	if naiveErr := math.Abs(naive-exact) / exact; naiveErr < 1e-3 {
		t.Errorf("naive sum error %.3g unexpectedly small; input not pathological", naiveErr)
	}
}

// TestWelfordLargeOffset pins the failure mode Welford exists for: variance
// of samples riding a large offset, where the textbook Σx² − (Σx)²/n formula
// cancels catastrophically.
func TestWelfordLargeOffset(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 10_000
	var w Welford
	centered := make([]float64, n)
	for i := 0; i < n; i++ {
		c := r.NormFloat64()
		centered[i] = c
		w.Add(1e9 + c)
	}
	// Ground truth from the centered samples (offset shifts mean, not
	// variance); two-pass on O(1)-magnitude values is accurate.
	m := Mean(centered)
	exactVar := 0.0
	for _, c := range centered {
		exactVar += (c - m) * (c - m)
	}
	exactVar /= n
	if relErr := math.Abs(w.Variance()-exactVar) / exactVar; relErr > 1e-6 {
		t.Errorf("Welford variance %v vs exact %v (rel err %.3g)", w.Variance(), exactVar, relErr)
	}
	wantMean := 1e9 + m
	if relErr := math.Abs(w.Mean()-wantMean) / wantMean; relErr > 1e-12 {
		t.Errorf("Welford mean %v, want %v", w.Mean(), wantMean)
	}
}

func TestWelfordMergeMatchesSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 9_999)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 42
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	var merged Welford
	for i := 0; i < len(xs); i += 1000 {
		end := i + 1000
		if end > len(xs) {
			end = len(xs)
		}
		var shard Welford
		for _, x := range xs[i:end] {
			shard.Add(x)
		}
		merged.Merge(&shard)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), whole.Count())
	}
	if diff := math.Abs(merged.Mean() - whole.Mean()); diff > 1e-9 {
		t.Errorf("merged mean %v vs single-stream %v", merged.Mean(), whole.Mean())
	}
	if relErr := math.Abs(merged.Variance()-whole.Variance()) / whole.Variance(); relErr > 1e-9 {
		t.Errorf("merged variance %v vs single-stream %v", merged.Variance(), whole.Variance())
	}
}

// ---------------------------------------------------------------------------
// Sketch merge properties.
// ---------------------------------------------------------------------------

func sketchShards(xs []float64, k int) []*Sketch {
	shards := make([]*Sketch, k)
	for i := range shards {
		shards[i] = NewSketch()
	}
	for i, x := range xs {
		shards[i%k].Add(x)
	}
	return shards
}

func sketchSummary(s *Sketch) [7]float64 {
	return [7]float64{float64(s.Count()), s.Mean(), s.Min(), s.Max(), s.P50(), s.P95(), s.P99()}
}

// TestSketchMergeOrderIndependence merges the same shards as a left fold, in
// reverse, and as a balanced tree. Counts and extremes must agree exactly;
// the float-valued fields within a few ulps (the count-weighted quantile
// combination sums in different orders).
func TestSketchMergeOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	xs := make([]float64, 20_000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 10
	}
	const k = 8
	merge := func(order []int) [7]float64 {
		shards := sketchShards(xs, k)
		acc := NewSketch()
		for _, i := range order {
			acc.Merge(shards[i])
		}
		return sketchSummary(acc)
	}
	tree := func() [7]float64 {
		shards := sketchShards(xs, k)
		for len(shards) > 1 {
			var next []*Sketch
			for i := 0; i+1 < len(shards); i += 2 {
				shards[i].Merge(shards[i+1])
				next = append(next, shards[i])
			}
			if len(shards)%2 == 1 {
				next = append(next, shards[len(shards)-1])
			}
			shards = next
		}
		return sketchSummary(shards[0])
	}

	fwd := merge([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rev := merge([]int{7, 6, 5, 4, 3, 2, 1, 0})
	bal := tree()
	for f, name := range [...]string{"count", "mean", "min", "max", "p50", "p95", "p99"} {
		for _, got := range [][7]float64{rev, bal} {
			if diff := math.Abs(got[f] - fwd[f]); diff > math.Abs(fwd[f])*1e-12 {
				t.Errorf("%s differs across merge orders: %v vs %v", name, got[f], fwd[f])
			}
		}
	}
}

// TestSketchMergeApproximatesSingleStream: sharded quantile estimates must
// land near the single-stream estimate (and hence near the exact quantile).
func TestSketchMergeApproximatesSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	whole := NewSketch()
	for _, x := range xs {
		whole.Add(x)
	}
	merged := NewSketch()
	for _, sh := range sketchShards(xs, 16) {
		merged.Merge(sh)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("extremes differ: [%v,%v] vs [%v,%v]",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	if diff := math.Abs(merged.Mean() - whole.Mean()); diff > 1e-9 {
		t.Errorf("mean %v vs %v", merged.Mean(), whole.Mean())
	}
	span := whole.Max() - whole.Min()
	for _, q := range []struct {
		name         string
		got, want, p float64
	}{
		{"p50", merged.P50(), whole.P50(), 50},
		{"p95", merged.P95(), whole.P95(), 95},
		{"p99", merged.P99(), whole.P99(), 99},
	} {
		exact := Percentile(xs, q.p)
		if diff := math.Abs(q.got-exact) / span; diff > 0.03 {
			t.Errorf("%s: sharded %v vs exact %v (range-err %.3g, single-stream %v)",
				q.name, q.got, exact, diff, q.want)
		}
	}
}

func TestSketchEmptyAndNonFinite(t *testing.T) {
	s := NewSketch()
	for _, got := range []float64{s.Mean(), s.Min(), s.Max(), s.P50(), s.P95(), s.P99()} {
		if got != 0 {
			t.Fatalf("empty sketch accessor = %v, want 0", got)
		}
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	if s.Count() != 0 {
		t.Fatalf("non-finite samples counted: %d", s.Count())
	}
	s.Add(3)
	if s.Count() != 1 || s.Min() != 3 || s.Max() != 3 || s.P99() != 3 {
		t.Fatalf("singleton sketch: count=%d min=%v max=%v p99=%v",
			s.Count(), s.Min(), s.Max(), s.P99())
	}
	// Monotone accessors on a live stream.
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 10_000; i++ {
		s.Add(r.Float64())
		if !(s.P50() <= s.P95() && s.P95() <= s.P99()) {
			t.Fatalf("quantile monotonicity violated at i=%d: p50=%v p95=%v p99=%v",
				i, s.P50(), s.P95(), s.P99())
		}
		if s.P50() < s.Min() || s.P99() > s.Max() {
			t.Fatalf("estimate outside [min,max] at i=%d", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation pins: the record path feeds from the replay inner loop, so
// these are hard contracts, not aspirations.
// ---------------------------------------------------------------------------

func TestP2QuantileAddAllocs(t *testing.T) {
	p := NewP2Quantile(0.95)
	x := 0.0
	if avg := testing.AllocsPerRun(1000, func() {
		p.Add(x)
		x += 0.7
	}); avg != 0 {
		t.Errorf("P2Quantile.Add allocates %.1f/op, want 0", avg)
	}
}

func TestSketchAddAllocs(t *testing.T) {
	s := NewSketch()
	x := 0.0
	if avg := testing.AllocsPerRun(1000, func() {
		s.Add(x)
		x += 1.3
	}); avg != 0 {
		t.Errorf("Sketch.Add allocates %.1f/op, want 0", avg)
	}
}
