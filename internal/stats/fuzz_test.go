package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSamples decodes the fuzz payload as packed little-endian float64s —
// every 8-byte window is a candidate sample, so the fuzzer controls the
// full bit pattern including NaNs, infinities, subnormals and signed zeros.
func fuzzSamples(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

// FuzzP2Quantile fuzzes the estimator invariants over arbitrary bit
// patterns: no panic, the count tracks exactly the finite samples, the
// estimate stays finite and inside the observed [min, max] after every
// single Add, a two-shard merge preserves count and range, and the Sketch
// built over the same stream keeps p50 <= p95 <= p99. These are the
// contracts the telemetry JSON encoder and the Prometheus exposition rely
// on (no NaN ever reaches an output file).
func FuzzP2Quantile(f *testing.F) {
	le := func(vs ...float64) []byte {
		b := make([]byte, 0, 8*len(vs))
		for _, v := range vs {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(le(1, 2, 3, 4, 5, 6, 7), 0.5)
	f.Add(le(0.1, 0.9, math.NaN(), 0.5, math.Inf(1), 0.3), 0.95)
	f.Add(le(-1e308, 1e308, 0, 4.9e-324, -4.9e-324), 0.99)
	f.Add(le(5, 5, 5, 5, 5, 5, 5, 5), 0.25)
	f.Add([]byte("short"), 0.75)
	f.Fuzz(func(t *testing.T, data []byte, phi float64) {
		xs := fuzzSamples(data)
		p := NewP2Quantile(phi)
		var sk Sketch
		sk.Init()
		lo, hi := math.Inf(1), math.Inf(-1)
		var finite int64
		for _, x := range xs {
			p.Add(x)
			sk.Add(x)
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				finite++
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
			if p.Count() != finite {
				t.Fatalf("count %d after %d finite samples", p.Count(), finite)
			}
			q := p.Quantile()
			if math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("non-finite estimate %v (φ=%v)", q, phi)
			}
			if finite > 0 && (q < lo || q > hi) {
				t.Fatalf("estimate %v outside observed [%v, %v] (φ=%v, n=%d)",
					q, lo, hi, phi, finite)
			}
			p50, p95, p99 := sk.P50(), sk.P95(), sk.P99()
			if !(p50 <= p95 && p95 <= p99) {
				t.Fatalf("sketch quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
			}
			if finite > 0 && (p50 < lo || p99 > hi) {
				t.Fatalf("sketch estimates outside [%v, %v]: p50=%v p99=%v", lo, hi, p50, p99)
			}
		}

		// Two-shard merge must preserve count and stay inside the range.
		a, b := NewP2Quantile(phi), NewP2Quantile(phi)
		for i, x := range xs {
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.Count() != finite {
			t.Fatalf("merged count %d, want %d", a.Count(), finite)
		}
		if q := a.Quantile(); finite > 0 && (math.IsNaN(q) || q < lo || q > hi) {
			t.Fatalf("merged estimate %v outside observed [%v, %v]", q, lo, hi)
		}
	})
}
