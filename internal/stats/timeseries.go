package stats

import (
	"fmt"
	"time"
)

// SeriesID indexes one registered series of a TimeSeries.
type SeriesID int32

// TimeSeries is an interval-bucketed telemetry recorder: every registered
// series owns a preallocated ring of fixed-width time buckets plus a
// run-wide Sketch, and the record path touches only those — 0 allocs/op.
//
// Memory stays bounded for arbitrarily long runs by tick doubling: when a
// sample lands past the last bucket, the tick width doubles and adjacent
// bucket pairs fold together in place, halving the resolution but keeping
// whole-run coverage in the same storage. The fold schedule is a pure
// function of the recorded data, so two identical event streams always
// produce identical buckets — the determinism rule replay telemetry relies
// on (see DESIGN.md §"Streaming telemetry").
//
// Two series kinds exist. A sample series (AddSeries) records point values:
// the bucket accumulates count and compensated sum, so sum/count is the
// per-interval mean and the sketch summarizes the value distribution. A
// span series (AddSpanSeries) records a weight spread over [t0, t1)
// proportionally to bucket overlap — link busy seconds, low-power
// link-seconds — and its sketch summarizes the per-span weights.
type TimeSeries struct {
	tick       time.Duration
	maxBuckets int
	used       int // buckets in use: highest touched index + 1
	s          []tsSeries
}

type tsSeries struct {
	name  string
	unit  string
	span  bool
	sk    Sketch
	count []int64   // per-bucket samples (or overlapping spans)
	sum   []float64 // per-bucket compensated sum (or span weight)
	comp  []float64 // per-bucket Neumaier compensation for sum
}

// NewTimeSeries returns a recorder with the given initial bucket width and
// per-series bucket capacity. tick must be positive; maxBuckets is clamped
// to at least 2 (folding needs a pair).
func NewTimeSeries(tick time.Duration, maxBuckets int) *TimeSeries {
	if tick <= 0 {
		panic(fmt.Sprintf("stats: non-positive time series tick %v", tick))
	}
	if maxBuckets < 2 {
		maxBuckets = 2
	}
	return &TimeSeries{tick: tick, maxBuckets: maxBuckets}
}

// AddSeries registers a sample series and returns its ID. All series must
// be registered before recording begins; registration allocates the
// series' whole bucket ring up front.
func (ts *TimeSeries) AddSeries(name, unit string) SeriesID {
	return ts.add(name, unit, false)
}

// AddSpanSeries registers a span series (see the type comment).
func (ts *TimeSeries) AddSpanSeries(name, unit string) SeriesID {
	return ts.add(name, unit, true)
}

func (ts *TimeSeries) add(name, unit string, span bool) SeriesID {
	se := tsSeries{
		name: name, unit: unit, span: span,
		count: make([]int64, ts.maxBuckets),
		sum:   make([]float64, ts.maxBuckets),
		comp:  make([]float64, ts.maxBuckets),
	}
	se.sk.Init()
	ts.s = append(ts.s, se)
	return SeriesID(len(ts.s) - 1)
}

// Tick returns the current bucket width (it grows by doubling).
func (ts *TimeSeries) Tick() time.Duration { return ts.tick }

// Buckets returns the number of buckets in use.
func (ts *TimeSeries) Buckets() int { return ts.used }

// NumSeries returns the number of registered series.
func (ts *TimeSeries) NumSeries() int { return len(ts.s) }

// Name returns the series name.
func (ts *TimeSeries) Name(id SeriesID) string { return ts.s[id].name }

// Unit returns the series unit label.
func (ts *TimeSeries) Unit(id SeriesID) string { return ts.s[id].unit }

// IsSpan reports whether the series records spans rather than samples.
func (ts *TimeSeries) IsSpan(id SeriesID) bool { return ts.s[id].span }

// Sketch returns the series' run-wide sketch. The pointer aliases live
// state: callers must not Add through it.
func (ts *TimeSeries) Sketch(id SeriesID) *Sketch { return &ts.s[id].sk }

// BucketCount returns the sample (or overlapping-span) count of bucket b.
func (ts *TimeSeries) BucketCount(id SeriesID, b int) int64 { return ts.s[id].count[b] }

// BucketSum returns the compensated value sum (or span weight) of bucket b.
func (ts *TimeSeries) BucketSum(id SeriesID, b int) float64 {
	return ts.s[id].sum[b] + ts.s[id].comp[b]
}

// Lookup returns the ID of the named series.
func (ts *TimeSeries) Lookup(name string) (SeriesID, bool) {
	for i := range ts.s {
		if ts.s[i].name == name {
			return SeriesID(i), true
		}
	}
	return 0, false
}

// bucket returns the bucket index for time t, folding the ring as often as
// needed to bring t inside it. Negative times clamp to bucket 0.
func (ts *TimeSeries) bucket(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	b := int(t / ts.tick)
	for b >= ts.maxBuckets {
		ts.fold()
		b = int(t / ts.tick)
	}
	if b >= ts.used {
		ts.used = b + 1
	}
	return b
}

// fold doubles the tick and merges adjacent bucket pairs in place.
func (ts *TimeSeries) fold() {
	ts.tick *= 2
	half := (ts.used + 1) / 2
	for i := range ts.s {
		se := &ts.s[i]
		for j := 0; j < half; j++ {
			a, b := 2*j, 2*j+1
			cnt, sum, comp := se.count[a], se.sum[a], se.comp[a]
			if b < ts.used {
				cnt += se.count[b]
				sum, comp = neumaierAdd(sum, comp, se.sum[b])
				sum, comp = neumaierAdd(sum, comp, se.comp[b])
			}
			se.count[j], se.sum[j], se.comp[j] = cnt, sum, comp
		}
		for j := half; j < ts.used; j++ {
			se.count[j], se.sum[j], se.comp[j] = 0, 0, 0
		}
	}
	ts.used = half
}

// Record adds one sample at time t. Non-finite values are ignored. The
// path is allocation-free.
func (ts *TimeSeries) Record(id SeriesID, t time.Duration, v float64) {
	se := &ts.s[id]
	before := se.sk.Count()
	se.sk.Add(v)
	if se.sk.Count() == before {
		return // non-finite, rejected by the sketch
	}
	b := ts.bucket(t)
	se.count[b]++
	se.sum[b], se.comp[b] = neumaierAdd(se.sum[b], se.comp[b], v)
}

// RecordSpan adds weight w spread over [t0, t1) proportionally to bucket
// overlap; a zero-length span lands entirely in t0's bucket. The sketch
// absorbs w once. The path is allocation-free.
func (ts *TimeSeries) RecordSpan(id SeriesID, t0, t1 time.Duration, w float64) {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	se := &ts.s[id]
	before := se.sk.Count()
	se.sk.Add(w)
	if se.sk.Count() == before {
		return // non-finite weight
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 < 0 {
		t1 = 0
	}
	// The last covered bucket is the one containing t1's final nanosecond;
	// a span ending exactly on a boundary must not open the next bucket.
	end := t1
	if end > t0 {
		end--
	}
	b1 := ts.bucket(end)
	b0 := int(t0 / ts.tick) // tick is settled now: t0 <= end always fits
	if b0 == b1 || t1 == t0 {
		se.count[b0]++
		se.sum[b0], se.comp[b0] = neumaierAdd(se.sum[b0], se.comp[b0], w)
		return
	}
	span := float64(t1 - t0)
	for b := b0; b <= b1; b++ {
		lo, hi := time.Duration(b)*ts.tick, time.Duration(b+1)*ts.tick
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
		if hi <= lo {
			continue
		}
		se.count[b]++
		part := w * float64(hi-lo) / span
		se.sum[b], se.comp[b] = neumaierAdd(se.sum[b], se.comp[b], part)
	}
}
