package replay

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
	"unsafe"

	"ibpower/internal/trace"
)

// bigSource synthesizes a large workload without ever materializing it: each
// rank's cursor produces opsPer ops on demand — mostly computation bursts
// with a sparse sendrecv ring so the network path is exercised too.
type bigSource struct {
	np, opsPer int
}

func (s bigSource) Meta() trace.Meta { return trace.Meta{App: "big", NP: s.np} }

func (s bigSource) Open(r int) trace.Cursor { return &bigCursor{src: s, rank: r} }

type bigCursor struct {
	src  bigSource
	rank int
	i    int
}

func (c *bigCursor) Next() (trace.Op, bool) {
	if c.i >= c.src.opsPer {
		return trace.Op{}, false
	}
	i := c.i
	c.i++
	if i%500 == 499 {
		np := c.src.np
		return trace.Sendrecv((c.rank+1)%np, (c.rank+np-1)%np, 64), true
	}
	return trace.Compute(time.Duration(1+i%7) * time.Microsecond), true
}

func (c *bigCursor) Rewind()    { c.i = 0 }
func (c *bigCursor) Err() error { return nil }

// TestStreamedReplayBoundedMemory packs a million-op workload to a binary
// trace file and replays it through streaming cursors, asserting the replay
// allocates a small fraction of what materializing the op slices would cost:
// the O(window) memory contract of the trace layer. The generator-side pack
// is also streamed, so at no point does the full trace exist in memory.
func TestStreamedReplayBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event replay; skipped in -short mode")
	}
	const np, opsPer = 8, 125_000 // 1M ops total
	src := bigSource{np: np, opsPer: opsPer}

	path := filepath.Join(t.TempDir(), "big.ibt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinarySources(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bf, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	fsrc, err := bf.Source("big", np)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := RunSource(fsrc, cfg)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatalf("replay produced no progress: exec time %v", res.ExecTime)
	}

	allocated := m1.TotalAlloc - m0.TotalAlloc
	materialized := uint64(np) * uint64(opsPer) * uint64(unsafe.Sizeof(trace.Op{}))
	// The streamed replay's allocation must stay far below one materialized
	// copy of the op streams. The bound is deliberately loose (a quarter of
	// the 64 MiB materialized cost) so transfer bookkeeping and GC noise
	// never flake it, while still catching any regression that decodes a
	// rank's ops into a slice.
	if allocated > materialized/4 {
		t.Errorf("streamed 1M-op replay allocated %d bytes; materialized op slices would be %d — streaming bound lost",
			allocated, materialized)
	}
	t.Logf("streamed replay: %d bytes allocated vs %d materialized (%.1f%%)",
		allocated, materialized, 100*float64(allocated)/float64(materialized))
}
