package replay

import (
	"fmt"
	"time"

	"ibpower/internal/network"
	"ibpower/internal/ngram"
	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/trace"
)

// rankState is one MPI process during replay. Ranks are job-local (peers in
// the op stream address the job's communicator); the engine places the rank
// on a fabric terminal and gives it a dense global index so several jobs can
// share one timeline.
type rankState struct {
	r    int // job-local rank (index into the job's trace)
	g    int // global rank index across all jobs (index into engine.rk)
	base int // global index of the job's rank 0
	np   int // the job's communicator size
	term int // fabric terminal hosting the rank
	cur  trace.Cursor // the rank's op stream; in-memory, generated, or on-disk
	nops int          // ops consumed so far (error reporting)
	clk  time.Duration
	done bool

	// Current MPI call.
	inCall    bool
	op        trace.Op // the call being executed (finishCall reports it)
	callStart time.Duration
	micro     []microOp
	mi        int
	issued    bool
	needSend  bool
	needRecv  bool
	sendDone  time.Duration
	recvDone  time.Duration
	haveSend  bool
	haveRecv  bool

	pred predictor.Predictor
	ctrl *power.Controller
	jb   *jobState

	// Telemetry baselines: the predictor stats snapshot after the previous
	// call, so finishCall can record per-call hit deltas without storage.
	lastPredictions int
	lastPredHits    int
	lastTotalCalls  int
	lastPredCalls   int
}

// pendingPt is one side of an unmatched point-to-point operation.
type pendingPt struct {
	rank  int
	ready time.Duration
	bytes int
}

// ptQueue is an index-based FIFO ring of pending point-to-point halves.
// Popped slots are cleared so the backing array never retains old entries
// (the q = q[1:] re-slicing it replaces kept every popped pendingPt alive
// for the rest of the run).
type ptQueue struct {
	buf  []pendingPt
	head int
	n    int
}

func (q *ptQueue) push(p pendingPt) {
	if q.n == len(q.buf) {
		grown := make([]pendingPt, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *ptQueue) pop() pendingPt {
	p := q.buf[q.head]
	q.buf[q.head] = pendingPt{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

type pairKey struct{ src, dst int }

// pairQueues holds both directions of one (src, dst) channel, so each pair
// costs a single map entry and allocation per run.
type pairQueues struct {
	send ptQueue // posted sends waiting for a matching receive
	recv ptQueue // posted receives waiting for a matching send
}

// jobState is one placed workload during a (possibly multi-job) replay. It
// holds the job's source and identity, never the decoded ops — rank streams
// live only inside the per-rank cursors.
type jobState struct {
	src  trace.Source
	app  string
	np   int
	pw   PowerConfig // the job's effective power configuration
	base int         // global index of the job's rank 0

	// Per-job traffic attribution: every transfer is between ranks of one
	// job, counted at resolve time against the sender's job.
	transfers int
	bytes     int64
}

// engine holds global replay state. Run-level configuration is consumed up
// front (network construction, per-job effective power blocks); the engine
// itself only reads per-job state, so jobs with different power configs
// coexist on one timeline.
type engine struct {
	net  *network.Network
	jobs []*jobState
	rk   []*rankState // all jobs' ranks, dense in global index order
	pt   map[pairKey]*pairQueues
	err  error // first cursor decode failure; drain surfaces it

	// work is a fixed-capacity ring of runnable ranks (global indexes).
	// inWork dedupes, so at most len(rk) ranks are ever queued and the ring
	// never grows.
	work     []int
	workHead int
	workLen  int
	inWork   []bool

	// tele, when non-nil, streams per-interval series (power draw, link
	// utilization, predictor hit rate) off the hooks the engine already
	// drives; recording is passive and never changes simulated results.
	tele *telemetry
}

// pair returns the queue pair for (src, dst), creating it on first use.
func (e *engine) pair(k pairKey) *pairQueues {
	q, ok := e.pt[k]
	if !ok {
		q = &pairQueues{}
		e.pt[k] = q
	}
	return q
}

// Run replays the trace under cfg and returns the measured result. The
// single job occupies terminals 0..NP-1 of the fabric, exactly as before the
// engine learned to share its fabric between jobs (RunJobs); results are
// bit-identical to that dedicated-fabric engine. All validation (trace,
// network, registries, capacity) happens in RunJobs.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	return RunSource(tr, cfg)
}

// RunSource replays a streaming trace source under cfg: the single-job
// counterpart of Run for traces that are generated on the fly or read from a
// packed trace file through bounded windows. For an in-memory *Trace it is
// exactly Run.
func RunSource(src trace.Source, cfg Config) (*Result, error) {
	mr, err := RunJobs([]Job{{Source: src}}, cfg)
	if err != nil {
		return nil, err
	}
	res := mr.Jobs[0]
	res.Series = mr.Series
	return res, nil
}

// addJob appends one job's ranks to the engine, each starting its clock at
// the given admission time, and returns the job's state. label names a
// rank's recorded timeline. Ranks are not yet runnable; callers queue them
// via enqueue once the whole admission batch is in place.
//
// Each rank pulls ops through its own cursor, opened here — re-admitting the
// same source (a churn retry) replays from the first op again. Trace-aware
// predictors are the one consumer that still needs the whole rank stream up
// front (the oracle's lookahead); only they pay a materialization.
func (e *engine) addJob(src trace.Source, pw PowerConfig, terms []int, start time.Duration, label func(r int) string) (*jobState, error) {
	m := src.Meta()
	js := &jobState{src: src, app: m.App, np: m.NP, pw: pw, base: len(e.rk)}
	e.jobs = append(e.jobs, js)
	for r := 0; r < m.NP; r++ {
		rs := &rankState{
			r: r, g: js.base + r, base: js.base, np: m.NP,
			term: terms[r], cur: src.Open(r), clk: start, jb: js,
		}
		if pw.Enabled {
			p, err := predictor.NewNamed(pw.PredictorName, pw.Predictor)
			if err != nil {
				return nil, err
			}
			if predictor.IsTraceAware(p) {
				ops, err := trace.RankOps(src, r)
				if err != nil {
					return nil, fmt.Errorf("replay: %s rank %d: %w", m.App, r, err)
				}
				predictor.Prime(p, ops)
			}
			rs.pred = p
			rs.ctrl = power.NewControllerAt(pw.Predictor.Treact, start)
			if pw.DeepSleep {
				rs.ctrl.EnableDeep(pw.Deep)
			}
			if e.tele != nil {
				df := 0.0
				if pw.DeepSleep {
					df = pw.Deep.PowerFraction
				}
				rs.ctrl.Observe(e.tele.observeMode(df))
			}
			if pw.RecordTimelines {
				rs.ctrl.RecordTimeline(label(r))
			}
		}
		e.rk = append(e.rk, rs)
	}
	return js, nil
}

// enqueue makes ranks [from, len(rk)) runnable. The work ring is regrown to
// the current rank count first; callers only invoke this between drains
// (workLen == 0), so no queued entries are ever dropped.
func (e *engine) enqueue(from int) {
	e.work = make([]int, len(e.rk))
	e.workHead = 0
	for len(e.inWork) < len(e.rk) {
		e.inWork = append(e.inWork, false)
	}
	for g := from; g < len(e.rk); g++ {
		e.push(g)
	}
}

// drain processes runnable ranks until the work queue empties, then verifies
// every rank has finished — a blocked rank means an unmatched point-to-point
// half, which the generator never produces.
func (e *engine) drain() error {
	for e.workLen > 0 {
		g := e.work[e.workHead]
		e.workHead = (e.workHead + 1) % len(e.work)
		e.workLen--
		e.inWork[g] = false
		e.advance(e.rk[g])
	}
	if e.err != nil {
		return e.err
	}
	for _, rs := range e.rk {
		if !rs.done {
			return fmt.Errorf("replay: deadlock: %s rank %d blocked at op %d (micro %d/%d)",
				rs.jb.app, rs.r, rs.nops, rs.mi, len(rs.micro))
		}
	}
	return nil
}

// run drains the engine's work queue and collects the result.
func (e *engine) run() (*MultiResult, error) {
	if err := e.drain(); err != nil {
		return nil, err
	}
	return e.collect(), nil
}

func (e *engine) push(g int) {
	if !e.inWork[g] {
		e.inWork[g] = true
		e.work[(e.workHead+e.workLen)%len(e.work)] = g
		e.workLen++
	}
}

// advance executes rank rs until it blocks or finishes.
func (e *engine) advance(rs *rankState) {
	for {
		if rs.done {
			return
		}
		if rs.inCall {
			if !e.stepMicro(rs) {
				return // blocked
			}
			continue
		}
		op, ok := rs.cur.Next()
		if !ok {
			if err := rs.cur.Err(); err != nil {
				if e.err == nil {
					e.err = fmt.Errorf("replay: %s: %w", rs.jb.app, err)
				}
			}
			rs.done = true
			if rs.pred != nil {
				rs.pred.Flush()
			}
			return
		}
		rs.nops++
		switch op.Kind {
		case trace.OpCompute:
			rs.clk += op.Duration
		case trace.OpCall:
			if rs.pred != nil {
				rs.clk += rs.jb.pw.Overheads.Interception
			}
			rs.op = op
			rs.callStart = rs.clk
			// Shared read-only decomposition: identical call shapes across
			// ranks, iterations and concurrent runs reuse one sequence.
			rs.micro = expandCached(op, rs.r, rs.np)
			rs.mi = 0
			rs.issued = false
			rs.inCall = true
			if len(rs.micro) == 0 {
				e.finishCall(rs)
			}
		}
	}
}

// stepMicro progresses the current micro op; it returns false when blocked.
func (e *engine) stepMicro(rs *rankState) bool {
	if rs.mi >= len(rs.micro) {
		e.finishCall(rs)
		return true
	}
	m := rs.micro[rs.mi]
	if !rs.issued {
		rs.issued = true
		rs.needSend = m.sendPeer >= 0
		rs.needRecv = m.recvPeer >= 0
		rs.haveSend = !rs.needSend
		rs.haveRecv = !rs.needRecv
		if rs.needSend {
			e.postSend(rs.g, rs.base+m.sendPeer, m.bytes, rs.clk)
		}
		if rs.needRecv {
			e.postRecv(rs.g, rs.base+m.recvPeer, rs.clk)
		}
	}
	if !rs.haveSend || !rs.haveRecv {
		return false
	}
	t := rs.sendDone
	if rs.recvDone > t {
		t = rs.recvDone
	}
	if t > rs.clk {
		rs.clk = t
	}
	rs.mi++
	rs.issued = false
	if rs.mi >= len(rs.micro) {
		e.finishCall(rs)
	}
	return true
}

// finishCall closes the current MPI call: the predictor observes it and may
// direct the link power controller to shut lanes down for the predicted
// idle interval (Algorithm 3).
func (e *engine) finishCall(rs *rankState) {
	rs.inCall = false
	op := rs.op
	if rs.pred == nil {
		return
	}
	act := rs.pred.OnCall(ngram.EventID(op.Call), rs.callStart, rs.clk)
	if act.PPAInvoked {
		st := rs.pred.Stats().Detector
		rs.clk += rs.jb.pw.Overheads.PPACost(max(st.MaxPatternFrozen, 2), st.PatternListSize)
	}
	if act.Shutdown {
		rs.ctrl.Shutdown(rs.clk, act.PredictedIdle)
	}
	if e.tele != nil {
		st := rs.pred.Stats()
		// Baseline predictors report emitted predictions; the n-gram
		// mechanism reports detector-covered calls. Either way one sample
		// per opportunity, value = hit fraction, so the series mean is the
		// run's hit rate and bucket means give it per interval.
		if d := st.Predictions - rs.lastPredictions; d > 0 {
			e.tele.recordHit(rs.clk, float64(st.PredHits-rs.lastPredHits)/float64(d))
		} else if d := st.Detector.TotalCalls - rs.lastTotalCalls; d > 0 {
			e.tele.recordHit(rs.clk, float64(st.Detector.PredictedCalls-rs.lastPredCalls)/float64(d))
		}
		rs.lastPredictions, rs.lastPredHits = st.Predictions, st.PredHits
		rs.lastTotalCalls, rs.lastPredCalls = st.Detector.TotalCalls, st.Detector.PredictedCalls
	}
}

// postSend registers the send side of a point-to-point exchange and resolves
// it if the matching receive is already posted. src and dst are global rank
// indexes (both halves of an exchange always belong to one job, because op
// peers are job-local).
func (e *engine) postSend(src, dst, bytes int, ready time.Duration) {
	q := e.pair(pairKey{src, dst})
	if q.recv.n > 0 {
		rv := q.recv.pop()
		e.resolve(src, dst, bytes, ready, rv.ready)
		return
	}
	q.send.push(pendingPt{rank: src, ready: ready, bytes: bytes})
}

// postRecv registers the receive side.
func (e *engine) postRecv(dst, src int, ready time.Duration) {
	q := e.pair(pairKey{src, dst})
	if q.send.n > 0 {
		sd := q.send.pop()
		e.resolve(src, dst, sd.bytes, sd.ready, ready)
		return
	}
	q.recv.push(pendingPt{rank: dst, ready: ready})
}

// resolve times the matched transfer and unblocks both ranks. The message
// travels between the ranks' fabric terminals, so links observe the union of
// every job's traffic.
func (e *engine) resolve(src, dst, bytes int, sendReady, recvReady time.Duration) {
	s, d := e.rk[src], e.rk[dst]
	s0, r0 := sendReady, recvReady
	// Lanes of both host links must be active; waking them on demand incurs
	// up to Treact of delay each (the reactivation penalty).
	if s.ctrl != nil {
		s0 = s.ctrl.Acquire(s0)
	}
	if d.ctrl != nil {
		r0 = d.ctrl.Acquire(r0)
	}
	t0 := s0
	if r0 > t0 {
		t0 = r0
	}
	arrival := e.net.Transfer(s.term, d.term, bytes, t0)
	s.jb.transfers++
	s.jb.bytes += int64(bytes)
	sendDone := t0 + e.net.SerTime(bytes)
	s.sendDone, s.haveSend = sendDone, true
	d.recvDone, d.haveRecv = arrival, true
	if s.haveRecv || !s.needRecv {
		e.push(src)
	}
	if d.haveSend || !d.needSend {
		e.push(dst)
	}
}
