package replay

import (
	"testing"
	"testing/quick"
	"time"

	"ibpower/internal/trace"
)

const us = time.Microsecond

func baseCfg() Config { return DefaultConfig() }

func TestComputeOnlyTrace(t *testing.T) {
	tr := trace.New("t", 2)
	tr.Append(0, trace.Compute(100*us))
	tr.Append(1, trace.Compute(250*us))
	res, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 250*us {
		t.Errorf("exec = %v, want 250µs", res.ExecTime)
	}
	if res.RankFinish[0] != 100*us {
		t.Errorf("rank 0 finish = %v", res.RankFinish[0])
	}
}

func TestPointToPointTiming(t *testing.T) {
	tr := trace.New("t", 2)
	tr.Append(0, trace.Send(1, 4096))
	tr.Append(1, trace.Compute(500*us)) // receiver arrives late
	tr.Append(1, trace.Recv(0))
	res, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rendezvous at 500 µs; arrival adds latency + serialization.
	if res.RankFinish[1] <= 500*us {
		t.Errorf("receiver finished at %v, before the transfer could complete", res.RankFinish[1])
	}
	if res.RankFinish[1] > 520*us {
		t.Errorf("receiver finished at %v, implausibly late for 4 KB", res.RankFinish[1])
	}
	if res.Transfers != 1 {
		t.Errorf("transfers = %d, want 1", res.Transfers)
	}
}

func TestSendrecvPair(t *testing.T) {
	tr := trace.New("t", 2)
	tr.Append(0, trace.Sendrecv(1, 1, 2048))
	tr.Append(1, trace.Sendrecv(0, 0, 2048))
	res, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 2 {
		t.Errorf("transfers = %d, want 2", res.Transfers)
	}
}

func TestCollectivesComplete(t *testing.T) {
	for _, np := range []int{2, 3, 4, 5, 7, 8, 9, 12, 16} {
		tr := trace.New("t", np)
		for r := 0; r < np; r++ {
			tr.Append(r, trace.Compute(10*us))
			tr.Append(r, trace.Allreduce(1024))
			tr.Append(r, trace.Barrier())
			tr.Append(r, trace.Bcast(np/2, 4096))
			tr.Append(r, trace.Reduce(0, 2048))
			tr.Append(r, trace.Alltoall(256))
		}
		res, err := Run(tr, baseCfg())
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if res.ExecTime <= 10*us {
			t.Errorf("np=%d: exec = %v, collectives cost nothing", np, res.ExecTime)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	tr := trace.New("t", 2)
	tr.Append(0, trace.Recv(1)) // nobody ever sends
	tr.Append(1, trace.Compute(10*us))
	_, err := Run(tr, baseCfg())
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestMismatchedCollectiveDeadlocks(t *testing.T) {
	tr := trace.New("t", 3)
	tr.Append(0, trace.Allreduce(8))
	tr.Append(1, trace.Allreduce(8))
	// rank 2 never joins
	tr.Append(2, trace.Compute(10*us))
	if _, err := Run(tr, baseCfg()); err == nil {
		t.Fatal("missing collective participant not detected")
	}
}

func TestDeterminism(t *testing.T) {
	tr := periodicTrace(8, 30)
	r1, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Errorf("replay nondeterministic: %v vs %v", r1.ExecTime, r2.ExecTime)
	}
}

// periodicTrace builds an SPMD trace with a regular iteration: ring
// sendrecv, long compute, allreduce, medium compute.
func periodicTrace(np, iters int) *trace.Trace {
	tr := trace.New("periodic", np)
	for i := 0; i < iters; i++ {
		for r := 0; r < np; r++ {
			tr.Append(r, trace.Sendrecv((r+1)%np, (r-1+np)%np, 8192))
			tr.Append(r, trace.Compute(600*us))
			tr.Append(r, trace.Allreduce(64))
			tr.Append(r, trace.Compute(250*us))
		}
	}
	return tr
}

func TestPowerMechanismSavesPower(t *testing.T) {
	tr := periodicTrace(8, 40)
	base, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, baseCfg().WithPower(20*us, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AvgSavingPct(); got < 20 {
		t.Errorf("saving = %.2f%% on a highly regular compute-heavy trace", got)
	}
	if got := res.AvgSavingPct(); got > 57 {
		t.Errorf("saving = %.2f%% exceeds the 57%% physical bound", got)
	}
	inc := res.TimeIncreasePct(base)
	if inc < 0 {
		t.Errorf("mechanism made the run faster (%.2f%%)?", inc)
	}
	if inc > 3 {
		t.Errorf("time increase %.2f%% too large for a regular trace", inc)
	}
	if res.Shutdowns == 0 || res.TimerWakes == 0 {
		t.Error("no shutdowns/wakes recorded")
	}
	if res.AvgHitRatePct() < 80 {
		t.Errorf("hit rate %.1f%%", res.AvgHitRatePct())
	}
}

func TestDisplacementTradeoff(t *testing.T) {
	tr := periodicTrace(4, 40)
	var savings []float64
	for _, d := range []float64{0.10, 0.05, 0.01} {
		res, err := Run(tr, baseCfg().WithPower(20*us, d))
		if err != nil {
			t.Fatal(err)
		}
		savings = append(savings, res.AvgSavingPct())
	}
	// Smaller displacement keeps lanes down longer: savings must not
	// decrease as the displacement factor shrinks (Figures 7 vs 9).
	if !(savings[2] >= savings[1] && savings[1] >= savings[0]) {
		t.Errorf("savings not monotone in displacement: %v", savings)
	}
}

func TestBaselineHasNoPowerAccounting(t *testing.T) {
	tr := periodicTrace(2, 5)
	res, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSavingPct() != 0 || len(res.Acct) != 0 {
		t.Error("baseline run must carry no power accounting")
	}
}

func TestAccountingConservation(t *testing.T) {
	tr := periodicTrace(4, 25)
	res, err := Run(tr, baseCfg().WithPower(20*us, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for r, a := range res.Acct {
		if a.Total() != res.ExecTime {
			t.Errorf("rank %d: accounted %v != exec %v", r, a.Total(), res.ExecTime)
		}
	}
}

func TestTimelinesRecorded(t *testing.T) {
	tr := periodicTrace(3, 20)
	cfg := baseCfg().WithPower(20*us, 0.05)
	cfg.Power.RecordTimelines = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timelines) != 3 {
		t.Fatalf("timelines = %d, want 3", len(res.Timelines))
	}
	low := res.Timelines[0].TimeIn(trace.StateLow)
	if low <= 0 {
		t.Error("timeline shows no low-power time")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	tr := periodicTrace(2, 2)
	cfg := baseCfg().WithPower(5*us, 0.01) // GT below 2·Treact
	if _, err := Run(tr, cfg); err == nil {
		t.Fatal("invalid GT accepted")
	}
}

func TestTopologyTooSmall(t *testing.T) {
	tr := periodicTrace(2, 2)
	cfg := baseCfg()
	// A 2-terminal custom topology cannot host 2 ranks? It can; use np > terminals.
	tr300 := trace.New("big", 300)
	for r := 0; r < 300; r++ {
		tr300.Append(r, trace.Compute(us))
	}
	if _, err := Run(tr300, cfg); err == nil {
		t.Fatal("300 ranks on a 252-terminal fabric accepted")
	}
	if _, err := Run(tr, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadsSlowExecution(t *testing.T) {
	tr := periodicTrace(2, 30)
	base, err := Run(tr, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, baseCfg().WithPower(20*us, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime < base.ExecTime {
		t.Error("power run faster than baseline despite per-call overheads")
	}
}

// Property: replay of random SPMD traces (same op sequence on every rank)
// terminates without deadlock and conserves accounting.
func TestRandomSPMDTraceProperty(t *testing.T) {
	f := func(seed int64, nIter uint8) bool {
		np := int(seed%5) + 2
		if np < 2 {
			np = 2
		}
		tr := trace.New("q", np)
		iters := int(nIter%8) + 1
		s := seed
		rnd := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		for i := 0; i < iters; i++ {
			kind := rnd(4)
			bytes := rnd(1 << 16)
			for r := 0; r < np; r++ {
				tr.Append(r, trace.Compute(time.Duration(rnd(500))*us))
				switch kind {
				case 0:
					tr.Append(r, trace.Sendrecv((r+1)%np, (r-1+np)%np, bytes))
				case 1:
					tr.Append(r, trace.Allreduce(bytes%4096))
				case 2:
					tr.Append(r, trace.Barrier())
				case 3:
					tr.Append(r, trace.Bcast(0, bytes))
				}
			}
		}
		res, err := Run(tr, baseCfg().WithPower(20*us, 0.05))
		if err != nil {
			return false
		}
		for _, a := range res.Acct {
			if a.Total() != res.ExecTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
