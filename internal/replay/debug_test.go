package replay_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"ibpower/internal/harness"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// TestDebugWorkload prints mechanism diagnostics for one workload when
// IBPOWER_DEBUG names it, e.g. IBPOWER_DEBUG=wrf:8:0.01. It is a development
// aid, skipped by default.
func TestDebugWorkload(t *testing.T) {
	spec := os.Getenv("IBPOWER_DEBUG")
	if spec == "" {
		t.Skip("set IBPOWER_DEBUG=app:np:d to run")
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		t.Fatalf("bad spec %q, want app:np:d", spec)
	}
	app := parts[0]
	np, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	d, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, gerr := workloads.Generate(app, np, workloads.Options{IterScale: 0.5})
	if gerr != nil {
		t.Fatal(gerr)
	}
	gt, hit, err := harness.ChooseGT(tr, harness.DefaultGTGrid(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("app=%s np=%d GT=%v offlineHit=%.1f%%", app, np, gt, hit)
	cfg := replay.DefaultConfig()
	base, err := replay.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.Run(tr, cfg.WithPower(gt, d))
	if err != nil {
		t.Fatal(err)
	}
	st := res.PredStats[0]
	t.Logf("base=%v exec=%v (+%.2f%%)", base.ExecTime, res.ExecTime, res.TimeIncreasePct(base))
	t.Logf("saving=%.2f%% lowFrac=%.3f replayHit=%.1f%%", res.AvgSavingPct(), res.AvgLowFraction(), res.AvgHitRatePct())
	t.Logf("shutdowns=%d timerWakes=%d demandWakes=%d totalDelay=%v",
		res.Shutdowns, res.TimerWakes, res.DemandWakes, res.TotalDelay)
	t.Logf("rank0: calls=%d ppaInvoked=%d detector=%+v", st.Calls, st.PPAInvocations, st.Detector)
	acct := res.Acct[0]
	t.Logf("rank0 acct: full=%v low=%v shift=%v total=%v", acct.Full, acct.Low, acct.Shift, acct.Total())
}
