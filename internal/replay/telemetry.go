package replay

import (
	"time"

	"ibpower/internal/power"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
)

// Telemetry defaults.
const (
	// DefaultTelemetryTick is the initial bucket width of the telemetry
	// time series; long runs coarsen it by doubling (stats.TimeSeries).
	DefaultTelemetryTick = time.Millisecond
	// DefaultTelemetryBuckets bounds per-series bucket storage.
	DefaultTelemetryBuckets = 512
)

// TelemetryConfig opts a run into streaming time-series telemetry. It is
// purely observational: every hook records state the simulation already
// computes, so enabling it changes no simulated result and no rendered
// output — only Result.Series/MultiResult.Series become non-nil.
type TelemetryConfig struct {
	Enabled bool
	// Tick is the initial bucket width; <= 0 selects DefaultTelemetryTick.
	Tick time.Duration
	// MaxBuckets bounds per-series bucket storage; when a run outgrows it
	// the tick doubles and buckets fold. <= 0 selects
	// DefaultTelemetryBuckets.
	MaxBuckets int
}

// WithTelemetry returns cfg with telemetry enabled at the given tick
// (<= 0 selects DefaultTelemetryTick).
func (c Config) WithTelemetry(tick time.Duration) Config {
	c.Telemetry = TelemetryConfig{Enabled: true, Tick: tick}
	return c
}

// Telemetry series emitted by the replay engine (see README "Telemetry
// series" for the full registry):
//
//	power.host   span    host-link power draw, link-seconds × power fraction
//	power.low    span    link-seconds spent in low or deep mode
//	pred.hit     sample  1/0 per prediction opportunity; mean = hit rate
//	util.hostup  span    busy seconds, terminal→switch links
//	util.hostdn  span    busy seconds, switch→terminal links
//	util.up      span    busy seconds, switch→switch up-links
//	util.down    span    busy seconds, other switch→switch links
//
// The churn engine (internal/multijob) adds queue.depth, fabric.occupied
// and capacity.up on the same recorder.
type telemetry struct {
	ts      *stats.TimeSeries
	power   stats.SeriesID
	low     stats.SeriesID
	hit     stats.SeriesID
	linkSid []stats.SeriesID // per directed LinkID: its util.* class series
}

// newTelemetry builds the recorder and registers the engine-level series.
// The per-LinkID class table makes ObserveBusy a flat array lookup.
func newTelemetry(tc TelemetryConfig, topo topology.Fabric) *telemetry {
	tick := tc.Tick
	if tick <= 0 {
		tick = DefaultTelemetryTick
	}
	mb := tc.MaxBuckets
	if mb <= 0 {
		mb = DefaultTelemetryBuckets
	}
	ts := stats.NewTimeSeries(tick, mb)
	t := &telemetry{
		ts:    ts,
		power: ts.AddSpanSeries("power.host", "link-seconds"),
		low:   ts.AddSpanSeries("power.low", "link-seconds"),
		hit:   ts.AddSeries("pred.hit", "hit"),
	}
	classes := [4]stats.SeriesID{
		ts.AddSpanSeries("util.hostup", "busy-seconds"),
		ts.AddSpanSeries("util.hostdn", "busy-seconds"),
		ts.AddSpanSeries("util.up", "busy-seconds"),
		ts.AddSpanSeries("util.down", "busy-seconds"),
	}
	tbl := topo.Table()
	t.linkSid = make([]stats.SeriesID, tbl.Len())
	for id := range t.linkSid {
		k := tbl.Kind[id]
		var c int
		switch {
		case k&topology.LinkFromSwitch == 0:
			c = 0 // terminal → switch
		case k&topology.LinkToSwitch == 0:
			c = 1 // switch → terminal
		case k&topology.LinkUp != 0:
			c = 2 // fabric up-link
		default:
			c = 3 // fabric down/lateral link
		}
		t.linkSid[id] = classes[c]
	}
	return t
}

// ObserveBusy implements network.BusyObserver: each reservation becomes a
// busy-seconds span on the link's class series. Allocation-free.
func (t *telemetry) ObserveBusy(link topology.LinkID, start, end time.Duration) {
	t.ts.RecordSpan(t.linkSid[link], start, end, (end - start).Seconds())
}

// observeMode is the power.Controller observer: every closed mode interval
// becomes a power-draw span (link-seconds weighted by the mode's draw
// fraction) and, for the saving modes, a low-time span. deepFraction is the
// controller's deep-mode draw (0 when deep mode is off).
func (t *telemetry) observeMode(deepFraction float64) func(m power.Mode, from, to time.Duration) {
	if deepFraction <= 0 {
		deepFraction = power.DeepPowerFraction
	}
	return func(m power.Mode, from, to time.Duration) {
		sec := (to - from).Seconds()
		frac := 1.0 // full power; shifts are charged at full draw too
		switch m {
		case power.ModeLow:
			frac = power.LowPowerFraction
			t.ts.RecordSpan(t.low, from, to, sec)
		case power.ModeDeep:
			frac = deepFraction
			t.ts.RecordSpan(t.low, from, to, sec)
		}
		t.ts.RecordSpan(t.power, from, to, sec*frac)
	}
}

// recordHit records one prediction opportunity for a rank: hit is 1 when
// the realized idle confirmed the prediction. The series mean is the hit
// rate; bucket means give it per interval.
func (t *telemetry) recordHit(at time.Duration, hit float64) {
	t.ts.Record(t.hit, at, hit)
}
