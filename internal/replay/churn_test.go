package replay

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func identTerms(np int) []int {
	terms := make([]int, np)
	for i := range terms {
		terms[i] = i
	}
	return terms
}

// TestChurnSingleAdmissionMatchesRun proves the incremental session is the
// same simulation Run performs: one job admitted at time 0 must produce the
// exact Result, field for field.
func TestChurnSingleAdmissionMatchesRun(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig().WithPower(20*time.Microsecond, 0.01)

	want, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.AdmitAt(0, Job{Trace: tr, Terminals: identTerms(tr.NP)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("churn admission at 0 diverged from Run:\n got %+v\nwant %+v", got[0], want)
	}
}

// TestChurnOffsetAdmission asserts a job admitted mid-timeline reports
// job-relative times and a power accounting window spanning exactly its own
// lifetime — not the epoch before it arrived.
func TestChurnOffsetAdmission(t *testing.T) {
	tr := genTrace(t, "gromacs", 8)
	cfg := DefaultConfig().WithPower(20*time.Microsecond, 0.01)

	base, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const start = 3 * time.Second
	got, err := c.AdmitAt(start, Job{Trace: tr, Terminals: identTerms(tr.NP)})
	if err != nil {
		t.Fatal(err)
	}
	// An empty fabric at time `start` is indistinguishable from an empty
	// fabric at time 0, so the job-relative result must match bit for bit.
	if !reflect.DeepEqual(got[0], base) {
		t.Errorf("offset admission on an idle fabric diverged from Run:\n got %+v\nwant %+v",
			got[0], base)
	}
	var acct time.Duration
	for _, a := range got[0].Acct {
		acct += a.Full + a.Low + a.Deep + a.Shift
	}
	wantAcct := time.Duration(len(got[0].Acct)) * got[0].ExecTime
	if acct > wantAcct {
		t.Errorf("accounting covers %v, more than %d ranks x %v lifetime — window leaked before the admission time",
			acct, len(got[0].Acct), got[0].ExecTime)
	}
}

// TestChurnTerminalReuse asserts terminals freed by a finished job are
// admissible again at a later time, while overlapping occupancy and
// backwards admission times are rejected.
func TestChurnTerminalReuse(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig()
	c, err := NewChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.AdmitAt(0, Job{Trace: tr, Terminals: identTerms(tr.NP)})
	if err != nil {
		t.Fatal(err)
	}
	finish := first[0].ExecTime

	// Overlap: same terminals strictly before the first job finishes.
	if _, err := c.AdmitAt(finish/2, Job{Trace: tr, Terminals: identTerms(tr.NP)}); err == nil {
		t.Fatal("admission onto busy terminals accepted")
	} else if !strings.Contains(err.Error(), "busy until") {
		t.Errorf("overlap error %q should name the busy window", err)
	}

	// The session is poisoned after an error; reuse is asserted on a fresh one.
	c, err = NewChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdmitAt(0, Job{Trace: tr, Terminals: identTerms(tr.NP)}); err != nil {
		t.Fatal(err)
	}
	// Release boundary is inclusive: admission exactly at the finish time.
	if _, err := c.AdmitAt(finish, Job{Trace: tr, Terminals: identTerms(tr.NP)}); err != nil {
		t.Errorf("reuse at the exact finish time rejected: %v", err)
	}
	if _, err := c.AdmitAt(finish/2, Job{Trace: tr, Terminals: identTerms(tr.NP)}); err == nil {
		t.Error("admission time going backwards accepted")
	}
}

// TestChurnReleaseTerminals asserts the kill path: after an early release,
// the same terminals are admissible from the release instant even though the
// original occupant's replay ran past it.
func TestChurnReleaseTerminals(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	c, err := NewChurn(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.AdmitAt(0, Job{Trace: tr, Terminals: identTerms(tr.NP)})
	if err != nil {
		t.Fatal(err)
	}
	kill := first[0].ExecTime / 2
	c.ReleaseTerminals(kill, identTerms(tr.NP))
	if _, err := c.AdmitAt(kill, Job{Trace: tr, Terminals: identTerms(tr.NP)}); err != nil {
		t.Fatalf("admission onto early-released terminals rejected: %v", err)
	}
}
