package replay

import (
	"fmt"
	"testing"
	"testing/quick"

	"ibpower/internal/trace"
)

// matchSteps verifies that the micro-op decomposition of a collective is
// globally consistent: every send has exactly one matching recv on the peer,
// in an order that cannot deadlock under FIFO matching. It simulates the
// engine's matching on the expanded programs.
func matchSteps(t *testing.T, op trace.Op, np int) {
	t.Helper()
	if err := matchStepsErr(op, np); err != nil {
		t.Errorf("%v", err)
	}
}

func matchStepsErr(op trace.Op, np int) error {
	progs := make([][]microOp, np)
	for r := 0; r < np; r++ {
		progs[r] = expand(op, r, np)
	}
	pos := make([]int, np)
	type half struct{ sent, recvd bool }
	state := make([]half, np)
	pendSend := map[[2]int]int{}
	pendRecv := map[[2]int]int{}
	for {
		progress := false
		done := 0
		for r := 0; r < np; r++ {
			if pos[r] >= len(progs[r]) {
				done++
				continue
			}
			m := progs[r][pos[r]]
			st := &state[r]
			if m.sendPeer >= 0 && !st.sent {
				k := [2]int{r, m.sendPeer}
				if pendRecv[[2]int{r, m.sendPeer}] > 0 {
					pendRecv[k]--
					st.sent = true
					progress = true
				} else {
					pendSend[k]++
					st.sent = true
					progress = true
				}
			}
			recvOK := m.recvPeer < 0 || st.recvd
			if m.recvPeer >= 0 && !st.recvd {
				k := [2]int{m.recvPeer, r}
				if pendSend[k] > 0 {
					pendSend[k]--
					st.recvd = true
					recvOK = true
					progress = true
				}
			}
			if (m.sendPeer < 0 || st.sent) && recvOK {
				pos[r]++
				state[r] = half{}
				progress = true
			}
		}
		if done == np {
			break
		}
		if !progress {
			return fmt.Errorf("%v np=%d: decomposition deadlocks at positions %v", op.Call, np, pos)
		}
	}
	for k, n := range pendSend {
		if n != 0 {
			return fmt.Errorf("%v np=%d: %d unmatched sends %v", op.Call, np, n, k)
		}
	}
	for k, n := range pendRecv {
		if n != 0 {
			return fmt.Errorf("%v np=%d: %d unmatched recvs %v", op.Call, np, n, k)
		}
	}
	return nil
}

func TestCollectiveDecompositionsMatch(t *testing.T) {
	ops := []trace.Op{
		trace.Allreduce(1024),
		trace.Barrier(),
		trace.Bcast(0, 2048),
		trace.Bcast(3, 2048),
		trace.Reduce(0, 512),
		trace.Reduce(2, 512),
		trace.Alltoall(128),
	}
	for _, op := range ops {
		for _, np := range []int{2, 3, 4, 5, 6, 7, 8, 9, 13, 16, 17, 32} {
			if op.Root >= np {
				continue
			}
			matchSteps(t, op, np)
		}
	}
}

func TestAllreduceStepCounts(t *testing.T) {
	// Power of two: exactly log2(np) pairwise rounds per rank.
	steps := allreduceSteps(0, 8, 64)
	if len(steps) != 3 {
		t.Errorf("allreduce np=8 rank 0: %d steps, want 3", len(steps))
	}
	// Non power of two: paired-out even ranks do 2 steps.
	steps = allreduceSteps(0, 6, 64)
	if len(steps) != 2 {
		t.Errorf("allreduce np=6 rank 0 (paired out): %d steps, want 2", len(steps))
	}
	// np=1: nothing to do.
	if len(allreduceSteps(0, 1, 64)) != 0 {
		t.Error("allreduce np=1 must be empty")
	}
}

func TestDisseminationRounds(t *testing.T) {
	for _, np := range []int{2, 3, 5, 8, 9, 16} {
		steps := disseminationSteps(0, np, 0)
		want := 0
		for off := 1; off < np; off *= 2 {
			want++
		}
		if len(steps) != want {
			t.Errorf("np=%d: %d rounds, want %d", np, len(steps), want)
		}
	}
}

func TestBcastRootSendsOnly(t *testing.T) {
	steps := bcastSteps(2, 2, 8, 64)
	for _, s := range steps {
		if s.recvPeer >= 0 {
			t.Error("root must not receive in a broadcast")
		}
	}
	if len(steps) != 3 {
		t.Errorf("root sends %d times in np=8, want 3", len(steps))
	}
}

func TestReduceLeafSendsOnce(t *testing.T) {
	// In the binomial reduce, odd vranks send exactly once and never recv.
	steps := reduceSteps(1, 0, 8, 64)
	if len(steps) != 1 || steps[0].sendPeer != 0 || steps[0].recvPeer >= 0 {
		t.Errorf("leaf steps = %+v", steps)
	}
}

func TestAlltoallTouchesAllPeers(t *testing.T) {
	np := 7
	steps := alltoallSteps(2, np, 64)
	if len(steps) != np-1 {
		t.Fatalf("steps = %d, want %d", len(steps), np-1)
	}
	sendSeen := map[int]bool{}
	recvSeen := map[int]bool{}
	for _, s := range steps {
		sendSeen[s.sendPeer] = true
		recvSeen[s.recvPeer] = true
	}
	if len(sendSeen) != np-1 || len(recvSeen) != np-1 {
		t.Errorf("peers covered: send %d recv %d, want %d", len(sendSeen), len(recvSeen), np-1)
	}
}

// Property: every decomposition matches cleanly for arbitrary sizes and
// roots.
func TestDecompositionMatchProperty(t *testing.T) {
	f := func(npRaw, rootRaw uint8, kind uint8) bool {
		np := int(npRaw%30) + 2
		root := int(rootRaw) % np
		var op trace.Op
		switch kind % 5 {
		case 0:
			op = trace.Allreduce(64)
		case 1:
			op = trace.Barrier()
		case 2:
			op = trace.Bcast(root, 64)
		case 3:
			op = trace.Reduce(root, 64)
		case 4:
			op = trace.Alltoall(16)
		}
		return matchStepsErr(op, np) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
