package replay

import (
	"sync"

	"ibpower/internal/trace"
)

// Collectives are decomposed into sequences of point-to-point micro
// operations per rank, following the classic algorithms (recursive doubling
// for allreduce, dissemination for barrier, binomial trees for rooted
// collectives, rotation for alltoall). Synchronization between ranks emerges
// from matching the micro operations during replay.

// microOp is one point-to-point step of an MPI call.
type microOp struct {
	sendPeer int // -1 when no send part
	recvPeer int // -1 when no recv part
	bytes    int
}

// expandKey captures every trace.Op field expand reads, plus the rank and
// communicator size: micro-op decompositions are pure functions of these, so
// equal keys always yield identical sequences.
type expandKey struct {
	call               trace.CallID
	r, np              int
	bytes              int
	root, peer, recvPt int
}

// expandCache memoizes micro-op expansions across the whole process. Entries
// are immutable once stored (the engine only ever reads micro-op slices), so
// a single decomposition per distinct (call, rank, np, bytes, root/peer)
// shape is computed once per sweep and shared read-only by every concurrent
// replay. Iterative workloads hit the cache on all but the first iteration,
// making the per-call expansion step allocation-free in steady state.
// expandCacheLimit bounds the memoized shapes. Sweep workloads stay far
// below it; a long-lived process replaying traces with ever-varying byte
// counts stops inserting at the cap instead of growing without bound (the
// overflow shapes are simply expanded fresh, the pre-cache behaviour).
const expandCacheLimit = 1 << 20

var (
	expandMu    sync.RWMutex
	expandCache = make(map[expandKey][]microOp)
)

// expandCached returns the memoized micro-op sequence rank r performs for op.
// The returned slice is shared: callers must not mutate it.
func expandCached(op trace.Op, r, np int) []microOp {
	k := expandKey{call: op.Call, r: r, np: np, bytes: op.Bytes,
		root: op.Root, peer: op.Peer, recvPt: op.RecvPeer}
	expandMu.RLock()
	steps, ok := expandCache[k]
	expandMu.RUnlock()
	if ok {
		return steps
	}
	steps = expand(op, r, np)
	expandMu.Lock()
	if prev, ok := expandCache[k]; ok {
		steps = prev // lost the race; share the first stored sequence
	} else if len(expandCache) < expandCacheLimit {
		expandCache[k] = steps
	}
	expandMu.Unlock()
	return steps
}

// expand returns the micro-op sequence rank r performs for op.
func expand(op trace.Op, r, np int) []microOp {
	switch op.Call {
	case trace.CallSend:
		return []microOp{{sendPeer: op.Peer, recvPeer: -1, bytes: op.Bytes}}
	case trace.CallRecv:
		return []microOp{{sendPeer: -1, recvPeer: op.Peer}}
	case trace.CallSendrecv:
		return []microOp{{sendPeer: op.Peer, recvPeer: op.RecvPeer, bytes: op.Bytes}}
	case trace.CallAllreduce:
		return allreduceSteps(r, np, op.Bytes)
	case trace.CallBarrier:
		return disseminationSteps(r, np, 0)
	case trace.CallBcast:
		return bcastSteps(r, op.Root, np, op.Bytes)
	case trace.CallReduce:
		return reduceSteps(r, op.Root, np, op.Bytes)
	case trace.CallAlltoall:
		return alltoallSteps(r, np, op.Bytes)
	}
	return nil
}

// floorPow2 returns the largest power of two <= n (n >= 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// allreduceSteps implements recursive doubling with the standard
// non-power-of-two pre/post phases: the first 2*rem ranks pair up so a
// power-of-two core remains, the core performs log2 rounds of pairwise
// exchange, and results are returned to the paired-out ranks.
func allreduceSteps(r, np, bytes int) []microOp {
	if np == 1 {
		return nil
	}
	pof2 := floorPow2(np)
	rem := np - pof2
	var steps []microOp

	newRank := -1
	switch {
	case r < 2*rem && r%2 == 0:
		// Paired-out rank: contribute, then wait for the result.
		steps = append(steps, microOp{sendPeer: r + 1, recvPeer: -1, bytes: bytes})
		steps = append(steps, microOp{sendPeer: -1, recvPeer: r + 1})
		return steps
	case r < 2*rem:
		steps = append(steps, microOp{sendPeer: -1, recvPeer: r - 1})
		newRank = r / 2
	default:
		newRank = r - rem
	}

	oldRank := func(nr int) int {
		if nr < rem {
			return nr*2 + 1
		}
		return nr + rem
	}
	for mask := 1; mask < pof2; mask <<= 1 {
		partner := oldRank(newRank ^ mask)
		steps = append(steps, microOp{sendPeer: partner, recvPeer: partner, bytes: bytes})
	}
	if r < 2*rem {
		steps = append(steps, microOp{sendPeer: r - 1, recvPeer: -1, bytes: bytes})
	}
	return steps
}

// disseminationSteps implements the dissemination barrier: ceil(log2 np)
// rounds of exchanging control messages with exponentially growing offsets.
func disseminationSteps(r, np, bytes int) []microOp {
	var steps []microOp
	for off := 1; off < np; off *= 2 {
		to := (r + off) % np
		from := (r - off%np + np) % np
		steps = append(steps, microOp{sendPeer: to, recvPeer: from, bytes: bytes})
	}
	return steps
}

// bcastSteps implements the binomial-tree broadcast.
func bcastSteps(r, root, np, bytes int) []microOp {
	if np == 1 {
		return nil
	}
	vrank := (r - root + np) % np
	var steps []microOp
	mask := 1
	for mask < np {
		if vrank&mask != 0 {
			src := (vrank - mask + root) % np
			steps = append(steps, microOp{sendPeer: -1, recvPeer: src})
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < np {
			dst := (vrank + mask + root) % np
			steps = append(steps, microOp{sendPeer: dst, recvPeer: -1, bytes: bytes})
		}
		mask >>= 1
	}
	return steps
}

// reduceSteps implements the binomial-tree reduction (reverse broadcast).
func reduceSteps(r, root, np, bytes int) []microOp {
	if np == 1 {
		return nil
	}
	vrank := (r - root + np) % np
	var steps []microOp
	for mask := 1; mask < np; mask <<= 1 {
		if vrank&mask == 0 {
			if vrank+mask < np {
				src := (vrank + mask + root) % np
				steps = append(steps, microOp{sendPeer: -1, recvPeer: src})
			}
		} else {
			dst := (vrank - mask + root) % np
			steps = append(steps, microOp{sendPeer: dst, recvPeer: -1, bytes: bytes})
			break
		}
	}
	return steps
}

// alltoallSteps implements the rotation (ring) all-to-all: in round i every
// rank sends to (r+i) and receives from (r-i).
func alltoallSteps(r, np, bytes int) []microOp {
	var steps []microOp
	for i := 1; i < np; i++ {
		to := (r + i) % np
		from := (r - i + np) % np
		steps = append(steps, microOp{sendPeer: to, recvPeer: from, bytes: bytes})
	}
	return steps
}
