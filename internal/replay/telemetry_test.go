package replay

import (
	"bytes"
	"testing"
	"time"

	"ibpower/internal/power"
	"ibpower/internal/topology"
)

// TestTelemetryOffByDefault: the zero TelemetryConfig records nothing and
// leaves Result.Series nil — the opt-in contract existing goldens rely on.
func TestTelemetryOffByDefault(t *testing.T) {
	res, err := Run(genTrace(t, "gromacs", 8), DefaultConfig().WithPower(20*us, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Error("telemetry recorded without being enabled")
	}
}

// TestTelemetryObservational: enabling telemetry must not perturb the
// simulation — every non-Series result field stays identical. This is the
// invariant that lets -timeseries ride along any run without invalidating
// its pinned outputs.
func TestTelemetryObservational(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig().WithPower(20*us, 0.01)
	plain, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(tr, cfg.WithTelemetry(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Series == nil {
		t.Fatal("telemetry enabled but Series is nil")
	}
	if traced.ExecTime != plain.ExecTime || traced.Transfers != plain.Transfers ||
		traced.BytesMoved != plain.BytesMoved {
		t.Errorf("telemetry perturbed the simulation: exec %v vs %v, transfers %d vs %d",
			traced.ExecTime, plain.ExecTime, traced.Transfers, plain.Transfers)
	}
	if traced.AvgSavingPct() != plain.AvgSavingPct() || traced.Shutdowns != plain.Shutdowns {
		t.Errorf("telemetry perturbed power accounting: saving %v vs %v, shutdowns %d vs %d",
			traced.AvgSavingPct(), plain.AvgSavingPct(), traced.Shutdowns, plain.Shutdowns)
	}
}

// TestTelemetrySeriesContents checks the engine-level registry: every
// documented series exists, the spans observed busy links and power modes,
// and the hit-rate samples are valid probabilities.
func TestTelemetrySeriesContents(t *testing.T) {
	tr := genTrace(t, "gromacs", 8)
	cfg := DefaultConfig().WithPower(20*us, 0.01).WithTelemetry(time.Millisecond)
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Series
	for _, name := range []string{
		"power.host", "power.low", "pred.hit",
		"util.hostup", "util.hostdn", "util.up", "util.down",
	} {
		if _, ok := ts.Lookup(name); !ok {
			t.Errorf("series %q not registered", name)
		}
	}
	if id, _ := ts.Lookup("power.host"); ts.Sketch(id).Count() == 0 {
		t.Error("power.host recorded no mode intervals")
	}
	if id, _ := ts.Lookup("util.hostup"); ts.Sketch(id).Count() == 0 {
		t.Error("util.hostup recorded no busy spans despite transfers")
	}
	if id, ok := ts.Lookup("pred.hit"); ok {
		sk := ts.Sketch(id)
		if sk.Count() == 0 {
			t.Error("pred.hit recorded no prediction opportunities")
		}
		if sk.Min() < 0 || sk.Max() > 1 {
			t.Errorf("pred.hit samples outside [0,1]: min=%v max=%v", sk.Min(), sk.Max())
		}
	}
	// Busy time on the telemetry timeline must agree with the network's own
	// accounting: the sum over util.* bucket weights equals total link busy
	// seconds (both integrate the same reservations).
	var teleBusy float64
	for _, name := range []string{"util.hostup", "util.hostdn", "util.up", "util.down"} {
		id, _ := ts.Lookup(name)
		teleBusy += ts.Sketch(id).Sum()
	}
	if teleBusy <= 0 {
		t.Error("no busy seconds recorded on the util series")
	}
}

// TestTelemetryDeterministic: two identical telemetry-enabled runs must
// produce byte-identical JSON documents — the foundation of the harness
// goldens and the -parallel invariance test.
func TestTelemetryDeterministic(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig().WithPower(20*us, 0.01).WithTelemetry(time.Millisecond)
	var docs [2]bytes.Buffer
	for i := range docs {
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Series.WriteJSON(&docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Error("identical runs produced different telemetry documents")
	}
}

// TestTelemetryHooksAllocs pins the telemetry additions to the replay inner
// loop at 0 allocs/op: ObserveBusy fires on every link reservation,
// observeMode on every power-mode interval, recordHit on every prediction
// opportunity. A single allocation in any of them multiplies across
// millions of events.
func TestTelemetryHooksAllocs(t *testing.T) {
	topo, err := topology.Named("")
	if err != nil {
		t.Fatal(err)
	}
	tele := newTelemetry(TelemetryConfig{Enabled: true}, topo)
	mode := tele.observeMode(0)
	at := time.Duration(0)
	link := topology.LinkID(0)
	nlinks := topology.LinkID(topo.Table().Len())
	if avg := testing.AllocsPerRun(1000, func() {
		tele.ObserveBusy(link, at, at+10*us)
		mode(power.ModeLow, at, at+50*us)
		tele.recordHit(at, 1)
		at += 30 * us
		link = (link + 1) % nlinks
	}); avg != 0 {
		t.Errorf("telemetry replay-loop hooks allocate %.1f/op, want 0", avg)
	}
}
