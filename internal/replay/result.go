package replay

import (
	"time"

	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
)

// Result is the outcome of one replay run.
type Result struct {
	ExecTime   time.Duration   // application execution time (max over ranks)
	RankFinish []time.Duration // per-rank completion time

	// Power accounting per rank host link (only when the mechanism ran).
	Acct      []power.Accounting
	PredStats []predictor.Stats
	Timelines []*trace.Timeline

	// Aggregate mechanism counters.
	Shutdowns   int
	DemandWakes int
	TimerWakes  int
	TotalDelay  time.Duration

	Transfers  int
	BytesMoved int64

	// Series is the run's streaming telemetry recorder, non-nil only when
	// Config.Telemetry was enabled on a single-job run (the recorder is
	// fabric-wide; multi-job runs expose it on MultiResult instead).
	Series *stats.TimeSeries
}

// AvgSavingPct returns the switch power saving averaged over all MPI
// processes, as the paper reports (Figures 7–9a). Zero when the mechanism
// was disabled.
func (r *Result) AvgSavingPct() float64 {
	if len(r.Acct) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range r.Acct {
		s += a.SavingPct()
	}
	return s / float64(len(r.Acct))
}

// AvgLowFraction returns the mean fraction of time spent in low-power mode.
func (r *Result) AvgLowFraction() float64 {
	if len(r.Acct) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range r.Acct {
		s += a.LowFraction()
	}
	return s / float64(len(r.Acct))
}

// AvgHitRatePct returns the MPI call hit rate averaged over processes
// (Table III).
func (r *Result) AvgHitRatePct() float64 {
	if len(r.PredStats) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range r.PredStats {
		s += p.HitRatePct()
	}
	return s / float64(len(r.PredStats))
}

// TimeIncreasePct returns the execution time increase relative to base in
// percent (Figures 7–9b).
func (r *Result) TimeIncreasePct(base *Result) float64 {
	if base.ExecTime == 0 {
		return 0
	}
	return 100 * (float64(r.ExecTime) - float64(base.ExecTime)) / float64(base.ExecTime)
}

// collect builds the per-job Results and fabric-wide counters after the run
// has drained. Each job's Result is indexed by job-local rank and its power
// accounting closes at the job's own completion time, exactly as a dedicated
// single-job run would report it.
func (e *engine) collect() *MultiResult {
	m := &MultiResult{Jobs: make([]*Result, len(e.jobs))}
	for j, js := range e.jobs {
		res := e.collectJob(js, 0)
		m.Jobs[j] = res
		if res.ExecTime > m.MakeSpan {
			m.MakeSpan = res.ExecTime
		}
	}
	m.Transfers, m.BytesMoved = e.net.Stats()
	m.LinkBusy = make([]time.Duration, e.net.NumLinks())
	for i := range m.LinkBusy {
		m.LinkBusy[i] = e.net.LinkBusy(topology.LinkID(i))
	}
	if e.tele != nil {
		m.Series = e.tele.ts
	}
	return m
}

// collectJob builds one drained job's Result. start is the job's admission
// time: exec time and rank finishes are reported relative to it, while power
// accounting closes at the job's absolute completion, so a churned job's
// window spans exactly its own lifetime [start, finish].
func (e *engine) collectJob(js *jobState, start time.Duration) *Result {
	np := js.np
	res := &Result{RankFinish: make([]time.Duration, np)}
	finish := start
	for r := 0; r < np; r++ {
		rs := e.rk[js.base+r]
		res.RankFinish[r] = rs.clk - start
		if rs.clk > finish {
			finish = rs.clk
		}
	}
	res.ExecTime = finish - start
	if js.pw.Enabled {
		res.Acct = make([]power.Accounting, np)
		res.PredStats = make([]predictor.Stats, np)
		for r := 0; r < np; r++ {
			rs := e.rk[js.base+r]
			rs.ctrl.Finish(finish)
			res.Acct[r] = rs.ctrl.Accounting()
			res.PredStats[r] = rs.pred.Stats()
			res.Shutdowns += rs.ctrl.Shutdowns
			res.DemandWakes += rs.ctrl.DemandWakes
			res.TimerWakes += rs.ctrl.TimerWakes
			res.TotalDelay += rs.ctrl.TotalDelay
			if js.pw.RecordTimelines {
				if tl := rs.ctrl.Timeline(); tl != nil {
					res.Timelines = append(res.Timelines, tl)
				}
			}
		}
	}
	res.Transfers, res.BytesMoved = js.transfers, js.bytes
	return res
}
