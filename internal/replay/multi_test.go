package replay

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

func genTrace(t *testing.T, app string, np int) *trace.Trace {
	t.Helper()
	tr, err := workloads.Generate(app, np, workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRunJobsSingleJobMatchesRun proves the explicit-placement path is the
// same simulation Run performs: one job on the identity placement must give
// the exact Result, field for field.
func TestRunJobsSingleJobMatchesRun(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig().WithPower(20*time.Microsecond, 0.01)

	want, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ident := make([]int, tr.NP)
	for i := range ident {
		ident[i] = i
	}
	got, err := RunJobs([]Job{{Trace: tr, Terminals: ident}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Jobs[0], want) {
		t.Errorf("explicit identity placement diverged from Run:\n got %+v\nwant %+v",
			got.Jobs[0], want)
	}
	if got.MakeSpan != want.ExecTime {
		t.Errorf("MakeSpan = %v, want %v", got.MakeSpan, want.ExecTime)
	}
	if got.Transfers != want.Transfers || got.BytesMoved != want.BytesMoved {
		t.Errorf("fabric counters (%d, %d) != job counters (%d, %d)",
			got.Transfers, got.BytesMoved, want.Transfers, want.BytesMoved)
	}
}

// TestRunJobsDeterministic asserts a two-job shared-fabric replay is a pure
// function of its inputs: repeated runs must agree bit for bit.
func TestRunJobsDeterministic(t *testing.T) {
	jobs := []Job{
		{Trace: genTrace(t, "gromacs", 8)},
		{Trace: genTrace(t, "alya", 8)},
	}
	cfg := DefaultConfig().WithPower(20*time.Microsecond, 0.01)
	a, err := RunJobs(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJobs(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical RunJobs calls disagreed")
	}
}

// TestRunJobsScopesJobs asserts collectives and point-to-point matching stay
// inside each job: two jobs full of barriers and allreduces must both drain
// (cross-job matching would deadlock or corrupt the schedule), and the
// fabric-wide counters must be the union of the per-job ones.
func TestRunJobsScopesJobs(t *testing.T) {
	jobs := []Job{
		{Trace: genTrace(t, "nasbt", 9)},
		{Trace: genTrace(t, "nasmg", 8)},
	}
	m, err := RunJobs(jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 2 {
		t.Fatalf("got %d job results, want 2", len(m.Jobs))
	}
	sumT, sumB := 0, int64(0)
	for j, res := range m.Jobs {
		if res.ExecTime <= 0 {
			t.Errorf("job %d: non-positive exec time %v", j, res.ExecTime)
		}
		if len(res.RankFinish) != jobs[j].Trace.NP {
			t.Errorf("job %d: %d rank finishes, want %d", j, len(res.RankFinish), jobs[j].Trace.NP)
		}
		sumT += res.Transfers
		sumB += res.BytesMoved
	}
	if sumT != m.Transfers || sumB != m.BytesMoved {
		t.Errorf("per-job traffic (%d, %d) does not sum to fabric traffic (%d, %d)",
			sumT, sumB, m.Transfers, m.BytesMoved)
	}
	var busy time.Duration
	for _, d := range m.LinkBusy {
		busy += d
	}
	if busy <= 0 {
		t.Error("no link busy time recorded for the union of two jobs")
	}
}

// TestRunJobsPerJobPower asserts each job carries its own power
// configuration: a powered job reports accounting while its unpowered
// neighbor on the same fabric reports none.
func TestRunJobsPerJobPower(t *testing.T) {
	on := DefaultConfig().WithPower(20*time.Microsecond, 0.01).Power
	jobs := []Job{
		{Trace: genTrace(t, "alya", 8), Power: &on},
		{Trace: genTrace(t, "wrf", 8)},
	}
	m, err := RunJobs(jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs[0].Acct) != 8 {
		t.Errorf("powered job has %d accountings, want 8", len(m.Jobs[0].Acct))
	}
	if len(m.Jobs[1].Acct) != 0 {
		t.Errorf("unpowered job has %d accountings, want 0", len(m.Jobs[1].Acct))
	}
}

// TestRunJobsAutoPlacementFillsGaps pins the nil-Terminals contract when
// mixed with explicit placements: automatic jobs take the lowest *free*
// terminals, so an explicit job parked at the top of the fabric cannot push
// an automatic one out of range while terminals remain (regression: the
// first implementation continued after the highest explicit terminal and
// spuriously overflowed the fabric).
func TestRunJobsAutoPlacementFillsGaps(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig()
	topo, err := cfg.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	nt := topo.NumTerminals()
	top := make([]int, 8) // explicit block ending on the last terminal
	for i := range top {
		top[i] = nt - 8 + i
	}
	m, err := RunJobs([]Job{{Trace: tr, Terminals: top}, {Trace: tr}}, cfg)
	if err != nil {
		t.Fatalf("auto placement overflowed despite %d free terminals: %v", nt-8, err)
	}
	if len(m.Jobs) != 2 {
		t.Fatalf("got %d jobs", len(m.Jobs))
	}
}

// TestRunJobsValidation covers the placement error paths.
func TestRunJobsValidation(t *testing.T) {
	tr := genTrace(t, "alya", 8)
	cfg := DefaultConfig()

	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"no jobs", nil, "no jobs"},
		{"overlap", []Job{
			{Trace: tr, Terminals: []int{0, 1, 2, 3, 4, 5, 6, 7}},
			{Trace: tr, Terminals: []int{7, 8, 9, 10, 11, 12, 13, 14}},
		}, "both placed on terminal 7"},
		{"out of range", []Job{
			{Trace: tr, Terminals: []int{0, 1, 2, 3, 4, 5, 6, 100000}},
		}, "out of range"},
		{"wrong length", []Job{
			{Trace: tr, Terminals: []int{0, 1}},
		}, "2 terminals for 8 ranks"},
		{"nil trace", []Job{{}}, "no trace"},
	}
	for _, c := range cases {
		_, err := RunJobs(c.jobs, cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}

	// More ranks than terminals.
	big := make([]Job, 0, 40)
	for i := 0; i < 40; i++ {
		big = append(big, Job{Trace: tr})
	}
	if _, err := RunJobs(big, cfg); err == nil || !strings.Contains(err.Error(), "terminals") {
		t.Errorf("overcommitted fabric: error %v, want terminal-count complaint", err)
	}
}
