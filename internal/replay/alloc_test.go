package replay

import (
	"testing"

	"ibpower/internal/trace"
)

// TestExpandCachedMatchesExpand asserts the memoized decomposition equals a
// fresh expansion for every call shape the engine can meet.
func TestExpandCachedMatchesExpand(t *testing.T) {
	ops := []trace.Op{
		trace.Send(3, 1024),
		trace.Recv(2),
		trace.Sendrecv(1, 5, 4096),
		trace.Allreduce(2048),
		trace.Barrier(),
		trace.Bcast(0, 512),
		trace.Reduce(2, 512),
		trace.Alltoall(256),
	}
	for _, np := range []int{6, 7, 16} {
		for r := 0; r < np; r++ {
			for _, op := range ops {
				want := expand(op, r, np)
				got := expandCached(op, r, np)
				if len(want) != len(got) {
					t.Fatalf("np=%d r=%d %v: %d steps cached vs %d fresh", np, r, op.Call, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("np=%d r=%d %v step %d: %+v != %+v", np, r, op.Call, i, got[i], want[i])
					}
				}
				// A second lookup must return the identical shared slice.
				if again := expandCached(op, r, np); len(again) > 0 && &again[0] != &got[0] {
					t.Fatalf("np=%d r=%d %v: cache returned a different backing slice", np, r, op.Call)
				}
			}
		}
	}
}

// TestExpandCacheHitNoAllocs is the hot-path regression test: once a call
// shape is memoized, expanding it again must not allocate.
func TestExpandCacheHitNoAllocs(t *testing.T) {
	ops := []trace.Op{
		trace.Allreduce(2048),
		trace.Sendrecv(1, 5, 4096),
		trace.Barrier(),
		trace.Alltoall(256),
	}
	const np = 16
	for r := 0; r < np; r++ {
		for _, op := range ops {
			expandCached(op, r, np) // warm
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		expandCached(ops[i%len(ops)], i%np, np)
		i++
	})
	if allocs != 0 {
		t.Errorf("expand cache hit allocated %.1f/op, want 0", allocs)
	}
}

// TestPtQueueFIFO covers the ring queue replacing the re-sliced pending
// slices: FIFO order across growth, and popped slots cleared so the backing
// array does not retain entries (the leak the ring fixes).
func TestPtQueueFIFO(t *testing.T) {
	var q ptQueue
	for i := 0; i < 3; i++ {
		q.push(pendingPt{rank: i})
	}
	q.pop()
	q.pop()
	// Wrap around and force growth with entries outstanding.
	for i := 3; i < 12; i++ {
		q.push(pendingPt{rank: i})
	}
	for want := 2; want < 12; want++ {
		if q.n == 0 {
			t.Fatalf("queue empty before draining rank %d", want)
		}
		if got := q.pop(); got.rank != want {
			t.Fatalf("pop = rank %d, want %d", got.rank, want)
		}
	}
	if q.n != 0 {
		t.Fatalf("queue not empty after drain: n=%d", q.n)
	}
	for _, p := range q.buf {
		if p != (pendingPt{}) {
			t.Fatalf("popped slot retains %+v; backing array must be cleared", p)
		}
	}
}
