package replay

import (
	"fmt"
	"time"

	"ibpower/internal/network"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
)

// Churn is an incremental shared-fabric replay session: jobs are admitted
// onto one live network timeline at non-decreasing simulated start times,
// run to completion, and leave their link occupancy behind for every job
// admitted after them. It is the substrate of the scenario engine
// (internal/multijob.RunChurn), where a scheduler decides when each queued
// job claims terminals.
//
// A rank admitted at time T starts its clock at T, so its whole replay —
// computation, messaging, power accounting — happens in the window
// [T, finish]. Because op peers are job-local, an admitted batch always
// drains to completion in one pass, which is what lets the caller learn
// exact finish times before making its next scheduling decision.
//
// Contention is admission-ordered: a job's transfers observe the link busy
// intervals accumulated by every earlier-admitted job (including ones whose
// lifetime overlaps its own), while earlier jobs are unaffected by later
// arrivals — the one-pass analogue of a batch system in which running jobs
// have priority over newcomers. Jobs admitted in the same batch interleave
// on the work list and contend bidirectionally, exactly like RunJobs.
//
// The session is single-threaded and deterministic: the result sequence is
// a pure function of the admission sequence and Config.
type Churn struct {
	cfg  Config
	topo topology.Fabric
	e    *engine
	now  time.Duration
	term []termUse
	jobN int // jobs admitted so far, for timeline labels
}

// termUse tracks a terminal's last occupancy so overlapping admissions are
// rejected instead of silently double-booking a host link.
type termUse struct {
	used   bool
	finish time.Duration // absolute completion of the last occupant
}

// NewChurn opens a churn session on the configured fabric. Validation
// mirrors RunJobs: network parameters and the fabric registry name fail
// fast, before any job is admitted.
func NewChurn(cfg Config) (*Churn, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo == nil {
		if err := topology.CheckRegistered(cfg.FabricName); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	topo, err := cfg.Fabric()
	if err != nil {
		return nil, err
	}
	net, err := network.New(topo, cfg.Net)
	if err != nil {
		return nil, err
	}
	e := &engine{net: net, pt: make(map[pairKey]*pairQueues)}
	if cfg.Telemetry.Enabled {
		e.tele = newTelemetry(cfg.Telemetry, topo)
		net.Observe(e.tele)
	}
	return &Churn{cfg: cfg, topo: topo, e: e, term: make([]termUse, topo.NumTerminals())}, nil
}

// Fabric returns the fabric the session simulates on.
func (c *Churn) Fabric() topology.Fabric { return c.topo }

// Now returns the latest admission time.
func (c *Churn) Now() time.Duration { return c.now }

// Stats returns fabric-wide transfer counters accumulated so far: the union
// of every admitted job's traffic.
func (c *Churn) Stats() (transfers int, bytes int64) { return c.e.net.Stats() }

// LinkBusy returns a snapshot of accumulated busy time per directed link,
// indexed by topology link ID.
func (c *Churn) LinkBusy() []time.Duration {
	busy := make([]time.Duration, c.e.net.NumLinks())
	for i := range busy {
		busy[i] = c.e.net.LinkBusy(topology.LinkID(i))
	}
	return busy
}

// Telemetry returns the session's streaming recorder, or nil when
// Config.Telemetry is off. The session records its engine-level series on
// it; callers (the churn scenario engine) may register and record
// additional series on the same recorder, sharing one bucket timeline.
func (c *Churn) Telemetry() *stats.TimeSeries {
	if c.e.tele == nil {
		return nil
	}
	return c.e.tele.ts
}

// SetFaults attaches a live fault set to the session's network: subsequent
// admissions route around blocked links (see network.SetFaults). The caller
// keeps ownership of the set and mutates it between admissions as fault
// events fire.
func (c *Churn) SetFaults(fs *topology.FaultSet) error { return c.e.net.SetFaults(fs) }

// Unroutable returns the number of transfers so far that had no healthy
// path and fell back to healthy-route timing.
func (c *Churn) Unroutable() int { return c.e.net.Unroutable() }

// ReleaseTerminals truncates the recorded occupancy of the given terminals
// to at, freeing them for re-admission from that instant. The churn engine
// calls this when a fault kills a running job: the job's remaining replay
// stays on the link timeline (its ranks were already drained in one pass —
// the residue models abort/drain traffic), but the terminals themselves may
// host a new job immediately.
func (c *Churn) ReleaseTerminals(at time.Duration, terms []int) {
	for _, t := range terms {
		if t >= 0 && t < len(c.term) && c.term[t].used && c.term[t].finish > at {
			c.term[t].finish = at
		}
	}
}

// AdmitAt starts the given jobs at simulated time start — which must not
// precede any earlier admission — and drains them to completion, returning
// one job-scoped Result per job in input order. Each Result's ExecTime and
// RankFinish are relative to start; the job's absolute finish is
// start + ExecTime.
//
// Every job must be placed explicitly (the caller's free-list owns terminal
// assignment); a terminal is reusable once its previous occupant's finish
// time is <= start, and admissions that would overlap a busy terminal are
// rejected. On error the session state is undefined and must be discarded.
func (c *Churn) AdmitAt(start time.Duration, jobs ...Job) ([]*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("replay: churn: no jobs to admit")
	}
	if start < c.now {
		return nil, fmt.Errorf("replay: churn: admission time going backwards: %v < %v", start, c.now)
	}
	c.now = start
	claimed := make(map[int]int) // terminal -> batch job index
	pws := make([]PowerConfig, len(jobs))
	srcs := make([]trace.Source, len(jobs))
	metas := make([]trace.Meta, len(jobs))
	for j, job := range jobs {
		src := job.src()
		if src == nil {
			return nil, fmt.Errorf("replay: churn job %d has no trace", j)
		}
		if err := trace.ValidateSource(src); err != nil {
			return nil, err
		}
		srcs[j], metas[j] = src, src.Meta()
		m := metas[j]
		if len(job.Terminals) != m.NP {
			return nil, fmt.Errorf("replay: churn job %d (%s): %d terminals for %d ranks (churn admissions must be placed explicitly)",
				j, m.App, len(job.Terminals), m.NP)
		}
		for r, t := range job.Terminals {
			if t < 0 || t >= len(c.term) {
				return nil, fmt.Errorf("replay: churn job %d (%s) rank %d: terminal %d out of range [0,%d)",
					j, m.App, r, t, len(c.term))
			}
			if prev, taken := claimed[t]; taken {
				return nil, fmt.Errorf("replay: churn jobs %d and %d both placed on terminal %d", prev, j, t)
			}
			if c.term[t].used && c.term[t].finish > start {
				return nil, fmt.Errorf("replay: churn job %d (%s) rank %d: terminal %d busy until %v at admission time %v",
					j, m.App, r, t, c.term[t].finish, start)
			}
			claimed[t] = j
		}
		pw, err := resolvePower(c.cfg, job)
		if err != nil {
			return nil, err
		}
		pws[j] = pw
	}

	from := len(c.e.rk)
	added := make([]*jobState, len(jobs))
	for j, job := range jobs {
		id, app := c.jobN+j, metas[j].App
		// addJob opens fresh cursors, so re-admitting a job (a fault retry)
		// replays its source from the first op.
		js, err := c.e.addJob(srcs[j], pws[j], job.Terminals, start, func(r int) string {
			return fmt.Sprintf("job %d %s rank %d", id, app, r)
		})
		if err != nil {
			return nil, err
		}
		added[j] = js
	}
	c.jobN += len(jobs)
	c.e.enqueue(from)
	if err := c.e.drain(); err != nil {
		return nil, err
	}

	results := make([]*Result, len(jobs))
	for j, js := range added {
		res := c.e.collectJob(js, start)
		results[j] = res
		finish := start + res.ExecTime
		for _, t := range jobs[j].Terminals {
			c.term[t] = termUse{used: true, finish: finish}
		}
	}
	return results, nil
}
