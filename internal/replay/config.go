// Package replay is the Dimemas-like trace replay engine: it re-executes the
// MPI activity recorded in a trace, representing computation by its recorded
// duration and timing communication through the network model, optionally
// with the paper's power saving mechanism interposed at every MPI call
// (Section IV-A methodology).
package replay

import (
	"fmt"
	"time"

	"ibpower/internal/network"
	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/topology"
)

// OverheadModel aliases the predictor's overhead model (Table IV costs); see
// predictor.OverheadModel.
type OverheadModel = predictor.OverheadModel

// DefaultOverheads returns the Table IV-calibrated costs.
func DefaultOverheads() OverheadModel { return predictor.DefaultOverheads() }

// PowerConfig enables the power saving mechanism during replay.
type PowerConfig struct {
	Enabled bool
	// PredictorName selects the idle predictor from the predictor registry
	// ("ngram", "oracle", "offline", "lastvalue", "ewma", "static-gt", or
	// anything registered by the embedding program); empty selects
	// predictor.DefaultName, the paper's n-gram PPA.
	PredictorName   string
	Predictor       predictor.Config
	Overheads       OverheadModel
	RecordTimelines bool // record per-rank link state timelines (Figure 6)

	// DeepSleep enables the paper's Section VI scenario: long predicted
	// idles also power down switch buffers/crossbars (millisecond
	// reactivation).
	DeepSleep bool
	Deep      power.DeepConfig
}

// Config parameterises a replay run.
type Config struct {
	Net network.Config
	// Topo is the fabric to simulate on; nil resolves FabricName instead.
	Topo topology.Fabric
	// FabricName selects the fabric from the topology registry ("xgft",
	// "xgft3", "dragonfly", "torus2d", "torus3d", or anything registered by
	// the embedding program) when Topo is nil; empty selects
	// topology.DefaultFabric, the paper's XGFT(2;18,14;1,18).
	FabricName string
	Power      PowerConfig

	// Telemetry opts the run into streaming time-series recording
	// (Result.Series / MultiResult.Series). Off by default; enabling it is
	// purely observational and changes no simulated result.
	Telemetry TelemetryConfig

	// Parallelism bounds how many independent experiment points the harness
	// sweeps concurrently (tables, figures, GT grids). Run itself ignores
	// it: each point is still replayed by the single-threaded engine, so
	// results are bit-identical at every setting; only the harness's
	// wall-clock time changes. 0 selects runtime.GOMAXPROCS, 1 forces the
	// serial path.
	Parallelism int
}

// DefaultConfig returns the paper's Table II simulation parameters with the
// mechanism disabled (the power-unaware baseline).
func DefaultConfig() Config {
	return Config{Net: network.DefaultConfig()}
}

// WithPower returns cfg with the mechanism enabled at the given grouping
// threshold and displacement factor. A predictor selected earlier via
// WithPredictor is preserved.
func (c Config) WithPower(gt time.Duration, displacement float64) Config {
	c.Power = PowerConfig{
		Enabled:       true,
		PredictorName: c.Power.PredictorName,
		Predictor: predictor.Config{
			GT:           gt,
			Displacement: displacement,
			Treact:       power.Treact,
		},
		Overheads: DefaultOverheads(),
	}
	return c
}

// WithPredictor returns cfg with the named idle predictor selected from the
// registry. Apply in any order relative to WithPower; the choice survives
// it. The empty name keeps the default n-gram PPA.
func (c Config) WithPredictor(name string) Config {
	c.Power.PredictorName = name
	return c
}

// WithDeepSleep returns cfg with the Section VI deep mode enabled on top of
// the lane mechanism (WithPower must be applied first).
func (c Config) WithDeepSleep(deep power.DeepConfig) Config {
	c.Power.DeepSleep = true
	c.Power.Deep = deep
	return c
}

// WithFabric returns cfg with the named fabric selected from the topology
// registry. The empty name keeps the default, the paper's XGFT(2;18,14;1,18).
// An explicitly set Topo instance takes precedence over the name.
func (c Config) WithFabric(name string) Config {
	c.FabricName = name
	return c
}

// Fabric resolves the fabric the configuration simulates on: Topo when set,
// otherwise the registry entry FabricName selects (the shared immutable
// instance), otherwise the paper's fabric.
func (c Config) Fabric() (topology.Fabric, error) {
	if c.Topo != nil {
		return c.Topo, nil
	}
	f, err := topology.Named(c.FabricName)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return f, nil
}
