package replay

import (
	"strings"
	"testing"
	"time"

	"ibpower/internal/topology"
	"ibpower/internal/workloads"
)

// TestUnknownFabricRejected asserts replay validates the fabric name before
// simulating, listing the registry in the error.
func TestUnknownFabricRejected(t *testing.T) {
	tr, err := workloads.Generate("alya", 8, workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tr, DefaultConfig().WithFabric("nosuch")); err == nil ||
		!strings.Contains(err.Error(), "unknown fabric") ||
		!strings.Contains(err.Error(), "dragonfly") {
		t.Errorf("unknown fabric error %v must reject the name and list the registry", err)
	}
}

// TestFabricTooSmallRejected asserts a fabric with fewer terminals than
// ranks fails fast with a descriptive error, for both an explicit Topo
// instance and a registry name.
func TestFabricTooSmallRejected(t *testing.T) {
	tr, err := workloads.Generate("alya", 32, workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	small, err := topology.NewTorus([]int{4, 4}, 1) // 16 terminals < 32 ranks
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topo = small
	if _, err := Run(tr, cfg); err == nil || !strings.Contains(err.Error(), "terminals") {
		t.Errorf("16-terminal fabric accepted for 32 ranks (err=%v)", err)
	}
}

// TestWithFabricSurvivesWithPower asserts option order does not matter: the
// fabric selection persists through WithPower and WithPredictor, mirroring
// the predictor-name guarantee.
func TestWithFabricSurvivesWithPower(t *testing.T) {
	cfg := DefaultConfig().WithFabric("torus2d").WithPower(20*time.Microsecond, 0.01).WithPredictor("ewma")
	if cfg.FabricName != "torus2d" {
		t.Errorf("FabricName = %q after WithPower/WithPredictor, want torus2d", cfg.FabricName)
	}
	f, err := cfg.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	if f != topology.MustNamed("torus2d") {
		t.Error("Fabric() did not resolve the shared registry instance")
	}
	// The default resolves to the paper's shared fabric.
	f, err = DefaultConfig().Fabric()
	if err != nil || f.(*topology.XGFT) != topology.Paper() {
		t.Errorf("default config fabric = %v (err=%v), want the shared paper XGFT", f, err)
	}
}

// TestRunOnEveryFabric replays one small workload on every registered
// fabric with the mechanism enabled — the end-to-end smoke for the generic
// routing path.
func TestRunOnEveryFabric(t *testing.T) {
	tr, err := workloads.Generate("nasmg", 8, workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	execs := map[string]int64{}
	for _, name := range topology.Names() {
		res, err := Run(tr, DefaultConfig().WithFabric(name).WithPower(20*time.Microsecond, 0.01))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ExecTime <= 0 || res.Transfers == 0 {
			t.Errorf("%s: implausible result %+v", name, res)
		}
		if res.AvgSavingPct() <= 0 {
			t.Errorf("%s: mechanism saved nothing", name)
		}
		execs[name] = int64(res.ExecTime)
	}
	if execs["xgft"] == execs["dragonfly"] && execs["xgft"] == execs["torus3d"] {
		t.Error("all fabrics produced identical execution times — routing is fabric-independent")
	}
}

// TestRunOnBigPresets replays a small workload spread across the whole
// 8000-terminal presets, so routes cross the full tree (three up/down levels
// on xgft3-big, global links on dragonfly-big) and per-LinkID state covers
// tens of thousands of directed links. TestRunOnEveryFabric already runs the
// big presets with the default contiguous placement; this pins the
// wide-spread case and that it stays fast enough for plain `go test`.
func TestRunOnBigPresets(t *testing.T) {
	tr, err := workloads.Generate("alya", 8, workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pw := DefaultConfig().WithPower(20*time.Microsecond, 0.01).Power
	for _, name := range []string{"xgft3-big", "dragonfly-big"} {
		f := topology.MustNamed(name)
		stride := f.NumTerminals() / 8
		terms := make([]int, 8)
		for r := range terms {
			terms[r] = r * stride
		}
		res, err := RunJobs([]Job{{Trace: tr, Terminals: terms, Power: &pw}},
			DefaultConfig().WithFabric(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		job := res.Jobs[0]
		if job.ExecTime <= 0 || job.Transfers == 0 {
			t.Errorf("%s: implausible result %+v", name, job)
		}
		if len(res.LinkBusy) != f.NumLinks() {
			t.Errorf("%s: LinkBusy over %d links, want %d", name, len(res.LinkBusy), f.NumLinks())
		}
		busy := 0
		for _, b := range res.LinkBusy {
			if b > 0 {
				busy++
			}
		}
		// Spread ranks must traverse switch-to-switch links, not just the 16
		// host links (2 directed per occupied terminal).
		if busy <= 16 {
			t.Errorf("%s: only %d links saw traffic — spread placement did not cross the fabric", name, busy)
		}
	}
}
