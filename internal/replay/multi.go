package replay

import (
	"fmt"
	"time"

	"ibpower/internal/network"
	"ibpower/internal/predictor"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
)

// Job is one placed workload of a multi-job replay: a trace plus the fabric
// terminals its ranks occupy. Rank r of the job runs on Terminals[r]; op
// peers stay job-local, so the same trace replays unchanged whether the job
// has the fabric to itself or shares it.
type Job struct {
	// Trace is the in-memory form of the job's op streams. Exactly one of
	// Trace and Source must be set; Trace is the materialized shorthand
	// (*trace.Trace implements trace.Source, so the two paths replay
	// bit-identically).
	Trace *trace.Trace
	// Source streams the job's op streams through cursors — a packed trace
	// file or an on-the-fly generator — so the engine holds O(window) of the
	// trace per rank instead of all of it.
	Source trace.Source
	// Terminals maps job-local rank -> fabric terminal. Terminals of all
	// jobs in one RunJobs call must be disjoint (one MPI process per
	// terminal). nil places the job's ranks contiguously after the previous
	// job's block (the linear placement); for a single job that is the
	// identity mapping Run has always used.
	Terminals []int
	// Power overrides the run-level Config.Power for this job when non-nil,
	// so each job can carry its own grouping threshold and predictor (the
	// multi-tenant scenario: every tenant tunes its own mechanism).
	Power *PowerConfig
}

// src resolves the job's op stream: Source when set, else the in-memory
// Trace; nil when the job has neither.
func (j Job) src() trace.Source {
	if j.Source != nil {
		return j.Source
	}
	if j.Trace != nil {
		return j.Trace
	}
	return nil
}

// MultiResult is the outcome of a shared-fabric multi-job replay.
type MultiResult struct {
	// Jobs holds one Result per job, in input order. Each Result is scoped
	// to its own job: exec time and RankFinish over the job's ranks, power
	// accounting for the job's host links, transfer counters for the job's
	// own traffic.
	Jobs []*Result

	// MakeSpan is the completion time of the slowest job.
	MakeSpan time.Duration

	// Fabric-wide counters: the union of all jobs' traffic.
	Transfers  int
	BytesMoved int64
	// LinkBusy is the accumulated busy time per directed link (indexed by
	// topology link ID), observing every job's messages — the signal that
	// distinguishes fabric sharing from dedicated runs.
	LinkBusy []time.Duration

	// Series is the streaming telemetry recorder, non-nil only when
	// Config.Telemetry was enabled. It is fabric-wide: all jobs' activity
	// lands on one timeline.
	Series *stats.TimeSeries
}

// RunJobs replays several independent jobs concurrently on one shared
// fabric. Every job advances through the same event timeline and every
// message is timed by one network instance, so links observe the union of
// all jobs' traffic: a switch neighbor's communication phase can shrink or
// displace the idle windows another job's predictor is trying to exploit.
//
// The engine is single-threaded and processes ranks in deterministic order,
// so results are a pure function of (jobs, cfg) — bit-identical across
// repeated runs and unaffected by Config.Parallelism, which only harness
// sweeps consume.
func RunJobs(jobs []Job, cfg Config) (*MultiResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("replay: no jobs")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo == nil {
		if err := topology.CheckRegistered(cfg.FabricName); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	topo, err := cfg.Fabric()
	if err != nil {
		return nil, err
	}
	nt := topo.NumTerminals()

	// Validate traces and placements: every rank on a distinct terminal.
	owner := make(map[int]int) // terminal -> job index
	total := 0
	srcs := make([]trace.Source, len(jobs))
	metas := make([]trace.Meta, len(jobs))
	for j := range jobs {
		src := jobs[j].src()
		if src == nil {
			return nil, fmt.Errorf("replay: job %d has no trace", j)
		}
		if err := trace.ValidateSource(src); err != nil {
			return nil, err
		}
		srcs[j], metas[j] = src, src.Meta()
		total += metas[j].NP
		if jobs[j].Terminals == nil {
			continue // placed linearly below, after total is known
		}
		if len(jobs[j].Terminals) != metas[j].NP {
			return nil, fmt.Errorf("replay: job %d (%s): %d terminals for %d ranks",
				j, metas[j].App, len(jobs[j].Terminals), metas[j].NP)
		}
	}
	if total > nt {
		return nil, fmt.Errorf("replay: fabric %s has %d terminals, need %d",
			topo.Name(), nt, total)
	}
	// Two passes: explicitly placed jobs claim their terminals first, then
	// nil-Terminals jobs fill the lowest free terminals in job order — so a
	// mix of explicit and automatic placement never collides and never runs
	// out of terminals while free ones remain (the capacity check above
	// already guaranteed the mix fits).
	terms := make([][]int, len(jobs))
	for j := range jobs {
		if jobs[j].Terminals == nil {
			continue
		}
		terms[j] = jobs[j].Terminals
		for r, t := range terms[j] {
			if t < 0 || t >= nt {
				return nil, fmt.Errorf("replay: job %d (%s) rank %d: terminal %d out of range [0,%d)",
					j, metas[j].App, r, t, nt)
			}
			if prev, taken := owner[t]; taken {
				if prev == j {
					return nil, fmt.Errorf("replay: job %d (%s) places two ranks on terminal %d",
						j, metas[j].App, t)
				}
				return nil, fmt.Errorf("replay: jobs %d and %d both placed on terminal %d",
					prev, j, t)
			}
			owner[t] = j
		}
	}
	next := 0 // lowest candidate free terminal for automatic placement
	for j := range jobs {
		if jobs[j].Terminals != nil {
			continue
		}
		terms[j] = make([]int, metas[j].NP)
		for r := range terms[j] {
			for {
				if _, taken := owner[next]; !taken {
					break
				}
				next++
			}
			terms[j][r] = next
			owner[next] = j
			next++
		}
	}

	// Resolve each job's effective power configuration.
	pws := make([]PowerConfig, len(jobs))
	for j := range jobs {
		pw, err := resolvePower(cfg, jobs[j])
		if err != nil {
			return nil, err
		}
		pws[j] = pw
	}

	net, err := network.New(topo, cfg.Net)
	if err != nil {
		return nil, err
	}
	e := &engine{
		net: net,
		rk:  make([]*rankState, 0, total),
		pt:  make(map[pairKey]*pairQueues),
	}
	if cfg.Telemetry.Enabled {
		e.tele = newTelemetry(cfg.Telemetry, topo)
		net.Observe(e.tele)
	}
	for j := range jobs {
		j, app := j, metas[j].App
		_, err := e.addJob(srcs[j], pws[j], terms[j], 0, func(r int) string {
			return timelineLabel(len(jobs), j, app, r)
		})
		if err != nil {
			return nil, err
		}
	}
	e.enqueue(0)
	return e.run()
}

// resolvePower returns the job's effective power block — its own override or
// the run-level default — after validating predictor config and registry
// name.
func resolvePower(cfg Config, job Job) (PowerConfig, error) {
	pw := cfg.Power
	if job.Power != nil {
		pw = *job.Power
	}
	if pw.Enabled {
		if err := pw.Predictor.Validate(); err != nil {
			return PowerConfig{}, err
		}
		if err := predictor.CheckRegistered(pw.PredictorName); err != nil {
			return PowerConfig{}, fmt.Errorf("replay: %w", err)
		}
	}
	return pw, nil
}

// timelineLabel names a recorded per-rank timeline; single-job runs keep the
// historical "rank N" labels so rendered output is unchanged, multi-job runs
// carry the job index so two tenants of the same application stay
// distinguishable.
func timelineLabel(njobs, j int, app string, r int) string {
	if njobs == 1 {
		return fmt.Sprintf("rank %d", r)
	}
	return fmt.Sprintf("job %d %s rank %d", j, app, r)
}
