// Package eventq provides the discrete-event priority queue used by the
// network and replay simulators. Events are ordered by timestamp with a
// monotonically increasing sequence number breaking ties, which makes
// simulation runs deterministic.
package eventq

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	At  time.Duration // simulated time at which the event fires
	Fn  func()        // action
	seq uint64
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event queue with a simulated clock.
type Queue struct {
	h   eventHeap
	now time.Duration
	seq uint64
}

// New returns an empty queue at time 0.
func New() *Queue { return &Queue{} }

// Now returns the current simulated time.
func (q *Queue) Now() time.Duration { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// At schedules fn at absolute simulated time at. Scheduling in the past is a
// programming error and panics.
func (q *Queue) At(at time.Duration, fn func()) *Event {
	if at < q.now {
		panic("eventq: scheduling event in the past")
	}
	q.seq++
	e := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// After schedules fn after delay d from the current simulated time.
func (q *Queue) After(d time.Duration, fn func()) *Event {
	return q.At(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(q.h) || q.h[e.idx] != e {
		return
	}
	heap.Remove(&q.h, e.idx)
}

// Step fires the earliest event. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.At
	e.Fn()
	return true
}

// Run fires events until the queue drains, returning the final time.
func (q *Queue) Run() time.Duration {
	for q.Step() {
	}
	return q.now
}

// RunUntil fires events with At <= deadline.
func (q *Queue) RunUntil(deadline time.Duration) {
	for len(q.h) > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}
