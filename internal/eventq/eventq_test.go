package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

func TestOrdering(t *testing.T) {
	q := New()
	var fired []int
	q.At(30*us, func() { fired = append(fired, 3) })
	q.At(10*us, func() { fired = append(fired, 1) })
	q.At(20*us, func() { fired = append(fired, 2) })
	end := q.Run()
	if end != 30*us {
		t.Errorf("final time = %v, want 30µs", end)
	}
	for i, v := range []int{1, 2, 3} {
		if fired[i] != v {
			t.Fatalf("fired order %v", fired)
		}
	}
}

func TestTieBreakFIFO(t *testing.T) {
	q := New()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5*us, func() { fired = append(fired, i) })
	}
	q.Run()
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", fired)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	q := New()
	var at time.Duration
	q.At(10*us, func() {
		q.After(5*us, func() { at = q.Now() })
	})
	q.Run()
	if at != 15*us {
		t.Errorf("After fired at %v, want 15µs", at)
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	e := q.At(10*us, func() { fired = true })
	q.Cancel(e)
	q.Cancel(e) // idempotent
	q.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Error("queue not empty")
	}
}

func TestCancelNil(t *testing.T) {
	q := New()
	q.Cancel(nil) // must not panic
}

func TestRunUntil(t *testing.T) {
	q := New()
	var fired []time.Duration
	for _, d := range []time.Duration{10 * us, 20 * us, 30 * us} {
		d := d
		q.At(d, func() { fired = append(fired, d) })
	}
	q.RunUntil(20 * us)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if q.Now() != 20*us {
		t.Errorf("now = %v, want 20µs", q.Now())
	}
	if q.Len() != 1 {
		t.Errorf("pending = %d, want 1", q.Len())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	q := New()
	q.At(10*us, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.At(5*us, func() {})
}

// Property: events always fire in non-decreasing timestamp order regardless
// of insertion order, including events scheduled from callbacks.
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New()
		var fired []time.Duration
		count := int(n%40) + 1
		for i := 0; i < count; i++ {
			at := time.Duration(rng.Intn(1000)) * us
			q.At(at, func() {
				fired = append(fired, q.Now())
				if rng.Intn(3) == 0 {
					q.After(time.Duration(rng.Intn(100))*us, func() {
						fired = append(fired, q.Now())
					})
				}
			})
		}
		q.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
