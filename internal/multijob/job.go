package multijob

import (
	"fmt"
	"strconv"
	"strings"
)

// JobSpec names one workload of a job mix: a generatable application and its
// process count.
type JobSpec struct {
	App string
	NP  int
}

// String renders the spec in the "app:np" form ParseJobs reads.
func (s JobSpec) String() string { return fmt.Sprintf("%s:%d", s.App, s.NP) }

// ParseJobs parses a comma-separated job mix such as "gromacs:64,alya:16"
// (the ibpower multijob -jobs syntax). Application names are validated at
// generation time, not here, so embedding programs can parse mixes of their
// own registered workloads.
func ParseJobs(s string) ([]JobSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("multijob: empty job list")
	}
	var jobs []JobSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		app, npStr, ok := strings.Cut(part, ":")
		if !ok || app == "" {
			return nil, fmt.Errorf("multijob: job %q: want app:np (e.g. gromacs:64)", part)
		}
		np, err := strconv.Atoi(npStr)
		if err != nil || np < 2 {
			return nil, fmt.Errorf("multijob: job %q: process count must be an integer >= 2", part)
		}
		jobs = append(jobs, JobSpec{App: app, NP: np})
	}
	return jobs, nil
}

// FormatJobs renders a mix back into the -jobs syntax.
func FormatJobs(jobs []JobSpec) string {
	parts := make([]string, len(jobs))
	for i, j := range jobs {
		parts[i] = j.String()
	}
	return strings.Join(parts, ",")
}
