package multijob

import "time"

// FaultKind classifies which fabric entity a fault event touches.
type FaultKind uint8

// Fault targets. Link faults take out a switch-to-switch cable (routing
// detours, no job dies); switch faults down the switch and every terminal it
// hosts; terminal faults down one terminal and its host cable. Switch and
// terminal faults kill the jobs running on the affected terminals.
const (
	FaultLink FaultKind = iota
	FaultSwitch
	FaultTerminal
)

// String names the fault kind as it appears in specs and output.
func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "link"
	case FaultSwitch:
		return "switch"
	case FaultTerminal:
		return "term"
	}
	return "unknown"
}

// FaultEvent is one hardware state change on the simulated timeline. Index
// identifies the entity per kind: a directed LinkID (even, the cable) for
// FaultLink, a switch node ID for FaultSwitch, a terminal index for
// FaultTerminal. Repair events restore what the paired failure took down.
type FaultEvent struct {
	At     time.Duration
	Kind   FaultKind
	Repair bool
	Index  int32
}

// FaultSource is a lazily generated, time-ordered fault event stream.
// RunChurn peeks the next event to fold it into its event loop and pops it
// once processed. Implementations must be deterministic (seeded) and emit
// events in non-decreasing At order; the scenario package's FaultStream is
// the standard implementation.
type FaultSource interface {
	// Peek returns the next event without consuming it; ok is false once
	// the stream is exhausted.
	Peek() (ev FaultEvent, ok bool)
	// Pop consumes and returns the next event.
	Pop() FaultEvent
	// RepairPending reports whether any repair event is still to come —
	// while true, waiting jobs may yet become schedulable, so a stuck
	// queue must keep waiting instead of being abandoned.
	RepairPending() bool
}

// RetryPolicy governs what happens to a job killed by a fault: it is
// requeued after an exponential backoff in simulated time until it has been
// killed MaxRetries+1 times, after which it is abandoned (reported, never
// silently dropped).
type RetryPolicy struct {
	MaxRetries int           // retries after the first kill; 0 = abandon on first kill
	Backoff    time.Duration // delay before retry k is Backoff << (k-1)
}

// maxBackoffShift caps the exponential so pathological retry counts cannot
// overflow time.Duration.
const maxBackoffShift = 16

// Delay returns the requeue delay before retry attempt k (1-based).
func (p RetryPolicy) Delay(k int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	shift := k - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return p.Backoff << uint(shift)
}
