package multijob

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"ibpower/internal/topology"
)

// PlaceFunc assigns fabric terminals to jobs: given the fabric and the
// per-job rank counts, it returns one terminal slice per job
// (result[j][r] is the terminal of job j's rank r). Implementations may
// assume sum(sizes) <= f.NumTerminals() — Place checks it — and must be
// deterministic for a given (fabric, sizes, seed): placement is part of the
// simulation's reproducibility contract.
type PlaceFunc func(f topology.Fabric, sizes []int, seed int64) ([][]int, error)

// DefaultPlacement is the registry entry used when no policy is named:
// contiguous terminal blocks, the way batch schedulers fill an idle machine.
const DefaultPlacement = "linear"

var (
	plMu  sync.RWMutex
	plReg = make(map[string]PlaceFunc)
)

// Register adds a placement policy under name. It panics on an empty name, a
// nil policy, or a duplicate registration, mirroring the predictor and
// fabric registries: registry collisions are programmer errors and must fail
// loudly at init time.
func Register(name string, fn PlaceFunc) {
	if name == "" {
		panic("multijob: Register with empty name")
	}
	if fn == nil {
		panic("multijob: Register with nil policy for " + name)
	}
	plMu.Lock()
	defer plMu.Unlock()
	if _, dup := plReg[name]; dup {
		panic("multijob: duplicate registration of " + name)
	}
	plReg[name] = fn
}

// Registered reports whether name resolves in the registry; the empty string
// resolves to DefaultPlacement.
func Registered(name string) bool {
	if name == "" {
		name = DefaultPlacement
	}
	plMu.RLock()
	defer plMu.RUnlock()
	_, ok := plReg[name]
	return ok
}

// Names returns the registered placement policy names, sorted.
func Names() []string {
	plMu.RLock()
	defer plMu.RUnlock()
	names := make([]string, 0, len(plReg))
	for n := range plReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckRegistered returns a descriptive error naming the whole registry when
// name does not resolve (the empty name resolves to DefaultPlacement), so a
// typo'd -placement flag tells the user what would have worked.
func CheckRegistered(name string) error {
	if Registered(name) {
		return nil
	}
	return fmt.Errorf("unknown placement %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Place resolves the named policy and maps the jobs onto the fabric. It
// enforces the invariants every policy must deliver: the job set fits the
// fabric, every rank gets a terminal, and no two ranks — of any job — share
// one.
func Place(name string, f topology.Fabric, sizes []int, seed int64) ([][]int, error) {
	if name == "" {
		name = DefaultPlacement
	}
	plMu.RLock()
	fn, ok := plReg[name]
	plMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("multijob: %w", CheckRegistered(name))
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total > f.NumTerminals() {
		return nil, fmt.Errorf("multijob: %d ranks exceed the %d terminals of fabric %s",
			total, f.NumTerminals(), f.Name())
	}
	terms, err := fn(f, sizes, seed)
	if err != nil {
		return nil, err
	}
	if err := checkPlacement(f, sizes, terms); err != nil {
		return nil, fmt.Errorf("multijob: policy %q broke its contract: %w", name, err)
	}
	return terms, nil
}

// checkPlacement verifies the placement invariants (the same ones
// replay.RunJobs re-checks before simulating).
func checkPlacement(f topology.Fabric, sizes []int, terms [][]int) error {
	if len(terms) != len(sizes) {
		return fmt.Errorf("placed %d jobs, want %d", len(terms), len(sizes))
	}
	seen := make(map[int]bool)
	for j, ts := range terms {
		if len(ts) != sizes[j] {
			return fmt.Errorf("job %d: %d terminals for %d ranks", j, len(ts), sizes[j])
		}
		for r, t := range ts {
			if t < 0 || t >= f.NumTerminals() {
				return fmt.Errorf("job %d rank %d: terminal %d out of range", j, r, t)
			}
			if seen[t] {
				return fmt.Errorf("terminal %d assigned twice", t)
			}
			seen[t] = true
		}
	}
	return nil
}

// blocks cuts a terminal ordering into per-job slices.
func blocks(order []int, sizes []int) [][]int {
	terms := make([][]int, len(sizes))
	next := 0
	for j, n := range sizes {
		terms[j] = append([]int(nil), order[next:next+n]...)
		next += n
	}
	return terms
}

// The preset registry.
func init() {
	// linear: contiguous terminal blocks in fabric order. Jobs pack onto as
	// few first-hop switches as possible, so each job mostly keeps its
	// switch neighborhood to itself — the friendliest sharing for the idle
	// predictor, and the policy a slurm-style scheduler approximates on an
	// empty machine.
	Register("linear", func(f topology.Fabric, sizes []int, _ int64) ([][]int, error) {
		order := make([]int, f.NumTerminals())
		for t := range order {
			order[t] = t
		}
		return blocks(order, sizes), nil
	})
	// random: a seeded shuffle of all terminals, consumed in job order — the
	// fragmented machine after months of job churn. Deterministic per seed.
	Register("random", func(f topology.Fabric, sizes []int, seed int64) ([][]int, error) {
		order := rand.New(rand.NewSource(seed)).Perm(f.NumTerminals())
		return blocks(order, sizes), nil
	})
	// roundrobin: terminals are consumed by cycling over the first-hop
	// switches, so consecutive ranks — and the jobs themselves — interleave
	// across the whole edge of the fabric. Every switch hosts a slice of
	// every job: maximum neighbor diversity, the adversarial case for
	// idle-window prediction.
	Register("roundrobin", func(f topology.Fabric, sizes []int, _ int64) ([][]int, error) {
		groups := make(map[int32][]int)
		var sw []int32 // first-hop switch node IDs in first-appearance order
		for t := 0; t < f.NumTerminals(); t++ {
			s := topology.HostSwitch(f, t)
			if _, ok := groups[s]; !ok {
				sw = append(sw, s)
			}
			groups[s] = append(groups[s], t)
		}
		order := make([]int, 0, f.NumTerminals())
		for round := 0; len(order) < f.NumTerminals(); round++ {
			for _, s := range sw {
				if g := groups[s]; round < len(g) {
					order = append(order, g[round])
				}
			}
		}
		return blocks(order, sizes), nil
	})
}
