package multijob

import (
	"reflect"
	"testing"
)

// FuzzParseJobs hammers the job-list grammar: any input must either error
// cleanly or produce specs that survive a FormatJobs/ParseJobs round trip
// unchanged.
func FuzzParseJobs(f *testing.F) {
	for _, s := range []string{
		"gromacs:64,alya:16",
		"gromacs:16,alya:16",
		"gromacs:8",
		" gromacs:64 , alya:16 ",
		"",
		"gromacs",
		"gromacs:1",
		"gromacs:x",
		":8",
		"a:8,,b:8",
		"a:b:c",
		"a:+2",
		"a:99999999999999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		jobs, err := ParseJobs(s)
		if err != nil {
			return
		}
		if len(jobs) == 0 {
			t.Fatalf("ParseJobs(%q) returned no jobs and no error", s)
		}
		for _, j := range jobs {
			if j.NP < 2 {
				t.Fatalf("ParseJobs(%q) accepted %d ranks", s, j.NP)
			}
		}
		again, err := ParseJobs(FormatJobs(jobs))
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not reparse: %v",
				FormatJobs(jobs), s, err)
		}
		if !reflect.DeepEqual(again, jobs) {
			t.Fatalf("round trip changed the jobs: %v -> %v", jobs, again)
		}
	})
}
