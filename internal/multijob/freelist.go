package multijob

import (
	"fmt"

	"ibpower/internal/topology"
)

// FreeList tracks which fabric terminals are free during a churn scenario
// and hands them out in the preference order a placement policy defines, so
// the same three policies that place a static job mix also govern where
// arriving jobs land: "linear" packs the lowest free terminals, "roundrobin"
// spreads across first-hop switches, "random" scatters per seed.
//
// Alloc and Release recycle terminal slices through an internal pool, so the
// steady state of a long scenario — jobs claiming and freeing terminals
// forever — allocates nothing (pinned by TestFreeListSteadyStateAllocs).
// A terminal can also be *down* — failed hardware, tracked as a counter
// because a terminal may be downed independently by its own fault and by its
// host switch's fault, and must stay excluded until every cause is repaired.
// Down terminals are never handed out by Alloc and do not count as free;
// Release of a down terminal (its occupant was killed) parks it until repair.
type FreeList struct {
	f      topology.Fabric
	order  []int  // policy preference order over every terminal
	busy   []bool // terminal -> occupied
	nfree  int
	down   []int32 // terminal -> overlapping fault count (0 = healthy)
	ndown  int     // terminals with down > 0
	swBusy map[int32]int // first-hop switch -> busy terminal count
	pool   [][]int       // recycled terminal slices
}

// Ordering returns the named placement policy's preference order over every
// terminal of the fabric: the single block the policy produces when asked to
// place one fabric-sized job.
func Ordering(placement string, f topology.Fabric, seed int64) ([]int, error) {
	terms, err := Place(placement, f, []int{f.NumTerminals()}, seed)
	if err != nil {
		return nil, err
	}
	return terms[0], nil
}

// NewFreeList returns a fully free list over the fabric whose Alloc order is
// the given permutation of its terminals (see Ordering).
func NewFreeList(f topology.Fabric, order []int) (*FreeList, error) {
	nt := f.NumTerminals()
	if len(order) != nt {
		return nil, fmt.Errorf("multijob: ordering covers %d of %d terminals", len(order), nt)
	}
	seen := make([]bool, nt)
	for _, t := range order {
		if t < 0 || t >= nt {
			return nil, fmt.Errorf("multijob: ordering names terminal %d, fabric has [0,%d)", t, nt)
		}
		if seen[t] {
			return nil, fmt.Errorf("multijob: ordering names terminal %d twice", t)
		}
		seen[t] = true
	}
	return &FreeList{
		f:      f,
		order:  append([]int(nil), order...),
		busy:   make([]bool, nt),
		nfree:  nt,
		down:   make([]int32, nt),
		swBusy: make(map[int32]int),
	}, nil
}

// Free returns how many terminals are currently free (healthy and idle).
func (fl *FreeList) Free() int { return fl.nfree }

// Down returns how many terminals are currently failed.
func (fl *FreeList) Down() int { return fl.ndown }

// Fail marks terminal t down under one more fault cause. An idle terminal
// leaves the free pool immediately; a busy one stays the caller's problem
// (the churn engine kills its occupant, whose Release then parks it).
func (fl *FreeList) Fail(t int) {
	fl.down[t]++
	if fl.down[t] == 1 {
		fl.ndown++
		if !fl.busy[t] {
			fl.nfree--
		}
	}
}

// Repair removes one fault cause from terminal t; the terminal re-enters the
// free pool once every overlapping cause is repaired.
func (fl *FreeList) Repair(t int) {
	if fl.down[t] == 0 {
		panic(fmt.Sprintf("multijob: repair of healthy terminal %d", t))
	}
	fl.down[t]--
	if fl.down[t] == 0 {
		fl.ndown--
		if !fl.busy[t] {
			fl.nfree++
		}
	}
}

// NumTerminals returns the fabric's terminal count.
func (fl *FreeList) NumTerminals() int { return len(fl.busy) }

// Alloc claims the first n free terminals in policy order and returns them,
// or nil when fewer than n are free. The returned slice belongs to the
// free-list's pool: hand it back through Release, and copy it first if it
// must outlive the occupancy.
func (fl *FreeList) Alloc(n int) []int {
	if n <= 0 || n > fl.nfree {
		return nil
	}
	out := fl.take(n)
	for _, t := range fl.order {
		if fl.busy[t] || fl.down[t] > 0 {
			continue
		}
		out = append(out, t)
		fl.busy[t] = true
		fl.swBusy[topology.HostSwitch(fl.f, t)]++
		if len(out) == n {
			break
		}
	}
	fl.nfree -= n
	return out
}

// PeekAlloc returns the terminals the next Alloc(n) would claim, without
// claiming them; nil when fewer than n are free. The slice is freshly
// allocated and owned by the caller (schedulers use it for what-if scoring).
func (fl *FreeList) PeekAlloc(n int) []int {
	if n <= 0 || n > fl.nfree {
		return nil
	}
	out := make([]int, 0, n)
	for _, t := range fl.order {
		if fl.busy[t] || fl.down[t] > 0 {
			continue
		}
		out = append(out, t)
		if len(out) == n {
			break
		}
	}
	return out
}

// Release frees previously allocated terminals and recycles the slice. It
// panics on a terminal that is not currently busy: a double release means
// the caller's scheduling loop lost track of an occupancy, which would
// silently double-book host links if ignored.
func (fl *FreeList) Release(terms []int) {
	for _, t := range terms {
		if t < 0 || t >= len(fl.busy) || !fl.busy[t] {
			panic(fmt.Sprintf("multijob: release of free terminal %d", t))
		}
		fl.busy[t] = false
		fl.swBusy[topology.HostSwitch(fl.f, t)]--
		if fl.down[t] == 0 {
			fl.nfree++
		}
	}
	fl.pool = append(fl.pool, terms[:0])
}

// IdleSwitches counts the distinct first-hop switches among terms that are
// currently fully idle — no busy terminal hosted. Power-aware scheduling
// minimizes this: admitting a job onto already-woken switches preserves the
// fabric's idle-link coverage.
func (fl *FreeList) IdleSwitches(terms []int) int {
	idle := 0
	seen := make(map[int32]bool, len(terms))
	for _, t := range terms {
		sw := topology.HostSwitch(fl.f, t)
		if seen[sw] {
			continue
		}
		seen[sw] = true
		if fl.swBusy[sw] == 0 {
			idle++
		}
	}
	return idle
}

// Clone returns an independent copy sharing only the immutable ordering —
// what-if planning material for schedulers. The clone's pool starts empty.
func (fl *FreeList) Clone() *FreeList {
	sw := make(map[int32]int, len(fl.swBusy))
	for k, v := range fl.swBusy {
		sw[k] = v
	}
	return &FreeList{
		f:      fl.f,
		order:  fl.order,
		busy:   append([]bool(nil), fl.busy...),
		nfree:  fl.nfree,
		down:   append([]int32(nil), fl.down...),
		ndown:  fl.ndown,
		swBusy: sw,
	}
}

// take pops a pooled slice with capacity n, or grows a fresh one.
func (fl *FreeList) take(n int) []int {
	for i, s := range fl.pool {
		if cap(s) >= n {
			last := len(fl.pool) - 1
			fl.pool[i] = fl.pool[last]
			fl.pool[last] = nil
			fl.pool = fl.pool[:last]
			return s[:0]
		}
	}
	return make([]int, 0, n)
}
