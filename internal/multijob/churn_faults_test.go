package multijob

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ibpower/internal/topology"
)

// sliceFaults is a canned FaultSource for engine tests.
type sliceFaults struct {
	evs []FaultEvent
	i   int
}

func (s *sliceFaults) Peek() (FaultEvent, bool) {
	if s.i < len(s.evs) {
		return s.evs[s.i], true
	}
	return FaultEvent{}, false
}

func (s *sliceFaults) Pop() FaultEvent {
	ev := s.evs[s.i]
	s.i++
	return ev
}

func (s *sliceFaults) RepairPending() bool {
	for _, ev := range s.evs[s.i:] {
		if ev.Repair {
			return true
		}
	}
	return false
}

// healthyExec runs the arrivals without faults and returns job 0's exec time,
// so fault tests can aim events inside a job's lifetime.
func healthyExec(t *testing.T, arrivals []Arrival) time.Duration {
	t.Helper()
	res, err := RunChurn(testChurnConfig(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	return res.Jobs[0].Exec
}

// TestRunChurnCtxCancelled is the satellite contract: a cancelled context
// stops the event loop with ctx.Err() instead of running the scenario out.
func TestRunChurnCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testChurnConfig([]Arrival{{Job: JobSpec{App: "gromacs", NP: 8}, At: 0}})
	cfg.Ctx = ctx
	if _, err := RunChurn(cfg); err != context.Canceled {
		t.Fatalf("cancelled ctx returned %v, want context.Canceled", err)
	}
}

// TestRunChurnTerminalFaultRetries kills a running job via a terminal fault
// and checks the whole retry arc: partial work charged as wasted, the job
// requeued after backoff, completed on healthy terminals, resilience
// counters and rendering consistent.
func TestRunChurnTerminalFaultRetries(t *testing.T) {
	arrivals := []Arrival{{Job: JobSpec{App: "gromacs", NP: 8}, At: 0}}
	exec := healthyExec(t, arrivals)
	killAt := exec / 2

	cfg := testChurnConfig(arrivals)
	cfg.Faults = &sliceFaults{evs: []FaultEvent{
		{At: killAt, Kind: FaultTerminal, Index: 0},
		{At: killAt + 10*exec, Kind: FaultTerminal, Repair: true, Index: 0},
	}}
	cfg.Retry = RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Kills != 1 || j.Abandoned {
		t.Fatalf("job state after one kill: kills %d abandoned %v", j.Kills, j.Abandoned)
	}
	if j.Wasted != killAt {
		t.Errorf("wasted %v, want the killed half-run %v", j.Wasted, killAt)
	}
	// Retry ran after backoff: start = kill + 1ms, on terminals excluding 0.
	if want := killAt + time.Millisecond; j.Start != want {
		t.Errorf("retry started at %v, want %v", j.Start, want)
	}
	for _, term := range j.Terminals {
		if term == 0 {
			t.Error("retry placed onto the failed terminal")
		}
	}
	if j.Finish <= j.Start {
		t.Errorf("retried job finish %v not after start %v", j.Finish, j.Start)
	}
	if res.Killed != 1 || res.Retried != 1 || res.Abandoned != 0 {
		t.Errorf("resilience counters killed %d retried %d abandoned %d, want 1/1/0",
			res.Killed, res.Retried, res.Abandoned)
	}
	if res.GoodputPct <= 0 || res.GoodputPct >= 100 {
		t.Errorf("goodput %.2f%% with one kill, want strictly inside (0, 100)", res.GoodputPct)
	}
	if want := killAt.Seconds() * 8; res.WastedTermSeconds != want {
		t.Errorf("wasted %.6f term-s, want %.6f", res.WastedTermSeconds, want)
	}
	if len(res.Capacity) != UtilBuckets {
		t.Fatalf("%d capacity buckets, want %d", len(res.Capacity), UtilBuckets)
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"retried", "resilience:", "capacity over makespan", "goodput"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fault rendering missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunChurnAbandonsAfterRetryBudget drains the retry budget with repeated
// terminal faults: the job must end reported abandoned — never silently
// dropped — and its partial work charged for every attempt.
func TestRunChurnAbandonsAfterRetryBudget(t *testing.T) {
	arrivals := []Arrival{{Job: JobSpec{App: "gromacs", NP: 8}, At: 0}}
	exec := healthyExec(t, arrivals)

	// With linear placement, attempt k lands on terminals [k, k+8) after
	// terminals 0..k-1 failed; killing terminal k mid-attempt cuts it down.
	var evs []FaultEvent
	clock := exec / 2
	for k := 0; k < 3; k++ {
		evs = append(evs, FaultEvent{At: clock, Kind: FaultTerminal, Index: int32(k)})
		clock += time.Millisecond + exec/2 // after the next retry's start
	}
	cfg := testChurnConfig(arrivals)
	cfg.Faults = &sliceFaults{evs: evs}
	cfg.Retry = RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if !j.Abandoned || j.Kills != 3 {
		t.Fatalf("job after budget exhaustion: kills %d abandoned %v, want 3/true", j.Kills, j.Abandoned)
	}
	if res.Abandoned != 1 || res.Retried != 2 || res.Killed != 3 {
		t.Errorf("counters killed %d retried %d abandoned %d, want 3/2/1",
			res.Killed, res.Retried, res.Abandoned)
	}
	if res.GoodputPct != 0 {
		t.Errorf("goodput %.2f%% with no completed job, want 0", res.GoodputPct)
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "abandoned") {
		t.Errorf("abandoned job not reported:\n%s", buf.String())
	}
}

// TestRunChurnSwitchFaultKillsAndRepairReadmits downs a whole leaf switch —
// killing its occupant — and asserts the repair returns its terminals to the
// free pool for later jobs.
func TestRunChurnSwitchFaultKillsAndRepairReadmits(t *testing.T) {
	// Job 0 fills leaf 0 exactly (18 terminals on the paper fabric); job 1
	// arrives after the repair and must be able to reuse leaf 0.
	arrivals := []Arrival{{Job: JobSpec{App: "gromacs", NP: 18}, At: 0}}
	exec := healthyExec(t, arrivals)

	f := topology.Paper()
	leaf0 := topology.HostSwitch(f, 0)
	killAt := exec / 2
	repairAt := killAt + exec/4

	cfg := testChurnConfig([]Arrival{
		{Job: JobSpec{App: "gromacs", NP: 18}, At: 0},
		// 235 = 252 - 18 + 1: only fits once leaf 0's terminals are back.
		{Job: JobSpec{App: "gromacs", NP: 235}, At: killAt},
	})
	cfg.Faults = &sliceFaults{evs: []FaultEvent{
		{At: killAt, Kind: FaultSwitch, Index: leaf0},
		{At: repairAt, Kind: FaultSwitch, Repair: true, Index: leaf0},
	}}
	cfg.Retry = RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed != 1 {
		t.Fatalf("switch fault killed %d jobs, want 1", res.Killed)
	}
	if res.Abandoned != 0 {
		t.Fatalf("%d jobs abandoned, want all completed (retry + repair)", res.Abandoned)
	}
	wide := res.Jobs[1]
	if wide.Start < repairAt {
		t.Errorf("235-rank job started %v, before the repair at %v", wide.Start, repairAt)
	}
	for _, j := range res.Jobs {
		if j.Finish <= j.Start {
			t.Errorf("job %d did not complete: start %v finish %v", j.ID, j.Start, j.Finish)
		}
	}
}

// TestRunChurnLinkFaultDegradesWithoutKilling fails a switch-to-switch cable
// mid-run: no job dies, the run completes, and the result is deterministic
// across repeats and parallelism.
func TestRunChurnLinkFaultDegradesWithoutKilling(t *testing.T) {
	f := topology.Paper()
	tab := f.Table()
	var cable topology.LinkID = -1
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			cable = topology.LinkID(id)
			break
		}
	}
	run := func(parallel int) *ChurnResult {
		cfg := testChurnConfig([]Arrival{
			{Job: JobSpec{App: "gromacs", NP: 32}, At: 0},
			{Job: JobSpec{App: "alya", NP: 32}, At: time.Millisecond},
		})
		cfg.Replay.Parallelism = parallel
		cfg.Faults = &sliceFaults{evs: []FaultEvent{
			{At: time.Millisecond / 2, Kind: FaultLink, Index: int32(cable)},
		}}
		cfg.Retry = RetryPolicy{MaxRetries: 1, Backoff: time.Millisecond}
		res, err := RunChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	if a.Killed != 0 || a.Abandoned != 0 {
		t.Fatalf("link fault killed %d / abandoned %d jobs, want 0/0", a.Killed, a.Abandoned)
	}
	if !a.FaultsActive {
		t.Fatal("FaultsActive not set")
	}
	for _, par := range []int{1, 4} {
		b := run(par)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("faulty churn not bit-identical at parallelism %d", par)
		}
	}
}

// TestRunChurnStrandedJobAbandoned admits nothing forever on a degraded
// fabric: with faults active the stuck queue is reported abandoned instead
// of erroring out, so no job is ever silently dropped.
func TestRunChurnStrandedJobAbandoned(t *testing.T) {
	cfg := testChurnConfig([]Arrival{{Job: JobSpec{App: "gromacs", NP: 250}, At: 0}})
	// Fail three terminals for good before the job arrives: 249 < 250 free.
	cfg.Faults = &sliceFaults{evs: []FaultEvent{
		{At: 0, Kind: FaultTerminal, Index: 0},
		{At: 0, Kind: FaultTerminal, Index: 1},
		{At: 0, Kind: FaultTerminal, Index: 2},
	}}
	cfg.Retry = RetryPolicy{MaxRetries: 1, Backoff: time.Millisecond}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 1 || !res.Jobs[0].Abandoned {
		t.Fatalf("stranded job not reported abandoned: %+v", res.Jobs[0])
	}
	if res.Jobs[0].App != "gromacs" || res.Jobs[0].NP != 250 {
		t.Errorf("abandoned never-admitted job lost its identity: %+v", res.Jobs[0].JobStats)
	}
}

// TestRetryPolicyDelay pins the exponential backoff shape and its overflow
// guard.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxRetries: 5, Backoff: time.Second}
	for k, want := range map[int]time.Duration{
		1: time.Second, 2: 2 * time.Second, 3: 4 * time.Second, 4: 8 * time.Second,
	} {
		if got := p.Delay(k); got != want {
			t.Errorf("Delay(%d) = %v, want %v", k, got, want)
		}
	}
	if got := p.Delay(1000); got != time.Second<<maxBackoffShift {
		t.Errorf("uncapped backoff: Delay(1000) = %v", got)
	}
	if got := (RetryPolicy{}).Delay(3); got != 0 {
		t.Errorf("zero policy Delay = %v, want 0", got)
	}
}
