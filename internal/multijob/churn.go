package multijob

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Arrival is one job of a churn scenario: a workload spec entering the
// system at a trace-relative time.
type Arrival struct {
	Job JobSpec
	At  time.Duration
}

// QueuedJob is one waiting job as scheduling policies see it.
type QueuedJob struct {
	ID      int // arrival index, stable across the whole scenario
	Spec    JobSpec
	Arrival time.Duration
}

// SchedContext is the system state a scheduling policy sees at one decision
// point: the waiting queue in arrival order and the live terminal free-list.
// Policies must treat both as read-only — Clone the free-list for what-if
// planning — and must be deterministic functions of the context.
type SchedContext struct {
	Now    time.Duration
	Queue  []QueuedJob
	Free   *FreeList
	Fabric topology.Fabric
}

// SchedFunc decides which waiting jobs start now, returning their queue
// indices in admission order. Every pick must fit the free terminals when
// allocated in that order; RunChurn re-checks and fails loudly on a broken
// contract. Returning nothing defers the whole queue to the next event.
type SchedFunc func(ctx *SchedContext) []int

// ChurnConfig parameterises an event-driven churn scenario.
type ChurnConfig struct {
	// Arrivals is the job stream; RunChurn processes it in time order
	// (equal-time arrivals keep their slice order).
	Arrivals []Arrival
	// Schedule picks jobs off the queue at each event; the scenario
	// package's registry provides fcfs, backfill, and power-aware.
	Schedule SchedFunc
	// Scheduler names the policy in results.
	Scheduler string
	// Placement orders the terminal free-list (see Config.Placement).
	Placement string
	// Opt, Displacement, Replay, SelectGT, Generate, Dedicated: exactly as
	// on Config.
	Opt          workloads.Options
	Displacement float64
	Replay       replay.Config
	SelectGT     func(tr *trace.Trace) (time.Duration, error)
	Generate     func(app string, np int) (*trace.Trace, error)
	Dedicated    func(tr *trace.Trace, gt time.Duration, displacement float64) (*replay.Result, error)
}

// ChurnJob is the outcome of one scenario job.
type ChurnJob struct {
	JobStats
	ID        int
	Arrival   time.Duration // when the job entered the queue
	Start     time.Duration // when the scheduler admitted it
	Wait      time.Duration // Start - Arrival
	Finish    time.Duration // absolute completion time
	Terminals []int         // the fabric terminals it ran on
}

// ChurnResult is the outcome of a churn scenario.
type ChurnResult struct {
	Scheduler string
	Placement string
	Jobs      []ChurnJob // in arrival order (by ID)
	Fabric    FabricStats

	// Queue-wait distribution over all jobs.
	WaitMean time.Duration
	WaitP50  time.Duration
	WaitP95  time.Duration
	WaitMax  time.Duration

	// Util is fabric utilization over time: the mean percentage of
	// terminals occupied within each of UtilBuckets equal slices of the
	// makespan.
	Util []float64
}

// UtilBuckets is how many equal time slices the utilization-over-time
// profile divides the makespan into.
const UtilBuckets = 8

// release orders job completions; the heap breaks finish-time ties by
// arrival ID so event processing stays deterministic.
type release struct {
	finish time.Duration
	id     int
	terms  []int
}

type releaseHeap []release

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].id < h[j].id
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any     { old := *h; n := len(old) - 1; x := old[n]; *h = old[:n]; return x }

// RunChurn simulates the configured arrival stream on one shared fabric:
// jobs queue on arrival, a scheduler admits them when terminals suffice, the
// incremental replay session (replay.Churn) runs each admission batch to
// completion on the live timeline, and completions free terminals for the
// jobs still waiting.
//
// Determinism contract: arrivals are processed in (time, index) order,
// releases before arrivals at equal instants, and the scheduler is invoked
// once per state change until it stops picking. The event loop itself is
// serial; Replay.Parallelism only spreads the preparation of distinct
// (app, NP) pairs — trace generation, GT choice, dedicated baseline — over
// the worker pool in first-appearance order. Results are therefore
// bit-identical at any parallelism for a given config.
//
// Fidelity note: the underlying session resolves contention in admission
// order — a job observes the link occupancy of every earlier-admitted job,
// while running jobs are never slowed retroactively by later arrivals (see
// replay.Churn).
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("multijob: no arrivals configured")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("multijob: no scheduler configured")
	}
	if err := CheckRegistered(cfg.Placement); err != nil {
		return nil, fmt.Errorf("multijob: %w", err)
	}
	fabric, err := cfg.Replay.Fabric()
	if err != nil {
		return nil, err
	}
	nt := fabric.NumTerminals()
	for i, a := range cfg.Arrivals {
		if a.At < 0 {
			return nil, fmt.Errorf("multijob: arrival %d (%s) at negative time %v", i, a.Job, a.At)
		}
		if a.Job.NP < 2 {
			return nil, fmt.Errorf("multijob: arrival %d (%s): np must be >= 2", i, a.Job)
		}
		if a.Job.NP > nt {
			return nil, fmt.Errorf("multijob: arrival %d (%s) needs %d terminals, fabric %s has %d",
				i, a.Job, a.Job.NP, fabric.Name(), nt)
		}
	}

	// Prepare every distinct (app, NP) pair once, on the worker pool in
	// first-appearance order: trace, grouping threshold, dedicated baseline.
	// The sharing-conditions hooks (Config's Generate/SelectGT/Dedicated)
	// apply unchanged.
	base := Config{
		Opt: cfg.Opt, Replay: cfg.Replay,
		SelectGT: cfg.SelectGT, Generate: cfg.Generate, Dedicated: cfg.Dedicated,
	}
	var specs []JobSpec
	index := make(map[JobSpec]int)
	for _, a := range cfg.Arrivals {
		if _, ok := index[a.Job]; !ok {
			index[a.Job] = len(specs)
			specs = append(specs, a.Job)
		}
	}
	workers := sweep.Workers(cfg.Replay.Parallelism, len(specs))
	preps, err := sweep.Map(context.Background(), workers, specs,
		func(_ context.Context, _ int, js JobSpec) (churnPrep, error) {
			tr, err := base.generate(js)
			if err != nil {
				return churnPrep{}, err
			}
			gt, err := base.selectGT(tr)
			if err != nil {
				return churnPrep{}, err
			}
			ded, err := base.runDedicated(tr, gt, cfg.Displacement)
			if err != nil {
				return churnPrep{}, err
			}
			return churnPrep{tr: tr, gt: gt, ded: ded}, nil
		})
	if err != nil {
		return nil, err
	}

	order, err := Ordering(cfg.Placement, fabric, cfg.Opt.Seed)
	if err != nil {
		return nil, err
	}
	free, err := NewFreeList(fabric, order)
	if err != nil {
		return nil, err
	}
	session, err := replay.NewChurn(cfg.Replay)
	if err != nil {
		return nil, err
	}

	// Pending arrivals in (time, index) order; index ties keep input order.
	pending := make([]QueuedJob, len(cfg.Arrivals))
	for i, a := range cfg.Arrivals {
		pending[i] = QueuedJob{ID: i, Spec: a.Job, Arrival: a.At}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	schedName := cfg.Scheduler
	if schedName == "" {
		schedName = "(custom)"
	}
	predName := predictorName(cfg.Replay.Power.PredictorName)
	jobs := make([]ChurnJob, len(cfg.Arrivals))
	jobTerms := make([][]int, len(cfg.Arrivals))
	jobAccts := make([]*replay.Result, len(cfg.Arrivals))
	var (
		queue []QueuedJob
		rel   releaseHeap
		pi    int
	)
	for pi < len(pending) || rel.Len() > 0 {
		// Advance to the next event instant.
		var now time.Duration
		switch {
		case pi < len(pending) && (rel.Len() == 0 || pending[pi].Arrival <= rel[0].finish):
			now = pending[pi].Arrival
			if rel.Len() > 0 && rel[0].finish < now {
				now = rel[0].finish
			}
		default:
			now = rel[0].finish
		}
		// Completions free terminals before same-instant arrivals queue.
		for rel.Len() > 0 && rel[0].finish <= now {
			r := heap.Pop(&rel).(release)
			free.Release(r.terms)
		}
		for pi < len(pending) && pending[pi].Arrival <= now {
			queue = append(queue, pending[pi])
			pi++
		}
		// Let the scheduler pick until it stops.
		for len(queue) > 0 {
			picks := cfg.Schedule(&SchedContext{Now: now, Queue: queue, Free: free, Fabric: fabric})
			if len(picks) == 0 {
				break
			}
			picked := make(map[int]bool, len(picks))
			batch := make([]replay.Job, 0, len(picks))
			pws := make([]replay.PowerConfig, len(picks))
			ids := make([]int, 0, len(picks))
			terms := make([][]int, 0, len(picks))
			for k, qi := range picks {
				if qi < 0 || qi >= len(queue) || picked[qi] {
					return nil, fmt.Errorf("multijob: scheduler %s picked invalid queue index %d", schedName, qi)
				}
				picked[qi] = true
				q := queue[qi]
				ts := free.Alloc(q.Spec.NP)
				if ts == nil {
					return nil, fmt.Errorf("multijob: scheduler %s admitted %s with only %d terminals free",
						schedName, q.Spec, free.Free())
				}
				p := preps[index[q.Spec]]
				pws[k] = JobPower(cfg.Replay, p.gt, cfg.Displacement)
				batch = append(batch, replay.Job{Trace: p.tr, Terminals: ts, Power: &pws[k]})
				ids = append(ids, q.ID)
				terms = append(terms, ts)
			}
			results, err := session.AdmitAt(now, batch...)
			if err != nil {
				return nil, err
			}
			for k, res := range results {
				id := ids[k]
				finish := now + res.ExecTime
				heap.Push(&rel, release{finish: finish, id: id, terms: terms[k]})
				jobTerms[id] = append([]int(nil), terms[k]...)
				jobAccts[id] = res
				jobs[id] = churnJobStats(fabric, predName, cfg.Arrivals[id].Job,
					preps[index[cfg.Arrivals[id].Job]], res, id,
					cfg.Arrivals[id].At, now, finish, jobTerms[id])
			}
			// Drop admitted jobs from the queue, preserving order.
			kept := queue[:0]
			for qi, q := range queue {
				if !picked[qi] {
					kept = append(kept, q)
				}
			}
			queue = kept
		}
	}
	if len(queue) > 0 {
		q := queue[0]
		return nil, fmt.Errorf("multijob: scheduler %s left %d jobs waiting on an idle fabric (first: %s, arrived %v)",
			schedName, len(queue), q.Spec, q.Arrival)
	}

	return churnResult(cfg, fabric, schedName, jobs, jobTerms, jobAccts, session)
}

// churnPrep is the once-per-distinct-(app, NP) preparation every admission
// of that shape reuses: the trace, its grouping threshold, and the
// dedicated-fabric baseline.
type churnPrep struct {
	tr  *trace.Trace
	gt  time.Duration
	ded *replay.Result
}

// churnJobStats folds one job's replay result into its scenario record.
func churnJobStats(f topology.Fabric, predName string, spec JobSpec, p churnPrep,
	res *replay.Result, id int, arrival, start, finish time.Duration, terms []int) ChurnJob {
	st := JobStats{
		App: spec.App, NP: spec.NP, Predictor: predName, GT: p.gt,
		Exec:       res.ExecTime,
		Dedicated:  p.ded.ExecTime,
		SavingPct:  res.AvgSavingPct(),
		HitRatePct: res.AvgHitRatePct(),
		Switches:   countSwitches(f, terms),
		Transfers:  res.Transfers,
		BytesMoved: res.BytesMoved,
	}
	if p.ded.ExecTime > 0 {
		st.SharingOverheadPct = 100 * (float64(res.ExecTime) - float64(p.ded.ExecTime)) /
			float64(p.ded.ExecTime)
	}
	for _, a := range res.Acct {
		st.EnergyLinkSeconds += a.Energy(1.0)
		st.SavedLinkSeconds += a.Total().Seconds() - a.Energy(1.0)
	}
	return ChurnJob{
		JobStats: st, ID: id,
		Arrival: arrival, Start: start, Wait: start - arrival, Finish: finish,
		Terminals: terms,
	}
}

// churnResult assembles the scenario-wide summary from the per-job records.
func churnResult(cfg ChurnConfig, fabric topology.Fabric, schedName string,
	jobs []ChurnJob, jobTerms [][]int, jobAccts []*replay.Result, session *replay.Churn) (*ChurnResult, error) {
	res := &ChurnResult{
		Scheduler: schedName,
		Placement: placementName(cfg.Placement),
		Jobs:      jobs,
	}
	var makespan time.Duration
	waits := make([]float64, len(jobs))
	for i, j := range jobs {
		if j.Finish > makespan {
			makespan = j.Finish
		}
		waits[i] = j.Wait.Seconds()
		if j.Wait > res.WaitMax {
			res.WaitMax = j.Wait
		}
	}
	res.WaitMean = time.Duration(stats.Mean(waits) * float64(time.Second))
	res.WaitP50 = time.Duration(stats.Percentile(waits, 50) * float64(time.Second))
	res.WaitP95 = time.Duration(stats.Percentile(waits, 95) * float64(time.Second))

	// Fabric summary via the same machinery as the static multi-job run: the
	// session's fabric-wide counters and every job's accounting, grouped by
	// first-hop switch. A terminal occupied by several jobs over the
	// scenario contributes each job's own accounting window.
	transfers, bytes := session.Stats()
	m := &replay.MultiResult{
		MakeSpan:   makespan,
		Transfers:  transfers,
		BytesMoved: bytes,
		LinkBusy:   session.LinkBusy(),
		Jobs:       jobAccts,
	}
	res.Fabric = fabricStats(fabric, m, jobTerms)
	res.Util = utilization(jobs, fabric.NumTerminals(), makespan)
	return res, nil
}

// utilization integrates the terminal-occupancy step function over
// UtilBuckets equal slices of the makespan, returning mean busy percentages.
func utilization(jobs []ChurnJob, nt int, makespan time.Duration) []float64 {
	if makespan <= 0 || nt == 0 {
		return nil
	}
	util := make([]float64, UtilBuckets)
	span := makespan.Seconds()
	for b := range util {
		t0 := span * float64(b) / UtilBuckets
		t1 := span * float64(b+1) / UtilBuckets
		occ := 0.0 // terminal-seconds occupied within [t0, t1)
		for _, j := range jobs {
			s, f := j.Start.Seconds(), j.Finish.Seconds()
			if s < t0 {
				s = t0
			}
			if f > t1 {
				f = t1
			}
			if f > s {
				occ += (f - s) * float64(j.NP)
			}
		}
		util[b] = 100 * occ / ((t1 - t0) * float64(nt))
	}
	return util
}

// WriteChurn renders a churn scenario outcome: one row per job in arrival
// order, then the queue-wait distribution, utilization profile, and fabric
// summary. The layout is fully determined by the result, so output is
// bit-identical whenever the simulation is.
func WriteChurn(w io.Writer, r *ChurnResult) error {
	fmt.Fprintf(w, "%d jobs churned through fabric %s, scheduler %s, placement %s\n",
		len(r.Jobs), r.Fabric.Fabric, r.Scheduler, r.Placement)
	t := stats.NewTable("id", "job", "predictor", "arrival", "wait", "exec",
		"dedicated", "sharing dT[%]", "saving[%]", "hit[%]", "switches")
	for _, j := range r.Jobs {
		t.Row(j.ID, fmt.Sprintf("%s:%d", j.App, j.NP), j.Predictor,
			j.Arrival.Round(time.Millisecond), j.Wait.Round(time.Millisecond),
			j.Exec.Round(time.Microsecond), j.Dedicated.Round(time.Microsecond),
			j.SharingOverheadPct, j.SavingPct, j.HitRatePct, j.Switches)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nqueue wait: mean %v, p50 %v, p95 %v, max %v\n",
		r.WaitMean.Round(time.Millisecond), r.WaitP50.Round(time.Millisecond),
		r.WaitP95.Round(time.Millisecond), r.WaitMax.Round(time.Millisecond))
	fmt.Fprintf(w, "terminal occupancy over makespan:")
	for _, u := range r.Util {
		fmt.Fprintf(w, " %.1f%%", u)
	}
	fmt.Fprintln(w)
	f := r.Fabric
	fmt.Fprintf(w, "fabric: makespan %v, %d transfers, %d bytes, %d links used (mean util %.2f%%, max %.2f%%), fabric saving %.2f%%\n",
		f.MakeSpan.Round(time.Microsecond), f.Transfers, f.BytesMoved,
		f.LinksUsed, f.MeanUtilPct, f.MaxUtilPct, f.SavingPct)
	return nil
}
