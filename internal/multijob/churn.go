package multijob

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Arrival is one job of a churn scenario: a workload spec entering the
// system at a trace-relative time.
type Arrival struct {
	Job JobSpec
	At  time.Duration
}

// QueuedJob is one waiting job as scheduling policies see it.
type QueuedJob struct {
	ID      int // arrival index, stable across the whole scenario
	Spec    JobSpec
	Arrival time.Duration
}

// SchedContext is the system state a scheduling policy sees at one decision
// point: the waiting queue in arrival order and the live terminal free-list.
// Policies must treat both as read-only — Clone the free-list for what-if
// planning — and must be deterministic functions of the context. Down is the
// number of currently failed terminals, so policies see degraded capacity
// explicitly (Free.Free() already excludes them).
type SchedContext struct {
	Now    time.Duration
	Queue  []QueuedJob
	Free   *FreeList
	Fabric topology.Fabric
	Down   int
}

// SchedFunc decides which waiting jobs start now, returning their queue
// indices in admission order. Every pick must fit the free terminals when
// allocated in that order; RunChurn re-checks and fails loudly on a broken
// contract. Returning nothing defers the whole queue to the next event.
type SchedFunc func(ctx *SchedContext) []int

// ChurnConfig parameterises an event-driven churn scenario.
type ChurnConfig struct {
	// Arrivals is the job stream; RunChurn processes it in time order
	// (equal-time arrivals keep their slice order).
	Arrivals []Arrival
	// Schedule picks jobs off the queue at each event; the scenario
	// package's registry provides fcfs, backfill, and power-aware.
	Schedule SchedFunc
	// Scheduler names the policy in results.
	Scheduler string
	// Placement orders the terminal free-list (see Config.Placement).
	Placement string
	// Opt, Displacement, Replay, SelectGT, Generate, Dedicated: exactly as
	// on Config.
	Opt          workloads.Options
	Displacement float64
	Replay       replay.Config
	SelectGT     func(src trace.Source) (time.Duration, error)
	Generate     func(app string, np int) (trace.Source, error)
	Dedicated    func(src trace.Source, gt time.Duration, displacement float64) (*replay.Result, error)

	// Ctx, when non-nil, is checked between events: a cancelled context
	// stops the scenario with ctx.Err() instead of running it out.
	Ctx context.Context
	// Faults, when non-nil, injects hardware failures into the event loop:
	// link faults degrade routing, switch and terminal faults kill the jobs
	// running on the affected terminals (see FaultSource).
	Faults FaultSource
	// Retry governs requeueing of fault-killed jobs. The zero value
	// abandons on first kill.
	Retry RetryPolicy
}

// ChurnJob is the outcome of one scenario job. With fault injection active a
// job may run several attempts: Start/Finish/Terminals describe the final
// one, Kills and Wasted sum over the attempts a fault cut short, and
// Abandoned marks a job whose retry budget ran out (its stats then describe
// the last killed attempt, with Finish at the kill instant).
type ChurnJob struct {
	JobStats
	ID        int
	Arrival   time.Duration // when the job entered the queue
	Start     time.Duration // when the scheduler admitted it
	Wait      time.Duration // Start - Arrival
	Finish    time.Duration // absolute completion time
	Terminals []int         // the fabric terminals it ran on

	Kills     int           // attempts cut short by a fault
	Wasted    time.Duration // wall time lost to killed attempts
	Abandoned bool          // retry budget exhausted, job never completed
}

// ChurnResult is the outcome of a churn scenario.
type ChurnResult struct {
	Scheduler string
	Placement string
	Jobs      []ChurnJob // in arrival order (by ID)
	Fabric    FabricStats

	// Queue-wait distribution over all jobs.
	WaitMean time.Duration
	WaitP50  time.Duration
	WaitP95  time.Duration
	WaitMax  time.Duration

	// Util is fabric utilization over time: the mean percentage of
	// terminals occupied within each of UtilBuckets equal slices of the
	// makespan.
	Util []float64

	// Resilience metrics, populated when fault injection is active.
	FaultsActive      bool
	Killed            int       // fault-kill events across all jobs
	Retried           int       // requeues after a kill
	Abandoned         int       // jobs that never completed
	GoodputPct        float64   // useful terminal-seconds / (useful + wasted)
	WastedTermSeconds float64   // terminal-seconds lost to killed attempts
	Unroutable        int       // transfers with no healthy path left
	Capacity          []float64 // % of terminals up per UtilBuckets slice

	// Series is the scenario's streaming telemetry recorder (replay-level
	// power/utilization/hit-rate series plus queue.depth, fabric.occupied
	// and capacity.up), non-nil only when Replay.Telemetry was enabled.
	Series *stats.TimeSeries
}

// UtilBuckets is how many equal time slices the utilization-over-time
// profile divides the makespan into.
const UtilBuckets = 8

// release orders job completions; the heap breaks finish-time ties by
// arrival ID so event processing stays deterministic. attempt snapshots the
// job's attempt counter at admission: a fault kill bumps the counter, lazily
// invalidating the stale entry instead of deleting it from the heap.
type release struct {
	finish  time.Duration
	id      int
	attempt int
	terms   []int
}

type releaseHeap []release

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].id < h[j].id
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any     { old := *h; n := len(old) - 1; x := old[n]; *h = old[:n]; return x }

// retry orders requeues of fault-killed jobs; ties break by arrival ID.
type retry struct {
	at time.Duration
	id int
}

type retryHeap []retry

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h retryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)   { *h = append(*h, x.(retry)) }
func (h *retryHeap) Pop() any     { old := *h; n := len(old) - 1; x := old[n]; *h = old[:n]; return x }

// maxChurnFaultEvents bounds how many fault events one scenario will
// process — a backstop against a custom FaultSource that never dries up.
const maxChurnFaultEvents = 1 << 20

// RunChurn simulates the configured arrival stream on one shared fabric:
// jobs queue on arrival, a scheduler admits them when terminals suffice, the
// incremental replay session (replay.Churn) runs each admission batch to
// completion on the live timeline, and completions free terminals for the
// jobs still waiting.
//
// Determinism contract: arrivals are processed in (time, index) order,
// releases before arrivals at equal instants, and the scheduler is invoked
// once per state change until it stops picking. The event loop itself is
// serial; Replay.Parallelism only spreads the preparation of distinct
// (app, NP) pairs — trace generation, GT choice, dedicated baseline — over
// the worker pool in first-appearance order. Results are therefore
// bit-identical at any parallelism for a given config.
//
// Fidelity note: the underlying session resolves contention in admission
// order — a job observes the link occupancy of every earlier-admitted job,
// while running jobs are never slowed retroactively by later arrivals (see
// replay.Churn).
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("multijob: no arrivals configured")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("multijob: no scheduler configured")
	}
	if err := CheckRegistered(cfg.Placement); err != nil {
		return nil, fmt.Errorf("multijob: %w", err)
	}
	fabric, err := cfg.Replay.Fabric()
	if err != nil {
		return nil, err
	}
	nt := fabric.NumTerminals()
	for i, a := range cfg.Arrivals {
		if a.At < 0 {
			return nil, fmt.Errorf("multijob: arrival %d (%s) at negative time %v", i, a.Job, a.At)
		}
		if a.Job.NP < 2 {
			return nil, fmt.Errorf("multijob: arrival %d (%s): np must be >= 2", i, a.Job)
		}
		if a.Job.NP > nt {
			return nil, fmt.Errorf("multijob: arrival %d (%s) needs %d terminals, fabric %s has %d",
				i, a.Job, a.Job.NP, fabric.Name(), nt)
		}
	}

	// Prepare every distinct (app, NP) pair once, on the worker pool in
	// first-appearance order: trace, grouping threshold, dedicated baseline.
	// The sharing-conditions hooks (Config's Generate/SelectGT/Dedicated)
	// apply unchanged.
	base := Config{
		Opt: cfg.Opt, Replay: cfg.Replay,
		SelectGT: cfg.SelectGT, Generate: cfg.Generate, Dedicated: cfg.Dedicated,
	}
	// Telemetry records the scenario's shared timeline only: baseline
	// replays inside the preps would each waste a throwaway recorder.
	base.Replay.Telemetry = replay.TelemetryConfig{}
	var specs []JobSpec
	index := make(map[JobSpec]int)
	for _, a := range cfg.Arrivals {
		if _, ok := index[a.Job]; !ok {
			index[a.Job] = len(specs)
			specs = append(specs, a.Job)
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := sweep.Workers(cfg.Replay.Parallelism, len(specs))
	preps, err := sweep.Map(ctx, workers, specs,
		func(_ context.Context, _ int, js JobSpec) (churnPrep, error) {
			src, err := base.generate(js)
			if err != nil {
				return churnPrep{}, err
			}
			gt, err := base.selectGT(src)
			if err != nil {
				return churnPrep{}, err
			}
			ded, err := base.runDedicated(src, gt, cfg.Displacement)
			if err != nil {
				return churnPrep{}, err
			}
			return churnPrep{src: src, gt: gt, ded: ded}, nil
		})
	if err != nil {
		return nil, err
	}

	order, err := Ordering(cfg.Placement, fabric, cfg.Opt.Seed)
	if err != nil {
		return nil, err
	}
	free, err := NewFreeList(fabric, order)
	if err != nil {
		return nil, err
	}
	session, err := replay.NewChurn(cfg.Replay)
	if err != nil {
		return nil, err
	}
	// Scenario-level telemetry rides on the session's recorder (same bucket
	// timeline as the replay engine's power/utilization series). Recording
	// happens once per event instant, inside the serial loop, so the series
	// are bit-identical at any Replay.Parallelism.
	tele := session.Telemetry()
	var sidQueue, sidOcc, sidCap stats.SeriesID
	if tele != nil {
		sidQueue = tele.AddSeries("queue.depth", "jobs")
		sidOcc = tele.AddSeries("fabric.occupied", "terminals")
		sidCap = tele.AddSeries("capacity.up", "%")
	}

	// Pending arrivals in (time, index) order; index ties keep input order.
	pending := make([]QueuedJob, len(cfg.Arrivals))
	for i, a := range cfg.Arrivals {
		pending[i] = QueuedJob{ID: i, Spec: a.Job, Arrival: a.At}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	schedName := cfg.Scheduler
	if schedName == "" {
		schedName = "(custom)"
	}
	predName := predictorName(cfg.Replay.Power.PredictorName)
	jobs := make([]ChurnJob, len(cfg.Arrivals))
	jobTerms := make([][]int, len(cfg.Arrivals))
	jobAccts := make([]*replay.Result, len(cfg.Arrivals))
	var (
		queue []QueuedJob
		rel   releaseHeap
		rq    retryHeap
		pi    int
	)

	// Fault plumbing: the live fault set feeds the session's fault-aware
	// routing, swTerms maps a switch to the terminals it strands, and the
	// per-job attempt counters implement lazy release invalidation.
	st := churnState{
		attempt:  make([]int, len(cfg.Arrivals)),
		kills:    make([]int, len(cfg.Arrivals)),
		wasted:   make([]time.Duration, len(cfg.Arrivals)),
		lastKill: make([]time.Duration, len(cfg.Arrivals)),
		gaveUp:   make([]bool, len(cfg.Arrivals)),
		runTerms: make([][]int, len(cfg.Arrivals)),
		started:  make([]time.Duration, len(cfg.Arrivals)),
		runJob:   make([]int, nt),
	}
	for i := range st.runJob {
		st.runJob[i] = -1
	}
	st.jobAccts, st.jobTerms = jobAccts, jobTerms
	var fs *topology.FaultSet
	var swTerms map[int32][]int
	if cfg.Faults != nil {
		fs = topology.NewFaultSet(fabric)
		if err := session.SetFaults(fs); err != nil {
			return nil, fmt.Errorf("multijob: %w", err)
		}
		swTerms = make(map[int32][]int)
		for t := 0; t < nt; t++ {
			sw := topology.HostSwitch(fabric, t)
			swTerms[sw] = append(swTerms[sw], t)
		}
		st.capSteps = append(st.capSteps, capStep{at: 0, down: 0})
	}

	faultEvents := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Find the next event instant across the four streams. Fault events
		// only matter while work remains: once the queue, arrival stream,
		// release heap, and retry heap are all empty the scenario is over,
		// whatever the fault stream still holds.
		hasWork := pi < len(pending) || rel.Len() > 0 || rq.Len() > 0
		if !hasWork && len(queue) == 0 {
			break
		}
		now, haveNow := time.Duration(0), false
		consider := func(t time.Duration) {
			if !haveNow || t < now {
				now, haveNow = t, true
			}
		}
		if pi < len(pending) {
			consider(pending[pi].Arrival)
		}
		if rel.Len() > 0 {
			consider(rel[0].finish)
		}
		if rq.Len() > 0 {
			consider(rq[0].at)
		}
		if cfg.Faults != nil {
			if ev, ok := cfg.Faults.Peek(); ok && (hasWork || cfg.Faults.RepairPending()) {
				consider(ev.At)
			}
		}
		if !haveNow {
			// Jobs are waiting but no event can ever free capacity again.
			break
		}

		// 1. Completions free terminals first: a job finishing at the very
		// instant its hardware dies counts as completed. Stale entries
		// (their job was fault-killed mid-run) are skipped.
		for rel.Len() > 0 && rel[0].finish <= now {
			r := heap.Pop(&rel).(release)
			if r.attempt != st.attempt[r.id] {
				continue
			}
			for _, t := range r.terms {
				st.runJob[t] = -1
			}
			free.Release(r.terms)
			st.runTerms[r.id] = nil
			st.goodputTS += jobs[r.id].Exec.Seconds() * float64(jobs[r.id].NP)
		}
		// 2. Fault events fire, killing occupants of downed terminals and
		// requeueing them under the retry policy.
		if cfg.Faults != nil {
			for {
				ev, ok := cfg.Faults.Peek()
				if !ok || ev.At > now {
					break
				}
				cfg.Faults.Pop()
				faultEvents++
				if faultEvents > maxChurnFaultEvents {
					return nil, fmt.Errorf("multijob: fault source exceeded %d events", maxChurnFaultEvents)
				}
				st.applyFault(ev, now, fs, free, session, fabric, swTerms, cfg.Retry, &rq)
			}
			if d := free.Down(); len(st.capSteps) > 0 && st.capSteps[len(st.capSteps)-1].down != d {
				st.capSteps = append(st.capSteps, capStep{at: now, down: d})
			}
		}
		// 3. Due retries rejoin the queue before same-instant fresh arrivals.
		for rq.Len() > 0 && rq[0].at <= now {
			r := heap.Pop(&rq).(retry)
			queue = append(queue, QueuedJob{ID: r.id, Spec: cfg.Arrivals[r.id].Job, Arrival: cfg.Arrivals[r.id].At})
			st.retried++
		}
		// 4. Fresh arrivals join the queue.
		for pi < len(pending) && pending[pi].Arrival <= now {
			queue = append(queue, pending[pi])
			pi++
		}
		// 5. Let the scheduler pick until it stops.
		for len(queue) > 0 {
			picks := cfg.Schedule(&SchedContext{Now: now, Queue: queue, Free: free, Fabric: fabric, Down: free.Down()})
			if len(picks) == 0 {
				break
			}
			picked := make(map[int]bool, len(picks))
			batch := make([]replay.Job, 0, len(picks))
			pws := make([]replay.PowerConfig, len(picks))
			ids := make([]int, 0, len(picks))
			terms := make([][]int, 0, len(picks))
			for k, qi := range picks {
				if qi < 0 || qi >= len(queue) || picked[qi] {
					return nil, fmt.Errorf("multijob: scheduler %s picked invalid queue index %d", schedName, qi)
				}
				picked[qi] = true
				q := queue[qi]
				ts := free.Alloc(q.Spec.NP)
				if ts == nil {
					return nil, fmt.Errorf("multijob: scheduler %s admitted %s with only %d terminals free",
						schedName, q.Spec, free.Free())
				}
				p := preps[index[q.Spec]]
				pws[k] = JobPower(cfg.Replay, p.gt, cfg.Displacement)
				batch = append(batch, replay.Job{Source: p.src, Terminals: ts, Power: &pws[k]})
				ids = append(ids, q.ID)
				terms = append(terms, ts)
			}
			results, err := session.AdmitAt(now, batch...)
			if err != nil {
				return nil, err
			}
			for k, res := range results {
				id := ids[k]
				finish := now + res.ExecTime
				heap.Push(&rel, release{finish: finish, id: id, attempt: st.attempt[id], terms: terms[k]})
				st.runTerms[id] = terms[k]
				st.started[id] = now
				for _, t := range terms[k] {
					st.runJob[t] = id
				}
				jobTerms[id] = append([]int(nil), terms[k]...)
				jobAccts[id] = res
				jobs[id] = churnJobStats(fabric, predName, cfg.Arrivals[id].Job,
					preps[index[cfg.Arrivals[id].Job]], res, id,
					cfg.Arrivals[id].At, now, finish, jobTerms[id])
			}
			// Drop admitted jobs from the queue, preserving order.
			kept := queue[:0]
			for qi, q := range queue {
				if !picked[qi] {
					kept = append(kept, q)
				}
			}
			queue = kept
		}
		// 6. Sample scenario state at the event instant, after the
		// scheduler settles: waiting queue depth, occupied terminals, and
		// the fabric capacity faults have left up.
		if tele != nil {
			tele.Record(sidQueue, now, float64(len(queue)))
			tele.Record(sidOcc, now, float64(nt-free.Free()-free.Down()))
			tele.Record(sidCap, now, 100*float64(nt-free.Down())/float64(nt))
		}
	}
	if len(queue) > 0 {
		if cfg.Faults == nil {
			q := queue[0]
			return nil, fmt.Errorf("multijob: scheduler %s left %d jobs waiting on an idle fabric (first: %s, arrived %v)",
				schedName, len(queue), q.Spec, q.Arrival)
		}
		// Degraded capacity can legitimately strand jobs (e.g. NP larger
		// than the surviving fabric). Report them abandoned, never drop.
		for _, q := range queue {
			if !st.gaveUp[q.ID] {
				st.gaveUp[q.ID] = true
			}
			if jobs[q.ID].ID == 0 && jobs[q.ID].App == "" {
				jobs[q.ID] = ChurnJob{
					JobStats: JobStats{App: q.Spec.App, NP: q.Spec.NP, Predictor: predName},
					ID:       q.ID, Arrival: q.Arrival,
				}
			}
		}
	}

	return churnResult(cfg, fabric, schedName, jobs, jobTerms, jobAccts, session, &st)
}

// capStep is one point of the capacity-over-time step function: from at on,
// down terminals are failed.
type capStep struct {
	at   time.Duration
	down int
}

// churnState is the fault-handling bookkeeping of one RunChurn invocation.
type churnState struct {
	attempt  []int           // per job: admission generation, for lazy release invalidation
	kills    []int           // per job: attempts cut short
	wasted   []time.Duration // per job: wall time lost to kills
	lastKill []time.Duration // per job: instant of the latest kill
	gaveUp   []bool          // per job: abandoned
	runTerms [][]int         // per job: live pooled terminal slice while running
	started  []time.Duration // per job: admission time of the current attempt
	runJob   []int           // per terminal: occupant job ID or -1
	capSteps []capStep       // capacity timeline

	// jobAccts/jobTerms alias RunChurn's per-job record slices so a kill
	// can move the dead attempt's accounting aside: killed attempts did run
	// on the fabric, so their energy stays in the fabric summary, separate
	// from the completed attempt recorded under the job's ID.
	jobAccts    []*replay.Result
	jobTerms    [][]int
	killedAccts []*replay.Result
	killedTerms [][]int

	killed    int
	retried   int
	goodputTS float64 // terminal-seconds of completed work
	wastedTS  float64 // terminal-seconds of killed work
}

// applyFault mutates the fault set, free-list, and session for one event,
// killing the occupants of any terminal the event downs.
func (st *churnState) applyFault(ev FaultEvent, now time.Duration, fs *topology.FaultSet,
	free *FreeList, session *replay.Churn, fabric topology.Fabric,
	swTerms map[int32][]int, retryPol RetryPolicy, rq *retryHeap) {
	switch ev.Kind {
	case FaultLink:
		if ev.Repair {
			fs.RepairLink(topology.LinkID(ev.Index))
		} else {
			fs.FailLink(topology.LinkID(ev.Index))
		}
	case FaultSwitch:
		if ev.Repair {
			fs.RepairNode(ev.Index)
			for _, t := range swTerms[ev.Index] {
				free.Repair(t)
			}
		} else {
			fs.FailNode(ev.Index)
			for _, t := range swTerms[ev.Index] {
				free.Fail(t)
				st.kill(t, now, free, session, retryPol, rq)
			}
		}
	case FaultTerminal:
		t := int(ev.Index)
		host := fabric.HostLinkID(t)
		if ev.Repair {
			fs.RepairLink(host)
			free.Repair(t)
		} else {
			fs.FailLink(host)
			free.Fail(t)
			st.kill(t, now, free, session, retryPol, rq)
		}
	}
}

// kill terminates the job occupying terminal t (if any): its terminals are
// released on the free-list and the session, its partial work is charged as
// wasted, and it is requeued after backoff or abandoned.
func (st *churnState) kill(t int, now time.Duration, free *FreeList,
	session *replay.Churn, retryPol RetryPolicy, rq *retryHeap) {
	id := st.runJob[t]
	if id < 0 {
		return
	}
	terms := st.runTerms[id]
	for _, tt := range terms {
		st.runJob[tt] = -1
	}
	session.ReleaseTerminals(now, terms)
	np := len(terms)
	if st.jobAccts[id] != nil {
		st.killedAccts = append(st.killedAccts, st.jobAccts[id])
		st.killedTerms = append(st.killedTerms, st.jobTerms[id])
		st.jobAccts[id] = nil
	}
	free.Release(terms)
	st.runTerms[id] = nil
	st.attempt[id]++
	st.kills[id]++
	st.killed++
	st.lastKill[id] = now
	lost := now - st.started[id]
	st.wasted[id] += lost
	st.wastedTS += lost.Seconds() * float64(np)
	if st.kills[id] <= retryPol.MaxRetries {
		heap.Push(rq, retry{at: now + retryPol.Delay(st.kills[id]), id: id})
	} else {
		st.gaveUp[id] = true
	}
}

// churnPrep is the once-per-distinct-(app, NP) preparation every admission
// of that shape reuses: the trace source, its grouping threshold, and the
// dedicated-fabric baseline. Each admission — including a fault retry —
// opens fresh cursors on src, so the source is shared but never consumed.
type churnPrep struct {
	src trace.Source
	gt  time.Duration
	ded *replay.Result
}

// churnJobStats folds one job's replay result into its scenario record.
func churnJobStats(f topology.Fabric, predName string, spec JobSpec, p churnPrep,
	res *replay.Result, id int, arrival, start, finish time.Duration, terms []int) ChurnJob {
	st := JobStats{
		App: spec.App, NP: spec.NP, Predictor: predName, GT: p.gt,
		Exec:       res.ExecTime,
		Dedicated:  p.ded.ExecTime,
		SavingPct:  res.AvgSavingPct(),
		HitRatePct: res.AvgHitRatePct(),
		Switches:   countSwitches(f, terms),
		Transfers:  res.Transfers,
		BytesMoved: res.BytesMoved,
	}
	if p.ded.ExecTime > 0 {
		st.SharingOverheadPct = 100 * (float64(res.ExecTime) - float64(p.ded.ExecTime)) /
			float64(p.ded.ExecTime)
	}
	for _, a := range res.Acct {
		st.EnergyLinkSeconds += a.Energy(1.0)
		st.SavedLinkSeconds += a.Total().Seconds() - a.Energy(1.0)
	}
	return ChurnJob{
		JobStats: st, ID: id,
		Arrival: arrival, Start: start, Wait: start - arrival, Finish: finish,
		Terminals: terms,
	}
}

// churnResult assembles the scenario-wide summary from the per-job records.
func churnResult(cfg ChurnConfig, fabric topology.Fabric, schedName string,
	jobs []ChurnJob, jobTerms [][]int, jobAccts []*replay.Result, session *replay.Churn,
	st *churnState) (*ChurnResult, error) {
	res := &ChurnResult{
		Scheduler:    schedName,
		Placement:    placementName(cfg.Placement),
		Jobs:         jobs,
		FaultsActive: cfg.Faults != nil,
	}
	// Fold the fault bookkeeping into the per-job records: kill counts,
	// wasted time, and abandonment (an abandoned job's Finish is the kill
	// that ended it, so the makespan never extends past real activity).
	for i := range jobs {
		jobs[i].Kills = st.kills[i]
		jobs[i].Wasted = st.wasted[i]
		jobs[i].Abandoned = st.gaveUp[i]
		if st.gaveUp[i] {
			jobs[i].Finish = st.lastKill[i]
			res.Abandoned++
		}
	}
	res.Killed = st.killed
	res.Retried = st.retried
	res.WastedTermSeconds = st.wastedTS
	res.Unroutable = session.Unroutable()
	if res.FaultsActive {
		if st.goodputTS+st.wastedTS > 0 {
			res.GoodputPct = 100 * st.goodputTS / (st.goodputTS + st.wastedTS)
		} else {
			res.GoodputPct = 100
		}
	}
	var makespan time.Duration
	waits := make([]float64, len(jobs))
	for i, j := range jobs {
		if j.Finish > makespan {
			makespan = j.Finish
		}
		waits[i] = j.Wait.Seconds()
		if j.Wait > res.WaitMax {
			res.WaitMax = j.Wait
		}
	}
	res.WaitMean = time.Duration(stats.Mean(waits) * float64(time.Second))
	res.WaitP50 = time.Duration(stats.Percentile(waits, 50) * float64(time.Second))
	res.WaitP95 = time.Duration(stats.Percentile(waits, 95) * float64(time.Second))

	// Fabric summary via the same machinery as the static multi-job run: the
	// session's fabric-wide counters and every job's accounting, grouped by
	// first-hop switch. A terminal occupied by several jobs over the
	// scenario contributes each job's own accounting window; killed attempts
	// ran too, so their accounting rides along after the completed jobs.
	transfers, bytes := session.Stats()
	accts := make([]*replay.Result, 0, len(jobAccts)+len(st.killedAccts))
	terms := make([][]int, 0, len(jobAccts)+len(st.killedAccts))
	for i, a := range jobAccts {
		if a != nil {
			accts = append(accts, a)
			terms = append(terms, jobTerms[i])
		}
	}
	accts = append(accts, st.killedAccts...)
	terms = append(terms, st.killedTerms...)
	m := &replay.MultiResult{
		MakeSpan:   makespan,
		Transfers:  transfers,
		BytesMoved: bytes,
		LinkBusy:   session.LinkBusy(),
		Jobs:       accts,
	}
	res.Fabric = fabricStats(fabric, m, terms)
	res.Util = utilization(jobs, fabric.NumTerminals(), makespan)
	if res.FaultsActive {
		res.Capacity = capacityProfile(st.capSteps, fabric.NumTerminals(), makespan)
	}
	res.Series = session.Telemetry()
	return res, nil
}

// capacityProfile integrates the up-terminal step function over UtilBuckets
// equal slices of the makespan, returning the mean percentage of terminals
// up in each.
func capacityProfile(steps []capStep, nt int, makespan time.Duration) []float64 {
	if makespan <= 0 || nt == 0 {
		return nil
	}
	out := make([]float64, UtilBuckets)
	span := makespan.Seconds()
	for b := range out {
		t0 := span * float64(b) / UtilBuckets
		t1 := span * float64(b+1) / UtilBuckets
		downSec := 0.0 // down terminal-seconds within [t0, t1)
		for i, s := range steps {
			s0 := s.at.Seconds()
			s1 := span
			if i+1 < len(steps) {
				s1 = steps[i+1].at.Seconds()
			}
			if s0 < t0 {
				s0 = t0
			}
			if s1 > t1 {
				s1 = t1
			}
			if s1 > s0 {
				downSec += (s1 - s0) * float64(s.down)
			}
		}
		out[b] = 100 * (1 - downSec/((t1-t0)*float64(nt)))
	}
	return out
}

// utilization integrates the terminal-occupancy step function over
// UtilBuckets equal slices of the makespan, returning mean busy percentages.
func utilization(jobs []ChurnJob, nt int, makespan time.Duration) []float64 {
	if makespan <= 0 || nt == 0 {
		return nil
	}
	util := make([]float64, UtilBuckets)
	span := makespan.Seconds()
	for b := range util {
		t0 := span * float64(b) / UtilBuckets
		t1 := span * float64(b+1) / UtilBuckets
		occ := 0.0 // terminal-seconds occupied within [t0, t1)
		for _, j := range jobs {
			s, f := j.Start.Seconds(), j.Finish.Seconds()
			if s < t0 {
				s = t0
			}
			if f > t1 {
				f = t1
			}
			if f > s {
				occ += (f - s) * float64(j.NP)
			}
		}
		util[b] = 100 * occ / ((t1 - t0) * float64(nt))
	}
	return util
}

// WriteChurn renders a churn scenario outcome: one row per job in arrival
// order, then the queue-wait distribution, utilization profile, and fabric
// summary. The layout is fully determined by the result, so output is
// bit-identical whenever the simulation is.
func WriteChurn(w io.Writer, r *ChurnResult) error {
	fmt.Fprintf(w, "%d jobs churned through fabric %s, scheduler %s, placement %s\n",
		len(r.Jobs), r.Fabric.Fabric, r.Scheduler, r.Placement)
	var t *stats.Table
	if r.FaultsActive {
		t = stats.NewTable("id", "job", "predictor", "arrival", "wait", "exec",
			"dedicated", "sharing dT[%]", "saving[%]", "hit[%]", "switches", "kills", "state")
	} else {
		t = stats.NewTable("id", "job", "predictor", "arrival", "wait", "exec",
			"dedicated", "sharing dT[%]", "saving[%]", "hit[%]", "switches")
	}
	for _, j := range r.Jobs {
		cells := []any{j.ID, fmt.Sprintf("%s:%d", j.App, j.NP), j.Predictor,
			j.Arrival.Round(time.Millisecond), j.Wait.Round(time.Millisecond),
			j.Exec.Round(time.Microsecond), j.Dedicated.Round(time.Microsecond),
			j.SharingOverheadPct, j.SavingPct, j.HitRatePct, j.Switches}
		if r.FaultsActive {
			state := "done"
			switch {
			case j.Abandoned:
				state = "abandoned"
			case j.Kills > 0:
				state = "retried"
			}
			cells = append(cells, j.Kills, state)
		}
		t.Row(cells...)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nqueue wait: mean %v, p50 %v, p95 %v, max %v\n",
		r.WaitMean.Round(time.Millisecond), r.WaitP50.Round(time.Millisecond),
		r.WaitP95.Round(time.Millisecond), r.WaitMax.Round(time.Millisecond))
	fmt.Fprintf(w, "terminal occupancy over makespan:")
	for _, u := range r.Util {
		fmt.Fprintf(w, " %.1f%%", u)
	}
	fmt.Fprintln(w)
	f := r.Fabric
	fmt.Fprintf(w, "fabric: makespan %v, %d transfers, %d bytes, %d links used (mean util %.2f%%, max %.2f%%), fabric saving %.2f%%\n",
		f.MakeSpan.Round(time.Microsecond), f.Transfers, f.BytesMoved,
		f.LinksUsed, f.MeanUtilPct, f.MaxUtilPct, f.SavingPct)
	if r.FaultsActive {
		fmt.Fprintf(w, "resilience: %d kills, %d retries, %d abandoned, goodput %.2f%%, wasted %.3f term-s, %d unroutable transfers\n",
			r.Killed, r.Retried, r.Abandoned, r.GoodputPct, r.WastedTermSeconds, r.Unroutable)
		fmt.Fprintf(w, "capacity over makespan:")
		for _, c := range r.Capacity {
			fmt.Fprintf(w, " %.1f%%", c)
		}
		fmt.Fprintln(w)
	}
	return nil
}
