package multijob

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// fcfsTest is an inline first-come-first-served policy: multijob itself
// hosts no registry (that lives in scenario, which imports this package), so
// churn tests drive the engine with a hand-rolled SchedFunc.
func fcfsTest(ctx *SchedContext) []int {
	var picks []int
	free := ctx.Free.Free()
	for i, q := range ctx.Queue {
		if q.Spec.NP > free {
			break
		}
		picks = append(picks, i)
		free -= q.Spec.NP
	}
	return picks
}

func testChurnConfig(arrivals []Arrival) ChurnConfig {
	return ChurnConfig{
		Arrivals:  arrivals,
		Schedule:  fcfsTest,
		Scheduler: "fcfs",
		Placement: "linear",
		Opt:       workloads.Options{Seed: 42, IterScale: 0.05},
		Replay:    replay.DefaultConfig(),
	}
}

// TestRunChurnEndToEnd drives a three-job stream through the event loop and
// checks the full result surface: per-job timing, queue-wait stats, the
// utilization profile, fabric summary, and rendering.
func TestRunChurnEndToEnd(t *testing.T) {
	res, err := RunChurn(testChurnConfig([]Arrival{
		{Job: JobSpec{App: "gromacs", NP: 8}, At: 0},
		{Job: JobSpec{App: "alya", NP: 8}, At: time.Millisecond},
		{Job: JobSpec{App: "gromacs", NP: 8}, At: time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("%d job records, want 3", len(res.Jobs))
	}
	var makespan time.Duration
	for i, j := range res.Jobs {
		if j.ID != i {
			t.Errorf("record %d has ID %d", i, j.ID)
		}
		if j.Start < j.Arrival || j.Finish <= j.Start || j.Wait != j.Start-j.Arrival {
			t.Errorf("job %d timing broken: arrival %v start %v finish %v wait %v",
				j.ID, j.Arrival, j.Start, j.Finish, j.Wait)
		}
		if j.Exec != j.Finish-j.Start {
			t.Errorf("job %d exec %v != finish-start %v", j.ID, j.Exec, j.Finish-j.Start)
		}
		if j.Dedicated <= 0 || j.EnergyLinkSeconds <= 0 || j.Transfers <= 0 {
			t.Errorf("job %d stats empty: %+v", j.ID, j.JobStats)
		}
		if j.Finish > makespan {
			makespan = j.Finish
		}
	}
	// 24 ranks fit the 252-terminal fabric at once: nobody waits.
	if res.WaitMax != 0 {
		t.Errorf("max wait %v on an uncontended fabric, want 0", res.WaitMax)
	}
	if res.Fabric.MakeSpan != makespan {
		t.Errorf("fabric makespan %v, want %v", res.Fabric.MakeSpan, makespan)
	}
	if len(res.Util) != UtilBuckets {
		t.Fatalf("%d utilization buckets, want %d", len(res.Util), UtilBuckets)
	}
	for b, u := range res.Util {
		if u < 0 || u > 100 {
			t.Errorf("bucket %d utilization %.2f%% outside [0, 100]", b, u)
		}
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gromacs:8", "alya:8", "fcfs", "queue wait", "occupancy", "makespan"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered churn result missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunChurnQueuesUnderContention forces queueing — two 200-rank jobs on
// 252 terminals — and asserts the second job starts exactly when the first
// finishes.
func TestRunChurnQueuesUnderContention(t *testing.T) {
	res, err := RunChurn(testChurnConfig([]Arrival{
		{Job: JobSpec{App: "gromacs", NP: 200}, At: 0},
		{Job: JobSpec{App: "gromacs", NP: 200}, At: time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Jobs[0], res.Jobs[1]
	if second.Start != first.Finish {
		t.Errorf("queued job started at %v, want the head's finish %v", second.Start, first.Finish)
	}
	if second.Wait != first.Finish-second.Arrival {
		t.Errorf("queued job waited %v, want %v", second.Wait, first.Finish-second.Arrival)
	}
	if res.WaitP95 < res.WaitP50 || res.WaitMax < res.WaitP95 {
		t.Errorf("wait distribution not ordered: p50 %v p95 %v max %v",
			res.WaitP50, res.WaitP95, res.WaitMax)
	}
}

// TestRunChurnErrors covers the configuration and contract error paths.
func TestRunChurnErrors(t *testing.T) {
	good := []Arrival{{Job: JobSpec{App: "gromacs", NP: 8}, At: 0}}
	for name, tc := range map[string]struct {
		mut  func(*ChurnConfig)
		want string
	}{
		"no arrivals":    {func(c *ChurnConfig) { c.Arrivals = nil }, "no arrivals"},
		"nil scheduler":  {func(c *ChurnConfig) { c.Schedule = nil }, "no scheduler"},
		"bad placement":  {func(c *ChurnConfig) { c.Placement = "nosuch" }, "unknown placement"},
		"negative time":  {func(c *ChurnConfig) { c.Arrivals[0].At = -time.Second }, "negative time"},
		"one rank":       {func(c *ChurnConfig) { c.Arrivals[0].Job.NP = 1 }, "np must be >= 2"},
		"too wide":       {func(c *ChurnConfig) { c.Arrivals[0].Job.NP = 9999 }, "has 252"},
		"bad app":        {func(c *ChurnConfig) { c.Arrivals[0].Job.App = "nosuch" }, "unknown application"},
		"invalid pick":   {func(c *ChurnConfig) { c.Schedule = func(*SchedContext) []int { return []int{7} } }, "invalid queue index"},
		"duplicate pick": {func(c *ChurnConfig) { c.Schedule = func(*SchedContext) []int { return []int{0, 0} } }, "invalid queue index"},
		"never admits":   {func(c *ChurnConfig) { c.Schedule = func(*SchedContext) []int { return nil } }, "left 1 jobs waiting"},
		"overcommits": {func(c *ChurnConfig) {
			c.Arrivals = []Arrival{
				{Job: JobSpec{App: "gromacs", NP: 200}, At: 0},
				{Job: JobSpec{App: "gromacs", NP: 200}, At: 0},
			}
			c.Schedule = func(ctx *SchedContext) []int {
				picks := make([]int, len(ctx.Queue))
				for i := range picks {
					picks[i] = i
				}
				return picks
			}
		}, "terminals free"},
	} {
		cfg := testChurnConfig(append([]Arrival(nil), good...))
		tc.mut(&cfg)
		if _, err := RunChurn(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", name, err, tc.want)
		}
	}
}
