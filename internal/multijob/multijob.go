// Package multijob simulates several independent MPI workloads sharing one
// interconnect fabric — the multi-tenant scenario the paper leaves open: it
// evaluates one application at a time on a dedicated XGFT, but on a real
// cluster a job's switch neighbors shrink, displace, or (when they idle)
// widen the link idle windows the prediction mechanism exploits.
//
// Each job of a mix gets its own trace, grouping threshold, predictor, and
// rank→terminal mapping; the shared replay engine (replay.RunJobs) merges
// every job's events into one timeline so links observe the union of
// traffic. Where jobs land is a pluggable placement policy behind a named
// registry mirroring the predictor and fabric registries: "linear"
// (contiguous terminal blocks, the default), "random" (seeded shuffle of the
// whole fabric), and "roundrobin" (jobs interleaved across first-hop
// switches). Results are reported per job — runtime, host-link energy, hit
// rate, and sharing overhead against a dedicated-fabric baseline of the same
// job — and fabric-wide (per-link utilization, decomposed switch power).
//
// Everything is deterministic for a given Config: placement is a pure
// function of (fabric, sizes, seed), the shared engine is single-threaded,
// and the Parallelism knob only distributes independent runs (per-job
// baselines, harness sweep cells) over the worker pool in input order.
package multijob

import (
	"context"
	"fmt"
	"time"

	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Config parameterises one shared-fabric simulation.
type Config struct {
	// Jobs is the mix to co-schedule, in placement order.
	Jobs []JobSpec
	// Placement selects the policy from the placement registry ("linear",
	// "random", "roundrobin", or anything registered by the embedding
	// program); empty selects DefaultPlacement.
	Placement string
	// Opt tunes trace generation; Opt.Seed also seeds the "random"
	// placement, so one seed pins the whole scenario.
	Opt workloads.Options
	// Displacement is the Algorithm 3 safety factor, applied to every job.
	// Zero is a valid (maximally aggressive) setting, as on every other
	// experiment; the CLI default is the paper's conservative 1 %.
	Displacement float64
	// Replay carries the network parameters, fabric and predictor selection,
	// and the Parallelism bound for the independent per-job baseline runs.
	// Each job runs with Replay.Power re-armed at the job's own grouping
	// threshold and Displacement; any other mechanism settings in the block
	// (deep sleep, custom overheads, timeline recording, predictor tuning)
	// are preserved per job.
	Replay replay.Config
	// SelectGT chooses the grouping threshold for one job's trace; nil uses
	// the minimum admissible threshold 2·Treact. The harness and CLI install
	// the Table III selection here (harness.ChooseGT). The hook receives a
	// trace.Source — an in-memory *Trace, a generator, or a packed trace
	// file — so threshold selection works without materializing the trace.
	SelectGT func(src trace.Source) (time.Duration, error)
	// Generate overrides trace delivery, letting callers reuse cached
	// traces or serve streaming sources from a packed file (harness.Runner
	// does both); nil generates fresh in-memory traces with Opt.
	Generate func(app string, np int) (trace.Source, error)
	// Dedicated overrides the dedicated-fabric baseline replay of one job
	// (the denominator of the sharing overhead). The baseline is
	// placement-independent, so callers sweeping placements cache it per
	// (job, GT) — harness.Runner does; nil replays fresh.
	Dedicated func(src trace.Source, gt time.Duration, displacement float64) (*replay.Result, error)
}

// JobStats is the per-job slice of a shared-fabric run.
type JobStats struct {
	App       string
	NP        int
	Predictor string
	GT        time.Duration

	// Exec is the job's completion time on the shared fabric; Dedicated is
	// the same job replayed alone on the same fabric (linear placement from
	// terminal 0), and SharingOverheadPct the relative slowdown between the
	// two — the price of the neighbors.
	Exec               time.Duration
	Dedicated          time.Duration
	SharingOverheadPct float64

	// Per-job mechanism outcome on the shared fabric.
	SavingPct  float64 // switch power saving over the job's host links
	HitRatePct float64

	// Host-link energy over the job's execution, in link-seconds: joules at
	// a nominal link power of 1 W, so multiplying by the deployment's real
	// per-link wattage gives joules. SavedLinkSeconds is the reduction
	// against the same links never leaving full power.
	EnergyLinkSeconds float64
	SavedLinkSeconds  float64

	// Switches is the number of distinct first-hop switches the job spans
	// (1 for a fully packed small job, more as placement scatters it).
	Switches int

	Transfers  int
	BytesMoved int64
}

// FabricStats aggregates the shared fabric.
type FabricStats struct {
	Fabric     string
	MakeSpan   time.Duration // completion time of the slowest job
	Transfers  int
	BytesMoved int64

	// Link utilization over the makespan, across the directed links that
	// carried any traffic.
	LinksUsed   int
	MeanUtilPct float64
	MaxUtilPct  float64

	// SavingPct applies the decomposed switch power model (links 64 % of
	// switch draw, unmanaged uplinks always on) over the first-hop switches
	// occupied by any job — the fabric-wide energy the mechanism saved with
	// all tenants accounted together.
	SavingPct float64
}

// Result is the outcome of a multi-job run.
type Result struct {
	Placement string
	Jobs      []JobStats
	Fabric    FabricStats
	// Terminals records the placement that ran: Terminals[j][r] is the
	// fabric terminal of job j's rank r.
	Terminals [][]int
	// Series is the shared run's streaming telemetry recorder, non-nil only
	// when Replay.Telemetry was enabled (dedicated baselines never record).
	Series *stats.TimeSeries
}

// Run simulates the configured job mix on one shared fabric and returns
// per-job and fabric-wide statistics. The result is deterministic for a
// given Config at any Replay.Parallelism setting.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("multijob: no jobs configured")
	}
	if err := CheckRegistered(cfg.Placement); err != nil {
		return nil, fmt.Errorf("multijob: %w", err)
	}
	if err := predictor.CheckRegistered(cfg.Replay.Power.PredictorName); err != nil {
		return nil, fmt.Errorf("multijob: %w", err)
	}
	fabric, err := cfg.Replay.Fabric()
	if err != nil {
		return nil, err
	}
	d := cfg.Displacement
	workers := sweep.Workers(cfg.Replay.Parallelism, len(cfg.Jobs))

	// Generate every job's trace and choose its grouping threshold on the
	// worker pool (input order, so results are parallelism-independent).
	type prep struct {
		src  trace.Source
		meta trace.Meta
		gt   time.Duration
	}
	preps, err := sweep.Map(context.Background(), workers, cfg.Jobs,
		func(_ context.Context, _ int, js JobSpec) (prep, error) {
			src, err := cfg.generate(js)
			if err != nil {
				return prep{}, err
			}
			gt, err := cfg.selectGT(src)
			if err != nil {
				return prep{}, err
			}
			return prep{src: src, meta: src.Meta(), gt: gt}, nil
		})
	if err != nil {
		return nil, err
	}

	sizes := make([]int, len(cfg.Jobs))
	for j, p := range preps {
		sizes[j] = p.meta.NP
	}
	terms, err := Place(cfg.Placement, fabric, sizes, cfg.Opt.Seed)
	if err != nil {
		return nil, err
	}

	// The shared run: every job carries its own power block (its GT), the
	// run-level power block stays disabled.
	rjobs := make([]replay.Job, len(cfg.Jobs))
	pws := make([]replay.PowerConfig, len(cfg.Jobs))
	for j, p := range preps {
		pws[j] = cfg.jobPower(p.gt, d)
		rjobs[j] = replay.Job{Source: p.src, Terminals: terms[j], Power: &pws[j]}
	}

	// The dedicated-fabric baselines — each job alone on the same fabric,
	// same GT and predictor — are independent of the shared run, so they
	// sweep on the pool while the single-threaded shared engine drains;
	// both are pure functions of (preps, cfg), so the overlap cannot
	// affect results.
	type dedOut struct {
		res []*replay.Result
		err error
	}
	dedCh := make(chan dedOut, 1)
	go func() {
		res, err := sweep.Map(context.Background(), workers, preps,
			func(_ context.Context, j int, p prep) (*replay.Result, error) {
				return cfg.runDedicated(p.src, p.gt, d)
			})
		dedCh <- dedOut{res: res, err: err}
	}()
	shared, err := replay.RunJobs(rjobs, cfg.Replay)
	ded := <-dedCh
	if err != nil {
		return nil, err
	}
	if ded.err != nil {
		return nil, ded.err
	}
	dedicated := ded.res

	res := &Result{Placement: placementName(cfg.Placement), Terminals: terms}
	predName := predictorName(cfg.Replay.Power.PredictorName)
	for j, p := range preps {
		sh := shared.Jobs[j]
		st := JobStats{
			App: p.meta.App, NP: p.meta.NP, Predictor: predName, GT: p.gt,
			Exec:       sh.ExecTime,
			Dedicated:  dedicated[j].ExecTime,
			SavingPct:  sh.AvgSavingPct(),
			HitRatePct: sh.AvgHitRatePct(),
			Switches:   countSwitches(fabric, terms[j]),
			Transfers:  sh.Transfers,
			BytesMoved: sh.BytesMoved,
		}
		if dedicated[j].ExecTime > 0 {
			st.SharingOverheadPct = 100 * (float64(sh.ExecTime) - float64(dedicated[j].ExecTime)) /
				float64(dedicated[j].ExecTime)
		}
		for _, a := range sh.Acct {
			st.EnergyLinkSeconds += a.Energy(1.0)
			st.SavedLinkSeconds += a.Total().Seconds() - a.Energy(1.0)
		}
		res.Jobs = append(res.Jobs, st)
	}
	res.Fabric = fabricStats(fabric, shared, terms)
	res.Series = shared.Series
	return res, nil
}

// generate resolves a job's trace source. The default path materializes with
// workloads.Generate rather than wrapping workloads.NewSource: a mix's ranks
// replay concurrently, so the engine would hold most of the trace in cursor
// form anyway, and the materialized build costs O(NP·iters) generator work
// versus O(NP²·iters) for rank-at-a-time generation of all NP ranks.
// Consumers that drain one rank at a time (trace packing, offline GT runs)
// use NewSource directly and stay O(one rank).
func (c Config) generate(js JobSpec) (trace.Source, error) {
	if c.Generate != nil {
		return c.Generate(js.App, js.NP)
	}
	tr, err := workloads.Generate(js.App, js.NP, c.Opt)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

func (c Config) selectGT(src trace.Source) (time.Duration, error) {
	if c.SelectGT != nil {
		return c.SelectGT(src)
	}
	return 2 * power.Treact, nil
}

func (c Config) runDedicated(src trace.Source, gt time.Duration, d float64) (*replay.Result, error) {
	if c.Dedicated != nil {
		return c.Dedicated(src, gt, d)
	}
	bcfg := c.Replay
	bcfg.Power = JobPower(c.Replay, gt, d)
	// Telemetry belongs to the shared run; a baseline recording its own
	// series would be thrown away with the baseline's MultiResult.
	bcfg.Telemetry = replay.TelemetryConfig{}
	return replay.RunSource(src, bcfg)
}

// JobPower builds one job's effective power block from a replay
// configuration: the caller's Power settings — deep sleep, overheads,
// timeline recording, predictor tuning — re-armed at the job's grouping
// threshold and the run's displacement. A configuration that never enabled
// the mechanism gets the standard block (Table IV overheads, paper Treact),
// exactly as replay's WithPower constructs it. Both the shared run and every
// dedicated baseline — including harness.Runner's cached ones — must build
// their blocks here, so the sharing overhead always compares runs of the
// same mechanism.
func JobPower(rc replay.Config, gt time.Duration, d float64) replay.PowerConfig {
	if !rc.Power.Enabled {
		return rc.WithPower(gt, d).Power
	}
	pw := rc.Power
	pw.Predictor.GT = gt
	pw.Predictor.Displacement = d
	if pw.Predictor.Treact == 0 {
		pw.Predictor.Treact = power.Treact
	}
	return pw
}

func (c Config) jobPower(gt time.Duration, d float64) replay.PowerConfig {
	return JobPower(c.Replay, gt, d)
}

func placementName(name string) string {
	if name == "" {
		return DefaultPlacement
	}
	return name
}

func predictorName(name string) string {
	if name == "" {
		return predictor.DefaultName
	}
	return name
}

// countSwitches returns the number of distinct first-hop switches hosting
// the given terminals.
func countSwitches(f topology.Fabric, terms []int) int {
	seen := make(map[int32]bool)
	for _, t := range terms {
		seen[topology.HostSwitch(f, t)] = true
	}
	return len(seen)
}

// fabricStats summarises link utilization and fabric-wide power over the
// shared run.
func fabricStats(f topology.Fabric, m *replay.MultiResult, terms [][]int) FabricStats {
	fs := FabricStats{
		Fabric:     f.Name(),
		MakeSpan:   m.MakeSpan,
		Transfers:  m.Transfers,
		BytesMoved: m.BytesMoved,
	}
	var mean, maxU float64
	for _, busy := range m.LinkBusy {
		if busy <= 0 {
			continue
		}
		fs.LinksUsed++
		u := 100 * float64(busy) / float64(m.MakeSpan)
		mean += u
		if u > maxU {
			maxU = u
		}
	}
	if fs.LinksUsed > 0 {
		fs.MeanUtilPct = mean / float64(fs.LinksUsed)
	}
	fs.MaxUtilPct = maxU

	// Decomposed switch power over every occupied first-hop switch, all
	// tenants' host links grouped together (the power.FabricPower model the
	// single-job energy experiment uses, extended to the union of jobs).
	var flatTerms []int
	var flatAccts []power.Accounting
	for j, ts := range terms {
		for r, t := range ts {
			if r >= len(m.Jobs[j].Acct) {
				continue // job ran without the mechanism
			}
			flatTerms = append(flatTerms, t)
			flatAccts = append(flatAccts, m.Jobs[j].Acct[r])
		}
	}
	fs.SavingPct = FabricSavingPct(f, flatTerms, flatAccts)
	return fs
}

// FabricSavingPct groups per-terminal host-link accountings by first-hop
// switch of the fabric and applies the decomposed switch power model
// (power.FabricPower): links take 64 % of switch draw, and each first-hop
// switch's unmanaged switch-to-switch out-links stay at full power. Only
// switches hosting an accounted terminal are counted, as the paper's savings
// are reported over the used part of the fabric. Both the single-job energy
// experiment (harness.Energy) and the multi-job fabric summary share this
// one implementation, so the model cannot silently diverge between them.
// terms[i] is the fabric terminal whose host link accts[i] accounts for.
func FabricSavingPct(f topology.Fabric, terms []int, accts []power.Accounting) float64 {
	if len(terms) == 0 {
		return 0
	}
	tab := f.Table()
	alwaysOn := map[int32]int{}
	for id := 0; id < tab.Len(); id++ {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			alwaysOn[tab.From[id]]++
		}
	}
	groups := map[int32][]power.Accounting{}
	var order []int32 // switch node IDs in first-use order, for deterministic output
	for i, t := range terms {
		sw := topology.HostSwitch(f, t)
		if _, ok := groups[sw]; !ok {
			order = append(order, sw)
		}
		groups[sw] = append(groups[sw], accts[i])
	}
	used := make([][]power.Accounting, 0, len(order))
	usedOn := make([]int, 0, len(order))
	for _, sw := range order {
		used = append(used, groups[sw])
		usedOn = append(usedOn, alwaysOn[sw])
	}
	return power.FabricPower(used, usedOn).SavingPct
}
