package multijob

import (
	"reflect"
	"testing"

	"ibpower/internal/topology"
)

func newTestFreeList(t *testing.T, placement string) *FreeList {
	t.Helper()
	f := topology.Paper()
	order, err := Ordering(placement, f, 7)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFreeList(f, order)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestFreeListAllocRelease pins the core bookkeeping: allocations are
// disjoint, follow policy order, and releasing restores every count.
func TestFreeListAllocRelease(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	nt := fl.NumTerminals()
	if fl.Free() != nt {
		t.Fatalf("fresh list has %d free, want %d", fl.Free(), nt)
	}
	a := fl.Alloc(8)
	b := fl.Alloc(8)
	if !reflect.DeepEqual(a, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("linear first block %v", a)
	}
	if !reflect.DeepEqual(b, []int{8, 9, 10, 11, 12, 13, 14, 15}) {
		t.Errorf("linear second block %v", b)
	}
	if fl.Free() != nt-16 {
		t.Errorf("free count %d after two allocs, want %d", fl.Free(), nt-16)
	}
	// Releasing the first block makes its terminals preferred again.
	fl.Release(a)
	c := fl.Alloc(4)
	if !reflect.DeepEqual(c, []int{0, 1, 2, 3}) {
		t.Errorf("re-alloc after release %v, want the freed low block", c)
	}
	fl.Release(c)
	fl.Release(b)
	if fl.Free() != nt {
		t.Errorf("free count %d after releasing everything, want %d", fl.Free(), nt)
	}
	// Oversubscription and degenerate sizes return nil without state damage.
	if fl.Alloc(nt+1) != nil || fl.Alloc(0) != nil || fl.Alloc(-3) != nil {
		t.Error("impossible Alloc returned terminals")
	}
	if fl.Free() != nt {
		t.Errorf("failed Alloc disturbed the free count: %d", fl.Free())
	}
}

// TestFreeListPeekMatchesAlloc asserts PeekAlloc predicts Alloc exactly and
// claims nothing — the contract power-aware planning rests on.
func TestFreeListPeekMatchesAlloc(t *testing.T) {
	fl := newTestFreeList(t, "roundrobin")
	fl.Alloc(5)
	peek := fl.PeekAlloc(7)
	if fl.Free() != fl.NumTerminals()-5 {
		t.Fatal("PeekAlloc claimed terminals")
	}
	got := fl.Alloc(7)
	if !reflect.DeepEqual(peek, got) {
		t.Errorf("PeekAlloc %v != Alloc %v", peek, got)
	}
}

// TestFreeListDoubleReleasePanics pins the loud-failure contract.
func TestFreeListDoubleReleasePanics(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	terms := append([]int(nil), fl.Alloc(4)...)
	fl.Release(terms)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	fl.Release(terms)
}

// TestFreeListIdleSwitches checks the power-aware cost function: a busy
// terminal wakes its first-hop switch for everyone.
func TestFreeListIdleSwitches(t *testing.T) {
	// Paper fabric: 18 terminals per leaf switch.
	fl := newTestFreeList(t, "linear")
	// All idle: terminals 0 and 1 share a switch, 20 sits on the next one.
	if got := fl.IdleSwitches([]int{0, 1, 20}); got != 2 {
		t.Errorf("IdleSwitches on idle fabric = %d, want 2 distinct switches", got)
	}
	busy := fl.Alloc(1) // wakes terminal 0's switch
	if got := fl.IdleSwitches([]int{1, 2}); got != 0 {
		t.Errorf("IdleSwitches on woken switch = %d, want 0", got)
	}
	if got := fl.IdleSwitches([]int{20}); got != 1 {
		t.Errorf("IdleSwitches on untouched switch = %d, want 1", got)
	}
	fl.Release(busy)
	if got := fl.IdleSwitches([]int{1}); got != 1 {
		t.Errorf("IdleSwitches after release = %d, want 1 (switch asleep again)", got)
	}
}

// TestFreeListCloneIsIndependent asserts planning on a clone never leaks
// into the live list.
func TestFreeListCloneIsIndependent(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	fl.Alloc(4)
	cl := fl.Clone()
	cl.Alloc(10)
	if fl.Free() != fl.NumTerminals()-4 {
		t.Error("clone Alloc disturbed the original")
	}
	if cl.Free() != cl.NumTerminals()-14 {
		t.Error("clone did not track its own allocation")
	}
	if got, want := fl.PeekAlloc(2), []int{4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("original PeekAlloc %v, want %v", got, want)
	}
}

// TestFreeListSteadyStateAllocs pins the pooling contract: once the pool is
// warm, an Alloc/Release cycle allocates nothing.
func TestFreeListSteadyStateAllocs(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	// Warm the pool with the slice size the loop reuses.
	fl.Release(fl.Alloc(16))
	if avg := testing.AllocsPerRun(100, func() {
		fl.Release(fl.Alloc(16))
	}); avg != 0 {
		t.Errorf("steady-state Alloc/Release costs %.1f allocs/op, want 0", avg)
	}
}
