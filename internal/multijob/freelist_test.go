package multijob

import (
	"reflect"
	"testing"

	"ibpower/internal/topology"
)

func newTestFreeList(t *testing.T, placement string) *FreeList {
	t.Helper()
	f := topology.Paper()
	order, err := Ordering(placement, f, 7)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFreeList(f, order)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestFreeListAllocRelease pins the core bookkeeping: allocations are
// disjoint, follow policy order, and releasing restores every count.
func TestFreeListAllocRelease(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	nt := fl.NumTerminals()
	if fl.Free() != nt {
		t.Fatalf("fresh list has %d free, want %d", fl.Free(), nt)
	}
	a := fl.Alloc(8)
	b := fl.Alloc(8)
	if !reflect.DeepEqual(a, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("linear first block %v", a)
	}
	if !reflect.DeepEqual(b, []int{8, 9, 10, 11, 12, 13, 14, 15}) {
		t.Errorf("linear second block %v", b)
	}
	if fl.Free() != nt-16 {
		t.Errorf("free count %d after two allocs, want %d", fl.Free(), nt-16)
	}
	// Releasing the first block makes its terminals preferred again.
	fl.Release(a)
	c := fl.Alloc(4)
	if !reflect.DeepEqual(c, []int{0, 1, 2, 3}) {
		t.Errorf("re-alloc after release %v, want the freed low block", c)
	}
	fl.Release(c)
	fl.Release(b)
	if fl.Free() != nt {
		t.Errorf("free count %d after releasing everything, want %d", fl.Free(), nt)
	}
	// Oversubscription and degenerate sizes return nil without state damage.
	if fl.Alloc(nt+1) != nil || fl.Alloc(0) != nil || fl.Alloc(-3) != nil {
		t.Error("impossible Alloc returned terminals")
	}
	if fl.Free() != nt {
		t.Errorf("failed Alloc disturbed the free count: %d", fl.Free())
	}
}

// TestFreeListPeekMatchesAlloc asserts PeekAlloc predicts Alloc exactly and
// claims nothing — the contract power-aware planning rests on.
func TestFreeListPeekMatchesAlloc(t *testing.T) {
	fl := newTestFreeList(t, "roundrobin")
	fl.Alloc(5)
	peek := fl.PeekAlloc(7)
	if fl.Free() != fl.NumTerminals()-5 {
		t.Fatal("PeekAlloc claimed terminals")
	}
	got := fl.Alloc(7)
	if !reflect.DeepEqual(peek, got) {
		t.Errorf("PeekAlloc %v != Alloc %v", peek, got)
	}
}

// TestFreeListDoubleReleasePanics pins the loud-failure contract.
func TestFreeListDoubleReleasePanics(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	terms := append([]int(nil), fl.Alloc(4)...)
	fl.Release(terms)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	fl.Release(terms)
}

// TestFreeListIdleSwitches checks the power-aware cost function: a busy
// terminal wakes its first-hop switch for everyone.
func TestFreeListIdleSwitches(t *testing.T) {
	// Paper fabric: 18 terminals per leaf switch.
	fl := newTestFreeList(t, "linear")
	// All idle: terminals 0 and 1 share a switch, 20 sits on the next one.
	if got := fl.IdleSwitches([]int{0, 1, 20}); got != 2 {
		t.Errorf("IdleSwitches on idle fabric = %d, want 2 distinct switches", got)
	}
	busy := fl.Alloc(1) // wakes terminal 0's switch
	if got := fl.IdleSwitches([]int{1, 2}); got != 0 {
		t.Errorf("IdleSwitches on woken switch = %d, want 0", got)
	}
	if got := fl.IdleSwitches([]int{20}); got != 1 {
		t.Errorf("IdleSwitches on untouched switch = %d, want 1", got)
	}
	fl.Release(busy)
	if got := fl.IdleSwitches([]int{1}); got != 1 {
		t.Errorf("IdleSwitches after release = %d, want 1 (switch asleep again)", got)
	}
}

// TestFreeListCloneIsIndependent asserts planning on a clone never leaks
// into the live list.
func TestFreeListCloneIsIndependent(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	fl.Alloc(4)
	cl := fl.Clone()
	cl.Alloc(10)
	if fl.Free() != fl.NumTerminals()-4 {
		t.Error("clone Alloc disturbed the original")
	}
	if cl.Free() != cl.NumTerminals()-14 {
		t.Error("clone did not track its own allocation")
	}
	if got, want := fl.PeekAlloc(2), []int{4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("original PeekAlloc %v, want %v", got, want)
	}
}

// TestFreeListCloneDeepIndependence covers the leak the satellite task calls
// out: what-if planning mutates a clone's allocations and pooled backing
// slices, and none of it may alias the live list's memory.
func TestFreeListCloneDeepIndependence(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	live := fl.Alloc(8)
	fl.Release(live) // live's backing array now sits in fl's pool

	cl := fl.Clone()
	got := cl.Alloc(8)
	if &got[0] == &live[0] {
		t.Fatal("clone Alloc handed out the live list's pooled backing slice")
	}
	cl.Release(got)
	// Scribble the clone's pooled backing; the live list must not see it.
	for i := range got {
		got[i] = -999
	}
	cl.Fail(0)
	cl.Alloc(4)

	next := fl.Alloc(8)
	if !reflect.DeepEqual(next, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("live Alloc after clone mutation = %v", next)
	}
	if fl.Down() != 0 {
		t.Error("clone Fail leaked into the live list")
	}
	// And the other direction: releasing into the live pool after cloning
	// stays invisible to the clone.
	fl.Release(next)
	if cl.Free() != cl.NumTerminals()-4-1 { // 4 allocated, terminal 0 down
		t.Errorf("clone free count %d disturbed by live Release", cl.Free())
	}
}

// TestFreeListFailRepair pins the down-terminal bookkeeping the fault layer
// rides on: down terminals leave the free pool, are skipped by Alloc and
// PeekAlloc, survive a Release without resurfacing, and only return once
// every overlapping fault cause is repaired.
func TestFreeListFailRepair(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	nt := fl.NumTerminals()

	fl.Fail(0)
	if fl.Free() != nt-1 || fl.Down() != 1 {
		t.Fatalf("after Fail(0): free %d down %d", fl.Free(), fl.Down())
	}
	if got := fl.PeekAlloc(2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("PeekAlloc over a down terminal = %v, want [1 2]", got)
	}
	a := fl.Alloc(2)
	if !reflect.DeepEqual(a, []int{1, 2}) {
		t.Errorf("Alloc over a down terminal = %v, want [1 2]", a)
	}
	fl.Release(a)

	// A busy terminal that fails: its occupant's release parks it.
	b := fl.Alloc(2) // terminals 1, 2
	fl.Fail(1)
	fl.Release(b)
	if fl.Free() != nt-2 || fl.Down() != 2 {
		t.Fatalf("after failing busy terminal: free %d down %d", fl.Free(), fl.Down())
	}
	if got := fl.Alloc(1); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Alloc after parked release = %v, want [2]", got)
	}

	// Overlapping causes: a second Fail needs a second Repair.
	fl.Fail(1)
	fl.Repair(1)
	if fl.Down() != 2 {
		t.Error("terminal with an outstanding fault cause counted repaired")
	}
	fl.Repair(1)
	fl.Repair(0)
	if fl.Down() != 0 || fl.Free() != nt-1 { // terminal 2 still allocated
		t.Errorf("after full repair: free %d down %d", fl.Free(), fl.Down())
	}
	defer func() {
		if recover() == nil {
			t.Error("Repair of a healthy terminal did not panic")
		}
	}()
	fl.Repair(17)
}

// TestFreeListSteadyStateAllocs pins the pooling contract: once the pool is
// warm, an Alloc/Release cycle allocates nothing.
func TestFreeListSteadyStateAllocs(t *testing.T) {
	fl := newTestFreeList(t, "linear")
	// Warm the pool with the slice size the loop reuses.
	fl.Release(fl.Alloc(16))
	if avg := testing.AllocsPerRun(100, func() {
		fl.Release(fl.Alloc(16))
	}); avg != 0 {
		t.Errorf("steady-state Alloc/Release costs %.1f allocs/op, want 0", avg)
	}
}
