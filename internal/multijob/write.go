package multijob

import (
	"fmt"
	"io"
	"time"

	"ibpower/internal/stats"
)

// WriteResult renders a multi-job run: one row per job, then the fabric-wide
// summary. The layout is stable and fully determined by the Result, so CLI
// output stays bit-identical whenever the simulation is.
func WriteResult(w io.Writer, r *Result) error {
	fmt.Fprintf(w, "%d jobs on shared fabric %s, placement %s\n",
		len(r.Jobs), r.Fabric.Fabric, r.Placement)
	t := stats.NewTable("job", "Nproc", "predictor", "GT[us]", "switches",
		"exec", "dedicated", "sharing dT[%]", "saving[%]", "hit[%]", "energy[link-s]", "saved[link-s]")
	for _, j := range r.Jobs {
		t.Row(j.App, j.NP, j.Predictor, int(j.GT/time.Microsecond), j.Switches,
			j.Exec.Round(time.Microsecond), j.Dedicated.Round(time.Microsecond),
			j.SharingOverheadPct, j.SavingPct, j.HitRatePct,
			// Energies get four decimals: small jobs save fractions of a
			// link-second that %.2f would round to noise.
			fmt.Sprintf("%.4f", j.EnergyLinkSeconds),
			fmt.Sprintf("%.4f", j.SavedLinkSeconds))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	f := r.Fabric
	fmt.Fprintf(w, "\nfabric: makespan %v, %d transfers, %d bytes, %d links used (mean util %.2f%%, max %.2f%%), fabric saving %.2f%%\n",
		f.MakeSpan.Round(time.Microsecond), f.Transfers, f.BytesMoved,
		f.LinksUsed, f.MeanUtilPct, f.MaxUtilPct, f.SavingPct)
	return nil
}
