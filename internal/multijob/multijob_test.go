package multijob

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func testConfig() Config {
	return Config{
		Jobs:      []JobSpec{{App: "gromacs", NP: 8}, {App: "alya", NP: 8}},
		Placement: "roundrobin",
		Opt:       workloads.Options{Seed: 42, IterScale: 0.05},
		Replay:    replay.DefaultConfig(),
	}
}

func TestParseJobs(t *testing.T) {
	jobs, err := ParseJobs("gromacs:64, alya:16")
	if err != nil {
		t.Fatal(err)
	}
	want := []JobSpec{{App: "gromacs", NP: 64}, {App: "alya", NP: 16}}
	if !reflect.DeepEqual(jobs, want) {
		t.Errorf("got %v, want %v", jobs, want)
	}
	if FormatJobs(jobs) != "gromacs:64,alya:16" {
		t.Errorf("FormatJobs = %q", FormatJobs(jobs))
	}
	for _, bad := range []string{"", "gromacs", "gromacs:x", "gromacs:1", ":8", "a:8,,b:8"} {
		if _, err := ParseJobs(bad); err == nil {
			t.Errorf("ParseJobs(%q) accepted", bad)
		}
	}
}

// TestRunEndToEnd runs a small two-job mix and sanity-checks every reported
// statistic.
func TestRunEndToEnd(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job rows, want 2", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Exec <= 0 || j.Dedicated <= 0 {
			t.Errorf("%s: non-positive exec %v / dedicated %v", j.App, j.Exec, j.Dedicated)
		}
		if j.SavingPct < 0 || j.SavingPct > 57 {
			t.Errorf("%s: saving %.2f%% outside [0, 57]", j.App, j.SavingPct)
		}
		if j.EnergyLinkSeconds <= 0 {
			t.Errorf("%s: non-positive energy", j.App)
		}
		if j.Switches < 2 {
			t.Errorf("%s: round-robin placed 8 ranks on %d switch(es)", j.App, j.Switches)
		}
		if j.Transfers <= 0 {
			t.Errorf("%s: no transfers attributed", j.App)
		}
	}
	f := res.Fabric
	if f.MakeSpan < res.Jobs[0].Exec || f.MakeSpan < res.Jobs[1].Exec {
		t.Errorf("makespan %v below a job exec time", f.MakeSpan)
	}
	if f.LinksUsed <= 0 || f.MaxUtilPct <= 0 {
		t.Errorf("fabric link stats empty: %+v", f)
	}
	if f.Transfers != res.Jobs[0].Transfers+res.Jobs[1].Transfers {
		t.Errorf("fabric transfers %d != sum of job transfers", f.Transfers)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gromacs", "alya", "roundrobin", "makespan"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered result missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunDeterministicAtAnyParallelism pins the determinism contract: the
// whole Result — placements, per-job stats, fabric stats — must be identical
// at Parallelism 1, 2, and GOMAXPROCS.
func TestRunDeterministicAtAnyParallelism(t *testing.T) {
	var base *Result
	for _, par := range []int{1, 2, 0} {
		cfg := testConfig()
		cfg.Replay.Parallelism = par
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("result at Parallelism %d differs from the serial run", par)
		}
	}
}

// TestRunSharedVsDedicated asserts the shared run actually shares: the union
// traffic hits the same fabric, so per-job exec can differ from the
// dedicated baseline, and the overhead column reflects exactly that delta.
func TestRunSharedVsDedicated(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		want := 100 * (float64(j.Exec) - float64(j.Dedicated)) / float64(j.Dedicated)
		if got := j.SharingOverheadPct; got != want {
			t.Errorf("%s: overhead %.4f%%, want %.4f%%", j.App, got, want)
		}
	}
}

// TestRunErrors covers configuration error paths: unknown placement,
// predictor, fabric, and workload all fail fast with the registry named.
func TestRunErrors(t *testing.T) {
	for name, mutate := range map[string]struct {
		mut  func(*Config)
		want string
	}{
		"placement": {func(c *Config) { c.Placement = "nosuch" }, "unknown placement"},
		"predictor": {func(c *Config) { c.Replay.Power.PredictorName = "nosuch" }, "unknown predictor"},
		"fabric":    {func(c *Config) { c.Replay.FabricName = "nosuch" }, "unknown fabric"},
		"workload":  {func(c *Config) { c.Jobs[0].App = "nosuch" }, "unknown application"},
		"empty":     {func(c *Config) { c.Jobs = nil }, "no jobs"},
	} {
		cfg := testConfig()
		mutate.mut(&cfg)
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), mutate.want) {
			t.Errorf("%s: error %v, want substring %q", name, err, mutate.want)
		}
	}
}
