package multijob

import (
	"reflect"
	"strings"
	"testing"

	"ibpower/internal/registrytest"
	"ibpower/internal/topology"
)

// TestPlacementInvariants runs every registered policy over every registered
// fabric and checks the contract Place enforces: every rank mapped, all
// terminals in range, no terminal shared between ranks or jobs.
func TestPlacementInvariants(t *testing.T) {
	sizes := []int{16, 9, 32, 8}
	for _, fname := range topology.Names() {
		f, err := topology.Named(fname)
		if err != nil {
			t.Fatal(err)
		}
		for _, pname := range Names() {
			terms, err := Place(pname, f, sizes, 7)
			if err != nil {
				t.Errorf("%s on %s: %v", pname, fname, err)
				continue
			}
			seen := make(map[int]bool)
			for j, ts := range terms {
				if len(ts) != sizes[j] {
					t.Errorf("%s on %s: job %d got %d terminals, want %d",
						pname, fname, j, len(ts), sizes[j])
				}
				for _, term := range ts {
					if term < 0 || term >= f.NumTerminals() {
						t.Errorf("%s on %s: terminal %d out of range", pname, fname, term)
					}
					if seen[term] {
						t.Errorf("%s on %s: terminal %d assigned twice", pname, fname, term)
					}
					seen[term] = true
				}
			}
		}
	}
}

// TestRandomPlacementDeterministicPerSeed pins the "random" policy's
// reproducibility contract: same seed, same placement; different seed,
// different placement.
func TestRandomPlacementDeterministicPerSeed(t *testing.T) {
	f := topology.Paper()
	sizes := []int{64, 16}
	a, err := Place("random", f, sizes, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place("random", f, sizes, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("random placement differs for identical seeds")
	}
	c, err := Place("random", f, sizes, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("random placement identical across different seeds")
	}
}

// TestLinearPlacementIsContiguous asserts linear hands out contiguous
// terminal blocks in job order — the identity placement replay.Run uses when
// a single job has the fabric to itself.
func TestLinearPlacementIsContiguous(t *testing.T) {
	f := topology.Paper()
	terms, err := Place("linear", f, []int{8, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for j, ts := range terms {
		for r, term := range ts {
			if term != next {
				t.Fatalf("job %d rank %d on terminal %d, want %d", j, r, term, next)
			}
			next++
		}
	}
}

// TestRoundRobinSpreadsAcrossSwitches asserts consecutive ranks land on
// distinct first-hop switches (while distinct switches remain), the whole
// point of the interleaving policy.
func TestRoundRobinSpreadsAcrossSwitches(t *testing.T) {
	f := topology.Paper() // 14 leaf switches, 18 terminals each
	terms, err := Place("roundrobin", f, []int{14}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for r, term := range terms[0] {
		sw := topology.HostSwitch(f, term)
		if seen[sw] {
			t.Errorf("rank %d landed on already-used switch %d before all switches were visited", r, sw)
		}
		seen[sw] = true
	}
	if len(seen) != 14 {
		t.Errorf("14 interleaved ranks span %d switches, want 14", len(seen))
	}
}

// TestPlaceErrors covers the Place-specific error paths the shared registry
// contract does not reach (the unknown-name path goes through Place itself,
// and capacity checking is unique to placements).
func TestPlaceErrors(t *testing.T) {
	f := topology.Paper()
	if _, err := Place("nosuch", f, []int{8}, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown placement") ||
		!strings.Contains(err.Error(), "roundrobin") {
		t.Errorf("unknown policy: error %v, want the registry listed", err)
	}
	if _, err := Place("linear", f, []int{200, 200}, 0); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Errorf("overcommit: error %v, want capacity complaint", err)
	}
}

// TestRegistryContract runs the shared registry property test. The
// throwaway entries it registers delegate to the linear policy, so
// TestPlacementInvariants keeps passing over them.
func TestRegistryContract(t *testing.T) {
	registrytest.Run(t, registrytest.Registry{
		Kind:    "placement",
		Default: DefaultPlacement,
		Names:   Names,
		Check:   CheckRegistered,
		RegisterValid: func(name string) {
			Register(name, func(f topology.Fabric, sizes []int, seed int64) ([][]int, error) {
				return Place("linear", f, sizes, seed)
			})
		},
		RegisterNil: func(name string) { Register(name, nil) },
	})
}
