package workloads

import (
	"reflect"
	"testing"
	"time"

	"ibpower/internal/trace"
)

var smallOpt = Options{IterScale: 0.05}

func TestAppsRegistry(t *testing.T) {
	apps := Apps()
	want := []string{"alya", "gromacs", "nasbt", "nasmg", "wrf"}
	if !reflect.DeepEqual(apps, want) {
		t.Fatalf("Apps() = %v, want %v", apps, want)
	}
	if _, err := Generate("nope", 8, smallOpt); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Generate("alya", 1, smallOpt); err == nil {
		t.Error("np=1 accepted")
	}
}

func TestProcCounts(t *testing.T) {
	if got := ProcCounts("nasbt"); !reflect.DeepEqual(got, []int{9, 16, 36, 64, 100}) {
		t.Errorf("nasbt counts = %v", got)
	}
	if got := ProcCounts("alya"); !reflect.DeepEqual(got, []int{8, 16, 32, 64, 128}) {
		t.Errorf("alya counts = %v", got)
	}
	// NAS BT counts must all be perfect squares (the benchmark requires it).
	for _, np := range ProcCounts("nasbt") {
		s := intSqrt(np)
		if s*s != np {
			t.Errorf("nasbt count %d is not a perfect square", np)
		}
	}
}

func TestAllGeneratorsValidate(t *testing.T) {
	for _, app := range Apps() {
		for _, np := range ProcCounts(app) {
			tr, err := Generate(app, np, smallOpt)
			if err != nil {
				t.Fatalf("%s/%d: %v", app, np, err)
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s/%d: %v", app, np, err)
			}
			if tr.NP != np || tr.App != app {
				t.Errorf("%s/%d: header %s/%d", app, np, tr.App, tr.NP)
			}
			if tr.NumCalls() == 0 {
				t.Errorf("%s/%d: empty trace", app, np)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, app := range Apps() {
		a, _ := Generate(app, 8, Options{Seed: 7, IterScale: 0.05})
		b, _ := Generate(app, 8, Options{Seed: 7, IterScale: 0.05})
		if !reflect.DeepEqual(a.Ranks, b.Ranks) {
			t.Errorf("%s: generation not deterministic", app)
		}
		c, _ := Generate(app, 8, Options{Seed: 8, IterScale: 0.05})
		if reflect.DeepEqual(a.Ranks, c.Ranks) {
			t.Errorf("%s: seed has no effect", app)
		}
	}
}

func TestSPMDCallAlignment(t *testing.T) {
	// Every rank must perform the same sequence of MPI call types — the
	// SPMD property the replay's collective matching relies on.
	for _, app := range Apps() {
		tr, err := Generate(app, 9, smallOpt)
		if err != nil {
			t.Fatal(err)
		}
		calls := func(r int) []trace.CallID {
			var out []trace.CallID
			for _, op := range tr.Ranks[r] {
				if op.Kind == trace.OpCall {
					out = append(out, op.Call)
				}
			}
			return out
		}
		ref := calls(0)
		for r := 1; r < tr.NP; r++ {
			if !reflect.DeepEqual(ref, calls(r)) {
				t.Errorf("%s: rank %d call sequence differs from rank 0", app, r)
				break
			}
		}
	}
}

func TestTableIShape(t *testing.T) {
	// The generators must reproduce the qualitative Table I structure at
	// the reference process counts.
	opt := Options{IterScale: 0.3}

	// WRF: the overwhelming majority of idle intervals are sub-20 µs.
	wrf, _ := Generate("wrf", 8, opt)
	d := wrf.IdleDistribution()
	if pct := d.CountPct(0); pct < 70 {
		t.Errorf("wrf short-interval share = %.1f%%, want >70 (paper: 94%%)", pct)
	}

	// All apps: intervals above 20 µs hold the overwhelming share of idle
	// time (the paper reports >99 %; the generators land >96 %, which is
	// equivalent for the mechanism since sub-GT intervals are never used).
	for _, app := range Apps() {
		np := ProcCounts(app)[0]
		tr, _ := Generate(app, np, opt)
		d := tr.IdleDistribution()
		longShare := d.TimePct(1) + d.TimePct(2)
		if longShare < 96 {
			t.Errorf("%s/%d: reclaimable idle share = %.2f%%, want >96", app, np, longShare)
		}
	}

	// NAS MG: a visible population in the awkward 20–200 µs bucket.
	mg, _ := Generate("nasmg", 8, opt)
	d = mg.IdleDistribution()
	if d.Count[1] == 0 {
		t.Error("nasmg has no 20-200µs intervals; the V-cycle structure is missing")
	}
}

func TestStrongScalingShrinksCompute(t *testing.T) {
	for _, app := range Apps() {
		counts := ProcCounts(app)
		small, _ := Generate(app, counts[0], smallOpt)
		big, _ := Generate(app, counts[len(counts)-1], smallOpt)
		if small.ComputeTime(0) <= big.ComputeTime(0) {
			t.Errorf("%s: per-rank compute did not shrink from np=%d to np=%d",
				app, counts[0], counts[len(counts)-1])
		}
	}
}

func TestWeakScalingHoldsCompute(t *testing.T) {
	for _, app := range Apps() {
		counts := ProcCounts(app)
		small, _ := Generate(app, counts[0], Options{IterScale: 0.05, Weak: true})
		big, _ := Generate(app, counts[len(counts)-1], Options{IterScale: 0.05, Weak: true})
		s, b := small.ComputeTime(0), big.ComputeTime(0)
		// Per-rank computation stays within ~25 % across scales under weak
		// scaling (NAS BT's pipeline stages still subdivide the solve).
		ratio := float64(s) / float64(b)
		if app == "nasbt" {
			continue // stages grow with sqrt(np); gaps subdivide by design
		}
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: weak-scaling compute ratio %.2f (small %v vs big %v)", app, ratio, s, b)
		}
	}
}

func TestIterScale(t *testing.T) {
	a, _ := Generate("alya", 8, Options{IterScale: 0.1})
	b, _ := Generate("alya", 8, Options{IterScale: 0.5})
	if a.NumCalls() >= b.NumCalls() {
		t.Error("IterScale does not scale the trace")
	}
}

func TestScalingHelpers(t *testing.T) {
	// Amdahl: at np == ref the base is returned; the serial fraction floors
	// the shrink.
	if got := amdahlScale(100*time.Microsecond, 8, 8, 0.1); got != 100*time.Microsecond {
		t.Errorf("amdahl at ref = %v", got)
	}
	floor := amdahlScale(100*time.Microsecond, 8, 1<<20, 0.1)
	if floor < 9*time.Microsecond || floor > 11*time.Microsecond {
		t.Errorf("amdahl floor = %v, want ~10µs", floor)
	}
	if got := byteScale(1024, 8, 8, 0.5); got != 1024 {
		t.Errorf("byteScale at ref = %d", got)
	}
	if got := byteScale(1024, 8, 32, 1.0); got != 256 {
		t.Errorf("byteScale e=1 = %d, want 256", got)
	}
	if got := byteScale(1, 8, 1024, 1.0); got != 64 {
		t.Errorf("byteScale floor = %d, want 64", got)
	}
}

func TestIntSqrt(t *testing.T) {
	for _, c := range []struct{ n, want int }{{9, 3}, {16, 4}, {100, 10}, {1, 1}} {
		if got := intSqrt(c.n); got != c.want {
			t.Errorf("intSqrt(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
