// Package workloads generates synthetic per-rank MPI traces that stand in
// for the paper's production traces of GROMACS, ALYA, WRF, NAS BT and NAS
// MG (Section IV-A).
//
// The generators model what the prediction mechanism actually observes —
// the per-process stream of (MPI call type, inter-communication interval) —
// with the statistical structure of each application:
//
//   - an iterative SPMD phase structure between initialization and
//     finalization phases;
//   - strong-scaling traces: per-rank computation shrinks ~1/NP while halo
//     message sizes shrink only with the subdomain surface (~NP^(-2/3)), so
//     communication becomes dominant at scale (the paper's explanation for
//     declining savings, Section IV-B);
//   - application-specific regularity: ALYA and NAS BT iterate almost
//     perfectly (93–98 % MPI call hit rates in Table III), GROMACS and WRF
//     alternate between several communication variants (42–59 % and 25–33 %),
//     NAS MG nests V-cycle levels with widely mixed idle-interval scales
//     (the 20–200 µs bucket of Table I).
//
// All generation is deterministic for a given (application, NP, Options).
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ibpower/internal/trace"
)

// Options tune trace generation.
type Options struct {
	Seed int64
	// IterScale multiplies the application's default iteration count;
	// 0 means 1.0. Benchmarks use small scales.
	IterScale float64
	// Weak selects weak scaling: per-rank computation and message sizes
	// stay at their reference values as the process count grows, instead of
	// shrinking (strong scaling, the paper's trace set). The paper expects
	// the mechanism "would be more effective for weak scaling than for
	// strong scaling runs" (Section III); the WeakScaling experiment tests
	// that claim.
	Weak bool

	// only restricts generation to a single rank (value rank+1; 0 generates
	// all ranks). Only NewSource sets it, which is why it is unexported:
	// callers' Options values always compare equal regardless of how the
	// trace is later streamed, so Options stays usable as a cache key.
	//
	// Restricting to one rank is exact, not approximate: structure decisions
	// draw from the shared rng at iteration level only (never per rank) and
	// per-rank timing draws from jit[r], seeded independently per rank — so
	// rank r of a filtered build is identical to rank r of a full build.
	only int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) iters(base int) int {
	s := o.IterScale
	if s <= 0 {
		s = 1
	}
	n := int(math.Round(float64(base) * s))
	if n < 4 {
		n = 4
	}
	return n
}

// Generator builds a trace for one application at a process count.
type Generator func(np int, opt Options) *trace.Trace

var registry = map[string]Generator{
	"gromacs": Gromacs,
	"alya":    Alya,
	"wrf":     WRF,
	"nasbt":   NASBT,
	"nasmg":   NASMG,
}

// Apps returns the registered application names, sorted.
func Apps() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate builds the trace for a registered application.
func Generate(app string, np int, opt Options) (*trace.Trace, error) {
	g, ok := registry[app]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown application %q (have %v)", app, Apps())
	}
	if np < 2 {
		return nil, fmt.Errorf("workloads: need at least 2 processes, got %d", np)
	}
	return g(np, opt), nil
}

// ProcCounts returns the process counts the paper evaluates for app:
// 8/16/32/64/128, except NAS BT which requires square counts (9/16/36/64/100).
func ProcCounts(app string) []int {
	if app == "nasbt" {
		return []int{9, 16, 36, 64, 100}
	}
	return []int{8, 16, 32, 64, 128}
}

// builder assembles SPMD traces with per-rank timing jitter. Structure
// decisions (communication variants) are shared by all ranks, as in an SPMD
// program; only computation durations jitter per rank.
type builder struct {
	tr    *trace.Trace
	np    int
	lo    int // first rank to emit (Options.only filter)
	hi    int // one past the last rank to emit
	weak  bool
	rng   *rand.Rand    // structure decisions, shared
	jit   []*rand.Rand  // per-rank compute jitter
	sigma float64       // relative jitter std deviation
	noise time.Duration // absolute per-burst noise floor (OS noise): does not shrink with problem size
}

func newBuilder(app string, np int, opt Options, sigma float64, noise time.Duration) *builder {
	b := &builder{
		tr:    trace.New(app, np),
		np:    np,
		lo:    0,
		hi:    np,
		weak:  opt.Weak,
		rng:   rand.New(rand.NewSource(opt.seed())),
		jit:   make([]*rand.Rand, np),
		sigma: sigma,
		noise: noise,
	}
	if opt.only > 0 {
		b.lo, b.hi = opt.only-1, opt.only
	}
	for r := b.lo; r < b.hi; r++ {
		b.jit[r] = rand.New(rand.NewSource(opt.seed()*7919 + int64(r)*104729 + 13))
	}
	return b
}

// jitter perturbs d by a truncated normal relative factor plus a positive
// absolute noise term for rank r. The absolute term models OS/system noise,
// which does not shrink under strong scaling and is what makes
// synchronization losses dominate at large process counts.
func (b *builder) jitter(r int, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := 1.0
	if b.sigma > 0 {
		f = 1 + b.sigma*clamp(b.jit[r].NormFloat64(), -3, 3)
		if f < 0.05 {
			f = 0.05
		}
	}
	out := time.Duration(float64(d) * f)
	// OS noise strikes long computation bursts (they expose more time to
	// preemption); sub-GT gram-internal gaps stay tight so that gram
	// formation is stable against the grouping threshold.
	if b.noise > 0 && d >= 64*time.Microsecond {
		n := time.Duration(math.Abs(b.jit[r].NormFloat64()) * float64(b.noise))
		out += n
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// computeAll appends a jittered compute burst of mean d to every rank.
func (b *builder) computeAll(d time.Duration) {
	for r := b.lo; r < b.hi; r++ {
		b.tr.Append(r, trace.Compute(b.jitter(r, d)))
	}
}

// ringExchange appends a ring sendrecv: every rank sends to (r+off) and
// receives from (r-off).
func (b *builder) ringExchange(off, bytes int) {
	for r := b.lo; r < b.hi; r++ {
		to := (r + off) % b.np
		from := (r - off%b.np + b.np) % b.np
		b.tr.Append(r, trace.Sendrecv(to, from, bytes))
	}
}

// allreduce appends an allreduce on every rank.
func (b *builder) allreduce(bytes int) {
	for r := b.lo; r < b.hi; r++ {
		b.tr.Append(r, trace.Allreduce(bytes))
	}
}

// barrier appends a barrier on every rank.
func (b *builder) barrier() {
	for r := b.lo; r < b.hi; r++ {
		b.tr.Append(r, trace.Barrier())
	}
}

// bcast appends a broadcast from root.
func (b *builder) bcast(root, bytes int) {
	for r := b.lo; r < b.hi; r++ {
		b.tr.Append(r, trace.Bcast(root, bytes))
	}
}

// haloBurst appends k ring sendrecvs separated by short gaps (all below any
// sensible GT), forming one gram.
func (b *builder) haloBurst(k, bytes int, gap time.Duration) {
	for i := 0; i < k; i++ {
		if i > 0 {
			b.computeAll(gap)
		}
		b.ringExchange(1+i%2, bytes)
	}
}

// amdahlScale returns per-rank computation under strong scaling with a
// serial fraction f: base · (f + (1-f)·refNP/np). Production traces never
// scale perfectly; the serial fraction keeps long idle intervals present at
// 128 processes, as the paper's Table I shows.
func amdahlScale(base time.Duration, refNP, np int, f float64) time.Duration {
	s := f + (1-f)*float64(refNP)/float64(np)
	return time.Duration(float64(base) * s)
}

// byteScale returns message bytes scaled as (refNP/np)^e. A 3-D domain
// decomposition gives e = 2/3 for halo surfaces; latency-bound or
// unstructured exchanges shrink much more slowly (small e), which is what
// makes communication dominate at scale in strong-scaling runs.
func byteScale(base, refNP, np int, e float64) int {
	s := math.Pow(float64(refNP)/float64(np), e)
	v := int(float64(base) * s)
	if v < 64 {
		v = 64
	}
	return v
}

// scaleTime applies the builder's scaling regime to a per-rank computation
// phase: Amdahl shrink under strong scaling, constant under weak scaling.
func (b *builder) scaleTime(base time.Duration, refNP int, f float64) time.Duration {
	if b.weak {
		return base
	}
	return amdahlScale(base, refNP, b.np, f)
}

// scaleBytes applies the scaling regime to a message size.
func (b *builder) scaleBytes(base, refNP int, e float64) int {
	if b.weak {
		return base
	}
	return byteScale(base, refNP, b.np, e)
}

// initPhase emits a common initialization phase: a broadcast of the input
// deck and a barrier, separated by setup computation. Its irregular timing
// exercises the "no prediction outside iterative phases" path.
func (b *builder) initPhase(setup time.Duration) {
	b.computeAll(setup)
	b.bcast(0, 1<<16)
	b.computeAll(setup / 2)
	b.barrier()
	b.computeAll(setup / 3)
}

// finalizePhase emits a reduction of results and a final barrier.
func (b *builder) finalizePhase(teardown time.Duration) {
	b.computeAll(teardown)
	for r := b.lo; r < b.hi; r++ {
		b.tr.Append(r, trace.Reduce(0, 1<<13))
	}
	b.computeAll(teardown / 2)
	b.barrier()
}
