package workloads

import (
	"reflect"
	"testing"

	"ibpower/internal/trace"
)

// The generator source's per-rank streams must be bit-identical to the
// corresponding ranks of the fully materialized trace, for every registered
// application — the exactness contract that lets replay results be
// independent of how a trace is delivered.
func TestSourceMatchesGenerate(t *testing.T) {
	opt := Options{Seed: 7, IterScale: 0.05}
	for _, app := range Apps() {
		np := 8
		if app == "nasbt" {
			np = 9
		}
		full, err := Generate(app, np, opt)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewSource(app, np, opt)
		if err != nil {
			t.Fatal(err)
		}
		if src.Meta() != (trace.Meta{App: app, NP: np}) {
			t.Fatalf("%s: Meta = %v", app, src.Meta())
		}
		got, err := trace.Materialize(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Ranks, full.Ranks) {
			t.Errorf("%s: streamed ranks differ from Generate", app)
		}
	}
}

func TestSourceWeakAndRewind(t *testing.T) {
	opt := Options{Seed: 3, IterScale: 0.05, Weak: true}
	full, err := Generate("alya", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource("alya", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := src.Open(5)
	drain := func() []trace.Op {
		var ops []trace.Op
		for {
			op, ok := c.Next()
			if !ok {
				break
			}
			ops = append(ops, op)
		}
		return ops
	}
	first := drain()
	c.Rewind()
	second := drain()
	if !reflect.DeepEqual(first, second) {
		t.Error("rewind changed the stream")
	}
	if !reflect.DeepEqual(first, full.Ranks[5]) {
		t.Error("weak-scaling streamed rank differs from Generate")
	}
}

func TestNewSourceErrors(t *testing.T) {
	if _, err := NewSource("nope", 8, Options{}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := NewSource("alya", 1, Options{}); err == nil {
		t.Error("np=1 accepted")
	}
}
