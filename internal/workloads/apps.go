package workloads

import (
	"time"

	"ibpower/internal/trace"
)

// Per-application calibration. Each generator is characterised by
//
//   - the main per-iteration computation gaps at the reference process count
//     and an Amdahl serial fraction controlling their strong-scaling shrink;
//   - communication volume at the reference count and a byte-shrink exponent
//     (surface-like 2/3 for clean 3-D halos, much smaller for unstructured
//     or latency-bound exchanges);
//   - an absolute noise floor (OS noise) that erodes synchronization at
//     scale;
//   - the pattern regularity policy that sets the Table III hit-rate band.
//
// The constants below were calibrated so that the replay harness reproduces
// the *shape* of the paper's Figures 7–9 and Tables I/III; EXPERIMENTS.md
// records paper-vs-measured values.

// Gromacs models a molecular-dynamics run: a short halo-exchange burst, a
// dominant force-computation phase and a trailing energy allreduce, with the
// iteration alternating between a few communication variants (neighbour
// search vs PME steps), which keeps the MPI call hit rate in the 40–60 %
// band of Table III.
func Gromacs(np int, opt Options) *trace.Trace {
	const refNP = 8
	b := newBuilder("gromacs", np, opt, 0.03, 8*time.Microsecond)
	iters := opt.iters(260)

	force := b.scaleTime(2400*time.Microsecond, refNP, 0.09)
	post := b.scaleTime(250*time.Microsecond, refNP, 0.09)
	mid := b.scaleTime(170*time.Microsecond, refNP, 0.09)
	halo := b.scaleBytes(1792*1024, refNP, 0.25)

	b.initPhase(900 * time.Microsecond)
	variant := 0
	for it := 0; it < iters; it++ {
		// Markov variant switching: sticky enough that runs of three
		// identical iterations occur and patterns get detected, but with
		// frequent switches that break prediction.
		if b.rng.Float64() > 0.45 {
			variant = b.rng.Intn(3)
		}
		b.haloBurst(3, halo, 4*time.Microsecond)
		b.computeAll(force)
		switch variant {
		case 1:
			// Neighbour-search step: an extra halo pass.
			b.haloBurst(2, halo/2, 5*time.Microsecond)
			b.computeAll(mid)
		case 2:
			// PME step: an extra reduction.
			b.allreduce(2 * 1024)
			b.computeAll(mid)
		}
		b.allreduce(1024)
		b.computeAll(post)
	}
	b.finalizePhase(600 * time.Microsecond)
	return b.tr
}

// Alya models the FEM solver whose event stream appears in the paper's
// Figure 2: three consecutive MPI_Sendrecv calls followed by two separate
// MPI_Allreduce calls per iteration ("41-41-41 ___ 10 ___ 10"). The
// iteration is extremely regular (93 % hit rate) but communication-heavy:
// large halo messages keep the fraction of reclaimable idle time — and thus
// the power saving — modest.
func Alya(np int, opt Options) *trace.Trace {
	const refNP = 8
	b := newBuilder("alya", np, opt, 0.02, 5*time.Microsecond)
	iters := opt.iters(240)

	assemble := b.scaleTime(250*time.Microsecond, refNP, 0.12)
	solve := b.scaleTime(210*time.Microsecond, refNP, 0.12)
	halo := b.scaleBytes(2048*1024, refNP, 0.25)

	b.initPhase(1200 * time.Microsecond)
	for it := 0; it < iters; it++ {
		b.haloBurst(3, halo, 5*time.Microsecond)
		b.computeAll(assemble)
		b.allreduce(8 * 1024)
		b.computeAll(solve)
		b.allreduce(8 * 1024)
		// Occasional convergence hiccup: an extra correction exchange that
		// perturbs the pattern (~7 % of iterations).
		if b.rng.Float64() < 0.07 {
			b.computeAll(solve / 2)
			b.ringExchange(1, halo/4)
		}
		b.computeAll(assemble / 2)
	}
	b.finalizePhase(800 * time.Microsecond)
	return b.tr
}

// WRF models the weather code: a small regular boundary gram covering the
// long physics computation, followed by a dense burst of many short-spaced
// calls whose composition varies between several variants. Most MPI calls
// sit in the varying burst — hence the low 25–33 % call hit rate — while the
// long idle interval after the regular gram is predicted reliably, which is
// why WRF still shows large power savings (Figure 7a) and why 94 % of its
// idle intervals are shorter than 20 µs (Table I).
func WRF(np int, opt Options) *trace.Trace {
	const refNP = 8
	b := newBuilder("wrf", np, opt, 0.025, 12*time.Microsecond)
	iters := opt.iters(210)

	physics := b.scaleTime(2700*time.Microsecond, refNP, 0.03)
	radiation := b.scaleTime(350*time.Microsecond, refNP, 0.03)
	halo := b.scaleBytes(192*1024, refNP, 0.20)
	small := b.scaleBytes(96*1024, refNP, 0.20)

	b.initPhase(1500 * time.Microsecond)
	v := 0
	for it := 0; it < iters; it++ {
		// Regular boundary gram: 4 calls.
		b.haloBurst(4, halo, 3*time.Microsecond)
		// Long physics phase — the predictable idle interval.
		b.computeAll(physics)
		// Dense burst: 16–20 calls with sub-20 µs gaps, one of 5 variants.
		// The variant switches ~78 % of the time, so the burst gram is
		// mispredicted often (low call hit rate) while each variant still
		// produces an occasional run of three that gets it detected.
		if it == 0 || b.rng.Float64() < 0.78 {
			nv := b.rng.Intn(4)
			if nv >= v {
				nv++
			}
			v = nv
		}
		calls := 16 + v
		for c := 0; c < calls; c++ {
			b.computeAll(time.Duration(2+(c+v)%7) * time.Microsecond)
			if (c+v)%4 == 3 {
				b.allreduce(512)
			} else {
				b.ringExchange(1+(c+v)%3, small)
			}
		}
		b.computeAll(radiation)
	}
	b.finalizePhase(1000 * time.Microsecond)
	return b.tr
}

// NASBT models the BT pseudo-application: three directional line-solve
// sweeps per iteration, each pipelined over sqrt(NP) stages of the square
// process grid (cell exchange, then the per-stage solve block). It is the
// most regular of the workloads (97–98 % hit rate). At small scale each
// pipeline stage leaves a long reclaimable idle interval — the best case for
// lane power reduction (~50 % savings in Figure 9a) — while at 100 processes
// the per-stage computation fragments below 20 µs and the intervals merge
// into grams, which is exactly the collapse of Table I (76 % of BT-100
// intervals are shorter than 20 µs) and of the savings in Figures 7–9.
func NASBT(np int, opt Options) *trace.Trace {
	const refNP = 9
	b := newBuilder("nasbt", np, opt, 0.015, 8*time.Microsecond)
	iters := opt.iters(220)

	stages := intSqrt(np)
	dirSolve := b.scaleTime(1500*time.Microsecond, refNP, 0.08)
	stageGap := dirSolve / time.Duration(stages)
	rhs := b.scaleTime(450*time.Microsecond, refNP, 0.30)
	halo := b.scaleBytes(96*1024, refNP, 0.10)

	b.initPhase(1100 * time.Microsecond)
	for it := 0; it < iters; it++ {
		for dir := 0; dir < 3; dir++ {
			for s := 0; s < stages; s++ {
				b.ringExchange(1+dir%2, halo)
				b.computeAll(stageGap)
			}
		}
		// Residual norm check: structurally identical each iteration.
		b.allreduce(320)
		b.computeAll(rhs)
	}
	b.finalizePhase(900 * time.Microsecond)
	return b.tr
}

// intSqrt returns the integer square root of a square process count.
func intSqrt(n int) int {
	for s := 1; ; s++ {
		if s*s >= n {
			return s
		}
	}
}

// NASMG models the MG multigrid benchmark: V-cycles over grid levels with
// message sizes and inter-call gaps shrinking at coarser levels. The coarse
// levels produce many idle intervals in the awkward 20–200 µs band (Table I
// shows up to 39 % of MG's intervals there), which is why MG needs the
// largest grouping thresholds (Table III: 150–382 µs) and shows the lowest
// savings at scale.
func NASMG(np int, opt Options) *trace.Trace {
	const refNP = 8
	b := newBuilder("nasmg", np, opt, 0.025, 12*time.Microsecond)
	iters := opt.iters(170)

	fine := b.scaleTime(750*time.Microsecond, refNP, 0.02)
	msg := b.scaleBytes(768*1024, refNP, 0.30)

	b.initPhase(1000 * time.Microsecond)
	for it := 0; it < iters; it++ {
		// Occasionally the cycle depth changes (extra smoothing at the
		// coarsest level), perturbing the pattern (~12 % of iterations).
		levels := 4
		if b.rng.Float64() < 0.12 {
			levels = 3 + b.rng.Intn(3) // 3..5
		}
		// Restriction sweep: gaps shrink ~4x per level.
		for l := levels; l >= 1; l-- {
			gap := fine >> uint(2*(levels-l))
			m := msg >> uint(levels-l)
			b.ringExchange(1, m)
			b.computeAll(gap)
		}
		// Coarse solve: a burst of tiny exchanges.
		for c := 0; c < 4; c++ {
			b.computeAll(8 * time.Microsecond)
			b.ringExchange(1, msg>>uint(levels))
		}
		// Prolongation sweep back up.
		for l := 1; l <= levels; l++ {
			gap := fine >> uint(2*(levels-l))
			m := msg >> uint(levels-l)
			b.computeAll(gap / 2)
			b.ringExchange(1, m)
		}
		b.allreduce(256)
		b.computeAll(fine / 3)
	}
	b.finalizePhase(700 * time.Microsecond)
	return b.tr
}
