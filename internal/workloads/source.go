package workloads

import (
	"fmt"

	"ibpower/internal/trace"
)

// genSource streams a generated workload without ever materializing the full
// trace: each Open re-runs the generator restricted to the requested rank.
// The restriction is exact (see Options.only), so the streamed ops are
// bit-identical to the corresponding rank of Generate's trace — at the cost
// of re-running the generator's structure loop per rank. That trade is right
// when ranks are consumed one at a time (packing a trace file, offline
// grouping-threshold runs); consumers that replay all ranks concurrently
// keep using Generate.
type genSource struct {
	app string
	np  int
	opt Options
	gen Generator
}

// NewSource returns a streaming trace.Source for a registered application:
// O(one rank) memory per open cursor instead of O(trace).
func NewSource(app string, np int, opt Options) (trace.Source, error) {
	g, ok := registry[app]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown application %q (have %v)", app, Apps())
	}
	if np < 2 {
		return nil, fmt.Errorf("workloads: need at least 2 processes, got %d", np)
	}
	return &genSource{app: app, np: np, opt: opt, gen: g}, nil
}

func (s *genSource) Meta() trace.Meta { return trace.Meta{App: s.app, NP: s.np} }

func (s *genSource) Open(r int) trace.Cursor {
	opt := s.opt
	opt.only = r + 1
	tr := s.gen(s.np, opt)
	return trace.SliceCursor(tr.Ranks[r])
}
