package pmpi

import (
	"strings"
	"testing"
	"time"

	"ibpower/internal/mpi"
	"ibpower/internal/predictor"
)

func cfg() predictor.Config {
	return predictor.Config{GT: 20 * time.Microsecond, Displacement: 0.05}
}

func TestLayerValidation(t *testing.T) {
	if _, err := New(predictor.Config{GT: time.Microsecond}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// spin busy-waits so the inter-call gap comfortably exceeds GT.
func spin(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

func runIterative(t *testing.T, l *Layer, np, iters int) *Report {
	t.Helper()
	t0 := time.Now()
	err := mpi.Run(np, func(c *mpi.Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		for i := 0; i < iters; i++ {
			c.Sendrecv(right, []float64{1}, left)
			spin(300 * time.Microsecond)
			c.Allreduce([]float64{1}, mpi.Sum)
			spin(150 * time.Microsecond)
		}
		return nil
	}, mpi.WithProfiler(l.Factory()))
	if err != nil {
		t.Fatal(err)
	}
	return l.Report(time.Since(t0))
}

func TestLayerSavesPower(t *testing.T) {
	l, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	rep := runIterative(t, l, 4, 60)
	if len(rep.PerRank) != 4 {
		t.Fatalf("per-rank reports = %d", len(rep.PerRank))
	}
	if rep.AvgSaving <= 0 {
		t.Errorf("no savings on an iterative program (%.2f%%)", rep.AvgSaving)
	}
	if rep.AvgSaving > 57 {
		t.Errorf("savings %.2f%% above the physical bound", rep.AvgSaving)
	}
	if rep.AvgHitPct < 50 {
		t.Errorf("hit rate %.1f%% on a regular program", rep.AvgHitPct)
	}
	for _, rr := range rep.PerRank {
		if rr.Acct.Total() <= 0 {
			t.Errorf("rank %d has no accounted time", rr.Rank)
		}
		if rr.Stats.Calls != 120 {
			t.Errorf("rank %d observed %d calls, want 120", rr.Rank, rr.Stats.Calls)
		}
	}
}

func TestReportRendering(t *testing.T) {
	l, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	rep := runIterative(t, l, 2, 20)
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "power saving") || !strings.Contains(out, "rank") {
		t.Errorf("report output:\n%s", out)
	}
}

func TestDelayEmulation(t *testing.T) {
	l, err := New(cfg(), WithDelayEmulation())
	if err != nil {
		t.Fatal(err)
	}
	rep := runIterative(t, l, 2, 40)
	// With emulation on, any demand wake must have slept.
	for _, rr := range rep.PerRank {
		if rr.DemandWakes > 0 && rr.Slept == 0 {
			t.Errorf("rank %d: %d demand wakes but no sleep", rr.Rank, rr.DemandWakes)
		}
	}
}
