// Package pmpi is the power saving mechanism packaged as a profiling layer
// for the mini-MPI runtime (internal/mpi): the online predictor and the link
// power controller are driven from the Before/After interposition hooks, so
// any SPMD program running on the runtime gets the paper's mechanism without
// source modification — the deployment story of Section III ("our system is
// adaptable to be run within the PMPI profile layer of MPI").
//
// Because the runtime executes in real time on one host, the "link" is
// virtual: the controller tracks the power state the HCA link would be in
// against the wall clock. With delay emulation enabled, demand wakes insert
// real sleeps, reproducing the reactivation penalty an application would
// observe.
package pmpi

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ibpower/internal/mpi"
	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/stats"
	"ibpower/internal/trace"
)

// Layer owns one profiler per rank and aggregates their reports.
type Layer struct {
	cfg     predictor.Config
	name    string
	emulate bool

	mu    sync.Mutex
	ranks map[int]*RankProfiler
}

// Option configures the layer.
type Option func(*Layer)

// WithDelayEmulation makes demand wakes sleep for the remaining reactivation
// time, so the measured application slowdown is real.
func WithDelayEmulation() Option {
	return func(l *Layer) { l.emulate = true }
}

// WithPredictor selects the idle predictor from the predictor registry
// (default: the n-gram PPA). Trace-aware predictors ("oracle", "offline")
// are legal here but never predict: the live runtime has no trace to prime
// them with — exactly the deployment gap that makes online pattern
// prediction the paper's contribution.
func WithPredictor(name string) Option {
	return func(l *Layer) { l.name = name }
}

// New builds a layer with the given mechanism configuration.
func New(cfg predictor.Config, opts ...Option) (*Layer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Layer{cfg: cfg, ranks: make(map[int]*RankProfiler)}
	for _, o := range opts {
		o(l)
	}
	if err := predictor.CheckRegistered(l.name); err != nil {
		return nil, fmt.Errorf("pmpi: %w", err)
	}
	return l, nil
}

// Factory returns the profiler factory to install with mpi.WithProfiler.
func (l *Layer) Factory() func(rank int) mpi.Profiler {
	return func(rank int) mpi.Profiler {
		p := &RankProfiler{
			rank:    rank,
			pred:    predictor.MustNewNamed(l.name, l.cfg),
			ctrl:    power.NewController(l.cfg.Treact),
			emulate: l.emulate,
		}
		l.mu.Lock()
		l.ranks[rank] = p
		l.mu.Unlock()
		return p
	}
}

// RankProfiler is the per-rank mechanism instance; it runs on the rank's
// goroutine, so no locking is needed on the hot path.
type RankProfiler struct {
	rank    int
	pred    predictor.Predictor
	ctrl    *power.Controller
	emulate bool
	slept   time.Duration
}

// Before wakes the virtual link if the call needs it earlier than predicted.
func (p *RankProfiler) Before(call trace.CallID, t time.Duration) {
	ready := p.ctrl.Acquire(t)
	if ready > t && p.emulate {
		time.Sleep(ready - t)
		p.slept += ready - t
	}
}

// After feeds the completed call to the predictor and executes any shutdown.
func (p *RankProfiler) After(call trace.CallID, start, end time.Duration) {
	act := p.pred.OnCall(predictor.EventID(call), start, end)
	if act.Shutdown {
		p.ctrl.Shutdown(end, act.PredictedIdle)
	}
}

// Report is the aggregated outcome of a profiled run.
type Report struct {
	Wall       time.Duration
	PerRank    []RankReport
	AvgSaving  float64 // percent, averaged over ranks
	AvgLowFrac float64
	AvgHitPct  float64
}

// RankReport is one rank's outcome.
type RankReport struct {
	Rank        int
	Acct        power.Accounting
	Stats       predictor.Stats
	DemandWakes int
	TimerWakes  int
	Slept       time.Duration
}

// Report closes all controllers at wall-clock time end and aggregates.
func (l *Layer) Report(end time.Duration) *Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := &Report{Wall: end}
	for r := 0; r < len(l.ranks); r++ {
		p, ok := l.ranks[r]
		if !ok {
			continue
		}
		p.pred.Flush()
		p.ctrl.Finish(end)
		rr := RankReport{
			Rank:        p.rank,
			Acct:        p.ctrl.Accounting(),
			Stats:       p.pred.Stats(),
			DemandWakes: p.ctrl.DemandWakes,
			TimerWakes:  p.ctrl.TimerWakes,
			Slept:       p.slept,
		}
		rep.PerRank = append(rep.PerRank, rr)
		rep.AvgSaving += rr.Acct.SavingPct()
		rep.AvgLowFrac += rr.Acct.LowFraction()
		rep.AvgHitPct += rr.Stats.HitRatePct()
	}
	if n := float64(len(rep.PerRank)); n > 0 {
		rep.AvgSaving /= n
		rep.AvgLowFrac /= n
		rep.AvgHitPct /= n
	}
	return rep
}

// Write renders the report.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "wall time %v; avg switch power saving %.2f%% (low-power fraction %.3f, MPI call hit rate %.1f%%)\n",
		r.Wall.Round(time.Millisecond), r.AvgSaving, r.AvgLowFrac, r.AvgHitPct)
	t := stats.NewTable("rank", "saving[%]", "low", "full", "shift", "timer wakes", "demand wakes", "slept")
	for _, rr := range r.PerRank {
		t.Row(rr.Rank, rr.Acct.SavingPct(),
			rr.Acct.Low.Round(time.Millisecond),
			rr.Acct.Full.Round(time.Millisecond),
			rr.Acct.Shift.Round(time.Millisecond),
			rr.TimerWakes, rr.DemandWakes, rr.Slept.Round(time.Millisecond))
	}
	return t.Write(w)
}
