// Package ngram implements the paper's Pattern Prediction Algorithm (PPA):
// on-the-fly detection of repeating patterns in a per-process stream of MPI
// events using n-gram extraction (Section III-A, Algorithms 1 and 2).
//
// MPI events are first grouped into grams: consecutive events whose
// separating idle time is below the grouping threshold GT belong to the same
// gram (Algorithm 1). The gram stream is then scanned for the shortest
// pattern (sequence of grams) that repeats consecutively; after three
// consecutive appearances the pattern is declared detected and subsequent
// occurrences are predicted. A pattern that was detected once is re-predicted
// immediately when it reappears after a misprediction (Section III-A policy).
package ngram

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EventID identifies an event type in the stream (an MPI call ID).
type EventID uint8

// Gram is a maximal group of consecutive events whose inter-event idle times
// are all below the grouping threshold.
type Gram struct {
	IDs       []EventID     // event types, in order; shared read-only between same-shape grams
	Key       string        // canonical representation, e.g. "41-41-41"
	GapBefore time.Duration // idle time preceding the gram's first event
	Start     time.Duration // timestamp of the first event
	End       time.Duration // completion timestamp of the last event
}

// NumCalls returns the number of MPI events in the gram.
func (g *Gram) NumCalls() int { return len(g.IDs) }

// GramKey renders a gram identity string from event IDs, matching the
// paper's notation ("41-41-41").
func GramKey(ids []EventID) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	return b.String()
}

// Builder forms grams from an event stream per Algorithm 1. Events are fed
// with the idle time that preceded them; a gram is finalized when an event
// arrives after an idle period of at least GT (the grouping threshold).
type Builder struct {
	gt      time.Duration
	cur     []EventID
	curGap  time.Duration
	start   time.Duration
	end     time.Duration
	started bool

	raw  []byte // scratch for the proto intern lookup
	done Gram   // shared gram returned by AddShared/FlushShared
}

// gramProto is the interned identity of one distinct gram shape: the
// canonical key string and a shared read-only ID slice. Shapes are interned
// once per process (GT sweeps build thousands of short-lived builders over
// the same call streams; per-builder caches would re-pay the cold misses
// every time).
type gramProto struct {
	key string
	ids []EventID
}

var (
	protoMu sync.RWMutex
	protos  = make(map[string]gramProto) // keyed by raw event-ID bytes
)

// internShape returns the interned identity for the event sequence in cur,
// whose raw byte rendering is raw. Allocation-free for known shapes.
func internShape(cur []EventID, raw []byte) gramProto {
	protoMu.RLock()
	p, ok := protos[string(raw)] // no-copy map lookup
	protoMu.RUnlock()
	if ok {
		return p
	}
	ids := make([]EventID, len(cur))
	copy(ids, cur)
	p = gramProto{key: GramKey(ids), ids: ids}
	protoMu.Lock()
	if prev, ok := protos[string(raw)]; ok {
		p = prev // lost the race; share the first interned identity
	} else {
		protos[string(append([]byte(nil), raw...))] = p
	}
	protoMu.Unlock()
	return p
}

// NewBuilder returns a gram builder with grouping threshold gt. GT must be
// at least 2·Treact for lane power management to be profitable (Section
// IV-C); the builder does not enforce that policy, callers do.
func NewBuilder(gt time.Duration) *Builder {
	if gt <= 0 {
		panic(fmt.Sprintf("ngram: non-positive grouping threshold %v", gt))
	}
	return &Builder{gt: gt}
}

// GT returns the grouping threshold.
func (b *Builder) GT() time.Duration { return b.gt }

// Add feeds one event occupying [start, end]. idleBefore is the idle time
// since the previous event ended. When the event begins a new gram, the
// previous (now finalized) gram is returned; otherwise Add returns nil.
// The returned Gram is freshly allocated and may be retained by the caller;
// its IDs and Key are interned and shared between same-shape grams.
func (b *Builder) Add(id EventID, idleBefore time.Duration, start, end time.Duration) *Gram {
	g := b.AddShared(id, idleBefore, start, end)
	if g == nil {
		return nil
	}
	out := *g
	return &out
}

// AddShared is Add returning a builder-owned Gram that is overwritten by the
// next finalization. Consumers that hand the gram straight to a detector
// (the predictor hot path) use it to finalize grams without allocating; the
// Key and IDs fields point at interned per-shape data and stay valid
// indefinitely, only the Gram struct itself is reused.
func (b *Builder) AddShared(id EventID, idleBefore time.Duration, start, end time.Duration) *Gram {
	var done *Gram
	if b.started && idleBefore >= b.gt {
		done = b.take()
		done.GapBefore = b.curGap
		b.curGap = idleBefore
	}
	if !b.started {
		b.started = true
		b.curGap = idleBefore
		b.start = start
	}
	if len(b.cur) == 0 {
		b.start = start
	}
	b.cur = append(b.cur, id)
	b.end = end
	return done
}

// Flush finalizes and returns the gram under construction, or nil when
// empty. The builder can keep accepting events afterwards.
func (b *Builder) Flush() *Gram {
	g := b.FlushShared()
	if g == nil {
		return nil
	}
	out := *g
	return &out
}

// FlushShared is Flush returning the builder-owned shared Gram (see
// AddShared).
func (b *Builder) FlushShared() *Gram {
	if len(b.cur) == 0 {
		return nil
	}
	g := b.take()
	g.GapBefore = b.curGap
	return g
}

// take closes the current gram into the builder-owned shared Gram without
// assigning its gap. The gram's IDs and Key come from the process-wide
// shape intern table, so finalizing a previously seen shape allocates
// nothing.
func (b *Builder) take() *Gram {
	b.raw = b.raw[:0]
	for _, id := range b.cur {
		b.raw = append(b.raw, byte(id))
	}
	p := internShape(b.cur, b.raw)
	b.done = Gram{IDs: p.ids, Key: p.key, Start: b.start, End: b.end}
	b.cur = b.cur[:0]
	return &b.done
}

// CurrentLen returns the number of events in the gram under construction.
func (b *Builder) CurrentLen() int { return len(b.cur) }

// Current returns the event IDs of the gram under construction without
// copying. The slice aliases the builder's internal buffer: it is read-only
// and only valid until the next Add or Flush.
func (b *Builder) Current() []EventID { return b.cur }

// CurrentIDs returns a copy of the event IDs in the gram under construction.
func (b *Builder) CurrentIDs() []EventID {
	out := make([]EventID, len(b.cur))
	copy(out, b.cur)
	return out
}
