package ngram

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

// feed pushes a synthetic event stream through a builder/detector pair. Each
// element of ids is one event; gaps[i] is the idle time before event i.
func feed(t *testing.T, b *Builder, d *Detector, ids []EventID, gaps []time.Duration) {
	if t != nil {
		t.Helper()
	}
	var now time.Duration
	for i, id := range ids {
		now += gaps[i]
		if g := b.Add(id, gaps[i], now, now); g != nil {
			d.AddGram(g)
		}
	}
	if g := b.Flush(); g != nil {
		d.AddGram(g)
	}
}

func TestGramKey(t *testing.T) {
	if k := GramKey([]EventID{41, 41, 41}); k != "41-41-41" {
		t.Errorf("GramKey = %q, want 41-41-41", k)
	}
	if k := GramKey(nil); k != "" {
		t.Errorf("GramKey(nil) = %q, want empty", k)
	}
}

func TestBuilderGroupsByGT(t *testing.T) {
	b := NewBuilder(20 * us)
	var grams []*Gram
	add := func(id EventID, idle time.Duration) {
		if g := b.Add(id, idle, 0, 0); g != nil {
			grams = append(grams, g)
		}
	}
	// 41,41,41 close together; then 10 after a long gap; then 10 again after
	// a long gap — the paper's Figure 2 stream shape.
	add(41, 0)
	add(41, 5*us)
	add(41, 5*us)
	add(10, 300*us)
	add(10, 250*us)
	if g := b.Flush(); g != nil {
		grams = append(grams, g)
	}
	if len(grams) != 3 {
		t.Fatalf("got %d grams, want 3", len(grams))
	}
	if grams[0].Key != "41-41-41" || grams[1].Key != "10" || grams[2].Key != "10" {
		t.Errorf("gram keys = %q %q %q", grams[0].Key, grams[1].Key, grams[2].Key)
	}
	if grams[1].GapBefore != 300*us {
		t.Errorf("gram 1 gap = %v, want 300µs", grams[1].GapBefore)
	}
	if grams[0].NumCalls() != 3 || grams[1].NumCalls() != 1 {
		t.Errorf("NumCalls = %d, %d; want 3, 1", grams[0].NumCalls(), grams[1].NumCalls())
	}
}

func TestBuilderBoundaryExactlyGT(t *testing.T) {
	// An idle time exactly equal to GT starts a new gram (Algorithm 1 groups
	// only when previousIdleTime < groupingThreshold).
	b := NewBuilder(20 * us)
	if g := b.Add(1, 0, 0, 0); g != nil {
		t.Fatal("first event must not finalize a gram")
	}
	g := b.Add(2, 20*us, 0, 0)
	if g == nil || g.Key != "1" {
		t.Fatalf("idle == GT must close the gram, got %v", g)
	}
}

func TestBuilderPanicsOnBadGT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(0) must panic")
		}
	}()
	NewBuilder(0)
}

// periodicStream builds a stream repeating the given iteration of
// (id, gap) pairs n times.
func periodicStream(iter []EventID, gapLong time.Duration, n int) ([]EventID, []time.Duration) {
	var ids []EventID
	var gaps []time.Duration
	for i := 0; i < n; i++ {
		for j, id := range iter {
			ids = append(ids, id)
			if j == 0 {
				gaps = append(gaps, gapLong)
			} else {
				gaps = append(gaps, gapLong+time.Duration(j)*us)
			}
		}
	}
	return ids, gaps
}

func TestDetectorFindsPeriodicPattern(t *testing.T) {
	for _, period := range []int{2, 3, 4, 5} {
		iter := make([]EventID, period)
		for i := range iter {
			iter[i] = EventID(10 + i)
		}
		b := NewBuilder(20 * us)
		d := NewDetector(0)
		ids, gaps := periodicStream(iter, 100*us, 8)
		feed(t, b, d, ids, gaps)
		st := d.Stats()
		if st.Detections == 0 {
			t.Errorf("period %d: no pattern detected", period)
		}
		if !d.Predicting() {
			t.Errorf("period %d: not predicting at end", period)
		}
		if d.Active() != nil && d.Active().Size() != period {
			t.Errorf("period %d: detected size %d", period, d.Active().Size())
		}
	}
}

func TestDetectorRequiresThreeAppearances(t *testing.T) {
	// Two appearances of a pattern must NOT trigger prediction.
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2}, 100*us, 2)
	feed(t, b, d, ids, gaps)
	if d.Predicting() {
		t.Fatal("predicting after only two appearances")
	}
	// The third appearance flips it.
	b2 := NewBuilder(20 * us)
	d2 := NewDetector(0)
	ids, gaps = periodicStream([]EventID{1, 2}, 100*us, 4)
	feed(t, b2, d2, ids, gaps)
	if !d2.Predicting() {
		t.Fatal("not predicting after three appearances")
	}
}

func TestDetectorFigure3Walkthrough(t *testing.T) {
	// The paper's Figure 3: stream 41-41-41, 10, 10 repeating; the pattern
	// "41-41-41_10_10" must be detected and predicted.
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	var ids []EventID
	var gaps []time.Duration
	for it := 0; it < 4; it++ {
		ids = append(ids, 41, 41, 41, 10, 10)
		gaps = append(gaps, 300*us, 5*us, 5*us, 200*us, 200*us)
	}
	feed(t, b, d, ids, gaps)
	if !d.Predicting() {
		t.Fatal("not predicting")
	}
	p := d.Active()
	if p.Key != "41-41-41_10_10" && p.Key != "10_41-41-41_10" && p.Key != "10_10_41-41-41" {
		t.Fatalf("active pattern %q is not a rotation of 41-41-41_10_10", p.Key)
	}
	if p.Size() != 3 {
		t.Errorf("pattern size = %d, want 3", p.Size())
	}
	if p.NumCalls != 5 {
		t.Errorf("pattern NumCalls = %d, want 5", p.NumCalls)
	}
}

func TestDetectorImmediateReactivation(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2}, 100*us, 5)
	// Disturb with two foreign grams (the second kills the wildcard), then
	// resume the pattern.
	ids = append(ids, 7, 8)
	gaps = append(gaps, 500*us, 500*us)
	moreIDs, moreGaps := periodicStream([]EventID{1, 2}, 100*us, 1)
	ids = append(ids, moreIDs...)
	gaps = append(gaps, moreGaps...)
	feed(t, b, d, ids, gaps)
	if !d.Predicting() {
		t.Fatal("pattern not re-activated on first reappearance")
	}
	if d.Stats().Reactivations == 0 {
		t.Error("no reactivation recorded")
	}
}

func TestDetectorWildcardSubstitution(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2}, 100*us, 4)
	// One unknown gram in place of "2", then the pattern continues.
	ids = append(ids, 1, 9, 1, 2)
	gaps = append(gaps, 100*us, 101*us, 100*us, 101*us)
	feed(t, b, d, ids, gaps)
	st := d.Stats()
	if st.WildcardGrams == 0 {
		t.Error("expected a wildcard substitution")
	}
	if !d.Predicting() {
		t.Error("prediction should survive a single substitution")
	}
}

func TestDetectorMaxPatternSizeFreeze(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2, 3}, 100*us, 10)
	feed(t, b, d, ids, gaps)
	st := d.Stats()
	if st.MaxPatternFrozen != 3 {
		t.Errorf("frozen max pattern size = %d, want 3", st.MaxPatternFrozen)
	}
}

func TestPatternGapEstimates(t *testing.T) {
	p := &Pattern{Key: "a_b", Grams: []string{"a", "b"}}
	p.ObserveGap(0, 100*us)
	p.ObserveGap(0, 200*us)
	p.ObserveGap(0, 150*us)
	if m := p.MeanGap(0); m != 150*us {
		t.Errorf("MeanGap = %v, want 150µs", m)
	}
	if s := p.SafeGap(0); s != 100*us {
		t.Errorf("SafeGap = %v, want 100µs", s)
	}
	if p.MeanGap(5) != 0 || p.SafeGap(5) != 0 {
		t.Error("out-of-range gap estimates must be zero")
	}
	// The window holds gapWindow entries: old minima age out.
	for i := 0; i < gapWindow; i++ {
		p.ObserveGap(0, 300*us)
	}
	if s := p.SafeGap(0); s != 300*us {
		t.Errorf("SafeGap after window turnover = %v, want 300µs", s)
	}
}

func TestDetectorPredictedGap(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2}, 100*us, 6)
	feed(t, b, d, ids, gaps)
	if !d.Predicting() {
		t.Fatal("not predicting")
	}
	g := d.PredictedGapAfterExpected()
	if g < 90*us || g > 120*us {
		t.Errorf("predicted gap %v outside the stream's gap range", g)
	}
}

// TestDetectorSteadyStateHitRate checks that on a perfectly periodic stream
// the detector eventually predicts every gram.
func TestDetectorSteadyStateHitRate(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	const reps = 50
	ids, gaps := periodicStream([]EventID{1, 2, 3}, 100*us, reps)
	feed(t, b, d, ids, gaps)
	st := d.Stats()
	// 3 grams per rep; detection completes within the first few reps.
	if st.PredictedGrams < (reps-5)*3 {
		t.Errorf("predicted %d grams of %d", st.PredictedGrams, st.GramsFormed)
	}
	if st.Mispredictions != 0 {
		t.Errorf("mispredictions on a periodic stream: %d", st.Mispredictions)
	}
}

// Property: the detector never predicts before three appearances of any
// pattern have been seen, for random periodic shapes.
func TestDetectorThreeAppearancePolicyProperty(t *testing.T) {
	f := func(seed int64, periodRaw uint8) bool {
		period := int(periodRaw%4) + 2 // 2..5
		rng := rand.New(rand.NewSource(seed))
		iter := make([]EventID, period)
		for i := range iter {
			iter[i] = EventID(rng.Intn(5) + 1)
		}
		// Streams with repeated IDs inside the iteration can legitimately
		// form shorter periods; restrict to distinct IDs.
		seen := map[EventID]bool{}
		for i := range iter {
			for seen[iter[i]] {
				iter[i] = EventID(rng.Intn(200) + 1)
			}
			seen[iter[i]] = true
		}
		b := NewBuilder(20 * us)
		d := NewDetector(0)
		ids, gaps := periodicStream(iter, 100*us, 2)
		// Two appearances: never predicting.
		feed(nil, b, d, ids, gaps)
		return !d.Predicting()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: on a periodic stream, once predicting, the predicted gap equals
// one of the observed gaps (conservative minimum of the window).
func TestDetectorGapPredictionProperty(t *testing.T) {
	f := func(gapsRaw [3]uint16) bool {
		g1 := time.Duration(gapsRaw[0]%400+50) * us
		b := NewBuilder(20 * us)
		d := NewDetector(0)
		ids, gaps := periodicStream([]EventID{1, 2}, g1, 10)
		feed(nil, b, d, ids, gaps)
		if !d.Predicting() {
			return false
		}
		got := d.PredictedGapAfterExpected()
		return got >= g1 && got <= g1+2*us
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDetectorStatsPatternList(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	ids, gaps := periodicStream([]EventID{1, 2}, 100*us, 6)
	feed(t, b, d, ids, gaps)
	if n := len(d.Patterns()); n == 0 {
		t.Error("pattern list empty after detection")
	}
	for k, p := range d.Patterns() {
		if p.Key != k {
			t.Errorf("pattern map key %q != pattern key %q", k, p.Key)
		}
	}
}

func TestExpectedGramIDs(t *testing.T) {
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	var ids []EventID
	var gaps []time.Duration
	for it := 0; it < 5; it++ {
		ids = append(ids, 41, 41, 10)
		gaps = append(gaps, 300*us, 5*us, 200*us)
	}
	feed(t, b, d, ids, gaps)
	if !d.Predicting() {
		t.Fatal("not predicting")
	}
	exp, ok := d.Expected()
	if !ok {
		t.Fatal("no expected gram")
	}
	key := GramKey(exp)
	if key != "41-41" && key != "10" {
		t.Errorf("expected gram %q is not part of the pattern", key)
	}
}

// Property: arbitrary (non-periodic) random streams never crash the
// detector, keep counters consistent, and bound the pattern list by the
// number of distinct tails seen.
func TestDetectorRandomStreamRobustness(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(20 * us)
		d := NewDetector(0)
		var now time.Duration
		count := int(n%500) + 10
		for i := 0; i < count; i++ {
			gap := time.Duration(rng.Intn(400)) * us
			now += gap
			if g := b.Add(EventID(rng.Intn(6)+1), gap, now, now); g != nil {
				d.AddGram(g)
			}
		}
		if g := b.Flush(); g != nil {
			d.AddGram(g)
		}
		st := d.Stats()
		if st.PredictedGrams+st.Invocations > st.GramsFormed+st.WildcardGrams {
			return false
		}
		return st.PredictedCalls <= st.TotalCalls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func ExampleGramKey() {
	fmt.Println(GramKey([]EventID{41, 41, 41}))
	fmt.Println(GramKey([]EventID{10}))
	// Output:
	// 41-41-41
	// 10
}
