package ngram

import (
	"testing"
	"time"
)

// steadyDetector builds a detector predicting the Figure 3 pattern and
// returns one aligned pattern appearance of finalized grams: feeding them
// cyclically keeps the detector in prediction mode forever.
func steadyDetector(t *testing.T) ([]*Gram, *Detector) {
	t.Helper()
	b := NewBuilder(20 * us)
	d := NewDetector(0)
	var grams []*Gram
	var now time.Duration
	for it := 0; it < 8; it++ {
		for _, ev := range []struct {
			id  EventID
			gap time.Duration
		}{
			{41, 300 * us}, {41, 5 * us}, {41, 5 * us},
			{10, 200 * us}, {10, 200 * us},
		} {
			now += ev.gap
			if g := b.Add(ev.id, ev.gap, now, now); g != nil {
				d.AddGram(g)
				if it >= 4 {
					grams = append(grams, g)
				}
			}
		}
	}
	if !d.Predicting() {
		t.Fatal("walkthrough stream did not reach prediction mode")
	}
	size := d.Active().Size()
	return grams[len(grams)-size:], d
}

// TestAddGramSteadyStateNoAllocs is the hot-path regression test: while a
// detected pattern is being predicted over interned grams, AddGram must not
// allocate (ring-buffered history, integer gram comparisons, fixed-size gap
// windows).
func TestAddGramSteadyStateNoAllocs(t *testing.T) {
	grams, d := steadyDetector(t)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		d.AddGram(grams[i%len(grams)])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state AddGram allocated %.1f/op, want 0", allocs)
	}
	if !d.Predicting() {
		t.Error("detector dropped out of prediction mode during steady state")
	}
	if d.Stats().Mispredictions != 0 {
		t.Errorf("mispredictions on the steady stream: %d", d.Stats().Mispredictions)
	}
}

// TestDetectorHistoryBounded asserts detector memory is O(detection window):
// the gram history ring never grows past 3*maxSize however long the stream.
func TestDetectorHistoryBounded(t *testing.T) {
	d := NewDetector(4)
	if len(d.hist) != 12 {
		t.Fatalf("history capacity = %d, want 3*4", len(d.hist))
	}
	b := NewBuilder(20 * us)
	var now time.Duration
	for i := 0; i < 100000; i++ {
		gap := 100 * us
		now += gap
		if g := b.Add(EventID(i%3+1), gap, now, now); g != nil {
			d.AddGram(g)
		}
	}
	if len(d.hist) != 12 {
		t.Errorf("history grew to %d entries, want fixed 12", len(d.hist))
	}
	if d.total < 90000 {
		t.Errorf("absolute gram counter = %d, expected the full stream", d.total)
	}
}

// TestBuilderSharedGram covers the AddShared/FlushShared contract: the Gram
// struct is reused but Key and IDs stay valid across finalizations.
func TestBuilderSharedGram(t *testing.T) {
	b := NewBuilder(20 * us)
	b.AddShared(41, 0, 0, 0)
	g1 := b.AddShared(10, 100*us, 100*us, 100*us)
	if g1 == nil || g1.Key != "41" {
		t.Fatalf("first finalized gram = %+v, want key 41", g1)
	}
	key1, ids1 := g1.Key, g1.IDs
	g2 := b.FlushShared()
	if g2 == nil || g2.Key != "10" {
		t.Fatalf("flushed gram = %+v, want key 10", g2)
	}
	if g1 != g2 {
		t.Error("AddShared and FlushShared must reuse the builder-owned Gram")
	}
	// The interned identity of the first gram outlives the reuse.
	if key1 != "41" || len(ids1) != 1 || ids1[0] != 41 {
		t.Errorf("interned identity mutated: key=%q ids=%v", key1, ids1)
	}
	// Add (the copying variant) returns distinct Gram structs.
	b2 := NewBuilder(20 * us)
	b2.Add(1, 0, 0, 0)
	c1 := b2.Add(2, 100*us, 0, 0)
	b2.Add(3, 100*us, 0, 0)
	c2 := b2.Flush()
	if c1 == c2 {
		t.Error("Add/Flush must return distinct Gram structs")
	}
	if c1.Key != "1" || c2.Key != "3" {
		t.Errorf("retained grams corrupted: %q, %q", c1.Key, c2.Key)
	}
}

// TestGramShapeInterning asserts same-shape grams share one interned Key
// string and IDs slice, across builders.
func TestGramShapeInterning(t *testing.T) {
	mk := func() *Gram {
		b := NewBuilder(20 * us)
		b.Add(41, 0, 0, 0)
		b.Add(41, 5*us, 0, 0)
		return b.Flush()
	}
	g1, g2 := mk(), mk()
	if g1.Key != "41-41" {
		t.Fatalf("key = %q", g1.Key)
	}
	if len(g1.IDs) != 2 || &g1.IDs[0] != &g2.IDs[0] {
		t.Error("same-shape grams from different builders must share the interned IDs slice")
	}
}
