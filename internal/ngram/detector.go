package ngram

import "time"

// DefaultMaxPatternSize bounds pattern growth before a pattern is detected.
// Once a pattern is detected, maxPatternSize is frozen to the detected size
// so that later iterations are predicted from recent timings rather than
// merging many iterations into one huge pattern (Algorithm 2, line 32).
const DefaultMaxPatternSize = 16

// GramID is a dense identifier interned for a gram key. Interning happens
// once per distinct gram at gram-formation time; every hot comparison the
// detector performs afterwards (periodicity run lengths, pattern matching,
// re-anchoring) is an integer comparison instead of a string comparison.
type GramID uint32

// DetectorStats aggregates PPA bookkeeping used by Table IV and Table III.
type DetectorStats struct {
	GramsFormed      int // grams fed to the detector
	Invocations      int // grams processed with full PPA active (prediction off)
	Detections       int // patterns declared detected (fresh)
	Reactivations    int // immediate re-predictions of a known pattern
	Mispredictions   int // pattern mispredictions (gram mismatch)
	WildcardGrams    int // mismatched grams absorbed as one-off substitutions
	PredictedGrams   int // grams matched while predicting
	PredictedCalls   int // MPI calls inside matched grams
	TotalCalls       int // MPI calls inside all grams fed
	PatternListSize  int // live entries in the pattern list
	MaxPatternFrozen int // frozen maxPatternSize (0 if never detected)
}

// histEntry is one gram observation in the bounded history ring.
type histEntry struct {
	id  GramID
	gap time.Duration // idle time before the gram
}

// Detector implements the pattern prediction algorithm over a stream of
// finalized grams. Detector memory is O(detection window + distinct grams +
// pattern list), not O(trace): the gram history is a ring bounded to
// 3*maxSize entries, which is exactly how far the algorithm ever looks back
// (a fresh detection needs three consecutive occurrences of a pattern of at
// most maxSize grams; re-anchoring walks back at most maxSize grams).
type Detector struct {
	maxSize int
	window  int // ring capacity: 3 * the construction-time maxSize
	frozen  bool

	// Gram intern table: the only map[string] lookup on the per-gram path.
	gramIDs map[string]GramID
	keys    []string    // GramID -> canonical key
	defs    [][]EventID // GramID -> event IDs
	known   []bool      // GramID -> appears in a detected pattern

	// hist holds the last `window` grams: the gram with absolute index i
	// (i < total) lives at hist[i%window] while i >= total-window.
	hist   []histEntry
	total  int
	runLen []int // runLen[s] = trailing length of matches gram[i]==gram[i-s]

	pl       map[string]*Pattern // keyed by the human-readable pattern key
	plByIDs  map[string]*Pattern // keyed by packed GramID bytes (alloc-free lookup)
	idKey    []byte              // plByIDs lookup scratch
	detected []*Pattern          // patterns with Detected=true, for fast re-prediction

	active   *Pattern
	phase    int  // index in active of the next expected gram
	wildcard bool // the last gram was accepted as a one-off substitution

	cands []reanchorCand // reanchor scratch, reused across invocations

	stats DetectorStats
}

// NewDetector returns a detector with the given maximum pattern size (grams
// per pattern). maxSize <= 0 selects DefaultMaxPatternSize.
func NewDetector(maxSize int) *Detector {
	if maxSize <= 0 {
		maxSize = DefaultMaxPatternSize
	}
	return &Detector{
		maxSize: maxSize,
		window:  3 * maxSize,
		gramIDs: make(map[string]GramID),
		hist:    make([]histEntry, 3*maxSize),
		runLen:  make([]int, maxSize+1),
		pl:      make(map[string]*Pattern),
		plByIDs: make(map[string]*Pattern),
	}
}

// gramAt returns the gram ID at absolute history index i; i must be within
// the last `window` grams.
func (d *Detector) gramAt(i int) GramID { return d.hist[i%d.window].id }

// gapAt returns the idle time before the gram at absolute history index i.
func (d *Detector) gapAt(i int) time.Duration { return d.hist[i%d.window].gap }

// intern maps a gram to its dense ID, assigning a new one for a first-seen
// key. After the first appearance this is a single map lookup with no
// allocation.
func (d *Detector) intern(g *Gram) GramID {
	if id, ok := d.gramIDs[g.Key]; ok {
		return id
	}
	id := GramID(len(d.keys))
	d.gramIDs[g.Key] = id
	d.keys = append(d.keys, g.Key)
	// Grams hand out interned, immutable ID slices (Builder shares one per
	// shape), so the definition can be stored without copying.
	d.defs = append(d.defs, g.IDs)
	d.known = append(d.known, false)
	return id
}

// Predicting reports whether a detected pattern is currently driving
// predictions (the power mode control component is active).
func (d *Detector) Predicting() bool { return d.active != nil }

// Active returns the pattern currently driving predictions, or nil.
func (d *Detector) Active() *Pattern { return d.active }

// Phase returns the index within the active pattern of the next expected
// gram.
func (d *Detector) Phase() int { return d.phase }

// Expected returns the event IDs of the next expected gram while predicting.
// The returned slice is shared and read-only.
func (d *Detector) Expected() ([]EventID, bool) {
	if d.active == nil {
		return nil, false
	}
	return d.defs[d.active.ids[d.phase]], true
}

// PredictedGapAfterExpected returns the conservative idle estimate that
// follows the currently expected gram (the gap before the pattern's next
// gram): the minimum over the recent observation window. Zero means no
// estimate is available.
func (d *Detector) PredictedGapAfterExpected() time.Duration {
	if d.active == nil {
		return 0
	}
	next := (d.phase + 1) % d.active.Size()
	return d.active.SafeGap(next)
}

// Stats returns a snapshot of detector statistics.
func (d *Detector) Stats() DetectorStats {
	s := d.stats
	s.PatternListSize = len(d.pl)
	if d.frozen {
		s.MaxPatternFrozen = d.maxSize
	}
	return s
}

// Patterns returns the pattern list (live view; callers must not mutate).
func (d *Detector) Patterns() map[string]*Pattern { return d.pl }

// AddGram feeds one finalized gram. It returns true when this gram switched
// the detector into (or kept it in) prediction mode. In steady state —
// predicting an already-detected pattern over already-interned grams — this
// path performs no allocation.
func (d *Detector) AddGram(g *Gram) bool {
	d.stats.GramsFormed++
	d.stats.TotalCalls += g.NumCalls()
	id := d.intern(g)
	i := d.total
	d.hist[i%d.window] = histEntry{id: id, gap: g.GapBefore}
	d.total++

	// Maintain periodicity run lengths. While the power mode control
	// component is active the core of the prediction part is disabled
	// (Section III); we still keep runLen consistent so that a later
	// misprediction can restart detection without a cold start.
	for s := 1; s <= d.maxSize; s++ {
		if i >= s && id == d.gramAt(i-s) {
			d.runLen[s]++
		} else {
			d.runLen[s] = 0
		}
	}

	if d.active != nil {
		if id == d.active.ids[d.phase] {
			// Correct prediction: refresh the timing estimate for this gap
			// and advance to the next gram of the pattern.
			d.active.ObserveGap(d.phase, g.GapBefore)
			if d.phase == 0 {
				d.active.Freq++
			}
			d.phase = (d.phase + 1) % d.active.Size()
			d.wildcard = false
			d.stats.PredictedGrams++
			d.stats.PredictedCalls += g.NumCalls()
			return true
		}
		d.stats.Mispredictions++
		// One-off substitution: a mismatched gram that belongs to no
		// detected pattern (e.g. an alternative communication variant of
		// the same iteration slot) advances the phase instead of dropping
		// prediction, so the regular grams around it stay predicted. A
		// second consecutive mismatch deactivates. This is the timing-style
		// misprediction of Section III-B that does not force a PPA restart.
		if !d.wildcard && !d.known[id] {
			d.wildcard = true
			d.phase = (d.phase + 1) % d.active.Size()
			d.stats.WildcardGrams++
			return true
		}
		// Pattern misprediction: relaunch the pattern prediction part
		// (Section III-B: "the patternPrediction variable is set to False
		// and the pattern prediction part is relaunched again").
		d.active = nil
		d.phase = 0
		d.wildcard = false
	}

	// Full PPA runs on this gram.
	d.stats.Invocations++

	// Immediate re-prediction: a previously detected pattern that appears
	// again is declared repeatable on its first new appearance — without
	// waiting for three consecutive repeats (Section III-A policy). The
	// current gram is aligned against every detected pattern; ambiguity is
	// resolved by looking further back in the gram stream and finally by
	// pattern frequency.
	if d.reanchor(i, id) {
		return true
	}

	// Fresh detection: smallest period s whose pattern occupies the tail
	// three consecutive times (runLen >= 2s means grams[i-2s+1..i] repeat
	// the s-gram twice after its first appearance).
	for s := 2; s <= d.maxSize; s++ {
		if i+1 < 3*s || d.runLen[s] < 2*s {
			continue
		}
		d.detect(s, i)
		return true
	}
	return false
}

// reanchorCand is one (pattern, phase) alignment of the current gram.
type reanchorCand struct {
	p *Pattern
	q int // phase of the matched gram inside p
}

// reanchor tries to resume prediction at the gram ending at index i by
// locating it inside a previously detected pattern. It returns true when a
// pattern was (re)activated with the phase advanced past the matched gram.
func (d *Detector) reanchor(i int, id GramID) bool {
	cands := d.cands[:0]
	for _, p := range d.detected {
		for q, gid := range p.ids {
			if gid == id {
				cands = append(cands, reanchorCand{p, q})
			}
		}
	}
	d.cands = cands[:0] // keep grown scratch capacity for the next call
	if len(cands) == 0 {
		return false
	}
	// Disambiguate by walking backwards through the gram stream; the depth
	// never exceeds the history window.
	for depth := 1; len(cands) > 1 && depth <= d.maxSize && i-depth >= 0; depth++ {
		prev := d.gramAt(i - depth)
		// In-place compaction: the write index never passes the read index,
		// and when nothing matches the original candidates stay intact.
		filtered := cands[:0]
		for _, c := range cands {
			s := c.p.Size()
			idx := ((c.q-depth)%s + s) % s
			if c.p.ids[idx] == prev {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			break // history diverges from every candidate; keep all, use frequency
		}
		cands = filtered
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.p.Freq > best.p.Freq {
			best = c
		}
	}
	d.active = best.p
	d.phase = (best.q + 1) % best.p.Size()
	d.wildcard = false
	d.stats.Reactivations++
	return true
}

// detect declares the s-gram pattern ending at index i as predicted.
func (d *Detector) detect(s, i int) {
	// Re-detections of a known pattern (the common case after a prediction
	// relaunch) resolve through the packed-ID index without building the
	// key strings again.
	d.idKey = d.idKey[:0]
	for j := 0; j < s; j++ {
		gid := d.gramAt(i - s + 1 + j)
		d.idKey = append(d.idKey, byte(gid), byte(gid>>8), byte(gid>>16), byte(gid>>24))
	}
	p, ok := d.plByIDs[string(d.idKey)] // alloc-free lookup on repeats
	if !ok {
		ids := make([]GramID, s)
		keys := make([]string, s)
		nc := 0
		for j := 0; j < s; j++ {
			ids[j] = d.gramAt(i - s + 1 + j)
			keys[j] = d.keys[ids[j]]
			nc += len(d.defs[ids[j]])
		}
		p = &Pattern{Key: PatternKey(keys), Grams: keys, ids: ids, NumCalls: nc}
		d.pl[p.Key] = p
		d.plByIDs[string(d.idKey)] = p
	}
	if !p.Detected {
		p.Detected = true
		d.detected = append(d.detected, p)
		d.stats.Detections++
		for _, gid := range p.ids {
			d.known[gid] = true
		}
	}
	// Freeze the maximum pattern size to the natural iteration size so the
	// algorithm does not keep merging iterations into ever larger patterns.
	// The history window keeps its construction-time capacity; only the
	// lookback shrinks.
	if !d.frozen || s < d.maxSize {
		d.maxSize = s
		d.frozen = true
		if len(d.runLen) <= d.maxSize {
			d.runLen = d.runLen[:d.maxSize+1]
		}
	}
	// Seed gap averages from the three observed occurrences. Occurrence o
	// starts at i-(3-o)*s+1 for o in 1..3; gram j of occurrence o sits at
	// start+j. The gap before the first gram of the first occurrence may
	// predate the periodic region, so it is skipped. All three occurrences
	// lie within the 3*maxSize history window.
	p.Freq += 3
	for o := 0; o < 3; o++ {
		start := i - (3-o)*s + 1
		if start < 0 {
			continue
		}
		for j := 0; j < s; j++ {
			if o == 0 && j == 0 {
				continue
			}
			p.ObserveGap(j, d.gapAt(start+j))
		}
		if len(p.Positions) < 16 {
			p.Positions = append(p.Positions, start)
		}
	}
	// Switch to prediction mode: the gram at index i is the last gram of an
	// appearance of p, so the next expected gram is p.Grams[0].
	d.active = p
	d.phase = 0
	d.wildcard = false
}
