package ngram

import "time"

// DefaultMaxPatternSize bounds pattern growth before a pattern is detected.
// Once a pattern is detected, maxPatternSize is frozen to the detected size
// so that later iterations are predicted from recent timings rather than
// merging many iterations into one huge pattern (Algorithm 2, line 32).
const DefaultMaxPatternSize = 16

// DetectorStats aggregates PPA bookkeeping used by Table IV and Table III.
type DetectorStats struct {
	GramsFormed      int // grams fed to the detector
	Invocations      int // grams processed with full PPA active (prediction off)
	Detections       int // patterns declared detected (fresh)
	Reactivations    int // immediate re-predictions of a known pattern
	Mispredictions   int // pattern mispredictions (gram mismatch)
	WildcardGrams    int // mismatched grams absorbed as one-off substitutions
	PredictedGrams   int // grams matched while predicting
	PredictedCalls   int // MPI calls inside matched grams
	TotalCalls       int // MPI calls inside all grams fed
	PatternListSize  int // live entries in the pattern list
	MaxPatternFrozen int // frozen maxPatternSize (0 if never detected)
}

// Detector implements the pattern prediction algorithm over a stream of
// finalized grams.
type Detector struct {
	maxSize  int
	frozen   bool
	grams    []string        // gram keys, in arrival order
	gaps     []time.Duration // gaps[i] = idle time before gram i
	ncalls   []int
	runLen   []int // runLen[s] = trailing length of matches gram[i]==gram[i-s]
	pl       map[string]*Pattern
	detected []*Pattern // patterns with Detected=true, for fast re-prediction
	gramDefs map[string][]EventID

	active   *Pattern
	phase    int  // index in active of the next expected gram
	wildcard bool // the last gram was accepted as a one-off substitution

	knownGram map[string]bool // grams appearing in any detected pattern

	stats DetectorStats
}

// NewDetector returns a detector with the given maximum pattern size (grams
// per pattern). maxSize <= 0 selects DefaultMaxPatternSize.
func NewDetector(maxSize int) *Detector {
	if maxSize <= 0 {
		maxSize = DefaultMaxPatternSize
	}
	return &Detector{
		maxSize:   maxSize,
		runLen:    make([]int, maxSize+1),
		pl:        make(map[string]*Pattern),
		gramDefs:  make(map[string][]EventID),
		knownGram: make(map[string]bool),
	}
}

// Predicting reports whether a detected pattern is currently driving
// predictions (the power mode control component is active).
func (d *Detector) Predicting() bool { return d.active != nil }

// Active returns the pattern currently driving predictions, or nil.
func (d *Detector) Active() *Pattern { return d.active }

// Phase returns the index within the active pattern of the next expected
// gram.
func (d *Detector) Phase() int { return d.phase }

// Expected returns the event IDs of the next expected gram while predicting.
func (d *Detector) Expected() ([]EventID, bool) {
	if d.active == nil {
		return nil, false
	}
	ids, ok := d.gramDefs[d.active.Grams[d.phase]]
	return ids, ok
}

// PredictedGapAfterExpected returns the conservative idle estimate that
// follows the currently expected gram (the gap before the pattern's next
// gram): the minimum over the recent observation window. Zero means no
// estimate is available.
func (d *Detector) PredictedGapAfterExpected() time.Duration {
	if d.active == nil {
		return 0
	}
	next := (d.phase + 1) % d.active.Size()
	return d.active.SafeGap(next)
}

// Stats returns a snapshot of detector statistics.
func (d *Detector) Stats() DetectorStats {
	s := d.stats
	s.PatternListSize = len(d.pl)
	if d.frozen {
		s.MaxPatternFrozen = d.maxSize
	}
	return s
}

// Patterns returns the pattern list (live view; callers must not mutate).
func (d *Detector) Patterns() map[string]*Pattern { return d.pl }

// AddGram feeds one finalized gram. It returns true when this gram switched
// the detector into (or kept it in) prediction mode.
func (d *Detector) AddGram(g *Gram) bool {
	d.stats.GramsFormed++
	d.stats.TotalCalls += g.NumCalls()
	if _, ok := d.gramDefs[g.Key]; !ok {
		ids := make([]EventID, len(g.IDs))
		copy(ids, g.IDs)
		d.gramDefs[g.Key] = ids
	}
	d.grams = append(d.grams, g.Key)
	d.gaps = append(d.gaps, g.GapBefore)
	d.ncalls = append(d.ncalls, g.NumCalls())
	i := len(d.grams) - 1

	// Maintain periodicity run lengths. While the power mode control
	// component is active the core of the prediction part is disabled
	// (Section III); we still keep runLen consistent so that a later
	// misprediction can restart detection without a cold start.
	for s := 1; s <= d.maxSize; s++ {
		if i >= s && d.grams[i] == d.grams[i-s] {
			d.runLen[s]++
		} else {
			d.runLen[s] = 0
		}
	}

	if d.active != nil {
		exp := d.active.Grams[d.phase]
		if g.Key == exp {
			// Correct prediction: refresh the timing estimate for this gap
			// and advance to the next gram of the pattern.
			d.active.ObserveGap(d.phase, g.GapBefore)
			if d.phase == 0 {
				d.active.Freq++
			}
			d.phase = (d.phase + 1) % d.active.Size()
			d.wildcard = false
			d.stats.PredictedGrams++
			d.stats.PredictedCalls += g.NumCalls()
			return true
		}
		d.stats.Mispredictions++
		// One-off substitution: a mismatched gram that belongs to no
		// detected pattern (e.g. an alternative communication variant of
		// the same iteration slot) advances the phase instead of dropping
		// prediction, so the regular grams around it stay predicted. A
		// second consecutive mismatch deactivates. This is the timing-style
		// misprediction of Section III-B that does not force a PPA restart.
		if !d.wildcard && !d.knownGram[g.Key] {
			d.wildcard = true
			d.phase = (d.phase + 1) % d.active.Size()
			d.stats.WildcardGrams++
			return true
		}
		// Pattern misprediction: relaunch the pattern prediction part
		// (Section III-B: "the patternPrediction variable is set to False
		// and the pattern prediction part is relaunched again").
		d.active = nil
		d.phase = 0
		d.wildcard = false
	}

	// Full PPA runs on this gram.
	d.stats.Invocations++

	// Immediate re-prediction: a previously detected pattern that appears
	// again is declared repeatable on its first new appearance — without
	// waiting for three consecutive repeats (Section III-A policy). The
	// current gram is aligned against every detected pattern; ambiguity is
	// resolved by looking further back in the gram stream and finally by
	// pattern frequency.
	if d.reanchor(i) {
		return true
	}

	// Fresh detection: smallest period s whose pattern occupies the tail
	// three consecutive times (runLen >= 2s means grams[i-2s+1..i] repeat
	// the s-gram twice after its first appearance).
	for s := 2; s <= d.maxSize; s++ {
		if i+1 < 3*s || d.runLen[s] < 2*s {
			continue
		}
		d.detect(s, i)
		return true
	}
	return false
}

// reanchor tries to resume prediction at the gram ending at index i by
// locating it inside a previously detected pattern. It returns true when a
// pattern was (re)activated with the phase advanced past the matched gram.
func (d *Detector) reanchor(i int) bool {
	type cand struct {
		p *Pattern
		q int // phase of the matched gram inside p
	}
	g := d.grams[i]
	var cands []cand
	for _, p := range d.detected {
		for q, k := range p.Grams {
			if k == g {
				cands = append(cands, cand{p, q})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	// Disambiguate by walking backwards through the gram stream.
	for depth := 1; len(cands) > 1 && depth <= d.maxSize && i-depth >= 0; depth++ {
		prev := d.grams[i-depth]
		filtered := cands[:0:0]
		for _, c := range cands {
			s := c.p.Size()
			idx := ((c.q-depth)%s + s) % s
			if c.p.Grams[idx] == prev {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			break // history diverges from every candidate; keep all, use frequency
		}
		cands = filtered
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.p.Freq > best.p.Freq {
			best = c
		}
	}
	d.active = best.p
	d.phase = (best.q + 1) % best.p.Size()
	d.wildcard = false
	d.stats.Reactivations++
	return true
}

// detect declares the s-gram ending at index i as the predicted pattern.
func (d *Detector) detect(s, i int) {
	keys := make([]string, s)
	copy(keys, d.grams[i-s+1:i+1])
	key := PatternKey(keys)
	p, ok := d.pl[key]
	if !ok {
		nc := 0
		for _, k := range keys {
			nc += len(d.gramDefs[k])
		}
		p = &Pattern{Key: key, Grams: keys, NumCalls: nc}
		d.pl[key] = p
	}
	if !p.Detected {
		p.Detected = true
		d.detected = append(d.detected, p)
		d.stats.Detections++
		for _, k := range keys {
			d.knownGram[k] = true
		}
	}
	// Freeze the maximum pattern size to the natural iteration size so the
	// algorithm does not keep merging iterations into ever larger patterns.
	if !d.frozen || s < d.maxSize {
		d.maxSize = s
		d.frozen = true
		if len(d.runLen) <= d.maxSize {
			d.runLen = d.runLen[:d.maxSize+1]
		}
	}
	// Seed gap averages from the three observed occurrences. Occurrence o
	// starts at i-(3-o)*s+1 for o in 1..3; gram j of occurrence o sits at
	// start+j. The gap before the first gram of the first occurrence may
	// predate the periodic region, so it is skipped.
	p.Freq += 3
	for o := 0; o < 3; o++ {
		start := i - (3-o)*s + 1
		if start < 0 {
			continue
		}
		for j := 0; j < s; j++ {
			if o == 0 && j == 0 {
				continue
			}
			p.ObserveGap(j, d.gaps[start+j])
		}
		if len(p.Positions) < 16 {
			p.Positions = append(p.Positions, start)
		}
	}
	d.activate(p, i)
}

// activate switches to prediction mode with p; the gram at index i is the
// last gram of an appearance of p, so the next expected gram is p.Grams[0].
func (d *Detector) activate(p *Pattern, i int) {
	d.active = p
	d.phase = 0
	d.wildcard = false
	_ = i
}
