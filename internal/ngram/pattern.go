package ngram

import (
	"strings"
	"time"
)

// Pattern is a repeating sequence of grams, stored in the pattern list hash
// table (the paper uses uthash keyed by the pattern string; we use a Go map).
type Pattern struct {
	Key      string   // gram keys joined by "_", e.g. "41-41-41_10_10"
	Grams    []string // gram keys in order
	Freq     int      // number of observed appearances
	Detected bool     // declared predictable (3 consecutive appearances)
	NumCalls int      // MPI calls per appearance

	// Positions of appearances in the gram array (for diagnostics, matching
	// the paper's Figure 3 "Insertions into Pattern List" table).
	Positions []int

	// ids mirrors Grams as interned detector IDs; all hot matching compares
	// these integers instead of the key strings. Set by the detector.
	ids []GramID

	// gapSum/gapCnt accumulate the idle time preceding each gram of the
	// pattern so that predictions use the average over previous appearances
	// (Section III-B: "these times are averaged over previous appearances").
	gapSum []time.Duration
	gapCnt []int
	// gapWin holds the most recent observations per position in fixed-size
	// rings; predictions use the window minimum so that the link is back up
	// before even the fastest recent occurrence of the gap — the paper's
	// "better to power up a link little bit earlier than needed" policy
	// taken to its safe side.
	gapWin []gapRing
}

// gapWindow is the number of recent observations kept per gap position.
const gapWindow = 8

// gapRing is a fixed-capacity ring of recent gap observations; overwriting
// in place keeps steady-state ObserveGap allocation-free (the previous
// re-slice-and-append window reallocated on every observation once full).
type gapRing struct {
	buf [gapWindow]time.Duration
	idx int // next slot to overwrite
	n   int // filled entries
}

// PatternKey joins gram keys into a pattern identity.
func PatternKey(grams []string) string { return strings.Join(grams, "_") }

// MeanGap returns the average idle time observed before gram index i of the
// pattern (i == 0 is the gap separating consecutive pattern appearances).
func (p *Pattern) MeanGap(i int) time.Duration {
	if i < 0 || i >= len(p.gapSum) || p.gapCnt[i] == 0 {
		return 0
	}
	return p.gapSum[i] / time.Duration(p.gapCnt[i])
}

// ObserveGap folds a newly observed idle time before gram index i into the
// running average. Inter-communication intervals keep being updated while
// the power mode control component is active (Section III: "Just
// inter-communication intervals continue to be updated with the new values
// allowing more accurate transition between power modes").
func (p *Pattern) ObserveGap(i int, gap time.Duration) {
	if i < 0 {
		return
	}
	for len(p.gapSum) <= i {
		p.gapSum = append(p.gapSum, 0)
		p.gapCnt = append(p.gapCnt, 0)
		p.gapWin = append(p.gapWin, gapRing{})
	}
	p.gapSum[i] += gap
	p.gapCnt[i]++
	w := &p.gapWin[i]
	w.buf[w.idx] = gap
	w.idx = (w.idx + 1) % gapWindow
	if w.n < gapWindow {
		w.n++
	}
}

// SafeGap returns the conservative idle estimate for position i: the minimum
// over the recent observation window (0 when no estimate is available).
func (p *Pattern) SafeGap(i int) time.Duration {
	if i < 0 || i >= len(p.gapWin) || p.gapWin[i].n == 0 {
		return 0
	}
	w := &p.gapWin[i]
	m := w.buf[0]
	for _, g := range w.buf[1:w.n] {
		if g < m {
			m = g
		}
	}
	return m
}

// Size returns the pattern length in grams.
func (p *Pattern) Size() int { return len(p.Grams) }
