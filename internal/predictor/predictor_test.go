package predictor

import (
	"testing"
	"testing/quick"
	"time"

	"ibpower/internal/power"
	"ibpower/internal/trace"
)

const us = time.Microsecond

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{GT: 10 * us, Displacement: 0.01},  // GT below 2·Treact
		{GT: 100 * us, Displacement: -0.1}, // negative displacement
		{GT: 100 * us, Displacement: 1.0},  // displacement >= 1
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	good := Config{GT: 20 * us, Displacement: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Custom Treact relaxes the GT floor.
	custom := Config{GT: 10 * us, Displacement: 0, Treact: 5 * us}
	if err := custom.Validate(); err != nil {
		t.Errorf("custom Treact config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid config")
		}
	}()
	MustNew(Config{GT: time.Microsecond})
}

// runIterations pushes n iterations of a fixed two-gram pattern through a
// predictor: gram A (two calls, id 41) [gap short], then a long gap, then
// gram B (one call, id 10), then a medium gap.
func runIterations(p Predictor, n int, longGap, medGap time.Duration) []Action {
	var acts []Action
	var now time.Duration
	for i := 0; i < n; i++ {
		now += longGap
		acts = append(acts, p.OnCall(41, now, now+2*us))
		now += 2*us + 4*us
		acts = append(acts, p.OnCall(41, now, now+2*us))
		now += 2 * us
		now += medGap
		acts = append(acts, p.OnCall(10, now, now+3*us))
		now += 3 * us
	}
	return acts
}

func TestPredictorShutdownAction(t *testing.T) {
	p := MustNew(Config{GT: 20 * us, Displacement: 0.10})
	acts := runIterations(p, 12, 500*us, 300*us)
	var shutdowns int
	for _, a := range acts {
		if a.Shutdown {
			shutdowns++
			if a.PredictedIdle <= 0 || a.PredictedIdle >= a.RawIdle {
				t.Errorf("predicted idle %v not within (0, raw %v)", a.PredictedIdle, a.RawIdle)
			}
		}
	}
	if shutdowns == 0 {
		t.Fatal("no shutdown actions on a perfectly periodic stream")
	}
	st := p.Stats()
	if st.Shutdowns != shutdowns {
		t.Errorf("Stats.Shutdowns = %d, want %d", st.Shutdowns, shutdowns)
	}
	if st.PredictedIdle <= 0 {
		t.Error("no predicted idle accumulated")
	}
}

func TestAlgorithm3SafetyFormula(t *testing.T) {
	// With displacement d and reactivation Treact, the programmed idle must
	// equal idleTime - (idleTime*d + Treact) for the stable gap estimate.
	const d = 0.10
	p := MustNew(Config{GT: 20 * us, Displacement: d})
	acts := runIterations(p, 20, 500*us, 300*us)
	var last Action
	for _, a := range acts {
		if a.Shutdown {
			last = a
		}
	}
	if !last.Shutdown {
		t.Fatal("no shutdown action")
	}
	want := last.RawIdle - time.Duration(float64(last.RawIdle)*d) - power.Treact
	if last.PredictedIdle != want {
		t.Errorf("predicted = %v, want %v (raw %v)", last.PredictedIdle, want, last.RawIdle)
	}
}

func TestDisplacementMonotonicity(t *testing.T) {
	// Larger displacement factors must never program longer idle times.
	idle := func(d float64) time.Duration {
		p := MustNew(Config{GT: 20 * us, Displacement: d})
		acts := runIterations(p, 15, 500*us, 300*us)
		var sum time.Duration
		for _, a := range acts {
			if a.Shutdown {
				sum += a.PredictedIdle
			}
		}
		return sum
	}
	i1, i5, i10 := idle(0.01), idle(0.05), idle(0.10)
	if !(i1 >= i5 && i5 >= i10) {
		t.Errorf("predicted idle not monotone in displacement: 1%%=%v 5%%=%v 10%%=%v", i1, i5, i10)
	}
	if i1 == 0 {
		t.Fatal("no idle predicted at 1% displacement")
	}
}

func TestHitRate(t *testing.T) {
	p := MustNew(Config{GT: 20 * us, Displacement: 0.01})
	runIterations(p, 40, 500*us, 300*us)
	p.Flush()
	st := p.Stats()
	if st.HitRatePct() < 80 {
		t.Errorf("hit rate %.1f%% on a periodic stream", st.HitRatePct())
	}
	if st.Calls != 120 {
		t.Errorf("calls = %d, want 120", st.Calls)
	}
}

func TestNoShutdownBeforeDetection(t *testing.T) {
	p := MustNew(Config{GT: 20 * us, Displacement: 0.01})
	acts := runIterations(p, 2, 500*us, 300*us)
	for i, a := range acts {
		if a.Shutdown {
			t.Errorf("shutdown at call %d before three pattern appearances", i)
		}
	}
}

func TestOfflineRunner(t *testing.T) {
	tr := trace.New("t", 2)
	for r := 0; r < 2; r++ {
		for i := 0; i < 30; i++ {
			tr.Append(r, trace.Compute(400*us))
			tr.Append(r, trace.Sendrecv((r+1)%2, (r+1)%2, 1024))
			tr.Append(r, trace.Compute(250*us))
			tr.Append(r, trace.Allreduce(8))
		}
	}
	res, err := RunOffline(tr, Config{GT: 20 * us, Displacement: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 || len(res.Acct) != 2 {
		t.Fatalf("per-rank results missing: %d/%d", len(res.Stats), len(res.Acct))
	}
	if res.AvgHitRatePct() < 70 {
		t.Errorf("offline hit rate %.1f%%", res.AvgHitRatePct())
	}
	if res.TotalLow() <= 0 {
		t.Error("no realized low-power time")
	}
	if res.Exec <= 0 {
		t.Error("no exec time")
	}
	// Accounting conservation per rank.
	for r, a := range res.Acct {
		if a.Total() <= 0 {
			t.Errorf("rank %d accounting empty", r)
		}
	}
}

func TestMeasureOverheads(t *testing.T) {
	tr := trace.New("t", 1)
	for i := 0; i < 200; i++ {
		tr.Append(0, trace.Compute(100*us))
		tr.Append(0, trace.Barrier())
		tr.Append(0, trace.Compute(60*us))
		tr.Append(0, trace.Allreduce(8))
	}
	rep, err := MeasureOverheads(tr, Config{GT: 20 * us, Displacement: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calls != 400 {
		t.Errorf("calls = %d, want 400", rep.Calls)
	}
	if rep.PPAInvoked == 0 || rep.PPAInvokedPct <= 0 {
		t.Error("no PPA invocations measured")
	}
	// Prediction succeeds on this stream, so PPA runs on a small share of
	// calls (the paper's Table IV averages 2.1 %).
	if rep.PPAInvokedPct > 50 {
		t.Errorf("PPA invoked on %.1f%% of calls; prediction is not kicking in", rep.PPAInvokedPct)
	}
	if rep.PerCallAmortized <= 0 || rep.Total <= 0 {
		t.Error("missing timing measurements")
	}
}

func TestOverheadModel(t *testing.T) {
	m := DefaultOverheads()
	if m.Interception != time.Microsecond {
		t.Errorf("interception = %v, want 1µs (Table IV)", m.Interception)
	}
	c2 := m.PPACost(2, 0)
	c8 := m.PPACost(8, 0)
	if c8 <= c2 {
		t.Error("PPA cost must grow with pattern size")
	}
	// CallCost without PPA is just the interception.
	if m.CallCost(false, 4, 10) != m.Interception {
		t.Error("CallCost(false) must be interception only")
	}
	if m.CallCost(true, 0, 0) <= m.Interception {
		t.Error("CallCost(true) must include PPA cost")
	}
}

// Property: for any valid displacement and gap scale, shutdown actions are
// consistent: 0 < predicted < raw, and stats counters match the actions.
func TestActionConsistencyProperty(t *testing.T) {
	f := func(dRaw uint8, gapRaw uint16) bool {
		d := float64(dRaw%20) / 100
		gap := time.Duration(gapRaw%2000+100) * us
		p := MustNew(Config{GT: 20 * us, Displacement: d})
		acts := runIterations(p, 10, gap, gap/2+60*us)
		n := 0
		for _, a := range acts {
			if a.Shutdown {
				n++
				if a.PredictedIdle <= 0 || a.PredictedIdle >= a.RawIdle {
					return false
				}
			}
		}
		return p.Stats().Shutdowns == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
