package predictor

import (
	"testing"
	"time"

	"ibpower/internal/registrytest"
	"ibpower/internal/trace"
)

func validCfg() Config {
	return Config{GT: 100 * us, Displacement: 0.01}
}

// TestRegistryContract runs the shared registry property test; the predictor
// presets themselves must all be present on top of the generic contract.
func TestRegistryContract(t *testing.T) {
	for _, want := range []string{"ewma", "lastvalue", "ngram", "offline", "oracle", "static-gt"} {
		if !Registered(want) {
			t.Errorf("%q not registered (have %v)", want, Names())
		}
	}
	registrytest.Run(t, registrytest.Registry{
		Kind:    "predictor",
		Default: DefaultName,
		Names:   Names,
		Check:   CheckRegistered,
		RegisterValid: func(name string) {
			Register(name, func(cfg Config) (Predictor, error) { return New(cfg) })
		},
		RegisterNil: func(name string) { Register(name, nil) },
	})
}

func TestNewNamedDefault(t *testing.T) {
	p, err := NewNamed("", validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*NGram); !ok {
		t.Errorf("empty name resolved to %T, want *NGram", p)
	}
}

func TestNewNamedValidatesConfig(t *testing.T) {
	for _, name := range Names() {
		if _, err := NewNamed(name, Config{GT: time.Microsecond}); err == nil {
			t.Errorf("%s accepted a sub-minimum GT", name)
		}
	}
	if _, err := NewNamed("ewma", Config{GT: 100 * us, Displacement: 0.01, Alpha: 1.5}); err == nil {
		t.Error("ewma accepted alpha > 1")
	}
}

// periodicStream feeds n calls separated by the given gap and returns the
// emitted actions.
func periodicStream(p Predictor, n int, gap time.Duration) []Action {
	var acts []Action
	var now time.Duration
	for i := 0; i < n; i++ {
		now += gap
		acts = append(acts, p.OnCall(41, now, now))
	}
	p.Flush()
	return acts
}

func TestLastValueOnPeriodicStream(t *testing.T) {
	p := MustNewNamed("lastvalue", validCfg())
	acts := periodicStream(p, 50, 500*us)
	var shuts int
	for _, a := range acts {
		if a.Shutdown {
			shuts++
			if a.RawIdle != 500*us {
				t.Errorf("raw idle %v, want the last observed 500µs", a.RawIdle)
			}
		}
	}
	// The first call has no gap yet and the second predicts from gap #1.
	if shuts != 49 {
		t.Errorf("shutdowns = %d, want 49", shuts)
	}
	st := p.Stats()
	if st.Calls != 50 || st.Shutdowns != 49 {
		t.Errorf("stats: %+v", st)
	}
	// Every resolved prediction matched the constant gap.
	if hr := st.HitRatePct(); hr < 95 {
		t.Errorf("hit rate %.1f%% on a constant-gap stream", hr)
	}
}

func TestLastValueMissesOnShrinkingGaps(t *testing.T) {
	p := MustNewNamed("lastvalue", validCfg())
	var now time.Duration
	// Alternate long and short gaps: predictions made after a long gap
	// overshoot the short gap that follows.
	for i := 0; i < 40; i++ {
		gap := 120 * us
		if i%2 == 1 {
			gap = 600 * us
		}
		now += gap
		p.OnCall(41, now, now)
	}
	st := p.Stats()
	if st.Predictions == 0 {
		t.Fatal("no predictions on gaps above GT")
	}
	if hr := st.HitRatePct(); hr > 60 {
		t.Errorf("hit rate %.1f%% on an alternating stream; last-value must mispredict half", hr)
	}
}

func TestEWMASmoothing(t *testing.T) {
	p := MustNewNamed("ewma", validCfg())
	acts := periodicStream(p, 40, 400*us)
	last := acts[len(acts)-1]
	if !last.Shutdown {
		t.Fatal("no shutdown at steady state")
	}
	// On a constant stream the EWMA converges to the gap itself.
	if last.RawIdle != 400*us {
		t.Errorf("steady-state EWMA %v, want 400µs", last.RawIdle)
	}
	if hr := p.Stats().HitRatePct(); hr < 90 {
		t.Errorf("hit rate %.1f%%", hr)
	}
}

func TestStaticGTDegeneratesAtMinimum(t *testing.T) {
	// At GT = 2·Treact the safety limit leaves predictedIdle = GT·(1-d) -
	// Treact <= Treact, which the link controller rejects; the policy only
	// bites at larger thresholds.
	p := MustNewNamed("static-gt", Config{GT: 300 * us, Displacement: 0.01})
	acts := periodicStream(p, 20, 500*us)
	var shuts int
	for _, a := range acts {
		if a.Shutdown {
			shuts++
			if a.RawIdle != 300*us {
				t.Errorf("static raw idle %v, want GT", a.RawIdle)
			}
		}
	}
	if shuts != 20 {
		t.Errorf("static-gt emitted %d shutdowns, want one per call", shuts)
	}
}

// buildTrainable returns a two-call-type trace with distinct gaps: 600 µs of
// computation follows call 41, 150 µs follows call 10.
func buildTrainable(iters int) *trace.Trace {
	tr := trace.New("t", 1)
	for i := 0; i < iters; i++ {
		tr.Append(0, trace.Sendrecv(0, 0, 8))
		tr.Append(0, trace.Compute(600*us))
		tr.Append(0, trace.Allreduce(8))
		tr.Append(0, trace.Compute(150*us))
	}
	return tr
}

func TestOraclePrimedPredictsExactGaps(t *testing.T) {
	tr := buildTrainable(20)
	p := MustNewNamed("oracle", validCfg())
	Prime(p, tr.Ranks[0])
	var now time.Duration
	var raws []time.Duration
	for _, op := range tr.Ranks[0] {
		switch op.Kind {
		case trace.OpCompute:
			now += op.Duration
		case trace.OpCall:
			if act := p.OnCall(EventID(op.Call), now, now); act.Shutdown {
				raws = append(raws, act.RawIdle)
			}
		}
	}
	p.Flush()
	if len(raws) == 0 {
		t.Fatal("primed oracle made no predictions")
	}
	for _, r := range raws {
		if r != 600*us && r != 150*us {
			t.Errorf("oracle predicted %v, want an exact trace gap", r)
		}
	}
	if hr := p.Stats().HitRatePct(); hr != 100 {
		t.Errorf("oracle hit rate %.1f%%, want 100%%", hr)
	}
}

func TestProfilePredictsPerCallTypeMeans(t *testing.T) {
	tr := buildTrainable(20)
	p := MustNewNamed("offline", validCfg())
	Prime(p, tr.Ranks[0])
	var now time.Duration
	seen := map[EventID]time.Duration{}
	for _, op := range tr.Ranks[0] {
		switch op.Kind {
		case trace.OpCompute:
			now += op.Duration
		case trace.OpCall:
			if act := p.OnCall(EventID(op.Call), now, now); act.Shutdown {
				seen[EventID(op.Call)] = act.RawIdle
			}
		}
	}
	if seen[EventID(trace.CallSendrecv)] != 600*us {
		t.Errorf("profile mean after Sendrecv = %v, want 600µs", seen[EventID(trace.CallSendrecv)])
	}
	if seen[EventID(trace.CallAllreduce)] != 150*us {
		t.Errorf("profile mean after Allreduce = %v, want 150µs", seen[EventID(trace.CallAllreduce)])
	}
}

func TestUnprimedTraceAwarePredictNothing(t *testing.T) {
	// The live PMPI layer cannot prime trace-aware predictors; they must
	// degrade to no-ops rather than guessing.
	for _, name := range []string{"oracle", "offline"} {
		p := MustNewNamed(name, validCfg())
		for _, a := range periodicStream(p, 30, 500*us) {
			if a.Shutdown {
				t.Errorf("%s emitted a shutdown without being primed", name)
			}
		}
	}
}

func TestRunOfflineNamedAllPredictors(t *testing.T) {
	tr := buildTrainable(30)
	for _, name := range []string{"ngram", "oracle", "offline", "lastvalue", "ewma", "static-gt"} {
		res, err := RunOfflineNamed(name, tr, validCfg(), DefaultOverheads())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Stats) != 1 || res.Exec <= 0 {
			t.Errorf("%s: malformed result %+v", name, res)
		}
	}
	// The oracle reclaims at least as much low-power time as last-value on
	// any trace: it makes the same-or-better prediction at every call.
	or, err := RunOfflineNamed("oracle", tr, validCfg(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	lv, err := RunOfflineNamed("lastvalue", tr, validCfg(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if or.TotalLow() < lv.TotalLow() {
		t.Errorf("oracle low %v below lastvalue %v", or.TotalLow(), lv.TotalLow())
	}
	if or.Delay != 0 {
		t.Errorf("oracle paid %v of reactivation delay", or.Delay)
	}
	if _, err := RunOfflineNamed("nosuch", tr, validCfg(), DefaultOverheads()); err == nil {
		t.Error("unknown predictor accepted by offline runner")
	}
}
