package predictor

import "time"

// OverheadModel charges the software costs of the mechanism (the paper's
// Table IV): every intercepted MPI call pays the interception cost (~1 µs,
// the measured cost of interception plus reading the system clock); calls on
// which the full PPA runs additionally pay a cost that grows with the
// current pattern size. The hash-table lookup itself is O(1) — uthash in the
// paper, a Go map here — so the per-list-entry coefficient defaults to zero;
// it exists as an ablation knob for "slower hash tables" (the paper notes
// PPA overheads "can be further reduced by using faster hash tables").
type OverheadModel struct {
	Interception    time.Duration // per MPI call
	PPABase         time.Duration // per PPA-invoked call
	PPAPerGram      time.Duration // × current pattern size
	PPAPerListEntry time.Duration // × pattern list entries
}

// DefaultOverheads returns costs calibrated to the paper's Table IV
// (average 16.5 µs per invoked call, ~1 µs interception).
func DefaultOverheads() OverheadModel {
	return OverheadModel{
		Interception: time.Microsecond,
		PPABase:      7 * time.Microsecond,
		PPAPerGram:   2500 * time.Nanosecond,
	}
}

// PPACost returns the modelled cost of one PPA invocation given the current
// pattern size and pattern list size.
func (m OverheadModel) PPACost(patternSize, listSize int) time.Duration {
	return m.PPABase + time.Duration(patternSize)*m.PPAPerGram + time.Duration(listSize)*m.PPAPerListEntry
}

// CallCost returns the modelled cost of one intercepted call given whether
// the full PPA ran on it, using the detector's current state.
func (m OverheadModel) CallCost(ppaInvoked bool, patternSize, listSize int) time.Duration {
	c := m.Interception
	if ppaInvoked {
		if patternSize == 0 {
			patternSize = 2
		}
		c += m.PPACost(patternSize, listSize)
	}
	return c
}
