package predictor

import (
	"time"

	"ibpower/internal/ngram"
	"ibpower/internal/power"
	"ibpower/internal/trace"
)

// RunOffline drives one predictor per rank over the trace without any
// network simulation: call timestamps are reconstructed from the recorded
// computation durations plus the mechanism's own modelled overheads, which
// is exactly the information the grouping threshold and PPA consume. The
// overhead insertion matters: a PPA invocation stretches the gap that
// follows it, which can push a gram-internal gap across the grouping
// threshold, so GT selection must see the same timing as the full replay.
// This is the fast path used for the GT sweeps of Table III and Figure 10.
func RunOffline(src trace.Source, cfg Config) (*OfflineResult, error) {
	return RunOfflineOverheads(src, cfg, DefaultOverheads())
}

// OfflineResult carries per-rank predictor statistics plus the realized link
// power accounting of the network-free mechanism simulation.
type OfflineResult struct {
	Stats []Stats
	Acct  []power.Accounting
	Delay time.Duration // total reactivation delay suffered
	Exec  time.Duration // max rank finish time
}

// AvgHitRatePct averages the per-rank MPI call hit rates.
func (o *OfflineResult) AvgHitRatePct() float64 { return AvgHitRatePct(o.Stats) }

// TotalLow returns the summed realized low-power time across ranks.
func (o *OfflineResult) TotalLow() time.Duration {
	var l time.Duration
	for _, a := range o.Acct {
		l += a.Low
	}
	return l
}

// RunOfflineOverheads is RunOffline with an explicit overhead model. Each
// rank's stream drives a predictor and a link power controller: shutdown
// actions program the wake timer and early calls pay the reactivation delay,
// exactly as in the full replay minus network effects.
func RunOfflineOverheads(src trace.Source, cfg Config, ov OverheadModel) (*OfflineResult, error) {
	return RunOfflineNamed(DefaultName, src, cfg, ov)
}

// RunOfflineNamed is RunOfflineOverheads for any registered predictor:
// trace-aware predictors (oracle, offline) are primed with each rank's op
// stream before it is replayed (only they force a rank to be materialized —
// every other predictor streams one op at a time). Predictors that never set
// Action.PPAInvoked are charged only the interception overhead per call.
func RunOfflineNamed(name string, src trace.Source, cfg Config, ov OverheadModel) (*OfflineResult, error) {
	m := src.Meta()
	out := &OfflineResult{
		Stats: make([]Stats, m.NP),
		Acct:  make([]power.Accounting, m.NP),
	}
	for r := 0; r < m.NP; r++ {
		p, err := NewNamed(name, cfg)
		if err != nil {
			return nil, err
		}
		if IsTraceAware(p) {
			ops, err := trace.RankOps(src, r)
			if err != nil {
				return nil, err
			}
			Prime(p, ops)
		}
		ctrl := power.NewController(cfg.Treact)
		var t time.Duration
		cur := src.Open(r)
		for {
			op, ok := cur.Next()
			if !ok {
				break
			}
			switch op.Kind {
			case trace.OpCompute:
				t += op.Duration
			case trace.OpCall:
				t += ov.Interception
				t = ctrl.Acquire(t)
				act := p.OnCall(ngram.EventID(op.Call), t, t)
				st := p.Stats().Detector
				t += ov.CallCost(act.PPAInvoked, st.MaxPatternFrozen, st.PatternListSize) - ov.Interception
				if act.Shutdown {
					ctrl.Shutdown(t, act.PredictedIdle)
				}
			}
		}
		if err := cur.Err(); err != nil {
			return nil, err
		}
		p.Flush()
		ctrl.Finish(t)
		out.Stats[r] = p.Stats()
		out.Acct[r] = ctrl.Accounting()
		out.Delay += ctrl.TotalDelay
		if t > out.Exec {
			out.Exec = t
		}
	}
	return out, nil
}

// OverheadReport holds wall-clock measurements of the mechanism's software
// cost, mirroring the paper's Table IV (which used gettimeofday around the
// PMPI interposition).
type OverheadReport struct {
	Calls            int           // MPI calls observed
	PPAInvoked       int           // calls on which the full PPA ran
	PPAInvokedPct    float64       // percentage of calls invoking PPA
	PerInvokedCall   time.Duration // mean wall time of a PPA-invoked call
	PerCallAmortized time.Duration // total mechanism time / all calls
	Total            time.Duration
}

// MeasureOverheads runs the predictor over every rank of the trace and
// measures the real wall-clock cost of each OnCall invocation, attributing
// it to PPA-invoked calls versus plain interceptions.
func MeasureOverheads(src trace.Source, cfg Config) (OverheadReport, error) {
	return MeasureOverheadsNamed(DefaultName, src, cfg)
}

// MeasureOverheadsNamed is MeasureOverheads for any registered predictor.
// For predictors that never invoke the PPA the per-invoked-call column stays
// zero and only the amortized per-call cost is meaningful.
func MeasureOverheadsNamed(name string, src trace.Source, cfg Config) (OverheadReport, error) {
	var rep OverheadReport
	var invokedTime time.Duration
	m := src.Meta()
	for r := 0; r < m.NP; r++ {
		p, err := NewNamed(name, cfg)
		if err != nil {
			return rep, err
		}
		if IsTraceAware(p) {
			ops, err := trace.RankOps(src, r)
			if err != nil {
				return rep, err
			}
			Prime(p, ops)
		}
		var t time.Duration
		cur := src.Open(r)
		for {
			op, ok := cur.Next()
			if !ok {
				break
			}
			switch op.Kind {
			case trace.OpCompute:
				t += op.Duration
			case trace.OpCall:
				start := time.Now()
				act := p.OnCall(ngram.EventID(op.Call), t, t)
				el := time.Since(start)
				rep.Calls++
				rep.Total += el
				if act.PPAInvoked {
					rep.PPAInvoked++
					invokedTime += el
				}
			}
		}
		if err := cur.Err(); err != nil {
			return rep, err
		}
	}
	if rep.Calls > 0 {
		rep.PPAInvokedPct = 100 * float64(rep.PPAInvoked) / float64(rep.Calls)
		rep.PerCallAmortized = rep.Total / time.Duration(rep.Calls)
	}
	if rep.PPAInvoked > 0 {
		rep.PerInvokedCall = invokedTime / time.Duration(rep.PPAInvoked)
	}
	return rep, nil
}

// AvgHitRatePct averages the per-rank MPI call hit rates.
func AvgHitRatePct(stats []Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range stats {
		s += st.HitRatePct()
	}
	return s / float64(len(stats))
}
