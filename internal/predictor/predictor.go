// Package predictor assembles the paper's power saving mechanism for one MPI
// process: the pattern prediction component (gram formation + PPA,
// internal/ngram) and the power mode control component (Algorithm 3), which
// converts a predicted idle interval into a WRPS turn-off-lanes command with
// a displacement-factor safety margin.
//
// The package is organised around the Predictor interface and a named
// registry (registry.go): the paper's n-gram mechanism registers as "ngram"
// (the default) next to the clairvoyant "oracle", the trace-trained
// "offline" profile, and the "lastvalue", "ewma" and "static-gt" baselines
// from the dynamic power management literature, so every harness experiment
// can swap the prediction component while keeping Algorithm 3 and the link
// power controller fixed.
//
// A predictor is driven from the PMPI layer (or the replay simulator): it
// observes every MPI call of its process and, when it expects a sufficiently
// long idle interval to follow, emits a shutdown action:
//
//	safetyLimit       = idleTime*displacement + Treact
//	predictedIdleTime = idleTime - safetyLimit
//
// so that the lanes are back up idleTime*displacement before the next
// communication is expected (Figure 4).
package predictor

import (
	"fmt"
	"time"

	"ibpower/internal/ngram"
	"ibpower/internal/power"
)

// EventID aliases the detector's event identifier (an MPI call ID).
type EventID = ngram.EventID

// Config parameterises the mechanism.
type Config struct {
	// GT is the grouping threshold for gram formation; it must be at least
	// 2·Treact (Section IV-C).
	GT time.Duration
	// Displacement is the displacement factor (0.01, 0.05, 0.10 in the
	// paper's evaluation).
	Displacement float64
	// Treact is the lane (de)activation time; <= 0 selects power.Treact.
	Treact time.Duration
	// MaxPatternSize caps pattern growth before detection freezes it;
	// <= 0 selects ngram.DefaultMaxPatternSize.
	MaxPatternSize int
	// Alpha is the smoothing factor of the "ewma" baseline predictor
	// (weight of the newest observed gap), in (0, 1]; exactly 0 selects
	// 0.5 and negative values are rejected by Validate. The n-gram
	// mechanism ignores it.
	Alpha float64
}

// Validate checks the configuration against the paper's constraints.
func (c Config) Validate() error {
	treact := c.Treact
	if treact <= 0 {
		treact = power.Treact
	}
	if c.GT < 2*treact {
		return fmt.Errorf("predictor: GT %v below minimum 2*Treact = %v", c.GT, 2*treact)
	}
	if c.Displacement < 0 || c.Displacement >= 1 {
		return fmt.Errorf("predictor: displacement factor %v outside [0,1)", c.Displacement)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("predictor: EWMA alpha %v outside [0,1]", c.Alpha)
	}
	return nil
}

func (c Config) treact() time.Duration {
	if c.Treact <= 0 {
		return power.Treact
	}
	return c.Treact
}

func (c Config) alpha() float64 {
	if c.Alpha <= 0 {
		return 0.5
	}
	return c.Alpha
}

// predictedIdle applies the Algorithm 3 safety limit to a raw idle estimate:
// predicted = raw - (raw*displacement + Treact). A result <= 0 means the
// safety margin consumes the whole window and no shutdown should be issued.
func (c Config) predictedIdle(raw time.Duration) time.Duration {
	return raw - time.Duration(float64(raw)*c.Displacement) - c.treact()
}

// Action is the outcome of observing one MPI call.
type Action struct {
	// Shutdown directs the caller to issue a turn-off-lanes command when the
	// call completes.
	Shutdown bool
	// PredictedIdle is the duration to program into the link power
	// controller's wake timer (already reduced by the safety limit).
	PredictedIdle time.Duration
	// RawIdle is the averaged idle estimate before the safety limit was
	// applied (for diagnostics).
	RawIdle time.Duration
	// PPAInvoked reports that the full pattern prediction algorithm ran on
	// this call (used for the Table IV overhead accounting).
	PPAInvoked bool
}

// Stats aggregates mechanism behaviour over a process lifetime.
type Stats struct {
	Calls          int           // MPI calls observed
	PPAInvocations int           // calls on which the full PPA ran
	Shutdowns      int           // shutdown actions emitted
	PredictedIdle  time.Duration // total low-power time programmed into wake timers
	Detector       ngram.DetectorStats

	// Predictions and PredHits account the baseline predictors' quality:
	// every emitted shutdown prediction counts once, and it counts as a hit
	// when the realized gap before the next call was at least the predicted
	// raw idle (so the wake timer fired before communication resumed). The
	// n-gram mechanism reports the paper's detector-based rate instead and
	// leaves these zero.
	Predictions int
	PredHits    int
}

// HitRatePct returns the predictor's correct-prediction rate in percent. For
// the n-gram mechanism this is the percentage of MPI calls that belonged to
// correctly predicted grams (Table III's "MPI call hit rate"); for the
// baseline predictors it is the fraction of emitted predictions whose
// predicted idle did not overshoot the realized gap.
func (s Stats) HitRatePct() float64 {
	if s.Detector.TotalCalls > 0 {
		return 100 * float64(s.Detector.PredictedCalls) / float64(s.Detector.TotalCalls)
	}
	if s.Predictions > 0 {
		return 100 * float64(s.PredHits) / float64(s.Predictions)
	}
	return 0
}

// NGram is the paper's per-process mechanism instance: gram formation
// (Algorithm 1), the n-gram PPA (Algorithm 2) and the displacement-factor
// power mode control (Algorithm 3). It registers as "ngram", the registry
// default.
type NGram struct {
	cfg      Config
	builder  *ngram.Builder
	detector *ngram.Detector

	prevEnd  time.Duration
	haveCall bool
	calls    int
	ppaCalls int
	shuts    int
	predIdle time.Duration
}

var _ Predictor = (*NGram)(nil)

// New returns the n-gram PPA predictor for one MPI process.
func New(cfg Config) (*NGram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NGram{
		cfg:      cfg,
		builder:  ngram.NewBuilder(cfg.GT),
		detector: ngram.NewDetector(cfg.MaxPatternSize),
	}, nil
}

// MustNew is New, panicking on configuration errors (for tests/benchmarks).
func MustNew(cfg Config) *NGram {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the active configuration.
func (p *NGram) Config() Config { return p.cfg }

// Predicting reports whether the power mode control component is active.
func (p *NGram) Predicting() bool { return p.detector.Predicting() }

// Stats returns a snapshot of mechanism statistics.
func (p *NGram) Stats() Stats {
	return Stats{
		Calls:          p.calls,
		PPAInvocations: p.ppaCalls,
		Shutdowns:      p.shuts,
		PredictedIdle:  p.predIdle,
		Detector:       p.detector.Stats(),
	}
}

// OnCall observes one intercepted MPI call occupying [start, end] and
// returns the action to take when the call returns. Calls must be fed in
// non-decreasing start order.
func (p *NGram) OnCall(id ngram.EventID, start, end time.Duration) Action {
	var act Action
	p.calls++

	idle := time.Duration(0)
	if p.haveCall {
		idle = start - p.prevEnd
		if idle < 0 {
			idle = 0
		}
	}
	p.haveCall = true
	p.prevEnd = end

	// Pattern prediction component: form grams (Algorithm 1); each
	// finalized gram feeds the PPA (Algorithm 2). While a pattern is being
	// predicted the PPA core is mostly disabled and only the timing
	// estimates are refreshed, which AddGram handles internally.
	wasPredicting := p.detector.Predicting()
	if g := p.builder.AddShared(id, idle, start, end); g != nil {
		p.detector.AddGram(g)
		if !wasPredicting || !p.detector.Predicting() {
			// Full PPA work happened on this call.
			act.PPAInvoked = true
			p.ppaCalls++
		}
	}

	// Power mode control component (Algorithm 3): if prediction is enabled
	// and the group of current MPI calls matches the predicted gram in size
	// and content, shift the link to low-power mode for the predicted
	// interval less the safety limit.
	if exp, ok := p.detector.Expected(); ok {
		cur := p.builder.Current() // read-only view; no per-call copy
		if len(cur) == len(exp) && equalIDs(cur, exp) {
			idleTime := p.detector.PredictedGapAfterExpected()
			if idleTime > 0 {
				predicted := p.cfg.predictedIdle(idleTime)
				if predicted > 0 {
					act.Shutdown = true
					act.PredictedIdle = predicted
					act.RawIdle = idleTime
					p.shuts++
					p.predIdle += predicted
				}
			}
		}
	}
	return act
}

// Flush finalizes the gram under construction at end of run, feeding it to
// the detector so the counters include the trailing gram. (No action
// results.)
func (p *NGram) Flush() {
	if g := p.builder.FlushShared(); g != nil {
		p.detector.AddGram(g)
	}
}

func equalIDs(a, b []ngram.EventID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
