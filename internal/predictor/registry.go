package predictor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ibpower/internal/trace"
)

// Predictor is the pluggable per-process idle predictor: it observes every
// intercepted MPI call and decides when to shut link lanes down and for how
// long. The paper's n-gram PPA (NGram) is one implementation; the registry
// below holds it next to the simpler baselines it is evaluated against, so
// the harness can answer "how much does pattern prediction actually buy over
// last-value or EWMA prediction?" at the same operating point.
//
// Implementations must tolerate calls fed in non-decreasing start order and
// must be cheap: OnCall sits on the replay hot path.
type Predictor interface {
	// OnCall observes one intercepted MPI call occupying [start, end] and
	// returns the action to take when the call returns.
	OnCall(id EventID, start, end time.Duration) Action
	// Flush finalizes any state pending at end of run so Stats counters
	// include the trailing activity. No action results.
	Flush()
	// Stats returns a snapshot of mechanism statistics.
	Stats() Stats
}

// TraceAware is implemented by predictors that need the rank's full op
// stream before the run begins — the clairvoyant oracle and the
// offline-profile predictor. The replay engine and the offline runners prime
// them with the rank's trace; the live PMPI layer has no trace, so there
// they never predict (a deliberate property: trace-trained predictors cannot
// be deployed online, which is the PPA's selling point).
type TraceAware interface {
	Predictor
	// Prime hands the predictor the rank's complete op stream. It is called
	// once, before the first OnCall. Implementations must not mutate ops.
	Prime(ops []trace.Op)
}

// DefaultName is the registry entry used when no predictor is named: the
// paper's n-gram PPA.
const DefaultName = "ngram"

// Factory constructs one per-rank predictor instance from a validated-or-not
// configuration; it must validate cfg itself.
type Factory func(cfg Config) (Predictor, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a predictor constructor under name. It panics on an empty
// name, a nil factory, or a duplicate registration — registry collisions are
// programmer errors and must fail loudly at init time, not resolve silently
// to whichever init ran last.
func Register(name string, f Factory) {
	if name == "" {
		panic("predictor: Register with empty name")
	}
	if f == nil {
		panic("predictor: Register with nil factory for " + name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("predictor: duplicate registration of " + name)
	}
	registry[name] = f
}

// Registered reports whether name resolves in the registry; the empty string
// resolves to DefaultName.
func Registered(name string) bool {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered predictor names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckRegistered returns a descriptive error naming the whole registry
// when name does not resolve (the empty name resolves to DefaultName), so a
// typo'd -predictor flag tells the user what would have worked. It is the
// single validation every layer (replay config, pmpi layer, harness, CLI)
// shares.
func CheckRegistered(name string) error {
	if Registered(name) {
		return nil
	}
	return fmt.Errorf("unknown predictor %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// NewNamed builds a per-rank instance of the named predictor; the empty name
// selects DefaultName.
func NewNamed(name string, cfg Config) (Predictor, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("predictor: %w", CheckRegistered(name))
	}
	return f(cfg)
}

// MustNewNamed is NewNamed, panicking on errors (for factories whose inputs
// were validated up front).
func MustNewNamed(name string, cfg Config) Predictor {
	p, err := NewNamed(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Prime hands ops to p if it is trace-aware; other predictors are returned
// untouched. Harness code calls this once per rank before replaying.
func Prime(p Predictor, ops []trace.Op) {
	if ta, ok := p.(TraceAware); ok {
		ta.Prime(ops)
	}
}

// IsTraceAware reports whether p needs Prime. Streaming consumers check it
// before materializing a rank's ops: only trace-aware predictors justify
// paying O(rank) memory for lookahead, everything else replays at O(window).
func IsTraceAware(p Predictor) bool {
	_, ok := p.(TraceAware)
	return ok
}

func init() {
	Register(DefaultName, func(cfg Config) (Predictor, error) { return New(cfg) })
}
