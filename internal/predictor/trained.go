package predictor

import (
	"time"

	"ibpower/internal/trace"
)

// This file holds the two trace-primed predictors, registered as "oracle"
// and "offline". Both implement TraceAware: the harness hands them the
// rank's op stream before the run. They bound the design space from above —
// the oracle knows every future gap exactly, the offline profile is the best
// a per-call-type trained table can do — while the baselines in baselines.go
// bound it from below. Unprimed (e.g. inside the live PMPI layer, which has
// no trace) they never predict.

// oraclePred is the clairvoyant upper bound: primed with the rank's trace,
// it knows the exact inter-call computation gap following every call and
// predicts it, so with Algorithm 3's safety margin applied no demand wake is
// ever triggered by the rank's own next call.
type oraclePred struct {
	baseline
	gaps []time.Duration // gaps[k] = recorded compute gap after call k
	k    int
}

func (p *oraclePred) Prime(ops []trace.Op) {
	p.gaps = traceGaps(ops)
	p.k = 0
}

func (p *oraclePred) OnCall(id EventID, start, end time.Duration) Action {
	p.observe(start, end)
	k := p.k
	p.k++
	if k >= len(p.gaps) {
		return Action{}
	}
	return p.predict(p.gaps[k])
}

// profilePred is the offline-trained predictor: primed with the rank's
// trace, it tabulates the mean computation gap that follows each MPI call
// type and predicts that mean whenever the type recurs. It is what a
// profile-guided deployment (train on one run, predict on the next) would
// achieve, without the PPA's per-instance pattern tracking.
type profilePred struct {
	baseline
	mean map[EventID]time.Duration
}

func (p *profilePred) Prime(ops []trace.Op) {
	sum := make(map[EventID]time.Duration)
	cnt := make(map[EventID]int)
	var pending time.Duration
	var last EventID
	have := false
	for _, op := range ops {
		switch op.Kind {
		case trace.OpCompute:
			if have {
				pending += op.Duration
			}
		case trace.OpCall:
			if have {
				sum[last] += pending
				cnt[last]++
			}
			pending = 0
			last = EventID(op.Call)
			have = true
		}
	}
	if have {
		sum[last] += pending
		cnt[last]++
	}
	p.mean = make(map[EventID]time.Duration, len(sum))
	for id, s := range sum {
		p.mean[id] = s / time.Duration(cnt[id])
	}
}

func (p *profilePred) OnCall(id EventID, start, end time.Duration) Action {
	p.observe(start, end)
	// An unknown id (unprimed predictor) yields a zero mean, which the
	// grouping threshold filters out.
	return p.predict(p.mean[id])
}

// traceGaps extracts the computation gap following each MPI call of one
// rank's op stream; the trailing computation after the final call counts as
// that call's gap.
func traceGaps(ops []trace.Op) []time.Duration {
	var gaps []time.Duration
	var pending time.Duration
	seen := false
	for _, op := range ops {
		switch op.Kind {
		case trace.OpCompute:
			if seen {
				pending += op.Duration
			}
		case trace.OpCall:
			if seen {
				gaps = append(gaps, pending)
			}
			pending = 0
			seen = true
		}
	}
	if seen {
		gaps = append(gaps, pending)
	}
	return gaps
}

func init() {
	Register("oracle", func(cfg Config) (Predictor, error) {
		b, err := newBaseline(cfg)
		if err != nil {
			return nil, err
		}
		return &oraclePred{baseline: b}, nil
	})
	Register("offline", func(cfg Config) (Predictor, error) {
		b, err := newBaseline(cfg)
		if err != nil {
			return nil, err
		}
		return &profilePred{baseline: b}, nil
	})
}
