package predictor

import "time"

// This file holds the classic idle-time predictors from the dynamic power
// management literature, registered as "lastvalue", "ewma" and "static-gt".
// They share Algorithm 3's safety limit and the grouping threshold GT as an
// eligibility filter with the n-gram mechanism, so a comparison isolates the
// prediction component: same power mode control, different idle estimate.
//
// None of them sets Action.PPAInvoked, so the replay engine charges them
// only the per-call interception overhead — the fair accounting, since they
// do constant work per call.

// baseline carries the state the simple predictors share: inter-call gap
// tracking and the generic prediction-quality accounting (Stats.Predictions
// / Stats.PredHits, resolved against the realized gap at the next call).
type baseline struct {
	cfg Config
	st  Stats

	prevEnd  time.Duration
	haveCall bool

	pendingRaw  time.Duration
	havePending bool
}

// observe records one call, returning the idle gap that preceded it (ok is
// false on the first call, when no gap exists yet) and resolving the hit
// accounting of the previous prediction against the realized gap.
func (b *baseline) observe(start, end time.Duration) (gap time.Duration, ok bool) {
	b.st.Calls++
	if b.haveCall {
		gap = start - b.prevEnd
		if gap < 0 {
			gap = 0
		}
		ok = true
		if b.havePending {
			if b.pendingRaw <= gap {
				b.st.PredHits++
			}
			b.havePending = false
		}
	}
	b.haveCall = true
	b.prevEnd = end
	return gap, ok
}

// predict emits a shutdown action for the raw idle estimate when it clears
// the grouping threshold and the Algorithm 3 safety limit leaves a usable
// window; otherwise it returns the zero Action.
func (b *baseline) predict(raw time.Duration) Action {
	if raw < b.cfg.GT {
		return Action{}
	}
	predicted := b.cfg.predictedIdle(raw)
	if predicted <= 0 {
		return Action{}
	}
	b.st.Shutdowns++
	b.st.PredictedIdle += predicted
	b.st.Predictions++
	b.pendingRaw = raw
	b.havePending = true
	return Action{Shutdown: true, PredictedIdle: predicted, RawIdle: raw}
}

// Flush implements Predictor: a prediction still pending at end of run
// resolves as a hit — no later call arrived early, so the wake timer fired
// undisturbed.
func (b *baseline) Flush() {
	if b.havePending {
		b.st.PredHits++
		b.havePending = false
	}
}

// Stats implements Predictor.
func (b *baseline) Stats() Stats { return b.st }

// lastValue predicts that the gap following the current call equals the last
// gap observed — the simplest history predictor.
type lastValue struct {
	baseline
	last    time.Duration
	haveGap bool
}

func (p *lastValue) OnCall(id EventID, start, end time.Duration) Action {
	if gap, ok := p.observe(start, end); ok {
		p.last, p.haveGap = gap, true
	}
	if !p.haveGap {
		return Action{}
	}
	return p.predict(p.last)
}

// ewma predicts the next gap from an exponentially weighted moving average
// of all observed gaps (weight Config.Alpha on the newest, 0.5 by default).
type ewma struct {
	baseline
	avg     time.Duration
	haveAvg bool
}

func (p *ewma) OnCall(id EventID, start, end time.Duration) Action {
	if gap, ok := p.observe(start, end); ok {
		if !p.haveAvg {
			p.avg, p.haveAvg = gap, true
		} else {
			a := p.cfg.alpha()
			p.avg = time.Duration(a*float64(gap) + (1-a)*float64(p.avg))
		}
	}
	if !p.haveAvg {
		return Action{}
	}
	return p.predict(p.avg)
}

// staticGT predicts a fixed idle of exactly GT after every call — the
// "always shut down for the threshold" policy. It quantifies what blind
// shutdown costs: inside dense communication bursts every prediction
// overshoots and the run pays a demand wake per call. At the minimum
// GT = 2·Treact the safety limit leaves predicted = Treact·(1−2d), which
// the link power controller rejects as below the useful window (<= Treact)
// for every paper displacement, so there the policy degenerates to doing
// nothing.
type staticGT struct {
	baseline
}

func (p *staticGT) OnCall(id EventID, start, end time.Duration) Action {
	p.observe(start, end)
	return p.predict(p.cfg.GT)
}

func newBaseline(cfg Config) (baseline, error) {
	if err := cfg.Validate(); err != nil {
		return baseline{}, err
	}
	return baseline{cfg: cfg}, nil
}

func init() {
	Register("lastvalue", func(cfg Config) (Predictor, error) {
		b, err := newBaseline(cfg)
		if err != nil {
			return nil, err
		}
		return &lastValue{baseline: b}, nil
	})
	Register("ewma", func(cfg Config) (Predictor, error) {
		b, err := newBaseline(cfg)
		if err != nil {
			return nil, err
		}
		return &ewma{baseline: b}, nil
	})
	Register("static-gt", func(cfg Config) (Predictor, error) {
		b, err := newBaseline(cfg)
		if err != nil {
			return nil, err
		}
		return &staticGT{baseline: b}, nil
	})
}
