package predictor

import (
	"time"

	"ibpower/internal/power"
	"ibpower/internal/trace"
)

// RunOfflineOracle computes the upper bound on the mechanism: an oracle that
// knows every future inter-communication interval exactly. For each idle
// interval above GT it programs the wake timer with the true gap less the
// Algorithm 3 safety limit, so no demand wake ever happens and every
// eligible microsecond (minus displacement and shift time) is reclaimed.
// Comparing PPA against this bound quantifies what prediction errors cost
// (the BenchmarkOracleVsPPA ablation).
func RunOfflineOracle(tr *trace.Trace, cfg Config) (*OfflineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	treact := cfg.Treact
	if treact <= 0 {
		treact = power.Treact
	}
	out := &OfflineResult{
		Stats: make([]Stats, tr.NP),
		Acct:  make([]power.Accounting, tr.NP),
	}
	for r := 0; r < tr.NP; r++ {
		ctrl := power.NewController(treact)
		var t time.Duration
		var pending time.Duration // accumulated idle since the last call
		seenCall := false
		shutAt := time.Duration(-1)
		var st Stats
		for _, op := range tr.Ranks[r] {
			switch op.Kind {
			case trace.OpCompute:
				pending += op.Duration
			case trace.OpCall:
				if seenCall && pending >= cfg.GT && shutAt >= 0 {
					// The oracle knew this gap at the previous call's end.
					safety := time.Duration(float64(pending)*cfg.Displacement) + treact
					predicted := pending - safety
					if predicted > 0 && ctrl.Shutdown(shutAt, predicted) {
						st.Shutdowns++
						st.PredictedIdle += predicted
					}
				}
				t += pending
				pending = 0
				t = ctrl.Acquire(t)
				seenCall = true
				st.Calls++
				shutAt = t // calls are instantaneous in the offline model
			}
		}
		t += pending
		ctrl.Finish(t)
		out.Stats[r] = st
		out.Acct[r] = ctrl.Accounting()
		out.Delay += ctrl.TotalDelay
		if t > out.Exec {
			out.Exec = t
		}
	}
	return out, nil
}
