package network

import (
	"testing"
	"testing/quick"
	"time"

	"ibpower/internal/topology"
)

const us = time.Microsecond

func newNet(t *testing.T, mode Fidelity) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	n, err := New(topology.Paper(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDefaultConfigIsTableII(t *testing.T) {
	c := DefaultConfig()
	if c.BandwidthBitsPerSec != 40e9 {
		t.Errorf("bandwidth = %v, want 40 Gb/s", c.BandwidthBitsPerSec)
	}
	if c.SegmentSize != 2048 {
		t.Errorf("segment = %d, want 2 KB", c.SegmentSize)
	}
	if c.MPILatency != time.Microsecond {
		t.Errorf("MPI latency = %v, want 1µs", c.MPILatency)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{BandwidthBitsPerSec: 0, SegmentSize: 1},
		{BandwidthBitsPerSec: 1, SegmentSize: 0},
		{BandwidthBitsPerSec: 1, SegmentSize: 1, MPILatency: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestConfigValidationMode asserts an out-of-range Fidelity is rejected
// rather than silently timed as one of the two real modes (an unknown Mode
// previously fell through Transfer's SegmentLevel check into the
// message-level path).
func TestConfigValidationMode(t *testing.T) {
	cfg := DefaultConfig()
	for _, mode := range []Fidelity{2, 3, 255} {
		cfg.Mode = mode
		if err := cfg.Validate(); err == nil {
			t.Errorf("fidelity mode %d accepted", mode)
		}
		if _, err := New(topology.Paper(), cfg); err == nil {
			t.Errorf("network constructed with fidelity mode %d", mode)
		}
	}
	for _, mode := range []Fidelity{MessageLevel, SegmentLevel} {
		cfg.Mode = mode
		if err := cfg.Validate(); err != nil {
			t.Errorf("real mode %d rejected: %v", mode, err)
		}
	}
}

// TestNetworkOverEveryFabric asserts the model times transfers over every
// registered fabric: arrivals respect the latency floor and host links
// resolve through the Fabric interface.
func TestNetworkOverEveryFabric(t *testing.T) {
	for _, name := range topology.Names() {
		f, err := topology.Named(name)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(f, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		last := f.NumTerminals() - 1
		arr := n.Transfer(0, last, 4096, 0)
		if min := n.Config().MPILatency + n.SerTime(4096); arr < min {
			t.Errorf("%s: arrival %v below floor %v", name, arr, min)
		}
		if up := n.HostLinkID(last); up != f.HostLinkID(last) || !f.Table().IsUp(up) {
			t.Errorf("%s: HostLinkID(%d) resolves the wrong link", name, last)
		}
		if n.NumLinks() != f.NumLinks() {
			t.Errorf("%s: NumLinks = %d, want %d", name, n.NumLinks(), f.NumLinks())
		}
		if n.LinkBusy(n.HostLinkID(0)) <= 0 {
			t.Errorf("%s: transfer left the source host link idle", name)
		}
	}
}

func TestSerTime(t *testing.T) {
	n := newNet(t, MessageLevel)
	// 40 Gb/s = 5 bytes/ns: 2048 bytes -> 409.6 ns.
	got := n.SerTime(2048)
	if got < 409*time.Nanosecond || got > 410*time.Nanosecond {
		t.Errorf("SerTime(2048) = %v, want ~409.6ns", got)
	}
	if n.SerTime(0) != 0 {
		t.Error("SerTime(0) must be 0")
	}
}

func TestTransferSelf(t *testing.T) {
	n := newNet(t, MessageLevel)
	if got := n.Transfer(3, 3, 4096, 0); got != time.Microsecond {
		t.Errorf("self transfer = %v, want the MPI latency only", got)
	}
}

func TestTransferLatencyFloor(t *testing.T) {
	n := newNet(t, MessageLevel)
	// Zero-byte cross-leaf message: MPI latency + per-hop wire latency.
	got := n.Transfer(0, 251, 0, 0)
	want := time.Microsecond + 4*100*time.Nanosecond
	if got != want {
		t.Errorf("control message arrival = %v, want %v", got, want)
	}
}

func TestTransferBandwidthTerm(t *testing.T) {
	n := newNet(t, MessageLevel)
	small := n.Transfer(0, 1, 2048, 0)
	n2 := newNet(t, MessageLevel)
	big := n2.Transfer(0, 1, 1<<20, 0)
	if big <= small {
		t.Errorf("1 MB (%v) must arrive later than 2 KB (%v)", big, small)
	}
	// 1 MB at 5 B/ns is ~210 µs of serialization.
	if big < 200*us {
		t.Errorf("1 MB arrival %v implausibly fast", big)
	}
}

func TestContentionSerializes(t *testing.T) {
	n := newNet(t, MessageLevel)
	// Two 512 KB messages from the same source at the same instant share
	// the host uplink: the second must arrive roughly one serialization
	// time later.
	a1 := n.Transfer(0, 1, 512<<10, 0)
	a2 := n.Transfer(0, 2, 512<<10, 0)
	if a2 <= a1 {
		t.Errorf("contended transfer (%v) not delayed past first (%v)", a2, a1)
	}
	gap := a2 - a1
	ser := n.SerTime(512 << 10)
	if gap < ser/2 {
		t.Errorf("contention gap %v too small vs serialization %v", gap, ser)
	}
}

func TestSegmentLevelClose(t *testing.T) {
	// Segment-level and message-level timings agree within the pipelining
	// error (one segment per hop) on an uncontended path.
	msg := newNet(t, MessageLevel)
	seg := newNet(t, SegmentLevel)
	const bytes = 64 << 10
	am := msg.Transfer(0, 250, bytes, 0)
	as := seg.Transfer(0, 250, bytes, 0)
	diff := as - am
	if diff < 0 {
		diff = -diff
	}
	if diff > 3*us {
		t.Errorf("segment (%v) and message (%v) timing diverge by %v", as, am, diff)
	}
}

func TestSegmentLevelZeroBytes(t *testing.T) {
	n := newNet(t, SegmentLevel)
	got := n.Transfer(0, 251, 0, 0)
	if got <= time.Microsecond {
		t.Errorf("control message arrival = %v", got)
	}
}

func TestBusyAccounting(t *testing.T) {
	n := newNet(t, MessageLevel)
	up := n.HostLinkID(0)
	n.Transfer(0, 1, 1<<20, 0)
	if n.LinkBusy(up) != n.SerTime(1<<20) {
		t.Errorf("uplink busy = %v, want %v", n.LinkBusy(up), n.SerTime(1<<20))
	}
}

func TestRecordIntervals(t *testing.T) {
	n := newNet(t, MessageLevel)
	n.RecordIntervals(true)
	n.Transfer(0, 1, 4096, 0)
	ivs := n.BusyIntervals(n.HostLinkID(0))
	if len(ivs) != 1 {
		t.Fatalf("got %d busy intervals, want 1", len(ivs))
	}
	if ivs[0][1] <= ivs[0][0] {
		t.Error("empty busy interval recorded")
	}
}

func TestReset(t *testing.T) {
	n := newNet(t, MessageLevel)
	n.Transfer(0, 1, 4096, 0)
	n.Reset()
	tr, by := n.Stats()
	if tr != 0 || by != 0 {
		t.Error("stats not cleared by Reset")
	}
	if n.LinkBusy(n.HostLinkID(0)) != 0 {
		t.Error("busy not cleared by Reset")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		n := newNet(t, MessageLevel)
		var out []time.Duration
		for i := 0; i < 20; i++ {
			out = append(out, n.Transfer(i%8, (i+5)%8, 10000+i, time.Duration(i)*us))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: arrival is never before start + MPI latency, and bytes moved
// accumulate exactly.
func TestArrivalLowerBoundProperty(t *testing.T) {
	n := newNet(t, MessageLevel)
	var moved int64
	f := func(src, dst uint8, kb uint8, startUS uint16) bool {
		s := int(src) % 252
		d := int(dst) % 252
		b := int(kb) * 1024
		start := time.Duration(startUS) * us
		arr := n.Transfer(s, d, b, start)
		moved += int64(b)
		_, gotMoved := n.Stats()
		return arr >= start+time.Microsecond && gotMoved == moved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
