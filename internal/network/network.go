// Package network is the Venus-like network model: it times message
// transfers over an InfiniBand fabric — any topology.Fabric: the paper's
// XGFT fat tree, a dragonfly, a torus — with per-link serialization and
// contention, 2 KB segmentation and the paper's Table II parameters
// (40 Gb/s links, 1 µs MPI latency, random routing).
//
// Two fidelity modes are provided. MessageLevel reserves each link of the
// path for the whole message with cut-through head advancement (the
// Dimemas-style fast path used for the large parameter sweeps).
// SegmentLevel performs store-and-forward per 2 KB segment, modelling
// pipelining explicitly; it is slower and used for fidelity ablation.
package network

import (
	"fmt"
	"math/rand"
	"time"

	"ibpower/internal/topology"
)

// Fidelity selects the transfer timing model.
type Fidelity uint8

// Fidelity modes.
const (
	MessageLevel Fidelity = iota
	SegmentLevel
)

// Config holds network parameters (defaults are the paper's Table II).
type Config struct {
	BandwidthBitsPerSec float64       // link rate; 40e9 (4X QDR)
	SegmentSize         int           // segmentation unit; 2048 bytes
	MPILatency          time.Duration // per-message software latency; 1 µs
	WireLatency         time.Duration // per-hop propagation/switching delay
	Mode                Fidelity
	Seed                int64 // seed for random routing
}

// DefaultConfig returns the paper's simulation parameters.
func DefaultConfig() Config {
	return Config{
		BandwidthBitsPerSec: 40e9,
		SegmentSize:         2048,
		MPILatency:          time.Microsecond,
		WireLatency:         100 * time.Nanosecond,
		Mode:                MessageLevel,
		Seed:                1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BandwidthBitsPerSec <= 0 {
		return fmt.Errorf("network: non-positive bandwidth")
	}
	if c.SegmentSize <= 0 {
		return fmt.Errorf("network: non-positive segment size")
	}
	if c.MPILatency < 0 || c.WireLatency < 0 {
		return fmt.Errorf("network: negative latency")
	}
	if c.Mode != MessageLevel && c.Mode != SegmentLevel {
		return fmt.Errorf("network: unknown fidelity mode %d", c.Mode)
	}
	return nil
}

// Network times transfers over a fabric.
type Network struct {
	topo   topology.Fabric
	cfg    Config
	rng    *rand.Rand
	routes *topology.RouteCache // memoized paths; draws from rng like RouteIDsInto

	nextFree []time.Duration // per directed link: earliest next use
	busy     []time.Duration // per directed link: accumulated busy time
	segReady []time.Duration // transferSegments scratch, reused across messages

	// Fault-aware routing state (SetFaults). While the set is non-empty the
	// route cache is bypassed: RouteDraws consumes the RNG exactly as the
	// cached path would, then the fault router picks the detour, so the draw
	// sequence — and with it every fault-free transfer — stays bit-identical.
	faults     *topology.FaultSet
	frouter    topology.FaultRouter
	faultDraws []int             // RouteDraws scratch, reused across messages
	faultPath  []topology.LinkID // RouteIDsAvoiding scratch, reused across messages
	unroutable int               // transfers with no healthy path left

	// Optional per-link busy interval recording (host links, Table I from
	// the network's perspective and the Figure 6 timeline): a flat slice
	// indexed by LinkID, allocated only when recording is enabled.
	record    bool
	intervals [][][2]time.Duration

	// Optional streaming observer: every link reservation is reported as it
	// happens (telemetry time series), with no per-reservation storage.
	obs BusyObserver

	transfers int
	bytes     int64
}

// New returns a network over topo.
func New(topo topology.Fabric, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		topo:     topo,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		routes:   topology.NewRouteCache(topo),
		nextFree: make([]time.Duration, topo.NumLinks()),
		busy:     make([]time.Duration, topo.NumLinks()),
	}, nil
}

// Topology returns the underlying fabric.
func (n *Network) Topology() topology.Fabric { return n.topo }

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// BusyObserver receives every link reservation as it is made. Observers
// must be cheap and allocation-free: the callback sits on the transfer hot
// path. Reservations of one link arrive in non-decreasing start order, but
// reservations across links interleave arbitrarily.
type BusyObserver interface {
	ObserveBusy(link topology.LinkID, start, end time.Duration)
}

// Observe attaches a streaming reservation observer (nil detaches). Unlike
// RecordIntervals it stores nothing per reservation, so it is safe to leave
// attached for arbitrarily long runs.
func (n *Network) Observe(o BusyObserver) { n.obs = o }

// RecordIntervals enables per-link busy interval recording. The flat
// per-LinkID interval table is only allocated once recording is requested,
// so the sweeps that never look at intervals pay nothing for it.
func (n *Network) RecordIntervals(on bool) {
	n.record = on
	if on && n.intervals == nil {
		n.intervals = make([][][2]time.Duration, n.topo.NumLinks())
	}
}

// SetFaults attaches a live fault set: subsequent transfers route around
// blocked links via the fabric's FaultRouter. The set is read on every
// transfer, so the caller may keep mutating it (fail/repair events) between
// calls. Passing nil detaches the fault layer. Returns an error if the
// fabric does not implement degraded routing.
func (n *Network) SetFaults(fs *topology.FaultSet) error {
	if fs == nil {
		n.faults, n.frouter = nil, nil
		return nil
	}
	fr, ok := n.topo.(topology.FaultRouter)
	if !ok {
		return fmt.Errorf("network: fabric %s does not implement topology.FaultRouter", n.topo.Name())
	}
	n.faults, n.frouter = fs, fr
	return nil
}

// Unroutable returns the number of transfers for which no healthy path
// existed; those fell back to the healthy-route timing (the message is
// assumed lost-and-retried at a higher layer, which the churn engine models
// by killing the affected jobs).
func (n *Network) Unroutable() int { return n.unroutable }

// SerTime returns the serialization time of b bytes on one link at full
// width (used for sender-side injection completion).
func (n *Network) SerTime(b int) time.Duration { return n.serTime(b) }

// serTime returns the serialization time of b bytes on one link.
func (n *Network) serTime(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(float64(b) * 8 / n.cfg.BandwidthBitsPerSec * 1e9)
}

// Transfer times a message of b bytes from terminal src to terminal dst
// injected at time start. It returns the arrival time at dst. Transfers
// between a node and itself only pay the MPI latency.
func (n *Network) Transfer(src, dst, b int, start time.Duration) time.Duration {
	n.transfers++
	n.bytes += int64(b)
	head := start + n.cfg.MPILatency
	if src == dst {
		return head
	}
	// The route cache replays the same RNG draws Route would make and
	// returns a shared read-only path, so the steady-state transfer path
	// allocates nothing and timings stay bit-identical to uncached routing.
	// While faults are present the cache is bypassed: the RNG is consumed
	// through RouteDraws (identical draw sequence), and the fault router
	// picks a detour from the recorded draws.
	var path []topology.LinkID
	if n.faults != nil && !n.faults.Empty() {
		n.faultDraws = n.topo.RouteDraws(n.faultDraws[:0], src, dst, n.rng)
		var ok bool
		n.faultPath, ok = n.frouter.RouteIDsAvoiding(n.faultPath[:0], src, dst, n.faultDraws, n.faults)
		if !ok {
			// No healthy path left: count it and time the transfer over the
			// healthy route so the simulation can proceed deterministically.
			n.unroutable++
			n.faultPath = n.topo.RouteIDsFromDraws(n.faultPath[:0], src, dst, n.faultDraws)
		}
		path = n.faultPath
	} else {
		path = n.routes.Route(src, dst, n.rng)
	}
	if n.cfg.Mode == SegmentLevel {
		return n.transferSegments(path, b, head)
	}
	return n.transferMessage(path, b, head)
}

// transferMessage advances the message head hop by hop; every link is
// reserved for the full serialization time, so later messages queue behind
// it, while the head advances after only one segment (cut-through).
func (n *Network) transferMessage(path []topology.LinkID, b int, head time.Duration) time.Duration {
	seg := b
	if seg > n.cfg.SegmentSize {
		seg = n.cfg.SegmentSize
	}
	segT := n.serTime(seg)
	full := n.serTime(b)
	var lastStart time.Duration
	for _, l := range path {
		txStart := head
		if n.nextFree[l] > txStart {
			txStart = n.nextFree[l]
		}
		n.reserve(l, txStart, full)
		head = txStart + segT + n.cfg.WireLatency
		lastStart = txStart
	}
	return lastStart + full + n.cfg.WireLatency
}

// transferSegments times each 2 KB segment store-and-forward.
func (n *Network) transferSegments(path []topology.LinkID, b int, head time.Duration) time.Duration {
	if b <= 0 {
		// Pure control message: head advances through the path.
		for _, l := range path {
			txStart := head
			if n.nextFree[l] > txStart {
				txStart = n.nextFree[l]
			}
			head = txStart + n.cfg.WireLatency
		}
		return head
	}
	nseg := (b + n.cfg.SegmentSize - 1) / n.cfg.SegmentSize
	// ready[i] = time the segment is fully received at hop i's tail. The
	// scratch slice lives on the Network and is reused across messages.
	arrival := head
	if cap(n.segReady) < len(path)+1 {
		n.segReady = make([]time.Duration, len(path)+1)
	}
	ready := n.segReady[:len(path)+1]
	for i := range ready {
		ready[i] = 0
	}
	for s := 0; s < nseg; s++ {
		size := n.cfg.SegmentSize
		if s == nseg-1 {
			size = b - (nseg-1)*n.cfg.SegmentSize
		}
		segT := n.serTime(size)
		t := head
		for i, l := range path {
			if ready[i] > t {
				t = ready[i]
			}
			if n.nextFree[l] > t {
				t = n.nextFree[l]
			}
			n.reserve(l, t, segT)
			t += segT + n.cfg.WireLatency
			ready[i+1] = t
		}
		arrival = ready[len(path)]
	}
	return arrival
}

func (n *Network) reserve(link topology.LinkID, start, dur time.Duration) {
	n.nextFree[link] = start + dur
	n.busy[link] += dur
	if n.record && dur > 0 {
		n.intervals[link] = append(n.intervals[link], [2]time.Duration{start, start + dur})
	}
	if n.obs != nil && dur > 0 {
		n.obs.ObserveBusy(link, start, start+dur)
	}
}

// LinkBusy returns the accumulated busy time of a directed link.
func (n *Network) LinkBusy(link topology.LinkID) time.Duration { return n.busy[link] }

// NumLinks returns the number of directed links of the underlying fabric;
// per-link state slices (LinkBusy consumers) are sized by it.
func (n *Network) NumLinks() int { return n.topo.NumLinks() }

// BusyIntervals returns recorded busy intervals for a directed link (only
// populated when RecordIntervals(true)).
func (n *Network) BusyIntervals(link topology.LinkID) [][2]time.Duration {
	if n.intervals == nil {
		return nil
	}
	return n.intervals[link]
}

// HostLinkID returns the directed link from terminal t into its first-hop
// switch.
func (n *Network) HostLinkID(t int) topology.LinkID { return n.topo.HostLinkID(t) }

// Stats returns transfer counters.
func (n *Network) Stats() (transfers int, bytes int64) { return n.transfers, n.bytes }

// Reset clears link occupancy and counters (topology is preserved).
func (n *Network) Reset() {
	for i := range n.nextFree {
		n.nextFree[i] = 0
		n.busy[i] = 0
	}
	for i := range n.intervals {
		n.intervals[i] = nil
	}
	n.transfers = 0
	n.bytes = 0
	n.unroutable = 0
	n.rng = rand.New(rand.NewSource(n.cfg.Seed))
}
