package network

import (
	"testing"
	"time"

	"ibpower/internal/topology"
)

// runTransfers drives a fixed transfer pattern and returns the arrival times.
func runTransfers(t *testing.T, n *Network) []time.Duration {
	t.Helper()
	nt := n.Topology().NumTerminals()
	var out []time.Duration
	var clock time.Duration
	for i := 0; i < 40; i++ {
		src := (i * 7) % nt
		dst := (i*13 + 5) % nt
		out = append(out, n.Transfer(src, dst, 4096, clock))
		clock += 500 * time.Nanosecond
	}
	return out
}

// TestTransferFaultFreeIdentical pins the network half of the determinism
// contract: attaching an EMPTY fault set must not change a single arrival
// time relative to the cached fault-free path — the fault layer consumes the
// routing RNG through RouteDraws, never an extra draw.
func TestTransferFaultFreeIdentical(t *testing.T) {
	topo := topology.Paper()
	base, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runTransfers(t, base)

	faulty, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := topology.NewFaultSet(topo)
	// Fail and repair a cable: the set is empty again, but the network has
	// a non-nil fault attachment — it must still bypass nothing.
	var s2s topology.LinkID = -1
	tab := topo.Table()
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			s2s = topology.LinkID(id)
			break
		}
	}
	fs.FailLink(s2s)
	fs.RepairLink(s2s)
	if err := faulty.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	got := runTransfers(t, faulty)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transfer %d arrival differs with empty fault set: %v != %v", i, got[i], want[i])
		}
	}
	if faulty.Unroutable() != 0 {
		t.Fatalf("empty fault set produced %d unroutable transfers", faulty.Unroutable())
	}
}

// TestTransferWithFaultsDeterministic runs the same faulty workload twice
// and requires bit-identical arrivals, plus an alloc-free steady state on
// the degraded path.
func TestTransferWithFaultsDeterministic(t *testing.T) {
	topo := topology.Paper()
	mk := func() *Network {
		n, err := New(topo, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fs := topology.NewFaultSet(topo)
		tab := topo.Table()
		failed := 0
		for id := 0; id < tab.Len() && failed < 5; id += 2 {
			if tab.SwitchToSwitch(topology.LinkID(id)) {
				fs.FailLink(topology.LinkID(id))
				failed++
			}
		}
		if err := n.SetFaults(fs); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := runTransfers(t, mk()), runTransfers(t, mk())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("faulty transfer %d not deterministic: %v != %v", i, a[i], b[i])
		}
	}

	// Steady-state degraded transfers must not allocate.
	n := mk()
	runTransfers(t, n) // warm scratch buffers
	var clock time.Duration
	allocs := testing.AllocsPerRun(200, func() {
		n.Transfer(0, topo.NumTerminals()-1, 4096, clock)
		clock += time.Microsecond
	})
	if allocs != 0 {
		t.Errorf("degraded Transfer allocates %.1f/op, want 0", allocs)
	}
}

// TestTransferUnroutableFallback cuts every switch-to-switch cable: every
// cross-switch transfer is counted unroutable and timed over the healthy
// path instead of panicking or hanging.
func TestTransferUnroutableFallback(t *testing.T) {
	topo := topology.Paper()
	n, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := topology.NewFaultSet(topo)
	tab := topo.Table()
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			fs.FailLink(topology.LinkID(id))
		}
	}
	if err := n.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	n.Transfer(0, topo.NumTerminals()-1, 2048, 0)
	if n.Unroutable() != 1 {
		t.Fatalf("unroutable = %d, want 1", n.Unroutable())
	}
	n.Reset()
	if n.Unroutable() != 0 {
		t.Fatal("Reset must clear the unroutable counter")
	}
}
