// Package sweep runs independent experiment points on a bounded worker
// pool. The harness uses it to evaluate (application, process count) and
// grouping-threshold grids concurrently: each point is still simulated by
// the single-threaded replay/predictor engines, so results are bit-identical
// to a serial sweep — parallelism only changes wall-clock time, never
// output.
//
// The pool is GOMAXPROCS-sized by default, context-cancellable, propagates
// the first error (by input index, matching what a serial loop would have
// reported), and returns results in input order regardless of completion
// order.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when the caller does not pick one:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalises a requested pool size for n items: non-positive
// selects DefaultWorkers, and the pool never exceeds the number of items
// (n <= 0 means "unknown", leaving the size uncapped).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = DefaultWorkers()
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every item on a pool of at most workers goroutines and
// returns the results ordered by input index. A non-positive workers count
// selects DefaultWorkers; workers == 1 runs the items serially on the
// calling goroutine.
//
// On failure the remaining items are cancelled and the error of the
// lowest-index failed item is returned — the same error a serial loop over
// the items would have surfaced, so error behaviour does not depend on
// scheduling. Cancelling ctx stops the sweep and returns ctx's error.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, nil
	}
	w := Workers(workers, len(items))
	out := make([]R, len(items))
	if w == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstIdx int
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		// Keep the lowest-index error; a context error raised by our own
		// cancellation must not displace the failure that caused it.
		if firstErr == nil || (i < firstIdx && !errors.Is(err, context.Canceled)) {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := fn(cctx, i, items[i])
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = r
			}
		}()
	}
	// Feed indices in order so that whenever item j fails, every item i < j
	// has already been started — the minimum recorded index then equals the
	// serial loop's first failure.
feed:
	for i := range items {
		select {
		case next <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
