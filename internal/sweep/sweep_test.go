package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), 8, items, func(_ context.Context, i, v int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // shuffle completion order
		}
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("results = %d, want %d", len(got), len(items))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestMapSerialMatchesParallel(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	fn := func(_ context.Context, i, v int) (int, error) { return v*v + i, nil }
	serial, err := Map(context.Background(), 1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 4, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 24)
	_, err := Map(context.Background(), workers, items, func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low-index failure")
	errHigh := errors.New("high-index failure")
	items := make([]int, 8)
	// Index 1 fails slowly, index 5 fails immediately: the pool must still
	// report index 1's error, as a serial loop would.
	_, err := Map(context.Background(), 4, items, func(_ context.Context, i, _ int) (int, error) {
		switch i {
		case 1:
			time.Sleep(20 * time.Millisecond)
			return 0, errLow
		case 5:
			return 0, errHigh
		}
		time.Sleep(5 * time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want %v", err, errLow)
	}
}

func TestMapErrorStopsScheduling(t *testing.T) {
	var started atomic.Int32
	items := make([]int, 1000)
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, items, func(_ context.Context, i, _ int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); int(n) == len(items) {
		t.Errorf("all %d items ran despite early failure", n)
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	items := make([]int, 1000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 2, items, func(_ context.Context, i, _ int) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if n := started.Load(); int(n) == len(items) {
		t.Error("cancellation did not stop scheduling")
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 4, []int{1, 2, 3}, func(_ context.Context, i, v int) (int, error) {
		t.Error("fn ran on a cancelled context")
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i, v int) (int, error) {
		return v, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty map = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0, 0); w != DefaultWorkers() {
		t.Errorf("Workers(0, 0) = %d, want %d", w, DefaultWorkers())
	}
	if w := Workers(-3, 10); w != DefaultWorkers() {
		t.Errorf("Workers(-3, 10) = %d, want %d", w, DefaultWorkers())
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", w)
	}
	if w := Workers(5, 0); w != 5 {
		t.Errorf("Workers(5, 0) = %d, want 5", w)
	}
}
