package power

import (
	"testing"
	"time"

	"ibpower/internal/trace"
)

const ms = time.Millisecond

func deepCtl(deepTreact, minIdle time.Duration) *Controller {
	c := NewController(Treact)
	c.EnableDeep(DeepConfig{Treact: deepTreact, MinIdle: minIdle})
	return c
}

func TestDeepCycleTimerWake(t *testing.T) {
	c := deepCtl(1*ms, 2*ms)
	// 10 ms predicted idle: deep engages.
	if !c.Shutdown(0, 10*ms) {
		t.Fatal("shutdown rejected")
	}
	if m := c.Mode(5 * us); m != ModeDown {
		t.Errorf("mode at 5µs = %v", m)
	}
	if m := c.Mode(5 * ms); m != ModeDeep {
		t.Errorf("mode at 5ms = %v, want deep", m)
	}
	// Wake starts at P + Treact - deepTreact = 9.01 ms, completes 10.01 ms.
	if m := c.Mode(9*ms + 500*us); m != ModeUp {
		t.Errorf("mode at 9.5ms = %v, want shift-up", m)
	}
	if m := c.Mode(10*ms + 20*us); m != ModeFull {
		t.Errorf("mode at 10.02ms = %v, want full", m)
	}
	c.Finish(11 * ms)
	a := c.Accounting()
	if a.Deep <= 0 {
		t.Fatal("no deep time accounted")
	}
	if a.Low != 0 {
		t.Errorf("low time %v in a pure deep cycle", a.Low)
	}
	if a.Total() != 11*ms {
		t.Errorf("total = %v", a.Total())
	}
	// Deep at 25 % beats WRPS at 43 % for the same window.
	if a.SavingPct() <= 0 {
		t.Error("no saving")
	}
}

func TestDeepBelowThresholdUsesWRPS(t *testing.T) {
	c := deepCtl(1*ms, 2*ms)
	c.Shutdown(0, 500*us) // below MinIdle: plain lanes-off
	c.Finish(1 * ms)
	a := c.Accounting()
	if a.Deep != 0 {
		t.Errorf("deep time %v for a short idle", a.Deep)
	}
	if a.Low <= 0 {
		t.Error("no low-power time")
	}
}

func TestDeepDemandWakePaysDeepTreact(t *testing.T) {
	c := deepCtl(1*ms, 2*ms)
	c.Shutdown(0, 10*ms)
	// Early communication at 3 ms: full millisecond reactivation — the
	// delay the paper warns about in Section VI.
	ready := c.Acquire(3 * ms)
	if ready != 4*ms {
		t.Errorf("ready = %v, want 4ms", ready)
	}
	if c.DemandWakes != 1 {
		t.Errorf("demand wakes = %d", c.DemandWakes)
	}
}

func TestBreakevenIdle(t *testing.T) {
	cfg := DeepConfig{} // 1 ms deep Treact, 25 % draw
	be := cfg.BreakevenIdle(Treact)
	// Analytic: (0.75*1ms - 0.57*10µs) / 0.18 ≈ 4.135 ms.
	if be < 4*ms || be > 4300*us {
		t.Errorf("breakeven = %v, want ~4.13ms", be)
	}
	// A deep mode with no gain never pays off.
	worse := DeepConfig{PowerFraction: 0.6}
	if worse.BreakevenIdle(Treact) < (1<<62)-1 {
		t.Error("deep mode drawing more than WRPS must never engage")
	}
}

func TestDeepEnergyBeatsWRPSAboveBreakeven(t *testing.T) {
	// Same long idle, lanes-only vs deep: deep must consume less energy.
	idle := 20 * ms
	lanes := NewController(Treact)
	lanes.Shutdown(0, idle)
	lanes.Finish(idle + Treact)

	deep := deepCtl(1*ms, 0) // breakeven threshold (~4.1 ms) < 20 ms
	deep.Shutdown(0, idle)
	deep.Finish(idle + Treact)

	if deep.Accounting().MeanPowerFraction() >= lanes.Accounting().MeanPowerFraction() {
		t.Errorf("deep %.4f >= lanes %.4f above breakeven",
			deep.Accounting().MeanPowerFraction(), lanes.Accounting().MeanPowerFraction())
	}
}

func TestDeepTimelineState(t *testing.T) {
	c := deepCtl(1*ms, 2*ms)
	tl := c.RecordTimeline("link")
	c.Shutdown(0, 10*ms)
	c.Finish(12 * ms)
	if tl.TimeIn(trace.StateDeep) <= 0 {
		t.Error("timeline shows no deep state")
	}
}

func TestSwitchPowerModel(t *testing.T) {
	// A switch whose single managed port idles at 43 % half the time.
	a := Accounting{Full: 50 * us, Low: 50 * us}
	rep := SwitchPower([]Accounting{a}, 0)
	wantPort := 0.5 + 0.5*LowPowerFraction
	if diff := rep.MeanPortPowerFraction - wantPort; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("port fraction = %v, want %v", rep.MeanPortPowerFraction, wantPort)
	}
	// Only the link share is reduced; the rest of the switch stays on.
	want := LinkShareOfSwitch*wantPort + (1 - LinkShareOfSwitch)
	if diff := rep.PowerFraction - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("switch fraction = %v, want %v", rep.PowerFraction, want)
	}
	// Always-on ports dilute the saving.
	diluted := SwitchPower([]Accounting{a}, 3)
	if diluted.SavingPct >= rep.SavingPct {
		t.Error("always-on ports must dilute the saving")
	}
	// Empty switch: nominal power.
	if SwitchPower(nil, 4).PowerFraction != 1 {
		t.Error("portless switch must draw nominal")
	}
}

func TestFabricPower(t *testing.T) {
	a := Accounting{Full: 50 * us, Low: 50 * us}
	b := Accounting{Full: 100 * us}
	rep := FabricPower([][]Accounting{{a}, {b}}, []int{0, 0})
	if len(rep.Switches) != 2 {
		t.Fatalf("switches = %d", len(rep.Switches))
	}
	if rep.Switches[1].SavingPct != 0 {
		t.Errorf("always-full switch saving = %v", rep.Switches[1].SavingPct)
	}
	if rep.SavingPct <= 0 || rep.SavingPct >= rep.Switches[0].SavingPct {
		t.Errorf("fabric saving = %v", rep.SavingPct)
	}
}
