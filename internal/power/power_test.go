package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ibpower/internal/trace"
)

const us = time.Microsecond

func TestAccountingMath(t *testing.T) {
	a := Accounting{Full: 40 * us, Low: 50 * us, Shift: 10 * us}
	if a.Total() != 100*us {
		t.Fatalf("Total = %v", a.Total())
	}
	if got := a.LowFraction(); got != 0.5 {
		t.Errorf("LowFraction = %v, want 0.5", got)
	}
	want := 0.5 * MaxSavingFraction * 100 // 28.5
	if got := a.SavingPct(); math.Abs(got-want) > 1e-9 {
		t.Errorf("SavingPct = %v, want %v", got, want)
	}
	// Mean power: 50% at full + 50% at 43%.
	if got := a.MeanPowerFraction(); math.Abs(got-0.715) > 1e-9 {
		t.Errorf("MeanPowerFraction = %v, want 0.715", got)
	}
	// Energy at 10 W nominal for 100 µs.
	wantJ := 10 * 0.715 * (100 * us).Seconds()
	if got := a.Energy(10); math.Abs(got-wantJ) > 1e-15 {
		t.Errorf("Energy = %v, want %v", got, wantJ)
	}
}

func TestAccountingEmpty(t *testing.T) {
	var a Accounting
	if a.LowFraction() != 0 || a.SavingPct() != 0 {
		t.Error("empty accounting must report zero savings")
	}
	if a.MeanPowerFraction() != 1 {
		t.Error("empty accounting must report nominal power")
	}
}

func TestAccountingMerge(t *testing.T) {
	a := Accounting{Full: 1 * us, Low: 2 * us, Shift: 3 * us}
	b := Accounting{Full: 10 * us, Low: 20 * us, Shift: 30 * us}
	a.Merge(b)
	if a.Full != 11*us || a.Low != 22*us || a.Shift != 33*us {
		t.Errorf("Merge = %+v", a)
	}
}

func TestControllerTimerWakeCycle(t *testing.T) {
	c := NewController(Treact)
	// Shutdown at t=0 with a 100 µs predicted idle.
	if !c.Shutdown(0, 100*us) {
		t.Fatal("shutdown rejected")
	}
	// During the down-shift the mode is ModeDown.
	if m := c.Mode(5 * us); m != ModeDown {
		t.Errorf("mode at 5µs = %v, want shift-down", m)
	}
	if m := c.Mode(50 * us); m != ModeLow {
		t.Errorf("mode at 50µs = %v, want low", m)
	}
	// Timer fires at 100 µs; reactivation completes at 110 µs.
	if m := c.Mode(105 * us); m != ModeUp {
		t.Errorf("mode at 105µs = %v, want shift-up", m)
	}
	if m := c.Mode(115 * us); m != ModeFull {
		t.Errorf("mode at 115µs = %v, want full", m)
	}
	c.Finish(200 * us)
	a := c.Accounting()
	if a.Total() != 200*us {
		t.Fatalf("total = %v, want 200µs", a.Total())
	}
	if a.Low != 90*us { // low from 10µs (down done) to 100µs (timer)
		t.Errorf("low = %v, want 90µs", a.Low)
	}
	if a.Shift != 20*us {
		t.Errorf("shift = %v, want 20µs", a.Shift)
	}
	if c.TimerWakes != 1 || c.DemandWakes != 0 {
		t.Errorf("wakes = %d/%d, want 1/0", c.TimerWakes, c.DemandWakes)
	}
}

func TestControllerDemandWakeFromLow(t *testing.T) {
	c := NewController(Treact)
	c.Shutdown(0, 1000*us)
	// A call arrives at 500 µs, long before the timer: full Treact penalty.
	ready := c.Acquire(500 * us)
	if ready != 510*us {
		t.Errorf("ready = %v, want 510µs", ready)
	}
	if c.DemandWakes != 1 {
		t.Errorf("demand wakes = %d", c.DemandWakes)
	}
	if c.TotalDelay != 10*us {
		t.Errorf("delay = %v, want 10µs", c.TotalDelay)
	}
}

func TestControllerDemandWakeDuringUpShift(t *testing.T) {
	c := NewController(Treact)
	c.Shutdown(0, 100*us)
	// Call arrives at 105 µs: reactivation began at 100 µs, completes at
	// 110 µs; only the remaining 5 µs are paid.
	ready := c.Acquire(105 * us)
	if ready != 110*us {
		t.Errorf("ready = %v, want 110µs", ready)
	}
	if c.TotalDelay != 5*us {
		t.Errorf("delay = %v, want 5µs", c.TotalDelay)
	}
}

func TestControllerDemandWakeDuringDownShift(t *testing.T) {
	c := NewController(Treact)
	c.Shutdown(0, 100*us)
	// Call arrives at 4 µs, during deactivation: lanes must finish going
	// down (until 10 µs) and come back (until 20 µs).
	ready := c.Acquire(4 * us)
	if ready != 20*us {
		t.Errorf("ready = %v, want 20µs", ready)
	}
}

func TestControllerAcquireWhenFull(t *testing.T) {
	c := NewController(Treact)
	if got := c.Acquire(42 * us); got != 42*us {
		t.Errorf("Acquire on full link = %v, want 42µs", got)
	}
	if c.DelayedEvents != 0 {
		t.Error("no delay expected on a full-power link")
	}
}

func TestControllerShutdownRejections(t *testing.T) {
	c := NewController(Treact)
	if c.Shutdown(0, 5*us) {
		t.Error("predicted idle <= Treact must be rejected")
	}
	if !c.Shutdown(0, 100*us) {
		t.Fatal("valid shutdown rejected")
	}
	// Already shutting down: rejected.
	if c.Shutdown(2*us, 100*us) {
		t.Error("nested shutdown accepted")
	}
}

func TestControllerTimelineRecording(t *testing.T) {
	c := NewController(Treact)
	tl := c.RecordTimeline("link")
	c.Shutdown(10*us, 100*us)
	c.Finish(200 * us)
	if tl != c.Timeline() {
		t.Fatal("Timeline() mismatch")
	}
	if tl.TimeIn(trace.StateLow) != 90*us {
		t.Errorf("timeline low = %v, want 90µs", tl.TimeIn(trace.StateLow))
	}
	if tl.TimeIn(trace.StateShift) != 20*us {
		t.Errorf("timeline shift = %v", tl.TimeIn(trace.StateShift))
	}
	if tl.End() != 200*us {
		t.Errorf("timeline end = %v", tl.End())
	}
}

func TestControllerFinishIdempotent(t *testing.T) {
	c := NewController(Treact)
	c.Finish(100 * us)
	c.Finish(300 * us) // ignored
	if c.Accounting().Total() != 100*us {
		t.Errorf("total = %v after double finish", c.Accounting().Total())
	}
}

// Property: accounting is conserved — for any sequence of shutdowns and
// acquires, Full+Low+Shift equals the finish time, and Acquire never travels
// back in time.
func TestControllerConservationProperty(t *testing.T) {
	f := func(ops [12]uint16) bool {
		c := NewController(Treact)
		var now time.Duration
		for _, o := range ops {
			step := time.Duration(o%500) * us
			now += step
			if o%3 == 0 {
				c.Shutdown(now, time.Duration(o%200)*us)
			} else {
				ready := c.Acquire(now)
				if ready < now {
					return false
				}
				now = ready
			}
		}
		end := now + 50*us
		c.Finish(end)
		return c.Accounting().Total() == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the reactivation penalty never exceeds Treact when the link was
// in low-power mode or waking.
func TestControllerPenaltyBoundProperty(t *testing.T) {
	f := func(shutdownIdle, arrive uint16) bool {
		idle := time.Duration(shutdownIdle%1000+11) * us
		c := NewController(Treact)
		if !c.Shutdown(0, idle) {
			return true
		}
		at := time.Duration(arrive) * us
		if at < Treact { // during down-shift the bound is 2·Treact
			return c.Acquire(at)-at <= 2*Treact
		}
		return c.Acquire(at)-at <= Treact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeFull: "full", ModeLow: "low", ModeDown: "shift-down", ModeUp: "shift-up",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() != "?" {
		t.Error("unknown mode must stringify to ?")
	}
}

func TestPaperConstants(t *testing.T) {
	// Guard the constants the reproduction depends on (Section II-A).
	if Treact != 10*us {
		t.Errorf("Treact = %v, want 10µs", Treact)
	}
	if LowPowerFraction != 0.43 {
		t.Errorf("LowPowerFraction = %v, want 0.43", LowPowerFraction)
	}
	if math.Abs(MaxSavingFraction-0.57) > 1e-12 {
		t.Errorf("MaxSavingFraction = %v, want 0.57", MaxSavingFraction)
	}
	if FullBandwidthBitsPerSec != 40e9 || LowBandwidthBitsPerSec != 10e9 {
		t.Error("bandwidths must be 40/10 Gb/s (4X vs 1X QDR)")
	}
}
