package power

import (
	"fmt"
	"time"

	"ibpower/internal/trace"
)

// Controller is the link power controller on the HCA (Figure 5 of the
// paper): it executes turn-off-lanes commands, arms the hardware wake timer
// with the predicted idle duration, and reactivates lanes when the timer
// elapses — or on demand, paying up to Treact of delay, when communication
// arrives before the lanes are back.
//
// Management is one-directional: predicted durations are supplied to the
// controller; no feedback is required by the prediction side (Section III-B).
type Controller struct {
	treact time.Duration

	// Deep mode (EnableDeep): predicted idles above deepMinIdle also power
	// down switch elements; waking those takes deepTreact.
	deep         bool
	deepTreact   time.Duration
	deepMinIdle  time.Duration
	deepFraction float64
	deepCycle    bool // the current shutdown cycle targets deep mode

	mode      Mode
	modeSince time.Duration // when the current mode was entered
	timerFire time.Duration // absolute wake-timer time (ModeLow/ModeDeep)
	shiftEnd  time.Duration // absolute end of the current shift (ModeDown/Up)

	acct     Accounting
	timeline *trace.Timeline // optional state timeline recording
	observe  func(m Mode, from, to time.Duration)
	closed   bool

	// Counters.
	Shutdowns     int // accepted turn-off-lanes commands
	TimerWakes    int // reactivations triggered by the timer
	DemandWakes   int // reactivations forced by early communication
	DelayedEvents int // communications that had to wait for the link
	TotalDelay    time.Duration
}

// NewController returns a controller for a link that starts in full-power
// mode at time 0. treact <= 0 selects the paper's Treact.
func NewController(treact time.Duration) *Controller {
	return NewControllerAt(treact, 0)
}

// NewControllerAt returns a controller whose accounting window opens at
// start instead of time 0: the link is in full-power mode and no time before
// start is ever accounted. Jobs admitted mid-timeline onto a shared fabric
// use this so their energy numbers span exactly their own lifetime.
func NewControllerAt(treact, start time.Duration) *Controller {
	if treact <= 0 {
		treact = Treact
	}
	return &Controller{treact: treact, mode: ModeFull, modeSince: start}
}

// RecordTimeline attaches a timeline that receives state intervals.
func (c *Controller) RecordTimeline(label string) *trace.Timeline {
	c.timeline = &trace.Timeline{Label: label}
	return c.timeline
}

// Timeline returns the attached timeline, or nil.
func (c *Controller) Timeline() *trace.Timeline { return c.timeline }

// Observe attaches fn to receive every closed mode interval [from, to) as
// accounting advances, in time order. Unlike RecordTimeline nothing is
// stored, so streaming consumers (telemetry time series) can watch
// arbitrarily long runs; fn must not allocate if the replay hot path is to
// stay allocation-free.
func (c *Controller) Observe(fn func(m Mode, from, to time.Duration)) { c.observe = fn }

// Treact returns the configured lane transition time.
func (c *Controller) Treact() time.Duration { return c.treact }

// Mode returns the power mode at time t (t must be >= the last event time).
func (c *Controller) Mode(t time.Duration) Mode {
	c.catchUp(t)
	return c.mode
}

// Accounting returns accumulated per-mode times up to the last event.
func (c *Controller) Accounting() Accounting { return c.acct }

// catchUp advances internal mode transitions that complete before t without
// consuming t itself.
func (c *Controller) catchUp(t time.Duration) {
	for {
		switch c.mode {
		case ModeDown:
			if t < c.shiftEnd {
				return
			}
			if c.deepCycle {
				c.account(c.shiftEnd, ModeDeep)
			} else {
				c.account(c.shiftEnd, ModeLow)
			}
		case ModeLow:
			if t < c.timerFire {
				return
			}
			c.account(c.timerFire, ModeUp)
			c.shiftEnd = c.timerFire + c.treact
			c.TimerWakes++
		case ModeDeep:
			// The wake timer is programmed deepTreact early so that the
			// switch elements are back together with the lanes.
			if t < c.timerFire {
				return
			}
			c.account(c.timerFire, ModeUp)
			c.shiftEnd = c.timerFire + c.deepTreact
			c.TimerWakes++
		case ModeUp:
			if t < c.shiftEnd {
				return
			}
			c.account(c.shiftEnd, ModeFull)
		default:
			return
		}
	}
}

// account closes the current mode interval at time t and enters next.
func (c *Controller) account(t time.Duration, next Mode) {
	if t < c.modeSince {
		panic(fmt.Sprintf("power: time going backwards: %v < %v", t, c.modeSince))
	}
	d := t - c.modeSince
	var s trace.LinkState
	switch c.mode {
	case ModeFull:
		c.acct.Full += d
		s = trace.StateFull
	case ModeLow:
		c.acct.Low += d
		s = trace.StateLow
	case ModeDeep:
		c.acct.Deep += d
		s = trace.StateDeep
	default:
		c.acct.Shift += d
		s = trace.StateShift
	}
	if c.timeline != nil && d > 0 {
		c.timeline.Add(c.modeSince, t, s)
	}
	if c.observe != nil && d > 0 {
		c.observe(c.mode, c.modeSince, t)
	}
	c.mode = next
	c.modeSince = t
}

// Shutdown executes a turn-off-lanes command at time t with the predicted
// idle duration (the WRPS method of Algorithm 3). The wake timer is armed at
// t and fires after predictedIdle, whereupon reactivation begins and
// completes Treact later. Commands are ignored when the link is not in
// full-power mode or when predictedIdle leaves no useful low-power window.
func (c *Controller) Shutdown(t, predictedIdle time.Duration) bool {
	c.catchUp(t)
	if c.mode != ModeFull || t < c.modeSince {
		return false
	}
	// The lanes spend Treact deactivating; a window that ends before the
	// deactivation completes would never reach low-power mode.
	if predictedIdle <= c.treact {
		return false
	}
	c.deepCycle = c.deep && predictedIdle > c.deepMinIdle && predictedIdle > c.deepTreact
	c.account(t, ModeDown)
	c.shiftEnd = t + c.treact
	if c.deepCycle {
		// Lanes must be fully up at t + predictedIdle + Treact, same as the
		// plain WRPS contract; the deep wake starts deepTreact before that.
		c.timerFire = t + predictedIdle + c.treact - c.deepTreact
		if c.timerFire < c.shiftEnd {
			c.timerFire = c.shiftEnd
		}
		c.acct.DeepFraction = c.deepFraction
	} else {
		c.timerFire = t + predictedIdle
	}
	c.Shutdowns++
	return true
}

// Acquire reports when a communication arriving at time t can use the link.
// If lanes are down or still waking, reactivation is forced immediately
// (demand wake) and the returned time reflects the remaining penalty, which
// never exceeds Treact (Section IV-D: "The penalty could be full or smaller
// than reactivation time depending whether the reactivation has been
// previously started but still the communication is not ready on time").
func (c *Controller) Acquire(t time.Duration) time.Duration {
	c.catchUp(t)
	switch c.mode {
	case ModeFull:
		// A prior demand wake may have advanced the mode boundary past t;
		// the link is usable only once that boundary is reached.
		if t < c.modeSince {
			c.delayed(t, c.modeSince)
			return c.modeSince
		}
		return t
	case ModeDown:
		// Deactivation must complete before lanes can be re-enabled.
		ready := c.shiftEnd + c.treact
		c.account(c.shiftEnd, ModeUp)
		c.shiftEnd = ready
		c.account(ready, ModeFull)
		c.deepCycle = false
		c.DemandWakes++
		c.delayed(t, ready)
		return ready
	case ModeLow:
		// Timer has not fired yet: wake on demand, full Treact penalty.
		ready := t + c.treact
		c.account(t, ModeUp)
		c.shiftEnd = ready
		c.account(ready, ModeFull)
		c.DemandWakes++
		c.delayed(t, ready)
		return ready
	case ModeDeep:
		// Demand wake from deep mode: the full switch-element reactivation
		// must be paid — the delay the paper warns "could lead to
		// unacceptable large increase of execution time" without accurate
		// prediction.
		ready := t + c.deepTreact
		c.account(t, ModeUp)
		c.shiftEnd = ready
		c.account(ready, ModeFull)
		c.deepCycle = false
		c.DemandWakes++
		c.delayed(t, ready)
		return ready
	case ModeUp:
		// Reactivation already under way; pay the remainder.
		ready := c.shiftEnd
		c.account(ready, ModeFull)
		c.delayed(t, ready)
		return ready
	}
	return t
}

func (c *Controller) delayed(t, ready time.Duration) {
	if ready > t {
		c.DelayedEvents++
		c.TotalDelay += ready - t
	}
}

// Finish closes accounting at end-of-run time t. Further use is invalid.
func (c *Controller) Finish(t time.Duration) {
	if c.closed {
		return
	}
	c.catchUp(t)
	if t < c.modeSince {
		t = c.modeSince
	}
	c.account(t, c.mode)
	c.closed = true
}
