// Package power models InfiniBand link power management with Width Reduction
// Power Saving (WRPS): shutting down three of the four lanes of a 4X link
// while one lane stays active, preserving connectivity (Section II-A of the
// paper).
//
// The model follows the paper's assumptions:
//
//   - Lane activation and deactivation each take Treact (up to 10 µs).
//   - While a port runs in low-power (1X) mode, the switch consumes 43 % of
//     its nominal power (Mellanox SX6036 WRPS figure); hence the maximum
//     saving while low is 57 %.
//   - During mode shifts the consumed power equals full-power consumption.
package power

import "time"

// Constants from the paper.
const (
	// Treact is the time to activate or deactivate the inactive lanes of a
	// link (Section II: state changes "could take up to 10 microseconds").
	Treact = 10 * time.Microsecond

	// LowPowerFraction is the power drawn in low-power (1X) mode relative to
	// nominal full (4X) power: the Mellanox SX6036 consumes 43 % of nominal
	// with WRPS engaged (Section II-A).
	LowPowerFraction = 0.43

	// LinkShareOfSwitch is the fraction of switch power consumed by links
	// (64 % in an IBM InfiniBand 8-port 12X switch; Section I).
	LinkShareOfSwitch = 0.64

	// FullWidthLanes and LowWidthLanes are the lane counts of a 4X link in
	// full and WRPS mode.
	FullWidthLanes = 4
	LowWidthLanes  = 1

	// FullBandwidth is the 4X QDR data rate (40 Gb/s); WRPS reduces the port
	// to 1X QDR (10 Gb/s).
	FullBandwidthBitsPerSec = 40e9
	LowBandwidthBitsPerSec  = 10e9
)

// MaxSavingFraction is the largest achievable switch power saving: spending
// 100 % of the time in low-power mode saves 1 - LowPowerFraction.
const MaxSavingFraction = 1 - LowPowerFraction

// Mode is a link power mode.
type Mode uint8

// Link power modes.
const (
	ModeFull Mode = iota // all four lanes active, power-unaware consumption
	ModeLow              // one lane active (WRPS engaged)
	ModeDown             // lanes deactivating (shift; full power charged)
	ModeUp               // lanes reactivating (shift; full power charged)
	ModeDeep             // lanes + switch elements down (Section VI scenario)
)

// String returns a short mode label.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeLow:
		return "low"
	case ModeDown:
		return "shift-down"
	case ModeUp:
		return "shift-up"
	case ModeDeep:
		return "deep"
	}
	return "?"
}

// Accounting accumulates time per power mode for one link.
type Accounting struct {
	Full  time.Duration
	Low   time.Duration
	Shift time.Duration // both shift directions; charged at full power
	Deep  time.Duration // deep mode (only with EnableDeep)

	// DeepFraction is the deep-mode draw used for this accounting; zero
	// means the deep mode was never enabled.
	DeepFraction float64
}

// Total returns the accounted wall time.
func (a Accounting) Total() time.Duration { return a.Full + a.Low + a.Shift + a.Deep }

// LowFraction returns the fraction of time spent in low-power mode.
func (a Accounting) LowFraction() float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return float64(a.Low) / float64(t)
}

// SavingPct returns the switch power saving in percent relative to the
// power-unaware always-on baseline: time at 43 % power in WRPS mode plus
// time at the deep fraction in deep mode.
func (a Accounting) SavingPct() float64 {
	return (1 - a.MeanPowerFraction()) * 100
}

// MeanPowerFraction returns average power relative to nominal.
func (a Accounting) MeanPowerFraction() float64 {
	t := a.Total()
	if t == 0 {
		return 1
	}
	df := a.DeepFraction
	if df <= 0 {
		df = DeepPowerFraction
	}
	full := float64(a.Full+a.Shift) + float64(a.Low)*LowPowerFraction + float64(a.Deep)*df
	return full / float64(t)
}

// Energy returns consumed energy in joules given the nominal link power in
// watts.
func (a Accounting) Energy(nominalWatts float64) float64 {
	return nominalWatts * a.MeanPowerFraction() * a.Total().Seconds()
}

// Merge accumulates other into a.
func (a *Accounting) Merge(other Accounting) {
	a.Full += other.Full
	a.Low += other.Low
	a.Shift += other.Shift
	a.Deep += other.Deep
	if a.DeepFraction == 0 {
		a.DeepFraction = other.DeepFraction
	}
}
