package power

import "time"

// Deep low-power mode — the paper's future-work scenario (Section VI):
// besides the link lanes, other switch elements (input buffers, crossbars)
// can be powered down during long predicted idle intervals. Their
// reactivation is much longer — "can take up to a millisecond" — so an
// accurate predictor is what makes the mode usable at all: a demand wake
// from deep mode stalls communication for up to DeepTreact.
const (
	// DeepTreact is the reactivation time of the deeper switch elements.
	DeepTreact = 1 * time.Millisecond

	// DeepPowerFraction is the switch draw in deep mode relative to nominal.
	// The paper quantifies only the WRPS figure (43 %); for the deep mode we
	// assume the links' WRPS floor plus most of the buffer/crossbar share
	// also removed: 25 % of nominal. Documented as an assumption in
	// DESIGN.md.
	DeepPowerFraction = 0.25
)

// DeepConfig enables the deep mode on a Controller.
type DeepConfig struct {
	Treact time.Duration // deep reactivation time; <= 0 selects DeepTreact
	// MinIdle is the smallest predicted idle for which deep mode is
	// entered; <= 0 selects the energy breakeven point against plain WRPS
	// (see BreakevenIdle), since entering deep mode below it wastes energy:
	// the long reactivation shift is charged at full power.
	MinIdle time.Duration
	// PowerFraction is the deep-mode draw; <= 0 selects DeepPowerFraction.
	PowerFraction float64
}

func (d DeepConfig) treact() time.Duration {
	if d.Treact <= 0 {
		return DeepTreact
	}
	return d.Treact
}

// BreakevenIdle returns the predicted idle length above which deep mode
// saves more energy than plain WRPS: solve
//
//	(P − deepTreact)·(1 − deepFraction) > (P − Treact)·(1 − LowPowerFraction)
//
// for P (both sides relative to nominal power; the reactivation shifts are
// charged at full power per the paper's model).
func (d DeepConfig) BreakevenIdle(laneTreact time.Duration) time.Duration {
	deepGain := 1 - d.fraction()
	laneGain := 1 - LowPowerFraction
	num := deepGain*float64(d.treact()) - laneGain*float64(laneTreact)
	den := deepGain - laneGain
	if den <= 0 {
		return 1 << 62 // deep mode never pays off
	}
	return time.Duration(num / den)
}

func (d DeepConfig) minIdle(laneTreact time.Duration) time.Duration {
	if d.MinIdle <= 0 {
		return d.BreakevenIdle(laneTreact)
	}
	return d.MinIdle
}

func (d DeepConfig) fraction() float64 {
	if d.PowerFraction <= 0 {
		return DeepPowerFraction
	}
	return d.PowerFraction
}

// EnableDeep switches the controller to the two-level policy: predicted
// idles above cfg.MinIdle enter deep mode (lanes and switch elements down),
// shorter ones use plain WRPS.
func (c *Controller) EnableDeep(cfg DeepConfig) {
	c.deep = true
	c.deepTreact = cfg.treact()
	c.deepMinIdle = cfg.minIdle(c.treact)
	c.deepFraction = cfg.fraction()
}
