package power

// Switch- and fabric-level aggregation. The paper reports savings per IB
// switch assuming the whole switch drops to 43 % of nominal while its links
// run in WRPS mode; this file additionally provides the finer-grained
// decomposition the paper's introduction motivates — links take
// LinkShareOfSwitch (64 %) of switch power, the remainder goes to buffers,
// crossbars and control — so that fabric-level energy can be reported for
// topologies where only some ports of a switch are power-managed.

// SwitchReport aggregates one switch.
type SwitchReport struct {
	// Ports is the number of power-managed (host) ports.
	Ports int
	// MeanPortPowerFraction is the average per-port power relative to a
	// fully-on port.
	MeanPortPowerFraction float64
	// PowerFraction is the switch draw relative to nominal, decomposed as
	// link share × port fractions + non-link share (gated only by deep
	// mode, see below).
	PowerFraction float64
	// SavingPct is 100·(1 − PowerFraction).
	SavingPct float64
}

// SwitchPower aggregates the host-port accountings of one switch.
// alwaysOnPorts counts ports that are never power-managed (inter-switch
// uplinks); they contribute full power to the link share.
//
// The non-link share of the switch (buffers, crossbars: 36 %) is gated only
// when every managed port is simultaneously in deep mode; as a conservative
// approximation we gate it by the minimum per-port deep fraction.
func SwitchPower(ports []Accounting, alwaysOnPorts int) SwitchReport {
	rep := SwitchReport{Ports: len(ports)}
	if len(ports) == 0 {
		rep.MeanPortPowerFraction = 1
		rep.PowerFraction = 1
		return rep
	}
	sum := 0.0
	minDeep := 1.0
	for _, a := range ports {
		sum += a.MeanPowerFraction()
		t := a.Total()
		df := 0.0
		if t > 0 {
			df = float64(a.Deep) / float64(t)
		}
		if df < minDeep {
			minDeep = df
		}
	}
	total := float64(len(ports)) + float64(alwaysOnPorts)
	rep.MeanPortPowerFraction = (sum + float64(alwaysOnPorts)) / total

	df := ports[0].DeepFraction
	if df <= 0 {
		df = DeepPowerFraction
	}
	nonLink := (1 - minDeep) + minDeep*df
	rep.PowerFraction = LinkShareOfSwitch*rep.MeanPortPowerFraction + (1-LinkShareOfSwitch)*nonLink
	rep.SavingPct = 100 * (1 - rep.PowerFraction)
	return rep
}

// FabricReport aggregates a set of switches.
type FabricReport struct {
	Switches  []SwitchReport
	SavingPct float64 // mean over switches
}

// FabricPower aggregates per-switch host-port groups. alwaysOn[s] counts the
// unmanaged ports of switch s.
func FabricPower(groups [][]Accounting, alwaysOn []int) FabricReport {
	var rep FabricReport
	sum := 0.0
	for s, g := range groups {
		ao := 0
		if s < len(alwaysOn) {
			ao = alwaysOn[s]
		}
		sw := SwitchPower(g, ao)
		rep.Switches = append(rep.Switches, sw)
		sum += sw.SavingPct
	}
	if len(rep.Switches) > 0 {
		rep.SavingPct = sum / float64(len(rep.Switches))
	}
	return rep
}
