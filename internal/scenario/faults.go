package scenario

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/topology"
)

// FaultClause is one failure process of a scenario: entities of one kind
// (link, switch, term) fail with inter-failure gaps drawn from Proc (the
// same machinery as job arrivals) and are repaired MTTR later — or never,
// when MTTR is zero.
type FaultClause struct {
	Kind multijob.FaultKind
	Proc ArrivalProc   // mean-time-between-failures process
	MTTR time.Duration // mean time to repair; 0 = permanent failure
}

// String renders the clause in canonical ParseFaults form.
func (c FaultClause) String() string {
	s := c.Kind.String() + ":" + c.Proc.String()
	if c.MTTR > 0 {
		s += ":mttr=" + c.MTTR.String()
	}
	return s
}

// ParseFaults parses a comma-separated fault spec such as
//
//	link:poisson:10m:mttr=2m,switch:fixed:5m
//
// Each clause is kind:dist:mean[:mttr=duration], where kind is link, switch,
// or term and dist:mean is an arrival process (ParseArrivalProc).
func ParseFaults(s string) ([]FaultClause, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []FaultClause
	for _, part := range strings.Split(s, ",") {
		c, err := parseFaultClause(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func parseFaultClause(s string) (FaultClause, error) {
	kindStr, rest, ok := strings.Cut(s, ":")
	if !ok {
		return FaultClause{}, fmt.Errorf("scenario: fault clause %q wants kind:dist:mean[:mttr=d]", s)
	}
	var c FaultClause
	switch kindStr {
	case "link":
		c.Kind = multijob.FaultLink
	case "switch":
		c.Kind = multijob.FaultSwitch
	case "term":
		c.Kind = multijob.FaultTerminal
	default:
		return FaultClause{}, fmt.Errorf("scenario: unknown fault kind %q (want link, switch, or term)", kindStr)
	}
	if i := strings.LastIndex(rest, ":mttr="); i >= 0 {
		mttr, err := time.ParseDuration(rest[i+len(":mttr="):])
		if err != nil {
			return FaultClause{}, fmt.Errorf("scenario: fault mttr %q: %v", rest[i+len(":mttr="):], err)
		}
		if mttr <= 0 {
			return FaultClause{}, fmt.Errorf("scenario: fault mttr must be positive, got %v", mttr)
		}
		c.MTTR = mttr
		rest = rest[:i]
	}
	proc, err := ParseArrivalProc(rest)
	if err != nil {
		return FaultClause{}, err
	}
	c.Proc = proc
	return c, nil
}

// FormatFaults renders clauses in canonical ParseFaults form.
func FormatFaults(cs []FaultClause) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// maxStreamFailures caps how many failures one clause may generate, so an
// aggressive fault rate cannot spin a scenario forever.
const maxStreamFailures = 4096

// faultKey identifies a fabric entity across clauses, so two clauses of the
// same kind never double-fail one entity.
type faultKey struct {
	kind  multijob.FaultKind
	index int32
}

// faultClauseState is one clause's lazy generator: its own RNG, its entity
// population, and the next failure it will emit.
type faultClauseState struct {
	clause FaultClause
	rng    *rand.Rand
	pop    []int32
	last   time.Duration
	next   multijob.FaultEvent
	ok     bool
	fails  int
}

// faultRepairHeap orders pending repair events by (time, kind, index).
type faultRepairHeap []multijob.FaultEvent

func (h faultRepairHeap) Len() int { return len(h) }
func (h faultRepairHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].Kind != h[j].Kind {
		return h[i].Kind < h[j].Kind
	}
	return h[i].Index < h[j].Index
}
func (h faultRepairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *faultRepairHeap) Push(x any)   { *h = append(*h, x.(multijob.FaultEvent)) }
func (h *faultRepairHeap) Pop() any {
	old := *h
	n := len(old) - 1
	x := old[n]
	*h = old[:n]
	return x
}

// FaultStream expands fault clauses into a lazy, time-ordered event stream —
// the standard multijob.FaultSource. Every draw comes from per-clause RNGs
// seeded by a derivation of the scenario seed, so adding faults to a spec
// never perturbs the arrival stream, and the same (clauses, fabric, seed)
// triple always yields the same events. Failed entities are skipped until
// their repair fires (an entity never double-fails), and each clause stops
// after maxStreamFailures failures.
type FaultStream struct {
	clauses []faultClauseState
	repairs faultRepairHeap
	down    map[faultKey]bool
}

// faultSeed derives the fault-layer RNG seed for one clause from the
// scenario seed, far away from the arrival stream's direct use of the seed.
func faultSeed(seed int64, clause int) int64 {
	return (seed ^ 0x5DEECE66D) + int64(clause)*0x9E3779B9
}

// NewFaultStream builds the event stream for clauses over fabric f. Link
// faults draw from the switch-to-switch cables (host cables are the terminal
// clause's population: a dead host link and a dead terminal are the same
// failure), switch faults from every switch, terminal faults from every
// terminal.
func NewFaultStream(clauses []FaultClause, f topology.Fabric, seed int64) (*FaultStream, error) {
	tab := f.Table()
	var cables []int32
	swSet := make(map[int32]bool)
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			cables = append(cables, int32(id))
		}
		if tab.Kind[id]&topology.LinkFromSwitch != 0 {
			swSet[tab.From[id]] = true
		}
		if tab.Kind[id]&topology.LinkToSwitch != 0 {
			swSet[tab.To[id]] = true
		}
	}
	switches := make([]int32, 0, len(swSet))
	for sw := range swSet {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	terminals := make([]int32, f.NumTerminals())
	for i := range terminals {
		terminals[i] = int32(i)
	}

	s := &FaultStream{down: make(map[faultKey]bool)}
	for ci, c := range clauses {
		var pop []int32
		switch c.Kind {
		case multijob.FaultLink:
			pop = cables
		case multijob.FaultSwitch:
			pop = switches
		case multijob.FaultTerminal:
			pop = terminals
		default:
			return nil, fmt.Errorf("scenario: fault clause %d has unknown kind %d", ci, c.Kind)
		}
		if len(pop) == 0 {
			return nil, fmt.Errorf("scenario: fabric %s has no %s entities to fail", f.Name(), c.Kind)
		}
		s.clauses = append(s.clauses, faultClauseState{
			clause: c,
			rng:    rand.New(rand.NewSource(faultSeed(seed, ci))),
			pop:    pop,
		})
	}
	for i := range s.clauses {
		s.advance(&s.clauses[i])
	}
	return s, nil
}

// advance generates cs's next failure: a gap draw, then an entity draw
// (redrawn a few times if it lands on an already-failed entity; a fully
// saturated draw forfeits that failure slot, keeping the stream finite).
func (s *FaultStream) advance(cs *faultClauseState) {
	cs.ok = false
	for cs.fails < maxStreamFailures {
		gap := cs.clause.Proc.Gap(cs.rng)
		if gap < time.Nanosecond {
			gap = time.Nanosecond
		}
		cs.last += gap
		cs.fails++
		var entity int32
		found := false
		for try := 0; try < 4; try++ {
			e := cs.pop[cs.rng.Intn(len(cs.pop))]
			if !s.down[faultKey{cs.clause.Kind, e}] {
				entity, found = e, true
				break
			}
		}
		if !found {
			continue
		}
		s.down[faultKey{cs.clause.Kind, entity}] = true
		cs.next = multijob.FaultEvent{At: cs.last, Kind: cs.clause.Kind, Index: entity}
		cs.ok = true
		return
	}
}

// peekSource returns where the next event comes from: -1 for the repair
// heap, a clause index otherwise, or -2 when the stream is dry. Repairs win
// ties so capacity is restored before new damage lands at the same instant.
func (s *FaultStream) peekSource() int {
	src, at := -2, time.Duration(0)
	if len(s.repairs) > 0 {
		src, at = -1, s.repairs[0].At
	}
	for i := range s.clauses {
		cs := &s.clauses[i]
		if cs.ok && (src == -2 || cs.next.At < at) {
			src, at = i, cs.next.At
		}
	}
	return src
}

// Peek implements multijob.FaultSource.
func (s *FaultStream) Peek() (multijob.FaultEvent, bool) {
	switch src := s.peekSource(); src {
	case -2:
		return multijob.FaultEvent{}, false
	case -1:
		return s.repairs[0], true
	default:
		return s.clauses[src].next, true
	}
}

// Pop implements multijob.FaultSource. Popping a failure schedules its
// repair (when the clause has an MTTR) and pre-draws the clause's next
// failure; popping a repair frees the entity for future failures.
func (s *FaultStream) Pop() multijob.FaultEvent {
	src := s.peekSource()
	if src == -2 {
		panic("scenario: Pop on a dry fault stream")
	}
	if src == -1 {
		ev := heap.Pop(&s.repairs).(multijob.FaultEvent)
		delete(s.down, faultKey{ev.Kind, ev.Index})
		return ev
	}
	cs := &s.clauses[src]
	ev := cs.next
	if cs.clause.MTTR > 0 {
		heap.Push(&s.repairs, multijob.FaultEvent{
			At: ev.At + cs.clause.MTTR, Kind: ev.Kind, Repair: true, Index: ev.Index,
		})
	}
	s.advance(cs)
	return ev
}

// RepairPending implements multijob.FaultSource.
func (s *FaultStream) RepairPending() bool { return len(s.repairs) > 0 }
