// Package scenario turns a compact textual spec into a reproducible stream
// of job arrivals and drives the multijob churn engine under a named
// scheduling policy — the online-cluster view of the paper's energy
// question: jobs arriving, queueing, running, and freeing terminals on one
// shared fabric over simulated days.
//
// A Spec ("jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7", or the
// same keys one-per-line in a file) describes job count, application mix,
// a size distribution (fixed, uniform, choices, normal, Zipf), an arrival
// process (Poisson or fixed-interval, with a speed multiplier), and a seed;
// Generate expands it deterministically. Schedulers live behind a named
// registry mirroring the predictor, fabric, and placement registries:
// "fcfs" (strict arrival order, the default), "backfill" (EASY-style, no
// reservations), and "power-aware" (admits jobs onto already-woken first-hop
// switches first, preserving the fabric's idle-link coverage).
//
// Everything is deterministic for a given Config: the spec expansion is a
// pure function of the seed, the event loop is serial, and parallelism only
// spreads per-(app, NP) preparation over the worker pool in first-appearance
// order — results are bit-identical at any -parallel setting.
package scenario

import (
	"context"
	"fmt"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Config parameterises one scenario run.
type Config struct {
	// Spec is the arrival stream description; zero-valued fields of a
	// partially built spec fail validation, so build via DefaultSpec,
	// ParseSpec, or ParseSpecFile.
	Spec Spec
	// Scheduler selects the policy from the scheduler registry ("fcfs",
	// "backfill", "power-aware", or anything registered by the embedding
	// program); empty selects DefaultScheduler.
	Scheduler string
	// Placement orders the terminal free-list (the placement registry);
	// empty selects multijob.DefaultPlacement. The spec's seed feeds the
	// "random" policy via Opt.Seed when Opt.Seed is zero.
	Placement string
	// Opt, Displacement, Replay, and the hooks: exactly as on
	// multijob.Config.
	Opt          workloads.Options
	Displacement float64
	Replay       replay.Config
	SelectGT     func(src trace.Source) (time.Duration, error)
	Generate     func(app string, np int) (trace.Source, error)
	Dedicated    func(src trace.Source, gt time.Duration, displacement float64) (*replay.Result, error)

	// Ctx stops the event loop early when cancelled.
	Ctx context.Context
	// Retry governs requeueing of fault-killed jobs when the spec has fault
	// clauses; the zero value selects DefaultRetryPolicy.
	Retry multijob.RetryPolicy
}

// DefaultRetryPolicy is applied when the spec injects faults and the config
// leaves Retry zero: three retries with 1s exponential backoff.
func DefaultRetryPolicy() multijob.RetryPolicy {
	return multijob.RetryPolicy{MaxRetries: 3, Backoff: time.Second}
}

// Run expands the spec and simulates the scenario. The result is
// deterministic for a given Config at any Replay.Parallelism setting.
func Run(cfg Config) (*multijob.ChurnResult, error) {
	if err := CheckRegistered(cfg.Scheduler); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	fn, err := Named(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	arrivals, err := cfg.Spec.Generate()
	if err != nil {
		return nil, err
	}
	opt := cfg.Opt
	if opt.Seed == 0 {
		opt.Seed = cfg.Spec.Seed
	}
	// The fault stream draws from RNGs derived from the spec seed, entirely
	// separate from the arrival stream's, so "the same spec plus faults"
	// sees the same jobs arrive at the same times.
	var faults multijob.FaultSource
	retry := cfg.Retry
	if len(cfg.Spec.Faults) > 0 {
		fabric, err := cfg.Replay.Fabric()
		if err != nil {
			return nil, err
		}
		fs, err := NewFaultStream(cfg.Spec.Faults, fabric, cfg.Spec.Seed)
		if err != nil {
			return nil, err
		}
		faults = fs
		if retry == (multijob.RetryPolicy{}) {
			retry = DefaultRetryPolicy()
		}
	}
	return multijob.RunChurn(multijob.ChurnConfig{
		Arrivals:     arrivals,
		Schedule:     fn,
		Scheduler:    SchedulerName(cfg.Scheduler),
		Placement:    cfg.Placement,
		Opt:          opt,
		Displacement: cfg.Displacement,
		Replay:       cfg.Replay,
		SelectGT:     cfg.SelectGT,
		Generate:     cfg.Generate,
		Dedicated:    cfg.Dedicated,
		Ctx:          cfg.Ctx,
		Faults:       faults,
		Retry:        retry,
	})
}
