package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/workloads"
)

// MaxJobs bounds a scenario's job count; beyond it a spec is a typo, not an
// experiment.
const MaxJobs = 100000

// Spec describes a churn scenario compactly enough to live on a command
// line: how many jobs, which applications, how big, and how they arrive.
// Everything downstream of the seed is deterministic — the same spec always
// expands to the same arrival stream.
type Spec struct {
	Jobs    int           // number of jobs to generate
	Apps    []string      // applications drawn uniformly per job
	Size    Dist          // process-count distribution
	Arrival ArrivalProc   // inter-arrival gap process
	Speed   float64       // >1 compresses gaps (faster churn), <1 stretches them
	Seed    int64         // seeds sizes, apps, and gaps; also the placement seed
	Faults  []FaultClause // hardware failure processes; empty = fault-free
}

// DefaultSpec returns a moderate scenario on the paper's fabric: 50 jobs
// over every registered application, uniform sizes 4–32, Poisson arrivals
// every 20s of simulated time.
func DefaultSpec() Spec {
	return Spec{
		Jobs:    50,
		Apps:    workloads.Apps(),
		Size:    uniformDist{lo: 4, hi: 32},
		Arrival: poissonArrivals(20 * time.Second),
		Speed:   1,
		Seed:    1,
	}
}

// specKeys names every valid spec key; parse errors list it so a typo is
// self-correcting.
const specKeys = "jobs, apps, size, arrival, speed, seed, or faults"

// ParseSpec parses a comma-separated scenario spec such as
//
//	jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7
//
// on top of DefaultSpec: keys not mentioned keep their defaults. Valid keys
// are jobs, apps (names joined with "+"), size (ParseDist), arrival
// (ParseArrivalProc), speed, seed, and faults (ParseFaults). Each key may
// appear at most once.
func ParseSpec(s string) (Spec, error) {
	return ApplySpec(DefaultSpec(), s)
}

// specPairs splits a spec string into key=value pairs. The faults value
// itself contains commas ("faults=link:poisson:10m,switch:fixed:5m"), so a
// comma segment that does not start a new lowercase key continues the
// previous value.
func specPairs(s string) ([][2]string, error) {
	var pairs [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if startsSpecKey(part) {
			key, val, _ := strings.Cut(part, "=")
			pairs = append(pairs, [2]string{strings.TrimSpace(key), strings.TrimSpace(val)})
			continue
		}
		if len(pairs) == 0 {
			return nil, fmt.Errorf("scenario: %q: want key=value (keys: %s)", part, specKeys)
		}
		pairs[len(pairs)-1][1] += "," + part
	}
	return pairs, nil
}

// startsSpecKey reports whether the segment begins a new key=value pair: a
// run of lowercase letters immediately followed by "=".
func startsSpecKey(part string) bool {
	i := 0
	for i < len(part) && part[i] >= 'a' && part[i] <= 'z' {
		i++
	}
	return i > 0 && i < len(part) && part[i] == '='
}

// ApplySpec overlays the spec string's keys onto base. An empty string is a
// valid no-op, so a CLI can layer -spec over -specfile. Duplicate keys are
// rejected rather than last-wins: a spec assembled from several sources that
// sets jobs twice is a mistake worth hearing about.
func ApplySpec(base Spec, s string) (Spec, error) {
	if strings.TrimSpace(s) == "" {
		return base, nil
	}
	pairs, err := specPairs(s)
	if err != nil {
		return Spec{}, err
	}
	seen := make(map[string]bool, len(pairs))
	for _, kv := range pairs {
		key, val := kv[0], kv[1]
		if seen[key] {
			return Spec{}, fmt.Errorf("scenario: duplicate spec key %q (each of %s may appear once)", key, specKeys)
		}
		seen[key] = true
		var err error
		switch key {
		case "jobs":
			base.Jobs, err = strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: jobs=%q is not an integer", val)
			}
			if base.Jobs < 1 || base.Jobs > MaxJobs {
				return Spec{}, fmt.Errorf("scenario: jobs must be in [1, %d], got %d", MaxJobs, base.Jobs)
			}
		case "apps":
			base.Apps = nil
			for _, a := range strings.Split(val, "+") {
				if a = strings.TrimSpace(a); a != "" {
					base.Apps = append(base.Apps, a)
				}
			}
		case "size":
			base.Size, err = ParseDist(val)
			if err != nil {
				return Spec{}, err
			}
		case "arrival":
			base.Arrival, err = ParseArrivalProc(val)
			if err != nil {
				return Spec{}, err
			}
		case "speed":
			base.Speed, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: speed=%q is not a number", val)
			}
			if !(base.Speed > 0) {
				return Spec{}, fmt.Errorf("scenario: speed must be positive, got %v", base.Speed)
			}
		case "seed":
			base.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: seed=%q is not an integer", val)
			}
		case "faults":
			base.Faults, err = ParseFaults(val)
			if err != nil {
				return Spec{}, err
			}
		default:
			return Spec{}, fmt.Errorf("scenario: unknown spec key %q (want %s)", key, specKeys)
		}
	}
	if err := base.Validate(); err != nil {
		return Spec{}, err
	}
	return base, nil
}

// ParseSpecFile reads a spec from a file: one key=value per line, blank
// lines and #-comments ignored — the same keys and defaults as ParseSpec.
func ParseSpecFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %v", err)
	}
	var parts []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			parts = append(parts, line)
		}
	}
	return ParseSpec(strings.Join(parts, ","))
}

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	if s.Jobs < 1 || s.Jobs > MaxJobs {
		return fmt.Errorf("scenario: jobs must be in [1, %d], got %d", MaxJobs, s.Jobs)
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("scenario: no applications selected")
	}
	known := make(map[string]bool)
	for _, a := range workloads.Apps() {
		known[a] = true
	}
	for _, a := range s.Apps {
		if !known[a] {
			return fmt.Errorf("scenario: unknown application %q (generatable: %s)",
				a, strings.Join(workloads.Apps(), ", "))
		}
	}
	if s.Size == nil {
		return fmt.Errorf("scenario: no size distribution")
	}
	if s.Arrival == nil {
		return fmt.Errorf("scenario: no arrival process")
	}
	if !(s.Speed > 0) {
		return fmt.Errorf("scenario: speed must be positive, got %v", s.Speed)
	}
	for _, c := range s.Faults {
		if c.Proc == nil {
			return fmt.Errorf("scenario: fault clause %s has no failure process", c.Kind)
		}
	}
	return nil
}

// String renders the spec in canonical ParseSpec form; parsing it back
// yields an identical spec. The faults key only appears when set, so
// fault-free specs render exactly as before the fault layer existed.
func (s Spec) String() string {
	out := fmt.Sprintf("jobs=%d,apps=%s,size=%s,arrival=%s,speed=%g,seed=%d",
		s.Jobs, strings.Join(s.Apps, "+"), s.Size, s.Arrival, s.Speed, s.Seed)
	if len(s.Faults) > 0 {
		out += ",faults=" + FormatFaults(s.Faults)
	}
	return out
}

// Generate expands the spec into its arrival stream: per job, an
// inter-arrival gap (the first job arrives at time 0), an application drawn
// uniformly, and a size drawn from the distribution, clamped to at least 2
// ranks. One seeded RNG drives all three in a fixed order, so the stream is
// a pure function of the spec.
func (s Spec) Generate() ([]multijob.Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(s.Seed))
	arrivals := make([]multijob.Arrival, s.Jobs)
	var t time.Duration
	for i := range arrivals {
		if i > 0 {
			t += time.Duration(float64(s.Arrival.Gap(r)) / s.Speed)
		}
		app := s.Apps[r.Intn(len(s.Apps))]
		np := s.Size.Draw(r)
		if np < 2 {
			np = 2
		}
		arrivals[i] = multijob.Arrival{Job: multijob.JobSpec{App: app, NP: np}, At: t}
	}
	return arrivals, nil
}
