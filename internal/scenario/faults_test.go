package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/topology"
)

// TestParseFaultsRoundTrip pins the clause grammar's canonical form for every
// kind and both MTTR shapes.
func TestParseFaultsRoundTrip(t *testing.T) {
	for _, s := range []string{
		"link:poisson:10m0s:mttr=2m0s",
		"switch:fixed:5m0s",
		"term:poisson:30s:mttr=1m30s",
		"link:poisson:10m0s:mttr=2m0s,switch:fixed:5m0s,term:fixed:7s",
	} {
		clauses, err := ParseFaults(s)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", s, err)
		}
		if got := FormatFaults(clauses); got != s {
			t.Errorf("round trip changed the clauses: %q -> %q", s, got)
		}
	}
	if clauses, err := ParseFaults("  "); err != nil || clauses != nil {
		t.Errorf("blank fault spec: got %v, %v, want empty no-op", clauses, err)
	}
}

// TestParseFaultsErrors covers every clause parse failure with its message.
func TestParseFaultsErrors(t *testing.T) {
	for in, want := range map[string]string{
		"link":                     "wants kind:dist:mean",
		"disk:poisson:10m":         "unknown fault kind",
		"link:weird:10m":           "unknown arrival process",
		"link:poisson:0s":          "must be positive",
		"link:poisson:-3s":         "must be positive",
		"link:poisson:10m:mttr=":   "fault mttr",
		"link:poisson:10m:mttr=x":  "fault mttr",
		"link:poisson:10m:mttr=0s": "mttr must be positive",
		"link:poisson:10m,":        "wants kind:dist:mean",
	} {
		_, err := ParseFaults(in)
		if err == nil {
			t.Errorf("ParseFaults(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseFaults(%q) error %q, want substring %q", in, err, want)
		}
	}
}

// TestSpecFaultsRoundTrip asserts the faults key survives a full spec round
// trip, including the comma-continuation form where one faults value spans
// several comma segments.
func TestSpecFaultsRoundTrip(t *testing.T) {
	spec, err := ParseSpec("jobs=12,faults=link:poisson:10m:mttr=2m,switch:fixed:5m,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Jobs != 12 || spec.Seed != 3 {
		t.Fatalf("continuation merge disturbed neighbouring keys: %+v", spec)
	}
	if len(spec.Faults) != 2 || spec.Faults[0].Kind != multijob.FaultLink ||
		spec.Faults[1].Kind != multijob.FaultSwitch || spec.Faults[0].MTTR != 2*time.Minute {
		t.Fatalf("faults parsed to %v", spec.Faults)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("canonical form %q does not reparse: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Errorf("round trip changed the spec: %q -> %q", spec.String(), again.String())
	}
	if !strings.Contains(spec.String(), ",faults=") {
		t.Errorf("canonical form %q does not carry the faults key", spec.String())
	}
}

// TestSpecErrorsFaultLayer covers the parse failures the fault layer added:
// duplicate keys, dangling continuations, and the faults key's own errors
// surfacing through ApplySpec.
func TestSpecErrorsFaultLayer(t *testing.T) {
	for in, want := range map[string]string{
		"jobs=3,jobs=4":                          "duplicate spec key \"jobs\"",
		"faults=link:fixed:1s,faults=term:fixed:1s": "duplicate spec key \"faults\"",
		"link:poisson:10m":                       "want key=value",
		"faults=disk:poisson:10m":                "unknown fault kind",
		"faults=link:poisson:10m:mttr=-1s":       "mttr must be positive",
	} {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSpec(%q) error %q, want substring %q", in, err, want)
		}
	}
}

// streamEvents drains up to n events from a freshly built stream.
func streamEvents(t *testing.T, spec string, seed int64, n int) []multijob.FaultEvent {
	t.Helper()
	clauses, err := ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFaultStream(clauses, topology.Paper(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var evs []multijob.FaultEvent
	for len(evs) < n {
		ev, ok := s.Peek()
		if !ok {
			break
		}
		if got := s.Pop(); got != ev {
			t.Fatalf("Pop %+v differs from Peek %+v", got, ev)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestFaultStreamDeterministic pins the seed contract: the same (clauses,
// fabric, seed) triple always expands to the same events, and a different
// seed moves them.
func TestFaultStreamDeterministic(t *testing.T) {
	const spec = "link:poisson:5m:mttr=2m,switch:poisson:20m,term:fixed:3m:mttr=10m"
	a := streamEvents(t, spec, 7, 100)
	b := streamEvents(t, spec, 7, 100)
	if !reflect.DeepEqual(a, b) {
		t.Error("two streams of the same seed diverged")
	}
	c := streamEvents(t, spec, 8, 100)
	if reflect.DeepEqual(a, c) {
		t.Error("seed 7 and seed 8 produced identical events")
	}
	if len(a) < 100 {
		t.Fatalf("stream dried up after %d events", len(a))
	}
}

// TestFaultStreamOrderingAndPairing walks a mixed stream asserting the
// FaultSource contract: non-decreasing times, no entity fails while already
// down, every repair matches a prior failure exactly MTTR later, and
// RepairPending tracks the heap.
func TestFaultStreamOrderingAndPairing(t *testing.T) {
	clauses, err := ParseFaults("link:poisson:3m:mttr=7m,switch:fixed:11m:mttr=2m")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFaultStream(clauses, topology.Paper(), 41)
	if err != nil {
		t.Fatal(err)
	}
	mttr := map[multijob.FaultKind]time.Duration{
		multijob.FaultLink:   7 * time.Minute,
		multijob.FaultSwitch: 2 * time.Minute,
	}
	failedAt := make(map[faultKey]time.Duration)
	last := time.Duration(-1)
	repairs := 0
	for i := 0; i < 300; i++ {
		ev, ok := s.Peek()
		if !ok {
			break
		}
		if pending := s.RepairPending(); pending != (len(s.repairs) > 0) {
			t.Fatalf("RepairPending %v with %d queued repairs", pending, len(s.repairs))
		}
		s.Pop()
		if ev.At < last {
			t.Fatalf("event %d at %v after %v", i, ev.At, last)
		}
		last = ev.At
		k := faultKey{ev.Kind, ev.Index}
		if ev.Repair {
			at, down := failedAt[k]
			if !down {
				t.Fatalf("repair of healthy entity %+v", ev)
			}
			if ev.At != at+mttr[ev.Kind] {
				t.Fatalf("repair of %+v at %v, want failure time %v + MTTR %v", ev, ev.At, at, mttr[ev.Kind])
			}
			delete(failedAt, k)
			repairs++
		} else {
			if _, down := failedAt[k]; down {
				t.Fatalf("entity %+v failed while already down", ev)
			}
			failedAt[k] = ev.At
		}
	}
	if repairs == 0 {
		t.Error("stream with MTTRs produced no repairs")
	}
}

// TestFaultStreamPermanent asserts MTTR-less clauses never schedule repairs
// and dry up once every entity is down or the failure cap is hit.
func TestFaultStreamPermanent(t *testing.T) {
	evs := streamEvents(t, "switch:fixed:1s", 3, 10000)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	seen := make(map[int32]bool)
	for _, ev := range evs {
		if ev.Repair {
			t.Fatalf("permanent clause emitted repair %+v", ev)
		}
		if seen[ev.Index] {
			t.Fatalf("switch %d failed twice without repair", ev.Index)
		}
		seen[ev.Index] = true
	}
	// The paper fabric has finitely many switches; a permanent clause must
	// stop once they are all down.
	if len(evs) >= 10000 {
		t.Fatalf("permanent stream did not dry up (%d events)", len(evs))
	}
}

// TestFaultStreamUnknownPopulation asserts a clause whose population is empty
// on the chosen fabric is rejected up front.
func TestFaultStreamUnknownPopulation(t *testing.T) {
	clauses, err := ParseFaults("link:fixed:1s")
	if err != nil {
		t.Fatal(err)
	}
	small, err := topology.New(1, []int{4}, []int{1}) // single switch: no s2s cables
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultStream(clauses, small, 1); err == nil ||
		!strings.Contains(err.Error(), "no link entities to fail") {
		t.Errorf("single-switch fabric accepted a link clause: %v", err)
	}
}

func testFaultConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig(t)
	spec, err := ApplySpec(cfg.Spec, "jobs=8,faults=term:poisson:150ms:mttr=300ms,link:poisson:200ms:mttr=250ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spec = spec
	return cfg
}

// TestRunWithFaultsDeterministic extends the acceptance contract to faulty
// runs: bit-identical results at Parallelism 1, 4, and GOMAXPROCS, with the
// resilience metrics populated.
func TestRunWithFaultsDeterministic(t *testing.T) {
	var base *multijob.ChurnResult
	for _, par := range []int{1, 1, 4, 0} {
		cfg := testFaultConfig(t)
		cfg.Replay.Parallelism = par
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			if !res.FaultsActive {
				t.Fatal("fault clauses set but FaultsActive is false")
			}
			if len(res.Capacity) == 0 {
				t.Error("no capacity profile")
			}
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("result at Parallelism %d differs from the first run", par)
		}
	}
}

// TestRunFaultFreeSpecUnchanged asserts a spec without fault clauses takes
// the exact pre-fault path: no FaultsActive, no resilience noise in the
// result.
func TestRunFaultFreeSpecUnchanged(t *testing.T) {
	res, err := Run(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsActive || res.Killed != 0 || res.Capacity != nil {
		t.Errorf("fault-free run carries fault state: %+v", res)
	}
}

// TestRunCtxCancelled asserts Config.Ctx reaches the churn engine: a
// cancelled context stops the run with its error.
func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testFaultConfig(t)
	cfg.Ctx = ctx
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("cancelled ctx: err %v, want %v", err, context.Canceled)
	}
}
