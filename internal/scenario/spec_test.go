package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ibpower/internal/workloads"
)

// TestParseSpecRoundTrip pins the canonical-form contract: String() reparses
// to an identical spec for every distribution and arrival kind.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"",
		"jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7",
		"jobs=1,size=fixed:4,arrival=fixed:10s",
		"size=uniform:16:64,speed=2.5",
		"size=choices:16@3:64@1,apps=gromacs",
		"size=normal:32:8,arrival=poisson:1m,seed=-3",
		"size=zipf:2:128:2,speed=0.25",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q) of canonical form: %v", spec.String(), err)
		}
		if again.String() != spec.String() {
			t.Errorf("round trip changed the spec: %q -> %q", spec.String(), again.String())
		}
	}
}

// TestApplySpecLayering asserts overlaying touches only the keys mentioned,
// so -spec can refine -specfile.
func TestApplySpecLayering(t *testing.T) {
	base, err := ParseSpec("jobs=10,size=fixed:8,arrival=fixed:5s,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	over, err := ApplySpec(base, "seed=9,speed=4")
	if err != nil {
		t.Fatal(err)
	}
	if over.Seed != 9 || over.Speed != 4 {
		t.Errorf("overlay keys not applied: %+v", over)
	}
	if over.Jobs != 10 || over.Size.String() != "8" || over.Arrival.String() != "fixed:5s" {
		t.Errorf("overlay disturbed unmentioned keys: %+v", over)
	}
	if same, err := ApplySpec(base, "  "); err != nil || same.String() != base.String() {
		t.Errorf("blank overlay must be a no-op (err=%v)", err)
	}
}

// TestParseSpecFile covers the file form: one key per line, comments and
// blanks ignored.
func TestParseSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec")
	content := "# churn scenario\njobs=30\n\nsize=uniform:4:16 # small jobs\narrival=fixed:2s\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Jobs != 30 || spec.Size.String() != "uniform:4:16" || spec.Arrival.String() != "fixed:2s" {
		t.Errorf("file parsed to %+v", spec)
	}
	if _, err := ParseSpecFile(filepath.Join(t.TempDir(), "nosuch")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSpecErrors covers every parse and validation failure with its message.
func TestSpecErrors(t *testing.T) {
	for in, want := range map[string]string{
		"jobs":                 "want key=value",
		"jobs=x":               "not an integer",
		"jobs=0":               "jobs must be in",
		"jobs=100001":          "jobs must be in",
		"apps=nosuch":          "unknown application",
		"apps=+":               "no applications",
		"size=":                "empty size distribution",
		"size=weird:1":         "unknown size distribution",
		"size=uniform:9":       "wants lo:hi",
		"size=uniform:9:4":     "inverted",
		"size=uniform:0:99999": "exceeds",
		"size=choices:4@-1":    "must be a positive number",
		"size=normal:a:b":      "must be numbers",
		"size=zipf:4:8:0.5":    "must be a number > 1",
		"arrival=poisson":      "wants kind:interval",
		"arrival=poisson:0s":   "must be positive",
		"arrival=later:1s":     "unknown arrival process",
		"arrival=fixed:bogus":  "arrival interval",
		"speed=fast":           "not a number",
		"speed=0":              "speed must be positive",
		"seed=1.5":             "not an integer",
		"color=red":            "unknown spec key",
	} {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSpec(%q) error %q, want substring %q", in, err, want)
		}
	}
}

// TestGenerateShape asserts the expanded stream honours the spec: job count,
// first arrival at zero, non-decreasing times, apps from the selection, and
// sizes clamped to valid process counts.
func TestGenerateShape(t *testing.T) {
	spec, err := ParseSpec("jobs=64,apps=gromacs,size=normal:3:2,arrival=poisson:10s,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 64 {
		t.Fatalf("%d arrivals, want 64", len(arrivals))
	}
	if arrivals[0].At != 0 {
		t.Errorf("first arrival at %v, want 0", arrivals[0].At)
	}
	for i, a := range arrivals {
		if i > 0 && a.At < arrivals[i-1].At {
			t.Fatalf("arrival %d at %v before arrival %d at %v", i, a.At, i-1, arrivals[i-1].At)
		}
		if a.Job.App != "gromacs" {
			t.Errorf("arrival %d drew app %q outside the selection", i, a.Job.App)
		}
		// normal:3:2 draws below 2 routinely; Generate must clamp.
		if a.Job.NP < 2 {
			t.Errorf("arrival %d has %d ranks, want >= 2", i, a.Job.NP)
		}
	}
}

// TestGenerateSpeedCompressesGaps pins the speed multiplier: doubling speed
// exactly halves every inter-arrival gap of the same seed.
func TestGenerateSpeedCompressesGaps(t *testing.T) {
	slow, err := ParseSpec("jobs=20,arrival=poisson:10s,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	fast := slow
	fast.Speed = 2
	as, err := slow.Generate()
	if err != nil {
		t.Fatal(err)
	}
	af, err := fast.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if af[i].Job != as[i].Job {
			t.Fatalf("speed changed job %d: %v vs %v", i, af[i].Job, as[i].Job)
		}
		if i == 0 {
			continue
		}
		// Gaps truncate to the nanosecond independently per speed, so compare
		// gap by gap within 1ns rather than accumulated absolute times.
		got := af[i].At - af[i-1].At
		want := (as[i].At - as[i-1].At) / 2
		if got-want > time.Nanosecond || want-got > time.Nanosecond {
			t.Errorf("gap %d is %v under speed 2, want %v", i, got, want)
		}
	}
}

// TestDefaultSpecCoversAllApps asserts the default draws from the full
// workload registry and validates.
func TestDefaultSpecCoversAllApps(t *testing.T) {
	spec := DefaultSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Apps, workloads.Apps()) {
		t.Errorf("default apps %v, want every registered workload %v", spec.Apps, workloads.Apps())
	}
}
