package scenario

import (
	"testing"

	"ibpower/internal/multijob"
	"ibpower/internal/registrytest"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// TestRegistryContract runs the shared registry property test over the
// scheduler registry; the three shipped policies must all be present.
func TestRegistryContract(t *testing.T) {
	for _, want := range []string{"fcfs", "backfill", "power-aware"} {
		if !Registered(want) {
			t.Errorf("%q not registered (have %v)", want, Names())
		}
	}
	registrytest.Run(t, registrytest.Registry{
		Kind:    "scheduler",
		Default: DefaultScheduler,
		Names:   Names,
		Check:   CheckRegistered,
		RegisterValid: func(name string) {
			fn, err := Named(DefaultScheduler)
			if err != nil {
				t.Fatal(err)
			}
			Register(name, fn)
		},
		RegisterNil: func(name string) { Register(name, nil) },
	})
}

// saturatingConfig returns a scenario that genuinely overloads the paper
// fabric: jobs of 96 ranks arrive every millisecond on 252 terminals, so at
// most two run at once and a real queue forms under every scheduler.
func saturatingConfig(t *testing.T, sched string) Config {
	t.Helper()
	spec, err := ParseSpec("jobs=8,apps=gromacs,size=fixed:96,arrival=fixed:1ms,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Spec:      spec,
		Scheduler: sched,
		Placement: "roundrobin",
		Opt:       workloads.Options{Seed: 42, IterScale: 0.05},
		Replay:    replay.DefaultConfig(),
	}
}

// TestSchedulerInvariants is the cross-policy safety net: under fabric
// saturation, every registered shipped scheduler must complete every job,
// never start a job before it arrives, and never double-book a terminal
// between time-overlapping jobs. fcfs additionally must preserve arrival
// order exactly.
func TestSchedulerInvariants(t *testing.T) {
	for _, sched := range []string{"fcfs", "backfill", "power-aware"} {
		t.Run(sched, func(t *testing.T) {
			res, err := Run(saturatingConfig(t, sched))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Jobs) != 8 {
				t.Fatalf("%d job records, want 8", len(res.Jobs))
			}
			if res.WaitMax <= 0 {
				t.Fatal("no job ever waited; the scenario does not saturate and the test proves nothing")
			}
			for i, j := range res.Jobs {
				if j.ID != i {
					t.Errorf("job record %d carries ID %d; results must be in arrival order", i, j.ID)
				}
				if j.Start < j.Arrival {
					t.Errorf("job %d started at %v before arriving at %v", j.ID, j.Start, j.Arrival)
				}
				if j.Wait != j.Start-j.Arrival {
					t.Errorf("job %d wait %v != start-arrival %v", j.ID, j.Wait, j.Start-j.Arrival)
				}
				if j.Finish <= j.Start {
					t.Errorf("job %d finished at %v, not after its start %v", j.ID, j.Finish, j.Start)
				}
				if len(j.Terminals) != j.NP {
					t.Errorf("job %d holds %d terminals, want %d", j.ID, len(j.Terminals), j.NP)
				}
			}
			// No terminal shared between time-overlapping jobs.
			for i := range res.Jobs {
				for k := i + 1; k < len(res.Jobs); k++ {
					a, b := res.Jobs[i], res.Jobs[k]
					if a.Start >= b.Finish || b.Start >= a.Finish {
						continue
					}
					used := make(map[int]bool, len(a.Terminals))
					for _, term := range a.Terminals {
						used[term] = true
					}
					for _, term := range b.Terminals {
						if used[term] {
							t.Fatalf("jobs %d and %d overlap in time and share terminal %d",
								a.ID, b.ID, term)
						}
					}
				}
			}
			// fcfs never reorders: arrivals are non-decreasing in ID order, so
			// starts must be too — equal-arrival jobs included.
			if sched == "fcfs" {
				for i := 1; i < len(res.Jobs); i++ {
					if res.Jobs[i].Start < res.Jobs[i-1].Start {
						t.Errorf("fcfs started job %d at %v before job %d at %v",
							res.Jobs[i].ID, res.Jobs[i].Start,
							res.Jobs[i-1].ID, res.Jobs[i-1].Start)
					}
				}
			}
		})
	}
}

// TestPowerAwarePrefersWokenSwitches pins the power-aware policy's whole
// point at the decision level: with part of the fabric busy, it admits the
// queued job that wakes the fewest fully-idle first-hop switches, while fcfs
// takes the queue head regardless.
func TestPowerAwarePrefersWokenSwitches(t *testing.T) {
	fabric, err := replay.DefaultConfig().Fabric()
	if err != nil {
		t.Fatal(err)
	}
	order, err := multijob.Ordering("linear", fabric, 0)
	if err != nil {
		t.Fatal(err)
	}
	free, err := multijob.NewFreeList(fabric, order)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy most of the first leaf switch (18 terminals on the paper
	// fabric): a 2-rank job fits the woken switch, a 32-rank job must wake
	// fresh switches.
	busy := free.Alloc(16)
	ctx := &multijob.SchedContext{
		Queue: []multijob.QueuedJob{
			{ID: 0, Spec: multijob.JobSpec{App: "gromacs", NP: 32}},
			{ID: 1, Spec: multijob.JobSpec{App: "gromacs", NP: 2}},
		},
		Free:   free,
		Fabric: fabric,
	}
	pa, err := Named("power-aware")
	if err != nil {
		t.Fatal(err)
	}
	picks := pa(ctx)
	if len(picks) != 2 || picks[0] != 1 {
		t.Errorf("power-aware picked %v, want the small job (queue index 1) first", picks)
	}
	fcfs, err := Named("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if picks := fcfs(ctx); len(picks) != 2 || picks[0] != 0 {
		t.Errorf("fcfs picked %v, want strict queue order", picks)
	}
	free.Release(busy)
}
