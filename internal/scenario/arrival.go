package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// ArrivalProc generates the gap to the next job arrival. Like Dist, it must
// be a pure function of the RNG stream.
type ArrivalProc interface {
	Gap(r *rand.Rand) time.Duration
	String() string
}

// ParseArrivalProc parses an arrival process:
//
//	"poisson:30s"  exponential inter-arrival gaps with mean 30s
//	"fixed:10s"    one job every 10s exactly
//
// The parameter takes any time.ParseDuration form and must be positive.
func ParseArrivalProc(s string) (ArrivalProc, error) {
	s = strings.TrimSpace(s)
	kind, rest, ok := strings.Cut(s, ":")
	if !ok || rest == "" {
		return nil, fmt.Errorf("scenario: arrival process %q wants kind:interval (e.g. poisson:30s)", s)
	}
	mean, err := time.ParseDuration(rest)
	if err != nil {
		return nil, fmt.Errorf("scenario: arrival interval %q: %v", rest, err)
	}
	if mean <= 0 {
		return nil, fmt.Errorf("scenario: arrival interval must be positive, got %v", mean)
	}
	switch kind {
	case "poisson":
		return poissonArrivals(mean), nil
	case "fixed":
		return fixedArrivals(mean), nil
	}
	return nil, fmt.Errorf("scenario: unknown arrival process %q (want poisson or fixed)", kind)
}

type poissonArrivals time.Duration

func (p poissonArrivals) Gap(r *rand.Rand) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(p))
}
func (p poissonArrivals) String() string { return "poisson:" + time.Duration(p).String() }

type fixedArrivals time.Duration

func (p fixedArrivals) Gap(*rand.Rand) time.Duration { return time.Duration(p) }
func (p fixedArrivals) String() string               { return "fixed:" + time.Duration(p).String() }
