package scenario

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

const statDraws = 10000

// sampleStats draws n values and returns their sample mean and variance.
func sampleStats(t *testing.T, d Dist, n int, seed int64) (mean, variance float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(d.Draw(r))
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// TestDistMoments checks each distribution's sample mean and variance over
// 10k seeded draws against the analytic values. Tolerances are ~5 standard
// errors, loose enough to never flake on a fixed seed, tight enough to catch
// an off-by-one in the support or a misweighted table.
func TestDistMoments(t *testing.T) {
	cases := []struct {
		spec               string
		mean, variance     float64
		meanTol, varTolPct float64
	}{
		// fixed: degenerate.
		{"fixed:32", 32, 0, 0, 0},
		// uniform on [10, 50]: mean 30, variance (41^2-1)/12 = 140.
		{"uniform:10:50", 30, 140, 0.6, 10},
		// normal(1000, 50): rounding perturbs nothing visible at this scale.
		{"normal:1000:50", 1000, 2500, 2.5, 10},
		// choices 10 w.p. 1/4, 30 w.p. 3/4: mean 25, variance 75.
		{"choices:10@1:30@3", 25, 75, 0.5, 10},
	}
	for _, c := range cases {
		d, err := ParseDist(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		mean, variance := sampleStats(t, d, statDraws, 1)
		if math.Abs(mean-c.mean) > c.meanTol {
			t.Errorf("%s: sample mean %.3f, want %.1f±%.1f", c.spec, mean, c.mean, c.meanTol)
		}
		wantVar := c.variance
		if tol := wantVar * c.varTolPct / 100; math.Abs(variance-wantVar) > tol {
			t.Errorf("%s: sample variance %.1f, want %.1f±%.1f", c.spec, variance, wantVar, tol)
		}
	}
}

// TestDistSupport asserts draws never escape the declared support.
func TestDistSupport(t *testing.T) {
	for spec, bounds := range map[string][2]int{
		"uniform:16:64":   {16, 64},
		"zipf:16:256":     {16, 256},
		"choices:4@1:8@2": {4, 8},
		"fixed:12":        {12, 12},
	} {
		d, err := ParseDist(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(2))
		for i := 0; i < statDraws; i++ {
			if v := d.Draw(r); v < bounds[0] || v > bounds[1] {
				t.Fatalf("%s drew %d outside [%d, %d]", spec, v, bounds[0], bounds[1])
			}
		}
	}
}

// TestZipfRankFrequency pins the power-law shape: over 10k draws the
// frequency of rank r must be non-increasing at geometrically spaced ranks
// (0, 1, 3, 7, 15, 31, 63), and the head rank must dominate — for s = 1.5
// over 64 values, rank 0 alone carries ~42% of the mass.
func TestZipfRankFrequency(t *testing.T) {
	d, err := ParseDist("zipf:1:64")
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < statDraws; i++ {
		counts[d.Draw(r)-1]++
	}
	ranks := []int{0, 1, 3, 7, 15, 31, 63}
	for i := 1; i < len(ranks); i++ {
		lo, hi := ranks[i-1], ranks[i]
		if counts[hi] > counts[lo] {
			t.Errorf("rank %d drawn %d times, above rank %d's %d — not a decaying law",
				hi, counts[hi], lo, counts[lo])
		}
	}
	if frac := float64(counts[0]) / statDraws; frac < 0.35 || frac > 0.50 {
		t.Errorf("head rank carries %.1f%% of draws, want ~42%%", 100*frac)
	}
}

// TestPoissonArrivalMean checks the exponential gap generator's sample mean
// against its parameter.
func TestPoissonArrivalMean(t *testing.T) {
	p, err := ParseArrivalProc("poisson:10s")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	var sum time.Duration
	for i := 0; i < statDraws; i++ {
		g := p.Gap(r)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum / statDraws
	if mean < 9500*time.Millisecond || mean > 10500*time.Millisecond {
		t.Errorf("sample mean gap %v, want 10s±500ms", mean)
	}
	f, err := ParseArrivalProc("fixed:3s")
	if err != nil {
		t.Fatal(err)
	}
	if g := f.Gap(r); g != 3*time.Second {
		t.Errorf("fixed gap %v, want 3s", g)
	}
}

// TestGenerateSeedDeterminism pins the reproducibility contract the whole
// scenario engine rests on: the same spec expands to a byte-identical
// arrival stream every time, and a different seed expands differently.
func TestGenerateSeedDeterminism(t *testing.T) {
	spec, err := ParseSpec("jobs=100,size=zipf:2:64,arrival=poisson:5s,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different arrival streams")
	}
	spec.Seed = 8
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical arrival streams")
	}
}
