package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ibpower/internal/multijob"
)

// DefaultScheduler is the registry entry used when no policy is named:
// first-come-first-served, the reference batch discipline.
const DefaultScheduler = "fcfs"

var (
	schedMu  sync.RWMutex
	schedReg = make(map[string]multijob.SchedFunc)
)

// Register adds a scheduling policy under name. It panics on an empty name,
// a nil policy, or a duplicate registration, mirroring the predictor,
// fabric, and placement registries: registry collisions are programmer
// errors and must fail loudly at init time.
func Register(name string, fn multijob.SchedFunc) {
	if name == "" {
		panic("scenario: Register with empty name")
	}
	if fn == nil {
		panic("scenario: Register with nil scheduler for " + name)
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	if _, dup := schedReg[name]; dup {
		panic("scenario: duplicate registration of " + name)
	}
	schedReg[name] = fn
}

// Registered reports whether name resolves in the registry; the empty string
// resolves to DefaultScheduler.
func Registered(name string) bool {
	if name == "" {
		name = DefaultScheduler
	}
	schedMu.RLock()
	defer schedMu.RUnlock()
	_, ok := schedReg[name]
	return ok
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	schedMu.RLock()
	defer schedMu.RUnlock()
	names := make([]string, 0, len(schedReg))
	for n := range schedReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckRegistered returns a descriptive error naming the whole registry when
// name does not resolve (the empty name resolves to DefaultScheduler), so a
// typo'd -sched flag tells the user what would have worked.
func CheckRegistered(name string) error {
	if Registered(name) {
		return nil
	}
	return fmt.Errorf("unknown scheduler %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Named resolves a scheduler by name; the empty name selects the default.
func Named(name string) (multijob.SchedFunc, error) {
	if name == "" {
		name = DefaultScheduler
	}
	schedMu.RLock()
	fn, ok := schedReg[name]
	schedMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: %w", CheckRegistered(name))
	}
	return fn, nil
}

// SchedulerName returns the effective registry name (empty resolves to the
// default), for reporting.
func SchedulerName(name string) string {
	if name == "" {
		return DefaultScheduler
	}
	return name
}

// The preset registry.
func init() {
	// fcfs: strict first-come-first-served — admit from the queue head while
	// jobs fit, stop at the first that does not. Never reorders jobs, so
	// equal-arrival jobs start in arrival order and a wide job at the head
	// blocks everything behind it (head-of-line blocking, the cost of
	// fairness).
	Register("fcfs", func(ctx *multijob.SchedContext) []int {
		var picks []int
		free := ctx.Free.Free()
		for i, q := range ctx.Queue {
			if q.Spec.NP > free {
				break
			}
			picks = append(picks, i)
			free -= q.Spec.NP
		}
		return picks
	})
	// backfill: fcfs, plus any later job that fits the terminals the blocked
	// head cannot use — EASY-style backfilling without reservations, so a
	// stream of small jobs can starve a wide head under sustained load.
	Register("backfill", func(ctx *multijob.SchedContext) []int {
		var picks []int
		free := ctx.Free.Free()
		blocked := false
		for i, q := range ctx.Queue {
			if q.Spec.NP > free {
				blocked = true
				continue
			}
			if blocked {
				// Backfilling past the head: still in queue scan order, so
				// among backfill candidates the earliest arrival wins.
				picks = append(picks, i)
				free -= q.Spec.NP
				continue
			}
			picks = append(picks, i)
			free -= q.Spec.NP
		}
		return picks
	})
	// power-aware: among fitting jobs, repeatedly admit the one whose
	// allocation wakes the fewest fully-idle first-hop switches, so sleeping
	// edge links stay asleep and the prediction mechanism keeps whole
	// switches in low power. Ties break by arrival order. Planning runs on a
	// clone of the free-list; the engine performs the real allocations in
	// the returned order, which reproduces the plan exactly because both
	// draw from the same policy ordering.
	Register("power-aware", func(ctx *multijob.SchedContext) []int {
		var picks []int
		plan := ctx.Free.Clone()
		taken := make([]bool, len(ctx.Queue))
		for {
			best, bestCost := -1, 0
			for i, q := range ctx.Queue {
				if taken[i] || q.Spec.NP > plan.Free() {
					continue
				}
				terms := plan.PeekAlloc(q.Spec.NP)
				cost := plan.IdleSwitches(terms)
				if best == -1 || cost < bestCost {
					best, bestCost = i, cost
				}
			}
			if best == -1 {
				return picks
			}
			taken[best] = true
			picks = append(picks, best)
			plan.Alloc(ctx.Queue[best].Spec.NP)
		}
	})
}
