package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	spec, err := ParseSpec("jobs=6,apps=gromacs+alya,size=uniform:4:16,arrival=poisson:50ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Spec:      spec,
		Scheduler: "fcfs",
		Placement: "roundrobin",
		Opt:       workloads.Options{Seed: 42, IterScale: 0.05},
		Replay:    replay.DefaultConfig(),
	}
}

// TestRunDeterministicAtAnyParallelism pins the acceptance contract: the
// whole ChurnResult is bit-identical at Parallelism 1, 4, and GOMAXPROCS,
// and across repeated runs of the same config.
func TestRunDeterministicAtAnyParallelism(t *testing.T) {
	var base *multijob.ChurnResult
	for _, par := range []int{1, 1, 4, 0} {
		cfg := testConfig(t)
		cfg.Replay.Parallelism = par
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("result at Parallelism %d differs from the first run", par)
		}
	}
}

// TestRunReportsRegistryNames asserts the result and its rendering carry the
// resolved scheduler and placement names.
func TestRunReportsRegistryNames(t *testing.T) {
	cfg := testConfig(t)
	cfg.Scheduler = "" // must resolve to the default
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != DefaultScheduler {
		t.Errorf("scheduler name %q, want the default %q", res.Scheduler, DefaultScheduler)
	}
	if res.Placement != "roundrobin" {
		t.Errorf("placement name %q", res.Placement)
	}
	var buf bytes.Buffer
	if err := multijob.WriteChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{DefaultScheduler, "roundrobin", "queue wait"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered result missing %q", want)
		}
	}
}

// TestRunErrors covers the registry and spec error paths.
func TestRunErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.Scheduler = "nosuch"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "unknown scheduler") ||
		!strings.Contains(err.Error(), "power-aware") {
		t.Errorf("unknown scheduler: error %v, want the registry listed", err)
	}
	cfg = testConfig(t)
	cfg.Spec.Jobs = 0
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "jobs must be in") {
		t.Errorf("invalid spec: error %v", err)
	}
	cfg = testConfig(t)
	cfg.Replay.FabricName = "nosuch"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "unknown fabric") {
		t.Errorf("unknown fabric: error %v", err)
	}
}

// TestRunSeedFeedsPlacement asserts the spec seed reaches the placement
// policy when no explicit Opt.Seed is set: defaulting must equal setting
// Opt.Seed to the spec seed by hand, and a different explicit Opt.Seed (same
// arrival stream) must land jobs elsewhere.
func TestRunSeedFeedsPlacement(t *testing.T) {
	run := func(optSeed int64) *multijob.ChurnResult {
		cfg := testConfig(t)
		cfg.Placement = "random"
		cfg.Opt.Seed = optSeed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	defaulted := run(0)                      // Opt.Seed zero: spec seed (9) takes over
	explicit := run(testConfig(t).Spec.Seed) // the same seed, set by hand
	if !reflect.DeepEqual(defaulted, explicit) {
		t.Error("Opt.Seed zero did not default to the spec seed")
	}
	other := run(555) // same arrivals, different placement seed
	same := true
	for i := range defaulted.Jobs {
		if !reflect.DeepEqual(defaulted.Jobs[i].Terminals, other.Jobs[i].Terminals) {
			same = false
		}
	}
	if same {
		t.Error("different placement seeds landed every job on identical terminals")
	}
}
