package scenario

import (
	"testing"
	"time"

	"ibpower/internal/topology"
)

// FuzzScenarioSpec hammers the spec grammar: any input must either error
// cleanly or produce a spec whose canonical String() reparses to the same
// canonical form, and whose expansion succeeds. The seed corpus covers every
// documented example plus the edge shapes that have bitten parsers before
// (empty fields, sign-only numbers, huge values, stray separators).
func FuzzScenarioSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7",
		"jobs=50,apps=gromacs+alya,size=uniform:4:32,arrival=poisson:20s,speed=1,seed=1",
		"size=choices:16@3:64@1",
		"size=normal:32:8,arrival=fixed:10s",
		"size=zipf:2:128:2,speed=0.25",
		"jobs=1,size=fixed:2,arrival=fixed:1ns",
		"jobs=,size=,arrival=",
		"size=uniform:-5:-1",
		"size=zipf:1:999999999",
		"speed=1e308,seed=-9223372036854775808",
		"size=choices:1@1e-300:2@1e300",
		"apps=+++,size=normal:NaN:Inf",
		",,,=,=,==",
		"faults=link:poisson:10m:mttr=2m,switch:fixed:5m",
		"jobs=4,faults=term:fixed:1s,arrival=poisson:20s",
		"jobs=3,jobs=4",
		"faults=link:poisson:10m,faults=term:fixed:1s",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not reparse: %v", canon, s, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, again.String())
		}
		// A validated spec must always expand; keep the expansion small so
		// the fuzzer spends its budget on the parser.
		if spec.Jobs > 64 {
			spec.Jobs = 64
		}
		arrivals, err := spec.Generate()
		if err != nil {
			t.Fatalf("validated spec %q failed to generate: %v", canon, err)
		}
		for i, a := range arrivals {
			if a.At < 0 || a.Job.NP < 2 {
				t.Fatalf("spec %q generated invalid arrival %d: %+v", canon, i, a)
			}
		}
	})
}

// FuzzFaultSpec hammers the fault-clause grammar the same way: any input
// must either error cleanly or produce clauses whose canonical rendering is
// a reparse fixed point, and whose event stream expands deterministically in
// non-decreasing time order with fail/repair pairing intact.
func FuzzFaultSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"link:poisson:10m:mttr=2m",
		"switch:fixed:5m",
		"term:poisson:30s:mttr=90s",
		"link:poisson:10m:mttr=2m,switch:fixed:5m,term:fixed:7s",
		"link:fixed:1ns:mttr=1ns",
		"switch:poisson:1h,switch:poisson:1h",
		"term:fixed:0s",
		"link:poisson:-3s",
		"mttr=2m",
		"link:poisson:10m:mttr=",
		":::,:::",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		clauses, err := ParseFaults(s)
		if err != nil {
			return
		}
		canon := FormatFaults(clauses)
		again, err := ParseFaults(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not reparse: %v", canon, s, err)
		}
		if FormatFaults(again) != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, FormatFaults(again))
		}
		if len(clauses) == 0 {
			return
		}
		stream, err := NewFaultStream(clauses, topology.Paper(), 7)
		if err != nil {
			t.Fatalf("accepted clauses %q do not stream: %v", canon, err)
		}
		last := time.Duration(-1)
		downAt := make(map[faultKey]bool)
		for i := 0; i < 200; i++ {
			ev, ok := stream.Peek()
			if !ok {
				break
			}
			if got := stream.Pop(); got != ev {
				t.Fatalf("Pop %+v differs from Peek %+v", got, ev)
			}
			if ev.At < last {
				t.Fatalf("event %d out of order: %v after %v", i, ev.At, last)
			}
			last = ev.At
			k := faultKey{ev.Kind, ev.Index}
			if ev.Repair {
				if !downAt[k] {
					t.Fatalf("repair of healthy entity %+v", ev)
				}
				delete(downAt, k)
			} else {
				if downAt[k] {
					t.Fatalf("double fail of %+v", ev)
				}
				downAt[k] = true
			}
		}
	})
}
