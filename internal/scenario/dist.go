package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// maxDistRange bounds the value range a distribution may span; the Zipf
// sampler precomputes a cumulative weight table over it, and process counts
// beyond this are far past any registered fabric anyway.
const maxDistRange = 1 << 16

// Dist is a seeded integer distribution over job sizes. Draw must be a pure
// function of the RNG stream: two distributions parsed from the same string
// and driven by identically seeded RNGs produce identical draws.
type Dist interface {
	Draw(r *rand.Rand) int
	String() string
}

// ParseDist parses a size distribution:
//
//	"32" or "fixed:32"       every draw is 32
//	"uniform:16:64"          integers uniform on [16, 64]
//	"choices:16@3:64@1"      weighted choice (weight 1 when omitted)
//	"normal:32:8"            normal with mean 32 and stddev 8, rounded
//	"zipf:16:256" / ":1.5"   Zipf-ranked over [16, 256], exponent s > 1
//
// Draws are clamped to valid process counts by Spec.Generate, not here.
func ParseDist(s string) (Dist, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("scenario: empty size distribution")
	}
	if v, err := strconv.Atoi(s); err == nil {
		return fixedDist(v), nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	parts := []string{}
	if rest != "" {
		parts = strings.Split(rest, ":")
	}
	switch kind {
	case "fixed":
		if len(parts) != 1 {
			return nil, fmt.Errorf("scenario: fixed distribution wants one value, got %q", s)
		}
		v, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("scenario: fixed value %q is not an integer", parts[0])
		}
		return fixedDist(v), nil
	case "uniform":
		if len(parts) != 2 {
			return nil, fmt.Errorf("scenario: uniform distribution wants lo:hi, got %q", s)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("scenario: uniform bounds %q are not integers", rest)
		}
		if hi < lo {
			return nil, fmt.Errorf("scenario: uniform bounds inverted: %d > %d", lo, hi)
		}
		if hi-lo > maxDistRange {
			return nil, fmt.Errorf("scenario: uniform range %d exceeds %d", hi-lo, maxDistRange)
		}
		return uniformDist{lo: lo, hi: hi}, nil
	case "choices":
		if len(parts) == 0 {
			return nil, fmt.Errorf("scenario: choices distribution wants v@w entries, got %q", s)
		}
		d := choicesDist{}
		for _, p := range parts {
			vs, ws, hasW := strings.Cut(p, "@")
			v, err := strconv.Atoi(vs)
			if err != nil {
				return nil, fmt.Errorf("scenario: choice value %q is not an integer", vs)
			}
			w := 1.0
			if hasW {
				w, err = strconv.ParseFloat(ws, 64)
				if err != nil || w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
					return nil, fmt.Errorf("scenario: choice weight %q must be a positive number", ws)
				}
			}
			d.values = append(d.values, v)
			d.cum = append(d.cum, w)
		}
		for i := 1; i < len(d.cum); i++ {
			d.cum[i] += d.cum[i-1]
		}
		return d, nil
	case "normal":
		if len(parts) != 2 {
			return nil, fmt.Errorf("scenario: normal distribution wants mean:stddev, got %q", s)
		}
		mean, err1 := strconv.ParseFloat(parts[0], 64)
		sd, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || sd < 0 ||
			math.IsInf(mean, 0) || math.IsNaN(mean) || math.IsInf(sd, 0) || math.IsNaN(sd) {
			return nil, fmt.Errorf("scenario: normal parameters %q must be numbers with stddev >= 0", rest)
		}
		return normalDist{mean: mean, sd: sd}, nil
	case "zipf":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("scenario: zipf distribution wants min:max[:s], got %q", s)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("scenario: zipf bounds %q are not integers", rest)
		}
		if hi < lo {
			return nil, fmt.Errorf("scenario: zipf bounds inverted: %d > %d", lo, hi)
		}
		if hi-lo > maxDistRange {
			return nil, fmt.Errorf("scenario: zipf range %d exceeds %d", hi-lo, maxDistRange)
		}
		exp := 1.5
		if len(parts) == 3 {
			var err error
			exp, err = strconv.ParseFloat(parts[2], 64)
			if err != nil || exp <= 1 || math.IsInf(exp, 0) || math.IsNaN(exp) {
				return nil, fmt.Errorf("scenario: zipf exponent %q must be a number > 1", parts[2])
			}
		}
		return newZipfDist(lo, hi, exp), nil
	}
	return nil, fmt.Errorf("scenario: unknown size distribution %q (want fixed, uniform, choices, normal, or zipf)", kind)
}

type fixedDist int

func (d fixedDist) Draw(*rand.Rand) int { return int(d) }
func (d fixedDist) String() string      { return strconv.Itoa(int(d)) }

type uniformDist struct{ lo, hi int }

func (d uniformDist) Draw(r *rand.Rand) int { return d.lo + r.Intn(d.hi-d.lo+1) }
func (d uniformDist) String() string        { return fmt.Sprintf("uniform:%d:%d", d.lo, d.hi) }

type choicesDist struct {
	values []int
	cum    []float64 // cumulative weights, parallel to values
}

func (d choicesDist) Draw(r *rand.Rand) int {
	x := r.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, x)
	if i == len(d.values) {
		i--
	}
	return d.values[i]
}

func (d choicesDist) String() string {
	parts := make([]string, len(d.values))
	prev := 0.0
	for i, v := range d.values {
		parts[i] = fmt.Sprintf("%d@%g", v, d.cum[i]-prev)
		prev = d.cum[i]
	}
	return "choices:" + strings.Join(parts, ":")
}

type normalDist struct{ mean, sd float64 }

func (d normalDist) Draw(r *rand.Rand) int {
	return int(math.Round(r.NormFloat64()*d.sd + d.mean))
}
func (d normalDist) String() string { return fmt.Sprintf("normal:%g:%g", d.mean, d.sd) }

// zipfDist draws v in [lo, hi] with P(v) proportional to (v-lo+1)^-s: the
// smallest size is the most frequent, with a power-law tail of big jobs —
// the empirical shape of cluster job-size logs. Sampling is inverse-CDF over
// a cumulative weight table fixed at parse time, so draws cost one Float64
// and a binary search and are identical on every platform.
type zipfDist struct {
	lo, hi int
	exp    float64
	cum    []float64
}

func newZipfDist(lo, hi int, exp float64) zipfDist {
	cum := make([]float64, hi-lo+1)
	total := 0.0
	for i := range cum {
		total += math.Pow(float64(i+1), -exp)
		cum[i] = total
	}
	return zipfDist{lo: lo, hi: hi, exp: exp, cum: cum}
}

func (d zipfDist) Draw(r *rand.Rand) int {
	x := r.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, x)
	if i == len(d.cum) {
		i--
	}
	return d.lo + i
}

func (d zipfDist) String() string {
	if d.exp == 1.5 {
		return fmt.Sprintf("zipf:%d:%d", d.lo, d.hi)
	}
	return fmt.Sprintf("zipf:%d:%d:%g", d.lo, d.hi, d.exp)
}
