package harness

import (
	"fmt"
	"io"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/power"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// EnergyRow reports fabric-level energy for one workload: the paper's
// whole-switch savings metric next to the decomposed link-share model and
// the Section VI deep-sleep scenario.
type EnergyRow struct {
	App string
	NP  int
	GT  time.Duration

	// PaperSavingPct uses the paper's model: whole switch at 43 % while the
	// link is in WRPS mode, averaged over processes.
	PaperSavingPct float64
	// FabricSavingPct uses the decomposed switch model (links = 64 % of
	// switch power; unmanaged uplinks always on).
	FabricSavingPct float64
	// DeepSavingPct and DeepTimeIncreasePct evaluate the deep-sleep run.
	DeepSavingPct       float64
	DeepTimeIncreasePct float64
	TimeIncreasePct     float64
}

// Energy runs the lanes-only and deep-sleep mechanisms for one workload and
// aggregates switch- and fabric-level power (extension experiment E11).
// deep configures the Section VI scenario; the zero value selects the 1 ms
// reactivation with the breakeven entry threshold. cfg carries the network
// parameters and the predictor selection (cfg.Power.PredictorName); its
// power block is otherwise rebuilt per run.
func Energy(app string, np int, displacement float64, opt workloads.Options, deep power.DeepConfig, cfg replay.Config) (*EnergyRow, error) {
	tr, err := workloads.Generate(app, np, opt)
	if err != nil {
		return nil, err
	}
	gt, _, err := ChooseGT(tr, DefaultGTGrid(), 1.0)
	if err != nil {
		return nil, err
	}
	bcfg := cfg
	bcfg.Power.Enabled = false
	base, err := replay.Run(tr, bcfg)
	if err != nil {
		return nil, err
	}
	lanes, err := replay.Run(tr, cfg.WithPower(gt, displacement))
	if err != nil {
		return nil, err
	}
	deepRes, err := replay.Run(tr, cfg.WithPower(gt, displacement).WithDeepSleep(deep))
	if err != nil {
		return nil, err
	}

	row := &EnergyRow{
		App: app, NP: np, GT: gt,
		PaperSavingPct:      lanes.AvgSavingPct(),
		TimeIncreasePct:     lanes.TimeIncreasePct(base),
		DeepSavingPct:       deepRes.AvgSavingPct(),
		DeepTimeIncreasePct: deepRes.TimeIncreasePct(base),
	}
	fabric, err := cfg.Fabric()
	if err != nil {
		return nil, err
	}
	row.FabricSavingPct = fabricSaving(fabric, lanes, np)
	return row, nil
}

// fabricSaving applies the decomposed switch power model to a single-job
// run, where rank r occupies terminal r (the identity placement replay.Run
// uses). On the paper's XGFT the first-hop switches are the leaf switches
// and the always-on count is their uplinks; on a dragonfly or torus it is
// the routers and their local/global (ring) links — in every fabric, exactly
// the switch-to-switch links the mechanism does not manage. The grouping and
// model live in multijob.FabricSavingPct, shared with the multi-tenant
// fabric summary.
func fabricSaving(topo topology.Fabric, res *replay.Result, np int) float64 {
	n := np
	if len(res.Acct) < n {
		n = len(res.Acct)
	}
	terms := make([]int, n)
	for r := range terms {
		terms[r] = r
	}
	return multijob.FabricSavingPct(topo, terms, res.Acct[:n])
}

// WriteEnergy renders energy rows.
func WriteEnergy(w io.Writer, rows []*EnergyRow) error {
	t := stats.NewTable("app", "Nproc", "GT[us]",
		"paper model[%]", "fabric model[%]", "deep[%]",
		"dT lanes[%]", "dT deep[%]")
	for _, r := range rows {
		t.Row(r.App, r.NP, int(r.GT/time.Microsecond),
			r.PaperSavingPct, r.FabricSavingPct, r.DeepSavingPct,
			fmt.Sprintf("%.2f", r.TimeIncreasePct),
			fmt.Sprintf("%.2f", r.DeepTimeIncreasePct))
	}
	return t.Write(w)
}

// Timeline produces the Figure 6 artifact for one workload: per-rank link
// power state timelines under the mechanism.
func Timeline(app string, np int, displacement float64, opt workloads.Options) ([]*trace.Timeline, time.Duration, error) {
	tr, err := workloads.Generate(app, np, opt)
	if err != nil {
		return nil, 0, err
	}
	gt, _, err := ChooseGT(tr, DefaultGTGrid(), 1.0)
	if err != nil {
		return nil, 0, err
	}
	cfg := replay.DefaultConfig().WithPower(gt, displacement)
	cfg.Power.RecordTimelines = true
	res, err := replay.Run(tr, cfg)
	if err != nil {
		return nil, 0, err
	}
	return res.Timelines, gt, nil
}
