package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/scenario"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/trace"
)

// scenarioConfig assembles the scenario.Config for one cell, wiring the
// Runner's caches in exactly as multijobConfig does: a sweep over S
// schedulers and P placements generates each distinct (app, NP) trace once,
// selects its grouping threshold once, and replays its dedicated baseline
// once, no matter how many cells churn through the same job shapes.
func (r *Runner) scenarioConfig(spec scenario.Spec, sched, placement string, displacement float64, parallelism int) scenario.Config {
	cfg := scenario.Config{
		Spec:         spec,
		Scheduler:    sched,
		Placement:    placement,
		Opt:          r.Opt,
		Displacement: displacement,
		Replay:       r.Cfg,
		Generate:     r.trace,
		SelectGT: func(tr *trace.Trace) (time.Duration, error) {
			gt, _, err := r.chooseGT(tr.App, tr.NP, r.Opt, 1.0)
			return gt, err
		},
		Dedicated: func(tr *trace.Trace, gt time.Duration, d float64) (*replay.Result, error) {
			return r.dedicated(tr.App, tr.NP, gt, d)
		},
	}
	cfg.Replay.Parallelism = parallelism
	return cfg
}

// Scenario simulates one churn scenario under one scheduler and placement on
// the Runner's fabric (experiment E16's single cell).
func (r *Runner) Scenario(spec scenario.Spec, sched, placement string, displacement float64) (*multijob.ChurnResult, error) {
	return scenario.Run(r.scenarioConfig(spec, sched, placement, displacement, r.Cfg.Parallelism))
}

// ScenarioRow is one (scheduler, placement) cell of the churn sweep.
type ScenarioRow struct {
	Scheduler string
	Placement string
	Result    *multijob.ChurnResult
}

// ScenarioSweep evaluates the same arrival stream under every (scheduler,
// placement) pairing on the Cfg.Parallelism-bounded pool (experiment E16).
// Cells keep scheduler-major, placement-minor enumeration order and each
// cell's inner event loop stays serial, so rows are bit-identical at every
// pool size.
func (r *Runner) ScenarioSweep(spec scenario.Spec, schedulers, placements []string, displacement float64) ([]ScenarioRow, error) {
	if len(schedulers) == 0 {
		schedulers = scenario.Names()
	}
	for _, s := range schedulers {
		if err := scenario.CheckRegistered(s); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	if len(placements) == 0 {
		placements = multijob.Names()
	}
	for _, p := range placements {
		if err := multijob.CheckRegistered(p); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	type cell struct {
		sched     string
		placement string
	}
	var cells []cell
	for _, s := range schedulers {
		for _, p := range placements {
			cells = append(cells, cell{sched: s, placement: p})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(cells)), cells,
		func(_ context.Context, _ int, c cell) (ScenarioRow, error) {
			res, err := scenario.Run(r.scenarioConfig(spec, c.sched, c.placement, displacement, 1))
			if err != nil {
				return ScenarioRow{}, fmt.Errorf("%s %s: %w", c.sched, c.placement, err)
			}
			return ScenarioRow{Scheduler: c.sched, Placement: c.placement, Result: res}, nil
		})
}

// WriteScenarioSweep renders the E16 sweep: per-cell makespan, the
// queue-wait distribution, mean sharing overhead over the stream's jobs, and
// the fabric-wide energy figure.
func WriteScenarioSweep(w io.Writer, spec scenario.Spec, rows []ScenarioRow) error {
	fmt.Fprintf(w, "job churn sweep over %s\n", spec)
	t := stats.NewTable("scheduler", "placement", "makespan",
		"wait mean", "wait p95", "wait max", "sharing dT[%]", "fabric saving[%]", "mean util[%]")
	for _, row := range rows {
		var dt float64
		for _, j := range row.Result.Jobs {
			dt += j.SharingOverheadPct
		}
		n := float64(len(row.Result.Jobs))
		f := row.Result.Fabric
		var util float64
		for _, u := range row.Result.Util {
			util += u
		}
		if len(row.Result.Util) > 0 {
			util /= float64(len(row.Result.Util))
		}
		t.Row(row.Scheduler, row.Placement, f.MakeSpan.Round(time.Microsecond),
			row.Result.WaitMean.Round(time.Microsecond),
			row.Result.WaitP95.Round(time.Microsecond),
			row.Result.WaitMax.Round(time.Microsecond),
			dt/n, f.SavingPct, util)
	}
	return t.Write(w)
}
