package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/scenario"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/trace"
)

// scenarioConfig assembles the scenario.Config for one cell, wiring the
// Runner's caches in exactly as multijobConfig does: a sweep over S
// schedulers and P placements generates each distinct (app, NP) trace once,
// selects its grouping threshold once, and replays its dedicated baseline
// once, no matter how many cells churn through the same job shapes.
func (r *Runner) scenarioConfig(spec scenario.Spec, sched, placement string, displacement float64, parallelism int) scenario.Config {
	cfg := scenario.Config{
		Spec:         spec,
		Scheduler:    sched,
		Placement:    placement,
		Opt:          r.Opt,
		Displacement: displacement,
		Replay:       r.Cfg,
		Generate:     r.source,
		SelectGT: func(src trace.Source) (time.Duration, error) {
			m := src.Meta()
			gt, _, err := r.chooseGT(m.App, m.NP, r.Opt, 1.0)
			return gt, err
		},
		Dedicated: func(src trace.Source, gt time.Duration, d float64) (*replay.Result, error) {
			m := src.Meta()
			return r.dedicated(m.App, m.NP, gt, d)
		},
	}
	cfg.Replay.Parallelism = parallelism
	return cfg
}

// Scenario simulates one churn scenario under one scheduler and placement on
// the Runner's fabric (experiment E16's single cell).
func (r *Runner) Scenario(spec scenario.Spec, sched, placement string, displacement float64) (*multijob.ChurnResult, error) {
	return scenario.Run(r.scenarioConfig(spec, sched, placement, displacement, r.Cfg.Parallelism))
}

// ScenarioRow is one (scheduler, placement) cell of the churn sweep.
type ScenarioRow struct {
	Scheduler string
	Placement string
	Result    *multijob.ChurnResult
}

// ScenarioSweep evaluates the same arrival stream under every (scheduler,
// placement) pairing on the Cfg.Parallelism-bounded pool (experiment E16).
// Cells keep scheduler-major, placement-minor enumeration order and each
// cell's inner event loop stays serial, so rows are bit-identical at every
// pool size.
func (r *Runner) ScenarioSweep(spec scenario.Spec, schedulers, placements []string, displacement float64) ([]ScenarioRow, error) {
	if len(schedulers) == 0 {
		schedulers = scenario.Names()
	}
	for _, s := range schedulers {
		if err := scenario.CheckRegistered(s); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	if len(placements) == 0 {
		placements = multijob.Names()
	}
	for _, p := range placements {
		if err := multijob.CheckRegistered(p); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	type cell struct {
		sched     string
		placement string
	}
	var cells []cell
	for _, s := range schedulers {
		for _, p := range placements {
			cells = append(cells, cell{sched: s, placement: p})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(cells)), cells,
		func(_ context.Context, _ int, c cell) (ScenarioRow, error) {
			res, err := scenario.Run(r.scenarioConfig(spec, c.sched, c.placement, displacement, 1))
			if err != nil {
				return ScenarioRow{}, fmt.Errorf("%s %s: %w", c.sched, c.placement, err)
			}
			return ScenarioRow{Scheduler: c.sched, Placement: c.placement, Result: res}, nil
		})
}

// ScenarioFaultRow is one (fault spec, scheduler) cell of the resilience
// sweep.
type ScenarioFaultRow struct {
	Faults    string // canonical fault spec; "" = fault-free baseline
	Scheduler string
	Result    *multijob.ChurnResult
}

// ScenarioFaultSweep evaluates the same arrival stream under every (fault
// spec, scheduler) pairing (experiment E17): each fault spec is overlaid on
// the base spec's faults key, an empty string meaning the fault-free
// baseline. Cells keep fault-major, scheduler-minor enumeration order on the
// Cfg.Parallelism-bounded pool; each cell's inner event loop stays serial, so
// rows are bit-identical at every pool size.
func (r *Runner) ScenarioFaultSweep(spec scenario.Spec, faultSpecs, schedulers []string, displacement float64) ([]ScenarioFaultRow, error) {
	if len(faultSpecs) == 0 {
		return nil, fmt.Errorf("harness: fault sweep needs at least one fault spec (\"\" selects the fault-free baseline)")
	}
	if len(schedulers) == 0 {
		schedulers = scenario.Names()
	}
	for _, s := range schedulers {
		if err := scenario.CheckRegistered(s); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	type cell struct {
		faults string
		sched  string
	}
	var cells []cell
	for _, f := range faultSpecs {
		clauses, err := scenario.ParseFaults(f)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		for _, s := range schedulers {
			cells = append(cells, cell{faults: scenario.FormatFaults(clauses), sched: s})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(cells)), cells,
		func(_ context.Context, _ int, c cell) (ScenarioFaultRow, error) {
			cellSpec := spec
			clauses, err := scenario.ParseFaults(c.faults)
			if err != nil {
				return ScenarioFaultRow{}, err
			}
			cellSpec.Faults = clauses
			res, err := scenario.Run(r.scenarioConfig(cellSpec, c.sched, multijob.DefaultPlacement, displacement, 1))
			if err != nil {
				return ScenarioFaultRow{}, fmt.Errorf("faults=%q %s: %w", c.faults, c.sched, err)
			}
			return ScenarioFaultRow{Faults: c.faults, Scheduler: c.sched, Result: res}, nil
		})
}

// WriteScenarioFaultSweep renders the E17 resilience grid: per-cell makespan
// and queue wait alongside the fault layer's kill/retry/abandon counters,
// goodput, wasted terminal-seconds, mean surviving capacity, and unroutable
// transfer count.
func WriteScenarioFaultSweep(w io.Writer, spec scenario.Spec, rows []ScenarioFaultRow) error {
	base := spec
	base.Faults = nil
	fmt.Fprintf(w, "fault churn sweep over %s\n", base)
	t := stats.NewTable("faults", "scheduler", "makespan", "wait mean",
		"killed", "retried", "abandoned", "goodput[%]", "wasted[term-s]", "capacity[%]", "unroutable")
	for _, row := range rows {
		res := row.Result
		faults := row.Faults
		if faults == "" {
			faults = "none"
		}
		goodput := 100.0
		if res.FaultsActive {
			goodput = res.GoodputPct
		}
		var capMean float64
		if len(res.Capacity) > 0 {
			for _, c := range res.Capacity {
				capMean += c
			}
			capMean /= float64(len(res.Capacity))
		} else {
			capMean = 100
		}
		t.Row(faults, row.Scheduler, res.Fabric.MakeSpan.Round(time.Microsecond),
			res.WaitMean.Round(time.Microsecond),
			res.Killed, res.Retried, res.Abandoned,
			goodput, res.WastedTermSeconds, capMean, res.Unroutable)
	}
	return t.Write(w)
}

// WriteScenarioSweep renders the E16 sweep: per-cell makespan, the
// queue-wait distribution, mean sharing overhead over the stream's jobs, and
// the fabric-wide energy figure.
func WriteScenarioSweep(w io.Writer, spec scenario.Spec, rows []ScenarioRow) error {
	fmt.Fprintf(w, "job churn sweep over %s\n", spec)
	t := stats.NewTable("scheduler", "placement", "makespan",
		"wait mean", "wait p95", "wait max", "sharing dT[%]", "fabric saving[%]", "mean util[%]")
	for _, row := range rows {
		var dt float64
		for _, j := range row.Result.Jobs {
			dt += j.SharingOverheadPct
		}
		n := float64(len(row.Result.Jobs))
		f := row.Result.Fabric
		var util float64
		for _, u := range row.Result.Util {
			util += u
		}
		if len(row.Result.Util) > 0 {
			util /= float64(len(row.Result.Util))
		}
		t.Row(row.Scheduler, row.Placement, f.MakeSpan.Round(time.Microsecond),
			row.Result.WaitMean.Round(time.Microsecond),
			row.Result.WaitP95.Round(time.Microsecond),
			row.Result.WaitMax.Round(time.Microsecond),
			dt/n, f.SavingPct, util)
	}
	return t.Write(w)
}
