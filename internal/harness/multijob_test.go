package harness

import (
	"bytes"
	"strings"
	"testing"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func testMixes() [][]multijob.JobSpec {
	return [][]multijob.JobSpec{
		{{App: "gromacs", NP: 8}, {App: "alya", NP: 8}},
		{{App: "alya", NP: 8}, {App: "nasmg", NP: 8}},
	}
}

// TestMultijobSweepBitIdenticalAtAnyParallelism renders the E15 sweep at
// three pool sizes and asserts the output bytes are identical — the
// determinism contract every other subcommand already honors.
func TestMultijobSweepBitIdenticalAtAnyParallelism(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	var ref string
	for _, par := range []int{1, 2, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		rows, err := NewRunner(opt, cfg).MultijobSweep(nil, testMixes(), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMultijobSweep(&buf, rows); err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = buf.String()
			continue
		}
		if buf.String() != ref {
			t.Errorf("sweep output at Parallelism %d differs from serial run:\n%s\n--- vs ---\n%s",
				par, buf.String(), ref)
		}
	}
	// Every registered placement appears in the output.
	for _, p := range multijob.Names() {
		if !strings.Contains(ref, p) {
			t.Errorf("sweep output missing placement %q:\n%s", p, ref)
		}
	}
}

// TestMultijobUsesTableIIIGT asserts the Runner wires its cached Table III
// GT selection into each job, instead of the 2·Treact fallback multijob.Run
// uses bare.
func TestMultijobUsesTableIIIGT(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	r := NewRunner(opt, replay.DefaultConfig())
	res, err := r.Multijob(testMixes()[0], "linear", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		gt, _, err := r.chooseGT(j.App, j.NP, opt, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if j.GT != gt {
			t.Errorf("job %d (%s): GT %v, want the Table III choice %v", i, j.App, j.GT, gt)
		}
	}
}

// TestMultijobSweepRejectsUnknownPlacement mirrors the registry validation
// behaviour of Compare.
func TestMultijobSweepRejectsUnknownPlacement(t *testing.T) {
	r := NewRunner(workloads.Options{IterScale: 0.05}, replay.DefaultConfig())
	_, err := r.MultijobSweep([]string{"nosuch"}, testMixes(), 0.01)
	if err == nil || !strings.Contains(err.Error(), "unknown placement") {
		t.Errorf("error %v, want unknown placement with registry listed", err)
	}
}
