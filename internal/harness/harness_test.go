package harness

import (
	"strings"
	"testing"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

var fastOpt = workloads.Options{IterScale: 0.12}

func TestTableI(t *testing.T) {
	rows, err := TableI(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 { // 5 apps × 5 process counts
		t.Fatalf("rows = %d, want 25", len(rows))
	}
	for _, r := range rows {
		if r.Dist.TotalCount() == 0 {
			t.Errorf("%s/%d: no idle intervals", r.App, r.NP)
		}
	}
	var sb strings.Builder
	if err := WriteTableI(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gromacs") {
		t.Error("table output incomplete")
	}
}

func TestGTSweepAndChoice(t *testing.T) {
	tr, err := workloads.Generate("alya", 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	grid := []time.Duration{20 * time.Microsecond, 100 * time.Microsecond, 300 * time.Microsecond}
	pts, err := GTSweep(tr, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	gt, hit, err := ChooseGT(tr, grid, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if gt < GTMin {
		t.Errorf("chosen GT %v below minimum", gt)
	}
	if hit <= 0 {
		t.Errorf("hit rate %v at chosen GT", hit)
	}
}

func TestGTSweepRejectsBelowMinimum(t *testing.T) {
	tr, _ := workloads.Generate("alya", 8, fastOpt)
	if _, err := GTSweep(tr, []time.Duration{10 * time.Microsecond}); err == nil {
		t.Error("GT below 2*Treact accepted")
	}
	if _, _, err := ChooseGT(tr, []time.Duration{time.Microsecond}, 1); err == nil {
		t.Error("ChooseGT accepted sub-minimum grid")
	}
}

func TestDefaultGTGrid(t *testing.T) {
	g := DefaultGTGrid()
	if g[0] != GTMin {
		t.Errorf("grid starts at %v, want %v", g[0], GTMin)
	}
	if g[len(g)-1] != 400*time.Microsecond {
		t.Errorf("grid ends at %v, want 400µs (Figure 10 range)", g[len(g)-1])
	}
}

func TestFigurePoint(t *testing.T) {
	tr, err := workloads.Generate("nasbt", 9, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	row, err := FigurePoint(tr, 20*time.Microsecond, 0.01, replay.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.SavingPct <= 0 || row.SavingPct > 57 {
		t.Errorf("saving = %.2f%%", row.SavingPct)
	}
	if row.BaseExec <= 0 || row.Exec < row.BaseExec {
		t.Errorf("exec times: base %v, with mechanism %v", row.BaseExec, row.Exec)
	}
}

func TestColumnMapping(t *testing.T) {
	cases := map[int]int{8: 0, 9: 0, 16: 1, 32: 2, 36: 2, 64: 3, 100: 4, 128: 4}
	for np, want := range cases {
		if got := columnOf(np); got != want {
			t.Errorf("columnOf(%d) = %d, want %d", np, got, want)
		}
	}
	if columnLabel(0) != "8/9" || columnLabel(4) != "128/100" {
		t.Error("column labels wrong")
	}
}

func TestTableIVFast(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	rows, err := TableIV(workloads.Options{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Report.Calls == 0 {
			t.Errorf("%s: no calls measured", r.App)
		}
	}
	var sb strings.Builder
	if err := WriteTableIV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "average") {
		t.Error("Table IV output missing average row")
	}
}

func TestWriteFigure(t *testing.T) {
	rows := []FigureRow{
		{App: "alya", NP: 8, GT: 20 * time.Microsecond, SavingPct: 14, TimeIncreasePct: 0.1},
		{App: "alya", NP: 128, GT: 20 * time.Microsecond, SavingPct: 2, TimeIncreasePct: 0.3},
	}
	var sb strings.Builder
	if err := WriteFigure(&sb, 0.01, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "displacement factor = 1%") || !strings.Contains(out, "128/100") {
		t.Errorf("figure output:\n%s", out)
	}
}
