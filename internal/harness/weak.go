package harness

import (
	"fmt"
	"io"

	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/workloads"
)

// WeakScalingRow compares strong- and weak-scaling savings at one point.
type WeakScalingRow struct {
	App    string
	NP     int
	Strong FigureRow
	Weak   FigureRow
}

// WeakScaling tests the paper's prediction that the mechanism "would be
// more effective for weak scaling than for strong scaling runs"
// (Section III): the same applications are generated with per-rank work held
// constant and replayed at the given displacement factor (experiment E13).
func WeakScaling(displacement float64, opt workloads.Options, cfg replay.Config) ([]WeakScalingRow, error) {
	return NewRunner(opt, cfg).WeakScaling(displacement)
}

// WriteWeakScaling renders the comparison.
func WriteWeakScaling(w io.Writer, rows []WeakScalingRow) error {
	t := stats.NewTable("app", "Nproc",
		"strong saving[%]", "weak saving[%]", "strong dT[%]", "weak dT[%]")
	for _, r := range rows {
		t.Row(r.App, r.NP, r.Strong.SavingPct, r.Weak.SavingPct,
			fmt.Sprintf("%.2f", r.Strong.TimeIncreasePct),
			fmt.Sprintf("%.2f", r.Weak.TimeIncreasePct))
	}
	return t.Write(w)
}
