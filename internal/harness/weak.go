package harness

import (
	"fmt"
	"io"

	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/workloads"
)

// WeakScalingRow compares strong- and weak-scaling savings at one point.
type WeakScalingRow struct {
	App    string
	NP     int
	Strong FigureRow
	Weak   FigureRow
}

// WeakScaling tests the paper's prediction that the mechanism "would be
// more effective for weak scaling than for strong scaling runs"
// (Section III): the same applications are generated with per-rank work held
// constant and replayed at the given displacement factor (experiment E13).
func WeakScaling(displacement float64, opt workloads.Options, cfg replay.Config) ([]WeakScalingRow, error) {
	var rows []WeakScalingRow
	grid := DefaultGTGrid()
	for _, app := range workloads.Apps() {
		counts := workloads.ProcCounts(app)
		for _, np := range []int{counts[0], counts[2], counts[4]} {
			var pair [2]FigureRow
			for i, weak := range []bool{false, true} {
				o := opt
				o.Weak = weak
				tr, err := workloads.Generate(app, np, o)
				if err != nil {
					return nil, err
				}
				gt, _, err := ChooseGT(tr, grid, 1.0)
				if err != nil {
					return nil, err
				}
				row, err := FigurePoint(tr, gt, displacement, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s np=%d weak=%v: %w", app, np, weak, err)
				}
				pair[i] = *row
			}
			rows = append(rows, WeakScalingRow{App: app, NP: np, Strong: pair[0], Weak: pair[1]})
		}
	}
	return rows, nil
}

// WriteWeakScaling renders the comparison.
func WriteWeakScaling(w io.Writer, rows []WeakScalingRow) error {
	t := stats.NewTable("app", "Nproc",
		"strong saving[%]", "weak saving[%]", "strong dT[%]", "weak dT[%]")
	for _, r := range rows {
		t.Row(r.App, r.NP, r.Strong.SavingPct, r.Weak.SavingPct,
			fmt.Sprintf("%.2f", r.Strong.TimeIncreasePct),
			fmt.Sprintf("%.2f", r.Weak.TimeIncreasePct))
	}
	return t.Write(w)
}
