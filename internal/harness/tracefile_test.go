package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// packWorkloads writes the given (app, np) workloads under opt into a packed
// binary trace file and opens it, registering cleanup. Packing goes through
// workloads.NewSource, so the file holds exactly the op streams the
// generator would feed the replay directly.
func packWorkloads(t *testing.T, opt workloads.Options, entries map[string][]int) *trace.File {
	t.Helper()
	var srcs []trace.Source
	for app, nps := range entries {
		for _, np := range nps {
			src, err := workloads.NewSource(app, np, opt)
			if err != nil {
				t.Fatal(err)
			}
			srcs = append(srcs, src)
		}
	}
	path := filepath.Join(t.TempDir(), "pack.ibt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinarySources(f, srcs...); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tf, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tf.Close() })
	return tf
}

// scenarioEntries derives the (app, np) set a scenario spec's arrival stream
// needs, so the packed file covers every job shape the churn will admit.
func scenarioEntries(t *testing.T) map[string][]int {
	t.Helper()
	spec := testScenarioSpec(t)
	arrivals, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]map[int]bool{}
	entries := map[string][]int{}
	for _, a := range arrivals {
		if seen[a.Job.App] == nil {
			seen[a.Job.App] = map[int]bool{}
		}
		if !seen[a.Job.App][a.Job.NP] {
			seen[a.Job.App][a.Job.NP] = true
			entries[a.Job.App] = append(entries[a.Job.App], a.Job.NP)
		}
	}
	if len(entries) == 0 {
		t.Fatal("spec expanded to no arrivals")
	}
	return entries
}

// TestCompareGoldenFromTraceFile replays the pinned single-job compare
// golden from a packed binary trace file instead of the generator, at three
// pool sizes: the tentpole acceptance gate that the streamed on-disk path is
// bit-identical to materialized in-memory replay.
func TestCompareGoldenFromTraceFile(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.1}
	tf := packWorkloads(t, opt, map[string][]int{"alya": workloads.ProcCounts("alya")})
	want, err := os.ReadFile(filepath.Join("testdata", "compare_alya_scale10.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		r := NewRunner(opt, cfg)
		r.File = tf
		rows, err := r.Compare(0.01, nil, "alya")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCompare(&buf, 0.01, rows); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("tracefile-served compare at Parallelism %d drifted from golden\n--- got ---\n%s\n--- want ---\n%s",
				par, buf.Bytes(), want)
		}
	}
}

// TestScenarioGoldenFromTraceFile replays the pinned churn golden from a
// packed trace file at three pool sizes — cursors are re-opened per
// admission, so file-backed jobs must churn exactly like generated ones.
func TestScenarioGoldenFromTraceFile(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	tf := packWorkloads(t, opt, scenarioEntries(t))
	want, err := os.ReadFile(filepath.Join("testdata", "scenario_fcfs_roundrobin.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		r := NewRunner(opt, cfg)
		r.File = tf
		res, err := r.Scenario(testScenarioSpec(t), "fcfs", "roundrobin", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := multijob.WriteChurn(&buf, res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("tracefile-served scenario at Parallelism %d drifted from golden", par)
		}
	}
}

// TestScenarioFaultGoldenFromTraceFile replays the pinned fault-injected
// churn golden from a packed trace file at three pool sizes: fault retries
// re-admit the same file-backed source, so a retry must replay the job from
// its first op exactly as the generator-backed path does.
func TestScenarioFaultGoldenFromTraceFile(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	tf := packWorkloads(t, opt, scenarioEntries(t))
	want, err := os.ReadFile(filepath.Join("testdata", "scenario_faults_fcfs_roundrobin.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		r := NewRunner(opt, cfg)
		r.File = tf
		res, err := r.Scenario(testFaultScenarioSpec(t), "fcfs", "roundrobin", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := multijob.WriteChurn(&buf, res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("tracefile-served fault scenario at Parallelism %d drifted from golden", par)
		}
	}
}
