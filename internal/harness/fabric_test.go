package harness

import (
	"strings"
	"testing"

	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/topology"
	"ibpower/internal/workloads"
)

// fabricRunner builds a Runner simulating on the named fabric.
func fabricRunner(par int, fabric string) *Runner {
	cfg := replay.DefaultConfig().WithFabric(fabric)
	cfg.Parallelism = par
	return NewRunner(compareOpt, cfg)
}

// TestCompareDragonflyAllPredictors is the cross-fabric acceptance shape:
// the full predictor comparison sweep — every registered predictor over
// every workload point — completes on a non-paper fabric.
func TestCompareDragonflyAllPredictors(t *testing.T) {
	rows, err := fabricRunner(0, "dragonfly").Compare(0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workloads.Apps()) * 5 * len(predictor.Names()); len(rows) != want {
		t.Fatalf("rows = %d, want %d (all points x all predictors)", len(rows), want)
	}
	for _, r := range rows {
		if r.SavingPct < 0 || r.TimeIncreasePct < -0.5 {
			t.Errorf("implausible row %+v", r)
		}
	}
}

// TestCompareEveryFabricCompletes runs the comparison on every registered
// fabric (restricted to one application to stay affordable) and asserts the
// fabric actually changes the simulated timing: a dragonfly and a torus do
// not reproduce the fat tree's contention bit for bit.
func TestCompareEveryFabricCompletes(t *testing.T) {
	renders := map[string]string{}
	for _, name := range topology.Names() {
		r := fabricRunner(0, name)
		rows, err := r.Compare(0.01, nil, "alya")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := 5 * len(predictor.Names()); len(rows) != want {
			t.Fatalf("%s: rows = %d, want %d", name, len(rows), want)
		}
		var sb strings.Builder
		if err := WriteCompare(&sb, 0.01, rows); err != nil {
			t.Fatal(err)
		}
		renders[name] = sb.String()
	}
	if renders["xgft"] == renders["dragonfly"] {
		t.Error("dragonfly comparison is bit-identical to the fat tree's — the fabric is not being used")
	}
	if renders["torus3d"] == renders["torus2d"] {
		t.Error("3D torus comparison is bit-identical to the 2D torus's")
	}
}

// TestCompareFabricParallelMatchesSerial is the cross-fabric determinism
// acceptance: compare output on a non-paper fabric is bit-identical at every
// pool size.
func TestCompareFabricParallelMatchesSerial(t *testing.T) {
	names := []string{"lastvalue", "ngram", "oracle"}
	for _, fabric := range []string{"dragonfly", "torus3d", "xgft3"} {
		want := renderCompare(t, fabricRunner(1, fabric), names)
		got := renderCompare(t, fabricRunner(4, fabric), names)
		if got != want {
			t.Errorf("%s: parallel compare differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				fabric, want, got)
		}
	}
}

// TestEnergyOnFabric asserts the decomposed fabric power model follows the
// simulated fabric's first-hop switch grouping rather than assuming the
// paper's leaf switches.
func TestEnergyOnFabric(t *testing.T) {
	for _, fabric := range []string{"xgft", "dragonfly"} {
		cfg := replay.DefaultConfig().WithFabric(fabric)
		row, err := Energy("alya", 16, 0.01, compareOpt, power.DeepConfig{}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", fabric, err)
		}
		if row.FabricSavingPct <= 0 || row.FabricSavingPct > 100 {
			t.Errorf("%s: fabric saving %.2f%% out of range", fabric, row.FabricSavingPct)
		}
	}
}
