package harness

import (
	"strings"
	"testing"

	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// compareOpt keeps the 150-cell sweep (25 workload points × 6 predictors)
// affordable in unit tests.
var compareOpt = workloads.Options{IterScale: 0.04}

func compareRunner(par int) *Runner {
	cfg := replay.DefaultConfig()
	cfg.Parallelism = par
	return NewRunner(compareOpt, cfg)
}

func renderCompare(t *testing.T, r *Runner, names []string) string {
	t.Helper()
	rows, err := r.Compare(0.01, names)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCompare(&sb, 0.01, rows); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCompareAllPredictorsAllWorkloads is the acceptance shape of the
// comparison sweep: every registered predictor over every workload point,
// with the oracle's demand-free replay bounding the slowdown column.
func TestCompareAllPredictorsAllWorkloads(t *testing.T) {
	rows, err := compareRunner(0).Compare(0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := predictor.Names()
	if len(names) < 6 {
		t.Fatalf("registry holds %d predictors, want >= 6", len(names))
	}
	if want := len(workloads.Apps()) * 5 * len(names); len(rows) != want {
		t.Fatalf("rows = %d, want %d (all points x all predictors)", len(rows), want)
	}
	// Every (app, predictor) combination appears, and per point the rows
	// enumerate predictors in registry order.
	seen := map[string]map[string]bool{}
	for _, r := range rows {
		if seen[r.App] == nil {
			seen[r.App] = map[string]bool{}
		}
		seen[r.App][r.Predictor] = true
	}
	for _, app := range workloads.Apps() {
		for _, n := range names {
			if !seen[app][n] {
				t.Errorf("no row for (%s, %s)", app, n)
			}
		}
	}
	for _, r := range rows {
		if r.Predictor == "oracle" && r.DemandWakes != 0 {
			t.Errorf("oracle paid %d demand wakes at %s/%d", r.DemandWakes, r.App, r.NP)
		}
		if r.SavingPct < 0 || r.TimeIncreasePct < -0.5 {
			t.Errorf("implausible row %+v", r)
		}
	}
}

// TestCompareParallelMatchesSerial is the determinism acceptance: rendered
// compare output is bit-identical at every pool size.
func TestCompareParallelMatchesSerial(t *testing.T) {
	names := []string{"lastvalue", "ngram", "oracle"}
	want := renderCompare(t, compareRunner(1), names)
	got := renderCompare(t, compareRunner(4), names)
	if got != want {
		t.Errorf("parallel compare differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if !strings.Contains(want, "avg saving[%]") {
		t.Error("summary table missing")
	}
}

func TestCompareUnknownPredictor(t *testing.T) {
	if _, err := compareRunner(1).Compare(0.01, []string{"nosuch"}); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

// TestRunnerBaselineCache asserts the power-unaware replay runs once per
// workload however many predictors compare against it.
func TestRunnerBaselineCache(t *testing.T) {
	r := compareRunner(0)
	first, err := r.baseline("alya", 8)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.baseline("alya", 8)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("baseline cache returned a different result instance")
	}
	if len(first.Acct) != 0 {
		t.Error("baseline replay ran with the mechanism enabled")
	}
}
