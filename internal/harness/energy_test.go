package harness

import (
	"strings"
	"testing"
	"time"

	"ibpower/internal/power"
	"ibpower/internal/replay"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

func TestEnergyRow(t *testing.T) {
	row, err := Energy("gromacs", 8, 0.01, workloads.Options{IterScale: 0.12},
		power.DeepConfig{Treact: 400 * time.Microsecond}, replay.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.PaperSavingPct <= 0 || row.PaperSavingPct > 57 {
		t.Errorf("paper-model saving = %.2f%%", row.PaperSavingPct)
	}
	// The decomposed fabric model manages only host ports, so it must
	// report strictly less than the whole-switch model.
	if row.FabricSavingPct <= 0 || row.FabricSavingPct >= row.PaperSavingPct {
		t.Errorf("fabric saving %.2f%% vs paper %.2f%%", row.FabricSavingPct, row.PaperSavingPct)
	}
	// GROMACS-8 idles exceed the 400 µs deep breakeven: deep must win.
	if row.DeepSavingPct <= row.PaperSavingPct {
		t.Errorf("deep saving %.2f%% not above lanes-only %.2f%%", row.DeepSavingPct, row.PaperSavingPct)
	}
	var sb strings.Builder
	if err := WriteEnergy(&sb, []*EnergyRow{row}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gromacs") {
		t.Error("energy table output incomplete")
	}
}

func TestEnergyDeepNeverWorseAtDefault(t *testing.T) {
	// With the 1 ms default and breakeven entry threshold, deep mode either
	// engages profitably or abstains: savings must never drop below
	// lanes-only by more than rounding.
	for _, app := range []string{"alya", "nasbt"} {
		row, err := Energy(app, 8, 0.01, workloads.Options{IterScale: 0.1}, power.DeepConfig{}, replay.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if row.DeepSavingPct < row.PaperSavingPct-0.1 {
			t.Errorf("%s: deep %.2f%% below lanes-only %.2f%% despite breakeven guard",
				app, row.DeepSavingPct, row.PaperSavingPct)
		}
	}
}

func TestTimelineHarness(t *testing.T) {
	tls, gt, err := Timeline("gromacs", 4, 0.10, workloads.Options{IterScale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if gt < GTMin {
		t.Errorf("GT = %v", gt)
	}
	if len(tls) != 4 {
		t.Fatalf("timelines = %d, want 4", len(tls))
	}
	for _, tl := range tls {
		if tl.TimeIn(trace.StateLow) <= 0 {
			t.Errorf("%s: no low-power intervals", tl.Label)
		}
	}
}
