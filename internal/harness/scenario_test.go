package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/scenario"
	"ibpower/internal/workloads"
)

func testScenarioSpec(t *testing.T) scenario.Spec {
	t.Helper()
	spec, err := scenario.ParseSpec("jobs=6,apps=gromacs+alya,size=uniform:4:12,arrival=poisson:50ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioSweepBitIdenticalAtAnyParallelism renders the E16 sweep at
// three pool sizes and asserts the output bytes are identical — the
// determinism contract every other subcommand already honors.
func TestScenarioSweepBitIdenticalAtAnyParallelism(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	spec := testScenarioSpec(t)
	var ref string
	for _, par := range []int{1, 2, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		rows, err := NewRunner(opt, cfg).ScenarioSweep(spec, nil, []string{"linear", "roundrobin"}, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteScenarioSweep(&buf, spec, rows); err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = buf.String()
			continue
		}
		if buf.String() != ref {
			t.Errorf("sweep output at Parallelism %d differs from serial run:\n%s\n--- vs ---\n%s",
				par, buf.String(), ref)
		}
	}
	// Every registered scheduler appears in the output.
	for _, s := range scenario.Names() {
		if !strings.Contains(ref, s) {
			t.Errorf("sweep output missing scheduler %q:\n%s", s, ref)
		}
	}
}

// TestScenarioUsesTableIIIGT asserts the Runner wires its cached Table III
// GT selection into each churned job, like Multijob does.
func TestScenarioUsesTableIIIGT(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	r := NewRunner(opt, replay.DefaultConfig())
	res, err := r.Scenario(testScenarioSpec(t), "fcfs", "linear", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		gt, _, err := r.chooseGT(j.App, j.NP, opt, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if j.GT != gt {
			t.Errorf("job %d (%s): GT %v, want the Table III choice %v", j.ID, j.App, j.GT, gt)
		}
	}
}

// TestScenarioSweepRejectsUnknownNames mirrors the registry validation of
// the other sweeps for both dimensions.
func TestScenarioSweepRejectsUnknownNames(t *testing.T) {
	r := NewRunner(workloads.Options{IterScale: 0.05}, replay.DefaultConfig())
	spec := testScenarioSpec(t)
	if _, err := r.ScenarioSweep(spec, []string{"nosuch"}, nil, 0.01); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Errorf("error %v, want unknown scheduler with registry listed", err)
	}
	if _, err := r.ScenarioSweep(spec, nil, []string{"nosuch"}, 0.01); err == nil ||
		!strings.Contains(err.Error(), "unknown placement") {
		t.Errorf("error %v, want unknown placement with registry listed", err)
	}
}

// TestScenarioGolden pins the exact byte stream `ibpower scenario` renders
// for a fixed spec against a golden file — the acceptance gate that churn
// results are bit-identical across parallelism settings, repeats, and future
// refactors. Regenerate deliberately with `go test -run TestScenarioGolden
// -update ./internal/harness` and inspect the diff; an unexplained change
// here means scenario results moved for every existing user.
func TestScenarioGolden(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	var ref []byte
	for _, par := range []int{1, 4, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		res, err := NewRunner(opt, cfg).Scenario(testScenarioSpec(t), "fcfs", "roundrobin", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := multijob.WriteChurn(&buf, res); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("scenario output at Parallelism %d differs from serial run", par)
		}
	}
	golden := filepath.Join("testdata", "scenario_fcfs_roundrobin.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, ref, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, want) {
		t.Errorf("scenario output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, ref, want)
	}
}

func testFaultScenarioSpec(t *testing.T) scenario.Spec {
	t.Helper()
	// Big jobs keep most of the fabric busy, so a terminal fault actually
	// lands on a running job and the kill/retry path shows in the golden.
	spec, err := scenario.ApplySpec(testScenarioSpec(t),
		"jobs=8,size=uniform:40:120,faults=term:poisson:20ms:mttr=100ms,link:poisson:50ms:mttr=80ms")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioFaultSweepBitIdentical renders the E17 grid at three pool
// sizes and asserts the output bytes are identical, including a fault-free
// baseline row.
func TestScenarioFaultSweepBitIdentical(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	spec := testScenarioSpec(t)
	faultSpecs := []string{"", "term:poisson:150ms:mttr=300ms"}
	var ref string
	for _, par := range []int{1, 2, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		rows, err := NewRunner(opt, cfg).ScenarioFaultSweep(spec, faultSpecs, []string{"fcfs", "backfill"}, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteScenarioFaultSweep(&buf, spec, rows); err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = buf.String()
			continue
		}
		if buf.String() != ref {
			t.Errorf("fault sweep output at Parallelism %d differs from serial run:\n%s\n--- vs ---\n%s",
				par, buf.String(), ref)
		}
	}
	for _, want := range []string{"none", "term:poisson", "goodput", "unroutable"} {
		if !strings.Contains(ref, want) {
			t.Errorf("fault sweep output missing %q:\n%s", want, ref)
		}
	}
}

// TestScenarioFaultSweepErrors covers the grid's validation paths.
func TestScenarioFaultSweepErrors(t *testing.T) {
	r := NewRunner(workloads.Options{IterScale: 0.05}, replay.DefaultConfig())
	spec := testScenarioSpec(t)
	if _, err := r.ScenarioFaultSweep(spec, nil, nil, 0.01); err == nil ||
		!strings.Contains(err.Error(), "at least one fault spec") {
		t.Errorf("empty fault specs: error %v", err)
	}
	if _, err := r.ScenarioFaultSweep(spec, []string{"disk:poisson:1m"}, nil, 0.01); err == nil ||
		!strings.Contains(err.Error(), "unknown fault kind") {
		t.Errorf("bad fault spec: error %v", err)
	}
	if _, err := r.ScenarioFaultSweep(spec, []string{""}, []string{"nosuch"}, 0.01); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Errorf("bad scheduler: error %v", err)
	}
}

// TestScenarioFaultGolden pins the exact byte stream of a faulty scenario
// against a golden file at three parallelism settings — the acceptance gate
// that seeded fault injection is bit-identical across repeats and pool sizes.
// Regenerate deliberately with `go test -run TestScenarioFaultGolden -update
// ./internal/harness` and inspect the diff.
func TestScenarioFaultGolden(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	var ref []byte
	for _, par := range []int{1, 4, 0} {
		cfg := replay.DefaultConfig()
		cfg.Parallelism = par
		res, err := NewRunner(opt, cfg).Scenario(testFaultScenarioSpec(t), "fcfs", "roundrobin", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := multijob.WriteChurn(&buf, res); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("faulty scenario output at Parallelism %d differs from serial run", par)
		}
	}
	golden := filepath.Join("testdata", "scenario_faults_fcfs_roundrobin.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, ref, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, want) {
		t.Errorf("faulty scenario output drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, ref, want)
	}
}
