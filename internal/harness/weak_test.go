package harness

import (
	"strings"
	"testing"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func TestWeakScalingBeatsStrongAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	rows, err := WeakScaling(0.01, workloads.Options{IterScale: 0.25}, replay.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 apps × 3 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's Section III claim: at the largest process counts, weak
	// scaling must retain (strictly more) savings than strong scaling.
	checked := 0
	for _, r := range rows {
		if r.NP < 100 {
			continue
		}
		checked++
		if r.Weak.SavingPct <= r.Strong.SavingPct {
			t.Errorf("%s/%d: weak %.2f%% <= strong %.2f%%",
				r.App, r.NP, r.Weak.SavingPct, r.Strong.SavingPct)
		}
		// And the execution-time increase must not blow up.
		if r.Weak.TimeIncreasePct > 2 {
			t.Errorf("%s/%d: weak time increase %.2f%%", r.App, r.NP, r.Weak.TimeIncreasePct)
		}
	}
	if checked == 0 {
		t.Fatal("no large-scale rows checked")
	}
	var sb strings.Builder
	if err := WriteWeakScaling(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "weak saving") {
		t.Error("weak-scaling table incomplete")
	}
}
