// Package harness regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment has one entry point returning
// structured rows plus a text renderer producing the same rows/series the
// paper reports. DESIGN.md carries the experiment index.
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Displacements evaluated in the paper (Figures 7, 8, 9).
var Displacements = []float64{0.10, 0.05, 0.01}

// GTMin is the smallest admissible grouping threshold, 2·Treact.
const GTMin = 20 * time.Microsecond

// TableIRow is one (application, process count) row of Table I.
type TableIRow struct {
	App  string
	NP   int
	Dist trace.IdleDist
}

// TableI computes the distribution of link idle intervals for every
// application and process count (experiment E1). Points run on the default
// worker pool; use a Runner to control parallelism.
func TableI(opt workloads.Options) ([]TableIRow, error) {
	return NewRunner(opt, replay.DefaultConfig()).TableI()
}

// WriteTableI renders Table I rows in the paper's layout.
func WriteTableI(w io.Writer, rows []TableIRow) error {
	t := stats.NewTable("app", "Nproc",
		"N<20us", "%ivl", "%time",
		"N20-200us", "%ivl", "%time",
		"N>200us", "%ivl", "%time")
	for _, r := range rows {
		d := r.Dist
		t.Row(r.App, r.NP,
			d.Count[0], pct(d.CountPct(0)), pct3(d.TimePct(0)),
			d.Count[1], pct(d.CountPct(1)), pct3(d.TimePct(1)),
			d.Count[2], pct(d.CountPct(2)), pct3(d.TimePct(2)))
	}
	return t.Write(w)
}

func pct(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct3(v float64) string { return fmt.Sprintf("%.3f", v) }

// GTSweepPoint is one point of Figure 10: hit rate as a function of the
// grouping threshold.
type GTSweepPoint struct {
	GT         time.Duration
	HitRatePct float64
}

// GTSweep evaluates the MPI-call hit rate across grouping thresholds for one
// workload source (experiments E6/E7). Thresholds start at GTMin. Grid
// points run on the default worker pool.
func GTSweep(src trace.Source, gts []time.Duration) ([]GTSweepPoint, error) {
	return GTSweepParallel(src, gts, 0)
}

// GTSweepParallel is GTSweep with an explicit pool size (0 selects
// GOMAXPROCS, 1 is serial). Points are returned in grid order whatever the
// pool size.
func GTSweepParallel(src trace.Source, gts []time.Duration, workers int) ([]GTSweepPoint, error) {
	return GTSweepNamed(src, predictor.DefaultName, gts, workers)
}

// GTSweepNamed is GTSweepParallel for any registered predictor: the hit
// rate reported at each threshold is the predictor's own quality metric
// (detector-based for the n-gram PPA, resolved-prediction-based for the
// baselines), evaluated on the network-free offline runner.
func GTSweepNamed(src trace.Source, name string, gts []time.Duration, workers int) ([]GTSweepPoint, error) {
	if err := validateGrid(gts); err != nil {
		return nil, err
	}
	return sweep.Map(context.Background(), workers, gts,
		func(_ context.Context, _ int, gt time.Duration) (GTSweepPoint, error) {
			res, err := predictor.RunOfflineNamed(name, src,
				predictor.Config{GT: gt, Displacement: 0.01}, predictor.DefaultOverheads())
			if err != nil {
				return GTSweepPoint{}, err
			}
			return GTSweepPoint{GT: gt, HitRatePct: res.AvgHitRatePct()}, nil
		})
}

// validateGrid rejects sub-minimum thresholds before any simulation is
// submitted to the pool, so an invalid grid fails fast instead of after up
// to a pool's worth of offline runs.
func validateGrid(gts []time.Duration) error {
	for _, gt := range gts {
		if gt < GTMin {
			return fmt.Errorf("harness: GT %v below minimum %v", gt, GTMin)
		}
	}
	return nil
}

// DefaultGTGrid returns the sweep grid used for GT selection: 20–400 µs in
// the paper's Figure 10 range.
func DefaultGTGrid() []time.Duration {
	var g []time.Duration
	for us := 20; us <= 400; us += 20 {
		g = append(g, time.Duration(us)*time.Microsecond)
	}
	return g
}

// ChooseGT picks the grouping threshold for a workload. The selection
// criterion follows Section IV-C: achieve a high correct-prediction rate on
// MPI calls *while considering* that a large GT value removes idle intervals
// where shifting to low-power mode is possible. We therefore maximise the
// total predicted idle time the mechanism would program into the wake timers
// (the product the two effects trade off), and return the smallest GT within
// tolPct of that optimum. The hit rate at the chosen GT is returned for
// Table III.
//
// Selection always scores the reference n-gram predictor: the threshold is
// treated as a property of the workload's idle-interval distribution, and
// the Compare experiment reuses it unchanged for every predictor so that
// all of them run at the same operating point.
func ChooseGT(src trace.Source, grid []time.Duration, tolPct float64) (time.Duration, float64, error) {
	return chooseGT(src, grid, tolPct, 1)
}

// ChooseGTParallel is ChooseGT with the grid evaluated on a pool of at most
// workers goroutines (0 selects GOMAXPROCS). The selection is made over the
// complete score vector in grid order, so the chosen GT is identical at
// every pool size.
func ChooseGTParallel(src trace.Source, grid []time.Duration, tolPct float64, workers int) (time.Duration, float64, error) {
	return chooseGT(src, grid, tolPct, workers)
}

// gtPoint is the selection criterion evaluated at one grid threshold.
type gtPoint struct {
	gt    time.Duration
	score float64
	hit   float64
}

// gtScores evaluates every grid threshold on the pool.
func gtScores(src trace.Source, grid []time.Duration, workers int) ([]gtPoint, error) {
	// delayWeight penalises realized reactivation delay: a microsecond of
	// added execution time costs far more than a microsecond of missed
	// low-power opportunity (it propagates between processes).
	const delayWeight = 20
	if err := validateGrid(grid); err != nil {
		return nil, err
	}
	return sweep.Map(context.Background(), workers, grid,
		func(_ context.Context, _ int, gt time.Duration) (gtPoint, error) {
			res, err := predictor.RunOffline(src, predictor.Config{GT: gt, Displacement: 0.01})
			if err != nil {
				return gtPoint{}, err
			}
			score := float64(res.TotalLow()) - delayWeight*float64(res.Delay)
			return gtPoint{gt: gt, score: score, hit: res.AvgHitRatePct()}, nil
		})
}

func chooseGT(src trace.Source, grid []time.Duration, tolPct float64, workers int) (time.Duration, float64, error) {
	if len(grid) == 0 {
		return 0, 0, fmt.Errorf("harness: empty GT grid")
	}
	pts, err := gtScores(src, grid, workers)
	if err != nil {
		return 0, 0, err
	}
	best := pts[0].score
	for _, p := range pts {
		if p.score > best {
			best = p.score
		}
	}
	for _, p := range pts {
		if p.score >= best*(1-tolPct/100) && p.score > 0 {
			return p.gt, p.hit, nil
		}
	}
	// No GT yields useful low-power time; fall back to the minimum.
	return grid[0], pts[0].hit, nil
}

// TableIIIRow records the chosen GT and hit rate for one workload.
type TableIIIRow struct {
	App        string
	NP         int
	GT         time.Duration
	HitRatePct float64
}

// TableIII selects GT for every application and process count (E7). Points
// run on the default worker pool; use a Runner to control parallelism.
func TableIII(opt workloads.Options) ([]TableIIIRow, error) {
	return NewRunner(opt, replay.DefaultConfig()).TableIII()
}

// WriteTableIII renders Table III.
func WriteTableIII(w io.Writer, rows []TableIIIRow) error {
	t := stats.NewTable("app", "Nproc", "GT[us]", "hit rate[%]")
	for _, r := range rows {
		t.Row(r.App, r.NP, int(r.GT/time.Microsecond), r.HitRatePct)
	}
	return t.Write(w)
}

// FigureRow is one (application, NP) point of Figures 7–9: power savings and
// execution-time increase at one displacement factor.
type FigureRow struct {
	App             string
	NP              int
	GT              time.Duration
	SavingPct       float64
	TimeIncreasePct float64
	HitRatePct      float64
	LowFraction     float64
	BaseExec        time.Duration
	Exec            time.Duration
}

// Figure runs the full co-simulation for one displacement factor over all
// applications and process counts (experiments E3–E5). GT per workload is
// chosen as in Table III. Points run on a cfg.Parallelism-bounded pool; a
// shared Runner additionally reuses traces and GT choices across
// displacement factors.
func Figure(displacement float64, opt workloads.Options, cfg replay.Config) ([]FigureRow, error) {
	return NewRunner(opt, cfg).Figure(displacement)
}

// FigurePoint runs baseline and mechanism replays for one workload source.
func FigurePoint(src trace.Source, gt time.Duration, displacement float64, cfg replay.Config) (*FigureRow, error) {
	base, err := replay.RunSource(src, cfg)
	if err != nil {
		return nil, err
	}
	pcfg := cfg.WithPower(gt, displacement)
	res, err := replay.RunSource(src, pcfg)
	if err != nil {
		return nil, err
	}
	m := src.Meta()
	return &FigureRow{
		App:             m.App,
		NP:              m.NP,
		GT:              gt,
		SavingPct:       res.AvgSavingPct(),
		TimeIncreasePct: res.TimeIncreasePct(base),
		HitRatePct:      res.AvgHitRatePct(),
		LowFraction:     res.AvgLowFraction(),
		BaseExec:        base.ExecTime,
		Exec:            res.ExecTime,
	}, nil
}

// WriteFigure renders figure rows plus per-size averages (the paper's
// AVERAGE series).
func WriteFigure(w io.Writer, displacement float64, rows []FigureRow) error {
	fmt.Fprintf(w, "displacement factor = %.0f%%\n", displacement*100)
	t := stats.NewTable("app", "Nproc", "GT[us]", "saving[%]", "time incr[%]", "hit[%]", "base exec", "exec")
	for _, r := range rows {
		t.Row(r.App, r.NP, int(r.GT/time.Microsecond), r.SavingPct,
			fmt.Sprintf("%.2f", r.TimeIncreasePct), r.HitRatePct,
			r.BaseExec.Round(time.Microsecond), r.Exec.Round(time.Microsecond))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	// Average series per process-count column (8/9, 16, 32/36, 64, 128/100).
	byCol := map[int][]FigureRow{}
	for _, r := range rows {
		byCol[columnOf(r.NP)] = append(byCol[columnOf(r.NP)], r)
	}
	at := stats.NewTable("column", "avg saving[%]", "avg time incr[%]")
	for col := 0; col < 5; col++ {
		rs := byCol[col]
		if len(rs) == 0 {
			continue
		}
		var s, ti float64
		for _, r := range rs {
			s += r.SavingPct
			ti += r.TimeIncreasePct
		}
		at.Row(columnLabel(col), s/float64(len(rs)), fmt.Sprintf("%.2f", ti/float64(len(rs))))
	}
	fmt.Fprintln(w)
	return at.Write(w)
}

// columnOf maps a process count to the paper's x-axis column index.
func columnOf(np int) int {
	switch np {
	case 8, 9:
		return 0
	case 16:
		return 1
	case 32, 36:
		return 2
	case 64:
		return 3
	default:
		return 4
	}
}

func columnLabel(col int) string {
	return [...]string{"8/9", "16", "32/36", "64", "128/100"}[col]
}
