package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/sweep"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Runner evaluates harness experiments over one workload configuration. It
// adds two things over the package-level entry points it backs:
//
//   - a per-run cache so each (application, NP, Options) trace source is
//     resolved once and each Table III grouping threshold is chosen once, no
//     matter how many tables and figures a run regenerates;
//   - a bounded worker pool (Cfg.Parallelism, GOMAXPROCS-sized by default)
//     that sweeps independent experiment points concurrently.
//
// Each point is still simulated by the single-threaded replay and predictor
// engines, and rows keep their serial enumeration order, so output is
// bit-identical to a Parallelism: 1 run.
//
// The zero value is not usable; construct with NewRunner. A Runner is safe
// for concurrent use.
type Runner struct {
	Opt workloads.Options
	Cfg replay.Config

	// File optionally serves workloads from a packed binary trace file
	// instead of the generator: when an (app, NP) entry exists in the file
	// it is replayed through a bounded streaming window, and only workloads
	// missing from the file fall back to workloads.Generate. The cache then
	// holds the file handle's cursor factory, never the decoded ops. Entries
	// only stand in for the Runner's own Opt — experiments that vary the
	// generation options per point (WeakScaling) always regenerate, since a
	// packed file records one options setting. Set before the first
	// experiment; the caller keeps ownership and closes the file after use.
	File *trace.File

	mu     sync.Mutex
	traces map[traceKey]*traceEntry
	gts    map[gtKey]*gtEntry
	bases  map[traceKey]*baseEntry
	deds   map[dedKey]*baseEntry
}

// NewRunner returns a Runner over the given generation options and replay
// configuration (cfg.Parallelism bounds the sweep pool).
func NewRunner(opt workloads.Options, cfg replay.Config) *Runner {
	return &Runner{
		Opt:    opt,
		Cfg:    cfg,
		traces: make(map[traceKey]*traceEntry),
		gts:    make(map[gtKey]*gtEntry),
		bases:  make(map[traceKey]*baseEntry),
		deds:   make(map[dedKey]*baseEntry),
	}
}

// predictorName returns the registry name the Runner's experiments simulate
// with (Cfg.Power.PredictorName, defaulting to the n-gram PPA).
func (r *Runner) predictorName() string {
	if n := r.Cfg.Power.PredictorName; n != "" {
		return n
	}
	return predictor.DefaultName
}

type traceKey struct {
	app string
	np  int
	opt workloads.Options
}

type traceEntry struct {
	once sync.Once
	src  trace.Source
	err  error
}

type gtKey struct {
	traceKey
	tolPct float64
}

type gtEntry struct {
	once sync.Once
	gt   time.Duration
	hit  float64
	err  error
}

type baseEntry struct {
	once sync.Once
	res  *replay.Result
	err  error
}

// dedKey identifies a cached dedicated-fabric mechanism run: one workload
// alone on the Runner's fabric at a specific grouping threshold and
// displacement (the multijob sharing-overhead denominator).
type dedKey struct {
	traceKey
	gt time.Duration
	d  float64
}

// workers sizes the pool for n points.
func (r *Runner) workers(n int) int { return sweep.Workers(r.Cfg.Parallelism, n) }

// source returns the cached trace source for (app, np) under r.Opt. Its
// signature matches the multijob/scenario Generate hook.
func (r *Runner) source(app string, np int) (trace.Source, error) {
	return r.sourceOpt(app, np, r.Opt)
}

// sourceOpt returns the cached trace source for (app, np, opt), resolving it
// at most once per key even under concurrent callers: from the attached
// packed file when it has the entry (and opt is the Runner's own Opt — a
// file records one options setting), otherwise from workloads.Generate.
func (r *Runner) sourceOpt(app string, np int, opt workloads.Options) (trace.Source, error) {
	k := traceKey{app: app, np: np, opt: opt}
	r.mu.Lock()
	e, ok := r.traces[k]
	if !ok {
		e = &traceEntry{}
		r.traces[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		if r.File != nil && opt == r.Opt && r.File.Has(app, np) {
			e.src, e.err = r.File.Source(app, np)
			return
		}
		e.src, e.err = workloads.Generate(app, np, opt)
	})
	return e.src, e.err
}

// chooseGT returns the cached Table III grouping threshold for
// (app, np, opt) over the default grid. All Runner experiments select GT on
// DefaultGTGrid, so the cache key does not include the grid.
func (r *Runner) chooseGT(app string, np int, opt workloads.Options, tolPct float64) (time.Duration, float64, error) {
	k := gtKey{traceKey: traceKey{app: app, np: np, opt: opt}, tolPct: tolPct}
	r.mu.Lock()
	e, ok := r.gts[k]
	if !ok {
		e = &gtEntry{}
		r.gts[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		src, err := r.sourceOpt(app, np, opt)
		if err != nil {
			e.err = err
			return
		}
		// Serial over the grid: the point sweep above already saturates the
		// pool, and nested parallelism would oversubscribe it.
		e.gt, e.hit, e.err = ChooseGT(src, DefaultGTGrid(), tolPct)
	})
	return e.gt, e.hit, e.err
}

// baseline returns the cached power-unaware replay for (app, np) under
// r.Opt: the denominator of every saving and slowdown figure. Sharing it
// across experiments matters most for Compare, which would otherwise replay
// the same baseline once per predictor.
func (r *Runner) baseline(app string, np int) (*replay.Result, error) {
	k := traceKey{app: app, np: np, opt: r.Opt}
	r.mu.Lock()
	e, ok := r.bases[k]
	if !ok {
		e = &baseEntry{}
		r.bases[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		src, err := r.source(app, np)
		if err != nil {
			e.err = err
			return
		}
		bcfg := r.Cfg
		bcfg.Power = replay.PowerConfig{}
		e.res, e.err = replay.RunSource(src, bcfg)
	})
	return e.res, e.err
}

// dedicated returns the cached dedicated-fabric run for (app, np) at
// (gt, d) under r.Opt and r.Cfg: the same job alone with the mechanism on,
// the denominator of the multijob sharing overhead. The baseline is
// placement-independent, so one replay serves every placement cell of a
// MultijobSweep.
func (r *Runner) dedicated(app string, np int, gt time.Duration, d float64) (*replay.Result, error) {
	k := dedKey{traceKey: traceKey{app: app, np: np, opt: r.Opt}, gt: gt, d: d}
	r.mu.Lock()
	e, ok := r.deds[k]
	if !ok {
		e = &baseEntry{}
		r.deds[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		src, err := r.sourceOpt(app, np, r.Opt)
		if err != nil {
			e.err = err
			return
		}
		// Build the power block exactly as the shared run does
		// (multijob.JobPower preserves deep sleep, overheads and predictor
		// tuning from r.Cfg), so the overhead compares like with like.
		bcfg := r.Cfg
		bcfg.Power = multijob.JobPower(r.Cfg, gt, d)
		e.res, e.err = replay.RunSource(src, bcfg)
	})
	return e.res, e.err
}

// point is one (application, process count) cell of a table or figure.
type point struct {
	app string
	np  int
}

// allPoints enumerates the paper's full evaluation set in row order.
func allPoints() []point {
	var pts []point
	for _, app := range workloads.Apps() {
		for _, np := range workloads.ProcCounts(app) {
			pts = append(pts, point{app: app, np: np})
		}
	}
	return pts
}

// TableI computes the idle-interval distribution rows (experiment E1) on
// the pool, streaming each rank once.
func (r *Runner) TableI() ([]TableIRow, error) {
	pts := allPoints()
	return sweep.Map(context.Background(), r.workers(len(pts)), pts,
		func(_ context.Context, _ int, p point) (TableIRow, error) {
			src, err := r.source(p.app, p.np)
			if err != nil {
				return TableIRow{}, err
			}
			dist, err := trace.SourceIdleDistribution(src)
			if err != nil {
				return TableIRow{}, err
			}
			return TableIRow{App: p.app, NP: p.np, Dist: dist}, nil
		})
}

// TableIII selects GT for every workload (experiment E7) on the pool.
func (r *Runner) TableIII() ([]TableIIIRow, error) {
	pts := allPoints()
	return sweep.Map(context.Background(), r.workers(len(pts)), pts,
		func(_ context.Context, _ int, p point) (TableIIIRow, error) {
			gt, hit, err := r.chooseGT(p.app, p.np, r.Opt, 1.0)
			if err != nil {
				return TableIIIRow{}, err
			}
			return TableIIIRow{App: p.app, NP: p.np, GT: gt, HitRatePct: hit}, nil
		})
}

// Figure runs the full co-simulation for one displacement factor
// (experiments E3–E5) on the pool.
func (r *Runner) Figure(displacement float64) ([]FigureRow, error) {
	pts := allPoints()
	return sweep.Map(context.Background(), r.workers(len(pts)), pts,
		func(_ context.Context, _ int, p point) (FigureRow, error) {
			src, err := r.source(p.app, p.np)
			if err != nil {
				return FigureRow{}, err
			}
			gt, _, err := r.chooseGT(p.app, p.np, r.Opt, 1.0)
			if err != nil {
				return FigureRow{}, err
			}
			row, err := FigurePoint(src, gt, displacement, r.Cfg)
			if err != nil {
				return FigureRow{}, fmt.Errorf("%s np=%d: %w", p.app, p.np, err)
			}
			return *row, nil
		})
}

// TableIV measures PPA overheads at 16 processes (experiment E8). Trace
// generation and GT selection run on the pool; the wall-clock overhead
// measurement itself stays serial, because concurrent measurement would
// contend for CPUs and inflate the reported timings.
func (r *Runner) TableIV() ([]TableIVRow, error) {
	type prep struct {
		src trace.Source
		gt  time.Duration
	}
	apps := workloads.Apps()
	preps, err := sweep.Map(context.Background(), r.workers(len(apps)), apps,
		func(_ context.Context, _ int, app string) (prep, error) {
			src, err := r.source(app, 16)
			if err != nil {
				return prep{}, err
			}
			gt, _, err := r.chooseGT(app, 16, r.Opt, 1.0)
			if err != nil {
				return prep{}, err
			}
			return prep{src: src, gt: gt}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []TableIVRow
	for i, app := range apps {
		rep, err := predictor.MeasureOverheadsNamed(r.predictorName(), preps[i].src,
			predictor.Config{GT: preps[i].gt, Displacement: 0.01})
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIVRow{App: app, Report: rep})
	}
	return rows, nil
}

// WeakScaling compares strong- and weak-scaling savings (experiment E13) on
// the pool; the strong/weak pair of one point stays together so both rows
// see the same scheduling.
func (r *Runner) WeakScaling(displacement float64) ([]WeakScalingRow, error) {
	var pts []point
	for _, app := range workloads.Apps() {
		counts := workloads.ProcCounts(app)
		for _, np := range []int{counts[0], counts[2], counts[4]} {
			pts = append(pts, point{app: app, np: np})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(pts)), pts,
		func(_ context.Context, _ int, p point) (WeakScalingRow, error) {
			var pair [2]FigureRow
			for i, weak := range []bool{false, true} {
				o := r.Opt
				o.Weak = weak
				src, err := r.sourceOpt(p.app, p.np, o)
				if err != nil {
					return WeakScalingRow{}, err
				}
				gt, _, err := r.chooseGT(p.app, p.np, o, 1.0)
				if err != nil {
					return WeakScalingRow{}, err
				}
				row, err := FigurePoint(src, gt, displacement, r.Cfg)
				if err != nil {
					return WeakScalingRow{}, fmt.Errorf("%s np=%d weak=%v: %w", p.app, p.np, weak, err)
				}
				pair[i] = *row
			}
			return WeakScalingRow{App: p.app, NP: p.np, Strong: pair[0], Weak: pair[1]}, nil
		})
}
