package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/trace"
)

// multijobConfig assembles the multijob.Config for one cell, wiring the
// Runner's caches in: traces come from the per-run trace cache and grouping
// thresholds from the Table III GT cache, so a sweep over P placements never
// regenerates or re-selects anything P times.
func (r *Runner) multijobConfig(jobs []multijob.JobSpec, placement string, displacement float64, parallelism int) multijob.Config {
	cfg := multijob.Config{
		Jobs:         jobs,
		Placement:    placement,
		Opt:          r.Opt,
		Displacement: displacement,
		Replay:       r.Cfg,
		Generate:     r.source,
		SelectGT: func(src trace.Source) (time.Duration, error) {
			m := src.Meta()
			gt, _, err := r.chooseGT(m.App, m.NP, r.Opt, 1.0)
			return gt, err
		},
		Dedicated: func(src trace.Source, gt time.Duration, d float64) (*replay.Result, error) {
			m := src.Meta()
			return r.dedicated(m.App, m.NP, gt, d)
		},
	}
	cfg.Replay.Parallelism = parallelism
	return cfg
}

// Multijob simulates one job mix under one placement policy on the Runner's
// fabric (experiment E15's single cell). Traces and GT choices are cached on
// the Runner; the per-job dedicated baselines run on the Cfg.Parallelism
// pool.
func (r *Runner) Multijob(jobs []multijob.JobSpec, placement string, displacement float64) (*multijob.Result, error) {
	return multijob.Run(r.multijobConfig(jobs, placement, displacement, r.Cfg.Parallelism))
}

// MultijobRow is one (placement, job mix) cell of the sharing sweep.
type MultijobRow struct {
	Placement string
	Mix       string
	Result    *multijob.Result
}

// DefaultJobMixes returns the job mixes the E15 sweep evaluates: a pair of
// regular iterators, an asymmetric large/small pair, a three-tenant mix, and
// a four-tenant mix filling most of the edge. Every mix totals <= 144 ranks,
// so the sweep runs on every registered fabric preset.
func DefaultJobMixes() [][]multijob.JobSpec {
	return [][]multijob.JobSpec{
		{{App: "gromacs", NP: 16}, {App: "alya", NP: 16}},
		{{App: "gromacs", NP: 64}, {App: "alya", NP: 16}},
		{{App: "alya", NP: 16}, {App: "nasbt", NP: 16}, {App: "wrf", NP: 16}},
		{{App: "gromacs", NP: 32}, {App: "wrf", NP: 32}, {App: "nasmg", NP: 32}, {App: "alya", NP: 32}},
	}
}

// MultijobSweep evaluates every (placement, job mix) cell on the
// Cfg.Parallelism-bounded pool (experiment E15). Cells keep placement-major,
// mix-minor enumeration order and each cell's inner runs stay serial — the
// cell sweep above already saturates the pool — so rows are bit-identical at
// every pool size.
func (r *Runner) MultijobSweep(placements []string, mixes [][]multijob.JobSpec, displacement float64) ([]MultijobRow, error) {
	if len(placements) == 0 {
		placements = multijob.Names()
	}
	for _, p := range placements {
		if err := multijob.CheckRegistered(p); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	if len(mixes) == 0 {
		mixes = DefaultJobMixes()
	}
	type cell struct {
		placement string
		mix       []multijob.JobSpec
	}
	var cells []cell
	for _, p := range placements {
		for _, m := range mixes {
			cells = append(cells, cell{placement: p, mix: m})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(cells)), cells,
		func(_ context.Context, _ int, c cell) (MultijobRow, error) {
			res, err := multijob.Run(r.multijobConfig(c.mix, c.placement, displacement, 1))
			if err != nil {
				return MultijobRow{}, fmt.Errorf("%s %s: %w", c.placement, multijob.FormatJobs(c.mix), err)
			}
			return MultijobRow{
				Placement: c.placement,
				Mix:       multijob.FormatJobs(c.mix),
				Result:    res,
			}, nil
		})
}

// WriteMultijobSweep renders the E15 sweep: per-cell makespan, the mean
// sharing overhead and saving over the mix's jobs, and the fabric-wide
// figures.
func WriteMultijobSweep(w io.Writer, rows []MultijobRow) error {
	fmt.Fprintln(w, "multi-job fabric sharing sweep (per-cell means over the mix's jobs; overhead vs dedicated fabric)")
	t := stats.NewTable("placement", "jobs", "makespan",
		"sharing dT[%]", "saving[%]", "fabric saving[%]", "links used", "mean util[%]")
	for _, row := range rows {
		var dt, sv float64
		for _, j := range row.Result.Jobs {
			dt += j.SharingOverheadPct
			sv += j.SavingPct
		}
		n := float64(len(row.Result.Jobs))
		f := row.Result.Fabric
		t.Row(row.Placement, row.Mix, f.MakeSpan.Round(time.Microsecond),
			dt/n, sv/n, f.SavingPct, f.LinksUsed, f.MeanUtilPct)
	}
	return t.Write(w)
}
