package harness

import (
	"fmt"
	"io"
	"time"

	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/workloads"
)

// TableIVRow reports the measured mechanism overheads for one application at
// 16 MPI processes, as in the paper's Table IV.
type TableIVRow struct {
	App    string
	Report predictor.OverheadReport
}

// TableIV measures real wall-clock PPA overheads at 16 processes (NAS BT
// uses its square count, also 16), experiment E8. Trace generation and GT
// selection run on the default worker pool; the measurement itself is
// serial to keep the timings honest.
func TableIV(opt workloads.Options) ([]TableIVRow, error) {
	return NewRunner(opt, replay.DefaultConfig()).TableIV()
}

// WriteTableIV renders Table IV.
func WriteTableIV(w io.Writer, rows []TableIVRow) error {
	t := stats.NewTable("app", "calls w/ PPA[%]", "per invoked call[us]", "per call amortized[us]")
	var pctSum, invSum, amortSum float64
	for _, r := range rows {
		t.Row(r.App, r.Report.PPAInvokedPct,
			us(r.Report.PerInvokedCall), us(r.Report.PerCallAmortized))
		pctSum += r.Report.PPAInvokedPct
		invSum += us(r.Report.PerInvokedCall)
		amortSum += us(r.Report.PerCallAmortized)
	}
	n := float64(len(rows))
	if n > 0 {
		t.Row("average", pctSum/n, invSum/n, amortSum/n)
	}
	return t.Write(w)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteGTSweep renders Figure 10 points as a text series; name is the
// predictor the sweep ran.
func WriteGTSweep(w io.Writer, app string, np int, name string, pts []GTSweepPoint) error {
	fmt.Fprintf(w, "GT sweep for %s, %d processes, predictor %s (Figure 10)\n", app, np, name)
	t := stats.NewTable("GT[us]", "correctly predicted MPI calls[%]")
	for _, p := range pts {
		t.Row(int(p.GT/time.Microsecond), p.HitRatePct)
	}
	return t.Write(w)
}
