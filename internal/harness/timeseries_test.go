package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// scenarioTimeseriesDoc runs the scenario with telemetry on at the given
// pool size and returns the versioned JSON document bytes.
func scenarioTimeseriesDoc(t *testing.T, faulty bool, par int) []byte {
	t.Helper()
	opt := workloads.Options{Seed: 42, IterScale: 0.05}
	cfg := replay.DefaultConfig().WithTelemetry(time.Millisecond)
	cfg.Parallelism = par
	spec := testScenarioSpec(t)
	if faulty {
		spec = testFaultScenarioSpec(t)
	}
	res, err := NewRunner(opt, cfg).Scenario(spec, "fcfs", "roundrobin", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("telemetry enabled but ChurnResult.Series is nil")
	}
	var buf bytes.Buffer
	if err := res.Series.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// timeseriesGolden pins the scenario telemetry document byte-for-byte at
// three parallelism settings against a golden file — the acceptance gate
// that `ibpower scenario -timeseries` output is a pure function of the spec.
// Regenerate deliberately with `go test -run TestScenarioTimeseries -update
// ./internal/harness` and inspect the diff: an unexplained change means the
// telemetry bucket timeline moved for every existing consumer.
func timeseriesGolden(t *testing.T, faulty bool, golden string) {
	var ref []byte
	for _, par := range []int{1, 4, 0} {
		doc := scenarioTimeseriesDoc(t, faulty, par)
		if ref == nil {
			ref = doc
			continue
		}
		if !bytes.Equal(doc, ref) {
			t.Fatalf("telemetry document at Parallelism %d differs from serial run", par)
		}
	}
	path := filepath.Join("testdata", golden)
	if *updateGolden {
		if err := os.WriteFile(path, ref, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, want) {
		t.Errorf("telemetry document drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, ref, want)
	}
	// The engine- and churn-level registries must both appear: a missing
	// series name here means a recorder was silently disconnected.
	for _, name := range []string{
		`"power.host"`, `"pred.hit"`, `"util.hostup"`,
		`"queue.depth"`, `"fabric.occupied"`, `"capacity.up"`,
		`"version": 1`,
	} {
		if !strings.Contains(string(ref), name) {
			t.Errorf("telemetry document missing %s", name)
		}
	}
}

func TestScenarioTimeseriesGolden(t *testing.T) {
	timeseriesGolden(t, false, "scenario_timeseries.golden.json")
}

// TestScenarioTimeseriesFaultGolden pins the same contract with the fault
// golden's scenario: degraded capacity and kill/retry churn must leave the
// document bit-identical across pool sizes too.
func TestScenarioTimeseriesFaultGolden(t *testing.T) {
	timeseriesGolden(t, true, "scenario_timeseries_faults.golden.json")
}
