package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/stats"
	"ibpower/internal/sweep"
	"ibpower/internal/workloads"
)

// CompareRow is one (application, process count, predictor) cell of the
// predictor comparison sweep (experiment E14): every registered idle
// predictor replayed over the paper's evaluation grid at one displacement
// factor, against the shared power-unaware baseline. This is the experiment
// the pluggable predictor registry exists for: it quantifies what the
// n-gram PPA buys over the last-value/EWMA/static baselines and how far it
// sits from the clairvoyant oracle and the trace-trained offline profile.
type CompareRow struct {
	App       string
	Predictor string
	NP        int
	GT        time.Duration

	SavingPct       float64 // switch power saving, averaged over processes
	TimeIncreasePct float64 // execution time increase vs power-unaware run
	HitRatePct      float64 // predictor-reported correct-prediction rate
	TimerWakePct    float64 // % of wakes triggered by the timer (not demand)
	Shutdowns       int
	DemandWakes     int
}

// Compare runs the named predictors (all registered ones when names is
// empty) over the full evaluation grid on the default worker pool.
func Compare(displacement float64, names []string, opt workloads.Options, cfg replay.Config) ([]CompareRow, error) {
	return NewRunner(opt, cfg).Compare(displacement, names)
}

// Compare evaluates each named predictor over every (application, process
// count) point — restricted to the given applications when any are named.
// All predictors run at the workload's Table III grouping threshold — the
// operating point the paper's GT selection produces — and against one
// cached baseline replay per workload, so rows differ only in the
// prediction component. Cells run on the Cfg.Parallelism-bounded pool;
// rows keep (application, process count, predictor) enumeration order, so
// output is bit-identical at every pool size.
func (r *Runner) Compare(displacement float64, names []string, apps ...string) ([]CompareRow, error) {
	if len(names) == 0 {
		names = predictor.Names()
	}
	for _, n := range names {
		if err := predictor.CheckRegistered(n); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	pts := allPoints()
	if len(apps) > 0 {
		known := map[string]bool{}
		for _, a := range workloads.Apps() {
			known[a] = true
		}
		keep := map[string]bool{}
		for _, a := range apps {
			if !known[a] {
				return nil, fmt.Errorf("harness: unknown application %q (have %s)",
					a, strings.Join(workloads.Apps(), ", "))
			}
			keep[a] = true
		}
		var filtered []point
		for _, p := range pts {
			if keep[p.app] {
				filtered = append(filtered, p)
			}
		}
		pts = filtered
	}
	type cell struct {
		p    point
		name string
	}
	var cells []cell
	for _, p := range pts {
		for _, n := range names {
			cells = append(cells, cell{p: p, name: n})
		}
	}
	return sweep.Map(context.Background(), r.workers(len(cells)), cells,
		func(_ context.Context, _ int, c cell) (CompareRow, error) {
			src, err := r.source(c.p.app, c.p.np)
			if err != nil {
				return CompareRow{}, err
			}
			gt, _, err := r.chooseGT(c.p.app, c.p.np, r.Opt, 1.0)
			if err != nil {
				return CompareRow{}, err
			}
			base, err := r.baseline(c.p.app, c.p.np)
			if err != nil {
				return CompareRow{}, err
			}
			res, err := replay.RunSource(src, r.Cfg.WithPredictor(c.name).WithPower(gt, displacement))
			if err != nil {
				return CompareRow{}, fmt.Errorf("%s %s np=%d: %w", c.name, c.p.app, c.p.np, err)
			}
			row := CompareRow{
				App:             c.p.app,
				Predictor:       c.name,
				NP:              c.p.np,
				GT:              gt,
				SavingPct:       res.AvgSavingPct(),
				TimeIncreasePct: res.TimeIncreasePct(base),
				HitRatePct:      res.AvgHitRatePct(),
				Shutdowns:       res.Shutdowns,
				DemandWakes:     res.DemandWakes,
			}
			if wakes := res.TimerWakes + res.DemandWakes; wakes > 0 {
				row.TimerWakePct = 100 * float64(res.TimerWakes) / float64(wakes)
			}
			return row, nil
		})
}

// WriteCompare renders the comparison: the full per-cell table followed by
// per-predictor averages over the whole grid (the Table-I-style summary).
func WriteCompare(w io.Writer, displacement float64, rows []CompareRow) error {
	fmt.Fprintf(w, "predictor comparison, displacement factor = %.0f%% (savings/overhead vs shared power-unaware baseline)\n",
		displacement*100)
	t := stats.NewTable("app", "Nproc", "predictor", "GT[us]",
		"saving[%]", "time incr[%]", "hit[%]", "timer wake[%]", "shutdowns", "demand wakes")
	for _, r := range rows {
		t.Row(r.App, r.NP, r.Predictor, int(r.GT/time.Microsecond),
			r.SavingPct, fmt.Sprintf("%.2f", r.TimeIncreasePct),
			r.HitRatePct, r.TimerWakePct, r.Shutdowns, r.DemandWakes)
	}
	if err := t.Write(w); err != nil {
		return err
	}

	// Per-predictor averages, in first-appearance order.
	type agg struct {
		n                      int
		saving, incr, hit, twk float64
	}
	aggs := map[string]*agg{}
	var order []string
	for _, r := range rows {
		a, ok := aggs[r.Predictor]
		if !ok {
			a = &agg{}
			aggs[r.Predictor] = a
			order = append(order, r.Predictor)
		}
		a.n++
		a.saving += r.SavingPct
		a.incr += r.TimeIncreasePct
		a.hit += r.HitRatePct
		a.twk += r.TimerWakePct
	}
	fmt.Fprintln(w)
	at := stats.NewTable("predictor", "avg saving[%]", "avg time incr[%]", "avg hit[%]", "avg timer wake[%]")
	for _, name := range order {
		a := aggs[name]
		n := float64(a.n)
		at.Row(name, a.saving/n, fmt.Sprintf("%.2f", a.incr/n), a.hit/n, a.twk/n)
	}
	return at.Write(w)
}
