package harness

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

// runnerWith returns a Runner over fastOpt at the given pool size.
func runnerWith(par int) *Runner {
	cfg := replay.DefaultConfig()
	cfg.Parallelism = par
	return NewRunner(fastOpt, cfg)
}

// TestParallelMatchesSerial asserts the worker-pool sweep renders
// byte-identical Table III and Figure output to the Parallelism: 1 serial
// path — the tentpole invariant: parallelism changes wall-clock time only.
func TestParallelMatchesSerial(t *testing.T) {
	serial, parallel := runnerWith(1), runnerWith(4)

	t.Run("TableIII", func(t *testing.T) {
		want := renderTableIII(t, serial)
		got := renderTableIII(t, parallel)
		if got != want {
			t.Errorf("parallel Table III differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
		}
	})
	t.Run("Figure", func(t *testing.T) {
		want := renderFigure(t, serial)
		got := renderFigure(t, parallel)
		if got != want {
			t.Errorf("parallel Figure differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
		}
	})
	t.Run("TableI", func(t *testing.T) {
		want := renderTableI(t, serial)
		got := renderTableI(t, parallel)
		if got != want {
			t.Errorf("parallel Table I differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
		}
	})
}

func renderTableIII(t *testing.T, r *Runner) string {
	t.Helper()
	rows, err := r.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTableIII(&sb, rows); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func renderFigure(t *testing.T, r *Runner) string {
	t.Helper()
	rows, err := r.Figure(0.01)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFigure(&sb, 0.01, rows); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func renderTableI(t *testing.T, r *Runner) string {
	t.Helper()
	rows, err := r.TableI()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTableI(&sb, rows); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestGTSweepParallelMatchesSerial checks the Figure 10 curve point by
// point across pool sizes.
func TestGTSweepParallelMatchesSerial(t *testing.T) {
	tr, err := workloads.Generate("alya", 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultGTGrid()
	serial, err := GTSweepParallel(tr, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := GTSweepParallel(tr, grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestChooseGTParallelMatchesSerial checks the selected threshold is
// independent of the pool size.
func TestChooseGTParallelMatchesSerial(t *testing.T) {
	tr, err := workloads.Generate("gromacs", 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultGTGrid()
	gtS, hitS, err := ChooseGT(tr, grid, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	gtP, hitP, err := ChooseGTParallel(tr, grid, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gtS != gtP || hitS != hitP {
		t.Errorf("serial (%v, %v) != parallel (%v, %v)", gtS, hitS, gtP, hitP)
	}
}

// TestRunnerTraceCache asserts workloads.Generate runs once per
// (app, np, opt): repeated and concurrent lookups return the same trace.
func TestRunnerTraceCache(t *testing.T) {
	r := runnerWith(0)
	first, err := r.source("alya", 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := r.source("alya", 8)
			if err != nil {
				t.Error(err)
				return
			}
			if tr != first {
				t.Error("cache returned a different trace instance")
			}
		}()
	}
	wg.Wait()

	// Different options must miss the cache.
	o := r.Opt
	o.Weak = true
	weak, err := r.sourceOpt("alya", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if weak == first {
		t.Error("weak-scaling trace aliased the strong-scaling cache entry")
	}
}

// TestRunnerGTCache asserts the grouping threshold is chosen once per
// workload and reused across experiments.
func TestRunnerGTCache(t *testing.T) {
	r := runnerWith(0)
	gt1, hit1, err := r.chooseGT("alya", 8, r.Opt, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	gt2, hit2, err := r.chooseGT("alya", 8, r.Opt, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if gt1 != gt2 || hit1 != hit2 {
		t.Errorf("cached GT choice differs: (%v, %v) vs (%v, %v)", gt1, hit1, gt2, hit2)
	}
	tr, err := r.source("alya", 8)
	if err != nil {
		t.Fatal(err)
	}
	gtDirect, hitDirect, err := ChooseGT(tr, DefaultGTGrid(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if gt1 != gtDirect || hit1 != hitDirect {
		t.Errorf("cached choice (%v, %v) differs from direct ChooseGT (%v, %v)",
			gt1, hit1, gtDirect, hitDirect)
	}
}

// TestRunnerRejectsUnknownApp keeps error propagation intact through the
// pool: an unknown application must fail the whole sweep.
func TestRunnerRejectsUnknownApp(t *testing.T) {
	r := runnerWith(4)
	if _, err := r.source("notanapp", 8); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, _, err := r.chooseGT("notanapp", 8, r.Opt, 1.0); err == nil {
		t.Fatal("chooseGT accepted unknown app")
	}
}

// TestEmptyGTGridRejected covers the audit fix: ChooseGT on an empty grid
// used to panic on pts[0]; it must now return an error at any pool size.
func TestEmptyGTGridRejected(t *testing.T) {
	tr, err := workloads.Generate("alya", 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ChooseGT(tr, nil, 1.0); err == nil {
		t.Error("ChooseGT accepted an empty grid")
	}
	if _, _, err := ChooseGTParallel(tr, []time.Duration{}, 1.0, 4); err == nil {
		t.Error("ChooseGTParallel accepted an empty grid")
	}
}
