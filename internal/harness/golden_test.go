package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestCompareGoldenSingleJob pins the single-job compare output — the exact
// byte stream `ibpower compare -apps alya -scale 0.1` renders — against a
// golden file captured before the multi-job engine generalisation. The
// multi-job work rewired the replay engine's rank bookkeeping (job-local
// ranks, rank→terminal placement); this test proves the dedicated-fabric
// single-job path still produces bit-identical results, not merely
// statistically similar ones.
//
// Regenerate deliberately with `go test -run TestCompareGoldenSingleJob
// -update ./internal/harness` and inspect the diff; an unexplained change
// here means simulation results moved for every existing user.
func TestCompareGoldenSingleJob(t *testing.T) {
	opt := workloads.Options{Seed: 42, IterScale: 0.1}
	rows, err := NewRunner(opt, replay.DefaultConfig()).Compare(0.01, nil, "alya")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCompare(&buf, 0.01, rows); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "compare_alya_scale10.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("compare output drifted from pre-multijob golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
