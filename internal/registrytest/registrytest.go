// Package registrytest is the shared property test every named registry in
// the module must pass: predictors, fabrics, placements, and schedulers all
// follow one contract (sorted Names, CheckRegistered round-trip, the empty
// name resolving to a default, unknown names rejected with the registry
// listed, and loud panics on bad registrations), and this package pins that
// contract once instead of four hand-rolled near-copies drifting apart.
package registrytest

import (
	"strings"
	"testing"
)

// Registry adapts one named registry to the shared property test. Every
// field is required. RegisterValid must install a fully working
// implementation (typically delegating to the registry's default): the
// property test leaves it registered, and later tests that iterate Names()
// will exercise it.
type Registry struct {
	// Kind is the noun the registry's unknown-name errors use, e.g.
	// "predictor", "fabric", "placement", "scheduler".
	Kind string
	// Default is the name the empty string resolves to.
	Default string
	// Names lists registered names; Check is the registry's CheckRegistered.
	Names func() []string
	Check func(name string) error
	// RegisterValid registers a working implementation under name;
	// RegisterNil attempts to register a nil implementation.
	RegisterValid func(name string)
	RegisterNil   func(name string)
}

// Run asserts the registry contract. The throwaway names it registers stay
// registered for the remainder of the test binary.
func Run(t *testing.T, r Registry) {
	t.Helper()

	t.Run("names-sorted-unique", func(t *testing.T) {
		names := r.Names()
		if len(names) == 0 {
			t.Fatal("registry is empty")
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("Names() not sorted or not unique: %v", names)
			}
		}
		found := false
		for _, n := range names {
			found = found || n == r.Default
		}
		if !found {
			t.Fatalf("default %q not in Names() %v", r.Default, names)
		}
	})

	t.Run("roundtrip", func(t *testing.T) {
		for _, n := range r.Names() {
			if err := r.Check(n); err != nil {
				t.Errorf("listed name %q does not check: %v", n, err)
			}
		}
		if err := r.Check(""); err != nil {
			t.Errorf("empty name must resolve to the default %q: %v", r.Default, err)
		}
	})

	t.Run("unknown-name-lists-registry", func(t *testing.T) {
		const bogus = "registrytest-nosuch"
		err := r.Check(bogus)
		if err == nil {
			t.Fatalf("unknown name %q accepted", bogus)
		}
		msg := err.Error()
		if !strings.Contains(msg, bogus) {
			t.Errorf("error %q does not name the typo %q", msg, bogus)
		}
		if !strings.Contains(msg, "unknown "+r.Kind) {
			t.Errorf("error %q does not name the registry kind %q", msg, r.Kind)
		}
		for _, n := range r.Names() {
			if !strings.Contains(msg, n) {
				t.Errorf("error %q does not list registered name %q", msg, n)
			}
		}
	})

	t.Run("register-panics", func(t *testing.T) {
		mustPanic := func(label string, fn func()) {
			t.Helper()
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", label)
				}
			}()
			fn()
		}
		mustPanic("empty name", func() { r.RegisterValid("") })
		mustPanic("nil implementation", func() { r.RegisterNil("registrytest-nil-" + r.Kind) })
		mustPanic("duplicate name", func() { r.RegisterValid(r.Default) })
	})

	t.Run("new-registration-roundtrips", func(t *testing.T) {
		name := "registrytest-extra-" + r.Kind
		r.RegisterValid(name)
		if err := r.Check(name); err != nil {
			t.Fatalf("freshly registered %q does not check: %v", name, err)
		}
		found := false
		for _, n := range r.Names() {
			found = found || n == name
		}
		if !found {
			t.Errorf("freshly registered %q missing from Names() %v", name, r.Names())
		}
	})
}
