package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

// The binary trace format packs one or more traces into a single file read
// through bounded per-rank windows:
//
//	header  "IBTP" + version byte (1)
//	data    per trace, per rank: ops back-to-back, varint-encoded
//	index   uvarint ntraces; per trace: uvarint len(app), app bytes,
//	        uvarint np; per rank: uvarint offset, uvarint nbytes, uvarint nops
//	footer  uint64 LE index offset + "IBTX" (fixed 12 bytes)
//
// Each op is a tag byte followed by its uvarint operands (all values are
// non-negative by construction — Validate/CheckOp enforce it):
//
//	0x00 compute   duration_ns
//	0x01 send      peer bytes
//	0x02 recv      peer
//	0x03 sendrecv  peer recvpeer bytes
//	0x04 allreduce bytes
//	0x05 barrier
//	0x06 bcast     root bytes
//	0x07 reduce    root bytes
//	0x08 alltoall  bytes
//
// The index sits at the end so packing needs only a counting writer (no
// io.Seeker): WriteBinarySources streams each rank straight to the output
// and records offsets as it goes, holding O(one rank window) memory when the
// sources themselves stream.

const (
	binMagic    = "IBTP"
	binVersion  = 1
	idxMagic    = "IBTX"
	binFooterSz = 8 + len(idxMagic)

	// DefaultWindow is the per-cursor read buffer: the bounded memory a
	// streamed rank costs during replay, regardless of trace length.
	DefaultWindow = 64 << 10

	// Parser caps: a corrupt or adversarial index must not drive huge
	// allocations before any data is read.
	maxBinTraces = 1 << 20
	maxBinRanks  = 1 << 20
	maxBinApp    = 4096
)

// Op tags of the binary format.
const (
	tagCompute byte = iota
	tagSend
	tagRecv
	tagSendrecv
	tagAllreduce
	tagBarrier
	tagBcast
	tagReduce
	tagAlltoall
	tagMax = tagAlltoall
)

// rankIndex locates one rank's encoded stream inside the file.
type rankIndex struct {
	off    int64
	nbytes int64
	nops   int64
}

// fileEntry is one packed trace: its identity plus the per-rank index.
type fileEntry struct {
	meta  Meta
	ranks []rankIndex
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// appendOp encodes op onto buf. The op must already satisfy CheckOp.
func appendOp(buf []byte, op Op) ([]byte, error) {
	switch op.Kind {
	case OpCompute:
		buf = append(buf, tagCompute)
		buf = binary.AppendUvarint(buf, uint64(op.Duration.Nanoseconds()))
	case OpCall:
		switch op.Call {
		case CallSend:
			buf = append(buf, tagSend)
			buf = binary.AppendUvarint(buf, uint64(op.Peer))
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		case CallRecv:
			buf = append(buf, tagRecv)
			buf = binary.AppendUvarint(buf, uint64(op.Peer))
		case CallSendrecv:
			buf = append(buf, tagSendrecv)
			buf = binary.AppendUvarint(buf, uint64(op.Peer))
			buf = binary.AppendUvarint(buf, uint64(op.RecvPeer))
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		case CallAllreduce:
			buf = append(buf, tagAllreduce)
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		case CallBarrier:
			buf = append(buf, tagBarrier)
		case CallBcast:
			buf = append(buf, tagBcast)
			buf = binary.AppendUvarint(buf, uint64(op.Root))
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		case CallReduce:
			buf = append(buf, tagReduce)
			buf = binary.AppendUvarint(buf, uint64(op.Root))
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		case CallAlltoall:
			buf = append(buf, tagAlltoall)
			buf = binary.AppendUvarint(buf, uint64(op.Bytes))
		default:
			return buf, fmt.Errorf("trace: cannot encode call %v", op.Call)
		}
	default:
		return buf, fmt.Errorf("trace: cannot encode op kind %d", op.Kind)
	}
	return buf, nil
}

// decodeOp reads one op from br. Ops are reconstructed through the package
// constructors so unused fields carry the same sentinels (-1) as in-memory
// traces — a decoded trace re-encodes byte-identically and compares
// deep-equal to its original.
func decodeOp(br *bufio.Reader) (Op, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return Op{}, err
	}
	if tag > tagMax {
		return Op{}, fmt.Errorf("unknown op tag 0x%02x", tag)
	}
	u := func() (int, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v > 1<<62 {
			return 0, fmt.Errorf("varint operand %d overflows", v)
		}
		return int(v), nil
	}
	switch tag {
	case tagCompute:
		ns, err := u()
		if err != nil {
			return Op{}, err
		}
		return Compute(time.Duration(ns)), nil
	case tagSend:
		peer, err := u()
		if err != nil {
			return Op{}, err
		}
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Send(peer, n), nil
	case tagRecv:
		peer, err := u()
		if err != nil {
			return Op{}, err
		}
		return Recv(peer), nil
	case tagSendrecv:
		sp, err := u()
		if err != nil {
			return Op{}, err
		}
		rp, err := u()
		if err != nil {
			return Op{}, err
		}
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Sendrecv(sp, rp, n), nil
	case tagAllreduce:
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Allreduce(n), nil
	case tagBarrier:
		return Barrier(), nil
	case tagBcast:
		root, err := u()
		if err != nil {
			return Op{}, err
		}
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Bcast(root, n), nil
	case tagReduce:
		root, err := u()
		if err != nil {
			return Op{}, err
		}
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Reduce(root, n), nil
	default: // tagAlltoall
		n, err := u()
		if err != nil {
			return Op{}, err
		}
		return Alltoall(n), nil
	}
}

// WriteBinarySources packs the sources into the binary format. Ranks are
// drained one cursor at a time, so packing a streaming source (the workloads
// generator, another file) holds one rank window in memory, never the whole
// trace. Every op is validated with CheckOp before encoding; duplicate
// (app, NP) identities are rejected because the file index is keyed on them.
func WriteBinarySources(w io.Writer, srcs ...Source) error {
	if len(srcs) == 0 {
		return fmt.Errorf("trace: nothing to pack")
	}
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write(append([]byte(binMagic), binVersion)); err != nil {
		return err
	}
	seen := make(map[Meta]bool, len(srcs))
	entries := make([]fileEntry, 0, len(srcs))
	var buf []byte
	for _, src := range srcs {
		m := src.Meta()
		if m.NP <= 0 {
			return fmt.Errorf("trace: %s: NP must be positive, got %d", m.App, m.NP)
		}
		if len(m.App) > maxBinApp {
			return fmt.Errorf("trace: app name %q too long", m.App[:32]+"...")
		}
		if seen[m] {
			return fmt.Errorf("trace: duplicate trace %s np=%d in pack", m.App, m.NP)
		}
		seen[m] = true
		ent := fileEntry{meta: m, ranks: make([]rankIndex, m.NP)}
		for r := 0; r < m.NP; r++ {
			start := cw.n
			c := src.Open(r)
			var nops int64
			for {
				op, ok := c.Next()
				if !ok {
					break
				}
				if err := CheckOp(m.NP, r, int(nops), op); err != nil {
					return err
				}
				var err error
				buf, err = appendOp(buf[:0], op)
				if err != nil {
					return err
				}
				if _, err := cw.Write(buf); err != nil {
					return err
				}
				nops++
			}
			if err := c.Err(); err != nil {
				return fmt.Errorf("trace: %s np=%d rank %d: %w", m.App, m.NP, r, err)
			}
			ent.ranks[r] = rankIndex{off: start, nbytes: cw.n - start, nops: nops}
		}
		entries = append(entries, ent)
	}
	idxOff := cw.n
	buf = binary.AppendUvarint(buf[:0], uint64(len(entries)))
	for _, ent := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(ent.meta.App)))
		buf = append(buf, ent.meta.App...)
		buf = binary.AppendUvarint(buf, uint64(ent.meta.NP))
		for _, rix := range ent.ranks {
			buf = binary.AppendUvarint(buf, uint64(rix.off))
			buf = binary.AppendUvarint(buf, uint64(rix.nbytes))
			buf = binary.AppendUvarint(buf, uint64(rix.nops))
		}
	}
	if _, err := cw.Write(buf); err != nil {
		return err
	}
	var foot [binFooterSz]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(idxOff))
	copy(foot[8:], idxMagic)
	if _, err := cw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinary packs in-memory traces into the binary format.
func WriteBinary(w io.Writer, traces ...*Trace) error {
	srcs := make([]Source, len(traces))
	for i, t := range traces {
		srcs[i] = t
	}
	return WriteBinarySources(w, srcs...)
}

// EncodeBinary packs in-memory traces and returns the encoded bytes.
func EncodeBinary(traces ...*Trace) ([]byte, error) {
	var b bytes.Buffer
	if err := WriteBinary(&b, traces...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// File is an opened binary trace file: the handle plus the decoded index.
// Ops are never held here — each Open of a rank reads the rank's byte range
// through its own bounded window, so a File's memory footprint is the index,
// not the trace. A File is safe for concurrent cursor opens (io.ReaderAt is
// position-independent).
type File struct {
	ra      io.ReaderAt
	closer  io.Closer
	entries []fileEntry
	window  int
}

// OpenFile opens a binary trace file from disk.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	bf, err := OpenBinary(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	bf.closer = f
	return bf, nil
}

// OpenBinary opens a binary trace image from any random-access reader of the
// given size. Only the index is decoded.
func OpenBinary(ra io.ReaderAt, size int64) (*File, error) {
	hdrLen := int64(len(binMagic) + 1)
	if size < hdrLen+int64(binFooterSz) {
		return nil, fmt.Errorf("trace: binary image too short (%d bytes)", size)
	}
	var hdr [5]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != binVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", hdr[4])
	}
	var foot [binFooterSz]byte
	if _, err := ra.ReadAt(foot[:], size-int64(binFooterSz)); err != nil {
		return nil, err
	}
	if string(foot[8:]) != idxMagic {
		return nil, fmt.Errorf("trace: bad index magic %q", foot[8:])
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[:8]))
	if idxOff < hdrLen || idxOff > size-int64(binFooterSz) {
		return nil, fmt.Errorf("trace: index offset %d out of range", idxOff)
	}
	dataEnd := idxOff
	br := bufio.NewReader(io.NewSectionReader(ra, idxOff, size-int64(binFooterSz)-idxOff))
	uv := func(what string) (int64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: index: %s: %w", what, err)
		}
		if v > 1<<62 {
			return 0, fmt.Errorf("trace: index: %s %d overflows", what, v)
		}
		return int64(v), nil
	}
	ntr, err := uv("trace count")
	if err != nil {
		return nil, err
	}
	if ntr == 0 || ntr > maxBinTraces {
		return nil, fmt.Errorf("trace: index: implausible trace count %d", ntr)
	}
	f := &File{ra: ra, window: DefaultWindow}
	seen := make(map[Meta]bool, ntr)
	for t := int64(0); t < ntr; t++ {
		alen, err := uv("app name length")
		if err != nil {
			return nil, err
		}
		if alen > maxBinApp {
			return nil, fmt.Errorf("trace: index: implausible app name length %d", alen)
		}
		app := make([]byte, alen)
		if _, err := io.ReadFull(br, app); err != nil {
			return nil, fmt.Errorf("trace: index: app name: %w", err)
		}
		np, err := uv("process count")
		if err != nil {
			return nil, err
		}
		if np <= 0 || np > maxBinRanks {
			return nil, fmt.Errorf("trace: index: implausible process count %d", np)
		}
		ent := fileEntry{meta: Meta{App: string(app), NP: int(np)}, ranks: make([]rankIndex, np)}
		if seen[ent.meta] {
			return nil, fmt.Errorf("trace: index: duplicate trace %s np=%d", ent.meta.App, ent.meta.NP)
		}
		seen[ent.meta] = true
		for r := int64(0); r < np; r++ {
			off, err := uv("rank offset")
			if err != nil {
				return nil, err
			}
			nbytes, err := uv("rank byte length")
			if err != nil {
				return nil, err
			}
			nops, err := uv("rank op count")
			if err != nil {
				return nil, err
			}
			if off < hdrLen || nbytes < 0 || off+nbytes > dataEnd {
				return nil, fmt.Errorf("trace: index: %s np=%d rank %d: byte range [%d,%d) outside data section",
					ent.meta.App, np, r, off, off+nbytes)
			}
			if nops > nbytes {
				return nil, fmt.Errorf("trace: index: %s np=%d rank %d: %d ops cannot fit in %d bytes",
					ent.meta.App, np, r, nops, nbytes)
			}
			ent.ranks[r] = rankIndex{off: off, nbytes: nbytes, nops: nops}
		}
		f.entries = append(f.entries, ent)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: index: trailing bytes")
	}
	return f, nil
}

// SetWindow sets the per-cursor read buffer size in bytes for subsequently
// opened cursors. The default is DefaultWindow (64 KiB).
func (f *File) SetWindow(n int) {
	if n < 16 {
		n = 16
	}
	f.window = n
}

// Entries lists the packed traces in file order.
func (f *File) Entries() []Meta {
	out := make([]Meta, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.meta
	}
	return out
}

// Has reports whether the file packs a trace for (app, np).
func (f *File) Has(app string, np int) bool {
	for _, e := range f.entries {
		if e.meta.App == app && e.meta.NP == np {
			return true
		}
	}
	return false
}

// Source returns the streaming source for the packed (app, np) trace.
func (f *File) Source(app string, np int) (Source, error) {
	for i := range f.entries {
		if f.entries[i].meta.App == app && f.entries[i].meta.NP == np {
			return &FileSource{f: f, ent: &f.entries[i]}, nil
		}
	}
	return nil, fmt.Errorf("trace: file has no trace %s np=%d", app, np)
}

// SourceAt returns the i'th packed trace as a streaming source.
func (f *File) SourceAt(i int) Source {
	return &FileSource{f: f, ent: &f.entries[i]}
}

// Len returns the number of packed traces.
func (f *File) Len() int { return len(f.entries) }

// NumOps returns the total op count of the i'th packed trace, from the index
// alone.
func (f *File) NumOps(i int) int64 {
	var n int64
	for _, rix := range f.entries[i].ranks {
		n += rix.nops
	}
	return n
}

// DataBytes returns the encoded byte size of the i'th packed trace.
func (f *File) DataBytes(i int) int64 {
	var n int64
	for _, rix := range f.entries[i].ranks {
		n += rix.nbytes
	}
	return n
}

// Close closes the underlying file when the File owns one (OpenFile).
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// FileSource streams one packed trace. Implements Source; each Open reads
// the rank's byte range through a fresh bounded window.
type FileSource struct {
	f   *File
	ent *fileEntry
}

// Meta returns the packed trace's identity.
func (s *FileSource) Meta() Meta { return s.ent.meta }

// Open returns a cursor over rank r's encoded stream. The cursor holds one
// window-sized buffer; Next decodes in place and allocates nothing in steady
// state.
func (s *FileSource) Open(r int) Cursor {
	rix := s.ent.ranks[r]
	window := s.f.window
	if int64(window) > rix.nbytes && rix.nbytes >= 16 {
		window = int(rix.nbytes)
	}
	sr := io.NewSectionReader(s.f.ra, rix.off, rix.nbytes)
	return &fileCursor{
		sr: sr, br: bufio.NewReaderSize(sr, window),
		np: s.ent.meta.NP, rank: r, nops: rix.nops,
	}
}

// fileCursor decodes one rank's stream through a bounded window, validating
// each op with CheckOp as it is produced.
type fileCursor struct {
	sr   *io.SectionReader
	br   *bufio.Reader
	np   int
	rank int
	nops int64
	i    int64
	err  error
}

func (c *fileCursor) Next() (Op, bool) {
	if c.err != nil || c.i >= c.nops {
		return Op{}, false
	}
	op, err := decodeOp(c.br)
	if err != nil {
		c.err = fmt.Errorf("trace: rank %d op %d: decode: %w", c.rank, c.i, err)
		return Op{}, false
	}
	if err := CheckOp(c.np, c.rank, int(c.i), op); err != nil {
		c.err = err
		return Op{}, false
	}
	c.i++
	if c.i == c.nops {
		// The index said this many ops in this many bytes; trailing garbage
		// means the two disagree.
		if _, err := c.br.ReadByte(); err != io.EOF {
			c.err = fmt.Errorf("trace: rank %d: trailing bytes after op %d", c.rank, c.nops)
			return Op{}, false
		}
	}
	return op, true
}

func (c *fileCursor) Rewind() {
	c.sr.Seek(0, io.SeekStart)
	c.br.Reset(c.sr)
	c.i = 0
	c.err = nil
}

func (c *fileCursor) Err() error { return c.err }
