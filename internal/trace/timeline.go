package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// LinkState is a Paraver-like state value for a link timeline (Figure 6 of
// the paper shows low-power vs full-power states of IB links over time).
type LinkState uint8

// Link power states as rendered on a timeline.
const (
	StateFull  LinkState = iota // full-power, power-unaware consumption
	StateLow                    // low-power (WRPS, one lane active)
	StateShift                  // transitioning between modes
	StateDeep                   // deep mode: lanes and switch elements down
)

// String returns a short label for the state.
func (s LinkState) String() string {
	switch s {
	case StateFull:
		return "FULL"
	case StateLow:
		return "LOW"
	case StateShift:
		return "SHIFT"
	case StateDeep:
		return "DEEP"
	}
	return "?"
}

// StateInterval is one segment of a timeline.
type StateInterval struct {
	Start, End time.Duration // simulated time since t=0
	State      LinkState
}

// Timeline is a per-object (link or rank) sequence of state intervals.
type Timeline struct {
	Label     string
	Intervals []StateInterval
}

// Add appends an interval, merging with the previous one when contiguous and
// equal-state.
func (tl *Timeline) Add(start, end time.Duration, s LinkState) {
	if end <= start {
		return
	}
	n := len(tl.Intervals)
	if n > 0 && tl.Intervals[n-1].State == s && tl.Intervals[n-1].End == start {
		tl.Intervals[n-1].End = end
		return
	}
	tl.Intervals = append(tl.Intervals, StateInterval{Start: start, End: end, State: s})
}

// TimeIn returns the accumulated time spent in state s.
func (tl *Timeline) TimeIn(s LinkState) time.Duration {
	var d time.Duration
	for _, iv := range tl.Intervals {
		if iv.State == s {
			d += iv.End - iv.Start
		}
	}
	return d
}

// End returns the end time of the last interval.
func (tl *Timeline) End() time.Duration {
	if len(tl.Intervals) == 0 {
		return 0
	}
	return tl.Intervals[len(tl.Intervals)-1].End
}

// Render writes an ASCII rendering of the timelines: one row per timeline,
// width columns, '#' for full power, '.' for low power, '+' for shifting.
// It is the textual analogue of the paper's Figure 6 Paraver screenshot.
func Render(w io.Writer, tls []*Timeline, width int) error {
	if width <= 0 {
		width = 80
	}
	var horizon time.Duration
	for _, tl := range tls {
		if e := tl.End(); e > horizon {
			horizon = e
		}
	}
	if horizon == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	glyph := map[LinkState]byte{StateFull: '#', StateLow: '.', StateShift: '+', StateDeep: '~'}
	for _, tl := range tls {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, iv := range tl.Intervals {
			a := int(int64(iv.Start) * int64(width) / int64(horizon))
			b := int(int64(iv.End) * int64(width) / int64(horizon))
			if b == a {
				b = a + 1
			}
			for i := a; i < b && i < width; i++ {
				row[i] = glyph[iv.State]
			}
		}
		if _, err := fmt.Fprintf(w, "%-12s |%s|\n", tl.Label, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-12s  legend: '#'=full power  '.'=low power  '~'=deep  '+'=mode shift  horizon=%v\n", "", horizon)
	return err
}

// WriteParaver emits the timelines in a minimal Paraver .prv-like record
// format: "2:<object>:<start_ns>:<end_ns>:<state>" sorted by start time, so
// external tooling can consume it.
func WriteParaver(w io.Writer, tls []*Timeline) error {
	type rec struct {
		obj int
		iv  StateInterval
	}
	var recs []rec
	for i, tl := range tls {
		for _, iv := range tl.Intervals {
			recs = append(recs, rec{obj: i, iv: iv})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].iv.Start != recs[j].iv.Start {
			return recs[i].iv.Start < recs[j].iv.Start
		}
		return recs[i].obj < recs[j].obj
	})
	for _, rc := range recs {
		if _, err := fmt.Fprintf(w, "2:%d:%d:%d:%d\n", rc.obj, rc.iv.Start.Nanoseconds(), rc.iv.End.Nanoseconds(), rc.iv.State); err != nil {
			return err
		}
	}
	return nil
}
