package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

func TestCallIDString(t *testing.T) {
	if CallSendrecv.String() != "MPI_Sendrecv" {
		t.Errorf("Sendrecv = %q", CallSendrecv.String())
	}
	if CallAllreduce.String() != "MPI_Allreduce" {
		t.Errorf("Allreduce = %q", CallAllreduce.String())
	}
	if !strings.Contains(CallID(99).String(), "99") {
		t.Error("unknown ID must include its number")
	}
}

func TestPaperIDs(t *testing.T) {
	// Figure 2 of the paper identifies MPI_Sendrecv as 41 and
	// MPI_Allreduce as 10; the walkthroughs depend on these values.
	if CallSendrecv != 41 || CallAllreduce != 10 {
		t.Fatalf("paper IDs changed: sendrecv=%d allreduce=%d", CallSendrecv, CallAllreduce)
	}
}

func TestIsCollective(t *testing.T) {
	for _, c := range []CallID{CallAllreduce, CallBarrier, CallBcast, CallReduce, CallAlltoall} {
		if !c.IsCollective() {
			t.Errorf("%v not collective", c)
		}
	}
	for _, c := range []CallID{CallSend, CallRecv, CallSendrecv} {
		if c.IsCollective() {
			t.Errorf("%v wrongly collective", c)
		}
	}
}

func buildValid() *Trace {
	tr := New("test", 2)
	tr.Append(0, Compute(100*us))
	tr.Append(0, Send(1, 1024))
	tr.Append(0, Compute(50*us))
	tr.Append(0, Allreduce(8))
	tr.Append(1, Recv(0))
	tr.Append(1, Compute(30*us))
	tr.Append(1, Allreduce(8))
	return tr
}

func TestValidateOK(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"peer out of range", func(tr *Trace) { tr.Append(0, Send(5, 1)) }},
		{"self message", func(tr *Trace) { tr.Append(0, Send(0, 1)) }},
		{"negative bytes", func(tr *Trace) { tr.Append(0, Op{Kind: OpCall, Call: CallSend, Peer: 1, Bytes: -1}) }},
		{"negative compute", func(tr *Trace) { tr.Append(0, Op{Kind: OpCompute, Duration: -time.Second}) }},
		{"bad root", func(tr *Trace) { tr.Append(0, Bcast(9, 1)) }},
		{"bad sendrecv peer", func(tr *Trace) { tr.Append(0, Sendrecv(1, 7, 1)) }},
	}
	for _, c := range cases {
		tr := buildValid()
		c.mut(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := (&Trace{NP: 0}).Validate(); err == nil {
		t.Error("NP=0 accepted")
	}
}

func TestCounting(t *testing.T) {
	tr := buildValid()
	if got := tr.NumCalls(); got != 4 {
		t.Errorf("NumCalls = %d, want 4", got)
	}
	if got := tr.NumOps(); got != 7 {
		t.Errorf("NumOps = %d, want 7", got)
	}
	if got := tr.ComputeTime(0); got != 150*us {
		t.Errorf("ComputeTime(0) = %v, want 150µs", got)
	}
}

func TestIdleDistributionBuckets(t *testing.T) {
	var d IdleDist
	d.Add(19 * us)  // short
	d.Add(20 * us)  // medium (boundary is inclusive on the left)
	d.Add(200 * us) // medium
	d.Add(201 * us) // long
	if d.Count != [3]int{1, 2, 1} {
		t.Errorf("counts = %v", d.Count)
	}
	if d.TotalCount() != 4 {
		t.Errorf("total = %d", d.TotalCount())
	}
	if d.CountPct(1) != 50 {
		t.Errorf("medium pct = %v", d.CountPct(1))
	}
	if d.TotalTime() != 440*us {
		t.Errorf("total time = %v", d.TotalTime())
	}
}

func TestRankIdleIntervals(t *testing.T) {
	tr := New("x", 1)
	tr.Append(0, Compute(100*us)) // before first call: not an interval
	tr.Append(0, Barrier())
	tr.Append(0, Compute(30*us))
	tr.Append(0, Compute(20*us)) // merged: 50µs between calls
	tr.Append(0, Barrier())
	tr.Append(0, Compute(99*us)) // trailing: not an interval
	got := tr.RankIdleIntervals(0)
	if len(got) != 1 || got[0] != 50*us {
		t.Errorf("intervals = %v, want [50µs]", got)
	}
}

func TestIdleDistributionAggregates(t *testing.T) {
	tr := New("x", 2)
	for r := 0; r < 2; r++ {
		tr.Append(r, Barrier())
		tr.Append(r, Compute(300*us))
		tr.Append(r, Barrier())
		tr.Append(r, Compute(50*us))
		tr.Append(r, Barrier())
	}
	d := tr.IdleDistribution()
	if d.Count != [3]int{0, 2, 2} {
		t.Errorf("counts = %v", d.Count)
	}
}

func TestIOTripRound(t *testing.T) {
	tr := New("demo", 3)
	tr.Append(0, Compute(123*time.Nanosecond))
	tr.Append(0, Send(1, 77))
	tr.Append(1, Recv(0))
	tr.Append(1, Sendrecv(2, 0, 55))
	tr.Append(2, Sendrecv(0, 1, 55))
	tr.Append(0, Sendrecv(1, 2, 55))
	tr.Append(2, Allreduce(8))
	tr.Append(2, Barrier())
	tr.Append(2, Bcast(0, 16))
	tr.Append(2, Reduce(1, 32))
	tr.Append(2, Alltoall(64))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "demo" || got.NP != 3 {
		t.Fatalf("header = %q/%d", got.App, got.NP)
	}
	if !reflect.DeepEqual(got.Ranks, tr.Ranks) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got.Ranks, tr.Ranks)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no header":      "0 c 100\n",
		"bad rank":       "#app x 2\n9 c 100\n",
		"unknown record": "#app x 2\n0 zz 1\n",
		"bad np":         "#app x zero\n",
		"missing field":  "#app x 2\n0 s 1\n",
		"empty":          "",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "#app x 2\n# a comment\n\n0 ba\n1 ba\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCalls() != 2 {
		t.Errorf("calls = %d, want 2", tr.NumCalls())
	}
}

// Property: any structurally valid random trace round-trips through the text
// format unchanged.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		np := rng.Intn(4) + 2
		tr := New("q", np)
		for i := 0; i < int(nOps%50)+1; i++ {
			r := rng.Intn(np)
			peer := (r + 1 + rng.Intn(np-1)) % np
			switch rng.Intn(6) {
			case 0:
				tr.Append(r, Compute(time.Duration(rng.Intn(10000))*time.Nanosecond))
			case 1:
				tr.Append(r, Send(peer, rng.Intn(1<<20)))
			case 2:
				tr.Append(r, Recv(peer))
			case 3:
				tr.Append(r, Sendrecv(peer, peer, rng.Intn(1<<20)))
			case 4:
				tr.Append(r, Allreduce(rng.Intn(4096)))
			case 5:
				tr.Append(r, Bcast(rng.Intn(np), rng.Intn(4096)))
			}
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Ranks, tr.Ranks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTimelineAddMerges(t *testing.T) {
	var tl Timeline
	tl.Add(0, 10*us, StateFull)
	tl.Add(10*us, 20*us, StateFull) // contiguous same state: merged
	tl.Add(20*us, 30*us, StateLow)
	tl.Add(35*us, 30*us, StateLow) // empty: dropped
	if len(tl.Intervals) != 2 {
		t.Fatalf("intervals = %d, want 2", len(tl.Intervals))
	}
	if tl.TimeIn(StateFull) != 20*us || tl.TimeIn(StateLow) != 10*us {
		t.Errorf("TimeIn full=%v low=%v", tl.TimeIn(StateFull), tl.TimeIn(StateLow))
	}
	if tl.End() != 30*us {
		t.Errorf("End = %v", tl.End())
	}
}

func TestRenderTimeline(t *testing.T) {
	tl := &Timeline{Label: "rank 0"}
	tl.Add(0, 50*us, StateFull)
	tl.Add(50*us, 100*us, StateLow)
	var sb strings.Builder
	if err := Render(&sb, []*Timeline{tl}, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rank 0") || !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("render output:\n%s", out)
	}
	// Empty timeline.
	sb.Reset()
	if err := Render(&sb, nil, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Error("empty rendering missing placeholder")
	}
}

func TestWriteParaver(t *testing.T) {
	a := &Timeline{Label: "a"}
	a.Add(10*us, 20*us, StateLow)
	b := &Timeline{Label: "b"}
	b.Add(0, 5*us, StateFull)
	var sb strings.Builder
	if err := WriteParaver(&sb, []*Timeline{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("records = %d, want 2", len(lines))
	}
	// Sorted by start time: b's interval first.
	if !strings.HasPrefix(lines[0], "2:1:0:") {
		t.Errorf("first record %q", lines[0])
	}
}

func TestLinkStateString(t *testing.T) {
	if StateFull.String() != "FULL" || StateLow.String() != "LOW" || StateShift.String() != "SHIFT" {
		t.Error("state labels wrong")
	}
	if LinkState(9).String() != "?" {
		t.Error("unknown state label")
	}
}
