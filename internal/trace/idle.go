package trace

import "time"

// The paper's Table I classifies link idle intervals into three buckets
// around the reactivation time Treact = 10 µs: intervals shorter than
// 2·Treact cannot amortise a lane transition at all; intervals above 200 µs
// are where "significant power can be saved".
const (
	// BucketShort is the upper bound of the adverse bucket (< 20 µs).
	BucketShort = 20 * time.Microsecond
	// BucketLong is the lower bound of the highly profitable bucket (> 200 µs).
	BucketLong = 200 * time.Microsecond
)

// IdleDist is the distribution of idle intervals in the three Table I
// buckets.
type IdleDist struct {
	// Count[i] is the number of intervals in bucket i
	// (0: <20 µs, 1: 20–200 µs, 2: >200 µs).
	Count [3]int
	// Time[i] is the accumulated idle time in bucket i.
	Time [3]time.Duration
}

// TotalCount returns the total number of idle intervals.
func (d IdleDist) TotalCount() int { return d.Count[0] + d.Count[1] + d.Count[2] }

// TotalTime returns the accumulated idle time over all buckets.
func (d IdleDist) TotalTime() time.Duration { return d.Time[0] + d.Time[1] + d.Time[2] }

// CountPct returns bucket i's share of the interval count, in percent.
func (d IdleDist) CountPct(i int) float64 {
	tot := d.TotalCount()
	if tot == 0 {
		return 0
	}
	return 100 * float64(d.Count[i]) / float64(tot)
}

// TimePct returns bucket i's share of the accumulated idle time, in percent.
func (d IdleDist) TimePct(i int) float64 {
	tot := d.TotalTime()
	if tot == 0 {
		return 0
	}
	return 100 * float64(d.Time[i]) / float64(tot)
}

// Add classifies one idle interval into the distribution.
func (d *IdleDist) Add(idle time.Duration) {
	switch {
	case idle < BucketShort:
		d.Count[0]++
		d.Time[0] += idle
	case idle <= BucketLong:
		d.Count[1]++
		d.Time[1] += idle
	default:
		d.Count[2]++
		d.Time[2] += idle
	}
}

// Merge accumulates other into d.
func (d *IdleDist) Merge(other IdleDist) {
	for i := 0; i < 3; i++ {
		d.Count[i] += other.Count[i]
		d.Time[i] += other.Time[i]
	}
}

// RankIdleIntervals returns the inter-communication intervals of rank r: the
// accumulated computation time between consecutive MPI calls. These are the
// periods during which the rank's host link carries no traffic from this
// rank, i.e. the candidates for lane shutdown.
func (t *Trace) RankIdleIntervals(r int) []time.Duration {
	var out []time.Duration
	var cur time.Duration
	seenCall := false
	for _, op := range t.Ranks[r] {
		switch op.Kind {
		case OpCompute:
			cur += op.Duration
		case OpCall:
			if seenCall && cur > 0 {
				out = append(out, cur)
			}
			seenCall = true
			cur = 0
		}
	}
	return out
}

// IdleDistribution aggregates the idle-interval distribution over every rank
// of the trace, as in the paper's Table I.
func (t *Trace) IdleDistribution() IdleDist {
	var d IdleDist
	for r := 0; r < t.NP; r++ {
		for _, idle := range t.RankIdleIntervals(r) {
			d.Add(idle)
		}
	}
	return d
}
