// Package trace defines the MPI event-trace model consumed by the pattern
// prediction algorithm and the replay simulator.
//
// A trace holds, for every MPI rank, the sequence of operations the rank
// performed: computation bursts (with their recorded durations, as in a
// Dimemas trace) interleaved with MPI calls. Computation is never executed
// during replay; it is represented by its duration, exactly as in the paper's
// methodology (Section IV-A).
package trace

import (
	"fmt"
	"time"
)

// CallID identifies an MPI call type. The numeric values for MPI_Sendrecv
// (41) and MPI_Allreduce (10) follow the IDs used in the paper's Figure 2 so
// that walkthrough output is directly comparable.
type CallID uint8

// MPI call identifiers.
const (
	CallNone      CallID = 0
	CallAllreduce CallID = 10 // paper ID
	CallBarrier   CallID = 8
	CallBcast     CallID = 7
	CallReduce    CallID = 9
	CallAlltoall  CallID = 11
	CallSend      CallID = 33
	CallRecv      CallID = 34
	CallIsend     CallID = 31
	CallIrecv     CallID = 32
	CallWait      CallID = 5
	CallWaitall   CallID = 6
	CallSendrecv  CallID = 41 // paper ID
)

var callNames = map[CallID]string{
	CallNone:      "none",
	CallAllreduce: "MPI_Allreduce",
	CallBarrier:   "MPI_Barrier",
	CallBcast:     "MPI_Bcast",
	CallReduce:    "MPI_Reduce",
	CallAlltoall:  "MPI_Alltoall",
	CallSend:      "MPI_Send",
	CallRecv:      "MPI_Recv",
	CallIsend:     "MPI_Isend",
	CallIrecv:     "MPI_Irecv",
	CallWait:      "MPI_Wait",
	CallWaitall:   "MPI_Waitall",
	CallSendrecv:  "MPI_Sendrecv",
}

// String returns the MPI routine name for the identifier.
func (c CallID) String() string {
	if n, ok := callNames[c]; ok {
		return n
	}
	return fmt.Sprintf("MPI_Unknown(%d)", uint8(c))
}

// IsCollective reports whether the call involves every rank of the
// communicator.
func (c CallID) IsCollective() bool {
	switch c {
	case CallAllreduce, CallBarrier, CallBcast, CallReduce, CallAlltoall:
		return true
	}
	return false
}

// OpKind discriminates trace operations.
type OpKind uint8

// Operation kinds.
const (
	OpCompute OpKind = iota // a computation burst of recorded duration
	OpCall                  // an MPI call
)

// Op is a single operation in a rank's stream.
type Op struct {
	Kind OpKind

	// Compute fields.
	Duration time.Duration // duration of the computation burst

	// Call fields.
	Call     CallID
	Peer     int // destination (send) / source (recv); -1 when not applicable
	RecvPeer int // source for Sendrecv; -1 otherwise
	Bytes    int // payload size for the sending direction
	Root     int // root rank for rooted collectives; -1 otherwise
}

// Compute returns a computation burst of duration d.
func Compute(d time.Duration) Op {
	return Op{Kind: OpCompute, Duration: d, Peer: -1, RecvPeer: -1, Root: -1}
}

// Send returns a blocking send of n bytes to rank peer.
func Send(peer, n int) Op {
	return Op{Kind: OpCall, Call: CallSend, Peer: peer, RecvPeer: -1, Bytes: n, Root: -1}
}

// Recv returns a blocking receive from rank peer.
func Recv(peer int) Op {
	return Op{Kind: OpCall, Call: CallRecv, Peer: peer, RecvPeer: -1, Root: -1}
}

// Sendrecv returns a combined send (n bytes to sendPeer) and receive (from
// recvPeer).
func Sendrecv(sendPeer, recvPeer, n int) Op {
	return Op{Kind: OpCall, Call: CallSendrecv, Peer: sendPeer, RecvPeer: recvPeer, Bytes: n, Root: -1}
}

// Allreduce returns an all-reduce of n bytes per rank.
func Allreduce(n int) Op {
	return Op{Kind: OpCall, Call: CallAllreduce, Peer: -1, RecvPeer: -1, Bytes: n, Root: -1}
}

// Barrier returns a barrier.
func Barrier() Op {
	return Op{Kind: OpCall, Call: CallBarrier, Peer: -1, RecvPeer: -1, Root: -1}
}

// Bcast returns a broadcast of n bytes from root.
func Bcast(root, n int) Op {
	return Op{Kind: OpCall, Call: CallBcast, Peer: -1, RecvPeer: -1, Bytes: n, Root: root}
}

// Reduce returns a reduction of n bytes to root.
func Reduce(root, n int) Op {
	return Op{Kind: OpCall, Call: CallReduce, Peer: -1, RecvPeer: -1, Bytes: n, Root: root}
}

// Alltoall returns an all-to-all of n bytes per pair.
func Alltoall(n int) Op {
	return Op{Kind: OpCall, Call: CallAlltoall, Peer: -1, RecvPeer: -1, Bytes: n, Root: -1}
}

// Trace is a complete multi-rank execution trace.
type Trace struct {
	App   string // application name, e.g. "gromacs"
	NP    int    // number of MPI processes
	Ranks [][]Op // Ranks[r] is rank r's operation stream
}

// New returns an empty trace for np ranks.
func New(app string, np int) *Trace {
	return &Trace{App: app, NP: np, Ranks: make([][]Op, np)}
}

// Append adds op to rank r's stream.
func (t *Trace) Append(r int, op Op) {
	t.Ranks[r] = append(t.Ranks[r], op)
}

// NumCalls returns the total number of MPI calls across all ranks.
func (t *Trace) NumCalls() int {
	n := 0
	for _, ops := range t.Ranks {
		for _, op := range ops {
			if op.Kind == OpCall {
				n++
			}
		}
	}
	return n
}

// NumOps returns the total number of operations across all ranks.
func (t *Trace) NumOps() int {
	n := 0
	for _, ops := range t.Ranks {
		n += len(ops)
	}
	return n
}

// ComputeTime returns the sum of recorded computation durations on rank r.
func (t *Trace) ComputeTime(r int) time.Duration {
	var d time.Duration
	for _, op := range t.Ranks[r] {
		if op.Kind == OpCompute {
			d += op.Duration
		}
	}
	return d
}

// Validate checks structural invariants: peer ranks in range (both sendrecv
// directions), non-negative sizes and durations. Collectives consistent
// across ranks is NOT required here (replay validates alignment when
// executing). Every failure names the offending rank and op index. The
// per-op rules live in CheckOp, shared with the streaming binary decoder.
func (t *Trace) Validate() error {
	if t.NP <= 0 {
		return fmt.Errorf("trace: NP must be positive, got %d", t.NP)
	}
	if len(t.Ranks) != t.NP {
		return fmt.Errorf("trace: have %d rank streams, want %d", len(t.Ranks), t.NP)
	}
	for r, ops := range t.Ranks {
		for i, op := range ops {
			if err := CheckOp(t.NP, r, i, op); err != nil {
				return err
			}
		}
	}
	return nil
}
