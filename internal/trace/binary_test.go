package trace

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"
)

// buildFull exercises every op kind and call type once.
func buildFull() *Trace {
	tr := New("demo", 3)
	tr.Append(0, Compute(123*time.Nanosecond))
	tr.Append(0, Send(1, 77))
	tr.Append(1, Recv(0))
	tr.Append(1, Sendrecv(2, 0, 55))
	tr.Append(2, Sendrecv(0, 1, 55))
	tr.Append(0, Sendrecv(1, 2, 55))
	tr.Append(2, Allreduce(8))
	tr.Append(2, Barrier())
	tr.Append(2, Bcast(0, 16))
	tr.Append(2, Reduce(1, 32))
	tr.Append(2, Alltoall(64))
	return tr
}

func materializeAll(t *testing.T, f *File) []*Trace {
	t.Helper()
	var out []*Trace
	for i := 0; i < f.Len(); i++ {
		tr, err := Materialize(f.SourceAt(i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	a, b := buildFull(), buildValid()
	enc, err := EncodeBinary(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	want := []Meta{{App: "demo", NP: 3}, {App: "test", NP: 2}}
	if !reflect.DeepEqual(f.Entries(), want) {
		t.Fatalf("Entries = %v", f.Entries())
	}
	got := materializeAll(t, f)
	for i, orig := range []*Trace{a, b} {
		if got[i].App != orig.App || got[i].NP != orig.NP {
			t.Fatalf("trace %d meta %s/%d", i, got[i].App, got[i].NP)
		}
		if !reflect.DeepEqual(got[i].Ranks, orig.Ranks) {
			t.Errorf("trace %d roundtrip mismatch:\n got %+v\nwant %+v", i, got[i].Ranks, orig.Ranks)
		}
	}
	// Re-encoding the decoded traces is byte-identical.
	enc2, err := EncodeBinary(got...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("re-encode differs from original encoding")
	}
	if f.NumOps(0) != int64(a.NumOps()) {
		t.Errorf("NumOps(0) = %d, want %d", f.NumOps(0), a.NumOps())
	}
	if f.Has("demo", 3) == false || f.Has("demo", 4) || f.Has("nope", 3) {
		t.Error("Has lookups wrong")
	}
	if _, err := f.Source("nope", 3); err == nil {
		t.Error("Source for missing trace accepted")
	}
}

func TestBinarySmallWindow(t *testing.T) {
	tr := buildFull()
	enc, err := EncodeBinary(tr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	f.SetWindow(1) // clamped to bufio's minimum; forces many refills
	got, err := Materialize(f.SourceAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ranks, tr.Ranks) {
		t.Error("tiny-window decode mismatch")
	}
}

func TestBinaryCursorRewind(t *testing.T) {
	tr := buildFull()
	enc, err := EncodeBinary(tr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	c := f.SourceAt(0).Open(2)
	var first []Op
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		first = append(first, op)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	c.Rewind()
	var second []Op
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		second = append(second, op)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("rewind mismatch:\n got %+v\nwant %+v", second, first)
	}
	if !reflect.DeepEqual(first, tr.Ranks[2]) {
		t.Errorf("cursor ops != rank ops")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	enc, err := EncodeBinary(buildFull())
	if err != nil {
		t.Fatal(err)
	}
	open := func(b []byte) (*File, error) {
		return OpenBinary(bytes.NewReader(b), int64(len(b)))
	}
	if _, err := open(enc[:4]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte("XXXX"), enc[4:]...)
	if _, err := open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = bytes.Clone(enc)
	bad[4] = 99
	if _, err := open(bad); err == nil {
		t.Error("bad version accepted")
	}
	bad = bytes.Clone(enc)
	bad[len(bad)-1] = 'Z'
	if _, err := open(bad); err == nil {
		t.Error("bad index magic accepted")
	}
	bad = bytes.Clone(enc)
	bad[len(bad)-12] = 0xFF // index offset out of range
	if _, err := open(bad); err == nil {
		t.Error("bad index offset accepted")
	}
	// Corrupt one data byte: an out-of-range peer or bad tag must surface
	// through Cursor.Err, not crash.
	bad = bytes.Clone(enc)
	bad[5] = 0xFF // first op's tag
	f, err := open(bad)
	if err != nil {
		return // index parse may legitimately fail too
	}
	c := f.SourceAt(0).Open(0)
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if c.Err() == nil {
		t.Error("corrupt op stream decoded without error")
	}
}

func TestWriteBinaryRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf); err == nil {
		t.Error("empty pack accepted")
	}
	tr := buildValid()
	if err := WriteBinary(&buf, tr, tr); err == nil {
		t.Error("duplicate (app, np) accepted")
	}
	bad := New("x", 2)
	bad.Append(0, Send(7, 1)) // peer out of range
	if err := WriteBinary(&buf, bad); err == nil {
		t.Error("invalid op accepted at pack time")
	}
}

func TestFileOpenClose(t *testing.T) {
	path := t.TempDir() + "/t.ibt"
	tr := buildFull()
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(out, tr); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(f.SourceAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ranks, tr.Ranks) {
		t.Error("file roundtrip mismatch")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}
