package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The text trace format is line-oriented, similar in spirit to a Dimemas
// trace file:
//
//	#app <name> <np>
//	<rank> c <duration_ns>
//	<rank> s <peer> <bytes>            (send)
//	<rank> r <peer>                    (recv)
//	<rank> sr <sendpeer> <recvpeer> <bytes>
//	<rank> ar <bytes>                  (allreduce)
//	<rank> ba                          (barrier)
//	<rank> bc <root> <bytes>           (bcast)
//	<rank> rd <root> <bytes>           (reduce)
//	<rank> aa <bytes>                  (alltoall)
//
// Lines beginning with '#' (other than the header) and blank lines are
// ignored.

// Write serialises the trace in the text format.
func (t *Trace) Write(w io.Writer) error { return WriteText(w, t) }

// WriteText serialises any source in the text format, streaming one rank
// cursor at a time — converting a packed binary file to text never holds
// more than the cursor's read window.
func WriteText(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	m := src.Meta()
	fmt.Fprintf(bw, "#app %s %d\n", m.App, m.NP)
	for r := 0; r < m.NP; r++ {
		cur := src.Open(r)
		for {
			op, ok := cur.Next()
			if !ok {
				break
			}
			if err := writeOp(bw, r, op); err != nil {
				return err
			}
		}
		if err := cur.Err(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeOp(w io.Writer, r int, op Op) error {
	var err error
	switch op.Kind {
	case OpCompute:
		_, err = fmt.Fprintf(w, "%d c %d\n", r, op.Duration.Nanoseconds())
	case OpCall:
		switch op.Call {
		case CallSend:
			_, err = fmt.Fprintf(w, "%d s %d %d\n", r, op.Peer, op.Bytes)
		case CallRecv:
			_, err = fmt.Fprintf(w, "%d r %d\n", r, op.Peer)
		case CallSendrecv:
			_, err = fmt.Fprintf(w, "%d sr %d %d %d\n", r, op.Peer, op.RecvPeer, op.Bytes)
		case CallAllreduce:
			_, err = fmt.Fprintf(w, "%d ar %d\n", r, op.Bytes)
		case CallBarrier:
			_, err = fmt.Fprintf(w, "%d ba\n", r)
		case CallBcast:
			_, err = fmt.Fprintf(w, "%d bc %d %d\n", r, op.Root, op.Bytes)
		case CallReduce:
			_, err = fmt.Fprintf(w, "%d rd %d %d\n", r, op.Root, op.Bytes)
		case CallAlltoall:
			_, err = fmt.Fprintf(w, "%d aa %d\n", r, op.Bytes)
		default:
			err = fmt.Errorf("trace: cannot serialise call %v", op.Call)
		}
	default:
		err = fmt.Errorf("trace: cannot serialise op kind %d", op.Kind)
	}
	return err
}

// Read parses a trace in the text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var t *Trace
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#app ") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed header", lineno)
			}
			np, err := strconv.Atoi(fields[2])
			if err != nil || np <= 0 || np > maxBinRanks {
				return nil, fmt.Errorf("trace: line %d: bad process count %q", lineno, fields[2])
			}
			t = New(fields[1], np)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if t == nil {
			return nil, fmt.Errorf("trace: line %d: record before #app header", lineno)
		}
		op, rank, err := parseOp(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
		}
		if rank < 0 || rank >= t.NP {
			return nil, fmt.Errorf("trace: line %d: rank %d out of range", lineno, rank)
		}
		t.Append(rank, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("trace: missing #app header")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseOp(line string) (Op, int, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Op{}, 0, fmt.Errorf("too few fields")
	}
	rank, err := strconv.Atoi(f[0])
	if err != nil {
		return Op{}, 0, fmt.Errorf("bad rank %q", f[0])
	}
	atoi := func(i int) (int, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("missing field %d", i)
		}
		return strconv.Atoi(f[i])
	}
	switch f[1] {
	case "c":
		ns, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		return Compute(time.Duration(ns)), rank, nil
	case "s":
		peer, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		n, err := atoi(3)
		if err != nil {
			return Op{}, 0, err
		}
		return Send(peer, n), rank, nil
	case "r":
		peer, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		return Recv(peer), rank, nil
	case "sr":
		sp, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		rp, err := atoi(3)
		if err != nil {
			return Op{}, 0, err
		}
		n, err := atoi(4)
		if err != nil {
			return Op{}, 0, err
		}
		return Sendrecv(sp, rp, n), rank, nil
	case "ar":
		n, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		return Allreduce(n), rank, nil
	case "ba":
		return Barrier(), rank, nil
	case "bc":
		root, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		n, err := atoi(3)
		if err != nil {
			return Op{}, 0, err
		}
		return Bcast(root, n), rank, nil
	case "rd":
		root, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		n, err := atoi(3)
		if err != nil {
			return Op{}, 0, err
		}
		return Reduce(root, n), rank, nil
	case "aa":
		n, err := atoi(2)
		if err != nil {
			return Op{}, 0, err
		}
		return Alltoall(n), rank, nil
	}
	return Op{}, 0, fmt.Errorf("unknown record type %q", f[1])
}
