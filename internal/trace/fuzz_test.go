package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// fuzzSeedTrace builds a small trace exercising every op kind for the fuzz
// seed corpora.
func fuzzSeedTrace() *Trace {
	t := New("seed", 3)
	t.Append(0, Compute(120*time.Microsecond))
	t.Append(0, Send(1, 4096))
	t.Append(1, Recv(0))
	t.Append(1, Sendrecv(2, 0, 64))
	t.Append(2, Allreduce(8))
	t.Append(2, Barrier())
	t.Append(0, Bcast(0, 256))
	t.Append(1, Reduce(2, 32))
	t.Append(2, Alltoall(16))
	return t
}

// FuzzTraceText fuzzes the line-oriented text parser: any input either fails
// to parse or round-trips — re-encoding the parsed trace and parsing that
// again must reproduce the same trace and identical bytes. This pins the
// parser against silently dropping or mangling records.
func FuzzTraceText(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedTrace().Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("#app alya 2\n0 c 100\n1 r 0\n0 s 1 64\n"))
	f.Add([]byte("#app x 1\n0 ba\n# comment\n\n0 aa 8\n"))
	f.Add([]byte("0 c 100\n"))           // record before header
	f.Add([]byte("#app x 2\n5 c 1\n"))   // rank out of range
	f.Add([]byte("#app x 2\n0 s 9 1\n")) // peer out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it does not panic
		}
		var enc1 bytes.Buffer
		if err := tr.Write(&enc1); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v\n%s", err, enc1.Bytes())
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("text round-trip changed the trace\nin:  %+v\nout: %+v", tr, tr2)
		}
		var enc2 bytes.Buffer
		if err := tr2.Write(&enc2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("text encoding is not stable:\n%q\nvs\n%q", enc1.Bytes(), enc2.Bytes())
		}
	})
}

// FuzzTraceBinary fuzzes the packed binary reader: any input either fails to
// open (or fails while streaming an entry) or materializes to traces whose
// re-encoding is stable — encode(decode(x)) re-decodes deep-equal with
// byte-identical bytes. This pins the varint decoder and index parser
// against accepting corrupt frames.
func FuzzTraceBinary(f *testing.F) {
	enc, err := EncodeBinary(fuzzSeedTrace())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	small := New("s", 1)
	small.Append(0, Compute(time.Microsecond))
	enc2, err := EncodeBinary(small)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc2)
	f.Add([]byte("IBTP....garbage....IBTX"))
	f.Add(append(append([]byte{}, enc[:len(enc)-4]...), 'X', 'X', 'X', 'X'))
	f.Fuzz(func(t *testing.T, data []byte) {
		bf, err := OpenBinary(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected at open: fine, as long as it does not panic
		}
		var traces []*Trace
		for i := 0; i < bf.Len(); i++ {
			tr, err := Materialize(bf.SourceAt(i))
			if err != nil {
				return // rejected while streaming: also a parse failure
			}
			traces = append(traces, tr)
		}
		if len(traces) == 0 {
			return
		}
		enc1, err := EncodeBinary(traces...)
		if err != nil {
			t.Fatalf("re-encode of accepted file failed: %v", err)
		}
		bf2, err := OpenBinary(bytes.NewReader(enc1), int64(len(enc1)))
		if err != nil {
			t.Fatalf("re-open of own encoding failed: %v", err)
		}
		for i := 0; i < bf2.Len(); i++ {
			tr, err := Materialize(bf2.SourceAt(i))
			if err != nil {
				t.Fatalf("re-decode of own encoding failed: %v", err)
			}
			if !reflect.DeepEqual(traces[i], tr) {
				t.Fatalf("binary round-trip changed entry %d\nin:  %+v\nout: %+v", i, traces[i], tr)
			}
		}
		enc3, err := EncodeBinary(traces...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc3) {
			t.Fatal("binary encoding is not stable")
		}
	})
}
