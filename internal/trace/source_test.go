package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTraceImplementsSource(t *testing.T) {
	var _ Source = (*Trace)(nil)
	tr := buildValid()
	if tr.Meta() != (Meta{App: "test", NP: 2}) {
		t.Fatalf("Meta = %v", tr.Meta())
	}
	c := tr.Open(0)
	var got []Op
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, op)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if !reflect.DeepEqual(got, tr.Ranks[0]) {
		t.Errorf("cursor ops mismatch")
	}
	c.Rewind()
	if op, ok := c.Next(); !ok || !reflect.DeepEqual(op, tr.Ranks[0][0]) {
		t.Error("rewind did not restart the stream")
	}
}

func TestRankOpsAndMaterialize(t *testing.T) {
	tr := buildValid()
	// *Trace fast path: same backing slice, no copy.
	ops, err := RankOps(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &ops[0] != &tr.Ranks[1][0] {
		t.Error("RankOps copied an in-memory trace's rank")
	}
	if got, err := Materialize(tr); err != nil || got != tr {
		t.Error("Materialize of *Trace must return it unchanged")
	}
	// Through a non-Trace source: equal content.
	enc, err := EncodeBinary(tr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(f.SourceAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ranks, tr.Ranks) {
		t.Error("Materialize mismatch")
	}
}

func TestValidateSource(t *testing.T) {
	if err := ValidateSource(buildValid()); err != nil {
		t.Fatal(err)
	}
	bad := buildValid()
	bad.Append(0, Send(9, 1))
	if err := ValidateSource(bad); err == nil {
		t.Error("invalid *Trace accepted")
	}
	enc, _ := EncodeBinary(buildValid())
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	src, err := f.Source("test", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSource(src); err != nil {
		t.Fatal(err)
	}
}

// Satellite: every validation error names the offending rank and op index,
// and sendrecv recv peers are checked independently of send peers.
func TestCheckOpErrorsNameRankAndIndex(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		want []string
	}{
		{"send peer", Send(9, 1), []string{"rank 3", "op 7", "peer 9"}},
		{"self message", Send(3, 1), []string{"rank 3", "op 7", "self"}},
		{"sendrecv send peer", Sendrecv(-1, 0, 8), []string{"rank 3", "op 7", "send peer -1"}},
		{"sendrecv recv peer", Sendrecv(0, 4, 8), []string{"rank 3", "op 7", "recv peer 4"}},
		{"root", Bcast(11, 4), []string{"rank 3", "op 7", "root 11"}},
		{"negative bytes", Op{Kind: OpCall, Call: CallAllreduce, Bytes: -2}, []string{"rank 3", "op 7", "byte count"}},
		{"negative compute", Op{Kind: OpCompute, Duration: -time.Second}, []string{"rank 3", "op 7", "compute"}},
		{"unknown kind", Op{Kind: 42}, []string{"rank 3", "op 7", "kind 42"}},
	}
	for _, c := range cases {
		err := CheckOp(4, 3, 7, c.op)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q missing %q", c.name, err, frag)
			}
		}
	}
	if err := CheckOp(4, 3, 7, Sendrecv(0, 1, 8)); err != nil {
		t.Errorf("valid sendrecv rejected: %v", err)
	}
}

func TestSourceIdleDistributionMatchesMaterialized(t *testing.T) {
	tr := New("x", 2)
	for r := 0; r < 2; r++ {
		tr.Append(r, Barrier())
		tr.Append(r, Compute(300*time.Microsecond))
		tr.Append(r, Barrier())
		tr.Append(r, Compute(50*time.Microsecond))
		tr.Append(r, Barrier())
	}
	want := tr.IdleDistribution()
	got, err := SourceIdleDistribution(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streamed dist = %v, want %v", got, want)
	}
	enc, _ := EncodeBinary(tr)
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	got, err = SourceIdleDistribution(f.SourceAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("file dist = %v, want %v", got, want)
	}
}

// Satellite: the cursor hot path allocates nothing in steady state — the
// in-memory cursor trivially, the file cursor because varint decode runs
// inside the pre-sized window buffer.
func TestCursorNextAllocs(t *testing.T) {
	tr := buildFull()
	c := tr.Open(2)
	allocs := testing.AllocsPerRun(200, func() {
		c.Rewind()
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Errorf("slice cursor: %v allocs/run, want 0", allocs)
	}
	enc, err := EncodeBinary(tr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBinary(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	fc := f.SourceAt(0).Open(2)
	allocs = testing.AllocsPerRun(200, func() {
		fc.Rewind()
		for {
			if _, ok := fc.Next(); !ok {
				break
			}
		}
		if fc.Err() != nil {
			t.Fatal(fc.Err())
		}
	})
	if allocs != 0 {
		t.Errorf("file cursor: %v allocs/run, want 0", allocs)
	}
}
