package trace

import (
	"fmt"
	"time"
)

// Meta identifies a trace: the application name and its communicator size.
// Source implementations surface it without materializing any rank stream.
type Meta struct {
	App string
	NP  int
}

// Cursor walks one rank's operation stream in order. Next returns the next
// op until the stream is exhausted; after Next reports false, Err
// distinguishes end-of-stream (nil) from a decode or validation failure.
// Rewind restarts the stream from the first op — replay retries and
// multi-pass consumers (predictor priming, offline runs) re-read a rank
// without re-opening the source.
type Cursor interface {
	Next() (Op, bool)
	Rewind()
	Err() error
}

// Source is a trace whose rank streams are read through cursors rather than
// indexed as slices. The in-memory Trace, the workloads generator, and the
// binary trace file all implement it, so every consumer from replay to the
// scenario harness is agnostic to whether ops live in memory, are generated
// on the fly, or stream from disk through a bounded window.
//
// Open may be called multiple times per rank; cursors are independent. A
// Source must be safe for concurrent Open calls (the harness prepares jobs
// on a worker pool), but an individual Cursor is not.
type Source interface {
	Meta() Meta
	Open(rank int) Cursor
}

// Meta returns the trace's identity. *Trace implements Source.
func (t *Trace) Meta() Meta { return Meta{App: t.App, NP: t.NP} }

// Open returns a cursor over rank r's in-memory op slice.
func (t *Trace) Open(r int) Cursor { return &sliceCursor{ops: t.Ranks[r]} }

// sliceCursor streams an in-memory op slice. The zero-allocation hot path:
// Next is an index increment, Rewind resets it.
type sliceCursor struct {
	ops []Op
	i   int
}

func (c *sliceCursor) Next() (Op, bool) {
	if c.i >= len(c.ops) {
		return Op{}, false
	}
	op := c.ops[c.i]
	c.i++
	return op, true
}

func (c *sliceCursor) Rewind()    { c.i = 0 }
func (c *sliceCursor) Err() error { return nil }

// SliceCursor returns a cursor over an in-memory op slice, for sources whose
// ranks are already materialized (the workloads generator source reuses it).
func SliceCursor(ops []Op) Cursor { return &sliceCursor{ops: ops} }

// RankOps drains rank r of src into a slice. For an in-memory *Trace it
// returns the rank's backing slice without copying; other sources pay one
// materialization, so callers should reserve it for consumers that genuinely
// need random access (trace-aware predictor priming, offline replays).
func RankOps(src Source, r int) ([]Op, error) {
	if t, ok := src.(*Trace); ok {
		return t.Ranks[r], nil
	}
	c := src.Open(r)
	var ops []Op
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Materialize drains every rank of src into an in-memory Trace. A *Trace is
// returned as-is.
func Materialize(src Source) (*Trace, error) {
	if t, ok := src.(*Trace); ok {
		return t, nil
	}
	m := src.Meta()
	t := New(m.App, m.NP)
	for r := 0; r < m.NP; r++ {
		ops, err := RankOps(src, r)
		if err != nil {
			return nil, fmt.Errorf("trace: %s np=%d rank %d: %w", m.App, m.NP, r, err)
		}
		t.Ranks[r] = ops
	}
	return t, nil
}

// ValidateSource checks what a source can verify without materializing it: an
// in-memory *Trace runs the full structural Validate; streaming sources check
// the meta block here and validate each op as it is decoded (every Cursor.Next
// of the binary reader runs CheckOp), surfacing failures through Cursor.Err.
func ValidateSource(src Source) error {
	if t, ok := src.(*Trace); ok {
		return t.Validate()
	}
	m := src.Meta()
	if m.NP <= 0 {
		return fmt.Errorf("trace: %s: NP must be positive, got %d", m.App, m.NP)
	}
	return nil
}

// CheckOp validates one operation of rank r's stream against communicator
// size np; i is the op's index within the stream, carried into every error so
// a failure names the exact offending record. It is the single validation
// point shared by Trace.Validate, the binary decoder, and the pack writer.
func CheckOp(np, r, i int, op Op) error {
	switch op.Kind {
	case OpCompute:
		if op.Duration < 0 {
			return fmt.Errorf("trace: rank %d op %d: negative compute duration", r, i)
		}
	case OpCall:
		if op.Bytes < 0 {
			return fmt.Errorf("trace: rank %d op %d: negative byte count", r, i)
		}
		switch op.Call {
		case CallSend, CallRecv:
			if op.Peer < 0 || op.Peer >= np {
				return fmt.Errorf("trace: rank %d op %d: peer %d out of range", r, i, op.Peer)
			}
			if op.Peer == r {
				return fmt.Errorf("trace: rank %d op %d: self message", r, i)
			}
		case CallSendrecv:
			if op.Peer < 0 || op.Peer >= np {
				return fmt.Errorf("trace: rank %d op %d: sendrecv send peer %d out of range", r, i, op.Peer)
			}
			if op.RecvPeer < 0 || op.RecvPeer >= np {
				return fmt.Errorf("trace: rank %d op %d: sendrecv recv peer %d out of range", r, i, op.RecvPeer)
			}
		case CallBcast, CallReduce:
			if op.Root < 0 || op.Root >= np {
				return fmt.Errorf("trace: rank %d op %d: root %d out of range", r, i, op.Root)
			}
		}
	default:
		return fmt.Errorf("trace: rank %d op %d: unknown kind %d", r, i, op.Kind)
	}
	return nil
}

// SourceIdleDistribution aggregates the Table I idle-interval distribution
// over every rank of src, streaming one op at a time — the cursor-based
// counterpart of (*Trace).IdleDistribution, with O(1) memory per rank.
func SourceIdleDistribution(src Source) (IdleDist, error) {
	var d IdleDist
	m := src.Meta()
	for r := 0; r < m.NP; r++ {
		c := src.Open(r)
		var cur time.Duration
		seenCall := false
		for {
			op, ok := c.Next()
			if !ok {
				break
			}
			switch op.Kind {
			case OpCompute:
				cur += op.Duration
			case OpCall:
				if seenCall && cur > 0 {
					d.Add(cur)
				}
				seenCall = true
				cur = 0
			}
		}
		if err := c.Err(); err != nil {
			return IdleDist{}, fmt.Errorf("trace: %s np=%d rank %d: %w", m.App, m.NP, r, err)
		}
	}
	return d, nil
}
