// Package dvs implements the related-work baseline the paper contrasts
// against (Section V, Shang et al. HPCA 2003): history-based dynamic
// voltage/frequency scaling of links. Instead of turning lanes off, the
// link's frequency is lowered when recent utilization is low; reactivation
// is fast (~100 ns re-lock) but the power saving potential is much lower
// because the static share of link power remains (Section I: "with a cost
// of much lower power saving potential").
//
// The policy is evaluated per process host link over the same traces the
// WRPS mechanism consumes: utilization is measured per fixed window, an
// exponentially weighted moving average predicts the next window, and the
// lowest frequency level whose capacity covers the predicted demand (with
// headroom) is selected. Messages serialized at reduced frequency take
// proportionally longer; that excess is the baseline's performance cost.
package dvs

import (
	"fmt"
	"time"

	"ibpower/internal/trace"
)

// Level is one operating point of the link.
type Level struct {
	Freq          float64 // relative frequency/bandwidth (1.0 = 40 Gb/s)
	PowerFraction float64 // power relative to nominal at this level
}

// DefaultLevels models a SerDes whose dynamic power scales with frequency
// over a 55 % static floor: P(f) = 0.55 + 0.45·f. The quarter-rate point
// then draws 66 % of nominal — compare WRPS's 43 % — which encodes the
// paper's observation that DVS has much lower saving potential.
func DefaultLevels() []Level {
	return []Level{
		{Freq: 0.25, PowerFraction: 0.55 + 0.45*0.25},
		{Freq: 0.50, PowerFraction: 0.55 + 0.45*0.50},
		{Freq: 0.75, PowerFraction: 0.55 + 0.45*0.75},
		{Freq: 1.00, PowerFraction: 1.0},
	}
}

// Config parameterises the history-based policy.
type Config struct {
	Window   time.Duration // utilization accounting window
	Levels   []Level       // ascending by Freq
	EWMA     float64       // history weight on the previous estimate (0..1)
	Headroom float64       // capacity margin: need Freq >= util/Headroom
	Relock   time.Duration // frequency-change penalty (~100 ns)

	BandwidthBitsPerSec float64 // full-rate link speed
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		Window:              100 * time.Microsecond,
		Levels:              DefaultLevels(),
		EWMA:                0.5,
		Headroom:            0.5,
		Relock:              100 * time.Nanosecond,
		BandwidthBitsPerSec: 40e9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("dvs: non-positive window")
	}
	if len(c.Levels) == 0 {
		return fmt.Errorf("dvs: no levels")
	}
	for i := 1; i < len(c.Levels); i++ {
		if c.Levels[i].Freq <= c.Levels[i-1].Freq {
			return fmt.Errorf("dvs: levels must ascend by frequency")
		}
	}
	if c.Levels[len(c.Levels)-1].Freq != 1.0 {
		return fmt.Errorf("dvs: top level must be full rate")
	}
	if c.EWMA < 0 || c.EWMA >= 1 {
		return fmt.Errorf("dvs: EWMA weight %v outside [0,1)", c.EWMA)
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		return fmt.Errorf("dvs: headroom %v outside (0,1]", c.Headroom)
	}
	if c.BandwidthBitsPerSec <= 0 {
		return fmt.Errorf("dvs: non-positive bandwidth")
	}
	return nil
}

// RankResult is the policy outcome for one process host link.
type RankResult struct {
	Windows        int
	MeanPower      float64       // mean power fraction over windows
	AddedSerial    time.Duration // extra serialization from reduced rates
	LevelChanges   int
	MeanUtil       float64
	UnderProvision int // windows whose actual demand exceeded capacity
}

// SavingPct returns the link power saving relative to always-full-rate.
func (r RankResult) SavingPct() float64 { return (1 - r.MeanPower) * 100 }

// Result aggregates all ranks.
type Result struct {
	PerRank []RankResult
}

// AvgSavingPct averages link power savings over ranks.
func (r *Result) AvgSavingPct() float64 {
	if len(r.PerRank) == 0 {
		return 0
	}
	s := 0.0
	for _, rr := range r.PerRank {
		s += rr.SavingPct()
	}
	return s / float64(len(r.PerRank))
}

// AvgAddedSerial averages the serialization penalty over ranks.
func (r *Result) AvgAddedSerial() time.Duration {
	if len(r.PerRank) == 0 {
		return 0
	}
	var s time.Duration
	for _, rr := range r.PerRank {
		s += rr.AddedSerial
	}
	return s / time.Duration(len(r.PerRank))
}

// Evaluate runs the history-based DVS policy over every rank of the trace.
func Evaluate(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	res := &Result{PerRank: make([]RankResult, tr.NP)}
	for r := 0; r < tr.NP; r++ {
		res.PerRank[r] = evalRank(tr, r, cfg)
	}
	return res, nil
}

// injectedBytes estimates the bytes rank r pushes into its host link for
// one call (collectives approximated by their decomposition volume).
func injectedBytes(op trace.Op, np int) int {
	switch op.Call {
	case trace.CallSend, trace.CallSendrecv:
		return op.Bytes
	case trace.CallAllreduce:
		rounds := 0
		for p := 1; p < np; p *= 2 {
			rounds++
		}
		return op.Bytes * rounds
	case trace.CallBcast, trace.CallReduce:
		return op.Bytes
	case trace.CallAlltoall:
		return op.Bytes * (np - 1)
	}
	return 0
}

func evalRank(tr *trace.Trace, r int, cfg Config) RankResult {
	var out RankResult
	full := cfg.Levels[len(cfg.Levels)-1]
	cur := full
	bytesPerNS := cfg.BandwidthBitsPerSec / 8 / 1e9

	var t time.Duration
	winEnd := cfg.Window
	winBytes := 0
	estimate := 0.0
	var powerSum float64

	closeWindow := func() {
		serNS := float64(winBytes) / bytesPerNS
		util := serNS / float64(cfg.Window)
		if util > 1 {
			util = 1
		}
		estimate = cfg.EWMA*estimate + (1-cfg.EWMA)*util
		out.MeanUtil += util
		// Actual demand served at the level chosen BEFORE this window.
		if util > cur.Freq {
			out.UnderProvision++
		}
		out.AddedSerial += time.Duration(serNS * (1/cur.Freq - 1))
		powerSum += cur.PowerFraction
		out.Windows++
		// Pick the level for the next window from the history estimate.
		next := full
		for _, l := range cfg.Levels {
			if l.Freq >= estimate/cfg.Headroom {
				next = l
				break
			}
		}
		if next != cur {
			out.LevelChanges++
			out.AddedSerial += cfg.Relock
		}
		cur = next
		winBytes = 0
		winEnd += cfg.Window
	}

	for _, op := range tr.Ranks[r] {
		switch op.Kind {
		case trace.OpCompute:
			t += op.Duration
			for t >= winEnd {
				closeWindow()
			}
		case trace.OpCall:
			winBytes += injectedBytes(op, tr.NP)
		}
	}
	if winBytes > 0 || out.Windows == 0 {
		closeWindow()
	}
	if out.Windows > 0 {
		out.MeanPower = powerSum / float64(out.Windows)
		out.MeanUtil /= float64(out.Windows)
	} else {
		out.MeanPower = 1
	}
	return out
}
