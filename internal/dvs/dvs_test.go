package dvs

import (
	"testing"
	"time"

	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

const us = time.Microsecond

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.Levels = nil },
		func(c *Config) { c.Levels = []Level{{Freq: 0.5}, {Freq: 0.25}} },
		func(c *Config) { c.Levels = []Level{{Freq: 0.5, PowerFraction: 0.7}} },
		func(c *Config) { c.EWMA = 1.5 },
		func(c *Config) { c.Headroom = 0 },
		func(c *Config) { c.BandwidthBitsPerSec = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestIdleTraceDropsToLowestLevel(t *testing.T) {
	tr := trace.New("idle", 2)
	for r := 0; r < 2; r++ {
		tr.Append(r, trace.Barrier())
		tr.Append(r, trace.Compute(10*time.Millisecond))
		tr.Append(r, trace.Barrier())
	}
	res, err := Evaluate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rr := res.PerRank[0]
	// Nearly all windows are empty: the mean power must approach the
	// quarter-rate floor (0.6625).
	if rr.MeanPower > 0.70 {
		t.Errorf("mean power %v on an idle link, want near 0.66", rr.MeanPower)
	}
	if rr.SavingPct() < 25 {
		t.Errorf("saving %.1f%% on idle link", rr.SavingPct())
	}
}

func TestBusyTraceStaysFast(t *testing.T) {
	tr := trace.New("busy", 2)
	// Saturate: 512 KB every 100 µs window is ~100 % utilization.
	for i := 0; i < 100; i++ {
		for r := 0; r < 2; r++ {
			tr.Append(r, trace.Sendrecv((r+1)%2, (r+1)%2, 512<<10))
			tr.Append(r, trace.Compute(100*us))
		}
	}
	res, err := Evaluate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rr := res.PerRank[0]
	if rr.MeanPower < 0.95 {
		t.Errorf("mean power %v on a saturated link, want ~1", rr.MeanPower)
	}
	if rr.SavingPct() > 5 {
		t.Errorf("saving %.1f%% on a saturated link", rr.SavingPct())
	}
}

func TestDVSSavesLessThanWRPSCeiling(t *testing.T) {
	// On every paper workload, the DVS baseline's saving must stay under
	// the WRPS low-power ceiling (57 %) and indeed under its own floor
	// bound (1 - 0.6625 = 33.75 %).
	for _, app := range workloads.Apps() {
		tr, err := workloads.Generate(app, 8, workloads.Options{IterScale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if s := res.AvgSavingPct(); s < 0 || s > 33.75 {
			t.Errorf("%s: DVS saving %.2f%% outside [0, 33.75]", app, s)
		}
	}
}

func TestLevelChangesCostRelock(t *testing.T) {
	tr := trace.New("alt", 2)
	// Alternate saturated and idle phases to force level changes.
	for i := 0; i < 50; i++ {
		for r := 0; r < 2; r++ {
			tr.Append(r, trace.Sendrecv((r+1)%2, (r+1)%2, 512<<10))
			tr.Append(r, trace.Compute(2*time.Millisecond))
		}
	}
	res, err := Evaluate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rr := res.PerRank[0]
	if rr.LevelChanges == 0 {
		t.Error("no level changes on an alternating workload")
	}
	if rr.AddedSerial <= 0 {
		t.Error("no serialization/relock penalty recorded")
	}
}

func TestInjectedBytes(t *testing.T) {
	if got := injectedBytes(trace.Send(1, 100), 8); got != 100 {
		t.Errorf("send = %d", got)
	}
	if got := injectedBytes(trace.Allreduce(100), 8); got != 300 { // 3 rounds
		t.Errorf("allreduce = %d, want 300", got)
	}
	if got := injectedBytes(trace.Alltoall(10), 8); got != 70 {
		t.Errorf("alltoall = %d, want 70", got)
	}
	if got := injectedBytes(trace.Recv(1), 8); got != 0 {
		t.Errorf("recv = %d, want 0", got)
	}
}
