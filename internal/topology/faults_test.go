package topology

import (
	"math/rand"
	"testing"
)

// sampledPairs returns a deterministic spread of (src, dst) terminal pairs
// covering near and far endpoints of the fabric.
func sampledPairs(f Fabric, n int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	nt := f.NumTerminals()
	pairs := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]int{r.Intn(nt), r.Intn(nt)})
	}
	pairs = append(pairs, [2]int{0, nt - 1}, [2]int{0, 0}, [2]int{nt - 1, 0})
	return pairs
}

// TestFaultRouterRegistered asserts every registered fabric implements the
// degraded-routing contract — a new preset cannot silently opt out of the
// failure model.
func TestFaultRouterRegistered(t *testing.T) {
	for _, name := range Names() {
		f, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.(FaultRouter); !ok {
			t.Errorf("fabric %s does not implement FaultRouter", name)
		}
	}
}

// TestRouteAvoidingHealthyIdentical pins the first half of the determinism
// contract: with an empty fault set (or faults off every selected path), the
// avoided route is byte-for-byte the route the recorded draws select.
func TestRouteAvoidingHealthyIdentical(t *testing.T) {
	for _, name := range []string{"xgft", "xgft3", "dragonfly", "torus2d", "torus3d"} {
		f := MustNamed(name)
		fr := f.(FaultRouter)
		fs := NewFaultSet(f)
		rng := rand.New(rand.NewSource(7))
		for _, p := range sampledPairs(f, 50, 11) {
			draws := f.RouteDraws(nil, p[0], p[1], rng)
			want := f.RouteIDsFromDraws(nil, p[0], p[1], draws)
			got, ok := fr.RouteIDsAvoiding(nil, p[0], p[1], draws, fs)
			if !ok {
				t.Fatalf("%s: healthy route %d->%d reported unreachable", name, p[0], p[1])
			}
			if len(got) != len(want) {
				t.Fatalf("%s: healthy avoided route %d->%d has %d links, want %d", name, p[0], p[1], len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: healthy avoided route %d->%d differs at hop %d", name, p[0], p[1], i)
				}
			}
		}
	}
}

// failRandom fails n switch-to-switch cables and m switches drawn from a
// seeded RNG, mirroring the population the scenario fault stream draws from.
func failRandom(f Fabric, fs *FaultSet, nCables, nSwitches int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	tab := f.Table()
	var s2s []LinkID
	switches := map[int32]bool{}
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(LinkID(id)) {
			s2s = append(s2s, LinkID(id))
		}
		if tab.Kind[id]&LinkFromSwitch != 0 {
			switches[tab.From[id]] = true
		}
		if tab.Kind[id]&LinkToSwitch != 0 {
			switches[tab.To[id]] = true
		}
	}
	var sws []int32
	for sw := range switches {
		sws = append(sws, sw)
	}
	// Map iteration order is random; sort for determinism.
	for i := 1; i < len(sws); i++ {
		for j := i; j > 0 && sws[j] < sws[j-1]; j-- {
			sws[j], sws[j-1] = sws[j-1], sws[j]
		}
	}
	for i := 0; i < nCables && len(s2s) > 0; i++ {
		fs.FailLink(s2s[r.Intn(len(s2s))])
	}
	for i := 0; i < nSwitches && len(sws) > 0; i++ {
		fs.FailNode(sws[r.Intn(len(sws))])
	}
}

// TestRouteAvoidingNeverTraversesFaults is the core structural invariant on
// every registered fabric: under seeded random fault sets, every route the
// fault router returns ok for is a valid adjacent path from src to dst that
// touches no blocked link; pairs it reports unreachable are simply reported,
// never panicked. Determinism is pinned by recomputing each route twice.
func TestRouteAvoidingNeverTraversesFaults(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		fr := f.(FaultRouter)
		for trial := int64(0); trial < 4; trial++ {
			fs := NewFaultSet(f)
			failRandom(f, fs, 3+int(trial)*2, int(trial), 100+trial)
			rng := rand.New(rand.NewSource(trial))
			tab := f.Table()
			for _, p := range sampledPairs(f, 30, trial) {
				draws := f.RouteDraws(nil, p[0], p[1], rng)
				path, ok := fr.RouteIDsAvoiding(nil, p[0], p[1], draws, fs)
				again, ok2 := fr.RouteIDsAvoiding(nil, p[0], p[1], draws, fs)
				if ok != ok2 || len(path) != len(again) {
					t.Fatalf("%s: avoided route %d->%d not deterministic", name, p[0], p[1])
				}
				for i := range path {
					if path[i] != again[i] {
						t.Fatalf("%s: avoided route %d->%d not deterministic at hop %d", name, p[0], p[1], i)
					}
				}
				if !ok {
					continue // unreachable: reported, not panicked
				}
				for i, id := range path {
					if fs.Blocked(id) {
						t.Fatalf("%s: route %d->%d traverses blocked link %d at hop %d", name, p[0], p[1], id, i)
					}
					if i > 0 && tab.From[id] != tab.To[path[i-1]] {
						t.Fatalf("%s: route %d->%d not adjacent at hop %d", name, p[0], p[1], i)
					}
				}
				if p[0] != p[1] && len(path) == 0 {
					t.Fatalf("%s: distinct pair %d->%d got empty route", name, p[0], p[1])
				}
			}
		}
	}
}

// TestRouteAvoidingDetoursAroundSingleFault fails exactly the link the
// healthy route would use and asserts the detour exists, avoids it, and
// still ends at the destination on every multi-path fabric.
func TestRouteAvoidingDetoursAroundSingleFault(t *testing.T) {
	for _, name := range []string{"xgft", "xgft3", "dragonfly"} {
		f := MustNamed(name)
		fr := f.(FaultRouter)
		src, dst := 0, f.NumTerminals()-1
		healthy := f.RouteIDsFromDraws(nil, src, dst, f.RouteDraws(nil, src, dst, nil))
		// Fail the first switch-to-switch hop of the healthy path.
		tab := f.Table()
		var target LinkID = -1
		for _, id := range healthy {
			if tab.SwitchToSwitch(id) {
				target = id
				break
			}
		}
		if target < 0 {
			t.Fatalf("%s: healthy route has no switch-to-switch hop", name)
		}
		fs := NewFaultSet(f)
		fs.FailLink(target)
		path, ok := fr.RouteIDsAvoiding(nil, src, dst, f.RouteDraws(nil, src, dst, nil), fs)
		if !ok {
			t.Fatalf("%s: single cable fault made %d->%d unreachable", name, src, dst)
		}
		for _, id := range path {
			if fs.Blocked(id) {
				t.Fatalf("%s: detour traverses the failed link", name)
			}
		}
		if got := tab.To[path[len(path)-1]]; got != tab.From[f.HostLinkID(dst)] {
			t.Fatalf("%s: detour ends at node %d, not the destination terminal", name, got)
		}
	}
}

// TestRouteAvoidingReportsUnreachable cuts every switch-to-switch cable and
// asserts cross-switch pairs come back ok == false on every registered
// fabric — the "reported, not panicked" half of the contract.
func TestRouteAvoidingReportsUnreachable(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		fr := f.(FaultRouter)
		fs := NewFaultSet(f)
		tab := f.Table()
		for id := 0; id < tab.Len(); id += 2 {
			if tab.SwitchToSwitch(LinkID(id)) {
				fs.FailLink(LinkID(id))
			}
		}
		src, dst := 0, f.NumTerminals()-1
		if _, ok := fr.RouteIDsAvoiding(nil, src, dst, f.RouteDraws(nil, src, dst, nil), fs); ok {
			t.Errorf("%s: %d->%d routable with every switch-to-switch cable cut", name, src, dst)
		}
		// Same-terminal routing stays trivially fine.
		if path, ok := fr.RouteIDsAvoiding(nil, src, src, nil, fs); !ok || len(path) != 0 {
			t.Errorf("%s: src==dst should stay reachable with an empty path", name)
		}
	}
}

// TestFaultSetComposition covers the fail/repair bookkeeping: cable faults
// block both directions, switch faults block incident links without touching
// the link mask, and repairs restore exactly what their fault took down.
func TestFaultSetComposition(t *testing.T) {
	f := Paper()
	fs := NewFaultSet(f)
	if !fs.Empty() {
		t.Fatal("fresh fault set not empty")
	}
	tab := f.Table()
	var s2s LinkID = -1
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(LinkID(id)) {
			s2s = LinkID(id)
			break
		}
	}
	fs.FailLink(s2s)
	fs.FailLink(s2s) // idempotent
	if fs.FailedCables() != 1 || !fs.Blocked(s2s) || !fs.Blocked(Reverse(s2s)) {
		t.Fatal("cable fault must block both directions exactly once")
	}
	// Fail the switch at the cable's source too; repairing the switch must
	// not resurrect the independently failed cable.
	sw := tab.From[s2s]
	fs.FailNode(sw)
	if !fs.NodeDown(sw) || fs.FailedSwitches() != 1 {
		t.Fatal("switch fault not recorded")
	}
	fs.RepairNode(sw)
	if fs.NodeDown(sw) || !fs.Blocked(s2s) {
		t.Fatal("switch repair must leave the independent cable fault in place")
	}
	fs.RepairLink(Reverse(s2s))
	if fs.Blocked(s2s) || !fs.Empty() {
		t.Fatal("cable repair via either direction must clear both")
	}
}

// TestRouteAvoidingAllocFree pins the hot-path cost: with a warm buffer,
// fault-aware routing performs no allocation on any preset fabric.
func TestRouteAvoidingAllocFree(t *testing.T) {
	for _, name := range []string{"xgft", "dragonfly", "torus2d"} {
		f := MustNamed(name)
		fr := f.(FaultRouter)
		fs := NewFaultSet(f)
		failRandom(f, fs, 2, 0, 5)
		src, dst := 0, f.NumTerminals()-1
		draws := f.RouteDraws(nil, src, dst, nil)
		buf := make([]LinkID, 0, 64)
		allocs := testing.AllocsPerRun(100, func() {
			buf, _ = fr.RouteIDsAvoiding(buf[:0], src, dst, draws, fs)
		})
		if allocs != 0 {
			t.Errorf("%s: RouteIDsAvoiding allocates %.1f/op, want 0", name, allocs)
		}
	}
}
