package topology

// FaultSet is the live failure state of one fabric: a bitmask over directed
// LinkIDs (individually failed cables) and a bitmask over node IDs (failed
// switches). Lookups are O(1) bit tests with no allocation, so the network
// model can consult the set on every hop of every transfer. The set is
// mutable — the churn engine fails and repairs entities as its fault event
// stream fires — and is owned by a single serial event loop, so it needs no
// locking.
//
// Failing a link always fails both directions of its physical cable (a cable
// fault takes out the fibre, not one lane), and a failed switch blocks every
// link incident to it without touching the per-link mask, so independent
// link faults and switch faults compose: repairing the switch does not
// resurrect a link that also failed on its own.
type FaultSet struct {
	tab    *LinkTable
	links  []uint64 // bit per directed LinkID: individually failed
	nodes  []uint64 // bit per node ID: failed switch
	cables int      // failed cables
	down   int      // failed switches
}

// NewFaultSet returns an all-healthy fault set over f's link table.
func NewFaultSet(f Fabric) *FaultSet {
	tab := f.Table()
	maxNode := int32(-1)
	for i := range tab.From {
		if tab.From[i] > maxNode {
			maxNode = tab.From[i]
		}
		if tab.To[i] > maxNode {
			maxNode = tab.To[i]
		}
	}
	return &FaultSet{
		tab:   tab,
		links: make([]uint64, (tab.Len()+63)/64),
		nodes: make([]uint64, (int(maxNode)+1+63)/64),
	}
}

// Empty reports whether every entity is healthy; the network model skips all
// fault checks (and keeps using its route cache) while the set is empty.
func (fs *FaultSet) Empty() bool { return fs.cables == 0 && fs.down == 0 }

// FailedCables returns the number of individually failed cables.
func (fs *FaultSet) FailedCables() int { return fs.cables }

// FailedSwitches returns the number of failed switches.
func (fs *FaultSet) FailedSwitches() int { return fs.down }

// FailLink fails the physical cable of id (both directions). Failing an
// already-failed cable is a no-op, so fail/repair events always pair.
func (fs *FaultSet) FailLink(id LinkID) {
	fwd := id &^ 1 // even ID of the cable
	if fs.links[fwd>>6]&(1<<uint(fwd&63)) != 0 {
		return
	}
	fs.links[fwd>>6] |= 1 << uint(fwd&63)
	rev := fwd | 1
	fs.links[rev>>6] |= 1 << uint(rev&63)
	fs.cables++
}

// RepairLink restores the physical cable of id. Repairing a healthy cable is
// a no-op.
func (fs *FaultSet) RepairLink(id LinkID) {
	fwd := id &^ 1
	if fs.links[fwd>>6]&(1<<uint(fwd&63)) == 0 {
		return
	}
	fs.links[fwd>>6] &^= 1 << uint(fwd&63)
	rev := fwd | 1
	fs.links[rev>>6] &^= 1 << uint(rev&63)
	fs.cables--
}

// FailNode fails the switch with the given node ID: every link into or out
// of it reads as blocked. Failing a failed switch is a no-op.
func (fs *FaultSet) FailNode(node int32) {
	if fs.nodes[node>>6]&(1<<uint(node&63)) != 0 {
		return
	}
	fs.nodes[node>>6] |= 1 << uint(node&63)
	fs.down++
}

// RepairNode restores a failed switch. Repairing a healthy one is a no-op.
func (fs *FaultSet) RepairNode(node int32) {
	if fs.nodes[node>>6]&(1<<uint(node&63)) == 0 {
		return
	}
	fs.nodes[node>>6] &^= 1 << uint(node&63)
	fs.down--
}

// NodeDown reports whether the switch with the given node ID is failed.
func (fs *FaultSet) NodeDown(node int32) bool {
	return fs.nodes[node>>6]&(1<<uint(node&63)) != 0
}

// Blocked reports whether a directed link is unusable: its cable failed, or
// either endpoint switch is down. Three bit tests and two table reads — the
// per-hop cost of fault-aware routing.
func (fs *FaultSet) Blocked(id LinkID) bool {
	if fs.links[id>>6]&(1<<uint(id&63)) != 0 {
		return true
	}
	from, to := fs.tab.From[id], fs.tab.To[id]
	return fs.nodes[from>>6]&(1<<uint(from&63)) != 0 ||
		fs.nodes[to>>6]&(1<<uint(to&63)) != 0
}

// PathBlocked reports whether any link of path is blocked.
func (fs *FaultSet) PathBlocked(path []LinkID) bool {
	for _, id := range path {
		if fs.Blocked(id) {
			return true
		}
	}
	return false
}

// FaultRouter is the degraded-routing contract fabrics implement alongside
// Fabric. RouteIDsAvoiding appends a valid src→dst path that traverses no
// blocked link, given the draw sequence the healthy route would have used
// (recorded by RouteDraws — the caller consumes the RNG, this method never
// does, so the fault layer cannot perturb the healthy-path draw sequence).
//
// The determinism contract has two halves:
//
//   - When the path RouteIDsFromDraws(src, dst, draws) selects is entirely
//     healthy, RouteIDsAvoiding must return exactly that path: transfers that
//     never meet a fault are bit-identical to a fault-free run.
//   - When it is blocked, the detour is a pure function of (src, dst, draws,
//     fault set), chosen by a documented per-fabric rule — no RNG, no
//     iteration-order dependence.
//
// A pair with no healthy path left returns ok == false (reported, never
// panicked); the caller decides how to degrade.
type FaultRouter interface {
	RouteIDsAvoiding(buf []LinkID, src, dst int, draws []int, fs *FaultSet) (path []LinkID, ok bool)
}

// maxAvoidLevels bounds the stack scratch the XGFT detour enumeration uses;
// fat trees deeper than this (none are registered) fall back to a heap
// allocation inside RouteIDsAvoiding.
const maxAvoidLevels = 16

// RouteIDsAvoiding implements the XGFT detour rule: re-pick the up-link
// choices. The candidate paths are enumerated by offsetting the recorded
// draws — offset vector (o_0..o_{top-1}), pick[l] = (draw[l]+o_l) mod w_l —
// in odometer order with the topmost ascent level varying fastest, starting
// from the all-zero offset (the healthy path). The first candidate whose
// links are all unblocked wins; a fat tree loses src↔dst connectivity only
// when every common-ancestor subtree is cut, in which case ok is false.
func (t *XGFT) RouteIDsAvoiding(buf []LinkID, src, dst int, draws []int, fs *FaultSet) ([]LinkID, bool) {
	top := t.divergeLevel(src, dst)
	if top == 0 {
		return buf, true
	}
	base := len(buf)
	var offsArr [maxAvoidLevels]int
	offs := offsArr[:0]
	if top <= maxAvoidLevels {
		offs = offsArr[:top]
	} else {
		offs = make([]int, top)
	}
	for {
		buf = buf[:base]
		cur := src
		blocked := false
		for lvl := 0; lvl < top; lvl++ {
			fan := t.W[lvl]
			i := cur*fan + (draws[lvl]+offs[lvl])%fan
			id := t.up[lvl][i]
			if fs.Blocked(id) {
				blocked = true
				break
			}
			buf = append(buf, id)
			cur = int(t.upTo[lvl][i])
		}
		if !blocked {
			down := t.descend(buf, cur, top, dst)
			if !fs.PathBlocked(down[len(buf):]) {
				return down, true
			}
			buf = down[:base] // preserve any growth descend caused
		}
		// Advance the offset odometer, topmost level first.
		lvl := top - 1
		for lvl >= 0 {
			offs[lvl]++
			if offs[lvl] < t.W[lvl] {
				break
			}
			offs[lvl] = 0
			lvl--
		}
		if lvl < 0 {
			return buf[:base], false
		}
	}
}

// RouteIDsAvoiding implements the dragonfly detour rule. Inter-group routes
// re-pick the intermediate group: candidates are gi, gi+1, …, wrapping mod G
// (gi is the recorded draw, or the source group for a minimal route), and
// the first candidate whose full path — local hop to the global port, global
// cable, local hops on the far side — is unblocked wins. Intra-group routes
// whose direct local link is blocked detour through the lowest-index healthy
// intermediate router of the group.
func (d *Dragonfly) RouteIDsAvoiding(buf []LinkID, src, dst int, draws []int, fs *FaultSet) ([]LinkID, bool) {
	if src == dst {
		return buf, true
	}
	base := len(buf)
	gs, gd := d.group(src), d.group(dst)
	if gs == gd {
		return d.avoidLocal(buf, base, src, dst, fs)
	}
	gi := gs
	if len(draws) > 0 {
		gi = draws[0]
	}
	for k := 0; k < d.G; k++ {
		buf = buf[:base]
		cand := d.route(buf, src, dst, (gi+k)%d.G)
		if !fs.PathBlocked(cand[base:]) {
			return cand, true
		}
		buf = cand[:base]
	}
	return buf[:base], false
}

// avoidLocal handles the intra-group case: direct local link if healthy,
// else two local hops via the lowest-index healthy intermediate router.
func (d *Dragonfly) avoidLocal(buf []LinkID, base, src, dst int, fs *FaultSet) ([]LinkID, bool) {
	g := d.group(src)
	ri, rj := d.router(src), d.router(dst)
	up, down := d.hostUp[src], Reverse(d.hostUp[dst])
	if fs.Blocked(up) || fs.Blocked(down) {
		return buf[:base], false
	}
	if ri == rj {
		return append(buf, up, down), true
	}
	if direct := d.local[(g*d.A+ri)*d.A+rj]; !fs.Blocked(direct) {
		return append(buf, up, direct, down), true
	}
	for k := 0; k < d.A; k++ {
		if k == ri || k == rj {
			continue
		}
		l1 := d.local[(g*d.A+ri)*d.A+k]
		l2 := d.local[(g*d.A+k)*d.A+rj]
		if !fs.Blocked(l1) && !fs.Blocked(l2) {
			return append(buf, up, l1, l2, down), true
		}
	}
	return buf[:base], false
}

// maxAvoidDims bounds the stack-free arc-flip enumeration; tori with more
// dimensions than this (none are registered) report unreachable when the
// dimension-order path is blocked.
const maxAvoidDims = 16

// RouteIDsAvoiding implements the torus detour rule: dimension-order routing
// with per-dimension arc flips. Candidates are enumerated by a bitmask over
// the dimensions that need correction — mask 0 is the healthy shorter-arc
// path, and masks count up with dimension 0 as the lowest bit, each set bit
// sending that dimension around the longer arc. The first mask whose full
// path is unblocked wins; dimensions needing no correction are never
// traversed, so a torus pair is unreachable once every arc combination over
// the correcting dimensions is cut.
func (t *Torus) RouteIDsAvoiding(buf []LinkID, src, dst int, _ []int, fs *FaultSet) ([]LinkID, bool) {
	if src == dst {
		return buf, true
	}
	nd := len(t.Dims)
	if nd > maxAvoidDims {
		nd = maxAvoidDims
	}
	base := len(buf)
	up, down := t.hostUp[src], Reverse(t.hostUp[dst])
	if fs.Blocked(up) || fs.Blocked(down) {
		return buf[:base], false
	}
	target := dst / t.P
	for mask := 0; mask < 1<<uint(nd); mask++ {
		buf = buf[:base]
		buf = append(buf, up)
		cur := src / t.P
		blocked := false
		skip := false
		for d := 0; d < len(t.Dims) && !blocked; d++ {
			size := t.Dims[d]
			delta := ((target/t.stride[d])%size - (cur/t.stride[d])%size + size) % size
			if delta == 0 {
				if mask&(1<<uint(d)) != 0 {
					skip = true // flipping an uncorrected dimension duplicates mask 0
					break
				}
				continue
			}
			steps, dir := delta, +1
			if size-delta < delta {
				steps, dir = size-delta, -1
			}
			if d < nd && mask&(1<<uint(d)) != 0 {
				steps, dir = size-steps, -dir
			}
			for s := 0; s < steps; s++ {
				var id LinkID
				if dir > 0 {
					id = t.plus[cur*len(t.Dims)+d]
				} else {
					id = t.minus[cur*len(t.Dims)+d]
				}
				if fs.Blocked(id) {
					blocked = true
					break
				}
				buf = append(buf, id)
				cur = t.neighbor(cur, d, dir)
			}
		}
		if skip || blocked {
			continue
		}
		if !fs.Blocked(down) {
			return append(buf, down), true
		}
	}
	return buf[:base], false
}
