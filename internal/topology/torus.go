package topology

import (
	"fmt"
	"math/rand"
)

// Torus is a k-ary n-dimensional torus of routers with P terminals each and
// deterministic dimension-order routing: each route corrects dimension 0
// first, then dimension 1, and so on, always travelling around the shorter
// arc of the ring (ties break toward +). Routing consumes no RNG draws, so
// every (src, dst) pair has exactly one path. Routers are row-major indices
// over Dims; the ring adjacency is two flat LinkID arrays.
type Torus struct {
	Dims []int // ring length per dimension; each >= 2
	P    int   // terminals per router

	tab LinkTable

	hostUp      []LinkID // per terminal: the up-link into its router
	plus, minus []LinkID // per (router*len(Dims)+dim): directed ring links
	stride      []int    // row-major stride per dimension
}

// NewTorus builds the torus with the given per-dimension ring lengths and p
// terminals per router.
func NewTorus(dims []int, p int) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: torus needs at least one dimension")
	}
	if p < 1 {
		return nil, fmt.Errorf("topology: non-positive terminals per router %d", p)
	}
	n := 1
	for i, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf("topology: torus dimension %d has length %d < 2", i, d)
		}
		n *= d
	}
	t := &Torus{Dims: append([]int(nil), dims...), P: p, stride: make([]int, len(dims))}
	s := 1
	for i := range dims {
		t.stride[i] = s
		s *= dims[i]
	}

	// Node IDs follow construction order: router r at r*(p+1), immediately
	// followed by its p terminals. Host cable index = terminal index.
	routerNode := func(r int) int32 { return int32(r * (p + 1)) }
	t.hostUp = make([]LinkID, n*p)
	for r := 0; r < n; r++ {
		for k := 0; k < p; k++ {
			t.hostUp[r*p+k] = t.tab.addCable(routerNode(r)+1+int32(k), routerNode(r), LinkToSwitch|LinkUp)
		}
	}
	// Ring cables: one +1-direction cable per (router, dimension); the -1
	// neighbour's link is the reverse direction of that neighbour's cable.
	// A length-2 ring yields two parallel cables between the pair (one per
	// endpoint), the standard double-link degenerate torus.
	nd := len(dims)
	t.plus = make([]LinkID, n*nd)
	t.minus = make([]LinkID, n*nd)
	for r := 0; r < n; r++ {
		for d := range dims {
			next := t.neighbor(r, d, +1)
			t.plus[r*nd+d] = t.tab.addCable(routerNode(r), routerNode(next), LinkFromSwitch|LinkToSwitch)
		}
	}
	for r := 0; r < n; r++ {
		for d := range dims {
			prev := t.neighbor(r, d, -1)
			// prev's +1 cable points at r; its reverse runs r -> prev.
			t.minus[r*nd+d] = Reverse(t.plus[prev*nd+d])
		}
	}
	return t, nil
}

// neighbor returns the row-major index of r's neighbour along dimension d.
func (t *Torus) neighbor(r, d, dir int) int {
	size := t.Dims[d]
	coord := (r / t.stride[d]) % size
	next := (coord + dir + size) % size
	return r + (next-coord)*t.stride[d]
}

// Name describes the instance.
func (t *Torus) Name() string {
	name := "torus("
	for i, d := range t.Dims {
		if i > 0 {
			name += "x"
		}
		name += fmt.Sprint(d)
	}
	return fmt.Sprintf("%s,p=%d)", name, t.P)
}

// NumTerminals returns the terminal count.
func (t *Torus) NumTerminals() int { return len(t.hostUp) }

// NumSwitches returns the router count.
func (t *Torus) NumSwitches() int { return len(t.plus) / len(t.Dims) }

// NumCables returns the physical cable count.
func (t *Torus) NumCables() int { return t.tab.NumCables() }

// NumLinks returns the directed link count.
func (t *Torus) NumLinks() int { return t.tab.Len() }

// Table returns the fabric's compact link table.
func (t *Torus) Table() *LinkTable { return &t.tab }

// RoutingBytes returns the resident size of the flat adjacency arrays.
func (t *Torus) RoutingBytes() int64 {
	return int64(len(t.hostUp))*4 + int64(len(t.plus))*4 + int64(len(t.minus))*4
}

// HostLinkID returns the directed link from terminal i into its router.
func (t *Torus) HostLinkID(i int) LinkID { return t.hostUp[i] }

// RouteIDsInto appends the dimension-order path from src to dst. The rng is
// never consulted: dimension-order routing is deterministic.
func (t *Torus) RouteIDsInto(buf []LinkID, src, dst int, _ *rand.Rand) []LinkID {
	if src == dst {
		return buf
	}
	buf = append(buf, t.hostUp[src])
	cur := src / t.P
	target := dst / t.P
	nd := len(t.Dims)
	for d := 0; d < nd; d++ {
		size := t.Dims[d]
		delta := ((target/t.stride[d])%size - (cur/t.stride[d])%size + size) % size
		if delta == 0 {
			continue
		}
		// Travel the shorter arc; an exact half-ring tie keeps the +
		// direction so routing stays deterministic.
		steps, dir := delta, +1
		if size-delta < delta {
			steps, dir = size-delta, -1
		}
		for s := 0; s < steps; s++ {
			if dir > 0 {
				buf = append(buf, t.plus[cur*nd+d])
			} else {
				buf = append(buf, t.minus[cur*nd+d])
			}
			cur = t.neighbor(cur, d, dir)
		}
	}
	return append(buf, Reverse(t.hostUp[dst]))
}

// RouteDraws appends nothing: torus routing never consumes the RNG.
func (t *Torus) RouteDraws(draws []int, _, _ int, _ *rand.Rand) []int { return draws }

// RouteIDsFromDraws appends the (unique) dimension-order path.
func (t *Torus) RouteIDsFromDraws(buf []LinkID, src, dst int, _ []int) []LinkID {
	return t.RouteIDsInto(buf, src, dst, nil)
}
