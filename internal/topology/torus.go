package topology

import (
	"fmt"
	"math/rand"
)

// Torus is a k-ary n-dimensional torus of routers with P terminals each and
// deterministic dimension-order routing: each route corrects dimension 0
// first, then dimension 1, and so on, always travelling around the shorter
// arc of the ring (ties break toward +). Routing consumes no RNG draws, so
// every (src, dst) pair has exactly one path.
type Torus struct {
	Dims []int // ring length per dimension; each >= 2
	P    int   // terminals per router

	Terminals []*Node
	Routers   []*Node // row-major over Dims

	links  []*Link
	cables int

	plus, minus [][]*Link // per router, per dimension: directed ring links
	stride      []int     // row-major stride per dimension
}

// NewTorus builds the torus with the given per-dimension ring lengths and p
// terminals per router.
func NewTorus(dims []int, p int) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: torus needs at least one dimension")
	}
	if p < 1 {
		return nil, fmt.Errorf("topology: non-positive terminals per router %d", p)
	}
	n := 1
	for i, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf("topology: torus dimension %d has length %d < 2", i, d)
		}
		n *= d
	}
	t := &Torus{Dims: append([]int(nil), dims...), P: p, stride: make([]int, len(dims))}
	s := 1
	for i := range dims {
		t.stride[i] = s
		s *= dims[i]
	}

	nextID := 0
	mkNode := func(kind NodeKind, level int) *Node {
		nd := &Node{ID: nextID, Kind: kind, Level: level}
		nextID++
		return nd
	}
	cable := func(from, to *Node, up bool) *Link {
		c := t.cables
		t.cables++
		fwd := &Link{ID: len(t.links), From: from, To: to, Cable: c, IsUp: up}
		rev := &Link{ID: len(t.links) + 1, From: to, To: from, Cable: c}
		t.links = append(t.links, fwd, rev)
		return fwd
	}

	for r := 0; r < n; r++ {
		router := mkNode(KindSwitch, 1)
		t.Routers = append(t.Routers, router)
		for k := 0; k < p; k++ {
			term := mkNode(KindTerminal, 0)
			t.Terminals = append(t.Terminals, term)
			up := cable(term, router, true)
			term.Up = append(term.Up, up)
			router.Down = append(router.Down, t.links[up.ID+1])
		}
	}
	// Ring cables: one +1-direction cable per (router, dimension); the -1
	// neighbour's link is the reverse direction of that neighbour's cable.
	// A length-2 ring yields two parallel cables between the pair (one per
	// endpoint), the standard double-link degenerate torus.
	t.plus = make([][]*Link, n)
	t.minus = make([][]*Link, n)
	for r := range t.plus {
		t.plus[r] = make([]*Link, len(dims))
		t.minus[r] = make([]*Link, len(dims))
	}
	for r := 0; r < n; r++ {
		for d := range dims {
			next := t.neighbor(r, d, +1)
			t.plus[r][d] = cable(t.Routers[r], t.Routers[next], false)
		}
	}
	for r := 0; r < n; r++ {
		for d := range dims {
			prev := t.neighbor(r, d, -1)
			// prev's +1 cable points at r; its reverse runs r -> prev.
			t.minus[r][d] = t.links[t.plus[prev][d].ID+1]
		}
	}
	return t, nil
}

// neighbor returns the row-major index of r's neighbour along dimension d.
func (t *Torus) neighbor(r, d, dir int) int {
	size := t.Dims[d]
	coord := (r / t.stride[d]) % size
	next := (coord + dir + size) % size
	return r + (next-coord)*t.stride[d]
}

// Name describes the instance.
func (t *Torus) Name() string {
	name := "torus("
	for i, d := range t.Dims {
		if i > 0 {
			name += "x"
		}
		name += fmt.Sprint(d)
	}
	return fmt.Sprintf("%s,p=%d)", name, t.P)
}

// NumTerminals returns the terminal count.
func (t *Torus) NumTerminals() int { return len(t.Terminals) }

// NumSwitches returns the router count.
func (t *Torus) NumSwitches() int { return len(t.Routers) }

// NumCables returns the physical cable count.
func (t *Torus) NumCables() int { return t.cables }

// Links returns all directed links, indexed by Link.ID.
func (t *Torus) Links() []*Link { return t.links }

// HostLink returns the directed link from terminal i into its router.
func (t *Torus) HostLink(i int) *Link { return t.Terminals[i].Up[0] }

// Route returns a freshly allocated path from terminal src to terminal dst.
func (t *Torus) Route(src, dst int, rng *rand.Rand) []*Link {
	return t.RouteInto(nil, src, dst, rng)
}

// RouteInto appends the dimension-order path from src to dst. The rng is
// never consulted: dimension-order routing is deterministic.
func (t *Torus) RouteInto(buf []*Link, src, dst int, _ *rand.Rand) []*Link {
	if src == dst {
		return buf
	}
	ts, td := t.Terminals[src], t.Terminals[dst]
	buf = append(buf, ts.Up[0])
	cur := src / t.P
	target := dst / t.P
	for d := range t.Dims {
		size := t.Dims[d]
		delta := ((target/t.stride[d])%size - (cur/t.stride[d])%size + size) % size
		if delta == 0 {
			continue
		}
		// Travel the shorter arc; an exact half-ring tie keeps the +
		// direction so routing stays deterministic.
		steps, dir := delta, +1
		if size-delta < delta {
			steps, dir = size-delta, -1
		}
		for s := 0; s < steps; s++ {
			var l *Link
			if dir > 0 {
				l = t.plus[cur][d]
			} else {
				l = t.minus[cur][d]
			}
			buf = append(buf, l)
			cur = t.neighbor(cur, d, dir)
		}
	}
	buf = append(buf, t.links[td.Up[0].ID+1])
	return buf
}

// RouteDraws appends nothing: torus routing never consumes the RNG.
func (t *Torus) RouteDraws(draws []int, _, _ int, _ *rand.Rand) []int { return draws }

// RouteFromDraws appends the (unique) dimension-order path.
func (t *Torus) RouteFromDraws(buf []*Link, src, dst int, _ []int) []*Link {
	return t.RouteInto(buf, src, dst, nil)
}
