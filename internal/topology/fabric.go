package topology

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Fabric is the interconnect abstraction the network model times transfers
// over. The paper evaluates its mechanism on a single XGFT(2;18,14;1,18) fat
// tree, but the prediction mechanism itself is topology-agnostic: everything
// above this package only needs terminals, directed links, and a routing
// function. Implementations are immutable after construction, so one instance
// can be shared by every replay engine and concurrent sweep point.
//
// Links are identified by dense LinkIDs into the fabric's LinkTable — paths
// are []LinkID and per-link state lives in flat slices sized by NumLinks().
//
// Routing is split into three methods so the RouteCache can memoize paths
// without disturbing the random-routing draw sequence:
//
//   - RouteIDsInto computes a path directly, drawing any random choices from
//     rng (the plain, uncached entry point).
//   - RouteDraws consumes from rng exactly the draws RouteIDsInto would make
//     for (src, dst) — same count, same order, same Intn arguments — and
//     records each pick. Timings driven by a shared RNG therefore stay
//     bit-identical whether or not a cache sits in front of the fabric.
//   - RouteIDsFromDraws deterministically reconstructs the path a recorded
//     draw sequence selects. For any rng state,
//     RouteIDsFromDraws(nil, s, d, RouteDraws(nil, s, d, rng)) must equal
//     RouteIDsInto(nil, s, d, rng') where rng' started in the same state.
//
// A nil rng must route deterministically (pick 0 / minimal), still recording
// the picks that reproduce that path.
type Fabric interface {
	// Name describes the concrete fabric instance (e.g. "xgft(2;18,14;1,18)").
	Name() string
	// NumTerminals returns the number of compute endpoints. Terminals are
	// addressed 0..NumTerminals()-1 and carry one MPI process each.
	NumTerminals() int
	// NumSwitches returns the number of switching elements.
	NumSwitches() int
	// NumCables returns the number of physical cables; every cable is two
	// directed links.
	NumCables() int
	// NumLinks returns the number of directed links (2*NumCables). LinkIDs
	// are dense in [0, NumLinks()), so per-link state arrays are sized by it.
	NumLinks() int
	// Table returns the fabric's compact link table, shared and immutable.
	Table() *LinkTable
	// HostLinkID returns the directed link from terminal t into its
	// first-hop switch — the link the power mechanism manages.
	HostLinkID(t int) LinkID
	// RouteIDsInto appends the directed links of a valid adjacent-link path
	// from terminal src to terminal dst and returns the extended slice.
	// src == dst appends nothing.
	RouteIDsInto(buf []LinkID, src, dst int, rng *rand.Rand) []LinkID
	// RouteDraws appends the random picks RouteIDsInto would draw from rng
	// for (src, dst), consuming rng identically, and returns the extended
	// slice.
	RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int
	// RouteIDsFromDraws appends the path selected by a draw sequence
	// previously recorded by RouteDraws for the same (src, dst).
	RouteIDsFromDraws(buf []LinkID, src, dst int, draws []int) []LinkID
}

// RouteIDs returns a freshly allocated path over f (convenience wrapper over
// RouteIDsInto).
func RouteIDs(f Fabric, src, dst int, rng *rand.Rand) []LinkID {
	return f.RouteIDsInto(nil, src, dst, rng)
}

// DefaultFabric is the registry entry used when no fabric is named: the
// paper's XGFT(2;18,14;1,18).
const DefaultFabric = "xgft"

// fabricEntry lazily builds and memoizes one registered fabric. Fabrics are
// immutable after construction, so all callers share the instance.
type fabricEntry struct {
	build func() (Fabric, error)
	once  sync.Once
	f     Fabric
	err   error
}

var (
	fabMu      sync.RWMutex
	fabricsReg = make(map[string]*fabricEntry)
)

// Register adds a fabric constructor under name. It panics on an empty name,
// a nil constructor, or a duplicate registration — registry collisions are
// programmer errors and must fail loudly at init time, not resolve silently
// to whichever init ran last. The built instance is memoized: Named returns
// the same shared Fabric for every lookup of name.
func Register(name string, build func() (Fabric, error)) {
	if name == "" {
		panic("topology: Register with empty name")
	}
	if build == nil {
		panic("topology: Register with nil constructor for " + name)
	}
	fabMu.Lock()
	defer fabMu.Unlock()
	if _, dup := fabricsReg[name]; dup {
		panic("topology: duplicate registration of " + name)
	}
	fabricsReg[name] = &fabricEntry{build: build}
}

// Registered reports whether name resolves in the registry; the empty string
// resolves to DefaultFabric.
func Registered(name string) bool {
	if name == "" {
		name = DefaultFabric
	}
	fabMu.RLock()
	defer fabMu.RUnlock()
	_, ok := fabricsReg[name]
	return ok
}

// Names returns the registered fabric names, sorted.
func Names() []string {
	fabMu.RLock()
	defer fabMu.RUnlock()
	names := make([]string, 0, len(fabricsReg))
	for n := range fabricsReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckRegistered returns a descriptive error naming the whole registry when
// name does not resolve (the empty name resolves to DefaultFabric), so a
// typo'd -topo flag tells the user what would have worked. It is the single
// validation every layer (replay config, harness, CLI) shares.
func CheckRegistered(name string) error {
	if Registered(name) {
		return nil
	}
	return fmt.Errorf("unknown fabric %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Named returns the shared instance of the named fabric, building it on
// first use; the empty name selects DefaultFabric.
func Named(name string) (Fabric, error) {
	if name == "" {
		name = DefaultFabric
	}
	fabMu.RLock()
	e, ok := fabricsReg[name]
	fabMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("topology: %w", CheckRegistered(name))
	}
	e.once.Do(func() { e.f, e.err = e.build() })
	return e.f, e.err
}

// MustNamed is Named, panicking on errors (for preset names validated up
// front).
func MustNamed(name string) Fabric {
	f, err := Named(name)
	if err != nil {
		panic(err)
	}
	return f
}

// The preset registry. Every non-paper preset has at least 144 terminals so
// the full evaluation grid (up to 128 processes) runs on any of them.
func init() {
	// The paper's fabric (Table II).
	Register(DefaultFabric, func() (Fabric, error) { return Paper(), nil })
	// A three-level fat tree: XGFT(3;6,6,4;1,4,4), 144 terminals. Cross-tree
	// routes draw up-link choices at two levels, exercising multi-draw route
	// keys in the cache.
	Register("xgft3", func() (Fabric, error) { return New(3, []int{6, 6, 4}, []int{1, 4, 4}) })
	// A balanced dragonfly: 4 terminals per router, 4 routers per group,
	// 2 global links per router -> 9 fully connected groups, 144 terminals.
	Register("dragonfly", func() (Fabric, error) { return NewDragonfly(4, 4, 2) })
	// Tori with dimension-order routing, 144 routers x 1 terminal each.
	Register("torus2d", func() (Fabric, error) { return NewTorus([]int{12, 12}, 1) })
	Register("torus3d", func() (Fabric, error) { return NewTorus([]int{6, 6, 4}, 1) })
	// Supercomputer-scale presets for the scale axis of the evaluation.
	// xgft3-big: a full-bisection three-level fat tree XGFT(3;20,20,20;1,20,20)
	// — 8000 terminals, 1200 switches, 24000 cables; cross-tree routes draw
	// two Intn(20) picks, still well inside the cache's 8-bit draw fields.
	Register("xgft3-big", func() (Fabric, error) { return New(3, []int{20, 20, 20}, []int{1, 20, 20}) })
	// dragonfly-big: a balanced dragonfly with 8 terminals per router, 16
	// routers per group and 4 global links per router -> 65 groups, 8320
	// terminals, 18200 cables. The Valiant draw is Intn(65), cache-packable.
	Register("dragonfly-big", func() (Fabric, error) { return NewDragonfly(8, 16, 4) })
}
