package topology

import (
	"fmt"
	"math/rand"
)

// Dragonfly is a balanced dragonfly fabric (Kim et al.'s canonical
// parameters): G groups of A routers, each router with P terminals and H
// global links, G = A*H + 1 so every pair of groups is connected by exactly
// one global cable and the routers of a group form a complete local graph.
//
// Routing is minimal — at most one local hop to the global port, the global
// hop, one local hop to the destination router — with a random
// intermediate-group option: inter-group routes draw one intermediate group
// uniformly at random (Valiant spreading); drawing the source or destination
// group degenerates to the minimal route. A nil RNG always routes minimally.
type Dragonfly struct {
	P, A, H int // terminals per router, routers per group, global links per router
	G       int // groups; A*H+1 (balanced)

	Terminals []*Node
	Routers   [][]*Node // Routers[g][i] is router i of group g

	links  []*Link
	cables int

	local     [][][]*Link // local[g][i][j]: directed link router i -> j in group g (nil when i==j)
	globalOut [][]*Link   // globalOut[g][t]: directed link from group g to group t (nil when g==t)
}

// NewDragonfly builds the balanced dragonfly with p terminals per router, a
// routers per group and h global links per router (g = a*h+1 groups,
// g*a*p terminals).
func NewDragonfly(p, a, h int) (*Dragonfly, error) {
	if p < 1 || a < 1 || h < 1 {
		return nil, fmt.Errorf("topology: non-positive dragonfly arity p=%d a=%d h=%d", p, a, h)
	}
	d := &Dragonfly{P: p, A: a, H: h, G: a*h + 1}
	nextID := 0
	mkNode := func(kind NodeKind, level int) *Node {
		n := &Node{ID: nextID, Kind: kind, Level: level}
		nextID++
		return n
	}
	cable := func(from, to *Node, up bool) *Link {
		c := d.cables
		d.cables++
		fwd := &Link{ID: len(d.links), From: from, To: to, Cable: c, IsUp: up}
		rev := &Link{ID: len(d.links) + 1, From: to, To: from, Cable: c}
		d.links = append(d.links, fwd, rev)
		return fwd
	}

	// Routers and their terminals.
	d.Routers = make([][]*Node, d.G)
	for g := 0; g < d.G; g++ {
		d.Routers[g] = make([]*Node, a)
		for i := 0; i < a; i++ {
			r := mkNode(KindSwitch, 1)
			d.Routers[g][i] = r
			for k := 0; k < p; k++ {
				t := mkNode(KindTerminal, 0)
				d.Terminals = append(d.Terminals, t)
				up := cable(t, r, true)
				t.Up = append(t.Up, up)
				r.Down = append(r.Down, d.links[up.ID+1])
			}
		}
	}
	// Local links: complete graph inside every group.
	d.local = make([][][]*Link, d.G)
	for g := 0; g < d.G; g++ {
		d.local[g] = make([][]*Link, a)
		for i := range d.local[g] {
			d.local[g][i] = make([]*Link, a)
		}
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				fwd := cable(d.Routers[g][i], d.Routers[g][j], false)
				d.local[g][i][j] = fwd
				d.local[g][j][i] = d.links[fwd.ID+1]
			}
		}
	}
	// Global links: slot s = i*h+k of group g reaches group (g+s+1) mod G;
	// with G = a*h+1 every unordered group pair gets exactly one cable. The
	// cable is created once, from the lower-numbered group.
	d.globalOut = make([][]*Link, d.G)
	for g := range d.globalOut {
		d.globalOut[g] = make([]*Link, d.G)
	}
	for g := 0; g < d.G; g++ {
		for s := 0; s < a*h; s++ {
			t := (g + s + 1) % d.G
			if g > t {
				continue // created from the other side
			}
			// Slot of group t that reaches back to g.
			st := (g - t - 1 + d.G) % d.G
			fwd := cable(d.Routers[g][s/h], d.Routers[t][st/h], false)
			d.globalOut[g][t] = fwd
			d.globalOut[t][g] = d.links[fwd.ID+1]
		}
	}
	return d, nil
}

// Name describes the instance.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(p=%d,a=%d,h=%d,g=%d)", d.P, d.A, d.H, d.G)
}

// NumTerminals returns the terminal count (G*A*P).
func (d *Dragonfly) NumTerminals() int { return len(d.Terminals) }

// NumSwitches returns the router count (G*A).
func (d *Dragonfly) NumSwitches() int { return d.G * d.A }

// NumCables returns the physical cable count.
func (d *Dragonfly) NumCables() int { return d.cables }

// Links returns all directed links, indexed by Link.ID.
func (d *Dragonfly) Links() []*Link { return d.links }

// HostLink returns the directed link from terminal t into its router.
func (d *Dragonfly) HostLink(t int) *Link { return d.Terminals[t].Up[0] }

// group and router locate terminal t's attachment point.
func (d *Dragonfly) group(t int) int  { return t / (d.A * d.P) }
func (d *Dragonfly) router(t int) int { return (t / d.P) % d.A }

// Route returns a freshly allocated path from terminal src to terminal dst.
func (d *Dragonfly) Route(src, dst int, rng *rand.Rand) []*Link {
	return d.RouteInto(nil, src, dst, rng)
}

// RouteInto appends the path from src to dst, drawing the intermediate-group
// choice from rng for inter-group routes.
func (d *Dragonfly) RouteInto(buf []*Link, src, dst int, rng *rand.Rand) []*Link {
	return d.route(buf, src, dst, d.drawGroup(src, dst, rng))
}

// drawGroup makes the one RNG draw of an inter-group route and returns the
// chosen intermediate group (the source group encodes "minimal"). Intra-group
// routes and nil RNGs draw nothing.
func (d *Dragonfly) drawGroup(src, dst int, rng *rand.Rand) int {
	gs := d.group(src)
	if gs == d.group(dst) || rng == nil {
		return gs
	}
	return rng.Intn(d.G)
}

// RouteDraws appends the picks RouteInto would draw: exactly one Intn(G) for
// an inter-group route with a non-nil rng, nothing otherwise.
func (d *Dragonfly) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	gs := d.group(src)
	if src == dst || gs == d.group(dst) || rng == nil {
		return draws
	}
	return append(draws, rng.Intn(d.G))
}

// RouteFromDraws appends the path a recorded draw sequence selects: an empty
// sequence is the minimal (or intra-group) route, a one-pick sequence names
// the intermediate group.
func (d *Dragonfly) RouteFromDraws(buf []*Link, src, dst int, draws []int) []*Link {
	gi := d.group(src)
	if len(draws) > 0 {
		gi = draws[0]
	}
	return d.route(buf, src, dst, gi)
}

// route appends the path that detours through group gi (gi equal to either
// endpoint group degenerates to the minimal route).
func (d *Dragonfly) route(buf []*Link, src, dst int, gi int) []*Link {
	if src == dst {
		return buf
	}
	ts, td := d.Terminals[src], d.Terminals[dst]
	gs, gd := d.group(src), d.group(dst)
	rd := d.Routers[gd][d.router(dst)]
	buf = append(buf, ts.Up[0])
	cur := ts.Up[0].To
	if gs != gd {
		if gi != gs && gi != gd {
			buf, cur = d.hop(buf, cur, gs, gi)
			buf, cur = d.hop(buf, cur, gi, gd)
		} else {
			buf, cur = d.hop(buf, cur, gs, gd)
		}
	}
	if cur != rd {
		local := d.local[gd][d.routerIndex(gd, cur)][d.router(dst)]
		buf = append(buf, local)
		cur = local.To
	}
	// Down-link of the destination terminal: its host cable's reverse.
	buf = append(buf, d.links[td.Up[0].ID+1])
	return buf
}

// hop appends the (at most one local plus one global) links taking cur, a
// router of group g, into group t, and returns the entry router there.
func (d *Dragonfly) hop(buf []*Link, cur *Node, g, t int) ([]*Link, *Node) {
	out := d.globalOut[g][t]
	if owner := out.From; owner != cur {
		local := d.local[g][d.routerIndex(g, cur)][d.routerIndex(g, owner)]
		buf = append(buf, local)
	}
	return append(buf, out), out.To
}

// routerIndex returns r's index within group g.
func (d *Dragonfly) routerIndex(g int, r *Node) int {
	for i, n := range d.Routers[g] {
		if n == r {
			return i
		}
	}
	panic(fmt.Sprintf("topology: node %d is not a router of dragonfly group %d", r.ID, g))
}
