package topology

import (
	"fmt"
	"math/rand"
)

// Dragonfly is a balanced dragonfly fabric (Kim et al.'s canonical
// parameters): G groups of A routers, each router with P terminals and H
// global links, G = A*H + 1 so every pair of groups is connected by exactly
// one global cable and the routers of a group form a complete local graph.
//
// Routing is minimal — at most one local hop to the global port, the global
// hop, one local hop to the destination router — with a random
// intermediate-group option: inter-group routes draw one intermediate group
// uniformly at random (Valiant spreading); drawing the source or destination
// group degenerates to the minimal route. A nil RNG always routes minimally.
//
// The representation is flat: terminals and routers are arithmetic indices,
// and the local/global adjacency lives in dense LinkID arrays.
type Dragonfly struct {
	P, A, H int // terminals per router, routers per group, global links per router
	G       int // groups; A*H+1 (balanced)

	tab LinkTable

	hostUp []LinkID // per terminal: the up-link into its router

	// local[(g*A+i)*A+j] is the directed link router i -> j inside group g
	// (unset when i == j — no route reads the diagonal).
	local []LinkID

	// Per ordered group pair (g*G+t): the directed link from group g to
	// group t, the index (within g) of the router owning it, and the index
	// (within t) of the router it lands on. The diagonal is unset.
	globalOut   []LinkID
	globalOwner []int32
	globalEntry []int32
}

// NewDragonfly builds the balanced dragonfly with p terminals per router, a
// routers per group and h global links per router (g = a*h+1 groups,
// g*a*p terminals).
func NewDragonfly(p, a, h int) (*Dragonfly, error) {
	if p < 1 || a < 1 || h < 1 {
		return nil, fmt.Errorf("topology: non-positive dragonfly arity p=%d a=%d h=%d", p, a, h)
	}
	d := &Dragonfly{P: p, A: a, H: h, G: a*h + 1}
	// Node IDs follow construction order: router (g,i) at (g*a+i)*(p+1),
	// immediately followed by its p terminals.
	routerNode := func(g, i int) int32 { return int32((g*a + i) * (p + 1)) }

	// Routers and their terminals (host cable index = terminal index).
	d.hostUp = make([]LinkID, d.G*a*p)
	t := 0
	for g := 0; g < d.G; g++ {
		for i := 0; i < a; i++ {
			r := routerNode(g, i)
			for k := 0; k < p; k++ {
				d.hostUp[t] = d.tab.addCable(r+1+int32(k), r, LinkToSwitch|LinkUp)
				t++
			}
		}
	}
	// Local links: complete graph inside every group.
	d.local = make([]LinkID, d.G*a*a)
	for g := 0; g < d.G; g++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				fwd := d.tab.addCable(routerNode(g, i), routerNode(g, j), LinkFromSwitch|LinkToSwitch)
				d.local[(g*a+i)*a+j] = fwd
				d.local[(g*a+j)*a+i] = Reverse(fwd)
			}
		}
	}
	// Global links: slot s = i*h+k of group g reaches group (g+s+1) mod G;
	// with G = a*h+1 every unordered group pair gets exactly one cable. The
	// cable is created once, from the lower-numbered group.
	d.globalOut = make([]LinkID, d.G*d.G)
	d.globalOwner = make([]int32, d.G*d.G)
	d.globalEntry = make([]int32, d.G*d.G)
	for g := 0; g < d.G; g++ {
		for s := 0; s < a*h; s++ {
			tg := (g + s + 1) % d.G
			if g > tg {
				continue // created from the other side
			}
			// Slot of group tg that reaches back to g.
			st := (g - tg - 1 + d.G) % d.G
			fwd := d.tab.addCable(routerNode(g, s/h), routerNode(tg, st/h), LinkFromSwitch|LinkToSwitch)
			d.globalOut[g*d.G+tg] = fwd
			d.globalOwner[g*d.G+tg] = int32(s / h)
			d.globalEntry[g*d.G+tg] = int32(st / h)
			d.globalOut[tg*d.G+g] = Reverse(fwd)
			d.globalOwner[tg*d.G+g] = int32(st / h)
			d.globalEntry[tg*d.G+g] = int32(s / h)
		}
	}
	return d, nil
}

// Name describes the instance.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(p=%d,a=%d,h=%d,g=%d)", d.P, d.A, d.H, d.G)
}

// NumTerminals returns the terminal count (G*A*P).
func (d *Dragonfly) NumTerminals() int { return len(d.hostUp) }

// NumSwitches returns the router count (G*A).
func (d *Dragonfly) NumSwitches() int { return d.G * d.A }

// NumCables returns the physical cable count.
func (d *Dragonfly) NumCables() int { return d.tab.NumCables() }

// NumLinks returns the directed link count.
func (d *Dragonfly) NumLinks() int { return d.tab.Len() }

// Table returns the fabric's compact link table.
func (d *Dragonfly) Table() *LinkTable { return &d.tab }

// RoutingBytes returns the resident size of the flat adjacency arrays.
func (d *Dragonfly) RoutingBytes() int64 {
	return int64(len(d.hostUp))*4 + int64(len(d.local))*4 +
		int64(len(d.globalOut))*4 + int64(len(d.globalOwner))*4 + int64(len(d.globalEntry))*4
}

// HostLinkID returns the directed link from terminal t into its router.
func (d *Dragonfly) HostLinkID(t int) LinkID { return d.hostUp[t] }

// group and router locate terminal t's attachment point.
func (d *Dragonfly) group(t int) int  { return t / (d.A * d.P) }
func (d *Dragonfly) router(t int) int { return (t / d.P) % d.A }

// RouteIDsInto appends the path from src to dst, drawing the
// intermediate-group choice from rng for inter-group routes.
func (d *Dragonfly) RouteIDsInto(buf []LinkID, src, dst int, rng *rand.Rand) []LinkID {
	return d.route(buf, src, dst, d.drawGroup(src, dst, rng))
}

// drawGroup makes the one RNG draw of an inter-group route and returns the
// chosen intermediate group (the source group encodes "minimal"). Intra-group
// routes and nil RNGs draw nothing.
func (d *Dragonfly) drawGroup(src, dst int, rng *rand.Rand) int {
	gs := d.group(src)
	if gs == d.group(dst) || rng == nil {
		return gs
	}
	return rng.Intn(d.G)
}

// RouteDraws appends the picks RouteIDsInto would draw: exactly one Intn(G)
// for an inter-group route with a non-nil rng, nothing otherwise.
func (d *Dragonfly) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	gs := d.group(src)
	if src == dst || gs == d.group(dst) || rng == nil {
		return draws
	}
	return append(draws, rng.Intn(d.G))
}

// RouteIDsFromDraws appends the path a recorded draw sequence selects: an
// empty sequence is the minimal (or intra-group) route, a one-pick sequence
// names the intermediate group.
func (d *Dragonfly) RouteIDsFromDraws(buf []LinkID, src, dst int, draws []int) []LinkID {
	gi := d.group(src)
	if len(draws) > 0 {
		gi = draws[0]
	}
	return d.route(buf, src, dst, gi)
}

// route appends the path that detours through group gi (gi equal to either
// endpoint group degenerates to the minimal route).
func (d *Dragonfly) route(buf []LinkID, src, dst int, gi int) []LinkID {
	if src == dst {
		return buf
	}
	gs, gd := d.group(src), d.group(dst)
	buf = append(buf, d.hostUp[src])
	cur := d.router(src)
	if gs != gd {
		if gi != gs && gi != gd {
			buf, cur = d.hop(buf, gs, cur, gi)
			buf, cur = d.hop(buf, gi, cur, gd)
		} else {
			buf, cur = d.hop(buf, gs, cur, gd)
		}
	}
	if rd := d.router(dst); cur != rd {
		buf = append(buf, d.local[(gd*d.A+cur)*d.A+rd])
	}
	// Down-link of the destination terminal: its host cable's reverse.
	return append(buf, Reverse(d.hostUp[dst]))
}

// hop appends the (at most one local plus one global) links taking cur, a
// router index of group g, into group t, and returns the entry router index
// there.
func (d *Dragonfly) hop(buf []LinkID, g, cur, t int) ([]LinkID, int) {
	i := g*d.G + t
	if owner := int(d.globalOwner[i]); owner != cur {
		buf = append(buf, d.local[(g*d.A+cur)*d.A+owner])
	}
	return append(buf, d.globalOut[i]), int(d.globalEntry[i])
}
