package topology

import (
	"math/rand"
	"testing"
)

// TestRouteIDsIntoMatchesRouteIDs asserts the append variant produces exactly
// the same path as the allocating wrapper for the same RNG state, across
// random terminal pairs.
func TestRouteIDsIntoMatchesRouteIDs(t *testing.T) {
	topo := Paper()
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	buf := make([]LinkID, 0, 8)
	pick := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		src, dst := pick.Intn(252), pick.Intn(252)
		want := RouteIDs(topo, src, dst, rngA)
		buf = topo.RouteIDsInto(buf[:0], src, dst, rngB)
		if len(want) != len(buf) {
			t.Fatalf("pair (%d,%d): lengths differ: %d vs %d", src, dst, len(want), len(buf))
		}
		for j := range want {
			if want[j] != buf[j] {
				t.Fatalf("pair (%d,%d): hop %d differs", src, dst, j)
			}
		}
	}
}

// TestRouteIDsIntoNoAllocs is the hot-path regression test: routing into a
// buffer with sufficient capacity must not allocate.
func TestRouteIDsIntoNoAllocs(t *testing.T) {
	topo := Paper()
	buf := make([]LinkID, 0, 8)
	rng := rand.New(rand.NewSource(3))
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		buf = topo.RouteIDsInto(buf[:0], i%252, (i*31+17)%252, rng)
		i++
	})
	if allocs != 0 {
		t.Errorf("RouteIDsInto into a reused buffer allocated %.1f/op, want 0", allocs)
	}
}

// TestRouteCacheMatchesRoute asserts cached routing is bit-identical to
// uncached routing: same paths and, critically, the same RNG draw sequence
// (the cache must consume exactly the draws RouteIDsInto would).
func TestRouteCacheMatchesRoute(t *testing.T) {
	topo := Paper()
	cache := NewRouteCache(topo)
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	pick := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		src, dst := pick.Intn(252), pick.Intn(252)
		want := RouteIDs(topo, src, dst, rngA)
		got := cache.Route(src, dst, rngB)
		if len(want) != len(got) {
			t.Fatalf("pair (%d,%d): lengths differ: %d vs %d", src, dst, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("pair (%d,%d): hop %d differs", src, dst, j)
			}
		}
	}
	// Both RNGs must be in the same state afterwards: drawing once more from
	// each yields the same value.
	if a, b := rngA.Int63(), rngB.Int63(); a != b {
		t.Errorf("RNG states diverged after cached routing: %d vs %d", a, b)
	}
	if cache.Len() == 0 {
		t.Error("cache memoized no routes")
	}
}

// TestRouteCacheHitNoAllocs asserts steady-state cached routing is
// allocation-free once a route's draw has been memoized.
func TestRouteCacheHitNoAllocs(t *testing.T) {
	topo := Paper()
	cache := NewRouteCache(topo)
	// Deterministic routing (nil RNG) so every run hits the same key.
	i := 0
	warm := func() {
		cache.Route(i%252, (i*31+17)%252, nil)
		i++
	}
	for j := 0; j < 1000; j++ {
		warm()
	}
	i = 0
	if allocs := testing.AllocsPerRun(1000, warm); allocs != 0 {
		t.Errorf("cache hit allocated %.1f/op, want 0", allocs)
	}
}
