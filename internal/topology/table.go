package topology

// LinkID is the dense index of a directed link in a fabric's LinkTable.
// Routing, timing and energy accounting traffic in LinkIDs instead of link
// pointers: a path is a []LinkID, per-link state is a flat slice indexed by
// LinkID, and the per-hop cost of following a route is one int32 array read
// instead of a pointer chase. int32 bounds a fabric at ~2^31 directed links —
// three orders of magnitude above the 100k-endpoint machines the registry's
// big presets model.
type LinkID int32

// Reverse returns the opposite direction of the same cable. Every cable's two
// directed links are allocated adjacently (forward at an even ID, reverse at
// the following odd ID), so the pairing is pure arithmetic.
func Reverse(id LinkID) LinkID { return id ^ 1 }

// LinkKind is a bitset describing a directed link's endpoints and
// orientation. It replaces the old per-link Node pointers for every consumer
// that only asked "is this endpoint a switch?" or "is this an up-link?".
type LinkKind uint8

// LinkKind bits.
const (
	// LinkFromSwitch is set when the link's source is a switch (clear: a
	// terminal).
	LinkFromSwitch LinkKind = 1 << iota
	// LinkToSwitch is set when the link's destination is a switch.
	LinkToSwitch
	// LinkUp is set when the link ascends toward a higher level (host
	// up-links and fat-tree up-links; lateral links carry neither direction).
	LinkUp
)

// LinkTable is the compact per-fabric link representation: four flat arrays
// indexed by LinkID. Node IDs follow the fabric's construction order
// (terminals and switches share one dense ID space); Cable is shared by the
// two directions of one physical cable. The table is immutable after
// construction and shared by every consumer, so per-fabric memory is
// 13 bytes per directed link regardless of how many engines route over it.
type LinkTable struct {
	From  []int32    // source node ID per link
	To    []int32    // destination node ID per link
	Cable []int32    // physical cable index (shared by both directions)
	Kind  []LinkKind // endpoint/orientation bits
}

// Len returns the number of directed links.
func (t *LinkTable) Len() int { return len(t.From) }

// NumCables returns the physical cable count (two directed links each).
func (t *LinkTable) NumCables() int { return len(t.From) / 2 }

// IsUp reports whether id ascends toward a higher level.
func (t *LinkTable) IsUp(id LinkID) bool { return t.Kind[id]&LinkUp != 0 }

// SwitchToSwitch reports whether both endpoints of id are switches — the
// unmanaged links of the decomposed switch power model.
func (t *LinkTable) SwitchToSwitch(id LinkID) bool {
	return t.Kind[id]&(LinkFromSwitch|LinkToSwitch) == LinkFromSwitch|LinkToSwitch
}

// Bytes returns the resident size of the table's flat arrays, the dominant
// share of a fabric's compact memory (reported by `ibpower topos`).
func (t *LinkTable) Bytes() int64 {
	return int64(len(t.From))*4 + int64(len(t.To))*4 + int64(len(t.Cable))*4 + int64(len(t.Kind))
}

// addCable appends one physical cable as its two directed links — forward
// first (even LinkID), reverse second — and returns the forward LinkID. kind
// describes the forward direction; the reverse gets mirrored endpoint bits
// and never LinkUp.
func (t *LinkTable) addCable(from, to int32, kind LinkKind) LinkID {
	c := int32(len(t.From) / 2)
	id := LinkID(len(t.From))
	var rk LinkKind
	if kind&LinkFromSwitch != 0 {
		rk |= LinkToSwitch
	}
	if kind&LinkToSwitch != 0 {
		rk |= LinkFromSwitch
	}
	t.From = append(t.From, from, to)
	t.To = append(t.To, to, from)
	t.Cable = append(t.Cable, c, c)
	t.Kind = append(t.Kind, kind, rk)
	return id
}

// HostSwitch returns the node ID of terminal t's first-hop switch — the
// destination of its host up-link. Placement policies and the energy model
// group terminals by this ID.
func HostSwitch(f Fabric, t int) int32 {
	return f.Table().To[f.HostLinkID(t)]
}

// routingSizer is implemented by fabrics that carry routing tables beyond the
// LinkTable; CompactBytes adds their resident size to the memory report.
type routingSizer interface {
	RoutingBytes() int64
}

// CompactBytes approximates the resident memory of f's compact tables: the
// shared LinkTable plus any fabric-specific flat routing arrays.
func CompactBytes(f Fabric) int64 {
	b := f.Table().Bytes()
	if s, ok := f.(routingSizer); ok {
		b += s.RoutingBytes()
	}
	return b
}
