// Package topology builds interconnect fabrics and routes over them. The
// paper simulates a single Extended Generalized Fat Tree — XGFT(2;18,14;1,18),
// a two-level fat tree with 252 terminal nodes (Table II) — but the
// prediction mechanism is topology-agnostic, so the fabrics here are
// pluggable: XGFT fat trees, dragonflies and tori all implement the Fabric
// interface and register under names the CLI's -topo flag selects.
//
// Fabrics use a compact flat-array representation: directed links are dense
// LinkIDs into a shared LinkTable, node identity is arithmetic (mixed-radix
// digits, never pointers), and routing walks small per-level index arrays.
// This keeps an 8000-terminal preset at a few hundred kilobytes of resident
// tables and routing at a handful of array reads per hop.
//
// XGFT(h; m1..mh; w1..wh) has h switch levels above the terminal level 0.
// Every level-l node (l < h) has w_{l+1} parents and every level-l node
// (l >= 1) has m_l children. Terminals are compute nodes; the paper
// allocates one MPI process per node.
package topology

import (
	"fmt"
	"math/rand"
	"sync"
)

// XGFT is a built fat tree in flat-array form. Node IDs are dense: terminals
// first (0..T-1, in mixed-radix digit order with x_1 the fastest-varying
// digit), then switches level by level. A level-l node's local index packs
// its digits as xIdx*Y_l + yIdx where xIdx holds the down-digits (x_h..x_{l+1},
// x_{l+1} fastest) and yIdx the up-digits (y_l..y_1, y_1 fastest) with
// Y_l = w_1*...*w_l.
type XGFT struct {
	H    int   // number of switch levels
	M, W []int // child counts m_1..m_h and parent counts w_1..w_h

	count []int // nodes per level 0..H
	base  []int // first node ID per level 0..H
	tstr  []int // tstr[l-1] = m_1*...*m_{l-1}; digit x_l of terminal t = t/tstr[l-1] % m_l
	ylen  []int // ylen[l] = Y_l = w_1*...*w_l (ylen[0] = 1)

	tab LinkTable

	// Per-level routing arrays. up[l][n*W[l]+k] is the k-th up-link of the
	// node with local index n at level l (upTo its parent's local index at
	// level l+1); down[l][s*M[l-1]+c] is the down-link of level-l switch s
	// toward its child with digit x_l = c (downTo that child's local index).
	up     [][]LinkID
	upTo   [][]int32
	down   [][]LinkID
	downTo [][]int32
}

// New builds XGFT(h; m...; w...). len(m) and len(w) must equal h and all
// entries must be positive.
func New(h int, m, w []int) (*XGFT, error) {
	if h < 1 {
		return nil, fmt.Errorf("topology: height %d < 1", h)
	}
	if len(m) != h || len(w) != h {
		return nil, fmt.Errorf("topology: need %d m and w entries, got %d and %d", h, len(m), len(w))
	}
	for i := 0; i < h; i++ {
		if m[i] <= 0 || w[i] <= 0 {
			return nil, fmt.Errorf("topology: non-positive arity m[%d]=%d w[%d]=%d", i, m[i], i, w[i])
		}
	}
	t := &XGFT{H: h, M: append([]int(nil), m...), W: append([]int(nil), w...)}

	// Level populations and digit strides. Level l has X_l*Y_l nodes with
	// X_l = m_{l+1}*...*m_h and Y_l = w_1*...*w_l.
	t.count = make([]int, h+1)
	t.base = make([]int, h+1)
	t.tstr = make([]int, h)
	t.ylen = make([]int, h+1)
	t.ylen[0] = 1
	stride := 1
	for l := 1; l <= h; l++ {
		t.tstr[l-1] = stride
		stride *= m[l-1]
		t.ylen[l] = t.ylen[l-1] * w[l-1]
	}
	terms := stride // m_1*...*m_h
	t.count[0] = terms
	for l := 1; l <= h; l++ {
		x := 1
		for i := l; i < h; i++ {
			x *= m[i]
		}
		t.count[l] = x * t.ylen[l]
		t.base[l] = t.base[l-1] + t.count[l-1]
	}

	// Routing arrays.
	t.up = make([][]LinkID, h)
	t.upTo = make([][]int32, h)
	t.down = make([][]LinkID, h+1)
	t.downTo = make([][]int32, h+1)
	for l := 0; l < h; l++ {
		t.up[l] = make([]LinkID, t.count[l]*w[l])
		t.upTo[l] = make([]int32, t.count[l]*w[l])
	}
	for l := 1; l <= h; l++ {
		t.down[l] = make([]LinkID, t.count[l]*m[l-1])
		t.downTo[l] = make([]int32, t.count[l]*m[l-1])
	}

	// Wire level l-1 to level l: the child with digits (x_h..x_l | y_{l-1}..y_1)
	// connects to the level-l switch (x_h..x_{l+1} | y_l..y_1) for every y_l
	// in [0, w_l). Cables are created child-major, then y_l — terminals first,
	// then each switch level — so LinkIDs match the historical construction
	// order (forward/up at even IDs).
	for l := 1; l <= h; l++ {
		wl, ml := w[l-1], m[l-1]
		kind := LinkToSwitch | LinkUp
		if l > 1 {
			kind |= LinkFromSwitch
		}
		for child := 0; child < t.count[l-1]; child++ {
			yIdx := child % t.ylen[l-1]
			xIdx := child / t.ylen[l-1]
			px, c := xIdx/ml, xIdx%ml
			for yl := 0; yl < wl; yl++ {
				parent := px*t.ylen[l] + yl*t.ylen[l-1] + yIdx
				fwd := t.tab.addCable(int32(t.base[l-1]+child), int32(t.base[l]+parent), kind)
				t.up[l-1][child*wl+yl] = fwd
				t.upTo[l-1][child*wl+yl] = int32(parent)
				t.down[l][parent*ml+c] = Reverse(fwd)
				t.downTo[l][parent*ml+c] = int32(child)
			}
		}
	}
	return t, nil
}

var (
	paperOnce sync.Once
	paperTopo *XGFT
)

// Paper returns the paper's XGFT(2;18,14;1,18). The instance is built once
// and shared: an XGFT is immutable after New, so every replay engine (and
// concurrent sweep point) can route over the same fabric. Callers needing a
// private topology should call New directly.
func Paper() *XGFT {
	paperOnce.Do(func() {
		t, err := New(2, []int{18, 14}, []int{1, 18})
		if err != nil {
			panic(err)
		}
		paperTopo = t
	})
	return paperTopo
}

// Name describes the tree in XGFT(h; m...; w...) notation.
func (t *XGFT) Name() string {
	return fmt.Sprintf("xgft(%d;%s;%s)", t.H, digits(t.M), digits(t.W))
}

func digits(vs []int) string {
	b := make([]byte, 0, 3*len(vs))
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%d", v)
	}
	return string(b)
}

// NumTerminals returns the terminal count.
func (t *XGFT) NumTerminals() int { return t.count[0] }

// NumSwitches returns the total switch count.
func (t *XGFT) NumSwitches() int {
	n := 0
	for l := 1; l <= t.H; l++ {
		n += t.count[l]
	}
	return n
}

// SwitchesAtLevel returns the number of level-l switches (1 <= l <= H).
func (t *XGFT) SwitchesAtLevel(l int) int { return t.count[l] }

// NumCables returns the physical cable count.
func (t *XGFT) NumCables() int { return t.tab.NumCables() }

// NumLinks returns the directed link count.
func (t *XGFT) NumLinks() int { return t.tab.Len() }

// Table returns the fabric's compact link table.
func (t *XGFT) Table() *LinkTable { return &t.tab }

// RoutingBytes returns the resident size of the per-level routing arrays.
func (t *XGFT) RoutingBytes() int64 {
	var b int64
	for l := range t.up {
		b += int64(len(t.up[l]))*4 + int64(len(t.upTo[l]))*4
	}
	for l := range t.down {
		b += int64(len(t.down[l]))*4 + int64(len(t.downTo[l]))*4
	}
	return b
}

// HostLinkID returns the directed link from terminal i into its leaf switch.
func (t *XGFT) HostLinkID(i int) LinkID { return t.up[0][i*t.W[0]] }

// digit returns digit x_l of terminal term.
func (t *XGFT) digit(term, l int) int { return term / t.tstr[l-1] % t.M[l-1] }

// divergeLevel returns the smallest level L such that the down-digits of the
// two terminals agree above L; terminals in the same leaf subtree diverge at
// level 1, identical terminals at level 0.
func (t *XGFT) divergeLevel(a, b int) int {
	for l := t.H; l >= 1; l-- {
		if t.digit(a, l) != t.digit(b, l) {
			return l
		}
	}
	return 0
}

// RouteIDsInto appends the directed links of a path from terminal src to
// terminal dst: up to the lowest common ancestor level with a random choice
// among the parallel up-links (the paper's "random routing", Table II), then
// deterministically down. src == dst appends nothing. When buf has enough
// capacity no allocation occurs.
func (t *XGFT) RouteIDsInto(buf []LinkID, src, dst int, rng *rand.Rand) []LinkID {
	top := t.divergeLevel(src, dst)
	if top == 0 {
		return buf
	}
	cur := src
	for lvl := 0; lvl < top; lvl++ {
		fan := t.W[lvl]
		k := 0
		if fan > 1 && rng != nil {
			k = rng.Intn(fan)
		}
		i := cur*fan + k
		buf = append(buf, t.up[lvl][i])
		cur = int(t.upTo[lvl][i])
	}
	return t.descend(buf, cur, top, dst)
}

// descend appends the deterministic down path from the level-top switch with
// local index cur to terminal dst.
func (t *XGFT) descend(buf []LinkID, cur, top, dst int) []LinkID {
	for lvl := top; lvl > 0; lvl-- {
		i := cur*t.M[lvl-1] + t.digit(dst, lvl)
		buf = append(buf, t.down[lvl][i])
		cur = int(t.downTo[lvl][i])
	}
	return buf
}

// RouteDraws appends the up-link picks RouteIDsInto would draw from rng for
// (src, dst), consuming rng identically: one recorded pick per ascended
// level, with Intn consulted only when the fan-out exceeds one and rng is
// non-nil (pick 0 otherwise).
func (t *XGFT) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	top := t.divergeLevel(src, dst)
	for lvl := 0; lvl < top; lvl++ {
		pick := 0
		if t.W[lvl] > 1 && rng != nil {
			pick = rng.Intn(t.W[lvl])
		}
		draws = append(draws, pick)
	}
	return draws
}

// RouteIDsFromDraws appends the path a recorded up-link pick sequence
// selects: up through the drawn parents, then deterministically down to dst.
func (t *XGFT) RouteIDsFromDraws(buf []LinkID, src, dst int, draws []int) []LinkID {
	top := t.divergeLevel(src, dst)
	cur := src
	for lvl := 0; lvl < top; lvl++ {
		i := cur*t.W[lvl] + draws[lvl]
		buf = append(buf, t.up[lvl][i])
		cur = int(t.upTo[lvl][i])
	}
	return t.descend(buf, cur, top, dst)
}
