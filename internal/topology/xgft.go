// Package topology builds interconnect fabrics and routes over them. The
// paper simulates a single Extended Generalized Fat Tree — XGFT(2;18,14;1,18),
// a two-level fat tree with 252 terminal nodes (Table II) — but the
// prediction mechanism is topology-agnostic, so the fabrics here are
// pluggable: XGFT fat trees, dragonflies and tori all implement the Fabric
// interface and register under names the CLI's -topo flag selects.
//
// XGFT(h; m1..mh; w1..wh) has h switch levels above the terminal level 0.
// Every level-l node (l < h) has w_{l+1} parents and every level-l node
// (l >= 1) has m_l children. Terminals are compute nodes; the paper
// allocates one MPI process per node.
package topology

import (
	"fmt"
	"math/rand"
	"sync"
)

// NodeKind discriminates terminals from switches.
type NodeKind uint8

// Node kinds.
const (
	KindTerminal NodeKind = iota
	KindSwitch
)

// Node is a terminal or switch in the tree.
type Node struct {
	ID    int
	Kind  NodeKind
	Level int // 0 for terminals, 1..h for switches

	// Up[i] is the link to the i-th parent; Down[i] to the i-th child.
	Up   []*Link
	Down []*Link

	x []int // down-digits (x_h..x_{level+1}) — identifies the subtree
	y []int // up-digits (y_level..y_1)
}

// Link is a directed channel between adjacent nodes. Every physical cable is
// represented by two directed links that share a Cable index.
type Link struct {
	ID    int
	From  *Node
	To    *Node
	Cable int  // physical cable index (shared by both directions)
	IsUp  bool // true when To is the higher level
}

// XGFT is a built fat tree. It implements Fabric; the concrete type
// additionally exposes the level structure (Switches) and arities.
type XGFT struct {
	H         int   // number of switch levels
	M, W      []int // child counts m_1..m_h and parent counts w_1..w_h
	Terminals []*Node
	Switches  [][]*Node // Switches[l-1] holds level-l switches
	Cables    int

	links []*Link
}

// New builds XGFT(h; m...; w...). len(m) and len(w) must equal h and all
// entries must be positive.
func New(h int, m, w []int) (*XGFT, error) {
	if h < 1 {
		return nil, fmt.Errorf("topology: height %d < 1", h)
	}
	if len(m) != h || len(w) != h {
		return nil, fmt.Errorf("topology: need %d m and w entries, got %d and %d", h, len(m), len(w))
	}
	for i := 0; i < h; i++ {
		if m[i] <= 0 || w[i] <= 0 {
			return nil, fmt.Errorf("topology: non-positive arity m[%d]=%d w[%d]=%d", i, m[i], i, w[i])
		}
	}
	t := &XGFT{H: h, M: append([]int(nil), m...), W: append([]int(nil), w...)}

	nextID := 0
	mkNode := func(kind NodeKind, level int, x, y []int) *Node {
		n := &Node{ID: nextID, Kind: kind, Level: level,
			x: append([]int(nil), x...), y: append([]int(nil), y...)}
		nextID++
		return n
	}

	// Terminals: all digit tuples (x_h..x_1).
	for _, x := range tuples(m, h) {
		t.Terminals = append(t.Terminals, mkNode(KindTerminal, 0, x, nil))
	}
	// Switches per level l: x over (m_h..m_{l+1}), y over (w_l..w_1).
	t.Switches = make([][]*Node, h)
	for l := 1; l <= h; l++ {
		xs := tuples(m, h-l)  // digits x_h..x_{l+1}
		ys := tuplesLow(w, l) // digits y_l..y_1
		for _, x := range xs {
			for _, y := range ys {
				t.Switches[l-1] = append(t.Switches[l-1], mkNode(KindSwitch, l, x, y))
			}
		}
	}

	// Wire level l-1 to level l: a level-(l-1) node with digits
	// (x_h..x_l | y_{l-1}..y_1) connects to the level-l switch
	// (x_h..x_{l+1} | y_l..y_1) for every y_l in [0, w_l).
	index := make(map[string]*Node)
	for l := 1; l <= h; l++ {
		for _, sw := range t.Switches[l-1] {
			index[key(l, sw.x, sw.y)] = sw
		}
	}
	connect := func(child *Node, l int) error {
		// child is at level l-1; its x = (x_h..x_l), y = (y_{l-1}..y_1).
		px := child.x
		if len(px) > 0 {
			px = px[:len(px)-1] // drop x_l
		}
		for yl := 0; yl < t.W[l-1]; yl++ {
			py := append([]int{yl}, child.y...)
			parent, ok := index[key(l, px, py)]
			if !ok {
				return fmt.Errorf("topology: missing parent for node %d at level %d", child.ID, l)
			}
			cable := t.Cables
			t.Cables++
			up := &Link{ID: len(t.links), From: child, To: parent, Cable: cable, IsUp: true}
			t.links = append(t.links, up)
			down := &Link{ID: len(t.links), From: parent, To: child, Cable: cable, IsUp: false}
			t.links = append(t.links, down)
			child.Up = append(child.Up, up)
			parent.Down = append(parent.Down, down)
		}
		return nil
	}
	for _, n := range t.Terminals {
		if err := connect(n, 1); err != nil {
			return nil, err
		}
	}
	for l := 2; l <= h; l++ {
		for _, sw := range t.Switches[l-2] {
			if err := connect(sw, l); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

var (
	paperOnce sync.Once
	paperTopo *XGFT
)

// Paper returns the paper's XGFT(2;18,14;1,18). The instance is built once
// and shared: an XGFT is immutable after New, so every replay engine (and
// concurrent sweep point) can route over the same fabric. Callers needing a
// private topology should call New directly.
func Paper() *XGFT {
	paperOnce.Do(func() {
		t, err := New(2, []int{18, 14}, []int{1, 18})
		if err != nil {
			panic(err)
		}
		paperTopo = t
	})
	return paperTopo
}

// Name describes the tree in XGFT(h; m...; w...) notation.
func (t *XGFT) Name() string {
	return fmt.Sprintf("xgft(%d;%s;%s)", t.H, digits(t.M), digits(t.W))
}

func digits(vs []int) string {
	b := make([]byte, 0, 3*len(vs))
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%d", v)
	}
	return string(b)
}

// NumTerminals returns the terminal count.
func (t *XGFT) NumTerminals() int { return len(t.Terminals) }

// NumSwitches returns the total switch count.
func (t *XGFT) NumSwitches() int {
	n := 0
	for _, lvl := range t.Switches {
		n += len(lvl)
	}
	return n
}

// NumCables returns the physical cable count.
func (t *XGFT) NumCables() int { return t.Cables }

// Links returns all directed links, indexed by Link.ID.
func (t *XGFT) Links() []*Link { return t.links }

// HostLink returns the directed link from terminal i into its leaf switch.
func (t *XGFT) HostLink(i int) *Link { return t.Terminals[i].Up[0] }

// divergeLevel returns the smallest level L such that the down-digits of the
// two terminals agree above L; terminals in the same leaf subtree diverge at
// level 1, identical terminals at level 0.
func (t *XGFT) divergeLevel(a, b *Node) int {
	// Terminal x digits are (x_h..x_1): x[0] is the top digit x_h.
	for l := t.H; l >= 1; l-- {
		// digit x_l sits at index h-l.
		if a.x[t.H-l] != b.x[t.H-l] {
			return l
		}
	}
	return 0
}

// Route returns the directed links of a path from terminal src to terminal
// dst: up to the lowest common ancestor level with a random choice among the
// parallel up-links (the paper's "random routing", Table II), then
// deterministically down. src == dst yields an empty path.
func (t *XGFT) Route(src, dst int, rng *rand.Rand) []*Link {
	return t.RouteInto(nil, src, dst, rng)
}

// RouteInto is Route appending into a caller-supplied buffer: the path links
// are appended to buf and the extended slice is returned. When buf has enough
// capacity no allocation occurs. The RNG draw sequence is identical to
// Route's, so both variants produce the same path for the same RNG state.
func (t *XGFT) RouteInto(buf []*Link, src, dst int, rng *rand.Rand) []*Link {
	a, b := t.Terminals[src], t.Terminals[dst]
	top := t.divergeLevel(a, b)
	if top == 0 {
		return buf
	}
	cur := a
	for cur.Level < top {
		var up *Link
		if len(cur.Up) == 1 || rng == nil {
			up = cur.Up[0]
		} else {
			up = cur.Up[rng.Intn(len(cur.Up))]
		}
		buf = append(buf, up)
		cur = up.To
	}
	for cur.Level > 0 {
		// Choose the child whose subtree contains dst: digit x_l of dst
		// selects among the m_l children, combined with matching y digits.
		next := t.childToward(cur, b)
		buf = append(buf, next)
		cur = next.To
	}
	return buf
}

// RouteDraws appends the up-link picks RouteInto would draw from rng for
// (src, dst), consuming rng identically: one recorded pick per ascended
// level, with Intn consulted only when the fan-out exceeds one and rng is
// non-nil (pick 0 otherwise).
func (t *XGFT) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	a, b := t.Terminals[src], t.Terminals[dst]
	top := t.divergeLevel(a, b)
	cur := a
	for cur.Level < top {
		pick := 0
		if len(cur.Up) > 1 && rng != nil {
			pick = rng.Intn(len(cur.Up))
		}
		draws = append(draws, pick)
		cur = cur.Up[pick].To
	}
	return draws
}

// RouteFromDraws appends the path a recorded up-link pick sequence selects:
// up through the drawn parents, then deterministically down to dst.
func (t *XGFT) RouteFromDraws(buf []*Link, src, dst int, draws []int) []*Link {
	a, b := t.Terminals[src], t.Terminals[dst]
	top := t.divergeLevel(a, b)
	cur := a
	for i := 0; cur.Level < top; i++ {
		up := cur.Up[draws[i]]
		buf = append(buf, up)
		cur = up.To
	}
	for cur.Level > 0 {
		next := t.childToward(cur, b)
		buf = append(buf, next)
		cur = next.To
	}
	return buf
}

// childToward returns cur's down-link leading toward terminal dst.
func (t *XGFT) childToward(cur *Node, dst *Node) *Link {
	l := cur.Level
	want := dst.x[t.H-l] // digit x_l of dst
	for _, dn := range cur.Down {
		child := dn.To
		if child.x[t.H-l] != want {
			continue
		}
		// y digits of the child must be a suffix of cur's y digits.
		if suffixMatch(cur.y, child.y) {
			return dn
		}
	}
	panic(fmt.Sprintf("topology: no child of switch %d toward terminal %d", cur.ID, dst.ID))
}

// suffixMatch reports whether child y-digits equal the tail of parent
// y-digits (parent has one extra leading digit).
func suffixMatch(parent, child []int) bool {
	if len(parent) != len(child)+1 {
		return false
	}
	for i := range child {
		if parent[i+1] != child[i] {
			return false
		}
	}
	return true
}

func key(level int, x, y []int) string {
	b := make([]byte, 0, 2+2*len(x)+2*len(y))
	b = append(b, byte(level), '|')
	for _, v := range x {
		b = append(b, byte(v), ',')
	}
	b = append(b, '|')
	for _, v := range y {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

// tuples enumerates digit tuples (x_h..x_{h-n+1}) over arities m (indexed
// m[i] = m_{i+1}), i.e. the top n digits.
func tuples(m []int, n int) [][]int {
	h := len(m)
	out := [][]int{{}}
	for d := 0; d < n; d++ {
		arity := m[h-1-d] // digit x_{h-d}
		var next [][]int
		for _, pre := range out {
			for v := 0; v < arity; v++ {
				next = append(next, append(append([]int(nil), pre...), v))
			}
		}
		out = next
	}
	return out
}

// tuplesLow enumerates (y_l..y_1) over arities w (w[i] = w_{i+1}).
func tuplesLow(w []int, l int) [][]int {
	out := [][]int{{}}
	for d := l - 1; d >= 0; d-- {
		arity := w[d]
		var next [][]int
		for _, pre := range out {
			for v := 0; v < arity; v++ {
				next = append(next, append(append([]int(nil), pre...), v))
			}
		}
		out = next
	}
	return out
}
