package topology

import "math/rand"

// Packing limits for cached route keys: up to maxCachedDraws picks of
// drawBits bits each, packed into a uint64. A draw sequence that does not
// fit — more draws, or a pick too large for its field — is routed without
// memoization rather than risk two sequences colliding on one key. The
// paper's XGFT(2;18,14;1,18) uses a single one-byte draw; the dragonfly's
// intermediate-group draw (Intn(65) even on dragonfly-big) and the XGFT(3;...)
// per-level draws fit comfortably. A synthetic fabric with fan-out >= 256
// simply routes uncached — see TestRouteCacheHighRadixUncached.
const (
	maxCachedDraws = 8
	drawBits       = 8
	maxDraw        = 1<<drawBits - 1
)

// Cache geometry. Entries spread over a fixed power-of-two number of shards
// by key hash; each shard is independently size-bounded and runs its own
// clock (second-chance) eviction, so the scan cost of one eviction is bounded
// by the shard, not the cache. DefaultCacheEntries bounds a cache at ~64k
// routes — about 3 MB of paths on an 8k-terminal fat tree — where the old
// unbounded map would grow with the full (src, dst, draws) product
// (xgft3-big alone has 8000*8000*400 potential keys).
const (
	cacheShards         = 16
	DefaultCacheEntries = 1 << 16
)

// routeKey identifies a route by its endpoints and the packed sequence of
// routing draws made for it. The draw count is part of the key, so two
// sequences of different lengths can never alias; within one length the
// fixed-width fields make packing injective. Given the same draws, the path
// is a pure function of (src, dst), so equal keys always map to the
// identical path.
type routeKey struct {
	src, dst int32
	n        int32
	choice   uint64
}

// shard spreads keys over the shard array with a cheap multiplicative hash.
func (k routeKey) shard() int {
	h := uint64(uint32(k.src))*0x9E3779B1 ^ uint64(uint32(k.dst))*0x85EBCA77 ^
		uint64(uint32(k.n)) ^ k.choice*0xC2B2AE3D
	h ^= h >> 29
	return int(h & (cacheShards - 1))
}

// packDraws packs a draw sequence into a fixed-width key, reporting whether
// it fits (at most maxCachedDraws picks, each at most maxDraw).
func packDraws(draws []int) (uint64, bool) {
	if len(draws) > maxCachedDraws {
		return 0, false
	}
	var key uint64
	for _, p := range draws {
		if p < 0 || p > maxDraw {
			return 0, false
		}
		key = key<<drawBits | uint64(p)
	}
	return key, true
}

// cacheShard is one clock ring of memoized routes: parallel slot arrays plus
// an index map. Evicted slots keep their path's backing array (truncated to
// length zero), so steady-state churn re-fills storage instead of allocating.
type cacheShard struct {
	index map[routeKey]int32
	keys  []routeKey
	paths [][]LinkID
	ref   []bool
	hand  int32
}

// RouteCache memoizes routes per (src, dst, routing-draw sequence) so that
// steady-state routing performs no allocation and no path walk: the cache
// consumes the RNG exactly as the fabric's RouteIDsInto does (same number of
// Intn calls in the same order, so timings driven by the shared RNG stay
// bit-identical), then returns the memoized path for that draw.
//
// The cache is size-bounded: entries spread over hash shards and each shard
// evicts with a second-chance clock once full, so a 10k-terminal fabric's
// (src, dst, draws) product cannot grow the cache without bound. Eviction
// never touches the RNG contract — draws are consumed before the lookup, and
// a miss (fresh or re-computed after eviction) rebuilds the identical path
// from the recorded draws.
//
// Returned paths are read-only views into cache slots: they are valid until
// a later Route call evicts or recycles the slot, so callers must consume
// (or copy) a path before routing again. A RouteCache is not safe for
// concurrent use — use one per replay engine, like the RNG it consumes.
type RouteCache struct {
	f          Fabric
	shards     [cacheShards]cacheShard
	shardCap   int
	draws      []int    // scratch for RouteDraws; reused across calls
	uncachable []LinkID // scratch path for draw sequences that don't pack

	hits, misses, evictions int64
}

// NewRouteCache returns an empty route cache over f bounded at
// DefaultCacheEntries memoized routes.
func NewRouteCache(f Fabric) *RouteCache {
	return NewRouteCacheSize(f, DefaultCacheEntries)
}

// NewRouteCacheSize returns an empty route cache over f bounded at roughly
// entries memoized routes (rounded up to a whole number per shard).
func NewRouteCacheSize(f Fabric, entries int) *RouteCache {
	per := (entries + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &RouteCache{
		f:        f,
		shardCap: per,
		draws:    make([]int, 0, maxCachedDraws),
	}
	for i := range c.shards {
		c.shards[i].index = make(map[routeKey]int32)
	}
	return c
}

// Fabric returns the fabric the cache routes over.
func (c *RouteCache) Fabric() Fabric { return c.f }

// Len returns the number of memoized routes.
func (c *RouteCache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].index)
	}
	return n
}

// Cap returns the maximum number of memoized routes.
func (c *RouteCache) Cap() int { return c.shardCap * cacheShards }

// Stats returns cumulative hit/miss/eviction counters (misses include
// re-computation after eviction; uncachable draw sequences count as misses).
func (c *RouteCache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Route returns the directed links of a path from terminal src to terminal
// dst, drawing the random routing choices from rng exactly as the fabric's
// RouteIDsInto would. The returned slice is shared with the cache and valid
// until the next Route call: callers must not mutate or retain it.
// src == dst yields an empty path.
func (c *RouteCache) Route(src, dst int, rng *rand.Rand) []LinkID {
	c.draws = c.f.RouteDraws(c.draws[:0], src, dst, rng)
	choice, ok := packDraws(c.draws)
	if !ok {
		// The sequence does not fit the packed key: compute the path for
		// these draws directly instead of caching under an ambiguous key.
		c.misses++
		c.uncachable = c.f.RouteIDsFromDraws(c.uncachable[:0], src, dst, c.draws)
		return c.uncachable
	}
	k := routeKey{src: int32(src), dst: int32(dst), n: int32(len(c.draws)), choice: choice}
	sh := &c.shards[k.shard()]
	if slot, ok := sh.index[k]; ok {
		c.hits++
		sh.ref[slot] = true
		return sh.paths[slot]
	}
	c.misses++
	var slot int32
	if len(sh.keys) < c.shardCap {
		slot = int32(len(sh.keys))
		sh.keys = append(sh.keys, k)
		sh.paths = append(sh.paths, nil)
		sh.ref = append(sh.ref, false)
	} else {
		// Second-chance clock: skip (and clear) referenced slots, evict the
		// first unreferenced one. Terminates within two sweeps.
		for sh.ref[sh.hand] {
			sh.ref[sh.hand] = false
			sh.hand = (sh.hand + 1) % int32(len(sh.keys))
		}
		slot = sh.hand
		sh.hand = (sh.hand + 1) % int32(len(sh.keys))
		delete(sh.index, sh.keys[slot])
		sh.keys[slot] = k
		c.evictions++
	}
	sh.paths[slot] = c.f.RouteIDsFromDraws(sh.paths[slot][:0], src, dst, c.draws)
	sh.index[k] = slot
	return sh.paths[slot]
}
