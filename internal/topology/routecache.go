package topology

import "math/rand"

// Packing limits for cached route keys: up to maxCachedDraws picks of
// drawBits bits each, packed into a uint64. A draw sequence that does not
// fit — more draws, or a pick too large for its field — is routed without
// memoization rather than risk two sequences colliding on one key. The
// paper's XGFT(2;18,14;1,18) uses a single one-byte draw; the dragonfly's
// intermediate-group draw and the XGFT(3;...) per-level draws fit comfortably.
const (
	maxCachedDraws = 8
	drawBits       = 8
	maxDraw        = 1<<drawBits - 1
)

// routeKey identifies a route by its endpoints and the packed sequence of
// routing draws made for it. The draw count is part of the key, so two
// sequences of different lengths can never alias; within one length the
// fixed-width fields make packing injective. Given the same draws, the path
// is a pure function of (src, dst), so equal keys always map to the
// identical path.
type routeKey struct {
	src, dst int
	n        int
	choice   uint64
}

// packDraws packs a draw sequence into a fixed-width key, reporting whether
// it fits (at most maxCachedDraws picks, each at most maxDraw).
func packDraws(draws []int) (uint64, bool) {
	if len(draws) > maxCachedDraws {
		return 0, false
	}
	var key uint64
	for _, p := range draws {
		if p < 0 || p > maxDraw {
			return 0, false
		}
		key = key<<drawBits | uint64(p)
	}
	return key, true
}

// RouteCache memoizes routes per (src, dst, routing-draw sequence) so that
// steady-state routing performs no allocation and no path walk: the cache
// consumes the RNG exactly as the fabric's RouteInto does (same number of
// Intn calls in the same order, so timings driven by the shared RNG stay
// bit-identical), then returns the memoized path for that draw.
//
// Returned paths are shared and must be treated as read-only; they remain
// valid for the lifetime of the cache. A RouteCache is not safe for
// concurrent use — use one per replay engine, like the RNG it consumes.
type RouteCache struct {
	f     Fabric
	m     map[routeKey][]*Link
	draws []int // scratch for RouteDraws; reused across calls
}

// NewRouteCache returns an empty route cache over f.
func NewRouteCache(f Fabric) *RouteCache {
	return &RouteCache{
		f:     f,
		m:     make(map[routeKey][]*Link),
		draws: make([]int, 0, maxCachedDraws),
	}
}

// Fabric returns the fabric the cache routes over.
func (c *RouteCache) Fabric() Fabric { return c.f }

// Len returns the number of memoized routes.
func (c *RouteCache) Len() int { return len(c.m) }

// Route returns the directed links of a path from terminal src to terminal
// dst, drawing the random routing choices from rng exactly as the fabric's
// RouteInto would. The returned slice is shared with the cache: callers must
// not mutate it. src == dst yields an empty path.
func (c *RouteCache) Route(src, dst int, rng *rand.Rand) []*Link {
	c.draws = c.f.RouteDraws(c.draws[:0], src, dst, rng)
	choice, ok := packDraws(c.draws)
	if !ok {
		// The sequence does not fit the packed key: compute the path for
		// these draws directly instead of caching under an ambiguous key.
		return c.f.RouteFromDraws(nil, src, dst, c.draws)
	}
	k := routeKey{src: src, dst: dst, n: len(c.draws), choice: choice}
	if path, ok := c.m[k]; ok {
		return path
	}
	path := c.f.RouteFromDraws(nil, src, dst, c.draws)
	c.m[k] = path
	return path
}
