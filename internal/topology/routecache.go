package topology

import "math/rand"

// maxCachedDraws bounds how many up-link choices a cached route may encode:
// one byte per switch level, packed into a uint64. Fabrics taller than that,
// or with more than 256 parallel up-links per node, bypass the cache; the
// paper's XGFT(2;18,14;1,18) uses a single one-byte draw.
const maxCachedDraws = 8

// routeKey identifies a route by its endpoints and the packed sequence of
// up-link choices drawn for it. Given the same draws, the path is a pure
// function of (src, dst), so equal keys always map to the identical path.
type routeKey struct {
	src, dst int
	choice   uint64
}

// RouteCache memoizes routes per (src, dst, up-link-choice sequence) so that
// steady-state routing performs no allocation and no down-walk: the cache
// draws from the RNG exactly as XGFT.Route does (same number of Intn calls in
// the same order, so timings driven by the shared RNG stay bit-identical),
// then returns the memoized path for that draw.
//
// Returned paths are shared and must be treated as read-only; they remain
// valid for the lifetime of the cache. A RouteCache is not safe for
// concurrent use — use one per replay engine, like the RNG it consumes.
type RouteCache struct {
	t      *XGFT
	m      map[routeKey][]*Link
	bypass bool
}

// NewRouteCache returns an empty route cache over t.
func NewRouteCache(t *XGFT) *RouteCache {
	bypass := t.H > maxCachedDraws
	if !bypass {
		// An up-link fan-out beyond one byte would overflow the packed
		// choice encoding; such fabrics route without memoization.
		for _, n := range t.Terminals {
			if len(n.Up) > 256 {
				bypass = true
			}
		}
		for l := 0; l < t.H-1 && !bypass; l++ {
			for _, sw := range t.Switches[l] {
				if len(sw.Up) > 256 {
					bypass = true
				}
			}
		}
	}
	return &RouteCache{t: t, m: make(map[routeKey][]*Link), bypass: bypass}
}

// Topology returns the fabric the cache routes over.
func (c *RouteCache) Topology() *XGFT { return c.t }

// Len returns the number of memoized routes.
func (c *RouteCache) Len() int { return len(c.m) }

// Route returns the directed links of a path from terminal src to terminal
// dst, drawing the random up-link choices from rng exactly as XGFT.Route
// would. The returned slice is shared with the cache: callers must not
// mutate it. src == dst yields an empty path.
func (c *RouteCache) Route(src, dst int, rng *rand.Rand) []*Link {
	if c.bypass {
		return c.t.RouteInto(nil, src, dst, rng)
	}
	a, b := c.t.Terminals[src], c.t.Terminals[dst]
	top := c.t.divergeLevel(a, b)
	if top == 0 {
		return nil
	}
	// Walk up, drawing the choices Route would draw and recording the chosen
	// links; the walk itself is allocation-free (fixed-size scratch).
	var ups [maxCachedDraws]*Link
	var choice uint64
	nup := 0
	cur := a
	for cur.Level < top {
		pick := 0
		if len(cur.Up) > 1 && rng != nil {
			pick = rng.Intn(len(cur.Up))
		}
		up := cur.Up[pick]
		ups[nup] = up
		choice = choice<<8 | uint64(pick)
		nup++
		cur = up.To
	}
	k := routeKey{src: src, dst: dst, choice: choice}
	if path, ok := c.m[k]; ok {
		return path
	}
	path := make([]*Link, 0, nup+top)
	path = append(path, ups[:nup]...)
	for cur.Level > 0 {
		next := c.t.childToward(cur, b)
		path = append(path, next)
		cur = next.To
	}
	c.m[k] = path
	return path
}
