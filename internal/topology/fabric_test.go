package topology

import (
	"math/rand"
	"testing"

	"ibpower/internal/registrytest"
)

// TestRegistryPresets asserts every preset builds, satisfies the size floor
// for the evaluation grid (up to 128 processes), and is memoized.
func TestRegistryPresets(t *testing.T) {
	names := Names()
	for _, want := range []string{"xgft", "xgft3", "dragonfly", "torus2d", "torus3d", "xgft3-big", "dragonfly-big"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("preset %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		f, err := Named(n)
		if err != nil {
			t.Fatalf("Named(%q): %v", n, err)
		}
		if f.NumTerminals() < 128 {
			t.Errorf("%s: %d terminals, want >= 128 for the evaluation grid", n, f.NumTerminals())
		}
		if again, _ := Named(n); again != f {
			t.Errorf("%s: Named returned a different instance on second lookup", n)
		}
		if f.NumLinks() != 2*f.NumCables() {
			t.Errorf("%s: %d directed links, want %d (2 per cable)", n, f.NumLinks(), 2*f.NumCables())
		}
		if tab := f.Table(); tab.Len() != f.NumLinks() {
			t.Errorf("%s: table has %d links, NumLinks reports %d", n, tab.Len(), f.NumLinks())
		}
	}
	if f, err := Named(""); err != nil || f != MustNamed(DefaultFabric) {
		t.Errorf("empty name must resolve to the default fabric (err=%v)", err)
	}
	if MustNamed(DefaultFabric).(*XGFT) != Paper() {
		t.Error("default fabric is not the shared paper instance")
	}
}

// TestRegistryContract runs the shared registry property test. The
// throwaway entries it registers build the paper fabric, so the structural
// sweeps below that iterate Names() keep passing over them.
func TestRegistryContract(t *testing.T) {
	registrytest.Run(t, registrytest.Registry{
		Kind:    "fabric",
		Default: DefaultFabric,
		Names:   Names,
		Check:   CheckRegistered,
		RegisterValid: func(name string) {
			Register(name, func() (Fabric, error) { return Paper(), nil })
		},
		RegisterNil: func(name string) { Register(name, nil) },
	})
}

// TestCableClosedForms pins each preset's cable count to its closed form —
// including the supercomputer-scale presets, whose structure is checked here
// in closed form rather than by exhaustive walks.
func TestCableClosedForms(t *testing.T) {
	cases := []struct {
		name      string
		terminals int
		cables    int
	}{
		// XGFT(2;18,14;1,18): 252 host + 14*18 leaf-top.
		{"xgft", 252, 252 + 14*18},
		// XGFT(3;6,6,4;1,4,4): 144 host + 24 L1-switches*4 + 16 L2-switches*4.
		{"xgft3", 144, 144 + 24*4 + 16*4},
		// Dragonfly(p=4,a=4,h=2): 9 groups; 144 host + 9*C(4,2) local + C(9,2) global.
		{"dragonfly", 144, 144 + 9*6 + 36},
		// 12x12 torus: 144 host + 144 routers * 2 dimensions.
		{"torus2d", 144, 144 + 144*2},
		// 6x6x4 torus: 144 host + 144 routers * 3 dimensions.
		{"torus3d", 144, 144 + 144*3},
		// XGFT(3;20,20,20;1,20,20): full bisection — 8000 host + 400 L1*20 +
		// 400 L2*20.
		{"xgft3-big", 8000, 8000 + 400*20 + 400*20},
		// Dragonfly(p=8,a=16,h=4): 65 groups; 8320 host + 65*C(16,2) local +
		// C(65,2) global.
		{"dragonfly-big", 8320, 8320 + 65*120 + 65*64/2},
	}
	for _, c := range cases {
		f := MustNamed(c.name)
		if got := f.NumTerminals(); got != c.terminals {
			t.Errorf("%s: terminals = %d, want %d", c.name, got, c.terminals)
		}
		if got := f.NumCables(); got != c.cables {
			t.Errorf("%s: cables = %d, want %d", c.name, got, c.cables)
		}
	}
}

// TestBigPresetSwitchCounts pins the big presets' switch populations and
// host-link wiring in closed form.
func TestBigPresetSwitchCounts(t *testing.T) {
	xg := MustNamed("xgft3-big").(*XGFT)
	if xg.NumSwitches() != 1200 {
		t.Errorf("xgft3-big: switches = %d, want 1200", xg.NumSwitches())
	}
	for l := 1; l <= 3; l++ {
		if got := xg.SwitchesAtLevel(l); got != 400 {
			t.Errorf("xgft3-big: level-%d switches = %d, want 400", l, got)
		}
	}
	df := MustNamed("dragonfly-big").(*Dragonfly)
	if df.NumSwitches() != 65*16 {
		t.Errorf("dragonfly-big: routers = %d, want %d", df.NumSwitches(), 65*16)
	}
	// 20 terminals per leaf switch on the fat tree, 8 per dragonfly router.
	leaves := map[int32]int{}
	for i := 0; i < xg.NumTerminals(); i++ {
		leaves[HostSwitch(xg, i)]++
	}
	for sw, n := range leaves {
		if n != 20 {
			t.Fatalf("xgft3-big: leaf switch %d hosts %d terminals, want 20", sw, n)
		}
	}
}

// checkPath asserts path is a valid adjacent-link walk from terminal src to
// terminal dst over f's own link table.
func checkPath(t *testing.T, f Fabric, src, dst int, path []LinkID) {
	t.Helper()
	tab := f.Table()
	if src == dst {
		if len(path) != 0 {
			t.Fatalf("%s: self route %d has %d links, want 0", f.Name(), src, len(path))
		}
		return
	}
	if len(path) == 0 {
		t.Fatalf("%s: empty route %d->%d", f.Name(), src, dst)
	}
	if tab.From[path[0]] != tab.From[f.HostLinkID(src)] {
		t.Fatalf("%s: route %d->%d does not start at src terminal", f.Name(), src, dst)
	}
	if tab.To[path[len(path)-1]] != tab.From[f.HostLinkID(dst)] {
		t.Fatalf("%s: route %d->%d does not end at dst terminal", f.Name(), src, dst)
	}
	cur := tab.From[path[0]]
	for i, l := range path {
		if l < 0 || int(l) >= tab.Len() {
			t.Fatalf("%s: route %d->%d hop %d is not a fabric link", f.Name(), src, dst, i)
		}
		if tab.From[l] != cur {
			t.Fatalf("%s: route %d->%d discontiguous at hop %d", f.Name(), src, dst, i)
		}
		if i < len(path)-1 && tab.Kind[l]&LinkToSwitch == 0 {
			t.Fatalf("%s: route %d->%d passes through terminal %d mid-path", f.Name(), src, dst, tab.To[l])
		}
		cur = tab.To[l]
	}
}

// TestRouteValidityAllFabrics is the cross-fabric structural property: every
// route over every registered fabric — the 8k-terminal presets included — is
// a valid adjacent-link path from src to dst, with and without random
// routing. Sampled pairs keep it fast enough for plain `go test`.
func TestRouteValidityAllFabrics(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		rng := rand.New(rand.NewSource(7))
		pick := rand.New(rand.NewSource(13))
		n := f.NumTerminals()
		for i := 0; i < 400; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			checkPath(t, f, src, dst, f.RouteIDsInto(nil, src, dst, rng))
			checkPath(t, f, src, dst, f.RouteIDsInto(nil, src, dst, nil))
		}
	}
}

// TestXGFT3UpDownInvariant asserts three-level routes ascend then descend —
// never up again after the first down link.
func TestXGFT3UpDownInvariant(t *testing.T) {
	for _, name := range []string{"xgft3", "xgft3-big"} {
		f := MustNamed(name).(*XGFT)
		tab := f.Table()
		rng := rand.New(rand.NewSource(3))
		pick := rand.New(rand.NewSource(17))
		n := f.NumTerminals()
		for i := 0; i < 400; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			if src == dst {
				continue
			}
			path := f.RouteIDsInto(nil, src, dst, rng)
			descending := false
			for j, l := range path {
				if tab.IsUp(l) && descending {
					t.Fatalf("%s: route %d->%d goes up at hop %d after descending", name, src, dst, j)
				}
				if !tab.IsUp(l) {
					descending = true
				}
			}
		}
	}
}

// TestDragonflyInvariants asserts dragonfly routes — on the small and the
// 8k-terminal preset — use at most two global hops (minimal or one Valiant
// detour) and that random intermediate-group routing spreads traffic over
// the groups.
func TestDragonflyInvariants(t *testing.T) {
	for _, name := range []string{"dragonfly", "dragonfly-big"} {
		f := MustNamed(name).(*Dragonfly)
		tab := f.Table()
		rng := rand.New(rand.NewSource(5))
		pick := rand.New(rand.NewSource(23))
		// Routers occupy node IDs at multiples of P+1; group = router/A.
		groupOfNode := func(n int32) int { return int(n) / (f.P + 1) / f.A }
		isGlobal := func(l LinkID) bool {
			return tab.SwitchToSwitch(l) && groupOfNode(tab.From[l]) != groupOfNode(tab.To[l])
		}
		globalsUsed := map[int32]bool{}
		n := f.NumTerminals()
		for i := 0; i < 600; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			if src == dst {
				continue
			}
			path := f.RouteIDsInto(nil, src, dst, rng)
			globals := 0
			for _, l := range path {
				if isGlobal(l) {
					globals++
				}
			}
			if globals > 2 {
				t.Fatalf("%s: route %d->%d crossed %d global links, want <= 2", name, src, dst, globals)
			}
			if f.group(src) != f.group(dst) {
				if globals == 0 {
					t.Fatalf("%s: inter-group route %d->%d used no global link", name, src, dst)
				}
				globals = 0
				minimal := f.RouteIDsInto(nil, src, dst, nil)
				for _, l := range minimal {
					if isGlobal(l) {
						globals++
					}
				}
				if globals != 1 {
					t.Fatalf("%s: minimal route %d->%d crossed %d global links, want 1", name, src, dst, globals)
				}
			}
			for _, l := range path {
				if isGlobal(l) {
					globalsUsed[tab.Cable[l]] = true
				}
			}
		}
		if len(globalsUsed) < 10 {
			t.Errorf("%s: random intermediate groups exercised only %d global cables", name, len(globalsUsed))
		}
	}
}

// TestTorusDimensionOrder asserts torus routes correct dimensions strictly
// in order, one ±1 ring step at a time along the shorter arc, and are fully
// deterministic.
func TestTorusDimensionOrder(t *testing.T) {
	f := MustNamed("torus3d").(*Torus)
	tab := f.Table()
	pick := rand.New(rand.NewSource(29))
	coords := func(r int) []int {
		c := make([]int, len(f.Dims))
		for d := range f.Dims {
			c[d] = (r / f.stride[d]) % f.Dims[d]
		}
		return c
	}
	// Routers occupy node IDs at multiples of P+1.
	routerOf := func(n int32) int { return int(n) / (f.P + 1) }
	for i := 0; i < 400; i++ {
		src, dst := pick.Intn(144), pick.Intn(144)
		if src == dst {
			continue
		}
		path := f.RouteIDsInto(nil, src, dst, rand.New(rand.NewSource(int64(i))))
		if again := f.RouteIDsInto(nil, src, dst, nil); len(again) != len(path) {
			t.Fatalf("route %d->%d depends on the RNG", src, dst)
		}
		// Interior hops are router->router ring steps.
		highest := 0
		expectedLen := 2
		sc, dc := coords(src/f.P), coords(dst/f.P)
		for d := range f.Dims {
			delta := (dc[d] - sc[d] + f.Dims[d]) % f.Dims[d]
			if delta > f.Dims[d]-delta {
				delta = f.Dims[d] - delta
			}
			expectedLen += delta
		}
		if len(path) != expectedLen {
			t.Fatalf("route %d->%d has %d links, want %d (shortest arcs)", src, dst, len(path), expectedLen)
		}
		for _, l := range path[1 : len(path)-1] {
			a, b := coords(routerOf(tab.From[l])), coords(routerOf(tab.To[l]))
			changed := -1
			for d := range a {
				if a[d] != b[d] {
					if changed >= 0 {
						t.Fatalf("route %d->%d: hop changes two dimensions", src, dst)
					}
					changed = d
					diff := (b[d] - a[d] + f.Dims[d]) % f.Dims[d]
					if diff != 1 && diff != f.Dims[d]-1 {
						t.Fatalf("route %d->%d: hop jumps %d in dimension %d", src, dst, diff, d)
					}
				}
			}
			if changed < 0 {
				t.Fatalf("route %d->%d: hop changes no dimension", src, dst)
			}
			if changed < highest {
				t.Fatalf("route %d->%d: dimension %d corrected after dimension %d", src, dst, changed, highest)
			}
			highest = changed
		}
	}
}

// TestRouteCacheMatchesAllFabrics asserts cached routing over every
// registered fabric returns the exact uncached path and consumes the RNG
// identically — the contract RouteDraws/RouteIDsFromDraws exist for.
func TestRouteCacheMatchesAllFabrics(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		cache := NewRouteCache(f)
		rngA := rand.New(rand.NewSource(11))
		rngB := rand.New(rand.NewSource(11))
		pick := rand.New(rand.NewSource(5))
		n := f.NumTerminals()
		for i := 0; i < 1500; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			want := f.RouteIDsInto(nil, src, dst, rngA)
			got := cache.Route(src, dst, rngB)
			if len(want) != len(got) {
				t.Fatalf("%s (%d,%d): lengths differ: %d vs %d", name, src, dst, len(want), len(got))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s (%d,%d): hop %d differs", name, src, dst, j)
				}
			}
		}
		if a, b := rngA.Int63(), rngB.Int63(); a != b {
			t.Errorf("%s: RNG states diverged after cached routing", name)
		}
		if cache.Len() == 0 {
			t.Errorf("%s: cache memoized no routes", name)
		}
		if cache.Len() > cache.Cap() {
			t.Errorf("%s: cache holds %d routes over its bound %d", name, cache.Len(), cache.Cap())
		}
		if cache.Fabric() != f {
			t.Errorf("%s: cache reports wrong fabric", name)
		}
	}
}

// TestRouteCacheBoundedEviction drives a deliberately tiny cache far past
// its capacity and asserts (a) the bound holds, (b) clock eviction actually
// runs, and (c) cached routing stays bit-identical to uncached routing —
// eviction must never disturb paths or the RNG draw sequence.
func TestRouteCacheBoundedEviction(t *testing.T) {
	f := MustNamed("xgft3")
	cache := NewRouteCacheSize(f, 64)
	if cache.Cap() < 64 {
		t.Fatalf("Cap() = %d, want >= 64", cache.Cap())
	}
	rngA := rand.New(rand.NewSource(19))
	rngB := rand.New(rand.NewSource(19))
	pick := rand.New(rand.NewSource(37))
	n := f.NumTerminals()
	for i := 0; i < 6000; i++ {
		src, dst := pick.Intn(n), pick.Intn(n)
		want := f.RouteIDsInto(nil, src, dst, rngA)
		got := cache.Route(src, dst, rngB)
		if len(want) != len(got) {
			t.Fatalf("(%d,%d): lengths differ: %d vs %d", src, dst, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("(%d,%d): hop %d differs after eviction churn", src, dst, j)
			}
		}
		if cache.Len() > cache.Cap() {
			t.Fatalf("cache grew to %d routes, bound is %d", cache.Len(), cache.Cap())
		}
	}
	if a, b := rngA.Int63(), rngB.Int63(); a != b {
		t.Error("RNG states diverged under eviction churn")
	}
	hits, misses, evictions := cache.Stats()
	if evictions == 0 {
		t.Error("tiny cache saw no evictions")
	}
	if hits == 0 || misses == 0 {
		t.Errorf("implausible counters: hits=%d misses=%d", hits, misses)
	}
}

// collideFabric is a minimal Fabric whose routing draw deliberately exceeds
// the cache's packed-key field width: fan-out 300 means picks 1 and 257
// alias under naive 8-bit packing (257 & 0xff == 1). Paths are one synthetic
// link per pick (the forward link of cable p), so a collision would return
// the wrong link. It can also vary the number of draws per route
// (variable=true draws a second pick when the first is zero), aliasing
// [0, x] with [x] under count-free packing.
type collideFabric struct {
	tab      LinkTable
	fan      int
	variable bool
}

func newCollideFabric(fan int, variable bool) *collideFabric {
	f := &collideFabric{fan: fan, variable: variable}
	for i := 0; i < fan; i++ {
		f.tab.addCable(0, 1, LinkToSwitch|LinkUp)
	}
	return f
}

// linkFor maps pick p to its synthetic link (cable p's forward direction).
func (f *collideFabric) linkFor(p int) LinkID { return LinkID(2 * p) }

func (f *collideFabric) Name() string          { return "collide" }
func (f *collideFabric) NumTerminals() int     { return 2 }
func (f *collideFabric) NumSwitches() int      { return 1 }
func (f *collideFabric) NumCables() int        { return f.fan }
func (f *collideFabric) NumLinks() int         { return f.tab.Len() }
func (f *collideFabric) Table() *LinkTable     { return &f.tab }
func (f *collideFabric) HostLinkID(int) LinkID { return 0 }
func (f *collideFabric) RouteIDsInto(buf []LinkID, src, dst int, rng *rand.Rand) []LinkID {
	return f.RouteIDsFromDraws(buf, src, dst, f.RouteDraws(nil, src, dst, rng))
}
func (f *collideFabric) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	if src == dst || rng == nil {
		return draws
	}
	pick := rng.Intn(f.fan)
	draws = append(draws, pick)
	if f.variable && pick == 0 {
		draws = append(draws, rng.Intn(f.fan))
	}
	return draws
}
func (f *collideFabric) RouteIDsFromDraws(buf []LinkID, src, dst int, draws []int) []LinkID {
	for _, p := range draws {
		buf = append(buf, f.linkFor(p))
	}
	return buf
}

// fixedSeq is a rand.Source replaying a fixed Int63 sequence.
type fixedSeq struct {
	vals []int64
	i    int
}

func (s *fixedSeq) Int63() int64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}
func (s *fixedSeq) Seed(int64) {}

// drawRNG returns a Rand whose next Intn(fan) calls yield exactly picks.
// rand.Intn's rejection-free path for non-power-of-two n maps Int63 values
// by modulo after masking to 31 bits via Int31n; feeding v*? is brittle, so
// instead binary-search an Int63 value that produces each pick.
func drawRNG(fan int, picks ...int) *rand.Rand {
	vals := make([]int64, len(picks))
	for i, want := range picks {
		found := false
		for v := int64(0); v < int64(4*fan); v++ {
			if int(rand.New(&fixedSeq{vals: []int64{v << 32}}).Intn(fan)) == want {
				vals[i] = v << 32
				found = true
				break
			}
		}
		if !found {
			panic("drawRNG: no source value found")
		}
	}
	return rand.New(&fixedSeq{vals: vals})
}

// TestRouteCacheCollisionRegression is the packed-key audit: draw values too
// wide for the key's per-pick field, and draw sequences of different
// lengths, must never silently collide two routes. Before the guard, pick
// 257 aliased pick 1 (both pack to 0x01) and [0,5] aliased [5].
func TestRouteCacheCollisionRegression(t *testing.T) {
	// Wide picks: 1 then 257 for the same (src, dst).
	f := newCollideFabric(300, false)
	cache := NewRouteCache(f)
	first := cache.Route(0, 1, drawRNG(300, 1))
	if len(first) != 1 || first[0] != f.linkFor(1) {
		t.Fatalf("pick 1 routed to %v", first)
	}
	second := cache.Route(0, 1, drawRNG(300, 257))
	if len(second) != 1 || second[0] != f.linkFor(257) {
		t.Fatalf("pick 257 returned link %d — aliased with pick 1's cached route", second[0])
	}

	// Variable-length sequences: [5] then [0, 5] for the same (src, dst).
	fv := newCollideFabric(16, true)
	cachev := NewRouteCache(fv)
	one := cachev.Route(0, 1, drawRNG(16, 5))
	if len(one) != 1 || one[0] != fv.linkFor(5) {
		t.Fatalf("draw [5] routed to %v", one)
	}
	two := cachev.Route(0, 1, drawRNG(16, 0, 5))
	if len(two) != 2 || two[0] != fv.linkFor(0) || two[1] != fv.linkFor(5) {
		t.Fatalf("draw [0,5] returned %d link(s) — aliased with draw [5]'s cached route", len(two))
	}
	// In-range draws on the same fabric still memoize.
	if cachev.Len() == 0 {
		t.Error("in-range draws were not cached")
	}
}

// TestRouteCacheHighRadixUncached is the 8-bit draw-packing regression for
// high-radix fabrics: any pick >= 256 must route uncached — correct links,
// nothing memoized under an aliasing key — while in-range picks on the same
// fabric keep memoizing.
func TestRouteCacheHighRadixUncached(t *testing.T) {
	f := newCollideFabric(300, false)
	cache := NewRouteCache(f)
	for _, pick := range []int{256, 257, 299} {
		for round := 0; round < 2; round++ {
			got := cache.Route(0, 1, drawRNG(300, pick))
			if len(got) != 1 || got[0] != f.linkFor(pick) {
				t.Fatalf("pick %d round %d routed to %v, want link %d", pick, round, got, f.linkFor(pick))
			}
		}
		if cache.Len() != 0 {
			t.Fatalf("pick %d was memoized; high-radix draws must route uncached", pick)
		}
	}
	if got := cache.Route(0, 1, drawRNG(300, 42)); len(got) != 1 || got[0] != f.linkFor(42) {
		t.Fatalf("in-range pick routed to %v", got)
	}
	if cache.Len() != 1 {
		t.Errorf("in-range pick not memoized (len=%d)", cache.Len())
	}
	if _, misses, _ := cache.Stats(); misses < 7 {
		t.Errorf("uncached routes must count as misses (misses=%d)", misses)
	}
}

// TestRouteCachePackGuard pins packDraws's fit contract directly.
func TestRouteCachePackGuard(t *testing.T) {
	if _, ok := packDraws([]int{0, 1, 255}); !ok {
		t.Error("in-range draws rejected")
	}
	if _, ok := packDraws([]int{256}); ok {
		t.Error("pick 256 accepted: would alias pick 0")
	}
	if _, ok := packDraws([]int{-1}); ok {
		t.Error("negative pick accepted")
	}
	if _, ok := packDraws(make([]int, maxCachedDraws+1)); ok {
		t.Error("draw sequence longer than the key accepted")
	}
	a, _ := packDraws([]int{1, 2})
	b, _ := packDraws([]int{2, 1})
	if a == b {
		t.Error("packing is order-insensitive")
	}
}

// TestLinkTableInvariants pins the table-wide structural contract every
// consumer leans on: cable pairing by Reverse, kind-bit mirroring, and the
// memory report.
func TestLinkTableInvariants(t *testing.T) {
	for _, name := range Names() {
		tab := MustNamed(name).Table()
		for id := 0; id < tab.Len(); id += 2 {
			fwd, rev := LinkID(id), Reverse(LinkID(id))
			if rev != LinkID(id)+1 || Reverse(rev) != fwd {
				t.Fatalf("%s: Reverse is not an involution at %d", name, id)
			}
			if tab.From[fwd] != tab.To[rev] || tab.To[fwd] != tab.From[rev] {
				t.Fatalf("%s: cable %d directions are not mirrored", name, tab.Cable[fwd])
			}
			if tab.Cable[fwd] != tab.Cable[rev] {
				t.Fatalf("%s: link pair %d has mismatched cables", name, id)
			}
			if tab.IsUp(rev) {
				t.Fatalf("%s: reverse link %d claims to ascend", name, id+1)
			}
			fromSw := tab.Kind[fwd]&LinkFromSwitch != 0
			if toSwRev := tab.Kind[rev]&LinkToSwitch != 0; fromSw != toSwRev {
				t.Fatalf("%s: kind bits of pair %d are not mirrored", name, id)
			}
		}
		if tab.Bytes() != int64(tab.Len())*13 {
			t.Errorf("%s: Bytes() = %d, want %d (13 per directed link)", name, tab.Bytes(), tab.Len()*13)
		}
	}
}
