package topology

import (
	"math/rand"
	"strings"
	"testing"
)

// TestRegistryPresets asserts every preset builds, satisfies the size floor
// for the evaluation grid (up to 128 processes), and is memoized.
func TestRegistryPresets(t *testing.T) {
	names := Names()
	for _, want := range []string{"xgft", "xgft3", "dragonfly", "torus2d", "torus3d"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("preset %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		f, err := Named(n)
		if err != nil {
			t.Fatalf("Named(%q): %v", n, err)
		}
		if f.NumTerminals() < 128 {
			t.Errorf("%s: %d terminals, want >= 128 for the evaluation grid", n, f.NumTerminals())
		}
		if again, _ := Named(n); again != f {
			t.Errorf("%s: Named returned a different instance on second lookup", n)
		}
		if len(f.Links()) != 2*f.NumCables() {
			t.Errorf("%s: %d directed links, want %d (2 per cable)", n, len(f.Links()), 2*f.NumCables())
		}
	}
	if f, err := Named(""); err != nil || f != MustNamed(DefaultFabric) {
		t.Errorf("empty name must resolve to the default fabric (err=%v)", err)
	}
	if MustNamed(DefaultFabric).(*XGFT) != Paper() {
		t.Error("default fabric is not the shared paper instance")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := Named("nosuch"); err == nil || !strings.Contains(err.Error(), "dragonfly") {
		t.Errorf("unknown fabric error %v must list the registry", err)
	}
	if err := CheckRegistered("nosuch"); err == nil {
		t.Error("CheckRegistered accepted an unknown name")
	}
	if err := CheckRegistered(""); err != nil {
		t.Errorf("empty name must resolve to the default: %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", func() (Fabric, error) { return Paper(), nil }) })
	mustPanic("nil constructor", func() { Register("x-nil", nil) })
	mustPanic("duplicate", func() {
		Register(DefaultFabric, func() (Fabric, error) { return Paper(), nil })
	})
}

// TestCableClosedForms pins each preset's cable count to its closed form.
func TestCableClosedForms(t *testing.T) {
	cases := []struct {
		name      string
		terminals int
		cables    int
	}{
		// XGFT(2;18,14;1,18): 252 host + 14*18 leaf-top.
		{"xgft", 252, 252 + 14*18},
		// XGFT(3;6,6,4;1,4,4): 144 host + 24 L1-switches*4 + 16 L2-switches*4.
		{"xgft3", 144, 144 + 24*4 + 16*4},
		// Dragonfly(p=4,a=4,h=2): 9 groups; 144 host + 9*C(4,2) local + C(9,2) global.
		{"dragonfly", 144, 144 + 9*6 + 36},
		// 12x12 torus: 144 host + 144 routers * 2 dimensions.
		{"torus2d", 144, 144 + 144*2},
		// 6x6x4 torus: 144 host + 144 routers * 3 dimensions.
		{"torus3d", 144, 144 + 144*3},
	}
	for _, c := range cases {
		f := MustNamed(c.name)
		if got := f.NumTerminals(); got != c.terminals {
			t.Errorf("%s: terminals = %d, want %d", c.name, got, c.terminals)
		}
		if got := f.NumCables(); got != c.cables {
			t.Errorf("%s: cables = %d, want %d", c.name, got, c.cables)
		}
	}
}

// checkPath asserts path is a valid adjacent-link walk from terminal src to
// terminal dst over f's own links, and returns it for fabric-specific checks.
func checkPath(t *testing.T, f Fabric, src, dst int, path []*Link) {
	t.Helper()
	if src == dst {
		if len(path) != 0 {
			t.Fatalf("%s: self route %d has %d links, want 0", f.Name(), src, len(path))
		}
		return
	}
	if len(path) == 0 {
		t.Fatalf("%s: empty route %d->%d", f.Name(), src, dst)
	}
	if path[0].From != f.HostLink(src).From {
		t.Fatalf("%s: route %d->%d does not start at src terminal", f.Name(), src, dst)
	}
	if path[len(path)-1].To != f.HostLink(dst).From {
		t.Fatalf("%s: route %d->%d does not end at dst terminal", f.Name(), src, dst)
	}
	cur := path[0].From
	for i, l := range path {
		if f.Links()[l.ID] != l {
			t.Fatalf("%s: route %d->%d hop %d is not a fabric link", f.Name(), src, dst, i)
		}
		if l.From != cur {
			t.Fatalf("%s: route %d->%d discontiguous at hop %d", f.Name(), src, dst, i)
		}
		if i > 0 && i < len(path)-1 && l.To.Kind == KindTerminal {
			t.Fatalf("%s: route %d->%d passes through terminal %d mid-path", f.Name(), src, dst, l.To.ID)
		}
		cur = l.To
	}
}

// TestRouteValidityAllFabrics is the cross-fabric structural property: every
// route over every registered fabric is a valid adjacent-link path from src
// to dst, with and without random routing.
func TestRouteValidityAllFabrics(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		rng := rand.New(rand.NewSource(7))
		pick := rand.New(rand.NewSource(13))
		n := f.NumTerminals()
		for i := 0; i < 400; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			checkPath(t, f, src, dst, f.RouteInto(nil, src, dst, rng))
			checkPath(t, f, src, dst, f.RouteInto(nil, src, dst, nil))
		}
	}
}

// TestXGFT3UpDownInvariant asserts three-level routes ascend then descend —
// never up again after the first down link.
func TestXGFT3UpDownInvariant(t *testing.T) {
	f := MustNamed("xgft3").(*XGFT)
	rng := rand.New(rand.NewSource(3))
	pick := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		src, dst := pick.Intn(144), pick.Intn(144)
		if src == dst {
			continue
		}
		path := f.RouteInto(nil, src, dst, rng)
		descending := false
		for j, l := range path {
			if l.IsUp && descending {
				t.Fatalf("route %d->%d goes up at hop %d after descending", src, dst, j)
			}
			if !l.IsUp {
				descending = true
			}
		}
	}
}

// TestDragonflyInvariants asserts dragonfly routes use at most two global
// hops (minimal or one Valiant detour) and that random intermediate-group
// routing actually spreads traffic over the groups.
func TestDragonflyInvariants(t *testing.T) {
	f := MustNamed("dragonfly").(*Dragonfly)
	rng := rand.New(rand.NewSource(5))
	pick := rand.New(rand.NewSource(23))
	isGlobal := func(l *Link) bool {
		return l.From.Kind == KindSwitch && l.To.Kind == KindSwitch &&
			f.groupOfRouter(l.From) != f.groupOfRouter(l.To)
	}
	globalsUsed := map[int]bool{}
	for i := 0; i < 600; i++ {
		src, dst := pick.Intn(144), pick.Intn(144)
		if src == dst {
			continue
		}
		path := f.RouteInto(nil, src, dst, rng)
		globals := 0
		for _, l := range path {
			if isGlobal(l) {
				globals++
			}
		}
		if globals > 2 {
			t.Fatalf("route %d->%d crossed %d global links, want <= 2", src, dst, globals)
		}
		if f.group(src) != f.group(dst) {
			if globals == 0 {
				t.Fatalf("inter-group route %d->%d used no global link", src, dst)
			}
			globals = 0
			minimal := f.RouteInto(nil, src, dst, nil)
			for _, l := range minimal {
				if isGlobal(l) {
					globals++
				}
			}
			if globals != 1 {
				t.Fatalf("minimal route %d->%d crossed %d global links, want 1", src, dst, globals)
			}
		}
		for _, l := range path {
			if isGlobal(l) {
				globalsUsed[l.Cable] = true
			}
		}
	}
	if len(globalsUsed) < 10 {
		t.Errorf("random intermediate groups exercised only %d global cables", len(globalsUsed))
	}
}

// groupOfRouter locates a router's group (test helper).
func (d *Dragonfly) groupOfRouter(r *Node) int {
	for g := range d.Routers {
		for _, n := range d.Routers[g] {
			if n == r {
				return g
			}
		}
	}
	return -1
}

// TestTorusDimensionOrder asserts torus routes correct dimensions strictly
// in order, one ±1 ring step at a time along the shorter arc, and are fully
// deterministic.
func TestTorusDimensionOrder(t *testing.T) {
	f := MustNamed("torus3d").(*Torus)
	pick := rand.New(rand.NewSource(29))
	coords := func(r int) []int {
		c := make([]int, len(f.Dims))
		for d := range f.Dims {
			c[d] = (r / f.stride[d]) % f.Dims[d]
		}
		return c
	}
	routerOf := func(n *Node) int {
		for i, r := range f.Routers {
			if r == n {
				return i
			}
		}
		t.Fatalf("node %d is not a router", n.ID)
		return -1
	}
	for i := 0; i < 400; i++ {
		src, dst := pick.Intn(144), pick.Intn(144)
		if src == dst {
			continue
		}
		path := f.RouteInto(nil, src, dst, rand.New(rand.NewSource(int64(i))))
		if again := f.RouteInto(nil, src, dst, nil); len(again) != len(path) {
			t.Fatalf("route %d->%d depends on the RNG", src, dst)
		}
		// Interior hops are router->router ring steps.
		highest := 0
		expectedLen := 2
		sc, dc := coords(src/f.P), coords(dst/f.P)
		for d := range f.Dims {
			delta := (dc[d] - sc[d] + f.Dims[d]) % f.Dims[d]
			if delta > f.Dims[d]-delta {
				delta = f.Dims[d] - delta
			}
			expectedLen += delta
		}
		if len(path) != expectedLen {
			t.Fatalf("route %d->%d has %d links, want %d (shortest arcs)", src, dst, len(path), expectedLen)
		}
		for _, l := range path[1 : len(path)-1] {
			a, b := coords(routerOf(l.From)), coords(routerOf(l.To))
			changed := -1
			for d := range a {
				if a[d] != b[d] {
					if changed >= 0 {
						t.Fatalf("route %d->%d: hop changes two dimensions", src, dst)
					}
					changed = d
					diff := (b[d] - a[d] + f.Dims[d]) % f.Dims[d]
					if diff != 1 && diff != f.Dims[d]-1 {
						t.Fatalf("route %d->%d: hop jumps %d in dimension %d", src, dst, diff, d)
					}
				}
			}
			if changed < 0 {
				t.Fatalf("route %d->%d: hop changes no dimension", src, dst)
			}
			if changed < highest {
				t.Fatalf("route %d->%d: dimension %d corrected after dimension %d", src, dst, changed, highest)
			}
			highest = changed
		}
	}
}

// TestRouteCacheMatchesAllFabrics asserts cached routing over every
// registered fabric returns the exact uncached path and consumes the RNG
// identically — the contract RouteDraws/RouteFromDraws exist for.
func TestRouteCacheMatchesAllFabrics(t *testing.T) {
	for _, name := range Names() {
		f := MustNamed(name)
		cache := NewRouteCache(f)
		rngA := rand.New(rand.NewSource(11))
		rngB := rand.New(rand.NewSource(11))
		pick := rand.New(rand.NewSource(5))
		n := f.NumTerminals()
		for i := 0; i < 1500; i++ {
			src, dst := pick.Intn(n), pick.Intn(n)
			want := f.RouteInto(nil, src, dst, rngA)
			got := cache.Route(src, dst, rngB)
			if len(want) != len(got) {
				t.Fatalf("%s (%d,%d): lengths differ: %d vs %d", name, src, dst, len(want), len(got))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s (%d,%d): hop %d differs", name, src, dst, j)
				}
			}
		}
		if a, b := rngA.Int63(), rngB.Int63(); a != b {
			t.Errorf("%s: RNG states diverged after cached routing", name)
		}
		if cache.Len() == 0 {
			t.Errorf("%s: cache memoized no routes", name)
		}
		if cache.Fabric() != f {
			t.Errorf("%s: cache reports wrong fabric", name)
		}
	}
}

// collideFabric is a minimal Fabric whose routing draw deliberately exceeds
// the cache's packed-key field width: fan-out 300 means picks 1 and 257
// alias under naive 8-bit packing (257 & 0xff == 1). Paths are one synthetic
// link per pick, so a collision would return the wrong link. It can also
// vary the number of draws per route (variable=true draws a second pick when
// the first is zero), aliasing [0, x] with [x] under count-free packing.
type collideFabric struct {
	links    []*Link
	fan      int
	variable bool
}

func newCollideFabric(fan int, variable bool) *collideFabric {
	f := &collideFabric{fan: fan, variable: variable}
	host := &Node{ID: 0, Kind: KindTerminal}
	sw := &Node{ID: 1, Kind: KindSwitch, Level: 1}
	for i := 0; i < fan; i++ {
		l := &Link{ID: i, From: host, To: sw, Cable: i, IsUp: true}
		f.links = append(f.links, l)
	}
	host.Up = append(host.Up, f.links[0])
	return f
}

func (f *collideFabric) Name() string         { return "collide" }
func (f *collideFabric) NumTerminals() int    { return 2 }
func (f *collideFabric) NumSwitches() int     { return 1 }
func (f *collideFabric) NumCables() int       { return f.fan }
func (f *collideFabric) Links() []*Link       { return f.links }
func (f *collideFabric) HostLink(t int) *Link { return f.links[0] }
func (f *collideFabric) RouteInto(buf []*Link, src, dst int, rng *rand.Rand) []*Link {
	return f.RouteFromDraws(buf, src, dst, f.RouteDraws(nil, src, dst, rng))
}
func (f *collideFabric) RouteDraws(draws []int, src, dst int, rng *rand.Rand) []int {
	if src == dst || rng == nil {
		return draws
	}
	pick := rng.Intn(f.fan)
	draws = append(draws, pick)
	if f.variable && pick == 0 {
		draws = append(draws, rng.Intn(f.fan))
	}
	return draws
}
func (f *collideFabric) RouteFromDraws(buf []*Link, src, dst int, draws []int) []*Link {
	for _, p := range draws {
		buf = append(buf, f.links[p])
	}
	return buf
}

// fixedSeq is a rand.Source replaying a fixed Int63 sequence.
type fixedSeq struct {
	vals []int64
	i    int
}

func (s *fixedSeq) Int63() int64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}
func (s *fixedSeq) Seed(int64) {}

// drawRNG returns a Rand whose next Intn(fan) calls yield exactly picks.
// rand.Intn's rejection-free path for non-power-of-two n maps Int63 values
// by modulo after masking to 31 bits via Int31n; feeding v*? is brittle, so
// instead binary-search an Int63 value that produces each pick.
func drawRNG(fan int, picks ...int) *rand.Rand {
	vals := make([]int64, len(picks))
	for i, want := range picks {
		found := false
		for v := int64(0); v < int64(4*fan); v++ {
			if int(rand.New(&fixedSeq{vals: []int64{v << 32}}).Intn(fan)) == want {
				vals[i] = v << 32
				found = true
				break
			}
		}
		if !found {
			panic("drawRNG: no source value found")
		}
	}
	return rand.New(&fixedSeq{vals: vals})
}

// TestRouteCacheCollisionRegression is the packed-key audit: draw values too
// wide for the key's per-pick field, and draw sequences of different
// lengths, must never silently collide two routes. Before the guard, pick
// 257 aliased pick 1 (both pack to 0x01) and [0,5] aliased [5].
func TestRouteCacheCollisionRegression(t *testing.T) {
	// Wide picks: 1 then 257 for the same (src, dst).
	f := newCollideFabric(300, false)
	cache := NewRouteCache(f)
	first := cache.Route(0, 1, drawRNG(300, 1))
	if len(first) != 1 || first[0] != f.links[1] {
		t.Fatalf("pick 1 routed to %v", first)
	}
	second := cache.Route(0, 1, drawRNG(300, 257))
	if len(second) != 1 || second[0] != f.links[257] {
		t.Fatalf("pick 257 returned link %d — aliased with pick 1's cached route", second[0].ID)
	}

	// Variable-length sequences: [5] then [0, 5] for the same (src, dst).
	fv := newCollideFabric(16, true)
	cachev := NewRouteCache(fv)
	one := cachev.Route(0, 1, drawRNG(16, 5))
	if len(one) != 1 || one[0] != fv.links[5] {
		t.Fatalf("draw [5] routed to %v", one)
	}
	two := cachev.Route(0, 1, drawRNG(16, 0, 5))
	if len(two) != 2 || two[0] != fv.links[0] || two[1] != fv.links[5] {
		t.Fatalf("draw [0,5] returned %d link(s) — aliased with draw [5]'s cached route", len(two))
	}
	// In-range draws on the same fabric still memoize.
	if cachev.Len() == 0 {
		t.Error("in-range draws were not cached")
	}
}

// TestRouteCachePackGuard pins packDraws's fit contract directly.
func TestRouteCachePackGuard(t *testing.T) {
	if _, ok := packDraws([]int{0, 1, 255}); !ok {
		t.Error("in-range draws rejected")
	}
	if _, ok := packDraws([]int{256}); ok {
		t.Error("pick 256 accepted: would alias pick 0")
	}
	if _, ok := packDraws([]int{-1}); ok {
		t.Error("negative pick accepted")
	}
	if _, ok := packDraws(make([]int, maxCachedDraws+1)); ok {
		t.Error("draw sequence longer than the key accepted")
	}
	a, _ := packDraws([]int{1, 2})
	b, _ := packDraws([]int{2, 1})
	if a == b {
		t.Error("packing is order-insensitive")
	}
}
