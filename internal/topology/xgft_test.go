package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperTopologyShape(t *testing.T) {
	x := Paper() // XGFT(2;18,14;1,18)
	if got := x.NumTerminals(); got != 252 {
		t.Errorf("terminals = %d, want 252 (18*14)", got)
	}
	if got := len(x.Switches[0]); got != 14 {
		t.Errorf("leaf switches = %d, want 14", got)
	}
	if got := len(x.Switches[1]); got != 18 {
		t.Errorf("top switches = %d, want 18", got)
	}
	// Cables: 252 node-leaf + 14*18 leaf-top.
	if got := x.Cables; got != 252+14*18 {
		t.Errorf("cables = %d, want %d", got, 252+14*18)
	}
	if got := len(x.Links()); got != 2*x.Cables {
		t.Errorf("directed links = %d, want %d", got, 2*x.Cables)
	}
	// Every terminal has exactly one uplink (w1 = 1).
	for _, n := range x.Terminals {
		if len(n.Up) != 1 {
			t.Fatalf("terminal %d has %d uplinks, want 1", n.ID, len(n.Up))
		}
	}
	// Every leaf switch has 18 children and 18 parents.
	for _, sw := range x.Switches[0] {
		if len(sw.Down) != 18 || len(sw.Up) != 18 {
			t.Fatalf("leaf switch %d: %d down, %d up; want 18/18", sw.ID, len(sw.Down), len(sw.Up))
		}
	}
	// Every top switch has 14 children and no parents.
	for _, sw := range x.Switches[1] {
		if len(sw.Down) != 14 || len(sw.Up) != 0 {
			t.Fatalf("top switch %d: %d down, %d up; want 14/0", sw.ID, len(sw.Down), len(sw.Up))
		}
	}
	if x.NumSwitches() != 32 {
		t.Errorf("switches = %d, want 32", x.NumSwitches())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, nil); err == nil {
		t.Error("height 0 accepted")
	}
	if _, err := New(2, []int{3}, []int{1, 1}); err == nil {
		t.Error("wrong arity count accepted")
	}
	if _, err := New(1, []int{0}, []int{1}); err == nil {
		t.Error("zero arity accepted")
	}
}

func TestRouteSameLeaf(t *testing.T) {
	x := Paper()
	// Terminals 0 and 1 share the leaf switch: 2-hop route.
	path := x.Route(0, 1, nil)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if !path[0].IsUp || path[1].IsUp {
		t.Error("path must go up then down")
	}
	if path[0].From != x.Terminals[0] || path[1].To != x.Terminals[1] {
		t.Error("path endpoints wrong")
	}
}

func TestRouteCrossLeaf(t *testing.T) {
	x := Paper()
	// Terminals 0 and 250 are in different leaf subtrees: 4-hop route.
	path := x.Route(0, 250, rand.New(rand.NewSource(1)))
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	if path[0].From != x.Terminals[0] || path[3].To != x.Terminals[250] {
		t.Error("path endpoints wrong")
	}
}

func TestRouteSelf(t *testing.T) {
	x := Paper()
	if p := x.Route(7, 7, nil); len(p) != 0 {
		t.Errorf("self route length = %d, want 0", len(p))
	}
}

// Property: every route is a valid contiguous path from src to dst that
// first ascends then descends, over random pairs and random routing choices.
func TestRouteValidityProperty(t *testing.T) {
	x := Paper()
	rng := rand.New(rand.NewSource(7))
	f := func(a, b uint16, seed int64) bool {
		src := int(a) % x.NumTerminals()
		dst := int(b) % x.NumTerminals()
		if src == dst {
			return len(x.Route(src, dst, rng)) == 0
		}
		path := x.Route(src, dst, rand.New(rand.NewSource(seed)))
		if len(path) == 0 {
			return false
		}
		if path[0].From != x.Terminals[src] || path[len(path)-1].To != x.Terminals[dst] {
			return false
		}
		descending := false
		cur := path[0].From
		for _, l := range path {
			if l.From != cur {
				return false // discontiguous
			}
			if l.IsUp && descending {
				return false // up after down: not a fat-tree route
			}
			if !l.IsUp {
				descending = true
			}
			cur = l.To
		}
		return cur == x.Terminals[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random routing spreads cross-leaf traffic over all 18 top
// switches.
func TestRandomRoutingSpread(t *testing.T) {
	x := Paper()
	rng := rand.New(rand.NewSource(42))
	tops := map[int]bool{}
	for i := 0; i < 500; i++ {
		path := x.Route(0, 250, rng)
		tops[path[1].To.ID] = true
	}
	if len(tops) < 15 {
		t.Errorf("random routing used only %d top switches over 500 routes", len(tops))
	}
}

func TestRouteDeterministicWithoutRNG(t *testing.T) {
	x := Paper()
	p1 := x.Route(3, 200, nil)
	p2 := x.Route(3, 200, nil)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nil-rng routing must be deterministic")
		}
	}
}

func TestThreeLevelXGFT(t *testing.T) {
	// XGFT(3; 2,2,2; 1,2,2): 8 terminals, verify connectivity end to end.
	x, err := New(3, []int{2, 2, 2}, []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumTerminals() != 8 {
		t.Fatalf("terminals = %d, want 8", x.NumTerminals())
	}
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			path := x.Route(s, d, rng)
			if len(path) == 0 || path[len(path)-1].To != x.Terminals[d] {
				t.Fatalf("no valid route %d->%d", s, d)
			}
		}
	}
}

func TestCablePairing(t *testing.T) {
	x := Paper()
	byCable := map[int][]*Link{}
	for _, l := range x.Links() {
		byCable[l.Cable] = append(byCable[l.Cable], l)
	}
	for c, ls := range byCable {
		if len(ls) != 2 {
			t.Fatalf("cable %d has %d directed links, want 2", c, len(ls))
		}
		if ls[0].From != ls[1].To || ls[0].To != ls[1].From {
			t.Fatalf("cable %d directions are not mirrored", c)
		}
	}
}
