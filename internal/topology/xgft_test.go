package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperTopologyShape(t *testing.T) {
	x := Paper() // XGFT(2;18,14;1,18)
	if got := x.NumTerminals(); got != 252 {
		t.Errorf("terminals = %d, want 252 (18*14)", got)
	}
	if got := x.SwitchesAtLevel(1); got != 14 {
		t.Errorf("leaf switches = %d, want 14", got)
	}
	if got := x.SwitchesAtLevel(2); got != 18 {
		t.Errorf("top switches = %d, want 18", got)
	}
	// Cables: 252 node-leaf + 14*18 leaf-top.
	if got := x.NumCables(); got != 252+14*18 {
		t.Errorf("cables = %d, want %d", got, 252+14*18)
	}
	if got := x.NumLinks(); got != 2*x.NumCables() {
		t.Errorf("directed links = %d, want %d", got, 2*x.NumCables())
	}
	// Out-degrees from the table: terminals send on 1 link (w1 = 1), leaf
	// switches on 18 down + 18 up, top switches on 14 down.
	tab := x.Table()
	outDeg := make(map[int32]int)
	for id := 0; id < tab.Len(); id++ {
		outDeg[tab.From[id]]++
	}
	for term := int32(0); term < 252; term++ {
		if outDeg[term] != 1 {
			t.Fatalf("terminal %d has %d uplinks, want 1", term, outDeg[term])
		}
	}
	for leaf := int32(252); leaf < 252+14; leaf++ {
		if outDeg[leaf] != 18+18 {
			t.Fatalf("leaf switch %d: out-degree %d, want 36 (18 down + 18 up)", leaf, outDeg[leaf])
		}
	}
	for top := int32(252 + 14); top < 252+14+18; top++ {
		if outDeg[top] != 14 {
			t.Fatalf("top switch %d: out-degree %d, want 14 (down only)", top, outDeg[top])
		}
	}
	if x.NumSwitches() != 32 {
		t.Errorf("switches = %d, want 32", x.NumSwitches())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, nil); err == nil {
		t.Error("height 0 accepted")
	}
	if _, err := New(2, []int{3}, []int{1, 1}); err == nil {
		t.Error("wrong arity count accepted")
	}
	if _, err := New(1, []int{0}, []int{1}); err == nil {
		t.Error("zero arity accepted")
	}
}

func TestRouteSameLeaf(t *testing.T) {
	x := Paper()
	tab := x.Table()
	// Terminals 0 and 1 share the leaf switch: 2-hop route.
	path := RouteIDs(x, 0, 1, nil)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if !tab.IsUp(path[0]) || tab.IsUp(path[1]) {
		t.Error("path must go up then down")
	}
	if tab.From[path[0]] != 0 || tab.To[path[1]] != 1 {
		t.Error("path endpoints wrong")
	}
}

func TestRouteCrossLeaf(t *testing.T) {
	x := Paper()
	tab := x.Table()
	// Terminals 0 and 250 are in different leaf subtrees: 4-hop route.
	path := RouteIDs(x, 0, 250, rand.New(rand.NewSource(1)))
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	if tab.From[path[0]] != 0 || tab.To[path[3]] != 250 {
		t.Error("path endpoints wrong")
	}
}

func TestRouteSelf(t *testing.T) {
	x := Paper()
	if p := RouteIDs(x, 7, 7, nil); len(p) != 0 {
		t.Errorf("self route length = %d, want 0", len(p))
	}
}

// Property: every route is a valid contiguous path from src to dst that
// first ascends then descends, over random pairs and random routing choices.
func TestRouteValidityProperty(t *testing.T) {
	x := Paper()
	tab := x.Table()
	rng := rand.New(rand.NewSource(7))
	f := func(a, b uint16, seed int64) bool {
		src := int(a) % x.NumTerminals()
		dst := int(b) % x.NumTerminals()
		if src == dst {
			return len(RouteIDs(x, src, dst, rng)) == 0
		}
		path := RouteIDs(x, src, dst, rand.New(rand.NewSource(seed)))
		if len(path) == 0 {
			return false
		}
		if tab.From[path[0]] != int32(src) || tab.To[path[len(path)-1]] != int32(dst) {
			return false
		}
		descending := false
		cur := tab.From[path[0]]
		for _, l := range path {
			if tab.From[l] != cur {
				return false // discontiguous
			}
			if tab.IsUp(l) && descending {
				return false // up after down: not a fat-tree route
			}
			if !tab.IsUp(l) {
				descending = true
			}
			cur = tab.To[l]
		}
		return cur == int32(dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random routing spreads cross-leaf traffic over all 18 top
// switches.
func TestRandomRoutingSpread(t *testing.T) {
	x := Paper()
	tab := x.Table()
	rng := rand.New(rand.NewSource(42))
	tops := map[int32]bool{}
	for i := 0; i < 500; i++ {
		path := RouteIDs(x, 0, 250, rng)
		tops[tab.To[path[1]]] = true
	}
	if len(tops) < 15 {
		t.Errorf("random routing used only %d top switches over 500 routes", len(tops))
	}
}

func TestRouteDeterministicWithoutRNG(t *testing.T) {
	x := Paper()
	p1 := RouteIDs(x, 3, 200, nil)
	p2 := RouteIDs(x, 3, 200, nil)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nil-rng routing must be deterministic")
		}
	}
}

func TestThreeLevelXGFT(t *testing.T) {
	// XGFT(3; 2,2,2; 1,2,2): 8 terminals, verify connectivity end to end.
	x, err := New(3, []int{2, 2, 2}, []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumTerminals() != 8 {
		t.Fatalf("terminals = %d, want 8", x.NumTerminals())
	}
	tab := x.Table()
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			path := RouteIDs(x, s, d, rng)
			if len(path) == 0 || tab.To[path[len(path)-1]] != int32(d) {
				t.Fatalf("no valid route %d->%d", s, d)
			}
		}
	}
}

func TestCablePairing(t *testing.T) {
	x := Paper()
	tab := x.Table()
	byCable := map[int32][]LinkID{}
	for id := 0; id < tab.Len(); id++ {
		byCable[tab.Cable[id]] = append(byCable[tab.Cable[id]], LinkID(id))
	}
	for c, ls := range byCable {
		if len(ls) != 2 {
			t.Fatalf("cable %d has %d directed links, want 2", c, len(ls))
		}
		if tab.From[ls[0]] != tab.To[ls[1]] || tab.To[ls[0]] != tab.From[ls[1]] {
			t.Fatalf("cable %d directions are not mirrored", c)
		}
		if Reverse(ls[0]) != ls[1] {
			t.Fatalf("cable %d links are not Reverse-adjacent", c)
		}
	}
}

// TestHostLinkWiring pins HostLinkID and HostSwitch to the table: every
// terminal's host link starts at the terminal, ascends into a switch, and
// terminals sharing a leaf share the switch.
func TestHostLinkWiring(t *testing.T) {
	x := Paper()
	tab := x.Table()
	for term := 0; term < x.NumTerminals(); term++ {
		up := x.HostLinkID(term)
		if tab.From[up] != int32(term) {
			t.Fatalf("terminal %d host link starts at node %d", term, tab.From[up])
		}
		if !tab.IsUp(up) || tab.Kind[up]&LinkToSwitch == 0 {
			t.Fatalf("terminal %d host link is not an up-link into a switch", term)
		}
	}
	// 18 terminals per leaf on the paper tree.
	if HostSwitch(x, 0) != HostSwitch(x, 17) || HostSwitch(x, 0) == HostSwitch(x, 18) {
		t.Error("leaf grouping by HostSwitch is wrong")
	}
}
