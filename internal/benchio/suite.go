package benchio

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ibpower/internal/harness"
	"ibpower/internal/multijob"
	"ibpower/internal/network"
	"ibpower/internal/ngram"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/scenario"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Bench is one suite entry. Fn follows the standard testing benchmark
// contract; names match the `go test -bench` counterparts in bench_test.go
// so trajectory points and test-runner numbers line up.
type Bench struct {
	Name  string
	Heavy bool // skipped in smoke mode (full-sweep benchmarks)
	Fn    func(b *testing.B)
}

// Suite returns the headline benchmarks of the performance trajectory. The
// per-op workload of every non-heavy entry is identical in smoke and full
// mode — smoke only shortens the measurement window — so ns/op stays
// comparable against a full-mode baseline (within the CI gate's 2x margin).
func Suite() []Bench {
	return []Bench{
		{Name: "BenchmarkReplayAlya16", Fn: BenchReplayAlya16},
		{Name: "BenchmarkStreamReplay", Fn: BenchStreamReplay},
		{Name: "BenchmarkMultijob", Fn: BenchMultijob},
		{Name: "BenchmarkScenarioChurn", Fn: BenchScenarioChurn},
		{Name: "BenchmarkChurnWithFaults", Fn: BenchChurnWithFaults},
		{Name: "BenchmarkNetworkTransfer", Fn: BenchNetworkTransfer},
		{Name: "BenchmarkDragonflyTransfer", Fn: BenchDragonflyTransfer},
		{Name: "BenchmarkRouteCrossLeaf", Fn: BenchRouteCrossLeaf},
		{Name: "BenchmarkBigFabricRoutes", Fn: BenchBigFabricRoutes},
		{Name: "BenchmarkBigFabricReplay", Fn: BenchBigFabricReplay},
		{Name: "BenchmarkPredictorOnCall", Fn: BenchPredictorOnCall},
		{Name: "BenchmarkDetectorAddGram", Fn: BenchDetectorAddGram},
		{Name: "BenchmarkTimeSeriesRecord", Fn: BenchTimeSeriesRecord},
		{Name: "BenchmarkFig7_Displacement10", Heavy: true, Fn: BenchFig7},
	}
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	var out []string
	for _, b := range Suite() {
		out = append(out, b.Name)
	}
	return out
}

var testingInit sync.Once

// RunSuite measures the suite and returns the report. Smoke mode shortens
// the per-benchmark measurement window to ~100ms and skips the heavy
// full-sweep entries; it is meant for CI regression gating, not for
// trajectory points.
func RunSuite(label string, smoke bool) (*Report, error) {
	testingInit.Do(testing.Init)
	benchtime := "1s"
	if smoke {
		benchtime = "100ms"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, fmt.Errorf("benchio: set benchtime: %w", err)
	}
	rep := NewReport(label, smoke)
	for _, bench := range Suite() {
		if smoke && bench.Heavy {
			continue
		}
		res := testing.Benchmark(bench.Fn)
		if res.N == 0 {
			return nil, fmt.Errorf("benchio: %s failed to run", bench.Name)
		}
		rep.Results = append(rep.Results, Result{
			Name:        bench.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Metrics:     res.Extra,
		})
	}
	rep.Sort()
	return rep, nil
}

// BenchReplayAlya16 mirrors bench_test.go's BenchmarkReplayAlya16: the full
// power-aware replay of alya at 16 processes.
func BenchReplayAlya16(b *testing.B) {
	tr, err := workloads.Generate("alya", 16, workloads.Options{IterScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01)
	calls := float64(tr.NumCalls())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(calls*float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// BenchStreamReplay measures the file-backed streaming replay path: the same
// alya-16 workload as BenchmarkReplayAlya16, packed once into the binary
// on-disk format and replayed through bounded per-rank read windows.
// events/s counts trace ops pulled through cursors; the gated bytes/op is the
// heap cost of one full replay, which stays O(window) however long the trace
// is — regressions that decode a rank into a slice show up here immediately.
func BenchStreamReplay(b *testing.B) {
	src, err := workloads.NewSource("alya", 16, workloads.Options{IterScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.ibt")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteBinarySources(f, src); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	bf, err := trace.OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer bf.Close()
	fsrc, err := bf.Source("alya", 16)
	if err != nil {
		b.Fatal(err)
	}
	cfg := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01)
	events := float64(bf.NumOps(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.RunSource(fsrc, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchMultijob times the shared-fabric engine on a two-job mix: gromacs and
// alya interleaved across the paper XGFT's leaf switches by the roundrobin
// placement, both with the mechanism on. It measures replay.RunJobs itself —
// placement and trace generation happen once outside the loop — so the
// number gates the multi-job engine's merged-timeline hot path.
func BenchMultijob(b *testing.B) {
	mix := []multijob.JobSpec{{App: "gromacs", NP: 8}, {App: "alya", NP: 8}}
	opt := workloads.Options{IterScale: 0.1}
	var jobs []replay.Job
	var calls float64
	pw := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01).Power
	sizes := make([]int, len(mix))
	for i, js := range mix {
		sizes[i] = js.NP
	}
	terms, err := multijob.Place("roundrobin", topology.Paper(), sizes, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i, js := range mix {
		tr, err := workloads.Generate(js.App, js.NP, opt)
		if err != nil {
			b.Fatal(err)
		}
		calls += float64(tr.NumCalls())
		jobs = append(jobs, replay.Job{Trace: tr, Terminals: terms[i], Power: &pw})
	}
	cfg := replay.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.RunJobs(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(calls*float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// BenchScenarioChurn measures the churn event loop's steady-state per-job
// cost: each op is one job cycling through a saturated fabric — the fcfs
// policy scans a queue whose head does not fit (the head-of-line state a
// loaded scenario lives in), then a finishing job's terminals release back
// to the pooled free-list and the next job claims them. Replay is excluded
// (BenchmarkMultijob gates that); this number gates the scheduling
// machinery itself, which must allocate nothing in steady state so
// million-job scenarios do not churn the GC.
func BenchScenarioChurn(b *testing.B) {
	fabric := topology.Paper()
	order, err := multijob.Ordering("roundrobin", fabric, 1)
	if err != nil {
		b.Fatal(err)
	}
	free, err := multijob.NewFreeList(fabric, order)
	if err != nil {
		b.Fatal(err)
	}
	fcfs, err := scenario.Named("fcfs")
	if err != nil {
		b.Fatal(err)
	}
	// Saturate: a resident job holds most of the fabric, the queue head
	// wants more than the remainder, and one 12-rank job cycles through the
	// free slots forever.
	resident := free.Alloc(free.NumTerminals() - 12)
	defer free.Release(resident)
	ctx := &multijob.SchedContext{
		Queue:  []multijob.QueuedJob{{ID: 0, Spec: multijob.JobSpec{App: "gromacs", NP: 96}}},
		Free:   free,
		Fabric: fabric,
	}
	// Warm the free-list's slice pool so the timed loop recycles.
	free.Release(free.Alloc(12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if picks := fcfs(ctx); len(picks) != 0 {
			b.Fatal("blocked head admitted")
		}
		terms := free.Alloc(12)
		if terms == nil {
			b.Fatal("alloc failed on a free fabric slice")
		}
		free.Release(terms)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchChurnWithFaults measures the degraded-routing transfer hot path: the
// paper XGFT with one switch-to-switch cable down, so every transfer takes
// the fault-aware branch — a RouteDraws into scratch (identical RNG
// consumption to the healthy path) plus a RouteIDsAvoiding detour — instead
// of the route cache. Steady state must allocate nothing, so long faulty
// intervals cost only the detour arithmetic, not GC churn.
func BenchChurnWithFaults(b *testing.B) {
	fabric := topology.Paper()
	net, err := network.New(fabric, network.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fs := topology.NewFaultSet(fabric)
	tab := fabric.Table()
	failed := false
	for id := 0; id < tab.Len(); id += 2 {
		if tab.SwitchToSwitch(topology.LinkID(id)) {
			fs.FailLink(topology.LinkID(id))
			failed = true
			break
		}
	}
	if !failed {
		b.Fatal("no switch-to-switch cable to fail")
	}
	if err := net.SetFaults(fs); err != nil {
		b.Fatal(err)
	}
	// Warm the detour scratch buffers so the timed loop recycles them.
	net.Transfer(0, 37, 8192, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Transfer(i%128, (i+37)%128, 8192, time.Duration(i)*time.Microsecond)
	}
	if net.Unroutable() != 0 {
		b.Fatalf("%d unroutable transfers on a single-cable fault", net.Unroutable())
	}
}

func BenchNetworkTransfer(b *testing.B) {
	net, err := network.New(topology.Paper(), network.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Transfer(i%128, (i+37)%128, 8192, time.Duration(i)*time.Microsecond)
	}
}

// BenchDragonflyTransfer times transfers over the dragonfly preset: the
// generic Fabric routing path (interface dispatch + draw-keyed route cache)
// rather than the paper XGFT's. Inter-group endpoints keep the Valiant
// intermediate-group draw on every transfer.
func BenchDragonflyTransfer(b *testing.B) {
	fabric, err := topology.Named("dragonfly")
	if err != nil {
		b.Fatal(err)
	}
	net, err := network.New(fabric, network.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := fabric.NumTerminals()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Transfer(i%n, (i+n/2+3)%n, 8192, time.Duration(i)*time.Microsecond)
	}
}

func BenchRouteCrossLeaf(b *testing.B) {
	topo := topology.Paper()
	buf := make([]topology.LinkID, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = topo.RouteIDsInto(buf[:0], i%18, 250-(i%18), nil)
	}
}

// BenchBigFabricRoutes measures supercomputer-scale routing throughput: random
// pairs over the 8000-terminal xgft3-big preset through the bounded route
// cache, with live RNG draws (two per cross-tree route). The working set far
// exceeds one cache shard, so the number includes steady-state clock eviction.
func BenchBigFabricRoutes(b *testing.B) {
	fabric, err := topology.Named("xgft3-big")
	if err != nil {
		b.Fatal(err)
	}
	cache := topology.NewRouteCache(fabric)
	rng := rand.New(rand.NewSource(1))
	n := fabric.NumTerminals()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Route(i%n, (i*7919+13)%n, rng)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchBigFabricReplay replays alya at 16 processes spread over the
// 8000-terminal xgft3-big preset: the full engine (routing, timing, power
// mechanism) against per-LinkID state sized for 48000 directed links.
func BenchBigFabricReplay(b *testing.B) {
	tr, err := workloads.Generate("alya", 16, workloads.Options{IterScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01).WithFabric("xgft3-big")
	calls := float64(tr.NumCalls())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(calls*float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

func BenchPredictorOnCall(b *testing.B) {
	p := predictor.MustNew(predictor.Config{GT: 20 * time.Microsecond, Displacement: 0.01})
	var now time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := predictor.EventID(41)
		gap := 5 * time.Microsecond
		switch i % 5 {
		case 0:
			gap = 300 * time.Microsecond
		case 3, 4:
			id, gap = 10, 200*time.Microsecond
		}
		now += gap
		p.OnCall(id, now, now)
	}
}

// BenchTimeSeriesRecord measures the streaming telemetry record path with
// the replay engine's series registry shape: per op, one busy span on a
// util class series, one power-draw span, and one hit-rate sample — the
// work telemetry adds to every simulated transfer. Must stay 0 allocs/op.
func BenchTimeSeriesRecord(b *testing.B) {
	ts := stats.NewTimeSeries(time.Millisecond, replay.DefaultTelemetryBuckets)
	power := ts.AddSpanSeries("power.host", "link-seconds")
	hit := ts.AddSeries("pred.hit", "hit")
	util := [4]stats.SeriesID{
		ts.AddSpanSeries("util.hostup", "busy-seconds"),
		ts.AddSpanSeries("util.hostdn", "busy-seconds"),
		ts.AddSpanSeries("util.up", "busy-seconds"),
		ts.AddSpanSeries("util.down", "busy-seconds"),
	}
	var now time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dur := time.Duration(2+i%17) * time.Microsecond
		ts.RecordSpan(util[i%4], now, now+dur, dur.Seconds())
		ts.RecordSpan(power, now, now+50*time.Microsecond, 43e-6)
		ts.Record(hit, now, float64(i%2))
		now += 30 * time.Microsecond
	}
}

// BenchDetectorAddGram measures the steady-state PPA gram path: a detected
// pattern being predicted over already-interned grams (zero allocations).
func BenchDetectorAddGram(b *testing.B) {
	grams, det := SteadyStateDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.AddGram(grams[i%len(grams)])
	}
}

func BenchFig7(b *testing.B) {
	opt := workloads.Options{IterScale: 0.15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewRunner(opt, replay.DefaultConfig()).Figure(0.10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var save, inc float64
			for _, r := range rows {
				save += r.SavingPct
				inc += r.TimeIncreasePct
			}
			b.ReportMetric(save/float64(len(rows)), "avg_saving_%")
			b.ReportMetric(inc/float64(len(rows)), "avg_time_incr_%")
		}
	}
}

// SteadyStateDetector builds a detector predicting the paper's Figure 3
// pattern and returns one full pattern appearance of finalized grams to
// cycle through it. Feeding the grams in order keeps the detector in
// prediction mode forever; the steady-state AddGram path allocates nothing.
func SteadyStateDetector() ([]*ngram.Gram, *ngram.Detector) {
	const gt = 20 * time.Microsecond
	bl := ngram.NewBuilder(gt)
	det := ngram.NewDetector(0)
	stream := []struct {
		id  ngram.EventID
		gap time.Duration
	}{
		{41, 300 * time.Microsecond}, {41, 5 * time.Microsecond}, {41, 5 * time.Microsecond},
		{10, 200 * time.Microsecond}, {10, 200 * time.Microsecond},
	}
	var grams []*ngram.Gram
	var now time.Duration
	for it := 0; it < 8; it++ {
		for _, ev := range stream {
			now += ev.gap
			if g := bl.Add(ev.id, ev.gap, now, now); g != nil {
				det.AddGram(g)
				if it >= 4 {
					grams = append(grams, g)
				}
			}
		}
	}
	if !det.Predicting() {
		panic("benchio: walkthrough stream did not reach prediction mode")
	}
	// Keep one aligned pattern appearance: the detector's phase after the
	// warmup continues exactly into grams[0].
	size := det.Active().Size()
	grams = grams[len(grams)-size:]
	return grams, det
}
