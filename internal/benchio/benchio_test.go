package benchio

import (
	"os"
	"path/filepath"
	"testing"
)

func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func sample(label string, ns float64) *Report {
	r := NewReport(label, true)
	r.Results = []Result{
		{Name: "BenchmarkB", Iterations: 10, NsPerOp: 2 * ns, AllocsPerOp: 1, BytesPerOp: 64},
		{Name: "BenchmarkA", Iterations: 100, NsPerOp: ns, AllocsPerOp: 0, BytesPerOp: 0,
			Metrics: map[string]float64{"calls/s": 123}},
	}
	return r
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	r := sample("x", 100)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "x" || !got.Smoke || got.Schema != SchemaVersion {
		t.Errorf("header mismatch: %+v", got)
	}
	// WriteFile sorts by name.
	if got.Results[0].Name != "BenchmarkA" || got.Results[1].Name != "BenchmarkB" {
		t.Errorf("results not sorted: %v, %v", got.Results[0].Name, got.Results[1].Name)
	}
	if m := got.Find("BenchmarkA").Metrics["calls/s"]; m != 123 {
		t.Errorf("custom metric lost: %v", m)
	}
	if got.Find("BenchmarkMissing") != nil {
		t.Error("Find returned a result for an unknown name")
	}
}

func TestLoadFileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeRaw(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	wrongSchema := filepath.Join(dir, "schema.json")
	if err := writeRaw(wrongSchema, `{"schema": 999}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(wrongSchema); err == nil {
		t.Error("wrong schema version accepted")
	}
}

func TestCompare(t *testing.T) {
	base := sample("base", 100)
	names := []string{"BenchmarkA", "BenchmarkB"}

	if regs := Compare(base, sample("ok", 150), names, 2.0); len(regs) != 0 {
		t.Errorf("1.5x flagged as regression: %v", regs)
	}
	regs := Compare(base, sample("slow", 250), names, 2.0)
	if len(regs) != 2 {
		t.Fatalf("2.5x not flagged on both benchmarks: %v", regs)
	}
	if regs[0].Ratio != 2.5 {
		t.Errorf("ratio = %v, want 2.5", regs[0].Ratio)
	}
	// A benchmark missing from the current run is a regression, not a pass.
	cur := sample("partial", 100)
	cur.Results = cur.Results[:1]
	if regs := Compare(base, cur, names, 2.0); len(regs) != 1 {
		t.Errorf("missing benchmark not flagged: %v", regs)
	}
	// maxRatio <= 0 defaults to 2.0.
	if regs := Compare(base, sample("d", 190), names, 0); len(regs) != 0 {
		t.Errorf("default ratio rejected 1.9x: %v", regs)
	}
	// allocs/op is gated machine-independently: a 3x allocation growth fails
	// even with ns/op flat, and losing a zero-alloc invariant fails outright.
	worse := sample("allocs", 100)
	worse.Find("BenchmarkB").AllocsPerOp = 3
	worse.Find("BenchmarkA").AllocsPerOp = 50
	regs = Compare(base, worse, names, 2.0)
	if len(regs) != 2 {
		t.Fatalf("allocation regressions not flagged: %v", regs)
	}
	for _, g := range regs {
		if g.Metric != "allocs/op" {
			t.Errorf("regression metric = %q, want allocs/op", g.Metric)
		}
	}
	// bytes/op is gated the same way when the baseline is non-trivial: a 3x
	// growth fails with ns/op and allocs/op flat. BenchmarkA's zero-byte
	// baseline stays exempt (covered by the zero-alloc invariant instead).
	fat := sample("bytes", 100)
	fat.Find("BenchmarkB").BytesPerOp = 192
	regs = Compare(base, fat, names, 2.0)
	if len(regs) != 1 || regs[0].Metric != "bytes/op" || regs[0].Ratio != 3.0 {
		t.Fatalf("bytes/op regression not flagged: %v", regs)
	}
	small := sample("smallbytes", 100)
	small.Find("BenchmarkA").BytesPerOp = 32 // below the 64-byte gate floor
	small.Find("BenchmarkA").AllocsPerOp = 1
	if regs := Compare(base, small, names, 2.0); len(regs) != 0 {
		t.Errorf("trivial bytes baseline gated: %v", regs)
	}
}

func TestSuiteNames(t *testing.T) {
	names := Names()
	want := map[string]bool{
		"BenchmarkReplayAlya16":    true,
		"BenchmarkNetworkTransfer": true,
		"BenchmarkBigFabricRoutes": true,
		"BenchmarkBigFabricReplay": true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("suite is missing the CI-gated benchmarks: %v", want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate suite entry %q", n)
		}
		seen[n] = true
	}
}

// TestSteadyStateDetector pins the helper contract the AddGram benchmark
// relies on: cycling the returned grams keeps the detector predicting.
func TestSteadyStateDetector(t *testing.T) {
	grams, det := SteadyStateDetector()
	if len(grams) == 0 {
		t.Fatal("no grams returned")
	}
	before := det.Stats().Mispredictions
	for i := 0; i < 10*len(grams); i++ {
		det.AddGram(grams[i%len(grams)])
	}
	if !det.Predicting() {
		t.Error("detector dropped out of prediction mode")
	}
	if after := det.Stats().Mispredictions; after != before {
		t.Errorf("mispredictions grew from %d to %d over the steady cycle", before, after)
	}
}
