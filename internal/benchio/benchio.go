// Package benchio runs the repository's headline benchmarks outside `go
// test` and persists the results as BENCH_<label>.json trajectory files, so
// every PR can append a point to the performance history and CI can fail on
// regressions against the checked-in baseline (DESIGN.md §8).
//
// A report records ns/op, allocs/op, B/op and each benchmark's custom
// metrics. Reports are deliberately flat JSON: append-only trajectory
// tooling (and humans) can diff them without schema knowledge.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion identifies the report layout.
const SchemaVersion = 1

// Result is the measurement of one benchmark.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom units (calls/s, saving_%, ...)
}

// Report is one point of the benchmark trajectory.
type Report struct {
	Schema    int      `json:"schema"`
	Label     string   `json:"label"` // trajectory point name, e.g. "3" for PR 3
	Smoke     bool     `json:"smoke"` // true when run with the reduced smoke benchtime
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// NewReport returns an empty report stamped with the build environment.
func NewReport(label string, smoke bool) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Label:     label,
		Smoke:     smoke,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// Find returns the result with the given benchmark name, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Sort orders results by name so reports diff cleanly.
func (r *Report) Sort() {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// WriteFile persists the report as indented JSON at path.
func (r *Report) WriteFile(path string) error {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// LoadFile reads a report written by WriteFile.
func LoadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchio: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchio: %s has schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Regression is one benchmark metric that degraded beyond the allowed ratio.
type Regression struct {
	Name    string
	Metric  string // "ns/op", "allocs/op" or "bytes/op"
	Base    float64
	Current float64
	Ratio   float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %.0f %s -> %.0f %s (%.2fx > allowed)",
		g.Name, g.Base, g.Metric, g.Current, g.Metric, g.Ratio)
}

// Compare checks cur against base for the named benchmarks and returns every
// one whose ns/op — or allocs/op and bytes/op, which are deterministic and
// therefore machine-independent (the ns/op gate needs its 2x margin for
// runner hardware variance; the allocation counters need none) — regressed by
// more than maxRatio. Benchmarks missing from either report are reported as
// regressions (a silently dropped benchmark must not pass the gate).
// maxRatio <= 0 selects 2.0.
func Compare(base, cur *Report, names []string, maxRatio float64) []Regression {
	if maxRatio <= 0 {
		maxRatio = 2.0
	}
	var regs []Regression
	for _, name := range names {
		b, c := base.Find(name), cur.Find(name)
		switch {
		case b == nil || b.NsPerOp <= 0:
			regs = append(regs, Regression{Name: name + " (missing from baseline)", Metric: "ns/op"})
		case c == nil:
			regs = append(regs, Regression{Name: name + " (missing from current run)", Metric: "ns/op", Base: b.NsPerOp})
		default:
			if ratio := c.NsPerOp / b.NsPerOp; ratio > maxRatio {
				regs = append(regs, Regression{Name: name, Metric: "ns/op",
					Base: b.NsPerOp, Current: c.NsPerOp, Ratio: ratio})
			}
			if b.AllocsPerOp > 0 {
				if ratio := float64(c.AllocsPerOp) / float64(b.AllocsPerOp); ratio > maxRatio {
					regs = append(regs, Regression{Name: name, Metric: "allocs/op",
						Base: float64(b.AllocsPerOp), Current: float64(c.AllocsPerOp), Ratio: ratio})
				}
			} else if c.AllocsPerOp > 1 {
				// A zero-alloc baseline is a hard invariant: any sustained
				// allocation (>1/op tolerates amortized growth rounding) fails.
				regs = append(regs, Regression{Name: name, Metric: "allocs/op",
					Base: 0, Current: float64(c.AllocsPerOp), Ratio: float64(c.AllocsPerOp)})
			}
			// bytes/op only gates against a non-trivial baseline: a tiny
			// baseline (a few words of rounding noise) would make the ratio
			// meaningless, and a zero-byte baseline is already covered by the
			// zero-alloc invariant above.
			if b.BytesPerOp >= 64 {
				if ratio := float64(c.BytesPerOp) / float64(b.BytesPerOp); ratio > maxRatio {
					regs = append(regs, Regression{Name: name, Metric: "bytes/op",
						Base: float64(b.BytesPerOp), Current: float64(c.BytesPerOp), Ratio: ratio})
				}
			}
		}
	}
	return regs
}
