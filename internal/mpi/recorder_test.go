package mpi

import (
	"testing"
	"time"

	"ibpower/internal/trace"
)

func TestRecorderCapturesOps(t *testing.T) {
	const np = 4
	rec := NewTraceRecorder("test", np)
	err := Run(np, func(c *Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		for i := 0; i < 5; i++ {
			c.Sendrecv(right, []float64{1, 2}, left)
			busy(50 * time.Microsecond)
			c.Allreduce([]float64{1}, Sum)
		}
		c.Barrier()
		return nil
	}, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NP != np {
		t.Fatalf("NP = %d", tr.NP)
	}
	// 5 iterations × 2 calls + barrier per rank.
	if got := tr.NumCalls(); got != np*11 {
		t.Errorf("calls = %d, want %d", got, np*11)
	}
	// The recorded sendrecv must carry peers and size (2 float64 = 16 B).
	var sr *trace.Op
	for i, op := range tr.Ranks[0] {
		if op.Kind == trace.OpCall && op.Call == trace.CallSendrecv {
			sr = &tr.Ranks[0][i]
			break
		}
	}
	if sr == nil {
		t.Fatal("no sendrecv recorded")
	}
	if sr.Peer != 1 || sr.RecvPeer != np-1 || sr.Bytes != 16 {
		t.Errorf("sendrecv = %+v", *sr)
	}
	// Computation gaps were captured: rank 0 spun ~50 µs per iteration.
	if tr.ComputeTime(0) < 200*time.Microsecond {
		t.Errorf("recorded compute = %v, want >= 200µs", tr.ComputeTime(0))
	}
}

func TestRecorderSPMDAlignment(t *testing.T) {
	// Recorded traces must keep the SPMD call alignment the replayer needs.
	const np = 3
	rec := NewTraceRecorder("align", np)
	err := Run(np, func(c *Comm) error {
		for i := 0; i < 4; i++ {
			c.Barrier()
			c.Allreduce([]float64{float64(c.Rank())}, Sum)
		}
		return nil
	}, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	seq := func(r int) []trace.CallID {
		var out []trace.CallID
		for _, op := range tr.Ranks[r] {
			if op.Kind == trace.OpCall {
				out = append(out, op.Call)
			}
		}
		return out
	}
	ref := seq(0)
	for r := 1; r < np; r++ {
		got := seq(r)
		if len(got) != len(ref) {
			t.Fatalf("rank %d: %d calls vs %d", r, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("rank %d call %d: %v vs %v", r, i, got[i], ref[i])
			}
		}
	}
}

func busy(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}
