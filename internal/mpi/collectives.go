package mpi

import "ibpower/internal/trace"

// ReduceOp combines two values during reductions.
type ReduceOp func(a, b float64) float64

// Built-in reduction operators.
var (
	Sum ReduceOp = func(a, b float64) float64 { return a + b }
	Max ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

func combine(dst, src []float64, op ReduceOp) {
	for i := range dst {
		dst[i] = op(dst[i], src[i])
	}
}

// Allreduce combines data element-wise across all ranks and returns the
// result on every rank. It uses recursive doubling with the standard
// non-power-of-two pre/post phases, the same decomposition the replay
// simulator charges for.
func (c *Comm) Allreduce(data []float64, op ReduceOp) []float64 {
	s := c.enter(trace.CallAllreduce)
	defer func() {
		e := c.exit(trace.CallAllreduce, s)
		c.recordOp(trace.Allreduce(bytesOf(data)), s, e)
	}()

	acc := make([]float64, len(data))
	copy(acc, data)
	np, r := c.Size(), c.Rank()
	if np == 1 {
		return acc
	}
	pof2 := 1
	for pof2*2 <= np {
		pof2 *= 2
	}
	rem := np - pof2

	newRank := -1
	switch {
	case r < 2*rem && r%2 == 0:
		c.send(r+1, acc)
		res := c.recv(r + 1)
		copy(acc, res)
		return acc
	case r < 2*rem:
		combine(acc, c.recv(r-1), op)
		newRank = r / 2
	default:
		newRank = r - rem
	}
	oldRank := func(nr int) int {
		if nr < rem {
			return nr*2 + 1
		}
		return nr + rem
	}
	for mask := 1; mask < pof2; mask <<= 1 {
		partner := oldRank(newRank ^ mask)
		c.send(partner, acc)
		combine(acc, c.recv(partner), op)
	}
	if r < 2*rem {
		c.send(r-1, acc)
	}
	return acc
}

// Barrier blocks until every rank has entered it (dissemination algorithm).
func (c *Comm) Barrier() {
	s := c.enter(trace.CallBarrier)
	defer func() {
		e := c.exit(trace.CallBarrier, s)
		c.recordOp(trace.Barrier(), s, e)
	}()
	np, r := c.Size(), c.Rank()
	for off := 1; off < np; off *= 2 {
		c.send((r+off)%np, nil)
		c.recv((r - off%np + np) % np)
	}
}

// Bcast distributes root's data to every rank (binomial tree) and returns it.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	s := c.enter(trace.CallBcast)
	defer func() {
		e := c.exit(trace.CallBcast, s)
		c.recordOp(trace.Bcast(root, bytesOf(data)), s, e)
	}()
	np, r := c.Size(), c.Rank()
	buf := make([]float64, len(data))
	if r == root {
		copy(buf, data)
	}
	if np == 1 {
		return buf
	}
	vrank := (r - root + np) % np
	mask := 1
	for mask < np {
		if vrank&mask != 0 {
			src := (vrank - mask + root) % np
			buf = c.recv(src)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < np {
			dst := (vrank + mask + root) % np
			c.send(dst, buf)
		}
		mask >>= 1
	}
	return buf
}

// Reduce combines data element-wise onto root (binomial tree); non-root
// ranks receive nil.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) []float64 {
	s := c.enter(trace.CallReduce)
	defer func() {
		e := c.exit(trace.CallReduce, s)
		c.recordOp(trace.Reduce(root, bytesOf(data)), s, e)
	}()
	np, r := c.Size(), c.Rank()
	acc := make([]float64, len(data))
	copy(acc, data)
	if np == 1 {
		return acc
	}
	vrank := (r - root + np) % np
	for mask := 1; mask < np; mask <<= 1 {
		if vrank&mask == 0 {
			if vrank+mask < np {
				src := (vrank + mask + root) % np
				combine(acc, c.recv(src), op)
			}
		} else {
			dst := (vrank - mask + root) % np
			c.send(dst, acc)
			return nil
		}
	}
	return acc
}

// Alltoall exchanges data[i*k:(i+1)*k] with every rank i, where k =
// len(data)/Size(). The result holds the block received from each rank in
// rank order.
func (c *Comm) Alltoall(data []float64) []float64 {
	s := c.enter(trace.CallAlltoall)
	defer func() {
		e := c.exit(trace.CallAlltoall, s)
		perPair := 0
		if c.Size() > 0 {
			perPair = bytesOf(data) / c.Size()
		}
		c.recordOp(trace.Alltoall(perPair), s, e)
	}()
	np, r := c.Size(), c.Rank()
	if len(data)%np != 0 {
		panic("mpi: Alltoall data length not divisible by communicator size")
	}
	k := len(data) / np
	out := make([]float64, len(data))
	copy(out[r*k:(r+1)*k], data[r*k:(r+1)*k])
	for i := 1; i < np; i++ {
		to := (r + i) % np
		from := (r - i + np) % np
		c.send(to, data[to*k:(to+1)*k])
		copy(out[from*k:(from+1)*k], c.recv(from))
	}
	return out
}
