// Package mpi is a miniature in-process MPI runtime: ranks are goroutines,
// point-to-point messages travel over channels, and collectives are built
// from the same algorithms the replay simulator uses. Its purpose is to
// demonstrate the paper's deployment path — the power saving mechanism runs
// inside the profiling (PMPI) layer, so unmodified SPMD programs written
// against this API get link power management for free (Section III).
package mpi

import (
	"fmt"
	"sync"
	"time"

	"ibpower/internal/trace"
)

// Profiler is the PMPI-style interposition interface: Before runs when a
// rank enters an MPI call, After when the call returns. Implementations must
// be cheap; they run on the caller's goroutine.
type Profiler interface {
	Before(call trace.CallID, t time.Duration)
	After(call trace.CallID, start, end time.Duration)
}

// message is one point-to-point payload.
type message struct {
	data []float64
}

// Runtime hosts one SPMD execution. Point-to-point user messages and
// collective-internal messages travel in separate channel contexts, the
// equivalent of MPI's per-communicator message contexts: a collective can
// never intercept a user message posted earlier, and vice versa.
type Runtime struct {
	size  int
	chans [2][][]chan message // chans[ctx][src][dst]
	t0    time.Time

	profFactory func(rank int) Profiler
	recorder    *TraceRecorder
}

// Message contexts.
const (
	ctxUser = iota
	ctxColl
)

// Option configures a Runtime.
type Option func(*Runtime)

// WithProfiler installs a PMPI-layer profiler factory, invoked once per rank.
func WithProfiler(f func(rank int) Profiler) Option {
	return func(rt *Runtime) { rt.profFactory = f }
}

// chanCap is the per-pair channel buffer; deep enough that eager sends of
// the built-in collectives never deadlock.
const chanCap = 64

// NewRuntime prepares a runtime for np ranks.
func NewRuntime(np int, opts ...Option) (*Runtime, error) {
	if np < 1 {
		return nil, fmt.Errorf("mpi: need at least 1 rank, got %d", np)
	}
	rt := &Runtime{size: np}
	for ctx := range rt.chans {
		rt.chans[ctx] = make([][]chan message, np)
		for s := 0; s < np; s++ {
			rt.chans[ctx][s] = make([]chan message, np)
			for d := 0; d < np; d++ {
				rt.chans[ctx][s][d] = make(chan message, chanCap)
			}
		}
	}
	for _, o := range opts {
		o(rt)
	}
	return rt, nil
}

// Run executes fn on every rank concurrently and waits for completion; the
// first error (or panic, re-reported as an error) aborts the caller after
// all ranks finish.
func (rt *Runtime) Run(fn func(c *Comm) error) error {
	rt.t0 = time.Now()
	errs := make([]error, rt.size)
	var wg sync.WaitGroup
	for r := 0; r < rt.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			c := &Comm{rt: rt, rank: rank}
			if rt.profFactory != nil {
				c.prof = rt.profFactory(rank)
			}
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, err)
		}
	}
	return nil
}

// Run is the convenience entry point: build a runtime, run fn on np ranks.
func Run(np int, fn func(c *Comm) error, opts ...Option) error {
	rt, err := NewRuntime(np, opts...)
	if err != nil {
		return err
	}
	return rt.Run(fn)
}

// Comm is one rank's handle onto the runtime (a communicator of all ranks).
type Comm struct {
	rt   *Runtime
	rank int
	prof Profiler
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.rt.size }

// Time returns the elapsed time since the runtime started.
func (c *Comm) Time() time.Duration { return time.Since(c.rt.t0) }

// enter/exit bracket an MPI call through the profiling layer.
func (c *Comm) enter(call trace.CallID) time.Duration {
	t := c.Time()
	if c.prof != nil {
		c.prof.Before(call, t)
	}
	return t
}

func (c *Comm) exit(call trace.CallID, start time.Duration) time.Duration {
	end := c.Time()
	if c.prof != nil {
		c.prof.After(call, start, end)
	}
	return end
}

// sendCtx/recvCtx are the unprofiled internals.
func (c *Comm) sendCtx(ctx, dst int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	c.rt.chans[ctx][c.rank][dst] <- message{data: cp}
}

func (c *Comm) recvCtx(ctx, src int) []float64 {
	m := <-c.rt.chans[ctx][src][c.rank]
	return m.data
}

// send/recv are the collective-context internals used by the algorithms in
// collectives.go.
func (c *Comm) send(dst int, data []float64) { c.sendCtx(ctxColl, dst, data) }
func (c *Comm) recv(src int) []float64       { return c.recvCtx(ctxColl, src) }

// Send transmits data to rank dst (blocking once the channel buffer fills).
func (c *Comm) Send(dst int, data []float64) {
	s := c.enter(trace.CallSend)
	c.sendCtx(ctxUser, dst, data)
	e := c.exit(trace.CallSend, s)
	c.recordOp(trace.Send(dst, bytesOf(data)), s, e)
}

// Recv receives the next message from rank src.
func (c *Comm) Recv(src int) []float64 {
	s := c.enter(trace.CallRecv)
	d := c.recvCtx(ctxUser, src)
	e := c.exit(trace.CallRecv, s)
	c.recordOp(trace.Recv(src), s, e)
	return d
}

// Sendrecv sends data to dst and receives from src.
func (c *Comm) Sendrecv(dst int, data []float64, src int) []float64 {
	s := c.enter(trace.CallSendrecv)
	c.sendCtx(ctxUser, dst, data)
	d := c.recvCtx(ctxUser, src)
	e := c.exit(trace.CallSendrecv, s)
	c.recordOp(trace.Sendrecv(dst, src, bytesOf(data)), s, e)
	return d
}
