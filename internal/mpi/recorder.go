package mpi

import (
	"time"

	"ibpower/internal/trace"
)

// TraceRecorder captures the execution of an SPMD program on the runtime as
// a replayable trace: wall-clock gaps between MPI calls become computation
// bursts, calls become trace operations with their real peers and sizes.
// This is how Dimemas traces are produced from instrumented runs, so a
// recorded program can be fed straight into the replay co-simulator —
// capture once, sweep mechanism parameters offline.
type TraceRecorder struct {
	tr      *trace.Trace
	prevEnd []time.Duration
	started []bool
}

// NewTraceRecorder prepares a recorder for np ranks.
func NewTraceRecorder(app string, np int) *TraceRecorder {
	return &TraceRecorder{
		tr:      trace.New(app, np),
		prevEnd: make([]time.Duration, np),
		started: make([]bool, np),
	}
}

// Trace returns the recorded trace. Call only after the runtime has
// finished.
func (r *TraceRecorder) Trace() *trace.Trace { return r.tr }

// record appends the inter-call computation gap and the operation for one
// rank. Each rank touches only its own stream, so no locking is needed.
func (r *TraceRecorder) record(rank int, op trace.Op, start, end time.Duration) {
	if r.started[rank] && start > r.prevEnd[rank] {
		r.tr.Append(rank, trace.Compute(start-r.prevEnd[rank]))
	}
	r.started[rank] = true
	r.prevEnd[rank] = end
	r.tr.Append(rank, op)
}

// WithRecorder attaches a trace recorder to the runtime. It can be combined
// with WithProfiler; recording happens regardless of the profiler chain.
func WithRecorder(rec *TraceRecorder) Option {
	return func(rt *Runtime) { rt.recorder = rec }
}

// recordOp is invoked from the Comm wrappers with full call metadata.
func (c *Comm) recordOp(op trace.Op, start, end time.Duration) {
	if c.rt.recorder != nil {
		c.rt.recorder.record(c.rank, op, start, end)
	}
}

// bytesOf converts a payload length to wire bytes (float64 elements).
func bytesOf(data []float64) int { return 8 * len(data) }
