package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"ibpower/internal/trace"
)

func TestRankAndSize(t *testing.T) {
	var seen sync.Map
	err := Run(4, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size = %d", c.Size())
		}
		seen.Store(c.Rank(), true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if _, ok := seen.Load(r); !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, []float64{1, 2, 3})
			return nil
		}
		got := c.Recv(0)
		if len(got) != 3 || got[2] != 3 {
			return fmt.Errorf("recv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	// The sender may reuse its buffer immediately after Send returns.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, buf)
			buf[0] = -1 // must not corrupt the message
			c.Barrier()
			return nil
		}
		c.Barrier()
		if got := c.Recv(0); got[0] != 42 {
			return fmt.Errorf("recv = %v, want [42]", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const np = 5
	err := Run(np, func(c *Comm) error {
		r := c.Rank()
		right := (r + 1) % np
		left := (r - 1 + np) % np
		got := c.Sendrecv(right, []float64{float64(r)}, left)
		if got[0] != float64(left) {
			return fmt.Errorf("rank %d got %v from left, want %d", r, got, left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
		want := float64(np * (np - 1) / 2)
		err := Run(np, func(c *Comm) error {
			got := c.Allreduce([]float64{float64(c.Rank())}, Sum)
			if got[0] != want {
				return fmt.Errorf("np=%d rank %d: sum = %v, want %v", np, c.Rank(), got[0], want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const np = 6
	err := Run(np, func(c *Comm) error {
		mx := c.Allreduce([]float64{float64(c.Rank())}, Max)
		mn := c.Allreduce([]float64{float64(c.Rank())}, Min)
		if mx[0] != np-1 || mn[0] != 0 {
			return fmt.Errorf("max=%v min=%v", mx[0], mn[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const np = 8
	var before, after int32
	err := Run(np, func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		// Everyone must have incremented before anyone proceeds.
		if atomic.LoadInt32(&before) != np {
			return fmt.Errorf("barrier released rank %d early (%d/%d arrived)",
				c.Rank(), atomic.LoadInt32(&before), np)
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != np {
		t.Errorf("after = %d", after)
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2, 6} {
		err := Run(7, func(c *Comm) error {
			var data []float64
			if c.Rank() == root {
				data = []float64{3.14, 2.71}
			} else {
				data = make([]float64, 2)
			}
			got := c.Bcast(root, data)
			if got[0] != 3.14 || got[1] != 2.71 {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduce(t *testing.T) {
	const np, root = 9, 4
	err := Run(np, func(c *Comm) error {
		got := c.Reduce(root, []float64{1}, Sum)
		if c.Rank() == root {
			if got == nil || got[0] != np {
				return fmt.Errorf("root result = %v, want [%d]", got, np)
			}
		} else if got != nil {
			return fmt.Errorf("non-root rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const np = 4
	err := Run(np, func(c *Comm) error {
		r := c.Rank()
		data := make([]float64, np)
		for i := range data {
			data[i] = float64(r*10 + i)
		}
		got := c.Alltoall(data)
		for i := range got {
			if got[i] != float64(i*10+r) {
				return fmt.Errorf("rank %d slot %d = %v, want %v", r, i, got[i], float64(i*10+r))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicRecovered(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported as error")
	}
}

func TestErrorPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("deliberate")
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error lost")
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(0); err == nil {
		t.Error("np=0 accepted")
	}
}

// countingProfiler records Before/After invocations per call type.
type countingProfiler struct {
	mu     sync.Mutex
	before map[trace.CallID]int
	after  map[trace.CallID]int
}

func (p *countingProfiler) Before(c trace.CallID, t time.Duration) {
	p.mu.Lock()
	p.before[c]++
	p.mu.Unlock()
}

func (p *countingProfiler) After(c trace.CallID, s, e time.Duration) {
	p.mu.Lock()
	p.after[c]++
	p.mu.Unlock()
}

func TestProfilerHooks(t *testing.T) {
	profs := map[int]*countingProfiler{}
	var mu sync.Mutex
	factory := func(rank int) Profiler {
		p := &countingProfiler{before: map[trace.CallID]int{}, after: map[trace.CallID]int{}}
		mu.Lock()
		profs[rank] = p
		mu.Unlock()
		return p
	}
	const np = 3
	err := Run(np, func(c *Comm) error {
		c.Barrier()
		c.Allreduce([]float64{1}, Sum)
		c.Barrier()
		return nil
	}, WithProfiler(factory))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < np; r++ {
		p := profs[r]
		if p.before[trace.CallBarrier] != 2 || p.after[trace.CallBarrier] != 2 {
			t.Errorf("rank %d barrier hooks: %d/%d, want 2/2",
				r, p.before[trace.CallBarrier], p.after[trace.CallBarrier])
		}
		if p.before[trace.CallAllreduce] != 1 {
			t.Errorf("rank %d allreduce hooks: %d", r, p.before[trace.CallAllreduce])
		}
		// The collective's internal sends/recvs must NOT be profiled: the
		// PMPI layer sees MPI calls, not their decomposition.
		if p.before[trace.CallSend] != 0 || p.before[trace.CallRecv] != 0 {
			t.Errorf("rank %d: internal point-to-points leaked into the profile layer", r)
		}
	}
}

// Property: Allreduce(Sum) equals the serial sum for random vectors and
// communicator sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, npRaw uint8) bool {
		np := int(npRaw%9) + 1
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(5) + 1
		vals := make([][]float64, np)
		want := make([]float64, k)
		for r := range vals {
			vals[r] = make([]float64, k)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(1000)) / 8
				want[i] += vals[r][i]
			}
		}
		ok := true
		var mu sync.Mutex
		err := Run(np, func(c *Comm) error {
			got := c.Allreduce(vals[c.Rank()], Sum)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
