// Tracedriven: the paper's full evaluation pipeline on one workload —
// generate a synthetic ALYA-like trace, pick the grouping threshold by
// sweep, replay it through the fat-tree network simulator with and without
// the mechanism, and print a Figure 7/8/9-style row for each displacement
// factor.
//
//	go run ./examples/tracedriven [-app alya] [-np 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ibpower/internal/harness"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func main() {
	app := flag.String("app", "alya", "workload (alya, gromacs, wrf, nasbt, nasmg)")
	np := flag.Int("np", 16, "number of MPI processes")
	scale := flag.Float64("scale", 0.5, "iteration count multiplier")
	flag.Parse()

	opt := workloads.Options{IterScale: *scale}
	tr, err := workloads.Generate(*app, *np, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s with %d processes: %d MPI calls across ranks\n", *app, *np, tr.NumCalls())

	dist := tr.IdleDistribution()
	fmt.Printf("idle intervals: %d short (<20us), %d medium, %d long (>200us); long intervals hold %.2f%% of idle time\n",
		dist.Count[0], dist.Count[1], dist.Count[2], dist.TimePct(2))

	// Sweep the GT grid on the worker pool; the chosen threshold is the
	// same at any pool size.
	gt, hit, err := harness.ChooseGTParallel(tr, harness.DefaultGTGrid(), 1.0, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("chosen grouping threshold: %v (offline MPI call hit rate %.1f%%)\n\n", gt, hit)

	cfg := replay.DefaultConfig()
	fmt.Println("displacement  saving[%]  time increase[%]  hit[%]")
	for _, d := range []float64{0.10, 0.05, 0.01} {
		row, err := harness.FigurePoint(tr, gt, d, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%10.0f%%  %9.2f  %16.2f  %6.1f\n",
			d*100, row.SavingPct, row.TimeIncreasePct, row.HitRatePct)
	}
	_ = time.Microsecond
}
