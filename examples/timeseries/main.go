// Timeseries: streaming telemetry over a power-managed replay. The run is
// opted into the O(1)-memory telemetry layer (ReplayConfig.WithTelemetry):
// P² sketches summarise each series' whole distribution while fixed-tick
// buckets keep its shape over simulated time, all without storing a single
// raw sample. The example replays one workload with the mechanism on, then
// renders a per-series summary (count, mean, p50/p95/p99 from the sketches)
// and an ASCII profile of host-link power draw per interval — the same data
// `ibpower timeline -timeseries` and `ibpower scenario -timeseries` emit as
// versioned JSON or Prometheus text.
//
//	go run ./examples/timeseries [-app gromacs] [-np 16] [-prom]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ibpower"
)

func main() {
	app := flag.String("app", "gromacs", "workload to replay")
	np := flag.Int("np", 16, "MPI processes")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 1.0, "iteration count multiplier")
	d := flag.Float64("d", 0.25, "displacement factor")
	tick := flag.Duration("tick", time.Millisecond, "initial telemetry bucket width")
	prom := flag.Bool("prom", false, "dump the Prometheus text exposition instead of the summary")
	flag.Parse()

	tr, err := ibpower.GenerateWorkload(*app, *np, ibpower.WorkloadOptions{Seed: *seed, IterScale: *scale})
	if err != nil {
		fatal(err)
	}
	gt, _, err := ibpower.ChooseGT(tr)
	if err != nil {
		fatal(err)
	}
	cfg := ibpower.DefaultReplayConfig().WithPower(gt, *d).WithTelemetry(*tick)
	res, err := ibpower.Replay(tr, cfg)
	if err != nil {
		fatal(err)
	}
	ts := res.Series

	if *prom {
		if err := ts.WriteProm(os.Stdout, ""); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s np=%d: %v simulated, %d telemetry buckets of %v\n\n",
		*app, *np, res.ExecTime.Round(time.Microsecond), ts.Buckets(), ts.Tick())
	fmt.Printf("%-13s %-13s %8s %12s %12s %12s %12s\n",
		"series", "unit", "count", "mean", "p50", "p95", "p99")
	for id := ibpower.SeriesID(0); int(id) < ts.NumSeries(); id++ {
		sk := ts.Sketch(id)
		fmt.Printf("%-13s %-13s %8d %12.6g %12.6g %12.6g %12.6g\n",
			ts.Name(id), ts.Unit(id), sk.Count(), sk.Mean(), sk.P50(), sk.P95(), sk.P99())
	}

	// Per-interval host-link power draw: the span series' bucket sums are
	// link-seconds weighted by each mode's draw fraction, so low buckets are
	// intervals the mechanism had most lanes shut down.
	id, ok := ts.Lookup("power.host")
	if !ok {
		fatal(fmt.Errorf("no power.host series recorded"))
	}
	var max float64
	for b := 0; b < ts.Buckets(); b++ {
		if s := ts.BucketSum(id, b); s > max {
			max = s
		}
	}
	fmt.Printf("\npower.host per %v interval (link-seconds × draw fraction):\n", ts.Tick())
	for b := 0; b < ts.Buckets(); b++ {
		s := ts.BucketSum(id, b)
		width := 0
		if max > 0 {
			width = int(s / max * 50)
		}
		fmt.Printf("%4d |%-50s| %.6g\n", b, strings.Repeat("#", width), s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timeseries:", err)
	os.Exit(1)
}
