// Gtsweep: reproduce the paper's Figure 10 for one workload — the fraction
// of correctly predicted MPI calls as a function of the grouping threshold —
// and render it as a text chart.
//
//	go run ./examples/gtsweep [-app gromacs] [-np 64,128]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ibpower/internal/harness"
	"ibpower/internal/workloads"
)

func main() {
	app := flag.String("app", "gromacs", "workload")
	npList := flag.String("np", "64,128", "comma-separated process counts")
	scale := flag.Float64("scale", 0.5, "iteration count multiplier")
	par := flag.Int("parallel", 0, "max concurrent grid points (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	for _, f := range strings.Split(*npList, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := workloads.Generate(*app, np, workloads.Options{IterScale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pts, err := harness.GTSweepParallel(tr, harness.DefaultGTGrid(), *par)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s, %d processes (Figure 10)\n", *app, np)
		for _, p := range pts {
			bar := strings.Repeat("#", int(p.HitRatePct/2))
			fmt.Printf("  GT %4dus %6.1f%% |%s\n", p.GT/time.Microsecond, p.HitRatePct, bar)
		}
		fmt.Println()
	}
}
