// Quickstart: feed a synthetic MPI event stream through the paper's
// mechanism — gram formation, pattern detection, and WRPS power mode control
// — and print what each component did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/trace"
)

func main() {
	// The mechanism for one MPI process: grouping threshold 20 µs
	// (= 2·Treact, the minimum), displacement factor 1 %.
	pred, err := predictor.New(predictor.Config{
		GT:           20 * time.Microsecond,
		Displacement: 0.01,
	})
	if err != nil {
		panic(err)
	}
	ctrl := power.NewController(power.Treact)
	tl := ctrl.RecordTimeline("host link")

	// Synthetic per-process stream mirroring the paper's Figure 2 (ALYA):
	// three MPI_Sendrecv calls in a tight burst, then two MPI_Allreduce
	// calls separated by long computation phases, repeated each iteration.
	type ev struct {
		id  trace.CallID
		gap time.Duration // idle time before the call
		dur time.Duration // time spent inside the call
	}
	iteration := []ev{
		{trace.CallSendrecv, 480 * time.Microsecond, 8 * time.Microsecond},
		{trace.CallSendrecv, 4 * time.Microsecond, 8 * time.Microsecond},
		{trace.CallSendrecv, 4 * time.Microsecond, 8 * time.Microsecond},
		{trace.CallAllreduce, 350 * time.Microsecond, 12 * time.Microsecond},
		{trace.CallAllreduce, 260 * time.Microsecond, 12 * time.Microsecond},
	}

	var now time.Duration
	shutdowns := 0
	for iter := 0; iter < 12; iter++ {
		for _, e := range iteration {
			now += e.gap
			// The link must be awake to communicate; if the wake timer has
			// not fired yet this pays (part of) the reactivation penalty.
			start := ctrl.Acquire(now)
			end := start + e.dur
			act := pred.OnCall(predictor.EventID(e.id), start, end)
			if act.Shutdown {
				ctrl.Shutdown(end, act.PredictedIdle)
				shutdowns++
				if shutdowns <= 3 {
					fmt.Printf("iter %2d: after %-13v predicted idle %8v -> lanes off, wake timer armed\n",
						iter, e.id, act.PredictedIdle.Round(time.Microsecond))
				}
			}
			now = end
		}
	}
	pred.Flush()
	ctrl.Finish(now)

	st := pred.Stats()
	acct := ctrl.Accounting()
	fmt.Println()
	fmt.Printf("MPI calls observed:        %d\n", st.Calls)
	fmt.Printf("patterns detected:         %d (hit rate %.1f%% of calls)\n",
		st.Detector.Detections, st.HitRatePct())
	fmt.Printf("lane shutdowns issued:     %d (timer wakes %d, demand wakes %d)\n",
		ctrl.Shutdowns, ctrl.TimerWakes, ctrl.DemandWakes)
	fmt.Printf("time in low-power mode:    %v of %v (%.1f%%)\n",
		acct.Low.Round(time.Microsecond), acct.Total().Round(time.Microsecond), 100*acct.LowFraction())
	fmt.Printf("switch power saving:       %.1f%% (low-power mode draws %.0f%% of nominal)\n",
		acct.SavingPct(), 100*power.LowPowerFraction)
	fmt.Println()
	_ = trace.Render(printer{}, []*trace.Timeline{tl}, 100)
}

// printer adapts fmt printing to io.Writer for the timeline rendering.
type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
