// Multijob: several MPI applications sharing one InfiniBand fabric — the
// multi-tenant scenario the paper leaves open. The same job mix is placed by
// every registered placement policy in turn, showing how the neighbors a
// policy gives each job change its idle windows, and with them the power
// mechanism's savings and the sharing slowdown against a dedicated fabric.
// One harness.Runner serves every placement, so traces, Table III grouping
// thresholds and the dedicated-fabric baselines — all placement-independent
// — are computed once, not once per policy.
//
//	go run ./examples/multijob [-jobs gromacs:16,alya:16] [-topo xgft]
package main

import (
	"flag"
	"fmt"
	"os"

	"ibpower/internal/harness"
	"ibpower/internal/multijob"
	"ibpower/internal/replay"
	"ibpower/internal/workloads"
)

func main() {
	jobsStr := flag.String("jobs", "gromacs:16,alya:16", "job mix as app:np,...")
	topo := flag.String("topo", "xgft", "fabric to share")
	seed := flag.Int64("seed", 42, "generation + random-placement seed")
	scale := flag.Float64("scale", 1.0, "iteration count multiplier")
	d := flag.Float64("d", 0.01, "displacement factor")
	flag.Parse()

	jobs, err := multijob.ParseJobs(*jobsStr)
	if err != nil {
		fatal(err)
	}
	runner := harness.NewRunner(
		workloads.Options{Seed: *seed, IterScale: *scale},
		replay.DefaultConfig().WithFabric(*topo))
	for _, placement := range multijob.Names() {
		res, err := runner.Multijob(jobs, placement, *d)
		if err != nil {
			fatal(err)
		}
		if err := multijob.WriteResult(os.Stdout, res); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multijob:", err)
	os.Exit(1)
}
