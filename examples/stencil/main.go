// Stencil: a real SPMD program — 1-D heat diffusion with halo exchanges and
// a periodic residual allreduce — running on the in-process mini-MPI runtime
// with the power saving mechanism installed in the PMPI profiling layer. No
// line of the solver knows the mechanism exists, which is the paper's
// deployment model.
//
//	go run ./examples/stencil [-np 8] [-steps 400] [-cells 4096]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"ibpower/internal/mpi"
	"ibpower/internal/pmpi"
	"ibpower/internal/predictor"
)

func main() {
	np := flag.Int("np", 8, "number of MPI ranks")
	steps := flag.Int("steps", 300, "time steps")
	// The per-step computation must comfortably exceed the grouping
	// threshold for lane shutdown to be worthwhile; 256k cells gives a few
	// hundred microseconds per step on current hardware.
	cells := flag.Int("cells", 262144, "grid cells per rank")
	emulate := flag.Bool("emulate-delays", false, "sleep for reactivation penalties")
	flag.Parse()

	cfg := predictor.Config{GT: 40 * time.Microsecond, Displacement: 0.05}
	var opts []pmpi.Option
	if *emulate {
		opts = append(opts, pmpi.WithDelayEmulation())
	}
	layer, err := pmpi.New(cfg, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t0 := time.Now()
	err = mpi.Run(*np, func(c *mpi.Comm) error {
		return solve(c, *steps, *cells)
	}, mpi.WithProfiler(layer.Factory()))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := layer.Report(time.Since(t0))
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// solve integrates u_t = u_xx explicitly on a ring-decomposed 1-D domain.
func solve(c *mpi.Comm, steps, cells int) error {
	rank, np := c.Rank(), c.Size()
	u := make([]float64, cells+2) // one ghost cell each side
	for i := 1; i <= cells; i++ {
		x := float64(rank*cells+i) / float64(np*cells)
		u[i] = math.Sin(2 * math.Pi * x)
	}
	next := make([]float64, cells+2)
	left := (rank - 1 + np) % np
	right := (rank + 1) % np

	const alpha = 0.25
	for s := 0; s < steps; s++ {
		// Halo exchange: ghost cells from both neighbours.
		u[cells+1] = c.Sendrecv(left, []float64{u[1]}, right)[0]
		u[0] = c.Sendrecv(right, []float64{u[cells]}, left)[0]

		// Computation phase — the idle interval the mechanism reclaims.
		for i := 1; i <= cells; i++ {
			next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
		}
		u, next = next, u

		// Periodic residual check, as solvers do.
		if s%10 == 9 {
			local := 0.0
			for i := 1; i <= cells; i++ {
				local += u[i] * u[i]
			}
			norm := c.Allreduce([]float64{local}, mpi.Sum)[0]
			if math.IsNaN(norm) || math.IsInf(norm, 0) {
				return fmt.Errorf("rank %d: diverged at step %d", rank, s)
			}
		}
	}
	c.Barrier()
	return nil
}
