// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus microbenchmarks of the mechanism's hot paths and the ablation studies
// called out in DESIGN.md §8. Each Benchmark* that maps to a paper artifact
// reports the headline metric of that artifact as a custom unit so that
// `go test -bench=. -benchmem` doubles as the reproduction run.
package ibpower_test

import (
	"io"
	"testing"
	"time"

	"ibpower"
	"ibpower/internal/benchio"
	"ibpower/internal/dvs"
	"ibpower/internal/harness"
	"ibpower/internal/mpi"
	"ibpower/internal/network"
	"ibpower/internal/ngram"
	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// benchOpt keeps the sweep benches affordable; the ibpower CLI runs them at
// full scale.
var benchOpt = workloads.Options{IterScale: 0.15}

// parallelisms enumerates the worker-pool settings the sweep benches
// compare: the serial path (Parallelism: 1) against the GOMAXPROCS pool.
// Output is bit-identical between the two; only wall-clock time differs.
var parallelisms = []struct {
	name string
	par  int
}{{"serial", 1}, {"parallel", 0}}

// --- Table I: distribution of link idle intervals ---

func BenchmarkTableI(b *testing.B) {
	for _, bc := range parallelisms {
		b.Run(bc.name, func(b *testing.B) {
			cfg := replay.DefaultConfig()
			cfg.Parallelism = bc.par
			for i := 0; i < b.N; i++ {
				rows, err := harness.NewRunner(benchOpt, cfg).TableI()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var long float64
					for _, r := range rows {
						long += r.Dist.TimePct(2)
					}
					b.ReportMetric(long/float64(len(rows)), "avg_long_idle_time_%")
				}
			}
		})
	}
}

// --- Table III / Figure 10: grouping threshold selection ---

func BenchmarkTableIII_GTChoice(b *testing.B) {
	tr, err := workloads.Generate("alya", 16, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	grid := harness.DefaultGTGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gt, hit, err := harness.ChooseGT(tr, grid, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(gt/time.Microsecond), "GT_us")
			b.ReportMetric(hit, "hit_%")
		}
	}
}

func BenchmarkFig10_GTSweepGromacs(b *testing.B) {
	for _, np := range []int{64, 128} {
		b.Run(procName(np), func(b *testing.B) {
			tr, err := workloads.Generate("gromacs", np, benchOpt)
			if err != nil {
				b.Fatal(err)
			}
			for _, bc := range parallelisms {
				b.Run(bc.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						pts, err := harness.GTSweepParallel(tr, harness.DefaultGTGrid(), bc.par)
						if err != nil {
							b.Fatal(err)
						}
						if i == 0 {
							best := 0.0
							for _, p := range pts {
								if p.HitRatePct > best {
									best = p.HitRatePct
								}
							}
							b.ReportMetric(best, "best_hit_%")
						}
					}
				})
			}
		})
	}
}

// --- Table IV: PPA overheads at 16 processes ---

func BenchmarkTableIV_Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableIV(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var amort float64
			for _, r := range rows {
				amort += float64(r.Report.PerCallAmortized.Nanoseconds()) / 1e3
			}
			b.ReportMetric(amort/float64(len(rows)), "avg_us_per_call")
		}
	}
}

// --- Figures 7, 8, 9: power savings and execution time increase ---

func benchFigure(b *testing.B, displacement float64) {
	b.Helper()
	for _, bc := range parallelisms {
		b.Run(bc.name, func(b *testing.B) {
			cfg := replay.DefaultConfig()
			cfg.Parallelism = bc.par
			for i := 0; i < b.N; i++ {
				// A fresh Runner per iteration so every iteration pays the
				// full generate + choose-GT + replay pipeline.
				rows, err := harness.NewRunner(benchOpt, cfg).Figure(displacement)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var save, inc float64
					for _, r := range rows {
						save += r.SavingPct
						inc += r.TimeIncreasePct
					}
					b.ReportMetric(save/float64(len(rows)), "avg_saving_%")
					b.ReportMetric(inc/float64(len(rows)), "avg_time_incr_%")
				}
			}
		})
	}
}

func BenchmarkFig7_Displacement10(b *testing.B) { benchFigure(b, 0.10) }
func BenchmarkFig8_Displacement5(b *testing.B)  { benchFigure(b, 0.05) }
func BenchmarkFig9_Displacement1(b *testing.B)  { benchFigure(b, 0.01) }

// --- Figure 6: link power timeline ---

func BenchmarkFig6_Timeline(b *testing.B) {
	tr, err := workloads.Generate("gromacs", 16, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := replay.DefaultConfig().WithPower(40*time.Microsecond, 0.10)
	cfg.Power.RecordTimelines = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := replay.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Timelines) != 16 {
			b.Fatalf("timelines = %d", len(res.Timelines))
		}
		if i == 0 {
			if err := trace.Render(io.Discard, res.Timelines, 120); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 2/3: the PPA walkthrough stream ---

func BenchmarkFig3_PPAWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bl := ngram.NewBuilder(20 * time.Microsecond)
		det := ngram.NewDetector(0)
		var now time.Duration
		for it := 0; it < 8; it++ {
			for _, ev := range []struct {
				id  ngram.EventID
				gap time.Duration
			}{
				{41, 300 * time.Microsecond}, {41, 5 * time.Microsecond}, {41, 5 * time.Microsecond},
				{10, 200 * time.Microsecond}, {10, 200 * time.Microsecond},
			} {
				now += ev.gap
				if g := bl.Add(ev.id, ev.gap, now, now); g != nil {
					det.AddGram(g)
				}
			}
		}
		if !det.Predicting() {
			b.Fatal("pattern not predicted")
		}
	}
}

// --- Ablations (DESIGN.md §8) ---

// BenchmarkAblationNetFidelity compares the message-level fast path against
// segment-level store-and-forward on the same workload.
func BenchmarkAblationNetFidelity(b *testing.B) {
	tr, err := workloads.Generate("alya", 16, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    network.Fidelity
	}{{"message", network.MessageLevel}, {"segment", network.SegmentLevel}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := replay.DefaultConfig()
			cfg.Net.Mode = mode.m
			for i := 0; i < b.N; i++ {
				res, err := replay.Run(tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.ExecTime.Microseconds()), "sim_exec_us")
				}
			}
		})
	}
}

// BenchmarkAblationOracleVsPPA bounds the prediction loss: the oracle knows
// every idle interval exactly.
func BenchmarkAblationOracleVsPPA(b *testing.B) {
	tr, err := workloads.Generate("nasbt", 16, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := predictor.Config{GT: 20 * time.Microsecond, Displacement: 0.01}
	b.Run("ppa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := predictor.RunOffline(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(avgSaving(res), "saving_%")
			}
		}
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := predictor.RunOfflineOracle(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(avgSaving(res), "saving_%")
			}
		}
	})
}

func avgSaving(res *predictor.OfflineResult) float64 {
	s := 0.0
	for _, a := range res.Acct {
		s += a.SavingPct()
	}
	return s / float64(len(res.Acct))
}

// BenchmarkAblationDisplacementSweep extends the paper's three displacement
// points across a finer grid.
func BenchmarkAblationDisplacementSweep(b *testing.B) {
	tr, err := workloads.Generate("wrf", 16, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	gt, _, err := harness.ChooseGT(tr, harness.DefaultGTGrid(), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40} {
		b.Run(pctName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := replay.Run(tr, replay.DefaultConfig().WithPower(gt, d))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.AvgSavingPct(), "saving_%")
				}
			}
		})
	}
}

// BenchmarkBaselineDVS compares the WRPS mechanism against the related-work
// history-based link DVS policy (Section V) on host-link power.
func BenchmarkBaselineDVS(b *testing.B) {
	tr, err := workloads.Generate("gromacs", 8, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("wrps", func(b *testing.B) {
		cfg := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01)
		for i := 0; i < b.N; i++ {
			res, err := replay.Run(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.AvgSavingPct(), "saving_%")
			}
		}
	})
	b.Run("dvs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dvs.Evaluate(tr, dvs.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.AvgSavingPct(), "saving_%")
				b.ReportMetric(float64(res.AvgAddedSerial().Microseconds()), "added_serial_us")
			}
		}
	})
}

// BenchmarkAblationDeepSleep evaluates the Section VI deep mode against
// lanes-only WRPS at a 400 µs deep reactivation.
func BenchmarkAblationDeepSleep(b *testing.B) {
	tr, err := workloads.Generate("gromacs", 8, benchOpt)
	if err != nil {
		b.Fatal(err)
	}
	lanes := replay.DefaultConfig().WithPower(20*time.Microsecond, 0.01)
	deep := lanes.WithDeepSleep(power.DeepConfig{Treact: 400 * time.Microsecond})
	for _, c := range []struct {
		name string
		cfg  replay.Config
	}{{"lanes", lanes}, {"deep", deep}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := replay.Run(tr, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.AvgSavingPct(), "saving_%")
				}
			}
		})
	}
}

// --- Microbenchmarks of the hot paths ---
//
// The headline bodies live in internal/benchio (one source of truth for the
// BENCH_<n>.json trajectory and the CI bench-smoke gate); the wrappers here
// keep them runnable under `go test -bench` with the canonical names.

func BenchmarkPredictorOnCall(b *testing.B) { benchio.BenchPredictorOnCall(b) }

func BenchmarkGramBuilder(b *testing.B) {
	bl := ngram.NewBuilder(20 * time.Microsecond)
	var now time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap := 5 * time.Microsecond
		if i%4 == 0 {
			gap = 100 * time.Microsecond
		}
		now += gap
		bl.Add(ngram.EventID(i%3+1), gap, now, now)
	}
}

func BenchmarkControllerCycle(b *testing.B) {
	c := ibpower.NewLinkController(0)
	b.ReportAllocs()
	b.ResetTimer()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		c.Shutdown(now, 200*time.Microsecond)
		now += 300 * time.Microsecond
		now = c.Acquire(now)
	}
}

func BenchmarkNetworkTransfer(b *testing.B) { benchio.BenchNetworkTransfer(b) }

// BenchmarkDragonflyTransfer times the generic Fabric routing path: the
// dragonfly preset with its per-transfer Valiant intermediate-group draw.
func BenchmarkDragonflyTransfer(b *testing.B) { benchio.BenchDragonflyTransfer(b) }

func BenchmarkRouteCrossLeaf(b *testing.B) { benchio.BenchRouteCrossLeaf(b) }

// BenchmarkBigFabricRoutes reports routes/s over the 8000-terminal xgft3-big
// preset through the bounded route cache (steady-state clock eviction).
func BenchmarkBigFabricRoutes(b *testing.B) { benchio.BenchBigFabricRoutes(b) }

// BenchmarkBigFabricReplay reports replay calls/s with ranks on the
// 8000-terminal xgft3-big preset.
func BenchmarkBigFabricReplay(b *testing.B) { benchio.BenchBigFabricReplay(b) }

func BenchmarkReplayAlya16(b *testing.B) { benchio.BenchReplayAlya16(b) }

// BenchmarkStreamReplay reports events/s for the file-backed streaming replay
// path: the alya-16 workload packed into the binary trace format and replayed
// through bounded per-rank read windows; bytes/op stays O(window).
func BenchmarkStreamReplay(b *testing.B) { benchio.BenchStreamReplay(b) }

// BenchmarkMultijob times the shared-fabric engine: a gromacs + alya mix
// round-robin-interleaved across the paper XGFT's leaf switches.
func BenchmarkMultijob(b *testing.B) { benchio.BenchMultijob(b) }

// BenchmarkScenarioChurn reports jobs/s through the churn event loop's
// steady state (scheduler scan + pooled terminal claim/release), which must
// stay at 0 allocs/op.
func BenchmarkScenarioChurn(b *testing.B) { benchio.BenchScenarioChurn(b) }

// BenchmarkChurnWithFaults times the degraded-routing transfer path: every
// transfer detours around a failed cable (cache bypass + RouteIDsAvoiding),
// which must stay at 0 allocs/op in steady state.
func BenchmarkChurnWithFaults(b *testing.B) { benchio.BenchChurnWithFaults(b) }

// BenchmarkDetectorAddGram measures the steady-state PPA gram path: a
// detected pattern being predicted over interned grams (zero allocations).
func BenchmarkDetectorAddGram(b *testing.B) { benchio.BenchDetectorAddGram(b) }

// BenchmarkTimeSeriesRecord measures the streaming telemetry record path
// (span + sample recording into P²-sketched interval buckets), the work
// -timeseries adds per simulated transfer; must stay at 0 allocs/op.
func BenchmarkTimeSeriesRecord(b *testing.B) { benchio.BenchTimeSeriesRecord(b) }

func BenchmarkMiniMPIAllreduce(b *testing.B) {
	const np = 8
	b.ResetTimer()
	err := mpi.Run(np, func(c *mpi.Comm) error {
		data := []float64{float64(c.Rank())}
		for i := 0; i < b.N; i++ {
			c.Allreduce(data, mpi.Sum)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func procName(np int) string {
	return "np" + itoa(np)
}

func pctName(d float64) string {
	return "d" + itoa(int(d*100)) + "pct"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
