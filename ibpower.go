// Package ibpower reproduces "Software-Managed Power Reduction in Infiniband
// Links" (Dickov, Pericàs, Carpenter, Navarro, Ayguadé; ICPP 2014): a
// software mechanism that predicts the idle intervals between MPI
// communication phases with an n-gram pattern prediction algorithm (PPA) and
// shuts down three of the four lanes of each 4X InfiniBand link for the
// predicted duration (Mellanox Width Reduction Power Saving), cutting switch
// power by up to ~33 % at ~1 % execution-time cost.
//
// This root package is the public facade over the implementation packages:
//
//   - Predictor / PredictorConfig — the pluggable per-process idle
//     predictor. The paper's mechanism (gram formation, Algorithm 1; PPA,
//     Algorithm 2; displacement-factor power mode control, Algorithm 3)
//     registers as "ngram", the default, next to the "oracle", "offline",
//     "lastvalue", "ewma" and "static-gt" predictors; select by name with
//     NewNamedPredictor or ReplayConfig.WithPredictor, enumerate with
//     Predictors, and add implementations with RegisterPredictor.
//   - LinkController — the HCA link power controller with the hardware wake
//     timer (Figure 5) and per-mode energy accounting.
//   - GenerateWorkload — synthetic stand-ins for the paper's five production
//     traces (GROMACS, ALYA, WRF, NAS BT, NAS MG).
//   - Replay — the Dimemas/Venus-style co-simulator: MPI replay over a
//     pluggable interconnect fabric with the Table II parameters. The
//     paper's XGFT(2;18,14;1,18) fat tree is the default; a three-level
//     XGFT, a dragonfly and 2D/3D tori register next to it. Select by name
//     with ReplayConfig.WithFabric, enumerate with Fabrics, and add
//     implementations with RegisterFabric.
//   - RunMultijob — the multi-tenant extension: several independent
//     workloads sharing one fabric, placed by a pluggable policy ("linear",
//     "random", "roundrobin"; select with MultijobConfig.Placement,
//     enumerate with Placements, add implementations with
//     RegisterPlacement), with per-job and fabric-wide energy accounting.
//   - RunScenario — job churn on the shared fabric: a ScenarioSpec
//     ("jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7") expands into
//     a seeded arrival stream, jobs queue under a scheduling policy from
//     the module's fourth named registry ("fcfs", "backfill", "power-aware";
//     enumerate with Schedulers, add implementations with
//     RegisterScheduler), and results report makespan, the queue-wait
//     distribution, fabric utilization over time, and per-job energy. A
//     faults key ("faults=link:poisson:10m:mttr=2m") injects seeded
//     hardware failures: routing detours around dead links and killed jobs
//     retry with exponential backoff (ParseScenarioFaults, RetryPolicy).
//   - RunSPMD / PowerLayer — the mini-MPI runtime with the mechanism
//     installed in the PMPI profiling layer, the paper's deployment model.
//
// The experiment harness behind every table and figure of the paper lives in
// internal/harness and is exposed through the ibpower command
// (cmd/ibpower) and the root benchmarks (bench_test.go). See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
package ibpower

import (
	"io"
	"time"

	"ibpower/internal/harness"
	"ibpower/internal/mpi"
	"ibpower/internal/multijob"
	"ibpower/internal/pmpi"
	"ibpower/internal/power"
	"ibpower/internal/predictor"
	"ibpower/internal/replay"
	"ibpower/internal/scenario"
	"ibpower/internal/stats"
	"ibpower/internal/topology"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// Paper constants (Section II).
const (
	// Treact is the lane (de)activation time: up to 10 µs.
	Treact = power.Treact
	// GTMin is the smallest admissible grouping threshold, 2·Treact.
	GTMin = harness.GTMin
	// LowPowerFraction is the switch power draw in WRPS mode relative to
	// nominal (Mellanox SX6036: 43 %).
	LowPowerFraction = power.LowPowerFraction
	// MaxSavingPct is the physical ceiling on switch power savings.
	MaxSavingPct = power.MaxSavingFraction * 100
)

// Core mechanism types.
type (
	// PredictorConfig parameterises the mechanism: grouping threshold,
	// displacement factor, reactivation time and maximum pattern size.
	PredictorConfig = predictor.Config
	// Predictor is the pluggable per-MPI-process idle predictor interface.
	// Feed an instance every intercepted call via OnCall.
	Predictor = predictor.Predictor
	// NGramPredictor is the paper's concrete mechanism (the "ngram"
	// registry entry): gram formation + PPA + power mode control.
	NGramPredictor = predictor.NGram
	// PredictorFactory constructs per-rank instances of a registered
	// predictor.
	PredictorFactory = predictor.Factory
	// Action is OnCall's verdict: whether to shut lanes down and for how
	// long.
	Action = predictor.Action
	// PredictorStats aggregates hit rates and detector counters.
	PredictorStats = predictor.Stats
	// OverheadModel charges the mechanism's software costs (Table IV).
	OverheadModel = predictor.OverheadModel
	// LinkController models the link power controller with its wake timer.
	LinkController = power.Controller
	// PowerAccounting is per-mode accumulated link time.
	PowerAccounting = power.Accounting
	// EventID identifies an MPI call type in the event stream.
	EventID = predictor.EventID
)

// Trace and workload types.
type (
	// Trace is a per-rank MPI event trace (compute bursts + calls).
	Trace = trace.Trace
	// TraceOp is one trace operation.
	TraceOp = trace.Op
	// WorkloadOptions seeds and scales trace generation.
	WorkloadOptions = workloads.Options
	// IdleDist is the Table I idle-interval distribution.
	IdleDist = trace.IdleDist
)

// Simulation types.
type (
	// ReplayConfig parameterises the co-simulation (Table II defaults).
	ReplayConfig = replay.Config
	// ReplayResult carries execution time, per-link power accounting and
	// mechanism counters.
	ReplayResult = replay.Result
	// Fabric is the pluggable interconnect abstraction the network model
	// times transfers over (terminals, a flat LinkID-indexed link table,
	// routing with an explicit RNG-draw contract for the route cache).
	Fabric = topology.Fabric
	// LinkID is a compact directed-link index into a Fabric's link table;
	// Fabric paths and per-link state are keyed by it.
	LinkID = topology.LinkID
)

// Multi-job (shared fabric) simulation types.
type (
	// JobSpec names one workload of a multi-job mix ("gromacs" at 64
	// processes).
	JobSpec = multijob.JobSpec
	// MultijobConfig parameterises a shared-fabric simulation: the job mix,
	// the placement policy, and the replay configuration every job shares.
	MultijobConfig = multijob.Config
	// MultijobResult carries per-job statistics (runtime, energy, hit rate,
	// sharing overhead vs a dedicated fabric) and fabric-wide aggregates
	// (per-link utilization, decomposed switch power saving).
	MultijobResult = multijob.Result
	// PlacementFunc maps a job mix onto fabric terminals; implementations
	// register with RegisterPlacement.
	PlacementFunc = multijob.PlaceFunc
)

// Job churn (scenario) simulation types.
type (
	// ScenarioSpec describes an arrival stream: job count, application mix,
	// size distribution, arrival process, speed multiplier and seed. Build
	// one with ParseScenarioSpec, ParseScenarioSpecFile or
	// DefaultScenarioSpec; the zero value fails validation.
	ScenarioSpec = scenario.Spec
	// ScenarioConfig parameterises a churn simulation: the spec, the
	// scheduler and placement registry names, and the replay configuration
	// every job shares.
	ScenarioConfig = scenario.Config
	// Arrival is one timed job arrival of the expanded stream.
	Arrival = multijob.Arrival
	// ChurnResult carries the scenario outcome: per-job records in arrival
	// order, the queue-wait distribution, per-bucket fabric utilization and
	// fabric-wide aggregates.
	ChurnResult = multijob.ChurnResult
	// ChurnJob is one completed job's record (arrival, wait, start, finish,
	// terminals held, energy and sharing overhead).
	ChurnJob = multijob.ChurnJob
	// SchedContext is the queue-and-fabric snapshot a scheduling policy
	// decides over.
	SchedContext = multijob.SchedContext
	// SchedFunc picks which queued jobs to admit, by queue index;
	// implementations register with RegisterScheduler.
	SchedFunc = multijob.SchedFunc
	// FaultClause is one hardware failure process of a scenario: a kind
	// (link, switch, terminal), a mean-time-between-failures arrival process,
	// and a mean time to repair (zero = permanent).
	FaultClause = scenario.FaultClause
	// RetryPolicy governs requeueing of fault-killed jobs: a retry budget
	// and an exponential backoff base.
	RetryPolicy = multijob.RetryPolicy
)

// Streaming telemetry types (internal/stats).
type (
	// P2Quantile is a Jain/Chlamtac P² streaming quantile estimator: any
	// quantile φ in O(1) memory with no stored samples. Mergeable.
	P2Quantile = stats.P2Quantile
	// KahanMean is a compensated (Neumaier) streaming mean/sum accumulator.
	KahanMean = stats.KahanMean
	// Welford is an online mean/variance accumulator with a
	// Chan/Golub/LeVeque parallel merge.
	Welford = stats.Welford
	// Sketch summarises a value stream: count, compensated mean, min, max
	// and P² estimates of p50/p95/p99. Mergeable across shards.
	Sketch = stats.Sketch
	// TimeSeries is an interval-bucketed recorder of named series over
	// simulated time: fixed tick, preallocated rings, zero allocations on
	// the record path, tick doubling when a run outgrows the ring.
	TimeSeries = stats.TimeSeries
	// SeriesID indexes a registered series of a TimeSeries.
	SeriesID = stats.SeriesID
	// TimeSeriesDoc is the versioned JSON document a TimeSeries snapshots
	// to (the ibpower -timeseries output format).
	TimeSeriesDoc = stats.TimeSeriesDoc
	// SeriesSnapshot is one series of a TimeSeriesDoc.
	SeriesSnapshot = stats.SeriesSnapshot
	// TelemetryConfig opts a replay/multijob/scenario run into streaming
	// telemetry recording (ReplayConfig.Telemetry); the zero value is off.
	TelemetryConfig = replay.TelemetryConfig
)

// Runtime (deployment path) types.
type (
	// Comm is a mini-MPI communicator handle.
	Comm = mpi.Comm
	// PowerLayer is the PMPI-style profiling layer with the mechanism.
	PowerLayer = pmpi.Layer
	// PowerReport is the aggregated outcome of a profiled run.
	PowerReport = pmpi.Report
)

// NewPredictor builds the paper's n-gram per-process mechanism instance.
func NewPredictor(cfg PredictorConfig) (*NGramPredictor, error) { return predictor.New(cfg) }

// NewNamedPredictor builds a per-process instance of any registered
// predictor ("ngram", "oracle", "offline", "lastvalue", "ewma",
// "static-gt", or anything added via RegisterPredictor).
func NewNamedPredictor(name string, cfg PredictorConfig) (Predictor, error) {
	return predictor.NewNamed(name, cfg)
}

// Predictors returns the registered predictor names, sorted.
func Predictors() []string { return predictor.Names() }

// RegisterPredictor adds a predictor implementation to the registry; it
// panics on duplicate names. Registered predictors are selectable by every
// harness experiment, ReplayConfig.WithPredictor, and the ibpower command's
// -predictor flag.
func RegisterPredictor(name string, f PredictorFactory) { predictor.Register(name, f) }

// NewLinkController builds a link power controller; treact <= 0 selects the
// paper's 10 µs.
func NewLinkController(treact time.Duration) *LinkController {
	return power.NewController(treact)
}

// DefaultOverheads returns the Table IV-calibrated software costs.
func DefaultOverheads() OverheadModel { return predictor.DefaultOverheads() }

// Workloads returns the generatable application names.
func Workloads() []string { return workloads.Apps() }

// WorkloadProcCounts returns the process counts the paper evaluates for app.
func WorkloadProcCounts(app string) []int { return workloads.ProcCounts(app) }

// GenerateWorkload builds a synthetic trace for one of the paper's five
// applications at the given process count.
func GenerateWorkload(app string, np int, opt WorkloadOptions) (*Trace, error) {
	return workloads.Generate(app, np, opt)
}

// ReadTrace parses a trace in the text format; WriteTrace serialises one.
func ReadTrace(r io.Reader) (*Trace, error)   { return trace.Read(r) }
func WriteTrace(w io.Writer, tr *Trace) error { return tr.Write(w) }

// DefaultReplayConfig returns the paper's Table II simulation parameters
// with the mechanism disabled (the power-unaware baseline).
func DefaultReplayConfig() ReplayConfig { return replay.DefaultConfig() }

// Fabrics returns the registered interconnect fabric names, sorted
// ("dragonfly", "dragonfly-big", "torus2d", "torus3d", "xgft", "xgft3",
// "xgft3-big", plus anything added via RegisterFabric).
func Fabrics() []string { return topology.Names() }

// NamedFabric returns the shared immutable instance of a registered fabric;
// the empty name selects the paper's XGFT(2;18,14;1,18).
func NamedFabric(name string) (Fabric, error) { return topology.Named(name) }

// RegisterFabric adds an interconnect implementation to the registry; it
// panics on duplicate names. Registered fabrics are selectable by every
// harness experiment, ReplayConfig.WithFabric, and the ibpower command's
// -topo flag. The constructor runs at most once: the built fabric is shared,
// so it must be immutable.
func RegisterFabric(name string, build func() (Fabric, error)) { topology.Register(name, build) }

// Replay re-executes the trace under cfg. Enable the mechanism with
// cfg.WithPower(gt, displacement).
func Replay(tr *Trace, cfg ReplayConfig) (*ReplayResult, error) { return replay.Run(tr, cfg) }

// ParseJobs parses a multi-job mix in the "app:np,app:np" form the ibpower
// multijob -jobs flag uses, e.g. "gromacs:64,alya:16".
func ParseJobs(s string) ([]JobSpec, error) { return multijob.ParseJobs(s) }

// Placements returns the registered placement policy names, sorted
// ("linear", "random", "roundrobin", plus anything added via
// RegisterPlacement).
func Placements() []string { return multijob.Names() }

// RegisterPlacement adds a placement policy to the registry; it panics on
// duplicate names. Registered policies are selectable by RunMultijob, the
// harness sharing sweep, and the ibpower command's -placement flag.
func RegisterPlacement(name string, fn PlacementFunc) { multijob.Register(name, fn) }

// RunMultijob simulates several independent workloads concurrently on one
// shared fabric: each job gets its own trace, predictor and
// placement-assigned terminals, links observe the union of all jobs'
// traffic, and results are reported per job and fabric-wide. Results are
// deterministic for a given configuration at any Parallelism setting.
func RunMultijob(cfg MultijobConfig) (*MultijobResult, error) { return multijob.Run(cfg) }

// ParseScenarioSpec parses the comma-separated key=value scenario form the
// ibpower scenario -spec flag uses, e.g.
// "jobs=200,size=zipf:16:256,arrival=poisson:30s,seed=7". Omitted keys take
// DefaultScenarioSpec values; the canonical String() form reparses to an
// identical spec.
func ParseScenarioSpec(s string) (ScenarioSpec, error) { return scenario.ParseSpec(s) }

// ParseScenarioSpecFile parses the file form: one key=value per line, blank
// lines and # comments ignored.
func ParseScenarioSpecFile(path string) (ScenarioSpec, error) { return scenario.ParseSpecFile(path) }

// DefaultScenarioSpec returns a moderate churn scenario drawing from every
// registered workload.
func DefaultScenarioSpec() ScenarioSpec { return scenario.DefaultSpec() }

// Schedulers returns the registered scheduling policy names, sorted
// ("backfill", "fcfs", "power-aware", plus anything added via
// RegisterScheduler).
func Schedulers() []string { return scenario.Names() }

// RegisterScheduler adds a scheduling policy to the registry; it panics on
// duplicate names. Registered policies are selectable by RunScenario, the
// harness churn sweep, and the ibpower command's -sched flag.
func RegisterScheduler(name string, fn SchedFunc) { scenario.Register(name, fn) }

// RunScenario expands the spec into a seeded arrival stream and simulates
// the churn: jobs queue under the configured scheduler, claim
// placement-ordered terminals, run on the shared fabric and release on
// completion. When the spec carries fault clauses, seeded link/switch/
// terminal failures fire alongside the arrivals: routes detour around
// failed hardware, jobs whose terminals die are killed and retried under
// the config's RetryPolicy, and the result reports kills, goodput and
// surviving capacity. Results are deterministic for a given configuration
// at any Parallelism setting and across repeats of the same seed.
func RunScenario(cfg ScenarioConfig) (*ChurnResult, error) { return scenario.Run(cfg) }

// ParseScenarioFaults parses the fault spec form the ibpower scenario
// -faults flag uses: comma-separated kind:dist:mean[:mttr=duration] clauses,
// e.g. "link:poisson:10m:mttr=2m,switch:fixed:5m". Kinds are link (a
// switch-to-switch cable), switch (a whole switch and its terminals), and
// term (one terminal). FormatScenarioFaults renders clauses back in
// canonical form.
func ParseScenarioFaults(s string) ([]FaultClause, error) { return scenario.ParseFaults(s) }

// FormatScenarioFaults renders fault clauses in canonical ParseScenarioFaults
// form.
func FormatScenarioFaults(cs []FaultClause) string { return scenario.FormatFaults(cs) }

// ChooseGT selects the grouping threshold for a trace by sweeping the
// Figure 10 grid, trading MPI-call hit rate against low-power opportunity
// (Section IV-C). The grid is evaluated on a GOMAXPROCS worker pool; the
// choice is identical to a serial sweep.
func ChooseGT(tr *Trace) (gt time.Duration, hitRatePct float64, err error) {
	return harness.ChooseGTParallel(tr, harness.DefaultGTGrid(), 1.0, 0)
}

// NewP2Quantile builds a P² estimator for quantile phi in [0,1].
func NewP2Quantile(phi float64) P2Quantile { return stats.NewP2Quantile(phi) }

// NewSketch builds a stream summary tracking count, mean, min, max and the
// p50/p95/p99 quantile estimates.
func NewSketch() *Sketch { return stats.NewSketch() }

// NewTimeSeries builds an interval-bucketed telemetry recorder with the given
// bucket width and ring capacity (buckets < 2 is clamped; the tick doubles and
// adjacent buckets fold when a run outgrows the ring).
func NewTimeSeries(tick time.Duration, buckets int) *TimeSeries {
	return stats.NewTimeSeries(tick, buckets)
}

// NewPowerLayer builds the PMPI-style power saving layer for RunSPMD.
func NewPowerLayer(cfg PredictorConfig, opts ...pmpi.Option) (*PowerLayer, error) {
	return pmpi.New(cfg, opts...)
}

// RunSPMD executes fn on np concurrent ranks of the mini-MPI runtime with
// the given power layer installed (pass nil to run unprofiled).
func RunSPMD(np int, layer *PowerLayer, fn func(c *Comm) error) error {
	var opts []mpi.Option
	if layer != nil {
		opts = append(opts, mpi.WithProfiler(layer.Factory()))
	}
	return mpi.Run(np, fn, opts...)
}

// RecordSPMD executes fn on np ranks while capturing a replayable trace —
// the instrumented-run half of the paper's trace-driven methodology. The
// recorded trace can be fed to Replay to sweep mechanism parameters offline.
func RecordSPMD(app string, np int, fn func(c *Comm) error) (*Trace, error) {
	rec := mpi.NewTraceRecorder(app, np)
	if err := mpi.Run(np, fn, mpi.WithRecorder(rec)); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}
