package ibpower_test

import (
	"bytes"
	"testing"
	"time"

	"ibpower"
)

// TestFacadeEndToEnd exercises the public API surface the README documents:
// generate a workload, choose GT, replay baseline and mechanism, and check
// the paper's headline claims hold in shape.
func TestFacadeEndToEnd(t *testing.T) {
	tr, err := ibpower.GenerateWorkload("nasbt", 9, ibpower.WorkloadOptions{IterScale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	gt, hit, err := ibpower.ChooseGT(tr)
	if err != nil {
		t.Fatal(err)
	}
	if gt < ibpower.GTMin {
		t.Fatalf("GT %v below 2*Treact", gt)
	}
	if hit < 80 {
		t.Errorf("NAS BT hit rate %.1f%%, paper reports 97-98%%", hit)
	}
	base, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig().WithPower(gt, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	saving := res.AvgSavingPct()
	if saving < 25 || saving > ibpower.MaxSavingPct {
		t.Errorf("NAS BT/9 saving = %.1f%%, paper reports ~51%% (bound %.0f%%)", saving, ibpower.MaxSavingPct)
	}
	if inc := res.TimeIncreasePct(base); inc < 0 || inc > 2 {
		t.Errorf("time increase = %.2f%%, paper reports well under 1%%", inc)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr, err := ibpower.GenerateWorkload("alya", 8, ibpower.WorkloadOptions{IterScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ibpower.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ibpower.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCalls() != tr.NumCalls() {
		t.Errorf("roundtrip calls %d != %d", got.NumCalls(), tr.NumCalls())
	}
}

func TestFacadePredictorAndController(t *testing.T) {
	p, err := ibpower.NewPredictor(ibpower.PredictorConfig{
		GT:           20 * time.Microsecond,
		Displacement: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := ibpower.NewLinkController(0)
	var now time.Duration
	for i := 0; i < 40; i++ {
		now += 500 * time.Microsecond
		start := ctrl.Acquire(now)
		act := p.OnCall(41, start, start)
		if act.Shutdown {
			ctrl.Shutdown(start, act.PredictedIdle)
		}
		now = start
	}
	ctrl.Finish(now)
	if ctrl.Shutdowns == 0 {
		t.Error("no shutdowns through the facade")
	}
	if a := ctrl.Accounting(); a.SavingPct() <= 0 {
		t.Error("no savings accounted")
	}
}

func TestFacadeSPMD(t *testing.T) {
	layer, err := ibpower.NewPowerLayer(ibpower.PredictorConfig{
		GT:           20 * time.Microsecond,
		Displacement: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	err = ibpower.RunSPMD(4, layer, func(c *ibpower.Comm) error {
		for i := 0; i < 20; i++ {
			c.Allreduce([]float64{1}, nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("nil reduce op must fail") // Allreduce with nil op panics -> error
	}
	// And a working run.
	err = ibpower.RunSPMD(4, layer, func(c *ibpower.Comm) error {
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := layer.Report(time.Since(t0))
	if len(rep.PerRank) == 0 {
		t.Error("no per-rank reports")
	}
}

// TestRecordThenReplay closes the methodology loop: run a live SPMD program,
// record its trace, and replay the recording through the co-simulator with
// the mechanism enabled.
func TestRecordThenReplay(t *testing.T) {
	const np = 4
	tr, err := ibpower.RecordSPMD("recorded", np, func(c *ibpower.Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		for i := 0; i < 40; i++ {
			c.Sendrecv(right, []float64{1}, left)
			spinFor(200 * time.Microsecond)
			c.Allreduce([]float64{1}, nil2sum())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ibpower.Replay(tr, ibpower.DefaultReplayConfig().WithPower(ibpower.GTMin, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSavingPct() <= 0 {
		t.Errorf("no savings replaying a recorded iterative program (%.2f%%)", res.AvgSavingPct())
	}
	if res.AvgHitRatePct() < 50 {
		t.Errorf("hit rate %.1f%% on a recorded regular program", res.AvgHitRatePct())
	}
}

func spinFor(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

func nil2sum() func(a, b float64) float64 {
	return func(a, b float64) float64 { return a + b }
}

// TestFacadeScenario exercises the churn surface: parse a spec, run it
// through RunScenario, and check the registry enumerators.
func TestFacadeScenario(t *testing.T) {
	spec, err := ibpower.ParseScenarioSpec("jobs=4,apps=alya,size=fixed:6,arrival=poisson:20ms,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ibpower.RunScenario(ibpower.ScenarioConfig{
		Spec:         spec,
		Displacement: 0.01,
		Opt:          ibpower.WorkloadOptions{Seed: 42, IterScale: 0.05},
		Replay:       ibpower.DefaultReplayConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("%d jobs churned, want 4", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Finish <= j.Start || len(j.Terminals) != 6 {
			t.Errorf("job %d: start %v finish %v terminals %d", j.ID, j.Start, j.Finish, len(j.Terminals))
		}
	}
	scheds := ibpower.Schedulers()
	if len(scheds) < 3 {
		t.Errorf("schedulers = %v, want fcfs, backfill and power-aware", scheds)
	}
	if spec2, err := ibpower.ParseScenarioSpec(spec.String()); err != nil || spec2.String() != spec.String() {
		t.Errorf("canonical spec %q did not round-trip (err=%v)", spec.String(), err)
	}
	if ibpower.DefaultScenarioSpec().Validate() != nil {
		t.Error("default scenario spec does not validate")
	}
}

// TestFacadeScenarioFaults exercises the fault surface: parse clauses, run a
// faulty scenario with a retry policy, and check the resilience metrics.
func TestFacadeScenarioFaults(t *testing.T) {
	clauses, err := ibpower.ParseScenarioFaults("term:poisson:100ms:mttr=200ms,link:poisson:150ms:mttr=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := ibpower.FormatScenarioFaults(clauses); got != "term:poisson:100ms:mttr=200ms,link:poisson:150ms:mttr=100ms" {
		t.Fatalf("clauses did not round-trip: %q", got)
	}
	spec, err := ibpower.ParseScenarioSpec("jobs=4,apps=alya,size=fixed:6,arrival=poisson:20ms,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = clauses
	res, err := ibpower.RunScenario(ibpower.ScenarioConfig{
		Spec:         spec,
		Displacement: 0.01,
		Opt:          ibpower.WorkloadOptions{Seed: 42, IterScale: 0.05},
		Replay:       ibpower.DefaultReplayConfig(),
		Retry:        ibpower.RetryPolicy{MaxRetries: 2, Backoff: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultsActive {
		t.Error("fault clauses set but FaultsActive is false")
	}
	if res.GoodputPct <= 0 || res.GoodputPct > 100 {
		t.Errorf("goodput %v%% out of range", res.GoodputPct)
	}
	if len(res.Capacity) == 0 {
		t.Error("no capacity profile")
	}
	if _, err := ibpower.ParseScenarioFaults("disk:poisson:1m"); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(ibpower.Workloads()) != 5 {
		t.Errorf("workloads = %v", ibpower.Workloads())
	}
	if got := ibpower.WorkloadProcCounts("nasbt")[0]; got != 9 {
		t.Errorf("nasbt starts at %d, want 9", got)
	}
}
