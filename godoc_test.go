package ibpower_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPackageDocComments walks every package in the module — the root
// facade, every internal/ package, the commands, the examples — and fails on
// any package without a doc comment ("// Package xxx ..." or, for main
// packages, a comment block above the package clause). The codebase's
// self-description lives in these comments (go doc ./... is the API tour
// DESIGN.md links into); this test keeps a new package from shipping
// undocumented.
func TestPackageDocComments(t *testing.T) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip testdata and, per Go tool convention, dot- and
			// underscore-prefixed directories (worktrees, editor scratch):
			// their Go files are not part of this module's build.
			name := d.Name()
			if name == "testdata" || (path != "." &&
				(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_"))) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("only %d package directories found; the walker is broken", len(dirs))
	}
	var sorted []string
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	for _, dir := range sorted {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment; add '// Package %s ...' (or a '// Command ...' comment for main packages) above one package clause",
					name, dir, name)
			}
		}
	}
}
