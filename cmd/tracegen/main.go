// Command tracegen emits a synthetic workload trace in the text trace
// format, for feeding external tooling or re-reading through the library.
//
//	tracegen -app wrf -np 32 > wrf32.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ibpower/internal/workloads"
)

func main() {
	app := flag.String("app", "alya", "workload (alya, gromacs, wrf, nasbt, nasmg)")
	np := flag.Int("np", 8, "number of MPI processes")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 1.0, "iteration count multiplier")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	tr, err := workloads.Generate(*app, *np, workloads.Options{Seed: *seed, IterScale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := tr.Write(bw); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
