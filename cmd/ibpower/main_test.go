package main

import (
	"strings"
	"testing"
)

// TestUnknownPredictorRejectedEverywhere asserts every subcommand validates
// -predictor up front: a typo must fail fast with the registry listed, not
// after minutes of sweeping — and not silently fall back to the default.
func TestUnknownPredictorRejectedEverywhere(t *testing.T) {
	cmds := map[string]func([]string) error{
		"tableI":    cmdTableI,
		"gt":        cmdGT,
		"overheads": cmdOverheads,
		"figures":   cmdFigures,
		"compare":   cmdCompare,
		"multijob":  cmdMultijob,
		"scenario":  cmdScenario,
		"timeline":  cmdTimeline,
		"ppa":       cmdPPA,
		"energy":    cmdEnergy,
		"dvs":       cmdDVS,
		"weak":      cmdWeak,
	}
	for name, fn := range cmds {
		err := fn([]string{"-predictor", "nosuch"})
		if err == nil {
			t.Errorf("%s accepted an unknown predictor", name)
			continue
		}
		if !strings.Contains(err.Error(), "unknown predictor") ||
			!strings.Contains(err.Error(), "ngram") {
			t.Errorf("%s: error %q must reject the name and list the registry", name, err)
		}
	}
}

// TestUnknownTopoRejectedEverywhere asserts every subcommand validates -topo
// up front, mirroring -predictor: a typo must fail fast with the fabric
// registry listed, not after minutes of sweeping — and not silently fall
// back to the paper's XGFT.
func TestUnknownTopoRejectedEverywhere(t *testing.T) {
	cmds := map[string]func([]string) error{
		"tableI":    cmdTableI,
		"gt":        cmdGT,
		"overheads": cmdOverheads,
		"figures":   cmdFigures,
		"compare":   cmdCompare,
		"multijob":  cmdMultijob,
		"scenario":  cmdScenario,
		"timeline":  cmdTimeline,
		"ppa":       cmdPPA,
		"energy":    cmdEnergy,
		"dvs":       cmdDVS,
		"weak":      cmdWeak,
		"bench":     cmdBench,
		"topos":     cmdTopos,
	}
	for name, fn := range cmds {
		err := fn([]string{"-topo", "nosuch"})
		if err == nil {
			t.Errorf("%s accepted an unknown fabric", name)
			continue
		}
		if !strings.Contains(err.Error(), "unknown fabric") ||
			!strings.Contains(err.Error(), "dragonfly") {
			t.Errorf("%s: error %q must reject the name and list the registry", name, err)
		}
	}
}

// TestToposListsEveryFabric asserts the listing covers the whole registry —
// including the supercomputer-scale presets — and that the single-fabric
// filter works (cmdTopos writes to stdout; here only success and the
// registry walk are checked, the table contents are pinned by the topology
// package's own structural tests).
func TestToposListsEveryFabric(t *testing.T) {
	if err := cmdTopos(nil); err != nil {
		t.Errorf("topos over the full registry failed: %v", err)
	}
	if err := cmdTopos([]string{"-topo", "xgft3-big"}); err != nil {
		t.Errorf("topos -topo xgft3-big failed: %v", err)
	}
}

// TestMultijobRejectsBadFlags asserts the multijob-specific flags are
// validated up front: a typo'd -placement fails fast with the placement
// registry listed, and a malformed -jobs mix fails before any simulation.
func TestMultijobRejectsBadFlags(t *testing.T) {
	err := cmdMultijob([]string{"-placement", "nosuch"})
	if err == nil || !strings.Contains(err.Error(), "unknown placement") ||
		!strings.Contains(err.Error(), "roundrobin") {
		t.Errorf("unknown placement: error %q must reject the name and list the registry", err)
	}
	for _, jobs := range []string{"", "gromacs", "gromacs:1", "gromacs:x"} {
		if err := cmdMultijob([]string{"-jobs", jobs}); err == nil {
			t.Errorf("malformed -jobs %q accepted", jobs)
		}
	}
}

// TestScenarioRejectsBadFlags asserts the scenario-specific flags fail fast
// before any simulation: a typo'd -sched lists the scheduler registry (the
// same contract -predictor, -topo and -placement honor), and a malformed
// -spec or missing -specfile surfaces its parse error immediately.
func TestScenarioRejectsBadFlags(t *testing.T) {
	err := cmdScenario([]string{"-sched", "nosuch"})
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") ||
		!strings.Contains(err.Error(), "power-aware") {
		t.Errorf("unknown scheduler: error %q must reject the name and list the registry", err)
	}
	err = cmdScenario([]string{"-placement", "nosuch"})
	if err == nil || !strings.Contains(err.Error(), "unknown placement") {
		t.Errorf("unknown placement: error %q must reject the name and list the registry", err)
	}
	for _, spec := range []string{"jobs", "jobs=0", "size=weird:1", "color=red"} {
		if err := cmdScenario([]string{"-spec", spec}); err == nil {
			t.Errorf("malformed -spec %q accepted", spec)
		}
	}
	if err := cmdScenario([]string{"-specfile", "testdata-nosuch-file"}); err == nil {
		t.Error("missing -specfile accepted")
	}
}
