package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ibpower/internal/harness"
	"ibpower/internal/multijob"
	"ibpower/internal/stats"
	"ibpower/internal/trace"
	"ibpower/internal/workloads"
)

// cmdTrace manages packed binary trace files (the "ibt" format read through
// a bounded streaming window by every replay-driven subcommand's -tracefile
// flag):
//
//	trace pack -o <file> [-jobs app:np,...] [-in a.txt,b.txt] [-seed -scale]
//	trace cat  <file> [-app <name> -np <n>]
//	trace info <file>
//
// pack converts workloads and/or text traces to one packed file, streaming
// each rank straight from the generator — the full trace is never held in
// memory. cat converts entries back to the line-oriented text format; info
// lists a file's entries with op counts and encoded sizes.
func cmdTrace(args []string) error {
	if len(args) == 0 || args[0] == "-h" || args[0] == "--help" || args[0] == "help" {
		traceUsage()
		if len(args) == 0 {
			return fmt.Errorf("trace: missing subcommand")
		}
		return nil
	}
	switch args[0] {
	case "pack":
		return cmdTracePack(args[1:])
	case "cat":
		return cmdTraceCat(args[1:])
	case "info":
		return cmdTraceInfo(args[1:])
	}
	traceUsage()
	return fmt.Errorf("trace: unknown subcommand %q", args[0])
}

func traceUsage() {
	fmt.Fprintln(os.Stderr, `usage: ibpower trace <pack|cat|info> [flags]

pack flags:`)
	fs := flag.NewFlagSet("pack", flag.ContinueOnError)
	tracePackFlags(fs)
	fs.PrintDefaults()
	fmt.Fprintln(os.Stderr, "\ncat flags (after the file argument):")
	fs = flag.NewFlagSet("cat", flag.ContinueOnError)
	traceEntryFlags(fs)
	fs.PrintDefaults()
	fmt.Fprintln(os.Stderr, "\ninfo takes just the file argument.")
}

// packFlags holds the pack flag values.
type packFlags struct {
	out, jobs, in *string
	seed          *int64
	scale         *float64
	weak          *bool
}

// tracePackFlags registers the pack flag set: workload jobs and/or text
// trace inputs, generation options, and the output path.
func tracePackFlags(fs *flag.FlagSet) packFlags {
	return packFlags{
		out:   fs.String("o", "traces.ibt", "output file for the packed binary traces"),
		jobs:  fs.String("jobs", "", "workloads to generate and pack, as app:np,... (e.g. alya:16,gromacs:64)"),
		in:    fs.String("in", "", "comma-separated text trace files to convert and pack"),
		seed:  fs.Int64("seed", 42, "generation seed for -jobs"),
		scale: fs.Float64("scale", 1.0, "iteration count multiplier for -jobs"),
		weak:  fs.Bool("weak", false, "weak-scaling problem sizes for -jobs"),
	}
}

func cmdTracePack(args []string) error {
	fs := flag.NewFlagSet("trace pack", flag.ExitOnError)
	pf := tracePackFlags(fs)
	out, jobsStr, in, seed, scale, weak := pf.out, pf.jobs, pf.in, pf.seed, pf.scale, pf.weak
	fs.Parse(args)
	if *jobsStr == "" && *in == "" {
		return fmt.Errorf("trace pack: nothing to pack (need -jobs and/or -in)")
	}

	var srcs []trace.Source
	if *jobsStr != "" {
		jobs, err := multijob.ParseJobs(*jobsStr)
		if err != nil {
			return err
		}
		opt := workloads.Options{Seed: *seed, IterScale: *scale, Weak: *weak}
		for _, j := range jobs {
			// The generator source streams one rank at a time into the
			// encoder: packing never materializes a whole trace.
			src, err := workloads.NewSource(j.App, j.NP, opt)
			if err != nil {
				return err
			}
			srcs = append(srcs, src)
		}
	}
	if *in != "" {
		for _, path := range strings.Split(*in, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			tr, err := trace.Read(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			srcs = append(srcs, tr)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.WriteBinarySources(f, srcs...); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("packed %d trace(s) into %s (%d bytes)\n", len(srcs), *out, st.Size())
	return nil
}

// traceEntryFlags registers the (app, np) entry selector shared by cat.
func traceEntryFlags(fs *flag.FlagSet) (*string, *int) {
	app := fs.String("app", "", "application of the entry to select (empty: all entries)")
	np := fs.Int("np", 0, "process count of the entry to select (0: all entries)")
	return app, np
}

func cmdTraceCat(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("trace cat: missing file argument")
	}
	fs := flag.NewFlagSet("trace cat", flag.ExitOnError)
	app, np := traceEntryFlags(fs)
	fs.Parse(args[1:])
	f, err := trace.OpenFile(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < f.Len(); i++ {
		m := f.Entries()[i]
		if (*app != "" && m.App != *app) || (*np != 0 && m.NP != *np) {
			continue
		}
		if err := trace.WriteText(os.Stdout, f.SourceAt(i)); err != nil {
			return err
		}
	}
	return nil
}

func cmdTraceInfo(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("trace info: missing file argument")
	}
	f, err := trace.OpenFile(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	t := stats.NewTable("app", "Nproc", "ops", "encoded bytes", "bytes/op")
	var ops, bytes int64
	for i := 0; i < f.Len(); i++ {
		m := f.Entries()[i]
		n, b := f.NumOps(i), f.DataBytes(i)
		ops, bytes = ops+n, bytes+b
		t.Row(m.App, m.NP, n, b, fmt.Sprintf("%.2f", float64(b)/float64(n)))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("%d entries, %d ops, %d data bytes\n", f.Len(), ops, bytes)
	return nil
}

// traceFileFlag registers -tracefile on replay-driven subcommands: a packed
// binary trace file (see "ibpower trace pack") whose entries stand in for
// the workload generator on matching (app, np) workloads, replayed through
// a bounded per-rank streaming window instead of materialized op slices.
func traceFileFlag(fs *flag.FlagSet) *string {
	return fs.String("tracefile", "",
		"packed binary trace file serving matching (app,np) workloads (see 'ibpower trace pack')")
}

// attachTraceFile opens path (when non-empty) and attaches it to the
// runner's source cache. The returned closer must run after the experiment
// completes — cursors read from the file handle throughout the run.
func attachTraceFile(r *harness.Runner, path string) (func() error, error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := trace.OpenFile(path)
	if err != nil {
		return nil, err
	}
	r.File = f
	return f.Close, nil
}
